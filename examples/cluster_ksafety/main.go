// Cluster K-safety: a three-node cluster with K=1 buddy projections
// (paper §5.2). Kills a node mid-workload, shows queries still answering via
// the buddy projections, performs DML while the node is down, then recovers
// the node and proves it replayed the missed epochs.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "vertica-ksafety-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Options{Dir: dir, Nodes: 3, K: 1})
	if err != nil {
		log.Fatal(err)
	}
	exec(db, `CREATE TABLE events (id INT, kind VARCHAR, amount FLOAT)`)
	// The engine auto-creates a buddy projection (events_super_b1) with the
	// segmentation ring shifted by one node, so no row lives on only one
	// machine.
	exec(db, `CREATE PROJECTION events_super ON events (id, kind, amount)
	          ORDER BY id SEGMENTED BY HASH(id)`)
	for _, p := range db.Catalog().Projections() {
		fmt.Printf("projection %-18s buddy=%v replicated=%v\n", p.Name, p.IsBuddy, p.Seg.Replicated)
	}

	rows := make([]types.Row, 30_000)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewString([]string{"view", "click", "buy"}[i%3]),
			types.NewFloat(float64(i % 100)),
		}
	}
	if err := db.Load("events", rows, true); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndata placement (rows per node, primary projection):")
	p, _ := db.Catalog().Projection("events_super")
	for _, n := range db.Cluster().Nodes() {
		mgr, _ := n.Mgr(p, db.Cluster().ManagerOpts())
		fmt.Printf("  %s: %d rows\n", n.Name, mgr.RowCount())
	}

	query(db, `SELECT kind, COUNT(*) AS n FROM events GROUP BY kind ORDER BY kind`)

	fmt.Println("!! failing node 2 (its WOS memory is lost; AHM freezes)")
	if err := db.Cluster().FailNode(1); err != nil {
		log.Fatal(err)
	}
	db.Cluster().Node(1).ClearWOS()

	fmt.Println("queries keep answering from buddy projections:")
	query(db, `SELECT kind, COUNT(*) AS n FROM events GROUP BY kind ORDER BY kind`)

	fmt.Println("DML while the node is down:")
	exec(db, `DELETE FROM events WHERE kind = 'click'`)
	query(db, `SELECT COUNT(*) AS remaining FROM events`)

	fmt.Println("!! recovering node 2 (historical phase + current phase under S lock)")
	if err := db.Cluster().RecoverNode(1); err != nil {
		log.Fatal(err)
	}
	query(db, `SELECT COUNT(*) AS after_recovery FROM events`)

	// Prove the recovered copy is complete: fail a different node so the
	// recovered one must serve as the buddy source.
	fmt.Println("!! failing node 1 — the recovered node now serves its segment")
	if err := db.Cluster().FailNode(0); err != nil {
		log.Fatal(err)
	}
	db.Cluster().Node(0).ClearWOS()
	query(db, `SELECT COUNT(*) AS with_other_node_down FROM events`)

	// Quorum loss demonstration: a second failure of three shuts down.
	fmt.Println("!! failing one more node: quorum is lost")
	if err := db.Cluster().FailNode(2); err != nil {
		fmt.Println("cluster:", err)
	}
}

func exec(db *core.Database, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatalf("%v\n  in %s", err, sql)
	}
}

func query(db *core.Database, sql string) {
	res, err := db.Execute(sql)
	if err != nil {
		log.Fatalf("%v\n  in %s", err, sql)
	}
	for _, r := range res.Rows {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println()
}
