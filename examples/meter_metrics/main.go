// Meter metrics: the paper's §8.2.2 customer scenario — a few hundred
// metrics collected from a couple of thousand meters at periodic intervals.
// Shows the compression the sorted columnar storage achieves per column and
// the analytics the sort order accelerates (this is also the workload behind
// Table 4's second half).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "vertica-meters-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Options{Dir: dir, Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	exec(db, `CREATE TABLE meters (metric VARCHAR, meter INT, ts TIMESTAMP, value FLOAT)`)
	// The projection sort order (metric, meter, ts) matches the common
	// predicates AND exposes the compression opportunities: runs of equal
	// metrics/meters for RLE, periodic timestamps for delta dictionaries.
	exec(db, `CREATE PROJECTION meters_super ON meters (metric, meter, ts, value)
	          ORDER BY metric, meter, ts SEGMENTED BY HASH(meter)`)

	const n = 500_000
	fmt.Printf("generating and loading %d meter readings...\n", n)
	rows := gen.MeterData(n, 300, 2000, 1)
	if err := db.Load("meters", rows, true); err != nil {
		log.Fatal(err)
	}

	// Per-column footprint: the paper reports the metric column collapsing
	// to almost nothing under RLE while the float values dominate.
	raw := int64(len(gen.MeterCSVBytes(rows)))
	var total int64
	fmt.Printf("\nraw CSV: %.1f MB (%.1f bytes/row)\n", mb(raw), float64(raw)/n)
	p, _ := db.Catalog().Projection("meters_super")
	for _, col := range []string{"metric", "meter", "ts", "value"} {
		var b int64
		for _, node := range db.Cluster().Nodes() {
			mgr, _ := node.Mgr(p, db.Cluster().ManagerOpts())
			for _, r := range mgr.Containers() {
				ci := r.Meta.ColIndex(col)
				pidx, _ := r.Pidx(ci)
				for _, e := range pidx {
					b += e.Length
				}
			}
		}
		total += b
		fmt.Printf("  column %-7s %8.2f MB  (%.2f bytes/row)\n", col, mb(b), float64(b)/n)
	}
	fmt.Printf("total columnar: %.2f MB — %.1fx smaller than the CSV\n\n", mb(total), float64(raw)/float64(total))

	// Typical metric analytics.
	query(db, `SELECT metric, COUNT(*) AS samples, AVG(value) AS avg_v, MAX(value) AS max_v
	           FROM meters WHERE metric IN ('metric_000', 'metric_001', 'metric_002')
	           GROUP BY metric ORDER BY metric`)
	query(db, `SELECT meter, COUNT(*) AS n FROM meters
	           WHERE metric = 'metric_010' GROUP BY meter ORDER BY n DESC LIMIT 5`)
	query(db, `SELECT COUNT(*) AS quiet_samples FROM meters WHERE value = 0.0`)
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

func exec(db *core.Database, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatalf("%v\n  in %s", err, sql)
	}
}

func query(db *core.Database, sql string) {
	res, err := db.Execute(sql)
	if err != nil {
		log.Fatalf("%v\n  in %s", err, sql)
	}
	fmt.Println(sql)
	for _, r := range res.Rows {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println()
}
