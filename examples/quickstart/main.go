// Quickstart: create a table and projections, load data, and run analytic
// queries — the smallest end-to-end tour of the engine's public API.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "vertica-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}

	// Logical schema plus the physical design: one super projection sorted
	// by date (the only physical data structure — there are no indexes).
	exec(db, `CREATE TABLE sales (sale_id INT, date TIMESTAMP, cust VARCHAR, price FLOAT)`)
	exec(db, `CREATE PROJECTION sales_super ON sales (sale_id, date, cust, price)
	          ORDER BY date, cust SEGMENTED BY HASH(sale_id)`)

	// Small inserts buffer in the write-optimized store (WOS)...
	exec(db, `INSERT INTO sales VALUES
		(1, TIMESTAMP '2012-03-01', 'alice', 19.99),
		(2, TIMESTAMP '2012-03-01', 'bob',   5.49),
		(3, TIMESTAMP '2012-03-02', 'alice', 12.00)`)

	// ...while bulk loads use the Load API (and go direct to the ROS when
	// large). The tuple mover migrates WOS contents to sorted, compressed
	// ROS containers in the background; here we drive it explicitly.
	var rows []types.Row
	for i := 4; i <= 10000; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewTimestampMicros(1330560000000000 + int64(i)*86_400_000_000/100),
			types.NewString([]string{"alice", "bob", "carol"}[i%3]),
			types.NewFloat(float64(i%500) + 0.99),
		})
	}
	if err := db.Load("sales", rows, false); err != nil {
		log.Fatal(err)
	}
	moved, merged, err := db.RunTupleMover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuple mover: %d rows moved out, %d mergeouts\n\n", moved, merged)

	// Analytics: predicates prune ROS blocks via min/max metadata; the
	// grouping runs one-pass when the sort order allows.
	query(db, `SELECT cust, COUNT(*) AS orders, SUM(price) AS revenue
	           FROM sales GROUP BY cust ORDER BY revenue DESC`)
	query(db, `SELECT COUNT(*) AS march_1
	           FROM sales WHERE date BETWEEN TIMESTAMP '2012-03-01' AND TIMESTAMP '2012-03-02'`)

	// Deletes never rewrite data: they add delete vectors, and historical
	// epochs remain queryable (time travel).
	before := db.Txns().Epochs.ReadEpoch()
	exec(db, `DELETE FROM sales WHERE cust = 'bob'`)
	query(db, `SELECT COUNT(*) AS after_delete FROM sales`)
	hist, err := db.QueryAt(`SELECT COUNT(*) AS at_old_epoch FROM sales`, before)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time travel to epoch %d: %v rows visible\n", before, hist.Rows[0][0])

	// EXPLAIN shows the physical plan the optimizer chose.
	res, err := db.Execute(`EXPLAIN SELECT cust, AVG(price) FROM sales GROUP BY cust`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan:")
	fmt.Println(res.Explain)
}

func exec(db *core.Database, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatalf("%v\n  in %s", err, sql)
	}
}

func query(db *core.Database, sql string) {
	res, err := db.Execute(sql)
	if err != nil {
		log.Fatalf("%v\n  in %s", err, sql)
	}
	fmt.Println(sql)
	for _, c := range res.Schema.Names() {
		fmt.Printf("  %-12s", c)
	}
	fmt.Println()
	for _, r := range res.Rows {
		for _, v := range r {
			fmt.Printf("  %-12s", v.String())
		}
		fmt.Println()
	}
	fmt.Println()
}
