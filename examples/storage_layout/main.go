// Storage layout: reproduces the physical organization of the paper's
// Figure 2 — a table partitioned by month/year whose node-local storage
// splits into ROS containers per (partition key, local segment), two files
// per column, and demonstrates fast bulk deletion by dropping a partition's
// files.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "vertica-layout-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Options{Dir: dir, LocalSegments: 3})
	if err != nil {
		log.Fatal(err)
	}
	// Figure 2's table: partitioned by month/year of the timestamp,
	// segmented by HASH(cid), 3 local segments per node.
	exec(db, `CREATE TABLE readings (cid INT, ts TIMESTAMP, price FLOAT)
	          PARTITION BY EXTRACT_MONTH(ts) * 10000 + EXTRACT_YEAR(ts)`)
	exec(db, `CREATE PROJECTION readings_super ON readings (cid, ts, price)
	          ORDER BY ts SEGMENTED BY HASH(cid)`)

	// Four months of data: 3/2012 .. 6/2012.
	var rows []types.Row
	for month := 3; month <= 6; month++ {
		for i := 0; i < 3000; i++ {
			ts := time.Date(2012, time.Month(month), 1+i%27, i%24, 0, 0, 0, time.UTC)
			rows = append(rows, types.Row{
				types.NewInt(int64(i)),
				types.NewTimestamp(ts),
				types.NewFloat(float64(100 + i%50)),
			})
		}
	}
	if err := db.Load("readings", rows, true); err != nil {
		log.Fatal(err)
	}

	p, _ := db.Catalog().Projection("readings_super")
	mgr, _ := db.Cluster().Node(0).Mgr(p, db.Cluster().ManagerOpts())

	fmt.Println("ROS containers on node0001 (cf. paper Figure 2):")
	type key struct {
		part string
		seg  int
	}
	counts := map[key]int{}
	files := 0
	for _, r := range mgr.Containers() {
		counts[key{r.Meta.Partition, r.Meta.LocalSegment}]++
		ents, _ := os.ReadDir(r.Dir)
		for _, e := range ents {
			if filepath.Ext(e.Name()) == ".dat" {
				files++
			}
		}
	}
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].part != keys[j].part {
			return keys[i].part < keys[j].part
		}
		return keys[i].seg < keys[j].seg
	})
	for _, k := range keys {
		fmt.Printf("  partition %-8s local segment %d: %d container(s)\n", k.part, k.seg, counts[k])
	}
	fmt.Printf("total: %d containers, %d column data files (one per column per container,\n"+
		"each with its position index — two files per column, §3.7)\n\n",
		len(mgr.Containers()), files)

	query(db, `SELECT COUNT(*) AS total FROM readings`)

	// Fast bulk deletion (§3.5): dropping a partition just deletes files.
	fmt.Println("DROP PARTITION readings '32012' (March 2012):")
	exec(db, `DROP PARTITION readings '32012'`)
	query(db, `SELECT COUNT(*) AS after_drop FROM readings`)
	fmt.Printf("containers remaining: %d\n", len(mgr.Containers()))

	// Min/max pruning: a predicate on the sort column skips whole blocks.
	res, err := db.Execute(`EXPLAIN SELECT COUNT(*) FROM readings WHERE ts > TIMESTAMP '2012-06-15'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan for a pruning-friendly predicate:")
	fmt.Println(res.Explain)
}

func exec(db *core.Database, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatalf("%v\n  in %s", err, sql)
	}
}

func query(db *core.Database, sql string) {
	res, err := db.Execute(sql)
	if err != nil {
		log.Fatalf("%v\n  in %s", err, sql)
	}
	for _, r := range res.Rows {
		fmt.Printf("  %v\n", r)
	}
}
