// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (run `go test -bench=. -benchmem .`), plus ablation
// benches for the design choices DESIGN.md calls out. cmd/vbench prints the
// same results as formatted tables.
package repro

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cstore"
	"repro/internal/encoding"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/tuplemover"
	"repro/internal/txn"
	"repro/internal/types"
)

// benchScale keeps `go test -bench=.` minutes-fast; cmd/vbench defaults to
// the full Table3Scale.
const benchScale = 60_000

var (
	t3Once    sync.Once
	t3DB      *core.Database
	t3CStore  *cstore.Store
	t3SetupMu sync.Mutex
)

func table3Setup(b *testing.B) (*core.Database, *cstore.Store) {
	b.Helper()
	t3SetupMu.Lock()
	defer t3SetupMu.Unlock()
	t3Once.Do(func() {
		dir := b.TempDir()
		db, err := bench.SetupVertica(dir, benchScale, 4)
		if err != nil {
			b.Fatal(err)
		}
		t3DB = db
		t3CStore = bench.SetupCStore(benchScale)
	})
	return t3DB, t3CStore
}

// BenchmarkTable3 reproduces Table 3: the seven C-Store benchmark queries on
// both engines.
func BenchmarkTable3(b *testing.B) {
	db, st := table3Setup(b)
	for q := 0; q < 7; q++ {
		b.Run(fmt.Sprintf("Q%d/vertica", q+1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunVerticaQuery(db, q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%d/cstore", q+1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunCStoreQuery(st, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4RandomInts reproduces Table 4's first half; the reported
// custom metric is the engine's bytes/row (paper: 0.6 at 1M rows).
func BenchmarkTable4RandomInts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4Ints(b.TempDir(), 200_000, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[3].BytesPerRow, "vertica-bytes/row")
		b.ReportMetric(rows[3].Ratio, "vertica-ratio")
	}
}

// BenchmarkTable4MeterData reproduces Table 4's second half (paper: ~2.2
// bytes/row at 200M rows; the ratio is scale-dependent).
func BenchmarkTable4MeterData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		summary, _, err := bench.Table4Meter(b.TempDir(), 200_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(summary[2].BytesPerRow, "vertica-bytes/row")
		b.ReportMetric(summary[2].Ratio, "vertica-ratio")
	}
}

// BenchmarkFigure3Plan runs the parallel aggregation plan of Figure 3
// (StorageUnion workers -> prepass -> resegment -> parallel GroupBys).
func BenchmarkFigure3Plan(b *testing.B) {
	db, _ := table3Setup(b)
	q := `SELECT l_suppkey, COUNT(*), AVG(l_extendedprice) FROM lineitem GROUP BY l_suppkey`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTables1And2 exercises the lock compatibility and conversion
// matrices (the "result" is correctness — see internal/txn tests — so this
// measures the lock manager's hot path).
func BenchmarkTables1And2(b *testing.B) {
	lm := txn.NewLockManager(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := txn.TxnID(i)
		lm.TryAcquire(id, "t", txn.I)
		lm.TryAcquire(id, "t", txn.S) // converts to SI per Table 2
		lm.ReleaseAll(id)
	}
}

// --- ablation benches ---------------------------------------------------

// ablationFixture loads n rows of (k sorted unique, grp low-cardinality RLE,
// v float) into a projection storage.
func ablationFixture(b *testing.B, n int) (*storage.Manager, *txn.EpochManager, *types.Schema) {
	b.Helper()
	schema := types.NewSchema(
		types.Column{Name: "k", Typ: types.Int64},
		types.Column{Name: "grp", Typ: types.Int64},
		types.Column{Name: "v", Typ: types.Float64},
	)
	mgr, err := storage.NewManager(b.TempDir(), schema, storage.ManagerOpts{})
	if err != nil {
		b.Fatal(err)
	}
	em := txn.NewEpochManager()
	tm, err := tuplemover.New(tuplemover.Config{
		Projection: "p", Mgr: mgr, Epochs: em, SortKey: []int{1, 0},
		Encodings: map[string]storage.ColumnSpec{
			"grp": {Name: "grp", Typ: types.Int64, Enc: encoding.RLE},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 16)),
			types.NewFloat(float64(i)),
		}
	}
	mgr.WOS().Append(rows, em.CommitDML())
	if _, err := tm.Moveout(); err != nil {
		b.Fatal(err)
	}
	return mgr, em, schema
}

// BenchmarkAblationRLEDirect compares COUNT(*) GROUP BY over a run-length
// column with run-direct aggregation vs expanding every run (paper §6.1:
// operators work directly on encoded data).
func BenchmarkAblationRLEDirect(b *testing.B) {
	mgr, em, schema := ablationFixture(b, 200_000)
	run := func(b *testing.B, preserveRuns bool) {
		for i := 0; i < b.N; i++ {
			s := exec.NewScan("p", mgr, schema, []int{1})
			s.PreserveRuns = preserveRuns
			s.IncludeWOS = false
			g := exec.NewGroupBy(s,
				[]expr.Expr{expr.NewColRef(0, types.Int64, "grp")}, []string{"grp"},
				[]exec.AggSpec{{Kind: exec.AggCountStar, Name: "c"}})
			g.InputSorted = true
			rows, err := exec.Drain(exec.NewCtx(em.ReadEpoch()), g)
			if err != nil || len(rows) != 16 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	}
	b.Run("rle-direct", func(b *testing.B) { run(b, true) })
	b.Run("expanded", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationSIP compares a selective hash join with and without the
// SIP filter pushed into the probe-side scan.
func BenchmarkAblationSIP(b *testing.B) {
	mgr, em, schema := ablationFixture(b, 200_000)
	dimSchema := types.NewSchema(
		types.Column{Name: "id", Typ: types.Int64},
		types.Column{Name: "tag", Typ: types.Varchar},
	)
	dimRows := []types.Row{{types.NewInt(3), types.NewString("three")}}
	run := func(b *testing.B, useSIP bool) {
		for i := 0; i < b.N; i++ {
			s := exec.NewScan("p", mgr, schema, []int{1, 2})
			s.IncludeWOS = false
			j, err := exec.NewHashJoin(exec.InnerJoin, s,
				exec.NewValues(dimSchema, dimRows), []int{0}, []int{0})
			if err != nil {
				b.Fatal(err)
			}
			if useSIP {
				sip := exec.NewSIPFilter([]int{0}, "dim")
				s.SIPs = []*exec.SIPFilter{sip}
				j.SIP = sip
			}
			rows, err := exec.Drain(exec.NewCtx(em.ReadEpoch()), j)
			if err != nil || len(rows) != 200_000/16 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	}
	b.Run("sip", func(b *testing.B) { run(b, true) })
	b.Run("no-sip", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationPrepass compares hash aggregation with and without the
// cache-sized prepass in front of it.
func BenchmarkAblationPrepass(b *testing.B) {
	mgr, em, schema := ablationFixture(b, 200_000)
	run := func(b *testing.B, usePrepass bool) {
		for i := 0; i < b.N; i++ {
			s := exec.NewScan("p", mgr, schema, []int{1, 2})
			s.IncludeWOS = false
			keys := []expr.Expr{expr.NewColRef(0, types.Int64, "grp")}
			aggs := []exec.AggSpec{{Kind: exec.AggSum, Arg: expr.NewColRef(1, types.Float64, "v"), Name: "s"}}
			var root exec.Operator
			if usePrepass {
				pre, err := exec.NewPrepass(s, keys, []string{"grp"}, aggs)
				if err != nil {
					b.Fatal(err)
				}
				final := exec.NewGroupBy(pre,
					[]expr.Expr{expr.NewColRef(0, types.Int64, "grp")}, []string{"grp"}, aggs)
				final.MergePartials = true
				root = final
			} else {
				root = exec.NewGroupBy(s, keys, []string{"grp"}, aggs)
			}
			rows, err := exec.Drain(exec.NewCtx(em.ReadEpoch()), root)
			if err != nil || len(rows) != 16 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	}
	b.Run("prepass", func(b *testing.B) { run(b, true) })
	b.Run("no-prepass", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationSortedGroupBy compares one-pass aggregation over the
// sorted projection against hash aggregation of the same data.
func BenchmarkAblationSortedGroupBy(b *testing.B) {
	mgr, em, schema := ablationFixture(b, 200_000)
	run := func(b *testing.B, sorted bool) {
		for i := 0; i < b.N; i++ {
			s := exec.NewScan("p", mgr, schema, []int{1, 2})
			s.IncludeWOS = false
			g := exec.NewGroupBy(s,
				[]expr.Expr{expr.NewColRef(0, types.Int64, "grp")}, []string{"grp"},
				[]exec.AggSpec{{Kind: exec.AggAvg, Arg: expr.NewColRef(1, types.Float64, "v"), Name: "a"}})
			if sorted {
				s.MergeSorted = true
				s.SortKey = []int{0}
				g.InputSorted = true
			}
			rows, err := exec.Drain(exec.NewCtx(em.ReadEpoch()), g)
			if err != nil || len(rows) != 16 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	}
	b.Run("one-pass", func(b *testing.B) { run(b, true) })
	b.Run("hash", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationPartitionPruning compares a selective month query on a
// partitioned table (whole containers pruned) vs the same data unpartitioned
// (paper §3.5: partitioning keeps values from intermixing in a ROS).
func BenchmarkAblationPartitionPruning(b *testing.B) {
	setup := func(b *testing.B, partitioned bool) *core.Database {
		b.Helper()
		db, err := core.Open(core.Options{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		ddl := `CREATE TABLE ev (id INT, month INT, v FLOAT)`
		if partitioned {
			ddl += ` PARTITION BY month`
		}
		if _, err := db.Execute(ddl); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Execute(`CREATE PROJECTION ev_super ON ev (id, month, v)
			ORDER BY id SEGMENTED BY HASH(id)`); err != nil {
			b.Fatal(err)
		}
		rows := make([]types.Row, 120_000)
		for i := range rows {
			rows[i] = types.Row{
				types.NewInt(int64(i)), types.NewInt(int64(i % 12)), types.NewFloat(float64(i)),
			}
		}
		if err := db.Load("ev", rows, true); err != nil {
			b.Fatal(err)
		}
		return db
	}
	q := `SELECT COUNT(*), SUM(v) FROM ev WHERE month = 3`
	for _, part := range []bool{true, false} {
		name := "partitioned"
		if !part {
			name = "unpartitioned"
		}
		db := setup(b, part)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMergeStrata compares the exponential-strata mergeout
// against naive merge-everything-per-round across repeated loads, reporting
// total rewritten rows (the paper's bound: rewrites per tuple <= strata).
func BenchmarkAblationMergeStrata(b *testing.B) {
	run := func(b *testing.B, strataBase int64) {
		for i := 0; i < b.N; i++ {
			schema := types.NewSchema(types.Column{Name: "k", Typ: types.Int64})
			mgr, err := storage.NewManager(b.TempDir(), schema, storage.ManagerOpts{})
			if err != nil {
				b.Fatal(err)
			}
			em := txn.NewEpochManager()
			tm, err := tuplemover.New(tuplemover.Config{
				Projection: "p", Mgr: mgr, Epochs: em, SortKey: []int{0},
				StrataBase: strataBase,
			})
			if err != nil {
				b.Fatal(err)
			}
			for l := 0; l < 12; l++ {
				rows := make([]types.Row, 4000)
				for j := range rows {
					rows[j] = types.Row{types.NewInt(int64(l*4000 + j))}
				}
				mgr.WOS().Append(rows, em.CommitDML())
				if _, err := tm.Moveout(); err != nil {
					b.Fatal(err)
				}
				if _, err := tm.Mergeout(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// Exponential strata (4KB base) vs "one stratum" (huge base: every
	// container is stratum 0, so every round merges everything).
	b.Run("exponential", func(b *testing.B) { run(b, 4<<10) })
	b.Run("naive-single-stratum", func(b *testing.B) { run(b, 1<<40) })
}

// BenchmarkAblationDirectLoad compares bulk loading straight to the ROS
// against routing through the WOS plus a moveout (paper §7: "users are more
// than happy to explicitly tag such loads to target the ROS").
func BenchmarkAblationDirectLoad(b *testing.B) {
	rows := make([]types.Row, 100_000)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i))}
	}
	run := func(b *testing.B, direct bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, err := core.Open(core.Options{Dir: b.TempDir(), WOSMaxBytes: 1 << 30,
				DirectLoadRowThreshold: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			db.MustExecute(`CREATE TABLE t (a INT, v FLOAT)`)
			db.MustExecute(`CREATE PROJECTION t_super ON t (a, v) ORDER BY a SEGMENTED BY HASH(a)`)
			b.StartTimer()
			if err := db.Load("t", rows, direct); err != nil {
				b.Fatal(err)
			}
			if !direct {
				if _, _, err := db.RunTupleMover(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("direct-to-ros", func(b *testing.B) { run(b, true) })
	b.Run("via-wos", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationJoinIndex compares scanning tuples reconstructed through
// a C-Store join index against a contiguous super-projection layout — the
// cost that led Vertica to drop join indexes (paper §3.2).
func BenchmarkAblationJoinIndex(b *testing.B) {
	schema := types.NewSchema(
		types.Column{Name: "a", Typ: types.Int64},
		types.Column{Name: "bb", Typ: types.Int64},
		types.Column{Name: "c", Typ: types.Float64},
	)
	rows := make([]types.Row, 200_000)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(200_000 - i)), types.NewFloat(float64(i)),
		}
	}
	scanAll := func(b *testing.B, t *cstore.Table) {
		it := t.Scan([]int{0, 1, 2})
		n := 0
		for {
			_, ok := it()
			if !ok {
				break
			}
			n++
		}
		if n != len(rows) {
			b.Fatalf("scanned %d", n)
		}
	}
	b.Run("super-projection", func(b *testing.B) {
		st := cstore.NewStore()
		t := st.Load("t", schema, rows, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scanAll(b, t)
		}
	})
	b.Run("join-index", func(b *testing.B) {
		st := cstore.NewStore()
		t := st.LoadPartial("t", schema, rows, 0, 1, []int{2})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scanAll(b, t)
		}
	})
}

// BenchmarkConcurrentWorkload drives 8 simultaneous TCP clients through the
// SQL server and compares admission-controlled execution (2 concurrency
// slots) against unbounded concurrency (all 8 run at once). Both configs
// give each query the same 2MB grant — small enough that the ORDER BY
// externalizes — so the comparison isolates the admission policy: bounded
// peak memory and queueing versus 8 spilling sorts in flight at once. The
// governor's peak-running and per-query queue-wait are reported as metrics.
func BenchmarkConcurrentWorkload(b *testing.B) {
	const clients = 8
	const grantBytes = 2 << 20
	setup := func(b *testing.B, conc int) (*server.Server, *core.Database, []*server.Client) {
		db, err := core.Open(core.Options{
			Dir:            b.TempDir(),
			MemPoolBytes:   int64(grantBytes * conc), // grant = pool/conc stays fixed
			MaxConcurrency: conc,
			TempDir:        b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		db.MustExecute(`CREATE TABLE sales (sale_id INT, cust INT, price FLOAT)`)
		db.MustExecute(`CREATE PROJECTION sales_super ON sales (sale_id, cust, price)
			ORDER BY sale_id SEGMENTED BY HASH(sale_id)`)
		rows := make([]types.Row, 50_000)
		for i := range rows {
			rows[i] = types.Row{
				types.NewInt(int64(i)), types.NewInt(int64(i % 50)), types.NewFloat(float64(i * 7 % 9973)),
			}
		}
		if err := db.Load("sales", rows, true); err != nil {
			b.Fatal(err)
		}
		srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
		if err := srv.Listen(); err != nil {
			b.Fatal(err)
		}
		go srv.Serve()
		cs := make([]*server.Client, clients)
		for i := range cs {
			c, err := server.Dial(srv.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			cs[i] = c
		}
		return srv, db, cs
	}
	run := func(b *testing.B, conc int) {
		srv, db, cs := setup(b, conc)
		defer func() {
			for _, c := range cs {
				c.Close()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, c := range cs {
				wg.Add(1)
				go func(c *server.Client) {
					defer wg.Done()
					res, err := c.Exec(`SELECT sale_id, price FROM sales ORDER BY price`)
					if err != nil {
						b.Error(err)
						return
					}
					if len(res.Rows) != 50_000 {
						b.Errorf("got %d rows", len(res.Rows))
					}
				}(c)
			}
			wg.Wait()
		}
		b.StopTimer()
		st := db.Governor().Stats()
		b.ReportMetric(float64(st.PeakRunning), "peak-running")
		if st.Admitted > 0 {
			b.ReportMetric(float64(st.TotalQueueWait.Microseconds())/float64(st.Admitted), "queue-wait-us/query")
		}
		b.ReportMetric(float64(st.SpilledBytes)/float64(b.N), "spilled-B/round")
	}
	b.Run("admission-2-slots", func(b *testing.B) { run(b, 2) })
	b.Run("unbounded", func(b *testing.B) { run(b, clients) })
}

// --- PR 5: intra-node parallel scaling ------------------------------------

// psKey identifies one fixture configuration: the intra-node parallel
// degree, whether operator wall-clock profiling is on engine-wide, and
// whether the Data Collector is disabled (dcOff).
type psKey struct {
	par     int
	profile bool
	dcOff   bool
}

var (
	psOnce  sync.Once
	psDBs   map[psKey]*core.Database
	psDirs  []string
	psSetup sync.Mutex
)

// cleanupParallelScaling removes the fixture databases (registered as the
// top-level benchmark's cleanup, after every sub-benchmark has run).
func cleanupParallelScaling() {
	psSetup.Lock()
	defer psSetup.Unlock()
	for _, d := range psDirs {
		os.RemoveAll(d)
	}
	psDirs = nil
	psDBs = map[psKey]*core.Database{}
}

// parallelScalingDB returns a database loaded with the parallel-scaling
// fixture, opened at the given intra-node parallelism. The fixture is a
// 400k-row fact (k unique, grp with 100k groups, dk foreign key, v float)
// loaded in 8 direct chunks (so worker scans have ROS containers to
// split) plus a 200k-row dimension — both sized so the serial hash tables
// fall well out of cache and the partitioned parallel shapes have
// something to win.
func parallelScalingDB(b *testing.B, parallelism int, profile, dcOff bool) *core.Database {
	b.Helper()
	psSetup.Lock()
	defer psSetup.Unlock()
	psOnce.Do(func() { psDBs = map[psKey]*core.Database{} })
	key := psKey{par: parallelism, profile: profile, dcOff: dcOff}
	if db, ok := psDBs[key]; ok {
		return db
	}
	// Not b.TempDir(): the database outlives the sub-benchmark that first
	// opened it, so its storage must survive that benchmark's cleanup.
	dir, err := os.MkdirTemp("", "bench-parallel-")
	if err != nil {
		b.Fatal(err)
	}
	psDirs = append(psDirs, dir)
	dcCapacity := 0
	if dcOff {
		dcCapacity = -1
	}
	db, err := core.Open(core.Options{
		Dir:         dir,
		TempDir:     dir,
		Parallelism: parallelism,
		Profile:     profile,
		DCCapacity:  dcCapacity,
		// The fixture's statements run >1s, so the slow-query log would
		// fire on every iteration and interleave with the benchmark
		// output the CI gates parse — silence it.
		LogWriter: io.Discard,
	})
	if err != nil {
		b.Fatal(err)
	}
	db.MustExecute(`CREATE TABLE psales (k INT, grp INT, dk INT, v FLOAT)`)
	db.MustExecute(`CREATE PROJECTION psales_super ON psales (k, grp, dk, v)
		ORDER BY k SEGMENTED BY HASH(k)`)
	db.MustExecute(`CREATE TABLE pdim (id INT, w FLOAT)`)
	db.MustExecute(`CREATE PROJECTION pdim_super ON pdim (id, w) ORDER BY id SEGMENTED BY HASH(id)`)
	const n, chunks = 400_000, 8
	for c := 0; c < chunks; c++ {
		rows := make([]types.Row, n/chunks)
		for i := range rows {
			g := c*(n/chunks) + i
			rows[i] = types.Row{
				types.NewInt(int64(g)),
				types.NewInt(int64(g % 100_000)),
				types.NewInt(int64(g * 7 % 200_000)),
				types.NewFloat(float64(g%9973) + 0.5),
			}
		}
		if err := db.Load("psales", rows, true); err != nil {
			b.Fatal(err)
		}
	}
	dim := make([]types.Row, 200_000)
	for i := range dim {
		dim[i] = types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i) * 0.25)}
	}
	if err := db.Load("pdim", dim, true); err != nil {
		b.Fatal(err)
	}
	psDBs[key] = db
	return db
}

// BenchmarkParallelScaling measures the intra-node parallel shapes against
// their serial equivalents on the same data: parallel aggregation
// (Figure 3 worker scans + batch-native resegment), partitioned parallel
// hash join (both sides resegmented on the join key), and parallel sort
// (round-robin split + order-preserving merge). rows/s is the fact-table
// throughput; scale the speedup by the host's core count — on a single-CPU
// host the parallel numbers mostly measure exchange overhead.
func BenchmarkParallelScaling(b *testing.B) {
	b.Cleanup(cleanupParallelScaling)
	workloads := []struct {
		name string
		sql  string
		rows int
	}{
		{"agg", `SELECT grp, COUNT(*) AS n, SUM(v) AS s FROM psales GROUP BY grp`, 100_000},
		{"join", `SELECT COUNT(*) AS n, SUM(w) AS s FROM psales JOIN pdim ON dk = id`, 1},
		{"sort", `SELECT k, v FROM psales ORDER BY v`, 400_000},
	}
	for _, w := range workloads {
		for _, cfg := range []struct {
			name string
			par  int
		}{{"serial", 1}, {"parallel4", 4}} {
			b.Run(w.name+"/"+cfg.name, func(b *testing.B) {
				db := parallelScalingDB(b, cfg.par, false, false)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := db.Execute(w.sql)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) != w.rows {
						b.Fatalf("rows = %d, want %d", len(res.Rows), w.rows)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(400_000)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}

// --- PR 6: profiling overhead ----------------------------------------------

// BenchmarkProfilingOverhead measures what per-operator profiling costs on
// the 400k-row aggregation: "off" is the always-on counters (two atomic
// adds per batch — the price every query pays), "on" adds wall-clock
// timing, blocked-time tracking and full record retention (engine-wide
// Profile, what PROFILE enables per statement). CI gates the on-vs-off
// delta under 5% (scripts/check_profiling_overhead.sh), so timing can
// never silently become a tax on unprofiled queries.
func BenchmarkProfilingOverhead(b *testing.B) {
	b.Cleanup(cleanupParallelScaling)
	const sql = `SELECT grp, COUNT(*) AS n, SUM(v) AS s FROM psales GROUP BY grp`
	for _, cfg := range []struct {
		name    string
		profile bool
	}{{"off", false}, {"on", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			db := parallelScalingDB(b, 1, cfg.profile, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Execute(sql)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 100_000 {
					b.Fatalf("rows = %d, want 100000", len(res.Rows))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(400_000)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// --- PR 8: Data Collector overhead -------------------------------------------

// BenchmarkDCOverhead measures what always-on Data Collector tracing costs
// on the 400k-row aggregation: "off" disables the collector outright
// (Options.DCCapacity < 0), "on" is the default always-on configuration —
// a per-statement trace with a handful of phase records, buffered locally
// and published to the ring at statement end. CI gates the on-vs-off delta
// under 5% (scripts/check_profiling_overhead.sh), the same bar the
// profiling path holds, so event collection can never silently tax every
// query.
func BenchmarkDCOverhead(b *testing.B) {
	b.Cleanup(cleanupParallelScaling)
	const sql = `SELECT grp, COUNT(*) AS n, SUM(v) AS s FROM psales GROUP BY grp`
	for _, cfg := range []struct {
		name  string
		dcOff bool
	}{{"off", true}, {"on", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			db := parallelScalingDB(b, 1, false, cfg.dcOff)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Execute(sql)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 100_000 {
					b.Fatalf("rows = %d, want 100000", len(res.Rows))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(400_000)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			if !cfg.dcOff {
				// Latency histogram quantiles accumulated by the engine
				// across this process's governed statements (log-bucketed
				// upper bounds, so coarse by design).
				b.ReportMetric(float64(metrics.QueryWallUs.Quantile(0.50)), "wall-p50-us")
				b.ReportMetric(float64(metrics.QueryWallUs.Quantile(0.99)), "wall-p99-us")
			}
		})
	}
}

// --- PR 7: continuous ingest -------------------------------------------------

// BenchmarkContinuousIngest runs the closed-loop continuous-ingest scenario
// (internal/bench/ingest.go): concurrent INSERT writers streaming into the
// WOS, the tuple mover cycling moveout/mergeout, and live + epoch-pinned
// analytical readers issuing TLP-checked queries throughout. It reports
// sustained ingest throughput and reader query latency percentiles — the
// trade the paper's hybrid WOS/ROS design is about. Any correctness
// violation (TLP identity, pinned-epoch drift) fails the benchmark.
func BenchmarkContinuousIngest(b *testing.B) {
	var last *bench.IngestReport
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunContinuousIngest(bench.IngestConfig{
			Dir:      b.TempDir(),
			Duration: 2 * time.Second,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.ReportMetric(last.IngestRowsPerSec, "ingest-rows/s")
	b.ReportMetric(float64(last.P50.Microseconds()), "p50-us")
	b.ReportMetric(float64(last.P99.Microseconds()), "p99-us")
}

// --- PR 10: high-QPS serving path --------------------------------------------

// qpsRows is the serving-path fixture size: enough blocks that a point
// lookup prunes to one 4096-row block and a range aggregate touches a few.
const qpsRows = 50_000

// qpsOpen opens a server over a ROS-resident 4-column sales table. planCache
// follows core.Options.PlanCacheSize semantics (0 default, -1 disabled).
func qpsOpen(b *testing.B, planCache int) (*server.Server, *core.Database) {
	b.Helper()
	db, err := core.Open(core.Options{
		Dir:           b.TempDir(),
		TempDir:       b.TempDir(),
		PlanCacheSize: planCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	db.MustExecute(`CREATE TABLE sales (sale_id INT, cust INT, price FLOAT, qty INT)`)
	db.MustExecute(`CREATE PROJECTION sales_super ON sales (sale_id, cust, price, qty)
		ORDER BY sale_id SEGMENTED BY HASH(sale_id)`)
	rows := make([]types.Row, qpsRows)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 997)),
			types.NewFloat(float64(i*7%9973) / 100),
			types.NewInt(int64(i%7 + 1)),
		}
	}
	if err := db.Load("sales", rows, true); err != nil {
		b.Fatal(err)
	}
	db.MustExecute(`ANALYZE_STATISTICS('sales')`)
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Listen(); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	return srv, db
}

// qpsMode is one serving configuration of BenchmarkServerQPS.
type qpsMode struct {
	name string
	// planCache / blockCache configure the two serving caches.
	planCache  int
	blockCache bool
	// prepare, when non-empty, is run once per connection before the timer.
	prepare []string
	// stmt yields the statement for global sequence number seq.
	stmt func(seq int) string
}

// BenchmarkServerQPS measures the serving path end to end: TCP clients
// issuing short repeated point lookups and range aggregates, at 1, 64 and
// 1024 connections. "cold" disables both serving caches (plan cache and
// decoded-block cache) and scatters every literal so each statement is
// novel; "cached" runs the default configuration against a hot working set;
// "prepared" additionally binds the hot statements once with PREPARE and
// reissues them via EXECUTE. Reports statements/sec and per-statement p99.
func BenchmarkServerQPS(b *testing.B) {
	// Hot working set: 32 point ids and 32 aggregate range starts.
	hotPoint := func(j int) int { return 4000 + j%32 }
	hotRange := func(j int) int { return 8192 + 64*(j%32) }
	point := func(id int) string {
		return fmt.Sprintf(`SELECT price, qty FROM sales WHERE sale_id = %d`, id)
	}
	agg := func(lo int) string {
		return fmt.Sprintf(`SELECT COUNT(*), SUM(price) FROM sales WHERE sale_id >= %d AND sale_id < %d`, lo, lo+1024)
	}
	modes := []qpsMode{
		{
			name: "cold", planCache: -1, blockCache: false,
			stmt: func(seq int) string {
				// Scattered literals: no statement repeats within a run.
				id := seq * 7919 % qpsRows
				if seq%2 == 0 {
					return point(id)
				}
				return agg(id % (qpsRows - 1024))
			},
		},
		{
			name: "cached", planCache: 0, blockCache: true,
			stmt: func(seq int) string {
				if seq%2 == 0 {
					return point(hotPoint(seq / 2))
				}
				return agg(hotRange(seq / 2))
			},
		},
		{
			name: "prepared", planCache: 0, blockCache: true,
			prepare: []string{
				`PREPARE pt AS SELECT price, qty FROM sales WHERE sale_id = $1`,
				`PREPARE ag AS SELECT COUNT(*), SUM(price) FROM sales WHERE sale_id >= $1 AND sale_id < $2`,
			},
			stmt: func(seq int) string {
				if seq%2 == 0 {
					return fmt.Sprintf(`EXECUTE pt(%d)`, hotPoint(seq/2))
				}
				lo := hotRange(seq / 2)
				return fmt.Sprintf(`EXECUTE ag(%d, %d)`, lo, lo+1024)
			},
		},
	}
	// Each connection issues stmtsPerConn statements per benchmark iteration.
	const stmtsPerConn = 4
	for _, conns := range []int{1, 64, 1024} {
		for _, m := range modes {
			b.Run(fmt.Sprintf("conns=%d/%s", conns, m.name), func(b *testing.B) {
				srv, _ := qpsOpen(b, m.planCache)
				if !m.blockCache {
					storage.SetBlockCacheBudget(0)
				}
				defer storage.SetBlockCacheBudget(storage.DefaultBlockCacheBytes)
				cs := make([]*server.Client, conns)
				for i := range cs {
					c, err := server.Dial(srv.Addr().String())
					if err != nil {
						b.Fatal(err)
					}
					cs[i] = c
					for _, p := range m.prepare {
						if _, err := c.Exec(p); err != nil {
							b.Fatal(err)
						}
					}
				}
				defer func() {
					for _, c := range cs {
						c.Close()
					}
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					srv.Shutdown(ctx)
				}()
				lats := make([][]time.Duration, conns)
				var seq atomic.Int64
				round := func(record bool) {
					var wg sync.WaitGroup
					for ci, c := range cs {
						wg.Add(1)
						go func(ci int, c *server.Client) {
							defer wg.Done()
							for k := 0; k < stmtsPerConn; k++ {
								s := m.stmt(int(seq.Add(1)))
								t0 := time.Now()
								if _, err := c.Exec(s); err != nil {
									b.Error(err)
									return
								}
								if record {
									lats[ci] = append(lats[ci], time.Since(t0))
								}
							}
						}(ci, c)
					}
					wg.Wait()
				}
				round(false) // warm connections (and, for cached modes, the caches)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					round(true)
				}
				b.StopTimer()
				var all []time.Duration
				for _, l := range lats {
					all = append(all, l...)
				}
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				total := float64(len(all))
				b.ReportMetric(total/b.Elapsed().Seconds(), "stmt/s")
				b.ReportMetric(float64(all[int(0.99*total)].Microseconds()), "p99-us")
			})
		}
	}
}

// BenchmarkServerWireFormat compares the text and binary result frames on
// the same 4-column scan, reporting wire bytes per row as counted under the
// client's read buffer. The binary frame ships each column as one
// length-prefixed encoding block, so it amortizes per-value framing that
// the text protocol pays on every field.
func BenchmarkServerWireFormat(b *testing.B) {
	const scanRows = 8192
	stmt := fmt.Sprintf(`SELECT sale_id, cust, price, qty FROM sales WHERE sale_id < %d`, scanRows)
	for _, format := range []string{"text", "binary"} {
		b.Run(format, func(b *testing.B) {
			srv, _ := qpsOpen(b, 0)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			c, err := server.Dial(srv.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.Format(format); err != nil {
				b.Fatal(err)
			}
			res, err := c.Exec(stmt) // warm caches, verify shape
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != scanRows {
				b.Fatalf("got %d rows", len(res.Rows))
			}
			start := c.BytesRead()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Exec(stmt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			wire := c.BytesRead() - start
			b.ReportMetric(float64(wire)/float64(int64(b.N)*scanRows), "bytes/row")
		})
	}
}
