// Command dbd runs the Database Designer (paper §6.3) against a database's
// catalog and a workload file of SELECT statements (one per line or
// semicolon-separated), printing the proposed CREATE PROJECTION statements.
//
//	dbd -dir /path/to/db -workload queries.sql [-policy balanced] [-sample 10000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/designer"
	"repro/internal/types"
)

func main() {
	dir := flag.String("dir", "", "database directory (required)")
	workloadPath := flag.String("workload", "", "file of SELECT statements (required)")
	policyName := flag.String("policy", "balanced", "load | balanced | query")
	sampleN := flag.Int("sample", 10000, "sample rows per table for encoding experiments")
	flag.Parse()
	if *dir == "" || *workloadPath == "" {
		fmt.Fprintln(os.Stderr, "dbd: -dir and -workload are required")
		os.Exit(1)
	}
	db, err := core.Open(core.Options{Dir: *dir})
	if err != nil {
		fatal(err)
	}
	raw, err := os.ReadFile(*workloadPath)
	if err != nil {
		fatal(err)
	}
	var workload []string
	for _, stmt := range strings.Split(string(raw), ";") {
		if s := strings.TrimSpace(stmt); s != "" {
			workload = append(workload, s)
		}
	}
	var policy designer.Policy
	switch *policyName {
	case "load":
		policy = designer.LoadOptimized
	case "balanced":
		policy = designer.Balanced
	case "query":
		policy = designer.QueryOptimized
	default:
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}
	samples := map[string][]types.Row{}
	for _, t := range db.Catalog().Tables() {
		res, err := db.Execute(fmt.Sprintf("SELECT * FROM %s LIMIT %d", t.Name, *sampleN))
		if err != nil {
			continue // tables without projections have no sample
		}
		samples[t.Name] = res.Rows
	}
	prop, err := designer.Design(db.Catalog(), workload, samples, policy)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("-- Database Designer proposal (policy: %s)\n", *policyName)
	for _, p := range prop.Projections {
		fmt.Printf("-- %s\n%s;\n", p.Reason, p.SQL())
		if len(p.Encodings) > 0 {
			var encs []string
			for col, k := range p.Encodings {
				encs = append(encs, col+"="+k.String())
			}
			fmt.Printf("--   encodings: %s\n", strings.Join(encs, ", "))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbd:", err)
	os.Exit(1)
}
