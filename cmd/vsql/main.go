// Command vsql is the interactive SQL shell (the paper's "interactive vsql
// command prompt", §6): it reads statements separated by semicolons and
// prints results as aligned tables.
//
//	vsql -dir /path/to/db [-nodes 3] [-k 1]
//
// With -serve it instead runs the TCP SQL server on the given address,
// admission-controlled by the resource governor:
//
//	vsql -dir /path/to/db -serve :5433 -mem-pool 256MB -max-concurrency 4
//
// -debug-addr starts an HTTP listener serving the engine metrics registry
// (/metrics as JSON, /debug/vars as expvar) and the standard Go profiling
// endpoints (/debug/pprof/*). -slow-query sets the threshold past which a
// statement's full per-operator profile is auto-retained in
// v_monitor.execution_engine_profiles. -dc-capacity sizes the Data
// Collector's per-stream ring buffers (v_monitor.query_phases,
// query_events, dc_* tables); 0 uses the default, negative disables
// collection.
//
// Meta commands: \q quits, \d lists tables and projections, \mover runs a
// tuple mover cycle, \epoch shows the epoch state, \stats shows governor
// workload stats.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/sql"
)

func main() {
	dir := flag.String("dir", "", "database directory (required)")
	nodes := flag.Int("nodes", 1, "cluster size")
	k := flag.Int("k", 0, "K-safety level")
	parallel := flag.Int("parallel", 0, "intra-node parallelism")
	serveAddr := flag.String("serve", "", "run the TCP SQL server on this address instead of the shell (e.g. :5433)")
	memPool := flag.String("mem-pool", "", "global query-memory pool, e.g. 256MB or 1GB (default 1GB)")
	maxConc := flag.Int("max-concurrency", 0, "max simultaneously running queries (default 8)")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission queue timeout (default 30s)")
	tempDir := flag.String("tmp", "", "spill directory (default system temp)")
	defaultPool := flag.String("pool", "", "resource pool new sessions admit against (default: general; see CREATE RESOURCE POOL)")
	debugAddr := flag.String("debug-addr", "", "serve engine metrics and pprof on this HTTP address (e.g. localhost:6060)")
	slowQuery := flag.Duration("slow-query", 0, "auto-retain full operator profiles of statements slower than this (default 1s; negative disables)")
	dcCapacity := flag.Int("dc-capacity", 0, "Data Collector ring capacity per event stream (default 1024; negative disables collection)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "vsql: -dir is required")
		os.Exit(1)
	}
	poolBytes, err := parseBytes(*memPool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsql: -mem-pool:", err)
		os.Exit(1)
	}
	db, err := core.Open(core.Options{
		Dir: *dir, Nodes: *nodes, K: *k, Parallelism: *parallel,
		MemPoolBytes:   poolBytes,
		MaxConcurrency: *maxConc,
		QueueTimeout:   *queueTimeout,
		TempDir:        *tempDir,
		DefaultPool:    *defaultPool,

		SlowQueryThreshold: *slowQuery,
		DCCapacity:         *dcCapacity,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsql:", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, metrics.Handler(metrics.Default)); err != nil {
				fmt.Fprintln(os.Stderr, "vsql: debug listener:", err)
			}
		}()
		fmt.Printf("vsql: debug HTTP on %s (/metrics, /debug/vars, /debug/pprof/)\n", *debugAddr)
	}
	if *serveAddr != "" {
		if err := serve(db, *serveAddr); err != nil {
			fmt.Fprintln(os.Stderr, "vsql:", err)
			os.Exit(1)
		}
		return
	}
	session := db.NewSession()
	defer session.Close()
	fmt.Println("vsql — type \\q to quit, \\d to describe, statements end with ;")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "=> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !metaCommand(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "-> "
			continue
		}
		prompt = "=> "
		stmt := buf.String()
		buf.Reset()
		res, err := session.Execute(stmt)
		if err != nil {
			fmt.Println("ERROR:", err)
			continue
		}
		printResult(res)
	}
}

// serve runs the TCP server until SIGINT/SIGTERM, then drains gracefully.
func serve(db *core.Database, addr string) error {
	srv := server.New(db, server.Config{Addr: addr})
	if err := srv.Listen(); err != nil {
		return err
	}
	gcfg := db.Governor().Config()
	fmt.Printf("vsql: serving on %s (pool %s, concurrency %d, queue timeout %s)\n",
		srv.Addr(), formatBytes(gcfg.PoolBytes), gcfg.MaxConcurrency, gcfg.QueueTimeout)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, server.ErrServerClosed) {
			return nil
		}
		return err
	case s := <-sig:
		fmt.Printf("vsql: %s, draining (%d sessions served)\n", s, srv.Sessions.Load())
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// parseBytes reads "64MB", "1GB", "512KB" or a plain byte count.
// parseBytes accepts the same size grammar as SQL MEMORYSIZE literals
// ("256MB", "64K", "1G", plain bytes); empty means "use the default".
func parseBytes(s string) (int64, error) {
	if strings.TrimSpace(s) == "" {
		return 0, nil
	}
	return sql.ParseByteSize(s)
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func metaCommand(db *core.Database, cmd string) bool {
	switch {
	case cmd == "\\q":
		return false
	case cmd == "\\d":
		for _, t := range db.Catalog().Tables() {
			fmt.Printf("table %s %s\n", t.Name, t.Schema)
			for _, p := range db.Catalog().ProjectionsFor(t.Name) {
				kind := "projection"
				if p.IsSuper {
					kind = "super projection"
				}
				if p.IsBuddy {
					kind = "buddy projection"
				}
				seg := p.Seg.ExprText
				if p.Seg.Replicated {
					seg = "REPLICATED"
				}
				fmt.Printf("  %s %s order by %v seg %s\n", kind, p.Name, p.SortOrder, seg)
			}
		}
	case cmd == "\\mover":
		moved, merged, err := db.RunTupleMover()
		if err != nil {
			fmt.Println("ERROR:", err)
		} else {
			fmt.Printf("tuple mover: %d rows moved out, %d mergeouts\n", moved, merged)
		}
	case cmd == "\\epoch":
		e := db.Txns().Epochs
		fmt.Printf("current epoch %d, read epoch %d, AHM %d\n", e.Current(), e.ReadEpoch(), e.AHM())
	case cmd == "\\stats":
		fmt.Println(db.Governor().Stats())
	default:
		fmt.Println("unknown meta command; try \\q, \\d, \\mover, \\epoch, \\stats")
	}
	return true
}

func printResult(res *core.Result) {
	if res.Explain != "" && res.Schema == nil {
		fmt.Print(res.Explain)
		return
	}
	if res.Schema == nil {
		fmt.Println(res.Message)
		return
	}
	widths := make([]int, res.Schema.Len())
	names := res.Schema.Names()
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			cells[r][c] = v.String()
			if len(cells[r][c]) > widths[c] {
				widths[c] = len(cells[r][c])
			}
		}
	}
	printRow := func(vals []string) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%-*s", widths[i], v)
		}
		fmt.Println(" " + strings.Join(parts, " | "))
	}
	printRow(names)
	sep := make([]string, len(names))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range cells {
		printRow(row)
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
