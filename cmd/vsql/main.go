// Command vsql is the interactive SQL shell (the paper's "interactive vsql
// command prompt", §6): it reads statements separated by semicolons and
// prints results as aligned tables.
//
//	vsql -dir /path/to/db [-nodes 3] [-k 1]
//
// Meta commands: \q quits, \d lists tables and projections, \mover runs a
// tuple mover cycle, \epoch shows the epoch state.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	dir := flag.String("dir", "", "database directory (required)")
	nodes := flag.Int("nodes", 1, "cluster size")
	k := flag.Int("k", 0, "K-safety level")
	parallel := flag.Int("parallel", 0, "intra-node parallelism")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "vsql: -dir is required")
		os.Exit(1)
	}
	db, err := core.Open(core.Options{Dir: *dir, Nodes: *nodes, K: *k, Parallelism: *parallel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsql:", err)
		os.Exit(1)
	}
	session := db.NewSession()
	defer session.Close()
	fmt.Println("vsql — type \\q to quit, \\d to describe, statements end with ;")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "=> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !metaCommand(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "-> "
			continue
		}
		prompt = "=> "
		stmt := buf.String()
		buf.Reset()
		res, err := session.Execute(stmt)
		if err != nil {
			fmt.Println("ERROR:", err)
			continue
		}
		printResult(res)
	}
}

func metaCommand(db *core.Database, cmd string) bool {
	switch {
	case cmd == "\\q":
		return false
	case cmd == "\\d":
		for _, t := range db.Catalog().Tables() {
			fmt.Printf("table %s %s\n", t.Name, t.Schema)
			for _, p := range db.Catalog().ProjectionsFor(t.Name) {
				kind := "projection"
				if p.IsSuper {
					kind = "super projection"
				}
				if p.IsBuddy {
					kind = "buddy projection"
				}
				seg := p.Seg.ExprText
				if p.Seg.Replicated {
					seg = "REPLICATED"
				}
				fmt.Printf("  %s %s order by %v seg %s\n", kind, p.Name, p.SortOrder, seg)
			}
		}
	case cmd == "\\mover":
		moved, merged, err := db.RunTupleMover()
		if err != nil {
			fmt.Println("ERROR:", err)
		} else {
			fmt.Printf("tuple mover: %d rows moved out, %d mergeouts\n", moved, merged)
		}
	case cmd == "\\epoch":
		e := db.Txns().Epochs
		fmt.Printf("current epoch %d, read epoch %d, AHM %d\n", e.Current(), e.ReadEpoch(), e.AHM())
	default:
		fmt.Println("unknown meta command; try \\q, \\d, \\mover, \\epoch")
	}
	return true
}

func printResult(res *core.Result) {
	if res.Explain != "" && res.Schema == nil {
		fmt.Print(res.Explain)
		return
	}
	if res.Schema == nil {
		fmt.Println(res.Message)
		return
	}
	widths := make([]int, res.Schema.Len())
	names := res.Schema.Names()
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			cells[r][c] = v.String()
			if len(cells[r][c]) > widths[c] {
				widths[c] = len(cells[r][c])
			}
		}
	}
	printRow := func(vals []string) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%-*s", widths[i], v)
		}
		fmt.Println(" " + strings.Join(parts, " | "))
	}
	printRow(names)
	sep := make([]string, len(names))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range cells {
		printRow(row)
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
