// Command vbench regenerates the paper's tables and figures:
//
//	vbench -exp table3            C-Store vs Vertica, Q1-Q7 + disk (Table 3)
//	vbench -exp table4            compression experiments (Table 4)
//	vbench -exp locks             lock compatibility + conversion (Tables 1-2)
//	vbench -exp figure3           the parallel query plan (Figure 3)
//	vbench -exp all               everything
//
// Flags -scale, -meter-rows, -iters control workload sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"

	"repro/internal/txn"
	"repro/internal/types"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3, table4, locks, figure3, all")
	scale := flag.Int("scale", bench.Table3Scale, "lineitem rows for table3")
	meterRows := flag.Int("meter-rows", 2_000_000, "meter rows for table4 (paper used 200M)")
	intRows := flag.Int("int-rows", 1_000_000, "random integers for table4")
	iters := flag.Int("iters", 3, "timing iterations per query")
	parallel := flag.Int("parallel", 4, "intra-node parallelism")
	dir := flag.String("dir", "", "work directory (default: temp)")
	perColumn := flag.Bool("percolumn", true, "print per-column meter compression")
	flag.Parse()

	work := *dir
	if work == "" {
		var err error
		work, err = os.MkdirTemp("", "vbench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(work)
	}
	switch *exp {
	case "table3":
		runTable3(work, *scale, *iters, *parallel)
	case "table4":
		runTable4(work, *intRows, *meterRows, *perColumn)
	case "locks":
		runLocks()
	case "figure3":
		runFigure3(work, *parallel)
	case "all":
		runLocks()
		runTable3(work, *scale, *iters, *parallel)
		runTable4(work, *intRows, *meterRows, *perColumn)
		runFigure3(filepath.Join(work, "fig3"), *parallel)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func runTable3(dir string, scale, iters, parallel int) {
	fmt.Printf("== Table 3: C-Store vs Vertica (lineitem rows = %d) ==\n", scale)
	res, err := bench.Table3(filepath.Join(dir, "table3"), scale, iters, parallel)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Format())
}

func runTable4(dir string, intRows, meterRows int, perColumn bool) {
	fmt.Printf("== Table 4: compression ==\n")
	rows, err := bench.Table4Ints(filepath.Join(dir, "t4ints"), intRows, 10_000_000)
	if err != nil {
		fatal(err)
	}
	fmt.Println(bench.FormatCompression(
		fmt.Sprintf("%d Random Integers in [1, 10M]", intRows), rows))
	summary, perCol, err := bench.Table4Meter(filepath.Join(dir, "t4meter"), meterRows)
	if err != nil {
		fatal(err)
	}
	fmt.Println(bench.FormatCompression(
		fmt.Sprintf("Customer meter data (%d rows)", meterRows), summary))
	if perColumn {
		fmt.Println(bench.FormatCompression("Per column (paper §8.2.2)", perCol))
	}
}

func runLocks() {
	fmt.Println("== Table 1: Lock Compatibility Matrix ==")
	fmt.Println(txn.CompatibilityTable())
	fmt.Println("== Table 2: Lock Conversion Matrix ==")
	fmt.Println(txn.ConversionTable())
}

func runFigure3(dir string, parallel int) {
	fmt.Println("== Figure 3: parallel query plan ==")
	db, err := core.Open(core.Options{Dir: dir, Parallelism: parallel})
	if err != nil {
		fatal(err)
	}
	mustExec(db, `CREATE TABLE sales (sale_id INT, cust INT, price FLOAT)`)
	mustExec(db, `CREATE PROJECTION sales_super ON sales (sale_id, cust, price)
		ORDER BY sale_id SEGMENTED BY HASH(sale_id)`)
	// Several loads produce several ROS containers for the StorageUnion
	// workers to divide.
	for l := 0; l < parallel; l++ {
		rows := make([]types.Row, 50_000)
		for i := range rows {
			id := l*len(rows) + i
			rows[i] = types.Row{
				types.NewInt(int64(id)), types.NewInt(int64(id % 1000)),
				types.NewFloat(float64(id)),
			}
		}
		if err := db.Load("sales", rows, true); err != nil {
			fatal(err)
		}
	}
	res, err := db.Execute(`EXPLAIN SELECT cust, COUNT(*), AVG(price) FROM sales
		WHERE sale_id >= 0 GROUP BY cust`)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Explain)
}

func mustExec(db *core.Database, sql string) {
	if _, err := db.Execute(sql); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbench:", err)
	os.Exit(1)
}
