package resmgr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

const kib = int64(1 << 10)

// TestPoolReservationHonored verifies the borrow-from-general rule: memory
// reserved by a pool is never handed to another pool, while the reserving
// pool itself may borrow beyond its reservation when general memory is free.
func TestPoolReservationHonored(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 8, QueueTimeout: -1})
	if err := g.CreatePool(PoolConfig{Name: "etl", MemBytes: 512 * kib}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// General may never eat into etl's 512K reservation: a 768K request can
	// never fit beside it, so admission fails fast instead of queueing.
	if _, err := g.AdmitPoolBytes(ctx, GeneralPool, 768*kib); err == nil {
		t.Fatal("768K general grant should not fit beside a 512K reservation")
	}

	// 512K on general fits exactly beside the reservation.
	gr1, err := g.AdmitPoolBytes(ctx, GeneralPool, 512*kib)
	if err != nil {
		t.Fatal(err)
	}
	// etl gets its guaranteed 512K even with general's 512K outstanding.
	gr2, err := g.AdmitPoolBytes(ctx, "etl", 512*kib)
	if err != nil {
		t.Fatal(err)
	}
	gr1.Release()
	gr2.Release()

	// With general idle, etl may borrow the whole pool.
	gr3, err := g.AdmitPoolBytes(ctx, "etl", 1024*kib)
	if err != nil {
		t.Fatal(err)
	}
	gr3.Release()
}

// TestPoolMaxMemCapsBorrowing checks MAXMEMORYSIZE == MEMORYSIZE disables
// borrowing entirely.
func TestPoolMaxMemCapsBorrowing(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 8})
	err := g.CreatePool(PoolConfig{Name: "capped", MemBytes: 128 * kib, MaxMemBytes: 128 * kib})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AdmitPoolBytes(context.Background(), "capped", 256*kib); err == nil {
		t.Fatal("grant above the pool cap must be rejected outright")
	}
	gr, err := g.AdmitPoolBytes(context.Background(), "capped", 128*kib)
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Release()
	st, _ := g.PoolStatus("capped")
	if st.BorrowedBytes != 0 || st.InUseBytes != 128*kib {
		t.Fatalf("capped pool accounting: %+v", st)
	}
}

// TestPoolConcurrencyIsolation verifies one pool's saturated slots do not
// block another pool's admission.
func TestPoolConcurrencyIsolation(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 4, QueueTimeout: time.Minute})
	if err := g.CreatePool(PoolConfig{Name: "a", MaxConcurrency: 1, GrantBytes: 64 * kib}); err != nil {
		t.Fatal(err)
	}
	if err := g.CreatePool(PoolConfig{Name: "b", MaxConcurrency: 1, GrantBytes: 64 * kib}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	hold, err := g.AdmitPoolBytes(ctx, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	// a is saturated: a second a-admission queues...
	queued := make(chan error, 1)
	go func() {
		gr, err := g.AdmitPoolBytes(ctx, "a", 0)
		if gr != nil {
			gr.Release()
		}
		queued <- err
	}()
	for st, _ := g.PoolStatus("a"); st.Waiting != 1; st, _ = g.PoolStatus("a") {
		time.Sleep(time.Millisecond)
	}
	// ...while b admits immediately.
	gr, err := g.AdmitPoolBytes(ctx, "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	gr.Release()
	hold.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued a-admission after release: %v", err)
	}
}

// TestPoolQueueTimeout exercises the per-pool timeout override.
func TestPoolQueueTimeout(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 4, QueueTimeout: time.Hour})
	if err := g.CreatePool(PoolConfig{Name: "impatient", MaxConcurrency: 1, QueueTimeout: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	hold, err := g.AdmitPoolBytes(context.Background(), "impatient", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	if _, err := g.AdmitPoolBytes(context.Background(), "impatient", 0); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("expected ErrQueueTimeout, got %v", err)
	}
	st, _ := g.PoolStatus("impatient")
	if st.TimedOut != 1 {
		t.Fatalf("pool timeout counter = %d", st.TimedOut)
	}
}

// TestAlterPoolWakesQueue checks loosening MAXCONCURRENCY dispatches queued
// admissions without a release.
func TestAlterPoolWakesQueue(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 4, QueueTimeout: time.Minute})
	if err := g.CreatePool(PoolConfig{Name: "narrow", MaxConcurrency: 1, GrantBytes: 64 * kib}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	hold, err := g.AdmitPoolBytes(ctx, "narrow", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	got := make(chan *Grant, 1)
	go func() {
		gr, err := g.AdmitPoolBytes(ctx, "narrow", 0)
		if err != nil {
			t.Error(err)
		}
		got <- gr
	}()
	for st, _ := g.PoolStatus("narrow"); st.Waiting != 1; st, _ = g.PoolStatus("narrow") {
		time.Sleep(time.Millisecond)
	}
	two := 2
	if err := g.AlterPool("narrow", PoolAlter{MaxConcurrency: &two}); err != nil {
		t.Fatal(err)
	}
	gr := <-got
	if gr == nil {
		t.Fatal("alter did not admit the queued query")
	}
	gr.Release()
}

// TestDropPoolSafety: the general pool and busy pools refuse to drop.
func TestDropPoolSafety(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib})
	if err := g.DropPool(GeneralPool); err == nil {
		t.Fatal("dropping general must fail")
	}
	if err := g.CreatePool(PoolConfig{Name: "busy"}); err != nil {
		t.Fatal(err)
	}
	gr, err := g.AdmitPoolBytes(context.Background(), "busy", 64*kib)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.DropPool("busy"); err == nil {
		t.Fatal("dropping a pool with a running query must fail")
	}
	gr.Release()
	if err := g.DropPool("busy"); err != nil {
		t.Fatal(err)
	}
	if g.HasPool("busy") {
		t.Fatal("pool still present after drop")
	}
}

// TestPoolReservationOverCommit rejects reservations exceeding the global
// pool.
func TestPoolReservationOverCommit(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib})
	if err := g.CreatePool(PoolConfig{Name: "half", MemBytes: 512 * kib}); err != nil {
		t.Fatal(err)
	}
	if err := g.CreatePool(PoolConfig{Name: "toobig", MemBytes: 768 * kib}); err == nil {
		t.Fatal("reservations beyond the global pool must be rejected")
	}
	mb := int64(768 * kib)
	if err := g.AlterPool("half", PoolAlter{MemBytes: &mb}); err != nil {
		t.Fatal(err) // 768K alone fits
	}
	if err := g.CreatePool(PoolConfig{Name: "slim", MemBytes: 512 * kib}); err == nil {
		t.Fatal("second reservation pushing the total over must be rejected")
	}
}

// TestProfileRingBounded verifies the profile ring wraps at capacity and
// keeps the newest entries.
func TestProfileRingBounded(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, ProfileCapacity: 4})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		gr, err := g.AdmitBytes(WithLabel(ctx, fmt.Sprintf("q%d", i)), 64*kib)
		if err != nil {
			t.Fatal(err)
		}
		gr.ReportRows(int64(i))
		gr.Release()
	}
	profs := g.Profiles()
	if len(profs) != 4 {
		t.Fatalf("ring length = %d, want 4", len(profs))
	}
	for i, p := range profs {
		if want := fmt.Sprintf("q%d", 6+i); p.Label != want {
			t.Fatalf("profile %d label = %q, want %q", i, p.Label, want)
		}
		if p.Pool != GeneralPool || p.ID != int64(7+i) {
			t.Fatalf("profile %d = %+v", i, p)
		}
	}
}

// TestPoolContentionDrainsToZero is the borrow/return soak: N goroutines
// hammer M pools with random grant sizes; after the drain every pool's
// accounting must return to zero with no leaked grants, bytes or slots.
// Run with -race (CI does).
func TestPoolContentionDrainsToZero(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 2048 * kib, MaxConcurrency: 6, QueueTimeout: time.Minute})
	pools := []string{GeneralPool}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("pool%d", i)
		if err := g.CreatePool(PoolConfig{
			Name:           name,
			MemBytes:       256 * kib,
			MaxMemBytes:    1024 * kib,
			MaxConcurrency: 2 + i,
		}); err != nil {
			t.Fatal(err)
		}
		pools = append(pools, name)
	}
	const (
		workers  = 16
		perChain = 25
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	var admitted int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perChain; i++ {
				pool := pools[rng.Intn(len(pools))]
				bytes := (1 + int64(rng.Intn(8))) * 64 * kib
				gr, err := g.AdmitPoolBytes(WithLabel(ctx, "soak"), pool, bytes)
				if err != nil {
					t.Errorf("admit %s/%d: %v", pool, bytes, err)
					return
				}
				gr.ReportRows(1)
				if rng.Intn(4) == 0 {
					gr.ReportSpill(int64(rng.Intn(1000)))
				}
				if rng.Intn(2) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
				gr.Release()
				gr.Release() // idempotent double release must not corrupt accounting
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()

	st := g.Stats()
	if st.Running != 0 || st.Waiting != 0 || st.InUseBytes != 0 {
		t.Fatalf("governor did not drain: %+v", st)
	}
	if st.Admitted != admitted || admitted != workers*perChain {
		t.Fatalf("admitted %d, expected %d", st.Admitted, admitted)
	}
	var perPoolAdmitted, perPoolRows int64
	for _, ps := range g.Pools() {
		if ps.Running != 0 || ps.Waiting != 0 || ps.InUseBytes != 0 || ps.BorrowedBytes != 0 {
			t.Fatalf("pool %s did not drain: %+v", ps.Name, ps)
		}
		perPoolAdmitted += ps.Admitted
		perPoolRows += ps.RowsReturned
	}
	if perPoolAdmitted != st.Admitted {
		t.Fatalf("per-pool admitted %d != aggregate %d", perPoolAdmitted, st.Admitted)
	}
	if perPoolRows != st.RowsReturned || perPoolRows != admitted {
		t.Fatalf("per-pool rows %d, aggregate %d, admitted %d", perPoolRows, st.RowsReturned, admitted)
	}
	wantProfiles := int(admitted)
	if wantProfiles > DefaultProfileCapacity {
		wantProfiles = DefaultProfileCapacity
	}
	if len(g.Profiles()) != wantProfiles {
		t.Fatalf("profiles retained = %d, want %d", len(g.Profiles()), wantProfiles)
	}
}

// TestUnknownPool rejects admission against a pool that does not exist.
func TestUnknownPool(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib})
	if _, err := g.AdmitPoolBytes(context.Background(), "nope", 0); err == nil {
		t.Fatal("admission on an unknown pool must fail")
	}
	if _, err := g.Admit(WithPool(context.Background(), "nope")); err == nil {
		t.Fatal("context-tagged unknown pool must fail")
	}
}

// TestPoolAPIEdgeCases sweeps the small accessors and validation branches:
// alter of every knob, disabled profiling, grant metadata and nil-safety.
func TestPoolAPIEdgeCases(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 2, ProfileCapacity: -1})
	if got := g.Config().MaxConcurrency; got != 2 {
		t.Fatalf("Config() = %+v", g.Config())
	}
	if err := g.CreatePool(PoolConfig{}); err == nil {
		t.Fatal("empty pool name must fail")
	}
	if err := g.CreatePool(PoolConfig{Name: "neg", MemBytes: -1}); err == nil {
		t.Fatal("negative sizes must fail")
	}
	if err := g.CreatePool(PoolConfig{Name: "neg", MaxConcurrency: -2}); err == nil {
		t.Fatal("negative concurrency must fail")
	}
	if err := g.CreatePool(PoolConfig{Name: "p", MemBytes: 128 * kib, GrantBytes: 64 * kib,
		PlannedConcurrency: 2, QueueTimeout: time.Second}); err != nil {
		t.Fatal(err)
	}
	mem, maxMem, grant := int64(256*kib), int64(512*kib), int64(128*kib)
	pc, mc := 4, 3
	qt := 2 * time.Second
	if err := g.AlterPool("p", PoolAlter{
		MemBytes: &mem, MaxMemBytes: &maxMem, GrantBytes: &grant,
		PlannedConcurrency: &pc, MaxConcurrency: &mc, QueueTimeout: &qt,
	}); err != nil {
		t.Fatal(err)
	}
	st, ok := g.PoolStatus("p")
	if !ok || st.MemBytes != mem || st.MaxMemBytes != maxMem || st.GrantBytes != grant ||
		st.PlannedConcurrency != pc || st.MaxConcurrency != mc || st.QueueTimeout != qt {
		t.Fatalf("altered status = %+v", st)
	}
	if _, ok := g.PoolStatus("nosuch"); ok {
		t.Fatal("PoolStatus on unknown pool")
	}
	huge := int64(2048 * kib)
	if err := g.AlterPool("p", PoolAlter{MemBytes: &huge}); err == nil {
		t.Fatal("alter beyond the global pool must fail")
	}

	gr, err := g.Admit(WithPool(WithLabel(context.Background(), "labeled"), "p"))
	if err != nil {
		t.Fatal(err)
	}
	if gr.Pool() != "p" || gr.Bytes() != grant || gr.QueueWait() != 0 {
		t.Fatalf("grant metadata: pool=%q bytes=%d wait=%s", gr.Pool(), gr.Bytes(), gr.QueueWait())
	}
	gr.SetError(errors.New("boom"))
	gr.SetError(nil) // no-op
	gr.Release()
	if profs := g.Profiles(); len(profs) != 0 {
		t.Fatalf("profiling disabled, got %d profiles", len(profs))
	}
	if g.Stats().String() == "" {
		t.Fatal("Stats stringer")
	}

	// nil-grant safety.
	var nilGr *Grant
	if nilGr.Pool() != "" || nilGr.Bytes() != 0 || nilGr.QueueWait() != 0 {
		t.Fatal("nil grant accessors")
	}
	nilGr.SetError(errors.New("x"))

	// Context helpers on untagged/nil contexts.
	if PoolFromContext(context.Background()) != "" || PoolFromContext(nil) != "" {
		t.Fatal("PoolFromContext zero values")
	}
	if LabelFromContext(context.Background()) != "" || LabelFromContext(nil) != "" {
		t.Fatal("LabelFromContext zero values")
	}
}

// TestInfeasibleAdmissionFailsFast: a request that cannot fit even on a
// fully drained governor errors immediately instead of queueing to timeout.
func TestInfeasibleAdmissionFailsFast(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 8, QueueTimeout: -1})
	if err := g.CreatePool(PoolConfig{Name: "hog", MemBytes: 1024 * kib}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := g.AdmitPoolBytes(context.Background(), GeneralPool, 64*kib); err == nil {
		t.Fatal("general admission beside a full reservation must fail")
	}
	if time.Since(start) > time.Second {
		t.Fatal("infeasible admission blocked instead of failing fast")
	}
	// The reserving pool itself still admits.
	gr, err := g.AdmitPoolBytes(context.Background(), "hog", 0)
	if err != nil {
		t.Fatal(err)
	}
	gr.Release()
}

// TestReservationShrinksDefaultGrants: a legal reservation must not brick
// other pools' default admissions — derived grants shrink to the unreserved
// remainder.
func TestReservationShrinksDefaultGrants(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 2}) // general grant 512K
	if err := g.CreatePool(PoolConfig{Name: "etl", MemBytes: 640 * kib}); err != nil {
		t.Fatal(err)
	}
	gr, err := g.Admit(context.Background()) // general default admission
	if err != nil {
		t.Fatalf("general admission bricked by a legal reservation: %v", err)
	}
	if gr.Bytes() != 384*kib { // the unreserved remainder
		t.Fatalf("general grant = %d, want %d", gr.Bytes(), 384*kib)
	}
	gr.Release()
	st, _ := g.PoolStatus(GeneralPool)
	if st.EffGrantBytes != 384*kib {
		t.Fatalf("status grant = %d", st.EffGrantBytes)
	}
}
