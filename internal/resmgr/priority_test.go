package resmgr

import (
	"context"
	"testing"
	"time"
)

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPriorityOrdersAdmissionQueue: when a release frees the pool, the
// higher-priority pool's waiter is served before an earlier-enqueued waiter
// of a lower-priority pool.
func TestPriorityOrdersAdmissionQueue(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 64 << 10, MaxConcurrency: 4, QueueTimeout: -1})
	if err := g.CreatePool(PoolConfig{Name: "batch", Priority: -1}); err != nil {
		t.Fatal(err)
	}
	if err := g.CreatePool(PoolConfig{Name: "realtime", Priority: 5}); err != nil {
		t.Fatal(err)
	}
	// Fill the whole global pool so both waiters must queue.
	hold, err := g.AdmitPoolBytes(context.Background(), GeneralPool, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	type admitted struct {
		gr  *Grant
		err error
	}
	batchCh := make(chan admitted, 1)
	go func() {
		gr, err := g.AdmitPoolBytes(context.Background(), "batch", 64<<10)
		batchCh <- admitted{gr, err}
	}()
	waitFor(t, "batch waiter to queue", func() bool {
		st, _ := g.PoolStatus("batch")
		return st.Waiting == 1
	})
	rtCh := make(chan admitted, 1)
	go func() {
		gr, err := g.AdmitPoolBytes(context.Background(), "realtime", 64<<10)
		rtCh <- admitted{gr, err}
	}()
	waitFor(t, "realtime waiter to queue", func() bool {
		st, _ := g.PoolStatus("realtime")
		return st.Waiting == 1
	})

	// Release: realtime (priority 5) must win the freed memory even though
	// batch queued first.
	hold.Release()
	rt := <-rtCh
	if rt.err != nil {
		t.Fatalf("realtime admission failed: %v", rt.err)
	}
	if st, _ := g.PoolStatus("batch"); st.Waiting != 1 {
		t.Fatalf("batch waiter should still be queued, status %+v", st)
	}
	select {
	case b := <-batchCh:
		t.Fatalf("batch admitted before realtime released: %+v", b)
	default:
	}
	rt.gr.Release()
	b := <-batchCh
	if b.err != nil {
		t.Fatalf("batch admission failed after realtime released: %v", b.err)
	}
	b.gr.Release()
}

// TestGrantCarriesRuntimeCap: grants snapshot their pool's RUNTIMECAP at
// admission; ALTER applies to subsequent admissions.
func TestGrantCarriesRuntimeCap(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20})
	if err := g.CreatePool(PoolConfig{Name: "capped", RuntimeCap: 250 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	gr, err := g.AdmitPoolBytes(context.Background(), "capped", 0)
	if err != nil {
		t.Fatal(err)
	}
	if gr.RuntimeCap() != 250*time.Millisecond {
		t.Fatalf("grant runtime cap = %s", gr.RuntimeCap())
	}
	gr.Release()
	d := time.Second
	if err := g.AlterPool("capped", PoolAlter{RuntimeCap: &d}); err != nil {
		t.Fatal(err)
	}
	gr2, err := g.AdmitPoolBytes(context.Background(), "capped", 0)
	if err != nil {
		t.Fatal(err)
	}
	if gr2.RuntimeCap() != time.Second {
		t.Fatalf("altered runtime cap = %s", gr2.RuntimeCap())
	}
	gr2.Release()
	var nilGrant *Grant
	if nilGrant.RuntimeCap() != 0 {
		t.Fatal("nil grant should have no runtime cap")
	}
	if err := g.CreatePool(PoolConfig{Name: "bad", RuntimeCap: -time.Second}); err == nil {
		t.Fatal("negative runtime cap should be rejected")
	}
}
