// Package resmgr is the workload and resource management subsystem: a
// resource governor that owns a global memory pool shared by all concurrent
// queries, hands out per-query memory grants, and gates query starts through
// an admission queue with bounded concurrency and queue timeouts.
//
// The paper (§6.1) gives every operator a memory budget so that "all
// operators are capable of handling arbitrary sized inputs ... by
// externalizing"; resmgr supplies the layer above those budgets: where the
// bytes come from when many statements run at once, which statement runs
// next, and how a statement in flight is cancelled and its memory returned.
//
// Usage:
//
//	gov := resmgr.NewGovernor(resmgr.Config{PoolBytes: 32 << 20, MaxConcurrency: 2})
//	grant, err := gov.Admit(ctx)          // blocks in FIFO order; honors ctx
//	if err != nil { ... }                 // ErrQueueTimeout or ctx.Err()
//	defer grant.Release()                 // returns memory + slot, wakes queue
//	budget := grant.OperatorBudget(nPipelines)
package resmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults applied by NewGovernor when Config fields are zero.
const (
	DefaultPoolBytes      = 1 << 30 // 1 GiB global pool
	DefaultMaxConcurrency = 8
	DefaultQueueTimeout   = 30 * time.Second
)

// ErrQueueTimeout is returned by Admit when a query waits in the admission
// queue longer than Config.QueueTimeout.
var ErrQueueTimeout = errors.New("resmgr: admission queue timeout")

// Config sets the governor's knobs.
type Config struct {
	// PoolBytes is the global memory pool shared by all running queries.
	PoolBytes int64
	// MaxConcurrency bounds simultaneously running queries; excess queries
	// queue FIFO.
	MaxConcurrency int
	// QueueTimeout bounds time spent queued before Admit fails with
	// ErrQueueTimeout. Negative disables the timeout; zero means default.
	QueueTimeout time.Duration
	// GrantBytes is the memory grant per query. Zero derives
	// PoolBytes/MaxConcurrency so a full complement of running queries
	// exactly consumes the pool.
	GrantBytes int64
}

// Stats is a snapshot of governor counters.
type Stats struct {
	// Admitted counts queries granted admission (including those that later
	// failed).
	Admitted int64
	// Queued counts admissions that had to wait for a slot or memory.
	Queued int64
	// TimedOut counts admissions that failed with ErrQueueTimeout.
	TimedOut int64
	// Canceled counts admissions abandoned because their context ended
	// while queued.
	Canceled int64
	// Running is the number of queries currently holding a grant.
	Running int
	// Waiting is the current admission queue length.
	Waiting int
	// InUseBytes is pool memory currently granted.
	InUseBytes int64
	// PoolBytes echoes the configured pool size.
	PoolBytes int64
	// PeakRunning is the high-water mark of Running.
	PeakRunning int
	// TotalQueueWait accumulates time queries spent queued.
	TotalQueueWait time.Duration
	// RowsReturned, SpilledBytes aggregate released grants' counters.
	RowsReturned int64
	SpilledBytes int64
}

// waiter is one queued admission request.
type waiter struct {
	bytes   int64
	ready   chan struct{} // closed by dispatch under g.mu when granted
	granted bool
}

// Governor owns the pool and the admission queue.
type Governor struct {
	cfg Config

	mu      sync.Mutex
	inUse   int64
	running int
	queue   []*waiter

	// counters (under mu)
	admitted    int64
	queuedTotal int64
	timedOut    int64
	canceled    int64
	peakRunning int
	queueWait   time.Duration
	rows        int64
	spilled     int64
}

// NewGovernor builds a governor, applying defaults for zero Config fields.
func NewGovernor(cfg Config) *Governor {
	if cfg.PoolBytes <= 0 {
		cfg.PoolBytes = DefaultPoolBytes
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = DefaultMaxConcurrency
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.GrantBytes <= 0 {
		cfg.GrantBytes = cfg.PoolBytes / int64(cfg.MaxConcurrency)
		if cfg.GrantBytes < 64<<10 {
			cfg.GrantBytes = 64 << 10
		}
	}
	if cfg.GrantBytes > cfg.PoolBytes {
		cfg.GrantBytes = cfg.PoolBytes
	}
	return &Governor{cfg: cfg}
}

// Config returns the effective (default-applied) configuration.
func (g *Governor) Config() Config { return g.cfg }

// Admit blocks until the query may run, returning its memory grant. Order is
// FIFO. Fails with ctx.Err() if ctx ends first, or ErrQueueTimeout after
// Config.QueueTimeout in the queue.
func (g *Governor) Admit(ctx context.Context) (*Grant, error) {
	return g.AdmitBytes(ctx, g.cfg.GrantBytes)
}

// AdmitBytes admits with an explicit grant size (workload classes wanting
// bigger or smaller grants than the default).
func (g *Governor) AdmitBytes(ctx context.Context, bytes int64) (*Grant, error) {
	if bytes <= 0 {
		bytes = g.cfg.GrantBytes
	}
	if bytes > g.cfg.PoolBytes {
		return nil, fmt.Errorf("resmgr: grant %d bytes exceeds pool %d bytes", bytes, g.cfg.PoolBytes)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	enqueued := time.Now()
	g.mu.Lock()
	// Fast path: nothing queued ahead and resources free.
	if len(g.queue) == 0 && g.running < g.cfg.MaxConcurrency && g.inUse+bytes <= g.cfg.PoolBytes {
		g.reserveLocked(bytes)
		gr := g.newGrantLocked(bytes, 0)
		g.mu.Unlock()
		return gr, nil
	}
	w := &waiter{bytes: bytes, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.queuedTotal++
	g.mu.Unlock()

	var timeout <-chan time.Time
	if g.cfg.QueueTimeout > 0 {
		t := time.NewTimer(g.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	// On the wake path dispatchLocked has already reserved the resources;
	// only the grant record remains to be made.
	take := func() *Grant {
		wait := time.Since(enqueued)
		g.mu.Lock()
		gr := g.newGrantLocked(bytes, wait)
		g.mu.Unlock()
		return gr
	}
	select {
	case <-w.ready:
		return take(), nil
	case <-ctx.Done():
		if g.abandon(w, &g.canceled) {
			return nil, ctx.Err()
		}
		// Granted concurrently with cancellation: take it and release.
		take().Release()
		return nil, ctx.Err()
	case <-timeout:
		if g.abandon(w, &g.timedOut) {
			return nil, ErrQueueTimeout
		}
		return take(), nil // granted just as the timer fired: run it
	}
}

// reserveLocked consumes a slot and bytes from the pool; caller holds g.mu.
func (g *Governor) reserveLocked(bytes int64) {
	g.running++
	g.inUse += bytes
	if g.running > g.peakRunning {
		g.peakRunning = g.running
	}
}

// newGrantLocked records an admission whose resources are already reserved;
// caller holds g.mu.
func (g *Governor) newGrantLocked(bytes int64, wait time.Duration) *Grant {
	g.admitted++
	g.queueWait += wait
	return &Grant{gov: g, bytes: bytes, queueWait: wait, started: time.Now()}
}

// abandon removes w from the queue if it has not been granted, bumping
// *counter. Reports whether the waiter was still queued.
func (g *Governor) abandon(w *waiter, counter *int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	*counter++
	// The departed waiter may have been the head blocking smaller requests.
	g.dispatchLocked()
	return true
}

// dispatchLocked wakes queued waiters in FIFO order while resources last.
// The head blocks the queue even if a smaller later request would fit — that
// is what keeps admission fair (no starvation of large grants).
func (g *Governor) dispatchLocked() {
	for len(g.queue) > 0 {
		w := g.queue[0]
		if g.running >= g.cfg.MaxConcurrency || g.inUse+w.bytes > g.cfg.PoolBytes {
			return
		}
		// Reserve on the waiter's behalf so a burst of releases cannot
		// overcommit the pool before the waiter reschedules.
		g.reserveLocked(w.bytes)
		w.granted = true
		g.queue = g.queue[1:]
		close(w.ready)
	}
}

// release returns a grant's resources and wakes the queue.
func (g *Governor) release(gr *Grant) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.running--
	g.inUse -= gr.bytes
	g.rows += gr.rows.Load()
	g.spilled += gr.spilledBytes.Load()
	g.dispatchLocked()
}

// Stats snapshots the counters.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Admitted:       g.admitted,
		Queued:         g.queuedTotal,
		TimedOut:       g.timedOut,
		Canceled:       g.canceled,
		Running:        g.running,
		Waiting:        len(g.queue),
		InUseBytes:     g.inUse,
		PoolBytes:      g.cfg.PoolBytes,
		PeakRunning:    g.peakRunning,
		TotalQueueWait: g.queueWait,
		RowsReturned:   g.rows,
		SpilledBytes:   g.spilled,
	}
}

// String renders the snapshot for \stats-style display.
func (s Stats) String() string {
	return fmt.Sprintf(
		"pool %d/%d bytes, running %d (peak %d), waiting %d, admitted %d (queued %d, timeout %d, canceled %d), queue-wait %s, rows %d, spilled %d bytes",
		s.InUseBytes, s.PoolBytes, s.Running, s.PeakRunning, s.Waiting,
		s.Admitted, s.Queued, s.TimedOut, s.Canceled, s.TotalQueueWait,
		s.RowsReturned, s.SpilledBytes)
}

// Grant is one query's admission: a slice of the pool plus runtime counters
// the executor reports into. All methods are safe on a nil receiver so the
// execution engine can run ungoverned (tests, embedded use) without
// branching.
type Grant struct {
	gov       *Governor
	bytes     int64
	queueWait time.Duration
	started   time.Time

	released     atomic.Bool
	rows         atomic.Int64
	spilledBytes atomic.Int64
	spills       atomic.Int64
	allocPeak    atomic.Int64
}

// Bytes is the total memory granted to the query.
func (gr *Grant) Bytes() int64 {
	if gr == nil {
		return 0
	}
	return gr.bytes
}

// OperatorBudget divides the grant across n concurrent pipelines, matching
// the paper's per-operator budget model. n < 1 is treated as 1.
func (gr *Grant) OperatorBudget(n int) int64 {
	if gr == nil {
		return 0
	}
	if n < 1 {
		n = 1
	}
	b := gr.bytes / int64(n)
	if b < 64<<10 {
		b = 64 << 10 // floor: an operator can always buffer one batch
	}
	return b
}

// QueueWait is how long the query sat in the admission queue.
func (gr *Grant) QueueWait() time.Duration {
	if gr == nil {
		return 0
	}
	return gr.queueWait
}

// ReportRows adds produced rows to the grant's counters.
func (gr *Grant) ReportRows(n int64) {
	if gr == nil {
		return
	}
	gr.rows.Add(n)
}

// ReportSpill records one externalization of b bytes.
func (gr *Grant) ReportSpill(b int64) {
	if gr == nil {
		return
	}
	gr.spills.Add(1)
	gr.spilledBytes.Add(b)
}

// ReportAlloc raises the high-water mark of operator memory observed.
func (gr *Grant) ReportAlloc(b int64) {
	if gr == nil {
		return
	}
	for {
		cur := gr.allocPeak.Load()
		if b <= cur || gr.allocPeak.CompareAndSwap(cur, b) {
			return
		}
	}
}

// QueryStats is the per-query counter snapshot.
type QueryStats struct {
	Rows         int64
	Spills       int64
	SpilledBytes int64
	AllocPeak    int64
	QueueWait    time.Duration
	WallTime     time.Duration
}

// Stats snapshots the grant's counters; WallTime runs until Release.
func (gr *Grant) Stats() QueryStats {
	if gr == nil {
		return QueryStats{}
	}
	return QueryStats{
		Rows:         gr.rows.Load(),
		Spills:       gr.spills.Load(),
		SpilledBytes: gr.spilledBytes.Load(),
		AllocPeak:    gr.allocPeak.Load(),
		QueueWait:    gr.queueWait,
		WallTime:     time.Since(gr.started),
	}
}

// Release returns the grant to the pool, waking queued queries. Idempotent
// and nil-safe, so error paths can release unconditionally.
func (gr *Grant) Release() {
	if gr == nil || !gr.released.CompareAndSwap(false, true) {
		return
	}
	gr.gov.release(gr)
}
