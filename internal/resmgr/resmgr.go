// Package resmgr is the workload and resource management subsystem: a
// resource governor that owns a global memory pool shared by all concurrent
// queries, partitions it into named resource pools with borrow-from-general
// semantics, hands out per-query memory grants, and gates query starts
// through per-pool admission queues with bounded concurrency and queue
// timeouts. Finished statements leave a bounded ring of query profiles that
// the engine exposes as the v_monitor.query_profiles system table.
//
// The paper (§6.1) gives every operator a memory budget so that "all
// operators are capable of handling arbitrary sized inputs ... by
// externalizing"; resmgr supplies the layer above those budgets: where the
// bytes come from when many statements run at once, which statement runs
// next, and how a statement in flight is cancelled and its memory returned.
//
// Usage:
//
//	gov := resmgr.NewGovernor(resmgr.Config{PoolBytes: 32 << 20, MaxConcurrency: 2})
//	gov.CreatePool(resmgr.PoolConfig{Name: "etl", MemBytes: 8 << 20, MaxConcurrency: 1})
//	ctx = resmgr.WithPool(ctx, "etl")
//	grant, err := gov.Admit(ctx)          // blocks in FIFO order; honors ctx
//	if err != nil { ... }                 // ErrQueueTimeout or ctx.Err()
//	defer grant.Release()                 // returns memory + slot, wakes queue
//	budget := grant.OperatorBudget(nPipelines)
package resmgr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults applied by NewGovernor when Config fields are zero.
const (
	DefaultPoolBytes       = 1 << 30 // 1 GiB global pool
	DefaultMaxConcurrency  = 8
	DefaultQueueTimeout    = 30 * time.Second
	DefaultProfileCapacity = 512
)

// ErrQueueTimeout is returned by Admit when a query waits in the admission
// queue longer than its pool's queue timeout.
var ErrQueueTimeout = errors.New("resmgr: admission queue timeout")

// Config sets the governor's knobs.
type Config struct {
	// PoolBytes is the global memory pool shared by all running queries.
	PoolBytes int64
	// MaxConcurrency bounds simultaneously running queries per pool (pools
	// may override); excess queries queue FIFO within their pool.
	MaxConcurrency int
	// QueueTimeout bounds time spent queued before Admit fails with
	// ErrQueueTimeout. Negative disables the timeout; zero means default.
	QueueTimeout time.Duration
	// GrantBytes is the memory grant per query in the general pool. Zero
	// derives PoolBytes/MaxConcurrency so a full complement of running
	// queries exactly consumes the pool.
	GrantBytes int64
	// ProfileCapacity bounds the retained query-profile ring. Zero means
	// DefaultProfileCapacity; negative disables profiling.
	ProfileCapacity int
}

// Stats is a snapshot of governor counters aggregated over all pools.
type Stats struct {
	// Admitted counts queries granted admission (including those that later
	// failed).
	Admitted int64
	// Queued counts admissions that had to wait for a slot or memory.
	Queued int64
	// TimedOut counts admissions that failed with ErrQueueTimeout.
	TimedOut int64
	// Canceled counts admissions abandoned because their context ended
	// while queued.
	Canceled int64
	// Running is the number of queries currently holding a grant.
	Running int
	// Waiting is the current admission queue length across pools.
	Waiting int
	// InUseBytes is pool memory currently granted.
	InUseBytes int64
	// PoolBytes echoes the configured pool size.
	PoolBytes int64
	// PeakRunning is the high-water mark of Running.
	PeakRunning int
	// TotalQueueWait accumulates time queries spent queued.
	TotalQueueWait time.Duration
	// RowsReturned, SpilledBytes aggregate released grants' counters.
	RowsReturned int64
	SpilledBytes int64
}

// waiter is one queued admission request.
type waiter struct {
	pool    *pool
	bytes   int64
	ready   chan struct{} // closed by dispatch under g.mu when granted
	granted bool
}

// Governor owns the global pool, the named pools and their admission queues.
type Governor struct {
	cfg Config

	mu      sync.Mutex
	inUse   int64 // bytes granted across all pools
	running int   // queries running across all pools
	pools   map[string]*pool
	order   []string // pool dispatch/listing order (general first)

	// aggregate counters (under mu); per-pool counters live on each pool
	admitted    int64
	queuedTotal int64
	timedOut    int64
	canceled    int64
	peakRunning int
	queueWait   time.Duration
	rows        int64
	spilled     int64

	// query profile ring (under mu)
	profileSeq int64
	profiles   []QueryProfile
	profHead   int
	profLen    int
}

// NewGovernor builds a governor, applying defaults for zero Config fields.
// The built-in general pool backs all unreserved memory.
func NewGovernor(cfg Config) *Governor {
	if cfg.PoolBytes <= 0 {
		cfg.PoolBytes = DefaultPoolBytes
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = DefaultMaxConcurrency
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.GrantBytes <= 0 {
		cfg.GrantBytes = cfg.PoolBytes / int64(cfg.MaxConcurrency)
		if cfg.GrantBytes < MinGrantBytes {
			cfg.GrantBytes = MinGrantBytes
		}
	}
	if cfg.GrantBytes > cfg.PoolBytes {
		cfg.GrantBytes = cfg.PoolBytes
	}
	if cfg.ProfileCapacity == 0 {
		cfg.ProfileCapacity = DefaultProfileCapacity
	}
	g := &Governor{cfg: cfg, pools: map[string]*pool{}}
	if cfg.ProfileCapacity > 0 {
		g.profiles = make([]QueryProfile, 0, cfg.ProfileCapacity)
	}
	g.pools[GeneralPool] = &pool{cfg: PoolConfig{
		Name:           GeneralPool,
		GrantBytes:     cfg.GrantBytes,
		MaxConcurrency: cfg.MaxConcurrency,
		QueueTimeout:   cfg.QueueTimeout,
	}}
	g.order = []string{GeneralPool}
	return g
}

// Config returns the effective (default-applied) configuration.
func (g *Governor) Config() Config { return g.cfg }

// Admit blocks until the query may run, returning its memory grant. The pool
// comes from the context tag (WithPool), defaulting to general; order is
// FIFO within a pool. Fails with ctx.Err() if ctx ends first, or
// ErrQueueTimeout after the pool's queue timeout.
func (g *Governor) Admit(ctx context.Context) (*Grant, error) {
	return g.AdmitPoolBytes(ctx, PoolFromContext(ctx), 0)
}

// AdmitBytes admits with an explicit grant size (workload classes wanting
// bigger or smaller grants than the pool default).
func (g *Governor) AdmitBytes(ctx context.Context, bytes int64) (*Grant, error) {
	return g.AdmitPoolBytes(ctx, PoolFromContext(ctx), bytes)
}

// AdmitPoolBytes admits against a named pool ("" = general) with an explicit
// grant size (<= 0 takes the pool default).
func (g *Governor) AdmitPoolBytes(ctx context.Context, poolName string, bytes int64) (*Grant, error) {
	if poolName == "" {
		poolName = GeneralPool
	}
	label := LabelFromContext(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	enqueued := time.Now()
	g.mu.Lock()
	p, ok := g.pools[poolName]
	if !ok {
		g.mu.Unlock()
		return nil, fmt.Errorf("resmgr: pool %q does not exist", poolName)
	}
	if bytes <= 0 {
		bytes = p.grantSize(g)
	}
	if bytes > p.capBytes(g) {
		g.mu.Unlock()
		return nil, fmt.Errorf("resmgr: grant %d bytes exceeds pool %q limit of %d bytes",
			bytes, poolName, p.capBytes(g))
	}
	// Fail fast on requests no amount of draining can satisfy: even with
	// every other pool idle (reservations fully unfilled), the grant plus
	// all outstanding guarantees must fit the global pool — otherwise the
	// waiter would sit in the queue until timeout (or forever).
	floor := bytes
	for _, name := range g.order {
		q := g.pools[name]
		if q == p {
			if q.cfg.MemBytes > bytes {
				floor += q.cfg.MemBytes - bytes
			}
			continue
		}
		floor += q.cfg.MemBytes
	}
	if floor > g.cfg.PoolBytes {
		g.mu.Unlock()
		return nil, fmt.Errorf("resmgr: grant %d bytes on pool %q can never be admitted: other pools reserve %d of the %d-byte global pool",
			bytes, poolName, floor-bytes, g.cfg.PoolBytes)
	}
	// Fast path: nothing queued ahead in this pool and resources free.
	if len(p.queue) == 0 && g.canAdmitLocked(p, bytes) {
		g.reserveLocked(p, bytes)
		gr := g.newGrantLocked(p, bytes, 0, label)
		g.mu.Unlock()
		return gr, nil
	}
	w := &waiter{pool: p, bytes: bytes, ready: make(chan struct{})}
	p.queue = append(p.queue, w)
	p.queuedTotal++
	g.queuedTotal++
	queueTimeout := p.timeout(g)
	g.mu.Unlock()

	var timeout <-chan time.Time
	if queueTimeout > 0 {
		t := time.NewTimer(queueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	// On the wake path dispatchLocked has already reserved the resources;
	// only the grant record remains to be made.
	take := func() *Grant {
		wait := time.Since(enqueued)
		g.mu.Lock()
		gr := g.newGrantLocked(p, bytes, wait, label)
		g.mu.Unlock()
		return gr
	}
	select {
	case <-w.ready:
		return take(), nil
	case <-ctx.Done():
		if g.abandon(w, &p.canceled, &g.canceled) {
			return nil, ctx.Err()
		}
		// Granted concurrently with cancellation: take it and release,
		// marking the profile so it does not read as a successful query.
		gr := take()
		gr.SetError(ctx.Err())
		gr.Release()
		return nil, ctx.Err()
	case <-timeout:
		if g.abandon(w, &p.timedOut, &g.timedOut) {
			return nil, ErrQueueTimeout
		}
		return take(), nil // granted just as the timer fired: run it
	}
}

// canAdmitLocked decides whether pool p can start a query of the given grant
// right now: a free slot, under the pool's own ceiling, and — the
// borrow-from-general rule — enough global memory left after honoring every
// pool's outstanding reservation. Caller holds g.mu.
func (g *Governor) canAdmitLocked(p *pool, bytes int64) bool {
	if p.running >= p.maxConc(g) {
		return false
	}
	if p.inUse+bytes > p.capBytes(g) {
		return false
	}
	// Global fit: granted bytes plus every pool's unfilled reservation
	// (computed as if this grant were placed) must fit the global pool, so
	// one pool's borrowing can never consume another pool's guarantee.
	need := g.inUse + bytes
	for _, name := range g.order {
		q := g.pools[name]
		iu := q.inUse
		if q == p {
			iu += bytes
		}
		if q.cfg.MemBytes > iu {
			need += q.cfg.MemBytes - iu
		}
	}
	return need <= g.cfg.PoolBytes
}

// reserveLocked consumes a slot and bytes from the pool; caller holds g.mu.
func (g *Governor) reserveLocked(p *pool, bytes int64) {
	g.running++
	g.inUse += bytes
	if g.running > g.peakRunning {
		g.peakRunning = g.running
	}
	p.running++
	p.inUse += bytes
	if p.running > p.peakRunning {
		p.peakRunning = p.running
	}
}

// newGrantLocked records an admission whose resources are already reserved;
// caller holds g.mu.
func (g *Governor) newGrantLocked(p *pool, bytes int64, wait time.Duration, label string) *Grant {
	g.admitted++
	g.queueWait += wait
	p.admitted++
	p.queueWait += wait
	return &Grant{gov: g, pool: p, bytes: bytes, label: label, queueWait: wait,
		runtimeCap: p.cfg.RuntimeCap, started: time.Now()}
}

// abandon removes w from its pool's queue if it has not been granted,
// bumping the pool and governor counters. Reports whether the waiter was
// still queued.
func (g *Governor) abandon(w *waiter, poolCounter, govCounter *int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	q := w.pool.queue
	for i, x := range q {
		if x == w {
			w.pool.queue = append(q[:i], q[i+1:]...)
			break
		}
	}
	*poolCounter++
	*govCounter++
	// The departed waiter may have been the head blocking smaller requests.
	g.dispatchLocked()
	return true
}

// dispatchOrderLocked returns pool names sorted by descending PRIORITY,
// stable on creation order, so a release serves high-priority workloads
// first. Caller holds g.mu.
func (g *Governor) dispatchOrderLocked() []string {
	order := append([]string{}, g.order...)
	sort.SliceStable(order, func(i, j int) bool {
		return g.pools[order[i]].cfg.Priority > g.pools[order[j]].cfg.Priority
	})
	return order
}

// dispatchLocked wakes queued waiters while resources last: FIFO within each
// pool, pools visited in descending priority (creation order on ties). A
// pool's queue head blocks only its own pool — that keeps admission fair
// inside a workload class without letting one saturated class stall the
// others, while PRIORITY decides which class eats a freed slot first.
func (g *Governor) dispatchLocked() {
	for _, name := range g.dispatchOrderLocked() {
		p := g.pools[name]
		for len(p.queue) > 0 {
			w := p.queue[0]
			if !g.canAdmitLocked(p, w.bytes) {
				break
			}
			// Reserve on the waiter's behalf so a burst of releases cannot
			// overcommit the pool before the waiter reschedules.
			g.reserveLocked(p, w.bytes)
			w.granted = true
			p.queue = p.queue[1:]
			close(w.ready)
		}
	}
}

// release returns a grant's resources, records its profile and wakes queues.
func (g *Governor) release(gr *Grant) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := gr.pool
	g.running--
	g.inUse -= gr.bytes
	p.running--
	p.inUse -= gr.bytes
	rows, spilled := gr.rows.Load(), gr.spilledBytes.Load()
	g.rows += rows
	g.spilled += spilled
	p.rows += rows
	p.spilled += spilled
	g.profileSeq++
	g.addProfileLocked(QueryProfile{
		ID:           g.profileSeq,
		Pool:         p.cfg.Name,
		Label:        gr.label,
		GrantBytes:   gr.bytes,
		Rows:         rows,
		Spills:       gr.spills.Load(),
		SpilledBytes: spilled,
		AllocPeak:    gr.allocPeak.Load(),
		QueueWait:    gr.queueWait,
		Wall:         time.Since(gr.started),
		Started:      gr.started,
		Error:        gr.errMsg,
	})
	g.dispatchLocked()
}

// RecordFailure retains a query profile for a statement that failed before
// admission (planning or placement errors), so v_monitor.query_profiles
// keeps covering that failure class. No resources are reserved or
// released; the named pool need not exist (the profile is just a record).
func (g *Governor) RecordFailure(poolName, label string, err error) {
	if err == nil {
		return
	}
	if poolName == "" {
		poolName = GeneralPool
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.profileSeq++
	g.addProfileLocked(QueryProfile{
		ID:      g.profileSeq,
		Pool:    poolName,
		Label:   label,
		Started: time.Now(),
		Error:   err.Error(),
	})
}

// Stats snapshots the aggregate counters.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	waiting := 0
	for _, p := range g.pools {
		waiting += len(p.queue)
	}
	return Stats{
		Admitted:       g.admitted,
		Queued:         g.queuedTotal,
		TimedOut:       g.timedOut,
		Canceled:       g.canceled,
		Running:        g.running,
		Waiting:        waiting,
		InUseBytes:     g.inUse,
		PoolBytes:      g.cfg.PoolBytes,
		PeakRunning:    g.peakRunning,
		TotalQueueWait: g.queueWait,
		RowsReturned:   g.rows,
		SpilledBytes:   g.spilled,
	}
}

// String renders the snapshot for \stats-style display.
func (s Stats) String() string {
	return fmt.Sprintf(
		"pool %d/%d bytes, running %d (peak %d), waiting %d, admitted %d (queued %d, timeout %d, canceled %d), queue-wait %s, rows %d, spilled %d bytes",
		s.InUseBytes, s.PoolBytes, s.Running, s.PeakRunning, s.Waiting,
		s.Admitted, s.Queued, s.TimedOut, s.Canceled, s.TotalQueueWait,
		s.RowsReturned, s.SpilledBytes)
}

// Grant is one query's admission: a slice of the pool plus runtime counters
// the executor reports into. All methods are safe on a nil receiver so the
// execution engine can run ungoverned (tests, embedded use) without
// branching.
type Grant struct {
	gov        *Governor
	pool       *pool
	bytes      int64
	label      string
	queueWait  time.Duration
	runtimeCap time.Duration
	started    time.Time
	errMsg     string // set by SetError before Release

	released     atomic.Bool
	rows         atomic.Int64
	spilledBytes atomic.Int64
	spills       atomic.Int64
	allocPeak    atomic.Int64
}

// Bytes is the total memory granted to the query.
func (gr *Grant) Bytes() int64 {
	if gr == nil {
		return 0
	}
	return gr.bytes
}

// Pool is the name of the pool the grant was admitted on.
func (gr *Grant) Pool() string {
	if gr == nil || gr.pool == nil {
		return ""
	}
	return gr.pool.cfg.Name
}

// OperatorBudget divides the grant across n concurrent pipelines, matching
// the paper's per-operator budget model. n < 1 is treated as 1.
func (gr *Grant) OperatorBudget(n int) int64 {
	if gr == nil {
		return 0
	}
	if n < 1 {
		n = 1
	}
	b := gr.bytes / int64(n)
	if b < MinGrantBytes {
		b = MinGrantBytes // floor: an operator can always buffer one batch
	}
	return b
}

// RuntimeCap is the pool's execution wall-time bound at admission time
// (zero = uncapped). Callers wrap the statement's context in a deadline of
// this duration so a runaway statement cancels at the next batch boundary
// and releases its slot.
func (gr *Grant) RuntimeCap() time.Duration {
	if gr == nil {
		return 0
	}
	return gr.runtimeCap
}

// QueueWait is how long the query sat in the admission queue.
func (gr *Grant) QueueWait() time.Duration {
	if gr == nil {
		return 0
	}
	return gr.queueWait
}

// ReportRows adds produced rows to the grant's counters.
func (gr *Grant) ReportRows(n int64) {
	if gr == nil {
		return
	}
	gr.rows.Add(n)
}

// ReportSpill records one externalization of b bytes.
func (gr *Grant) ReportSpill(b int64) {
	if gr == nil {
		return
	}
	gr.spills.Add(1)
	gr.spilledBytes.Add(b)
}

// ReportAlloc raises the high-water mark of operator memory observed.
func (gr *Grant) ReportAlloc(b int64) {
	if gr == nil {
		return
	}
	for {
		cur := gr.allocPeak.Load()
		if b <= cur || gr.allocPeak.CompareAndSwap(cur, b) {
			return
		}
	}
}

// SetError marks the grant's query as failed so its retained profile records
// the failure. Must be called by the query's own goroutine before Release.
func (gr *Grant) SetError(err error) {
	if gr == nil || err == nil {
		return
	}
	gr.errMsg = err.Error()
}

// QueryStats is the per-query counter snapshot.
type QueryStats struct {
	Rows         int64
	Spills       int64
	SpilledBytes int64
	AllocPeak    int64
	QueueWait    time.Duration
	WallTime     time.Duration
}

// Stats snapshots the grant's counters; WallTime runs until Release.
func (gr *Grant) Stats() QueryStats {
	if gr == nil {
		return QueryStats{}
	}
	return QueryStats{
		Rows:         gr.rows.Load(),
		Spills:       gr.spills.Load(),
		SpilledBytes: gr.spilledBytes.Load(),
		AllocPeak:    gr.allocPeak.Load(),
		QueueWait:    gr.queueWait,
		WallTime:     time.Since(gr.started),
	}
}

// Release returns the grant to the pool, waking queued queries. Idempotent
// and nil-safe, so error paths can release unconditionally.
func (gr *Grant) Release() {
	if gr == nil || !gr.released.CompareAndSwap(false, true) {
		return
	}
	gr.gov.release(gr)
}
