// Package resmgr is the workload and resource management subsystem: a
// resource governor that owns a global memory pool shared by all concurrent
// queries, partitions it into named resource pools with borrow-from-general
// semantics, hands out per-query memory grants, and gates query starts
// through per-pool admission queues with bounded concurrency and queue
// timeouts. Finished statements leave a bounded ring of query profiles that
// the engine exposes as the v_monitor.query_profiles system table.
//
// The paper (§6.1) gives every operator a memory budget so that "all
// operators are capable of handling arbitrary sized inputs ... by
// externalizing"; resmgr supplies the layer above those budgets: where the
// bytes come from when many statements run at once, which statement runs
// next, and how a statement in flight is cancelled and its memory returned.
//
// # Invariants
//
// The governor maintains one global accounting invariant, checked on every
// admission and every mid-flight grant extension:
//
//	granted bytes (g.inUse) + every pool's unfilled reservation ≤ PoolBytes
//
// so that one pool's borrowing can never consume another pool's MEMORYSIZE
// guarantee. Per pool, in-use bytes never exceed the pool's effective
// MAXMEMORYSIZE, and running queries never exceed the pool's concurrency
// bound. A grant is not a fixed ceiling: Grant.Request extends an admitted
// query's grant from the pool's current headroom (own reservation first,
// then borrowed general memory) without re-queueing; outstanding extensions
// count as in-use, so concurrent admissions see them. Requests that no
// future release could ever satisfy — the extended grant would exceed the
// pool's MAXMEMORYSIZE, or the reservations of other pools structurally
// exclude it — fail fast with an error naming the binding limit instead of
// a retriable denial.
//
// Usage:
//
//	gov := resmgr.NewGovernor(resmgr.Config{PoolBytes: 32 << 20, MaxConcurrency: 2})
//	gov.CreatePool(resmgr.PoolConfig{Name: "etl", MemBytes: 8 << 20, MaxConcurrency: 1})
//	ctx = resmgr.WithPool(ctx, "etl")
//	grant, err := gov.Admit(ctx)          // blocks in FIFO order; honors ctx
//	if err != nil { ... }                 // ErrQueueTimeout or ctx.Err()
//	defer grant.Release()                 // returns memory + slot, wakes queue
//	budget := grant.OperatorBudget(nPipelines)
//	if grant.Request(64 << 10) == nil { budget += 64 << 10 } // renegotiate, else spill
package resmgr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/vlog"
)

// Defaults applied by NewGovernor when Config fields are zero.
const (
	DefaultPoolBytes          = 1 << 30 // 1 GiB global pool
	DefaultMaxConcurrency     = 8
	DefaultQueueTimeout       = 30 * time.Second
	DefaultProfileCapacity    = 512
	DefaultOpProfileCapacity  = 4096
	DefaultSlowQueryThreshold = time.Second
)

// ErrQueueTimeout is returned by Admit when a query waits in the admission
// queue longer than its pool's queue timeout.
var ErrQueueTimeout = errors.New("resmgr: admission queue timeout")

// ErrExtensionDenied is returned by Grant.Request when the pool has no
// headroom for the extension right now. The request was feasible — a later
// retry may succeed once other queries release — but renegotiation never
// queues, so the caller should fall back to externalizing (spilling).
var ErrExtensionDenied = errors.New("resmgr: grant extension denied: pool has no headroom")

// InfeasibleError marks a grant request — admission or mid-flight extension
// — that no release can ever satisfy under the current pool configuration
// (it exceeds the pool's MAXMEMORYSIZE, or other pools' reservations
// structurally exclude it from the global pool). Callers distinguish it
// from retriable queue/headroom failures with errors.As; the message names
// the binding limit.
type InfeasibleError struct{ msg string }

func (e *InfeasibleError) Error() string { return e.msg }

func infeasiblef(format string, args ...interface{}) error {
	return &InfeasibleError{msg: fmt.Sprintf(format, args...)}
}

// Config sets the governor's knobs.
type Config struct {
	// PoolBytes is the global memory pool shared by all running queries.
	PoolBytes int64
	// MaxConcurrency bounds simultaneously running queries per pool (pools
	// may override); excess queries queue FIFO within their pool.
	MaxConcurrency int
	// QueueTimeout bounds time spent queued before Admit fails with
	// ErrQueueTimeout. Negative disables the timeout; zero means default.
	QueueTimeout time.Duration
	// GrantBytes is the memory grant per query in the general pool. Zero
	// derives PoolBytes/MaxConcurrency so a full complement of running
	// queries exactly consumes the pool.
	GrantBytes int64
	// ProfileCapacity bounds the retained query-profile ring. Zero means
	// DefaultProfileCapacity; negative disables profiling.
	ProfileCapacity int
	// OpProfileCapacity bounds the retained per-operator profile ring
	// (records, not queries; one query contributes one record per plan
	// node). Zero means DefaultOpProfileCapacity; negative disables
	// operator-profile retention.
	OpProfileCapacity int
	// SlowQueryThreshold is the wall time past which a finished query's
	// operator profile is retained even without an explicit PROFILE. Zero
	// means DefaultSlowQueryThreshold; negative disables slow-query capture.
	SlowQueryThreshold time.Duration
	// Logger receives structured slow-query lines when SlowQueryThreshold
	// trips. Nil disables logging (profiles are still retained).
	Logger *vlog.Logger
}

// Stats is a snapshot of governor counters aggregated over all pools.
type Stats struct {
	// Admitted counts queries granted admission (including those that later
	// failed).
	Admitted int64
	// Queued counts admissions that had to wait for a slot or memory.
	Queued int64
	// TimedOut counts admissions that failed with ErrQueueTimeout.
	TimedOut int64
	// Canceled counts admissions abandoned because their context ended
	// while queued.
	Canceled int64
	// Running is the number of queries currently holding a grant.
	Running int
	// Waiting is the current admission queue length across pools.
	Waiting int
	// InUseBytes is pool memory currently granted.
	InUseBytes int64
	// PoolBytes echoes the configured pool size.
	PoolBytes int64
	// PeakRunning is the high-water mark of Running.
	PeakRunning int
	// TotalQueueWait accumulates time queries spent queued.
	TotalQueueWait time.Duration
	// RowsReturned, SpilledBytes aggregate released grants' counters.
	RowsReturned int64
	SpilledBytes int64
	// GrantExtensions / ExtensionBytes count mid-flight renegotiations that
	// succeeded across released grants; DeniedExtensions counts requests
	// refused (the operator spilled instead).
	GrantExtensions  int64
	ExtensionBytes   int64
	DeniedExtensions int64
}

// waiter is one queued admission request.
type waiter struct {
	pool    *pool
	bytes   int64
	ready   chan struct{} // closed by dispatch under g.mu when granted
	granted bool
}

// Governor owns the global pool, the named pools and their admission queues.
type Governor struct {
	cfg Config

	mu      sync.Mutex
	inUse   int64 // bytes granted across all pools
	running int   // queries running across all pools
	pools   map[string]*pool
	order   []string // pool dispatch/listing order (general first)

	// aggregate counters (under mu); per-pool counters live on each pool
	admitted    int64
	queuedTotal int64
	timedOut    int64
	canceled    int64
	peakRunning int
	queueWait   time.Duration
	rows        int64
	spilled     int64
	extensions  int64
	extBytes    int64
	deniedExt   int64

	// query profile ring (under mu)
	profileSeq int64
	profiles   []QueryProfile
	profHead   int
	profLen    int

	// per-operator profile ring (under mu)
	opProfiles []OpProfile
	opHead     int
	opLen      int
}

// NewGovernor builds a governor, applying defaults for zero Config fields.
// The built-in general pool backs all unreserved memory.
func NewGovernor(cfg Config) *Governor {
	if cfg.PoolBytes <= 0 {
		cfg.PoolBytes = DefaultPoolBytes
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = DefaultMaxConcurrency
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.GrantBytes <= 0 {
		cfg.GrantBytes = cfg.PoolBytes / int64(cfg.MaxConcurrency)
		if cfg.GrantBytes < MinGrantBytes {
			cfg.GrantBytes = MinGrantBytes
		}
	}
	if cfg.GrantBytes > cfg.PoolBytes {
		cfg.GrantBytes = cfg.PoolBytes
	}
	if cfg.ProfileCapacity == 0 {
		cfg.ProfileCapacity = DefaultProfileCapacity
	}
	if cfg.OpProfileCapacity == 0 {
		cfg.OpProfileCapacity = DefaultOpProfileCapacity
	}
	if cfg.SlowQueryThreshold == 0 {
		cfg.SlowQueryThreshold = DefaultSlowQueryThreshold
	}
	g := &Governor{cfg: cfg, pools: map[string]*pool{}}
	if cfg.ProfileCapacity > 0 {
		g.profiles = make([]QueryProfile, 0, cfg.ProfileCapacity)
	}
	if cfg.OpProfileCapacity > 0 {
		g.opProfiles = make([]OpProfile, 0, cfg.OpProfileCapacity)
	}
	g.pools[GeneralPool] = &pool{cfg: PoolConfig{
		Name:           GeneralPool,
		GrantBytes:     cfg.GrantBytes,
		MaxConcurrency: cfg.MaxConcurrency,
		QueueTimeout:   cfg.QueueTimeout,
	}}
	g.order = []string{GeneralPool}
	return g
}

// Config returns the effective (default-applied) configuration.
func (g *Governor) Config() Config { return g.cfg }

// Admit blocks until the query may run, returning its memory grant. The pool
// comes from the context tag (WithPool), defaulting to general; order is
// FIFO within a pool. Fails with ctx.Err() if ctx ends first, or
// ErrQueueTimeout after the pool's queue timeout.
func (g *Governor) Admit(ctx context.Context) (*Grant, error) {
	return g.AdmitPoolBytes(ctx, PoolFromContext(ctx), 0)
}

// AdmitBytes admits with an explicit grant size (workload classes wanting
// bigger or smaller grants than the pool default).
func (g *Governor) AdmitBytes(ctx context.Context, bytes int64) (*Grant, error) {
	return g.AdmitPoolBytes(ctx, PoolFromContext(ctx), bytes)
}

// AdmitPoolBytes admits against a named pool ("" = general) with an explicit
// grant size (<= 0 takes the pool default).
func (g *Governor) AdmitPoolBytes(ctx context.Context, poolName string, bytes int64) (*Grant, error) {
	return g.admitSince(ctx, poolName, bytes, time.Now(), false)
}

// AdmitPoolBytesSince is AdmitPoolBytes with a caller-supplied enqueue time,
// so an admission retried after a failed attempt (e.g. a plan-sized request
// falling back to the pool default) charges the whole stall to the grant's
// queue-wait accounting instead of just the final attempt.
func (g *Governor) AdmitPoolBytesSince(ctx context.Context, poolName string, bytes int64, enqueued time.Time) (*Grant, error) {
	return g.admitSince(ctx, poolName, bytes, enqueued, true)
}

// admitSince implements admission. credit selects whether an immediate
// (fast-path) admission still charges time.Since(enqueued) as queue wait:
// plain admissions record zero — queue_wait_us means time spent queued, not
// lock/setup noise — while retried admissions carry their prior stall.
func (g *Governor) admitSince(ctx context.Context, poolName string, bytes int64, enqueued time.Time, credit bool) (*Grant, error) {
	if poolName == "" {
		poolName = GeneralPool
	}
	label := LabelFromContext(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	p, ok := g.pools[poolName]
	if !ok {
		g.mu.Unlock()
		return nil, fmt.Errorf("resmgr: pool %q does not exist", poolName)
	}
	if bytes <= 0 {
		bytes = p.grantSize(g)
	}
	if bytes > p.capBytes(g) {
		g.mu.Unlock()
		return nil, infeasiblef("resmgr: grant %d bytes exceeds pool %q limit of %d bytes",
			bytes, poolName, p.capBytes(g))
	}
	// Fail fast on requests no amount of draining can satisfy: even with
	// every other pool idle (reservations fully unfilled), the grant plus
	// all outstanding guarantees must fit the global pool — otherwise the
	// waiter would sit in the queue until timeout (or forever).
	floor := g.feasibilityFloorLocked(p, bytes)
	if floor > g.cfg.PoolBytes {
		g.mu.Unlock()
		return nil, infeasiblef("resmgr: grant %d bytes on pool %q can never be admitted: other pools reserve %d of the %d-byte global pool",
			bytes, poolName, floor-bytes, g.cfg.PoolBytes)
	}
	// Fast path: nothing queued ahead in this pool and resources free.
	if len(p.queue) == 0 && g.canAdmitLocked(p, bytes) {
		g.reserveLocked(p, bytes)
		var wait time.Duration
		if credit {
			wait = time.Since(enqueued)
		}
		gr := g.newGrantLocked(p, bytes, wait, label)
		g.mu.Unlock()
		return gr, nil
	}
	w := &waiter{pool: p, bytes: bytes, ready: make(chan struct{})}
	p.queue = append(p.queue, w)
	p.queuedTotal++
	g.queuedTotal++
	queueTimeout := p.timeout(g)
	g.mu.Unlock()

	var timeout <-chan time.Time
	if queueTimeout > 0 {
		t := time.NewTimer(queueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	// On the wake path dispatchLocked has already reserved the resources;
	// only the grant record remains to be made.
	take := func() *Grant {
		wait := time.Since(enqueued)
		g.mu.Lock()
		gr := g.newGrantLocked(p, bytes, wait, label)
		g.mu.Unlock()
		return gr
	}
	select {
	case <-w.ready:
		return take(), nil
	case <-ctx.Done():
		if g.abandon(w, &p.canceled, &g.canceled) {
			return nil, ctx.Err()
		}
		// Granted concurrently with cancellation: take it and release,
		// marking the profile so it does not read as a successful query.
		gr := take()
		gr.SetError(ctx.Err())
		gr.Release()
		return nil, ctx.Err()
	case <-timeout:
		if g.abandon(w, &p.timedOut, &g.timedOut) {
			return nil, ErrQueueTimeout
		}
		return take(), nil // granted just as the timer fired: run it
	}
}

// TryAdmitSince admits immediately if the pool can place the grant right
// now — a free slot, memory available, nobody queued ahead — and reports
// false otherwise without ever enqueueing. Fallback admissions (a
// plan-sized request retrying at the pool default after a queue timeout)
// use it so the retry cannot double-count queue statistics or record a
// phantom cancellation; the enqueue time carries the stall of the failed
// first attempt into the grant's queue-wait accounting.
func (g *Governor) TryAdmitSince(ctx context.Context, poolName string, bytes int64, enqueued time.Time) (*Grant, bool) {
	if poolName == "" {
		poolName = GeneralPool
	}
	if ctx.Err() != nil {
		return nil, false // canceled caller: don't admit a dead statement
	}
	label := LabelFromContext(ctx)
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.pools[poolName]
	if !ok {
		return nil, false
	}
	if bytes <= 0 {
		bytes = p.grantSize(g)
	}
	if len(p.queue) > 0 || !g.canAdmitLocked(p, bytes) {
		return nil, false
	}
	g.reserveLocked(p, bytes)
	return g.newGrantLocked(p, bytes, time.Since(enqueued), label), true
}

// SizeGrant sizes an admission request for a plan that estimated its working
// memory: a want at or below the pool's default grant is requested as-is
// (small well-estimated queries leave room for more concurrency), while a
// want above the default is raised into whatever headroom exists right now —
// the pool's own unfilled reservation plus free borrowable general memory —
// instead of being clamped down to the default, bounded by the pool's
// MAXMEMORYSIZE. Large plans therefore admit with a grant they can actually
// run in and renegotiate (Grant.Request) only for estimate error, not for
// the whole overshoot. Returns 0 (meaning "use the pool default") for
// unknown pools or non-positive wants; results are floored at MinGrantBytes
// and at the pool default, so sizing never regresses below what the static
// split would have granted.
func (g *Governor) SizeGrant(poolName string, want int64) int64 {
	if want <= 0 {
		return 0
	}
	if poolName == "" {
		poolName = GeneralPool
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.pools[poolName]
	if !ok {
		return 0
	}
	if want < MinGrantBytes {
		want = MinGrantBytes
	}
	def := p.grantSize(g)
	if want <= def {
		return want
	}
	// Headroom right now: free global memory after honoring every *other*
	// pool's unfilled reservation. By the governor invariant (in-use plus
	// all unfilled reservations ≤ PoolBytes) this is never less than the
	// pool's own unfilled reservation, so the one quantity covers both the
	// reservation-first and borrow-from-general sources.
	free := g.cfg.PoolBytes - g.inUse - g.reservationShortfallLocked(p)
	max := def
	if free > max {
		max = free
	}
	// The pool ceiling binds on live use, not the configured cap alone: a
	// request sized past capBytes - inUse would just queue behind the
	// pool's own running queries for the full timeout.
	if c := p.capBytes(g) - p.inUse; max > c {
		max = c
	}
	if want > max {
		want = max
	}
	if want < def {
		want = def // never below the static split the pool would grant anyway
	}
	return want
}

// reservationShortfallLocked sums every pool's unfilled reservation
// (max(0, MEMORYSIZE − in-use)), skipping the given pool — the memory the
// governor must keep claimable for other pools' guarantees. Caller holds
// g.mu.
func (g *Governor) reservationShortfallLocked(skip *pool) int64 {
	var short int64
	for _, name := range g.order {
		q := g.pools[name]
		if q == skip {
			continue
		}
		if s := q.cfg.MemBytes - q.inUse; s > 0 {
			short += s
		}
	}
	return short
}

// feasibilityFloorLocked is the least global memory that must exist for a
// query of the given grant on pool p to ever run: its bytes plus every
// pool's reservation taken as fully unfilled (other queries are transient,
// reservations are not). Admission and grant extension both compare this
// floor against PoolBytes to fail structurally impossible requests fast.
// Caller holds g.mu.
func (g *Governor) feasibilityFloorLocked(p *pool, bytes int64) int64 {
	floor := bytes
	for _, name := range g.order {
		q := g.pools[name]
		if q == p {
			if q.cfg.MemBytes > bytes {
				floor += q.cfg.MemBytes - bytes
			}
			continue
		}
		floor += q.cfg.MemBytes
	}
	return floor
}

// canAdmitLocked decides whether pool p can start a query of the given grant
// right now: a free slot, under the pool's own ceiling, and — the
// borrow-from-general rule — enough global memory left after honoring every
// pool's outstanding reservation. Caller holds g.mu.
func (g *Governor) canAdmitLocked(p *pool, bytes int64) bool {
	if p.running >= p.maxConc(g) {
		return false
	}
	return g.memoryFitsLocked(p, bytes)
}

// memoryFitsLocked is the memory half of admission, shared with mid-flight
// grant extension (which holds its slot already): the added bytes must keep
// the pool under its own ceiling, and — the borrow-from-general rule —
// enough global memory must remain after honoring every pool's outstanding
// reservation (computed as if the bytes were placed), so one pool's
// borrowing can never consume another pool's guarantee. Caller holds g.mu.
func (g *Governor) memoryFitsLocked(p *pool, bytes int64) bool {
	if p.inUse+bytes > p.capBytes(g) {
		return false
	}
	need := g.inUse + bytes + g.reservationShortfallLocked(p)
	if own := p.cfg.MemBytes - (p.inUse + bytes); own > 0 {
		need += own
	}
	return need <= g.cfg.PoolBytes
}

// reserveLocked consumes a slot and bytes from the pool; caller holds g.mu.
func (g *Governor) reserveLocked(p *pool, bytes int64) {
	g.running++
	g.inUse += bytes
	if g.running > g.peakRunning {
		g.peakRunning = g.running
	}
	p.running++
	p.inUse += bytes
	if p.running > p.peakRunning {
		p.peakRunning = p.running
	}
}

// newGrantLocked records an admission whose resources are already reserved;
// caller holds g.mu.
func (g *Governor) newGrantLocked(p *pool, bytes int64, wait time.Duration, label string) *Grant {
	g.admitted++
	g.queueWait += wait
	p.admitted++
	p.queueWait += wait
	metrics.Admissions.Inc()
	metrics.QueueWaitUs.Add(wait.Microseconds())
	metrics.QueueWaitHistUs.Observe(wait.Microseconds())
	// The query id is assigned here, at admission, so in-flight statements
	// already carry the id their profile will retire under — the server can
	// hand it to clients and the Data Collector can stamp events with it.
	g.profileSeq++
	gr := &Grant{gov: g, pool: p, label: label, queueWait: wait,
		runtimeCap: p.cfg.RuntimeCap, parallelism: p.cfg.Parallelism,
		started: time.Now(), queryID: g.profileSeq}
	gr.bytes.Store(bytes)
	return gr
}

// abandon removes w from its pool's queue if it has not been granted,
// bumping the pool and governor counters. Reports whether the waiter was
// still queued.
func (g *Governor) abandon(w *waiter, poolCounter, govCounter *int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	q := w.pool.queue
	for i, x := range q {
		if x == w {
			w.pool.queue = append(q[:i], q[i+1:]...)
			break
		}
	}
	*poolCounter++
	*govCounter++
	metrics.Rejections.Inc()
	// The departed waiter may have been the head blocking smaller requests.
	g.dispatchLocked()
	return true
}

// dispatchOrderLocked returns pool names sorted by descending PRIORITY,
// stable on creation order, so a release serves high-priority workloads
// first. Caller holds g.mu.
func (g *Governor) dispatchOrderLocked() []string {
	order := append([]string{}, g.order...)
	sort.SliceStable(order, func(i, j int) bool {
		return g.pools[order[i]].cfg.Priority > g.pools[order[j]].cfg.Priority
	})
	return order
}

// dispatchLocked wakes queued waiters while resources last: FIFO within each
// pool, pools visited in descending priority (creation order on ties). A
// pool's queue head blocks only its own pool — that keeps admission fair
// inside a workload class without letting one saturated class stall the
// others, while PRIORITY decides which class eats a freed slot first.
func (g *Governor) dispatchLocked() {
	for _, name := range g.dispatchOrderLocked() {
		p := g.pools[name]
		for len(p.queue) > 0 {
			w := p.queue[0]
			if !g.canAdmitLocked(p, w.bytes) {
				break
			}
			// Reserve on the waiter's behalf so a burst of releases cannot
			// overcommit the pool before the waiter reschedules.
			g.reserveLocked(p, w.bytes)
			w.granted = true
			p.queue = p.queue[1:]
			close(w.ready)
		}
	}
}

// release returns a grant's resources — the admitted bytes plus every
// mid-flight extension — records its profile and wakes queues.
func (g *Governor) release(gr *Grant) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := gr.pool
	bytes := gr.bytes.Load()
	g.running--
	g.inUse -= bytes
	p.running--
	p.inUse -= bytes
	rows, spilled := gr.rows.Load(), gr.spilledBytes.Load()
	exts, extBytes, denied := gr.extensions.Load(), gr.extensionBytes.Load(), gr.deniedExtensions.Load()
	g.rows += rows
	g.spilled += spilled
	g.extensions += exts
	g.extBytes += extBytes
	g.deniedExt += denied
	p.rows += rows
	p.spilled += spilled
	p.extensions += exts
	p.extBytes += extBytes
	p.deniedExt += denied
	wall := time.Since(gr.started)
	metrics.QueryWallUs.Observe(wall.Microseconds())
	g.addProfileLocked(QueryProfile{
		ID:               gr.queryID,
		Pool:             p.cfg.Name,
		Label:            gr.label,
		GrantBytes:       bytes,
		Rows:             rows,
		Spills:           gr.spills.Load(),
		SpilledBytes:     spilled,
		GrantExtensions:  exts,
		ExtensionBytes:   extBytes,
		DeniedExtensions: denied,
		AllocPeak:        gr.allocPeak.Load(),
		QueueWait:        gr.queueWait,
		Wall:             wall,
		Started:          gr.started,
		Error:            gr.errMsg,
	})
	slow := g.cfg.SlowQueryThreshold > 0 && wall >= g.cfg.SlowQueryThreshold
	if slow {
		metrics.SlowQueries.Inc()
		g.cfg.Logger.Warnf("slow_query",
			"query_id", gr.queryID,
			"pool", p.cfg.Name,
			"wall_us", wall.Microseconds(),
			"queue_wait_us", gr.queueWait.Microseconds(),
			"spilled_bytes", spilled,
			"rows", rows,
			"label", gr.label,
		)
	}
	if len(gr.opRecs) > 0 && (gr.opProfiled || slow) {
		// Stamp the records with the query id assigned at admission so the
		// two v_monitor tables join, then retain them.
		for i := range gr.opRecs {
			gr.opRecs[i].QueryID = gr.queryID
		}
		g.addOpProfilesLocked(gr.opRecs)
	}
	g.dispatchLocked()
}

// RecordFailure retains a query profile for a statement that failed before
// admission (planning or placement errors), so v_monitor.query_profiles
// keeps covering that failure class. No resources are reserved or
// released; the named pool need not exist (the profile is just a record).
func (g *Governor) RecordFailure(poolName, label string, err error) {
	if err == nil {
		return
	}
	if poolName == "" {
		poolName = GeneralPool
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.profileSeq++
	g.addProfileLocked(QueryProfile{
		ID:      g.profileSeq,
		Pool:    poolName,
		Label:   label,
		Started: time.Now(),
		Error:   err.Error(),
	})
}

// Stats snapshots the aggregate counters.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	waiting := 0
	for _, p := range g.pools {
		waiting += len(p.queue)
	}
	return Stats{
		Admitted:         g.admitted,
		Queued:           g.queuedTotal,
		TimedOut:         g.timedOut,
		Canceled:         g.canceled,
		Running:          g.running,
		Waiting:          waiting,
		InUseBytes:       g.inUse,
		PoolBytes:        g.cfg.PoolBytes,
		PeakRunning:      g.peakRunning,
		TotalQueueWait:   g.queueWait,
		RowsReturned:     g.rows,
		SpilledBytes:     g.spilled,
		GrantExtensions:  g.extensions,
		ExtensionBytes:   g.extBytes,
		DeniedExtensions: g.deniedExt,
	}
}

// String renders the snapshot for \stats-style display.
func (s Stats) String() string {
	return fmt.Sprintf(
		"pool %d/%d bytes, running %d (peak %d), waiting %d, admitted %d (queued %d, timeout %d, canceled %d), queue-wait %s, rows %d, spilled %d bytes, extensions %d (+%d bytes, denied %d)",
		s.InUseBytes, s.PoolBytes, s.Running, s.PeakRunning, s.Waiting,
		s.Admitted, s.Queued, s.TimedOut, s.Canceled, s.TotalQueueWait,
		s.RowsReturned, s.SpilledBytes, s.GrantExtensions, s.ExtensionBytes, s.DeniedExtensions)
}

// Grant is one query's admission: a slice of the pool plus runtime counters
// the executor reports into. All methods are safe on a nil receiver so the
// execution engine can run ungoverned (tests, embedded use) without
// branching. A grant is a negotiated budget, not a fixed ceiling: Request
// extends it mid-flight from the pool's headroom.
type Grant struct {
	gov         *Governor
	pool        *pool
	label       string
	queueWait   time.Duration
	runtimeCap  time.Duration
	parallelism int
	started     time.Time
	queryID     int64  // assigned at admission; QueryProfile.ID at release
	errMsg      string // set by SetError before Release

	// bytes is the current grant size: the admitted bytes plus every
	// successful extension. Written under gov.mu (admission, Request); read
	// lock-free by concurrent pipelines (OperatorBudget, Bytes).
	bytes atomic.Int64

	// opRecs / opProfiled are the executed plan's per-operator records,
	// attached by SetOpProfile from the query's goroutine before Release.
	opRecs     []OpProfile
	opProfiled bool

	released         atomic.Bool
	rows             atomic.Int64
	spilledBytes     atomic.Int64
	spills           atomic.Int64
	allocPeak        atomic.Int64
	extensions       atomic.Int64
	extensionBytes   atomic.Int64
	deniedExtensions atomic.Int64
}

// Bytes is the memory currently granted to the query (admission grant plus
// extensions).
func (gr *Grant) Bytes() int64 {
	if gr == nil {
		return 0
	}
	return gr.bytes.Load()
}

// Request renegotiates the grant mid-flight, asking the governor for extra
// more bytes from the pool's headroom — the pool's own unfilled reservation
// first, then borrowed general memory — without re-queueing. On success the
// grant grows by exactly extra and nil is returned; the extended bytes count
// as in-use immediately, so concurrent admissions and other pools' borrowing
// see them.
//
// A denial is never queued: ErrExtensionDenied means the pool has no
// headroom right now (the caller should externalize instead), while a
// structurally infeasible request — the extended grant would exceed the
// pool's MAXMEMORYSIZE, or other pools' reservations exclude it from the
// global pool for good — fails fast with an error naming the binding limit,
// mirroring the admission-time feasibility check. Both denials are counted
// in the grant's denied_extensions.
func (gr *Grant) Request(extra int64) error {
	if gr == nil {
		return ErrExtensionDenied // ungoverned query: no pool to extend from
	}
	if extra <= 0 {
		return fmt.Errorf("resmgr: grant extension must be positive, got %d", extra)
	}
	g, p := gr.gov, gr.pool
	g.mu.Lock()
	defer g.mu.Unlock()
	// Checked under g.mu: release() also runs under g.mu after flipping the
	// flag, so a Request racing with Release either sees released here or
	// lands its bytes before release() reads them — never a leak.
	if gr.released.Load() {
		return fmt.Errorf("resmgr: grant extension after release")
	}
	cur := gr.bytes.Load()
	// Fail fast on requests no release can ever satisfy, naming the limit.
	if c := p.capBytes(g); cur+extra > c {
		gr.deniedExtensions.Add(1)
		metrics.GrantDenials.Inc()
		return infeasiblef("resmgr: extension of %d bytes on pool %q is infeasible: grant %d + extension exceeds the pool's maxmemorysize of %d bytes",
			extra, p.cfg.Name, cur, c)
	}
	floor := g.feasibilityFloorLocked(p, cur+extra)
	if floor > g.cfg.PoolBytes {
		gr.deniedExtensions.Add(1)
		metrics.GrantDenials.Inc()
		return infeasiblef("resmgr: extension of %d bytes on pool %q is infeasible: other pools reserve %d of the %d-byte global pool",
			extra, p.cfg.Name, floor-(cur+extra), g.cfg.PoolBytes)
	}
	if !g.memoryFitsLocked(p, extra) {
		gr.deniedExtensions.Add(1)
		metrics.GrantDenials.Inc()
		return ErrExtensionDenied
	}
	g.inUse += extra
	p.inUse += extra
	gr.bytes.Add(extra)
	gr.extensions.Add(1)
	gr.extensionBytes.Add(extra)
	metrics.GrantExtensions.Inc()
	return nil
}

// Pool is the name of the pool the grant was admitted on.
func (gr *Grant) Pool() string {
	if gr == nil || gr.pool == nil {
		return ""
	}
	return gr.pool.cfg.Name
}

// OperatorBudget divides the current grant across n concurrent pipelines,
// matching the paper's per-operator budget model. n < 1 is treated as 1.
func (gr *Grant) OperatorBudget(n int) int64 {
	if gr == nil {
		return 0
	}
	if n < 1 {
		n = 1
	}
	b := gr.bytes.Load() / int64(n)
	if b < MinGrantBytes {
		b = MinGrantBytes // floor: an operator can always buffer one batch
	}
	return b
}

// RuntimeCap is the pool's execution wall-time bound at admission time
// (zero = uncapped). Callers wrap the statement's context in a deadline of
// this duration so a runaway statement cancels at the next batch boundary
// and releases its slot.
func (gr *Grant) RuntimeCap() time.Duration {
	if gr == nil {
		return 0
	}
	return gr.runtimeCap
}

// Parallelism is the pool's intra-node parallel degree at admission time
// (zero = engine default). The planner fans parallel shapes out this wide;
// the workers share this one grant, each budgeted a split of it.
func (gr *Grant) Parallelism() int {
	if gr == nil {
		return 0
	}
	return gr.parallelism
}

// QueryID is the id assigned at admission. The grant's retained profile
// appears in v_monitor.query_profiles under the same id, as do the Data
// Collector's phase and event records — it is the engine-wide join key.
func (gr *Grant) QueryID() int64 {
	if gr == nil {
		return 0
	}
	return gr.queryID
}

// QueueWait is how long the query sat in the admission queue.
func (gr *Grant) QueueWait() time.Duration {
	if gr == nil {
		return 0
	}
	return gr.queueWait
}

// ReportRows adds produced rows to the grant's counters.
func (gr *Grant) ReportRows(n int64) {
	if gr == nil {
		return
	}
	gr.rows.Add(n)
}

// ReportSpill records one externalization of b bytes.
func (gr *Grant) ReportSpill(b int64) {
	if gr == nil {
		return
	}
	gr.spills.Add(1)
	gr.spilledBytes.Add(b)
}

// ReportAlloc raises the high-water mark of operator memory observed.
func (gr *Grant) ReportAlloc(b int64) {
	if gr == nil {
		return
	}
	for {
		cur := gr.allocPeak.Load()
		if b <= cur || gr.allocPeak.CompareAndSwap(cur, b) {
			return
		}
	}
}

// SetError marks the grant's query as failed so its retained profile records
// the failure. Must be called by the query's own goroutine before Release.
func (gr *Grant) SetError(err error) {
	if gr == nil || err == nil {
		return
	}
	gr.errMsg = err.Error()
}

// QueryStats is the per-query counter snapshot.
type QueryStats struct {
	// QueryID is the id assigned at admission; 0 for ungoverned queries.
	QueryID      int64
	Rows         int64
	Spills       int64
	SpilledBytes int64
	AllocPeak    int64
	// GrantExtensions / ExtensionBytes record successful mid-flight grant
	// renegotiations; DeniedExtensions counts refused requests (each one
	// typically followed by an operator spill).
	GrantExtensions  int64
	ExtensionBytes   int64
	DeniedExtensions int64
	QueueWait        time.Duration
	WallTime         time.Duration
}

// Stats snapshots the grant's counters; WallTime runs until Release.
func (gr *Grant) Stats() QueryStats {
	if gr == nil {
		return QueryStats{}
	}
	return QueryStats{
		QueryID:          gr.queryID,
		Rows:             gr.rows.Load(),
		Spills:           gr.spills.Load(),
		SpilledBytes:     gr.spilledBytes.Load(),
		AllocPeak:        gr.allocPeak.Load(),
		GrantExtensions:  gr.extensions.Load(),
		ExtensionBytes:   gr.extensionBytes.Load(),
		DeniedExtensions: gr.deniedExtensions.Load(),
		QueueWait:        gr.queueWait,
		WallTime:         time.Since(gr.started),
	}
}

// Release returns the grant to the pool, waking queued queries. Idempotent
// and nil-safe, so error paths can release unconditionally.
func (gr *Grant) Release() {
	if gr == nil || !gr.released.CompareAndSwap(false, true) {
		return
	}
	gr.gov.release(gr)
}
