package resmgr

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
)

func opRecs(n int, op string) []OpProfile {
	out := make([]OpProfile, n)
	for i := range out {
		out[i] = OpProfile{NodeID: i, Depth: i, Op: fmt.Sprintf("%s-%d", op, i), Rows: int64(i)}
	}
	return out
}

// TestOpProfileRetainedWhenProfiled: a profiled run's records land in the
// ring, stamped with the query's profile id.
func TestOpProfileRetainedWhenProfiled(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20})
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gr.SetOpProfile(opRecs(3, "scan"), true)
	gr.Release()

	got := g.OpProfiles()
	if len(got) != 3 {
		t.Fatalf("retained %d records, want 3", len(got))
	}
	profs := g.Profiles()
	wantID := profs[len(profs)-1].ID
	for i, r := range got {
		if r.QueryID != wantID {
			t.Errorf("record %d QueryID = %d, want %d (the query_profiles id)", i, r.QueryID, wantID)
		}
		if r.Op != fmt.Sprintf("scan-%d", i) {
			t.Errorf("record %d = %+v, out of order", i, r)
		}
	}
}

// TestOpProfileDroppedWhenFastAndUnprofiled: an unprofiled run under the
// slow-query threshold leaves nothing behind.
func TestOpProfileDroppedWhenFastAndUnprofiled(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20}) // default threshold: 1s
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gr.SetOpProfile(opRecs(2, "scan"), false)
	gr.Release()
	if got := g.OpProfiles(); len(got) != 0 {
		t.Fatalf("retained %d records from a fast unprofiled run, want 0", len(got))
	}
}

// TestOpProfileRetainedWhenSlow: crossing the slow-query threshold
// auto-retains an unprofiled run's records and counts a slow query.
func TestOpProfileRetainedWhenSlow(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, SlowQueryThreshold: time.Nanosecond})
	before := metrics.SlowQueries.Value()
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gr.SetOpProfile(opRecs(2, "join"), false)
	time.Sleep(time.Microsecond)
	gr.Release()
	if got := g.OpProfiles(); len(got) != 2 {
		t.Fatalf("retained %d records from a slow run, want 2", len(got))
	}
	if d := metrics.SlowQueries.Value() - before; d != 1 {
		t.Errorf("slow_queries moved by %d, want 1", d)
	}
}

// TestOpProfileSlowDisabled: a negative threshold turns slow-query
// retention off entirely.
func TestOpProfileSlowDisabled(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, SlowQueryThreshold: -1})
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gr.SetOpProfile(opRecs(1, "sort"), false)
	time.Sleep(time.Microsecond)
	gr.Release()
	if got := g.OpProfiles(); len(got) != 0 {
		t.Fatalf("retained %d records with retention disabled, want 0", len(got))
	}
}

// TestOpProfileRingEvictsOldest: the ring is bounded in records (not
// queries); overflow evicts oldest-first and OpProfiles returns the
// survivors in arrival order.
func TestOpProfileRingEvictsOldest(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, OpProfileCapacity: 4})
	for q := 0; q < 3; q++ {
		gr, err := g.Admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		gr.SetOpProfile(opRecs(2, fmt.Sprintf("q%d", q)), true)
		gr.Release()
	}
	got := g.OpProfiles()
	if len(got) != 4 {
		t.Fatalf("ring length = %d, want 4", len(got))
	}
	want := []string{"q1-0", "q1-1", "q2-0", "q2-1"}
	for i, r := range got {
		if r.Op != want[i] {
			t.Errorf("record %d op = %q, want %q", i, r.Op, want[i])
		}
	}
}

// TestOpProfileCapacityDisabled: a negative capacity disables the ring
// even for explicitly profiled runs.
func TestOpProfileCapacityDisabled(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, OpProfileCapacity: -1})
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gr.SetOpProfile(opRecs(2, "scan"), true)
	gr.Release()
	if got := g.OpProfiles(); len(got) != 0 {
		t.Fatalf("retained %d records with the ring disabled, want 0", len(got))
	}
}

// TestSetOpProfileNilGrant: ungoverned runs (virtual-table-only queries)
// carry a nil grant; attaching must be a safe no-op.
func TestSetOpProfileNilGrant(t *testing.T) {
	var gr *Grant
	gr.SetOpProfile(opRecs(1, "scan"), true)
}
