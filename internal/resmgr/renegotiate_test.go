package resmgr

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGrantRequestExtendsFromHeadroom: an admitted query grows its grant
// from free pool memory without re-queueing, the extension shows in the
// governor's in-use accounting immediately, and release returns everything.
func TestGrantRequestExtendsFromHeadroom(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 4, GrantBytes: 128 * kib})
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gr.Bytes() != 128*kib {
		t.Fatalf("admitted bytes = %d, want %d", gr.Bytes(), 128*kib)
	}
	if err := gr.Request(256 * kib); err != nil {
		t.Fatalf("extension with free headroom failed: %v", err)
	}
	if gr.Bytes() != 384*kib {
		t.Fatalf("extended bytes = %d, want %d", gr.Bytes(), 384*kib)
	}
	if st := g.Stats(); st.InUseBytes != 384*kib {
		t.Fatalf("in-use after extension = %d, want %d", st.InUseBytes, 384*kib)
	}
	qs := gr.Stats()
	if qs.GrantExtensions != 1 || qs.ExtensionBytes != 256*kib || qs.DeniedExtensions != 0 {
		t.Fatalf("grant counters = %+v", qs)
	}
	gr.Release()
	st := g.Stats()
	if st.InUseBytes != 0 || st.Running != 0 {
		t.Fatalf("release leaked: %+v", st)
	}
	if st.GrantExtensions != 1 || st.ExtensionBytes != 256*kib {
		t.Fatalf("governor aggregates missing extensions: %+v", st)
	}
	profs := g.Profiles()
	if len(profs) != 1 {
		t.Fatalf("want 1 profile, got %d", len(profs))
	}
	p := profs[0]
	if p.GrantBytes != 384*kib || p.GrantExtensions != 1 || p.ExtensionBytes != 256*kib {
		t.Fatalf("profile = %+v", p)
	}
}

// TestGrantRequestInfeasiblePoolCap: an extension that would push the grant
// past the pool's MAXMEMORYSIZE fails fast with an error naming the cap —
// mirroring the admission-time feasibility error — and counts as denied.
func TestGrantRequestInfeasiblePoolCap(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 4})
	if err := g.CreatePool(PoolConfig{Name: "capped", MemBytes: 128 * kib, MaxMemBytes: 192 * kib}); err != nil {
		t.Fatal(err)
	}
	ctx := WithPool(context.Background(), "capped")
	gr, err := g.Admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Release()
	err = gr.Request(192 * kib) // grant is already >= 64K, cap is 192K
	if err == nil {
		t.Fatal("extension past maxmemorysize should fail")
	}
	if errors.Is(err, ErrExtensionDenied) {
		t.Fatalf("infeasible extension should not be a retriable denial: %v", err)
	}
	if !strings.Contains(err.Error(), "maxmemorysize") || !strings.Contains(err.Error(), "capped") {
		t.Fatalf("error should name the pool cap: %v", err)
	}
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("infeasible extension should be typed InfeasibleError: %v", err)
	}
	if qs := gr.Stats(); qs.DeniedExtensions != 1 {
		t.Fatalf("infeasible request not counted as denied: %+v", qs)
	}
}

// TestGrantRequestInfeasibleReservations: an extension excluded for good by
// other pools' reservations fails fast naming the global pool, even though
// the pool itself has no MAXMEMORYSIZE.
func TestGrantRequestInfeasibleReservations(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 4, GrantBytes: 128 * kib})
	if err := g.CreatePool(PoolConfig{Name: "hog", MemBytes: 768 * kib}); err != nil {
		t.Fatal(err)
	}
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Release()
	err = gr.Request(512 * kib) // 128K + 512K + 768K reservation > 1024K forever
	if err == nil {
		t.Fatal("structurally impossible extension should fail")
	}
	if errors.Is(err, ErrExtensionDenied) {
		t.Fatalf("want a fail-fast infeasibility error, got retriable denial: %v", err)
	}
	if !strings.Contains(err.Error(), "reserve") {
		t.Fatalf("error should name the reservations: %v", err)
	}
}

// TestGrantRequestDeniedThenRetriable: a feasible extension is denied while
// another query holds the headroom and succeeds after that query releases.
func TestGrantRequestDeniedThenRetriable(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 512 * kib, MaxConcurrency: 4, GrantBytes: 128 * kib})
	ctx := context.Background()
	gr1, err := g.Admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gr2, err := g.AdmitBytes(ctx, 384*kib) // pool now full
	if err != nil {
		t.Fatal(err)
	}
	if err := gr1.Request(128 * kib); !errors.Is(err, ErrExtensionDenied) {
		t.Fatalf("extension on a full pool: err = %v, want ErrExtensionDenied", err)
	}
	if qs := gr1.Stats(); qs.DeniedExtensions != 1 {
		t.Fatalf("denied extension not counted: %+v", qs)
	}
	gr2.Release()
	if err := gr1.Request(128 * kib); err != nil {
		t.Fatalf("extension after release failed: %v", err)
	}
	gr1.Release()
}

// TestExtensionRespectsReservations: borrowing via extension can never eat
// another pool's unfilled MEMORYSIZE guarantee.
func TestExtensionRespectsReservations(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 4, GrantBytes: 128 * kib})
	if err := g.CreatePool(PoolConfig{Name: "etl", MemBytes: 512 * kib}); err != nil {
		t.Fatal(err)
	}
	gr, err := g.Admit(context.Background()) // general, 128K
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Release()
	// 1024K - 512K reserved = 512K for general; 128K held → 384K headroom.
	if err := gr.Request(448 * kib); err == nil {
		t.Fatal("extension into etl's idle reservation should be refused")
	}
	if err := gr.Request(384 * kib); err != nil {
		t.Fatalf("extension up to the unreserved remainder failed: %v", err)
	}
	// The etl pool still gets its full guarantee right now.
	egr, err := g.AdmitPoolBytes(context.Background(), "etl", 512*kib)
	if err != nil {
		t.Fatalf("reservation violated by extension: %v", err)
	}
	egr.Release()
}

// TestExtensionCountsAgainstAdmission: outstanding extensions are in-use
// memory — an admission sized to the pre-extension free space must wait.
func TestExtensionCountsAgainstAdmission(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 512 * kib, MaxConcurrency: 4,
		GrantBytes: 128 * kib, QueueTimeout: 50 * time.Millisecond})
	ctx := context.Background()
	gr, err := g.Admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.Request(256 * kib); err != nil { // 384K now in use
		t.Fatal(err)
	}
	if _, err := g.AdmitBytes(ctx, 256*kib); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("admission ignoring outstanding extension: err = %v, want timeout", err)
	}
	gr.Release()
	gr2, err := g.AdmitBytes(ctx, 256*kib)
	if err != nil {
		t.Fatalf("admission after release failed: %v", err)
	}
	gr2.Release()
}

// TestConcurrentExtendersDrainHeadroom races many queries extending in
// small steps until the pool is dry and verifies the global invariant held:
// granted bytes never exceed the pool, nothing leaks on release, and the
// denials line up with the headroom that actually existed.
func TestConcurrentExtendersDrainHeadroom(t *testing.T) {
	const (
		pool    = 2048 * kib
		grant   = 64 * kib
		step    = 32 * kib
		workers = 8
	)
	g := NewGovernor(Config{PoolBytes: pool, MaxConcurrency: workers, GrantBytes: grant})
	ctx := context.Background()
	var granted atomic.Int64
	var wg sync.WaitGroup
	grants := make([]*Grant, workers)
	for i := 0; i < workers; i++ {
		gr, err := g.Admit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		grants[i] = gr
		granted.Add(grant)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(gr *Grant) {
			defer wg.Done()
			for {
				if err := gr.Request(step); err != nil {
					if !errors.Is(err, ErrExtensionDenied) {
						t.Errorf("unexpected extension error: %v", err)
					}
					return
				}
				granted.Add(step)
			}
		}(grants[i])
	}
	wg.Wait()
	if got := granted.Load(); got != pool {
		t.Fatalf("extenders drained %d bytes, want the whole %d-byte pool", got, pool)
	}
	if st := g.Stats(); st.InUseBytes != pool {
		t.Fatalf("governor in-use = %d, want %d", st.InUseBytes, pool)
	}
	var sum int64
	for _, gr := range grants {
		sum += gr.Bytes()
		gr.Release()
	}
	if sum != pool {
		t.Fatalf("grants account for %d bytes, want %d", sum, pool)
	}
	st := g.Stats()
	if st.InUseBytes != 0 || st.Running != 0 {
		t.Fatalf("release leaked: %+v", st)
	}
	if st.DeniedExtensions < int64(workers) {
		t.Fatalf("every worker should end on a denial: %+v", st)
	}
}

// TestExtensionVsAlterShrink races grant extensions against ALTER RESOURCE
// POOL shrinking and restoring MAXMEMORYSIZE. The cap must bind atomically:
// whatever interleaving happens, the pool's in-use bytes never exceed the
// global pool and the governor stays consistent after release.
func TestExtensionVsAlterShrink(t *testing.T) {
	const pool = 1024 * kib
	g := NewGovernor(Config{PoolBytes: pool, MaxConcurrency: 4})
	if err := g.CreatePool(PoolConfig{Name: "elastic", MemBytes: 128 * kib, MaxMemBytes: 512 * kib}); err != nil {
		t.Fatal(err)
	}
	ctx := WithPool(context.Background(), "elastic")
	gr, err := g.AdmitPoolBytes(ctx, "elastic", 64*kib)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		small, big := int64(192*kib), int64(512*kib)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mm := big
			if i%2 == 0 {
				mm = small
			}
			if err := g.AlterPool("elastic", PoolAlter{MaxMemBytes: &mm}); err != nil {
				t.Errorf("alter: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 2000; i++ {
			err := gr.Request(16 * kib)
			switch {
			case err == nil, errors.Is(err, ErrExtensionDenied):
			case strings.Contains(err.Error(), "maxmemorysize"):
				// Shrunk cap observed mid-flight: infeasible under the
				// current configuration, retriable after the next grow.
			default:
				t.Errorf("extension: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := gr.Bytes(); got > pool {
		t.Fatalf("grant grew past the global pool: %d", got)
	}
	st, ok := g.PoolStatus("elastic")
	if !ok {
		t.Fatal("pool vanished")
	}
	if st.InUseBytes != gr.Bytes() {
		t.Fatalf("pool in-use %d != grant %d", st.InUseBytes, gr.Bytes())
	}
	gr.Release()
	if st := g.Stats(); st.InUseBytes != 0 {
		t.Fatalf("release leaked: %+v", st)
	}
}

// TestSizeGrant covers admission sizing above the pool default: raised into
// live headroom, bounded by MAXMEMORYSIZE, never below the static split.
func TestSizeGrant(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1024 * kib, MaxConcurrency: 4, GrantBytes: 128 * kib})
	if err := g.CreatePool(PoolConfig{Name: "capped", MemBytes: 128 * kib, MaxMemBytes: 256 * kib, PlannedConcurrency: 2}); err != nil {
		t.Fatal(err)
	}

	if got := g.SizeGrant("", 0); got != 0 {
		t.Fatalf("SizeGrant(0) = %d, want 0 (pool default)", got)
	}
	if got := g.SizeGrant("nosuch", 1*kib); got != 0 {
		t.Fatalf("unknown pool = %d, want 0", got)
	}
	// Below the default: request as estimated (floored at MinGrantBytes).
	if got := g.SizeGrant("", 80*kib); got != 80*kib {
		t.Fatalf("below-default want = %d, want %d", got, 80*kib)
	}
	if got := g.SizeGrant("", 1); got != MinGrantBytes {
		t.Fatalf("tiny want = %d, want floor %d", got, MinGrantBytes)
	}
	// Above the default with a free pool: granted in full.
	if got := g.SizeGrant("", 512*kib); got != 512*kib {
		t.Fatalf("above-default want = %d, want %d", got, 512*kib)
	}
	// Bounded by the pool's MAXMEMORYSIZE.
	if got := g.SizeGrant("capped", 512*kib); got != 256*kib {
		t.Fatalf("capped want = %d, want %d", got, 256*kib)
	}
	// With the headroom held by a running query, sizing falls back toward
	// the default instead of requesting memory that is not there.
	gr, err := g.AdmitBytes(context.Background(), 768*kib)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.SizeGrant("", 512*kib); got != 128*kib {
		t.Fatalf("saturated want = %d, want pool default %d", got, 128*kib)
	}
	gr.Release()
}

// TestTryAdmitSince: the non-queueing admission either places the grant
// immediately (crediting the caller's enqueue time as queue wait) or
// declines without touching the queue statistics — no queued, timed-out or
// canceled counts for a declined try.
func TestTryAdmitSince(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 512 * kib, MaxConcurrency: 1, GrantBytes: 128 * kib})
	ctx := context.Background()

	if _, ok := g.TryAdmitSince(ctx, "nosuch", 0, time.Now()); ok {
		t.Fatal("TryAdmitSince admitted on an unknown pool")
	}
	enq := time.Now().Add(-40 * time.Millisecond) // stall of a failed prior attempt
	gr, ok := g.TryAdmitSince(ctx, "", 0, enq)
	if !ok {
		t.Fatal("TryAdmitSince declined an idle pool")
	}
	if gr.Bytes() != 128*kib {
		t.Fatalf("try-admitted bytes = %d, want pool default %d", gr.Bytes(), 128*kib)
	}
	if gr.QueueWait() < 40*time.Millisecond {
		t.Fatalf("queue wait %s does not credit the prior stall", gr.QueueWait())
	}
	// Slots exhausted: decline, and leave the queue counters untouched.
	if _, ok := g.TryAdmitSince(ctx, "", 0, time.Now()); ok {
		t.Fatal("TryAdmitSince admitted past the concurrency bound")
	}
	st := g.Stats()
	if st.Queued != 0 || st.TimedOut != 0 || st.Canceled != 0 {
		t.Fatalf("declined try polluted queue counters: %+v", st)
	}
	if st.Admitted != 1 {
		t.Fatalf("admitted = %d, want 1", st.Admitted)
	}
	gr.Release()
}

// TestGrantRequestMisuse: non-positive sizes and released grants error
// without touching the accounting; a nil grant reports a plain denial so
// ungoverned operators just spill.
func TestGrantRequestMisuse(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 512 * kib, MaxConcurrency: 2, GrantBytes: 128 * kib})
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.Request(0); err == nil {
		t.Fatal("zero-byte extension should error")
	}
	if err := gr.Request(-1); err == nil {
		t.Fatal("negative extension should error")
	}
	gr.Release()
	if err := gr.Request(64 * kib); err == nil {
		t.Fatal("extension after release should error")
	}
	if st := g.Stats(); st.InUseBytes != 0 {
		t.Fatalf("misuse changed accounting: %+v", st)
	}
	var nilGr *Grant
	if err := nilGr.Request(64 * kib); !errors.Is(err, ErrExtensionDenied) {
		t.Fatalf("nil grant: err = %v, want ErrExtensionDenied", err)
	}
}
