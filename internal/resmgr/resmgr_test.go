package resmgr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmitFastPath(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, MaxConcurrency: 2})
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gr.Bytes() != 512<<10 {
		t.Fatalf("grant bytes = %d, want %d", gr.Bytes(), 512<<10)
	}
	st := g.Stats()
	if st.Running != 1 || st.InUseBytes != 512<<10 || st.Admitted != 1 {
		t.Fatalf("stats after admit: %+v", st)
	}
	gr.Release()
	gr.Release() // idempotent
	st = g.Stats()
	if st.Running != 0 || st.InUseBytes != 0 {
		t.Fatalf("stats after release: %+v", st)
	}
}

func TestConcurrencyBoundAndFIFOFairness(t *testing.T) {
	// One slot so admissions drain strictly one at a time: completion order
	// equals dispatch order.
	g := NewGovernor(Config{PoolBytes: 64 << 20, MaxConcurrency: 1, QueueTimeout: -1})
	a, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Queue 8 more; record the order they are admitted in.
	const n = 8
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			started <- struct{}{}
			gr, err := g.Admit(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			gr.Release()
		}(i)
		<-started // serialize enqueue so FIFO order is deterministic
		for {
			if g.Stats().Waiting == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if st := g.Stats(); st.Running != 1 || st.Waiting != n {
		t.Fatalf("expected 1 running / %d waiting, got %+v", n, st)
	}
	a.Release()
	wg.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("admission order %v not FIFO", order)
		}
	}
	st := g.Stats()
	if st.Queued != n || st.TotalQueueWait <= 0 {
		t.Fatalf("queue stats: %+v", st)
	}
}

func TestQueueTimeout(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, MaxConcurrency: 1, QueueTimeout: 20 * time.Millisecond})
	hold, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	_, err = g.Admit(context.Background())
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	st := g.Stats()
	if st.TimedOut != 1 || st.Waiting != 0 {
		t.Fatalf("stats after timeout: %+v", st)
	}
}

func TestAdmitCancelWhileQueued(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, MaxConcurrency: 1, QueueTimeout: -1})
	hold, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx)
		done <- err
	}()
	for g.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := g.Stats(); st.Canceled != 1 || st.Waiting != 0 {
		t.Fatalf("stats after cancel: %+v", st)
	}
	hold.Release()
	if st := g.Stats(); st.Running != 0 || st.InUseBytes != 0 {
		t.Fatalf("pool not restored: %+v", st)
	}
}

func TestAbandonedHeadUnblocksQueue(t *testing.T) {
	// A large queued grant at the head must not strand a smaller one behind
	// it forever once the head gives up.
	g := NewGovernor(Config{PoolBytes: 1 << 20, MaxConcurrency: 4, QueueTimeout: -1, GrantBytes: 256 << 10})
	hold, err := g.AdmitBytes(context.Background(), 900<<10)
	if err != nil {
		t.Fatal(err)
	}
	bigCtx, cancelBig := context.WithCancel(context.Background())
	bigDone := make(chan error, 1)
	go func() {
		_, err := g.AdmitBytes(bigCtx, 1<<20)
		bigDone <- err
	}()
	for g.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	smallDone := make(chan *Grant, 1)
	go func() {
		gr, err := g.AdmitBytes(context.Background(), 64<<10)
		if err != nil {
			t.Error(err)
		}
		smallDone <- gr
	}()
	for g.Stats().Waiting != 2 {
		time.Sleep(time.Millisecond)
	}
	// Small fits but must wait behind the big head (fairness).
	select {
	case <-smallDone:
		t.Fatal("small grant jumped the queue")
	case <-time.After(20 * time.Millisecond):
	}
	cancelBig()
	<-bigDone
	gr := <-smallDone
	gr.Release()
	hold.Release()
}

func TestGrantReportingAggregation(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, MaxConcurrency: 2})
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gr.ReportRows(100)
	gr.ReportSpill(4096)
	gr.ReportSpill(1024)
	gr.ReportAlloc(2000)
	gr.ReportAlloc(1000) // lower: ignored
	qs := gr.Stats()
	if qs.Rows != 100 || qs.Spills != 2 || qs.SpilledBytes != 5120 || qs.AllocPeak != 2000 {
		t.Fatalf("query stats: %+v", qs)
	}
	gr.Release()
	st := g.Stats()
	if st.RowsReturned != 100 || st.SpilledBytes != 5120 {
		t.Fatalf("aggregated stats: %+v", st)
	}
}

func TestNilGrantSafe(t *testing.T) {
	var gr *Grant
	gr.ReportRows(1)
	gr.ReportSpill(1)
	gr.ReportAlloc(1)
	gr.Release()
	if gr.Bytes() != 0 || gr.OperatorBudget(4) != 0 || gr.QueueWait() != 0 {
		t.Fatal("nil grant must be inert")
	}
	if (gr.Stats() != QueryStats{}) {
		t.Fatal("nil grant stats must be zero")
	}
}

func TestOperatorBudgetSplit(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 32 << 20, MaxConcurrency: 2})
	gr, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Release()
	if b := gr.OperatorBudget(4); b != 4<<20 {
		t.Fatalf("budget = %d, want %d", b, 4<<20)
	}
	if b := gr.OperatorBudget(0); b != 16<<20 {
		t.Fatalf("budget(0) = %d, want %d", b, 16<<20)
	}
	// Tiny grants never divide below the floor.
	tiny, err := g.AdmitBytes(context.Background(), 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer tiny.Release()
	if b := tiny.OperatorBudget(16); b != 64<<10 {
		t.Fatalf("floored budget = %d, want %d", b, 64<<10)
	}
}

func TestGrantTooLarge(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, MaxConcurrency: 2})
	if _, err := g.AdmitBytes(context.Background(), 2<<20); err == nil {
		t.Fatal("expected error for grant larger than pool")
	}
}

// TestConcurrentStress hammers the governor from many goroutines under the
// race detector: the pool must never overcommit and must drain to zero.
func TestConcurrentStress(t *testing.T) {
	g := NewGovernor(Config{PoolBytes: 1 << 20, MaxConcurrency: 4, QueueTimeout: -1})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%8 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i)*100*time.Microsecond)
				defer cancel()
			}
			gr, err := g.Admit(ctx)
			if err != nil {
				return
			}
			gr.ReportRows(1)
			if st := g.Stats(); st.InUseBytes > st.PoolBytes || st.Running > 4 {
				t.Errorf("overcommit: %+v", st)
			}
			gr.Release()
		}(i)
	}
	wg.Wait()
	st := g.Stats()
	if st.Running != 0 || st.InUseBytes != 0 || st.Waiting != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
}
