package resmgr

import (
	"context"
	"fmt"
	"time"
)

// Named resource pools (paper §8, "Workload Management"): Vertica partitions
// query memory into named pools with reserved and maximum sizes. A pool
// guarantees MemBytes to its own queries and may *borrow* beyond that from
// the unreserved GENERAL memory, up to MaxMemBytes. Admission is per pool:
// each pool has its own concurrency slots, queue and queue timeout, so an
// ETL pool saturating its slots never blocks an interactive pool with free
// slots (only shared unreserved memory is contended).

// GeneralPool is the built-in pool backing the unreserved memory; statements
// run in it unless their session selects another pool.
const GeneralPool = "general"

// MinGrantBytes floors per-query grants so an operator can always buffer at
// least one batch.
const MinGrantBytes = 64 << 10

// PoolConfig describes one named pool. Zero fields inherit governor
// defaults; see each field.
type PoolConfig struct {
	Name string
	// MemBytes is memory reserved for this pool: admission of other pools
	// never eats into it. Zero reserves nothing (the pool runs entirely on
	// borrowed general memory).
	MemBytes int64
	// MaxMemBytes caps the pool's total use, bounding how much it can borrow
	// beyond MemBytes. Zero means unlimited borrowing (up to the global
	// pool). Setting MaxMemBytes == MemBytes disables borrowing.
	MaxMemBytes int64
	// GrantBytes fixes the per-query grant. Zero derives
	// MemBytes/PlannedConcurrency (general memory stands in for MemBytes
	// when the pool reserves nothing).
	GrantBytes int64
	// PlannedConcurrency sizes default grants; zero uses MaxConcurrency.
	PlannedConcurrency int
	// MaxConcurrency bounds simultaneously running queries of this pool;
	// zero inherits the governor's MaxConcurrency.
	MaxConcurrency int
	// QueueTimeout bounds queue wait for this pool; zero inherits the
	// governor's, negative disables.
	QueueTimeout time.Duration
	// Priority orders admission dispatch across pools: when a release frees
	// resources, higher-priority pools' queues are served first (FIFO within
	// a pool). Equal priorities keep creation order; general defaults to 0.
	Priority int
	// RuntimeCap bounds a statement's execution wall time: admitted
	// statements run under a context deadline and a runaway statement is
	// cancelled at the next batch boundary, releasing its slot and memory.
	// Zero means uncapped.
	RuntimeCap time.Duration
	// Parallelism is the intra-node parallel degree this pool's statements
	// plan with (Vertica's EXECUTIONPARALLELISM): parallel join/sort/
	// aggregation/DISTINCT shapes fan out this many worker pipelines, all
	// sharing the query's single memory grant (budget split per worker).
	// Zero inherits the engine default.
	Parallelism int
}

// PoolAlter carries ALTER RESOURCE POOL changes; nil fields keep the current
// value.
type PoolAlter struct {
	MemBytes           *int64
	MaxMemBytes        *int64
	GrantBytes         *int64
	PlannedConcurrency *int
	MaxConcurrency     *int
	QueueTimeout       *time.Duration
	Priority           *int
	RuntimeCap         *time.Duration
	Parallelism        *int
}

// PoolStatus is a snapshot of one pool's configuration and counters, the row
// source for v_monitor.resource_pools.
type PoolStatus struct {
	PoolConfig
	// Effective (default-applied) knobs.
	EffGrantBytes     int64
	EffMaxConcurrency int
	EffMaxMemBytes    int64
	EffQueueTimeout   time.Duration

	Running        int
	Waiting        int
	InUseBytes     int64
	BorrowedBytes  int64 // in-use beyond the pool's reservation
	Admitted       int64
	Queued         int64
	TimedOut       int64
	Canceled       int64
	PeakRunning    int
	TotalQueueWait time.Duration
	RowsReturned   int64
	SpilledBytes   int64
	// Mid-flight grant renegotiation counters, aggregated over released
	// grants (outstanding extensions already show in InUseBytes).
	GrantExtensions  int64
	ExtensionBytes   int64
	DeniedExtensions int64
}

// pool is the runtime state of one named pool. All fields are guarded by the
// governor's mutex.
type pool struct {
	cfg PoolConfig

	inUse   int64
	running int
	queue   []*waiter

	admitted    int64
	queuedTotal int64
	timedOut    int64
	canceled    int64
	peakRunning int
	queueWait   time.Duration
	rows        int64
	spilled     int64
	extensions  int64
	extBytes    int64
	deniedExt   int64
}

// maxConc is the pool's effective concurrency bound.
func (p *pool) maxConc(g *Governor) int {
	if p.cfg.MaxConcurrency > 0 {
		return p.cfg.MaxConcurrency
	}
	return g.cfg.MaxConcurrency
}

// capBytes is the pool's effective memory ceiling (reservation plus maximum
// borrow), never exceeding the global pool.
func (p *pool) capBytes(g *Governor) int64 {
	if p.cfg.MaxMemBytes > 0 && p.cfg.MaxMemBytes < g.cfg.PoolBytes {
		return p.cfg.MaxMemBytes
	}
	return g.cfg.PoolBytes
}

// grantSize is the pool's effective default per-query grant: the pool's
// reservation divided by its planned concurrency. A pool reserving nothing
// sizes grants like the general pool (global pool over the governor's
// concurrency), so a narrow unreserved pool does not monopolize memory.
func (p *pool) grantSize(g *Governor) int64 {
	b := p.cfg.GrantBytes
	if b <= 0 {
		base := p.cfg.MemBytes
		planned := p.cfg.PlannedConcurrency
		if base <= 0 {
			base = g.cfg.PoolBytes
			if planned <= 0 {
				planned = g.cfg.MaxConcurrency
			}
		}
		if planned <= 0 {
			planned = p.maxConc(g)
		}
		b = base / int64(planned)
	}
	if b < MinGrantBytes {
		b = MinGrantBytes
	}
	if c := p.capBytes(g); b > c {
		b = c
	}
	// Shrink to the unreserved remainder: other pools' reservations are
	// untouchable, so a grant larger than what is left could never be
	// admitted — a legal CREATE RESOURCE POOL must not brick this pool's
	// default admissions. (If reservations leave less than one minimum
	// grant, admission fails fast with the feasibility error instead.)
	avail := g.cfg.PoolBytes
	for _, name := range g.order {
		if q := g.pools[name]; q != p {
			avail -= q.cfg.MemBytes
		}
	}
	if b > avail && avail >= MinGrantBytes {
		b = avail
	}
	return b
}

// timeout is the pool's effective queue timeout (<= 0 disables).
func (p *pool) timeout(g *Governor) time.Duration {
	if p.cfg.QueueTimeout != 0 {
		return p.cfg.QueueTimeout
	}
	return g.cfg.QueueTimeout
}

func (p *pool) statusLocked(g *Governor) PoolStatus {
	borrowed := p.inUse - p.cfg.MemBytes
	if borrowed < 0 {
		borrowed = 0
	}
	return PoolStatus{
		PoolConfig:        p.cfg,
		EffGrantBytes:     p.grantSize(g),
		EffMaxConcurrency: p.maxConc(g),
		EffMaxMemBytes:    p.capBytes(g),
		EffQueueTimeout:   p.timeout(g),
		Running:           p.running,
		Waiting:           len(p.queue),
		InUseBytes:        p.inUse,
		BorrowedBytes:     borrowed,
		Admitted:          p.admitted,
		Queued:            p.queuedTotal,
		TimedOut:          p.timedOut,
		Canceled:          p.canceled,
		PeakRunning:       p.peakRunning,
		TotalQueueWait:    p.queueWait,
		RowsReturned:      p.rows,
		SpilledBytes:      p.spilled,
		GrantExtensions:   p.extensions,
		ExtensionBytes:    p.extBytes,
		DeniedExtensions:  p.deniedExt,
	}
}

// --- pool administration ----------------------------------------------------

// CreatePool registers a named pool. The sum of all reservations (MemBytes)
// must fit the global pool so every reservation stays honorable.
func (g *Governor) CreatePool(cfg PoolConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("resmgr: pool name is required")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.pools[cfg.Name]; ok {
		return fmt.Errorf("resmgr: pool %q already exists", cfg.Name)
	}
	if err := g.validatePoolLocked(cfg, cfg.Name); err != nil {
		return err
	}
	g.pools[cfg.Name] = &pool{cfg: cfg}
	g.order = append(g.order, cfg.Name)
	return nil
}

// AlterPool applies the non-nil fields of a to the named pool and re-runs
// dispatch (loosened limits may admit queued queries immediately).
func (g *Governor) AlterPool(name string, a PoolAlter) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.pools[name]
	if !ok {
		return fmt.Errorf("resmgr: pool %q does not exist", name)
	}
	cfg := p.cfg
	if a.MemBytes != nil {
		cfg.MemBytes = *a.MemBytes
	}
	if a.MaxMemBytes != nil {
		cfg.MaxMemBytes = *a.MaxMemBytes
	}
	if a.GrantBytes != nil {
		cfg.GrantBytes = *a.GrantBytes
	}
	if a.PlannedConcurrency != nil {
		cfg.PlannedConcurrency = *a.PlannedConcurrency
	}
	if a.MaxConcurrency != nil {
		cfg.MaxConcurrency = *a.MaxConcurrency
	}
	if a.QueueTimeout != nil {
		cfg.QueueTimeout = *a.QueueTimeout
	}
	if a.Priority != nil {
		cfg.Priority = *a.Priority
	}
	if a.RuntimeCap != nil {
		cfg.RuntimeCap = *a.RuntimeCap
	}
	if a.Parallelism != nil {
		cfg.Parallelism = *a.Parallelism
	}
	if err := g.validatePoolLocked(cfg, name); err != nil {
		return err
	}
	p.cfg = cfg
	g.dispatchLocked()
	return nil
}

// validatePoolLocked checks a pool configuration against the governor and
// the other pools' reservations. self is skipped in the reservation sum.
func (g *Governor) validatePoolLocked(cfg PoolConfig, self string) error {
	if cfg.MemBytes < 0 || cfg.MaxMemBytes < 0 || cfg.GrantBytes < 0 {
		return fmt.Errorf("resmgr: pool %q: negative sizes", cfg.Name)
	}
	if cfg.MaxConcurrency < 0 || cfg.PlannedConcurrency < 0 {
		return fmt.Errorf("resmgr: pool %q: negative concurrency", cfg.Name)
	}
	if cfg.RuntimeCap < 0 {
		return fmt.Errorf("resmgr: pool %q: negative runtime cap", cfg.Name)
	}
	if cfg.Parallelism < 0 {
		return fmt.Errorf("resmgr: pool %q: negative parallelism", cfg.Name)
	}
	if cfg.MemBytes > g.cfg.PoolBytes {
		return fmt.Errorf("resmgr: pool %q reserves %d bytes, global pool is %d",
			cfg.Name, cfg.MemBytes, g.cfg.PoolBytes)
	}
	if cfg.MaxMemBytes > 0 && cfg.MaxMemBytes < cfg.MemBytes {
		return fmt.Errorf("resmgr: pool %q: maxmemorysize %d below memorysize %d",
			cfg.Name, cfg.MaxMemBytes, cfg.MemBytes)
	}
	reserved := cfg.MemBytes
	for name, q := range g.pools {
		if name == self {
			continue
		}
		reserved += q.cfg.MemBytes
	}
	if reserved > g.cfg.PoolBytes {
		return fmt.Errorf("resmgr: pool reservations total %d bytes, exceeding the %d-byte global pool",
			reserved, g.cfg.PoolBytes)
	}
	return nil
}

// DropPool removes an idle pool; the built-in general pool cannot be
// dropped, and a pool with running or queued queries refuses.
func (g *Governor) DropPool(name string) error {
	if name == GeneralPool {
		return fmt.Errorf("resmgr: cannot drop the built-in %s pool", GeneralPool)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.pools[name]
	if !ok {
		return fmt.Errorf("resmgr: pool %q does not exist", name)
	}
	if p.running > 0 || len(p.queue) > 0 {
		return fmt.Errorf("resmgr: pool %q is busy (%d running, %d queued)", name, p.running, len(p.queue))
	}
	delete(g.pools, name)
	for i, n := range g.order {
		if n == name {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	// The dropped pool's reservation returns to general: re-dispatch.
	g.dispatchLocked()
	return nil
}

// HasPool reports whether the named pool exists.
func (g *Governor) HasPool(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.pools[name]
	return ok
}

// Pools snapshots every pool in creation order (general first).
func (g *Governor) Pools() []PoolStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]PoolStatus, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, g.pools[name].statusLocked(g))
	}
	return out
}

// PoolStatus snapshots one pool.
func (g *Governor) PoolStatus(name string) (PoolStatus, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.pools[name]
	if !ok {
		return PoolStatus{}, false
	}
	return p.statusLocked(g), true
}

// --- query profiles ---------------------------------------------------------

// QueryProfile is the retained accounting of one finished statement, the row
// source for v_monitor.query_profiles.
type QueryProfile struct {
	ID           int64
	Pool         string
	Label        string // statement text (or caller-supplied tag)
	GrantBytes   int64  // final grant: admission bytes plus extensions
	Rows         int64
	Spills       int64
	SpilledBytes int64
	// GrantExtensions / ExtensionBytes record successful mid-flight grant
	// renegotiations; DeniedExtensions counts refused requests (the operator
	// spilled instead of growing).
	GrantExtensions  int64
	ExtensionBytes   int64
	DeniedExtensions int64
	AllocPeak        int64
	QueueWait        time.Duration
	Wall             time.Duration
	Started          time.Time
	Error            string // "" on success
}

// addProfileLocked appends to the bounded ring.
func (g *Governor) addProfileLocked(p QueryProfile) {
	if cap(g.profiles) == 0 {
		return
	}
	if g.profLen < cap(g.profiles) {
		g.profiles = append(g.profiles, p)
		g.profLen++
		return
	}
	g.profiles[g.profHead] = p
	g.profHead = (g.profHead + 1) % cap(g.profiles)
}

// Profiles returns retained query profiles, oldest first.
func (g *Governor) Profiles() []QueryProfile {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]QueryProfile, 0, g.profLen)
	for i := 0; i < g.profLen; i++ {
		out = append(out, g.profiles[(g.profHead+i)%cap(g.profiles)])
	}
	return out
}

// --- context tags -----------------------------------------------------------

type ctxKey int

const (
	poolCtxKey ctxKey = iota
	labelCtxKey
)

// WithPool tags a context with the resource pool its statements admit
// against; the zero value routes to the general pool.
func WithPool(ctx context.Context, pool string) context.Context {
	return context.WithValue(ctx, poolCtxKey, pool)
}

// PoolFromContext returns the pool tag ("" when untagged).
func PoolFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	s, _ := ctx.Value(poolCtxKey).(string)
	return s
}

// WithLabel tags a context with a human-readable statement label recorded in
// query profiles (typically the SQL text).
func WithLabel(ctx context.Context, label string) context.Context {
	return context.WithValue(ctx, labelCtxKey, label)
}

// LabelFromContext returns the label tag ("" when untagged).
func LabelFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	s, _ := ctx.Value(labelCtxKey).(string)
	return s
}
