package resmgr

// OpProfile is one operator's execution profile record, produced by the
// execution engine after a query finishes (exec collects it from the plan's
// collectors; this package only defines the record so the dependency stays
// exec → resmgr). QueryID is stamped by the governor at release time with
// the query's profile id, making the record joinable to
// v_monitor.query_profiles.
// Retention: the engine attaches records to the grant via SetOpProfile; the
// governor keeps them in a bounded ring when the run was explicitly profiled
// (PROFILE <statement>) or when its wall time crossed the slow-query
// threshold, so v_monitor.execution_engine_profiles covers both deliberate
// investigation and after-the-fact "what was that slow query doing".
type OpProfile struct {
	// QueryID is the owning query's profile id (v_monitor.query_profiles).
	QueryID int64
	// Node is the cluster node the operator ran on.
	Node string
	// NodeID is the operator's plan-node id (pre-order position in the
	// EXPLAIN tree); -1 for operators outside the numbered plan.
	NodeID int
	// Depth is the operator's depth in the plan tree (root = 0).
	Depth int
	// Op is the operator's Describe() line.
	Op string
	// EstRows is the optimizer's cardinality estimate for this node.
	EstRows int64
	// Batches and Rows count the operator's output.
	Batches int64
	Rows    int64
	// WallUs is time spent inside Next, children included (timed mode only).
	WallUs int64
	// BlockedUs is exchange-port time spent waiting on upstream pumps
	// (timed mode only).
	BlockedUs int64
	// Spills / SpilledBytes count this operator's externalizations.
	Spills       int64
	SpilledBytes int64
	// AllocPeak is the operator's reported memory high-water in bytes.
	AllocPeak int64
}

// SetOpProfile attaches the executed plan's per-operator records to the
// grant before Release. timed marks an explicitly profiled run (PROFILE
// <statement>): those records always retain; untimed records retain only
// when the query runs past the governor's slow-query threshold. Must be
// called by the query's own goroutine before Release.
func (gr *Grant) SetOpProfile(recs []OpProfile, timed bool) {
	if gr == nil {
		return
	}
	gr.opRecs = recs
	gr.opProfiled = timed
}

// addOpProfilesLocked appends one query's operator records to the bounded
// ring, evicting the oldest records when full. Caller holds g.mu.
func (g *Governor) addOpProfilesLocked(recs []OpProfile) {
	if cap(g.opProfiles) == 0 {
		return
	}
	for _, r := range recs {
		if g.opLen < cap(g.opProfiles) {
			g.opProfiles = append(g.opProfiles, r)
			g.opLen++
			continue
		}
		g.opProfiles[g.opHead] = r
		g.opHead = (g.opHead + 1) % cap(g.opProfiles)
	}
}

// OpProfiles returns retained operator profiles, oldest first — the row
// source for v_monitor.execution_engine_profiles.
func (g *Governor) OpProfiles() []OpProfile {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]OpProfile, 0, g.opLen)
	for i := 0; i < g.opLen; i++ {
		out = append(out, g.opProfiles[(g.opHead+i)%cap(g.opProfiles)])
	}
	return out
}
