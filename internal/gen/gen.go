// Package gen generates the synthetic workloads used by the paper's
// evaluation (§8): the C-Store benchmark tables (a TPC-H-derived lineitem /
// orders pair) for Table 3, the million-random-integers file and the
// meter-metrics customer dataset for Table 4.
//
// The meter data follows the paper's §8.2.2 description exactly: "a few
// hundred metrics", "a couple of thousand meters", timestamps "every 5
// minutes, 10 minutes, hour, etc., depending on the metric", and float
// values where "some metrics have trends (like lots of 0 values when
// nothing happens), others change gradually with time, some are much more
// random".
package gen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/types"
)

// LineitemSchema returns the fact table schema of the C-Store benchmark.
func LineitemSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "l_orderkey", Typ: types.Int64},
		types.Column{Name: "l_suppkey", Typ: types.Int64},
		types.Column{Name: "l_shipdate", Typ: types.Timestamp},
		types.Column{Name: "l_extendedprice", Typ: types.Float64},
		types.Column{Name: "l_returnflag", Typ: types.Varchar},
	)
}

// OrdersSchema returns the dimension table schema of the C-Store benchmark.
func OrdersSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "o_orderkey", Typ: types.Int64},
		types.Column{Name: "o_orderdate", Typ: types.Timestamp},
		types.Column{Name: "o_custkey", Typ: types.Int64},
	)
}

// benchEpoch is the first shipdate of the generated data.
var benchEpoch = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

// Day returns the timestamp value for day d of the benchmark calendar.
func Day(d int) types.Value {
	return types.NewTimestamp(benchEpoch.AddDate(0, 0, d))
}

// LineitemOrders generates nLine lineitem rows and nLine/lineitemPerOrder
// orders rows, deterministically from seed. Lineitem rows are shipped over
// ~2 years (730 distinct shipdates), with ~2000 suppliers and prices around
// TPC-H magnitudes; orders are dated up to a week before shipment.
func LineitemOrders(nLine int, seed int64) (lineitem, orders []types.Row) {
	const lineitemPerOrder = 4
	rng := rand.New(rand.NewSource(seed))
	nOrders := nLine / lineitemPerOrder
	if nOrders == 0 {
		nOrders = 1
	}
	flags := []string{"N", "R", "A"}
	orderDay := make([]int, nOrders)
	orders = make([]types.Row, nOrders)
	for o := 0; o < nOrders; o++ {
		day := rng.Intn(730)
		orderDay[o] = day
		orders[o] = types.Row{
			types.NewInt(int64(o)),
			Day(day),
			types.NewInt(int64(rng.Intn(100000))),
		}
	}
	lineitem = make([]types.Row, nLine)
	for i := 0; i < nLine; i++ {
		o := i % nOrders
		ship := orderDay[o] + 1 + rng.Intn(7)
		lineitem[i] = types.Row{
			types.NewInt(int64(o)),
			types.NewInt(int64(rng.Intn(2000))),
			Day(ship),
			types.NewFloat(900 + rng.Float64()*90000),
			types.NewString(flags[rng.Intn(len(flags))]),
		}
	}
	return lineitem, orders
}

// MeterSchema returns the §8.2.2 customer schema: metric, meter,
// collection timestamp and 64-bit float value.
func MeterSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "metric", Typ: types.Varchar},
		types.Column{Name: "meter", Typ: types.Int64},
		types.Column{Name: "ts", Typ: types.Timestamp},
		types.Column{Name: "value", Typ: types.Float64},
	)
}

// meterBehavior classifies a metric's value process per the paper: trending,
// mostly-zero, or random.
type meterBehavior int

const (
	behaviorTrend meterBehavior = iota
	behaviorZeroes
	behaviorRandom
)

// MeterData generates n rows of meter metrics, sorted by (metric, meter,
// ts) — the sort order the paper's customer uses. There are nMetrics
// distinct metrics (default a few hundred) and nMeters meters (a couple of
// thousand); each (metric, meter) series samples at the metric's fixed
// period.
func MeterData(n, nMetrics, nMeters int, seed int64) []types.Row {
	if nMetrics <= 0 {
		nMetrics = 300
	}
	if nMeters <= 0 {
		nMeters = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	periods := []int64{5 * 60, 10 * 60, 3600} // seconds, per the paper
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC).UnixMicro()
	rows := make([]types.Row, 0, n)
	// Samples per (metric, meter) series so the product covers n.
	perSeries := n / (nMetrics * nMeters)
	if perSeries < 1 {
		perSeries = 1
	}
	for m := 0; m < nMetrics && len(rows) < n; m++ {
		name := fmt.Sprintf("metric_%03d", m)
		period := periods[m%len(periods)] * 1_000_000
		behavior := meterBehavior(m % 3)
		for meter := 0; meter < nMeters && len(rows) < n; meter++ {
			val := 50 + rng.Float64()*50
			ts := start + int64(meter%17)*period
			for s := 0; s < perSeries && len(rows) < n; s++ {
				switch behavior {
				case behaviorTrend:
					val += rng.Float64()*0.5 - 0.2 // gradual drift
				case behaviorZeroes:
					if rng.Float64() < 0.9 {
						val = 0
					} else {
						val = rng.Float64() * 100
					}
				default:
					val = rng.Float64() * 1e6
				}
				rows = append(rows, types.Row{
					types.NewString(name),
					types.NewInt(int64(meter)),
					types.NewTimestampMicros(ts),
					types.NewFloat(val),
				})
				ts += period
			}
		}
	}
	return rows
}

// MeterCSVBytes renders meter rows as the comma-separated baseline file of
// §8.2.2 ("a baseline file of 200 million comma separated values").
func MeterCSVBytes(rows []types.Row) []byte {
	var out []byte
	for _, r := range rows {
		out = append(out, r[0].S...)
		out = append(out, ',')
		out = append(out, fmt.Sprintf("%d", r[1].I)...)
		out = append(out, ',')
		out = append(out, r[2].Time().Format("2006-01-02 15:04:05")...)
		out = append(out, ',')
		out = append(out, fmt.Sprintf("%g", r[3].F)...)
		out = append(out, '\n')
	}
	return out
}

// RandomInts generates n random integers in [1, max] (§8.2.1: "a million
// random integers between 1 and 10 million").
func RandomInts(n int, max int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + rng.Int63n(max)
	}
	return out
}

// IntsTextBytes renders integers one per line, the paper's "text file
// containing a million random integers" (~7 digits + newline per row).
func IntsTextBytes(vals []int64) []byte {
	var out []byte
	for _, v := range vals {
		out = append(out, fmt.Sprintf("%d\n", v)...)
	}
	return out
}
