package gen

import (
	"bytes"
	"testing"

	"repro/internal/types"
)

func TestLineitemOrdersShape(t *testing.T) {
	li, ord := LineitemOrders(4000, 1)
	if len(li) != 4000 || len(ord) != 1000 {
		t.Fatalf("rows: li=%d ord=%d", len(li), len(ord))
	}
	// Referential integrity: every l_orderkey exists in orders.
	keys := map[int64]bool{}
	for _, o := range ord {
		keys[o[0].I] = true
	}
	for _, l := range li {
		if !keys[l[0].I] {
			t.Fatal("dangling l_orderkey")
		}
		if l[2].Typ != types.Timestamp {
			t.Fatal("shipdate type wrong")
		}
		if l[3].F < 900 || l[3].F > 91000 {
			t.Fatalf("price out of range: %v", l[3])
		}
	}
	// Determinism.
	li2, _ := LineitemOrders(4000, 1)
	if li[0].String() != li2[0].String() {
		t.Error("generator not deterministic")
	}
	li3, _ := LineitemOrders(4000, 2)
	if li[0].String() == li3[0].String() {
		t.Error("seed has no effect")
	}
}

func TestMeterDataShape(t *testing.T) {
	rows := MeterData(50_000, 10, 20, 1)
	if len(rows) != 50_000 {
		t.Fatalf("rows = %d", len(rows))
	}
	metrics := map[string]bool{}
	meters := map[int64]bool{}
	zeros := 0
	for i, r := range rows {
		metrics[r[0].S] = true
		meters[r[1].I] = true
		if r[3].F == 0 {
			zeros++
		}
		// Sorted by (metric, meter, ts) — the paper's sort order.
		if i > 0 && rows[i-1].Compare(r, []int{0, 1, 2}) > 0 {
			t.Fatalf("rows not sorted at %d", i)
		}
	}
	if len(metrics) == 0 || len(meters) == 0 {
		t.Fatal("no variety")
	}
	// "lots of 0 values when nothing happens" for a third of metrics.
	if zeros == 0 {
		t.Error("no zero values generated")
	}
	// Periodic timestamps: consecutive samples of a series differ by the
	// series period.
	var prev types.Row
	deltas := map[int64]int{}
	for _, r := range rows {
		if prev != nil && prev[0].S == r[0].S && prev[1].I == r[1].I {
			deltas[r[2].I-prev[2].I]++
		}
		prev = r
	}
	for d := range deltas {
		if d != 5*60*1_000_000 && d != 10*60*1_000_000 && d != 3600*1_000_000 {
			t.Errorf("non-periodic delta %d us", d)
		}
	}
}

func TestCSVAndTextRendering(t *testing.T) {
	rows := MeterData(100, 5, 5, 3)
	csv := MeterCSVBytes(rows)
	if lines := bytes.Count(csv, []byte("\n")); lines != 100 {
		t.Errorf("csv lines = %d", lines)
	}
	if !bytes.Contains(csv, []byte("metric_000,")) {
		t.Error("csv content wrong")
	}
	ints := RandomInts(1000, 10_000_000, 9)
	for _, v := range ints {
		if v < 1 || v > 10_000_000 {
			t.Fatalf("int out of range: %d", v)
		}
	}
	txt := IntsTextBytes(ints)
	if lines := bytes.Count(txt, []byte("\n")); lines != 1000 {
		t.Errorf("text lines = %d", lines)
	}
	// Paper: ~7 digits + newline per row -> ~8 bytes/row at full range.
	if perRow := float64(len(txt)) / 1000; perRow < 6 || perRow > 9 {
		t.Errorf("bytes/row = %.1f", perRow)
	}
}

func TestDayHelper(t *testing.T) {
	d0, d1 := Day(0), Day(1)
	if d1.I-d0.I != 24*3600*1_000_000 {
		t.Error("Day step is not one day")
	}
}
