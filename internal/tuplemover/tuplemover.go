// Package tuplemover implements the automatic storage-rearrangement service
// of paper §4: moveout (asynchronously draining the WOS into new ROS
// containers) and mergeout (merging small ROS containers into exponentially
// larger strata, eliding rows deleted before the Ancient History Mark).
//
// Design points carried over from the paper:
//
//   - WOS and ROS data are never intermixed in one operation, strongly
//     bounding how many times a tuple is (re)merged;
//   - output containers land in a stratum at least one larger than any
//     input, so a tuple is rewritten at most once per stratum;
//   - containers never exceed a configured maximum size, bounding the
//     number of strata and thus of merges;
//   - merges preserve partition and local-segment boundaries;
//   - operations are per-node and never centrally coordinated.
package tuplemover

import (
	"container/heap"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dc"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// Config wires a tuple mover to one projection's storage on one node.
type Config struct {
	Projection string
	Mgr        *storage.Manager
	Epochs     *txn.EpochManager

	// SortKey lists projection column indexes forming the sort order.
	SortKey []int
	// Encodings maps column name to its storage spec (Auto when absent).
	Encodings map[string]storage.ColumnSpec
	// PartitionOf computes the table's partition key for a row ("" when the
	// table is unpartitioned).
	PartitionOf func(types.Row) (string, error)
	// LocalSegmentOf assigns a row to an intra-node local segment.
	LocalSegmentOf func(types.Row) int

	// BlockRows overrides the encoded block size (tests).
	BlockRows int
	// StrataBase is the size (bytes) of the smallest mergeout stratum.
	StrataBase int64
	// MinMergeCount is the minimum number of same-stratum containers that
	// triggers a mergeout (default 2).
	MinMergeCount int
	// Collector receives moveout/mergeout events for the Data Collector's
	// v_monitor.dc_tuple_mover_events stream. Nil disables recording.
	Collector *dc.Collector
}

// TupleMover runs moveout and mergeout for one projection on one node.
// A mutex serializes cycles: the tuple mover's T lock is compatible with
// itself, so two concurrent RunTupleMover calls could otherwise merge the
// same inputs twice.
type TupleMover struct {
	mu  sync.Mutex
	cfg Config
}

// New validates the configuration and returns a tuple mover.
func New(cfg Config) (*TupleMover, error) {
	if cfg.Mgr == nil || cfg.Epochs == nil {
		return nil, fmt.Errorf("tuplemover: Mgr and Epochs are required")
	}
	if cfg.StrataBase <= 0 {
		cfg.StrataBase = 4 << 10
	}
	if cfg.MinMergeCount < 2 {
		cfg.MinMergeCount = 2
	}
	if cfg.PartitionOf == nil {
		cfg.PartitionOf = func(types.Row) (string, error) { return "", nil }
	}
	if cfg.LocalSegmentOf == nil {
		cfg.LocalSegmentOf = func(types.Row) int { return 0 }
	}
	return &TupleMover{cfg: cfg}, nil
}

// Moveout drains every WOS row committed at or before the current epoch into
// new ROS containers (one per partition x local segment), translates WOS
// delete vectors to container positions, persists them, and advances the
// projection's Last Good Epoch. It returns the number of rows moved.
//
// Moveout runs concurrently with inserts (T and I locks are compatible) and
// lock-free readers: it snapshots the WOS, writes containers outside any
// lock, then publishes containers + translated delete vectors and drains
// the snapshotted WOS prefix in one atomic Manager.CommitMoveout — a reader
// always sees each row in exactly one store.
func (tm *TupleMover) Moveout() (int, error) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.moveout()
}

func (tm *TupleMover) moveout() (int, error) {
	cfg := &tm.cfg
	start := time.Now()
	bound := cfg.Epochs.Current()
	rows := cfg.Mgr.WOS().Snapshot(bound)
	if len(rows) == 0 {
		cfg.Epochs.SetLGE(cfg.Projection, bound)
		return 0, nil
	}
	// Group rows by (partition, local segment).
	type groupKey struct {
		part string
		seg  int
	}
	groups := map[groupKey][]storage.WOSRow{}
	for _, r := range rows {
		part, err := cfg.PartitionOf(r.Row)
		if err != nil {
			return 0, fmt.Errorf("tuplemover: partition expression: %w", err)
		}
		k := groupKey{part, cfg.LocalSegmentOf(r.Row)}
		groups[k] = append(groups[k], r)
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].part != keys[j].part {
			return keys[i].part < keys[j].part
		}
		return keys[i].seg < keys[j].seg
	})

	// WOS delete vectors, indexed by position for translation.
	wosDVs := cfg.Mgr.DVs().Get(storage.WOSTarget)
	dvByPos := make(map[int64]types.Epoch, len(wosDVs))
	for _, e := range wosDVs {
		dvByPos[e.Pos] = e.Epoch
	}
	moved := 0
	translated := map[int64]bool{}
	commit := storage.MoveoutCommit{DVs: map[string][]storage.DVEntry{}, DrainThrough: -1}
	var writtenDirs []string
	cleanup := func() {
		for _, d := range writtenDirs {
			os.RemoveAll(d)
		}
	}
	for _, r := range rows {
		if r.Pos > commit.DrainThrough {
			commit.DrainThrough = r.Pos
		}
	}
	for _, k := range keys {
		g := groups[k]
		// Sort by the projection sort order (stable to keep epoch runs long).
		sort.SliceStable(g, func(i, j int) bool {
			return g[i].Row.Compare(g[j].Row, cfg.SortKey) < 0
		})
		minE, maxE := g[0].Epoch, g[0].Epoch
		for _, r := range g {
			if r.Epoch < minE {
				minE = r.Epoch
			}
			if r.Epoch > maxE {
				maxE = r.Epoch
			}
		}
		id, dir := cfg.Mgr.NewContainerID()
		meta := &storage.ContainerMeta{
			ID:           id,
			Projection:   cfg.Projection,
			Cols:         cfg.Mgr.StoredColumns(cfg.Encodings),
			Partition:    k.part,
			LocalSegment: k.seg,
			MinEpoch:     minE,
			MaxEpoch:     maxE,
		}
		w, err := storage.NewContainerWriter(dir, meta, storage.WriterOpts{BlockRows: cfg.BlockRows})
		if err != nil {
			cleanup()
			return 0, err
		}
		batch := vector.NewBatchForSchema(storedSchema(cfg.Mgr.Schema()), len(g))
		var dvEntries []storage.DVEntry
		for pos, r := range g {
			full := append(r.Row.Clone(), types.NewInt(int64(r.Epoch)))
			batch.AppendRow(full)
			if de, ok := dvByPos[r.Pos]; ok {
				dvEntries = append(dvEntries, storage.DVEntry{Pos: int64(pos), Epoch: de})
				translated[r.Pos] = true
			}
		}
		if err := w.Append(batch); err != nil {
			w.Abort()
			cleanup()
			return 0, err
		}
		if _, err := w.Close(); err != nil {
			cleanup()
			return 0, err
		}
		writtenDirs = append(writtenDirs, dir)
		commit.Metas = append(commit.Metas, meta)
		if len(dvEntries) > 0 {
			commit.DVs[id] = dvEntries
		}
		moved += len(g)
	}
	// Retain only WOS delete vectors that referenced undrained rows. The
	// X/T lock conflict guarantees no delete commits during a mover cycle,
	// so the set computed here is still exact at commit time.
	for _, e := range wosDVs {
		if !translated[e.Pos] {
			commit.WOSRemaining = append(commit.WOSRemaining, e)
		}
	}
	if err := cfg.Mgr.CommitMoveout(commit); err != nil {
		cleanup()
		return 0, err
	}
	for id := range commit.DVs {
		if err := cfg.Mgr.DVs().Persist(id); err != nil {
			return moved, err
		}
	}
	cfg.Epochs.SetLGE(cfg.Projection, bound)
	// Only cycles that actually wrote containers are recorded: an idle
	// mover polling an empty WOS would otherwise flood the ring.
	cfg.Collector.RecordMover(dc.MoverEvent{
		Op:         "moveout",
		Projection: cfg.Projection,
		Containers: len(commit.Metas),
		Rows:       int64(moved),
		Duration:   time.Since(start),
	})
	return moved, nil
}

// MoveoutDeleteVectors persists in-memory (DVWOS) delete vectors to DVROS
// files; the paper moves delete vectors through the same WOS->ROS lifecycle
// as data.
func (tm *TupleMover) MoveoutDeleteVectors() error {
	dvs := tm.cfg.Mgr.DVs()
	for _, target := range dvs.MemTargets() {
		if target == storage.WOSTarget {
			continue // translated by Moveout, not persisted as-is
		}
		if err := dvs.Persist(target); err != nil {
			return err
		}
	}
	return nil
}

func storedSchema(s *types.Schema) *types.Schema {
	cols := make([]types.Column, 0, s.Len()+1)
	cols = append(cols, s.Cols...)
	cols = append(cols, types.Column{Name: storage.EpochColumn, Typ: types.Int64})
	return types.NewSchema(cols...)
}

// Stratum returns the exponential stratum index of a container size:
// sizes in [0, base) are stratum 0, [base, 2*base) stratum 1, and so on.
func (tm *TupleMover) Stratum(size int64) int {
	s := 0
	for size >= tm.cfg.StrataBase {
		size /= 2
		s++
	}
	return s
}

// mergeGroup identifies containers eligible to merge together: same
// partition and local segment (boundaries are preserved, §4).
type mergeGroup struct {
	part string
	seg  int
}

// Mergeout performs one round of merging: within each (partition, local
// segment) group it finds the lowest stratum holding at least MinMergeCount
// containers and merges those containers into one, eliding rows deleted at
// or before the AHM. Returns the number of merge operations performed.
func (tm *TupleMover) Mergeout() (int, error) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.mergeout()
}

func (tm *TupleMover) mergeout() (int, error) {
	cfg := &tm.cfg
	ahm := cfg.Epochs.AHM()
	groups := map[mergeGroup][]*storage.ContainerReader{}
	for _, r := range cfg.Mgr.Containers() {
		k := mergeGroup{r.Meta.Partition, r.Meta.LocalSegment}
		groups[k] = append(groups[k], r)
	}
	gks := make([]mergeGroup, 0, len(groups))
	for k := range groups {
		gks = append(gks, k)
	}
	sort.Slice(gks, func(i, j int) bool {
		if gks[i].part != gks[j].part {
			return gks[i].part < gks[j].part
		}
		return gks[i].seg < gks[j].seg
	})
	merges := 0
	for _, k := range gks {
		inputs := tm.pickMergeInputs(groups[k])
		if len(inputs) < cfg.MinMergeCount {
			continue
		}
		if err := tm.mergeContainers(inputs, k.part, k.seg, ahm); err != nil {
			return merges, err
		}
		merges++
	}
	return merges, nil
}

// pickMergeInputs chooses the containers of the lowest stratum with at least
// MinMergeCount members, capping combined size at MaxROSBytes.
func (tm *TupleMover) pickMergeInputs(rs []*storage.ContainerReader) []*storage.ContainerReader {
	byStratum := map[int][]*storage.ContainerReader{}
	for _, r := range rs {
		s := tm.Stratum(r.Meta.SizeBytes)
		byStratum[s] = append(byStratum[s], r)
	}
	strata := make([]int, 0, len(byStratum))
	for s := range byStratum {
		strata = append(strata, s)
	}
	sort.Ints(strata)
	for _, s := range strata {
		cand := byStratum[s]
		if len(cand) < tm.cfg.MinMergeCount {
			continue
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i].Meta.SizeBytes < cand[j].Meta.SizeBytes })
		var out []*storage.ContainerReader
		var total int64
		for _, r := range cand {
			if total+r.Meta.SizeBytes > tm.cfg.Mgr.MaxROSBytes() && len(out) >= tm.cfg.MinMergeCount {
				break
			}
			out = append(out, r)
			total += r.Meta.SizeBytes
		}
		if len(out) >= tm.cfg.MinMergeCount {
			return out
		}
	}
	return nil
}

// containerCursor walks one container's rows in stored order for the k-way
// merge. Rows are surfaced with their deletion epoch (0 = not deleted).
type containerCursor struct {
	rows    []types.Row // including trailing epoch column
	deleted map[int64]types.Epoch
	pos     int
}

func (c *containerCursor) current() types.Row { return c.rows[c.pos] }

// mergeHeap orders cursors by their current row under the sort key.
type mergeHeap struct {
	cur     []*containerCursor
	sortKey []int
}

func (h *mergeHeap) Len() int { return len(h.cur) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.cur[i].current().Compare(h.cur[j].current(), h.sortKey) < 0
}
func (h *mergeHeap) Swap(i, j int)      { h.cur[i], h.cur[j] = h.cur[j], h.cur[i] }
func (h *mergeHeap) Push(x interface{}) { h.cur = append(h.cur, x.(*containerCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.cur
	n := len(old)
	x := old[n-1]
	h.cur = old[:n-1]
	return x
}

func (tm *TupleMover) mergeContainers(inputs []*storage.ContainerReader, part string, seg int, ahm types.Epoch) error {
	cfg := &tm.cfg
	start := time.Now()
	var inBytes int64
	for _, in := range inputs {
		inBytes += in.Meta.SizeBytes
	}
	nCols := len(inputs[0].Meta.Cols)
	colIdx := make([]int, nCols)
	for i := range colIdx {
		colIdx[i] = i
	}
	h := &mergeHeap{sortKey: cfg.SortKey}
	var minE, maxE types.Epoch
	maxLevel := 0
	for _, in := range inputs {
		batch, err := in.ReadAll(colIdx)
		if err != nil {
			return err
		}
		cur := &containerCursor{deleted: map[int64]types.Epoch{}}
		cur.rows = batch.Rows()
		for _, e := range cfg.Mgr.DVs().Get(in.Meta.ID) {
			cur.deleted[e.Pos] = e.Epoch
		}
		if len(cur.rows) > 0 {
			// Tag rows with their in-container position via index map: we
			// walk positions alongside rows using cur.pos, so nothing extra
			// is needed — position == row index.
			h.cur = append(h.cur, cur)
		}
		if minE == 0 || in.Meta.MinEpoch < minE {
			minE = in.Meta.MinEpoch
		}
		if in.Meta.MaxEpoch > maxE {
			maxE = in.Meta.MaxEpoch
		}
		if in.Meta.MergeLevel > maxLevel {
			maxLevel = in.Meta.MergeLevel
		}
	}
	heap.Init(h)

	id, dir := cfg.Mgr.NewContainerID()
	meta := &storage.ContainerMeta{
		ID:           id,
		Projection:   cfg.Projection,
		Cols:         inputs[0].Meta.Cols,
		Partition:    part,
		LocalSegment: seg,
		MinEpoch:     minE,
		MaxEpoch:     maxE,
		MergeLevel:   maxLevel + 1,
	}
	w, err := storage.NewContainerWriter(dir, meta, storage.WriterOpts{BlockRows: cfg.BlockRows})
	if err != nil {
		return err
	}
	outSchema := storedSchemaFromCols(inputs[0].Meta.Cols)
	batch := vector.NewBatchForSchema(outSchema, storage.DefaultBlockRows)
	var outDVs []storage.DVEntry
	outPos := int64(0)
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		if err := w.Append(batch); err != nil {
			return err
		}
		batch = vector.NewBatchForSchema(outSchema, storage.DefaultBlockRows)
		return nil
	}
	for h.Len() > 0 {
		cur := h.cur[0]
		row := cur.current()
		delEpoch, isDeleted := cur.deleted[int64(cur.pos)]
		cur.pos++
		if cur.pos >= len(cur.rows) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
		if isDeleted && delEpoch <= ahm {
			// "Whenever the tuple mover observes a row deleted prior to the
			// AHM, it elides the row from the output" (§5.1).
			continue
		}
		batch.AppendRow(row)
		if isDeleted {
			outDVs = append(outDVs, storage.DVEntry{Pos: outPos, Epoch: delEpoch})
		}
		outPos++
		if batch.Len() >= storage.DefaultBlockRows {
			if err := flush(); err != nil {
				w.Abort()
				return err
			}
		}
	}
	if err := flush(); err != nil {
		w.Abort()
		return err
	}
	if _, err := w.Close(); err != nil {
		return err
	}
	ids := make([]string, len(inputs))
	for i, in := range inputs {
		ids[i] = in.Meta.ID
	}
	// Publish the output (with its carried-over delete vectors) and retire
	// the inputs in one atomic swap, so a concurrent scan view sees the
	// merged rows exactly once.
	if err := cfg.Mgr.SwapContainers(meta, outDVs, ids); err != nil {
		os.RemoveAll(dir)
		return err
	}
	if len(outDVs) > 0 {
		if err := cfg.Mgr.DVs().Persist(id); err != nil {
			return err
		}
	}
	cfg.Collector.RecordMover(dc.MoverEvent{
		Op:         "mergeout",
		Projection: cfg.Projection,
		Containers: len(inputs),
		Bytes:      inBytes,
		Duration:   time.Since(start),
	})
	return nil
}

func storedSchemaFromCols(cols []storage.ColumnSpec) *types.Schema {
	out := make([]types.Column, len(cols))
	for i, c := range cols {
		out[i] = types.Column{Name: c.Name, Typ: c.Typ}
	}
	return types.NewSchema(out...)
}

// Run performs one tuple mover cycle: moveout, DV moveout, then repeated
// mergeout rounds until no more merges apply. It returns (rows moved out,
// merge operations performed).
func (tm *TupleMover) Run() (int, int, error) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	moved, err := tm.moveout()
	if err != nil {
		return moved, 0, err
	}
	if err := tm.MoveoutDeleteVectors(); err != nil {
		return moved, 0, err
	}
	totalMerges := 0
	for {
		n, err := tm.mergeout()
		if err != nil {
			return moved, totalMerges, err
		}
		if n == 0 {
			return moved, totalMerges, nil
		}
		totalMerges += n
	}
}
