package tuplemover

import (
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

type fixture struct {
	mgr *storage.Manager
	em  *txn.EpochManager
	tm  *TupleMover
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "k", Typ: types.Int64},
		types.Column{Name: "v", Typ: types.Varchar},
	)
	mgr, err := storage.NewManager(t.TempDir(), schema, storage.ManagerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	em := txn.NewEpochManager()
	tm, err := New(Config{
		Projection: "p_test",
		Mgr:        mgr,
		Epochs:     em,
		SortKey:    []int{0},
		BlockRows:  32,
		StrataBase: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mgr: mgr, em: em, tm: tm}
}

func (f *fixture) load(t *testing.T, n int, epoch types.Epoch) {
	t.Helper()
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(n - i)), types.NewString(fmt.Sprintf("v%d", i))}
	}
	if _, err := f.mgr.WOS().Append(rows, epoch); err != nil {
		t.Fatal(err)
	}
}

// readSorted reads all ROS rows (user columns only) merged across containers.
func (f *fixture) rosRows(t *testing.T) []types.Row {
	t.Helper()
	var out []types.Row
	for _, r := range f.mgr.Containers() {
		b, err := r.ReadAll([]int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b.Rows()...)
	}
	return out
}

func TestMoveoutDrainsWOSAndAdvancesLGE(t *testing.T) {
	f := newFixture(t)
	f.load(t, 100, f.em.CommitDML())
	moved, err := f.tm.Moveout()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 100 {
		t.Fatalf("moved %d rows", moved)
	}
	if f.mgr.WOS().Len() != 0 {
		t.Error("WOS not drained")
	}
	if len(f.mgr.Containers()) != 1 {
		t.Fatalf("containers = %d", len(f.mgr.Containers()))
	}
	if got := f.em.LGE("p_test"); got != f.em.Current() {
		t.Errorf("LGE = %d, want %d", got, f.em.Current())
	}
	// Rows must be sorted by the projection sort key.
	rows := f.rosRows(t)
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Compare(rows[i], []int{0}) > 0 {
			t.Fatalf("rows out of order at %d", i)
		}
	}
}

func TestMoveoutStampsEpochColumn(t *testing.T) {
	f := newFixture(t)
	e := f.em.CommitDML()
	f.load(t, 10, e)
	if _, err := f.tm.Moveout(); err != nil {
		t.Fatal(err)
	}
	c := f.mgr.Containers()[0]
	epochIdx := c.Meta.ColIndex(storage.EpochColumn)
	if epochIdx < 0 {
		t.Fatal("no epoch column stored")
	}
	b, err := c.ReadAll([]int{epochIdx})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if got := b.Cols[0].Ints[i]; got != int64(e) {
			t.Fatalf("epoch[%d] = %d, want %d", i, got, e)
		}
	}
	if c.Meta.MinEpoch != e || c.Meta.MaxEpoch != e {
		t.Error("container epoch range wrong")
	}
}

func TestMoveoutTranslatesWOSDeleteVectors(t *testing.T) {
	f := newFixture(t)
	e := f.em.CommitDML()
	// Rows get keys n-i: WOS pos 0 has key 5, pos 4 has key 1.
	f.load(t, 5, e)
	delEpoch := f.em.CommitDML()
	// Delete WOS positions 0 (key 5) and 4 (key 1).
	f.mgr.DVs().Add(storage.WOSTarget, []storage.DVEntry{
		{Pos: 0, Epoch: delEpoch}, {Pos: 4, Epoch: delEpoch},
	})
	if _, err := f.tm.Moveout(); err != nil {
		t.Fatal(err)
	}
	c := f.mgr.Containers()[0]
	dvs := f.mgr.DVs().Get(c.Meta.ID)
	if len(dvs) != 2 {
		t.Fatalf("translated DVs = %+v", dvs)
	}
	// After sort by key, key 1 is at container pos 0 and key 5 at pos 4.
	if dvs[0].Pos != 0 || dvs[1].Pos != 4 {
		t.Errorf("translated positions = %d, %d", dvs[0].Pos, dvs[1].Pos)
	}
	if len(f.mgr.DVs().Get(storage.WOSTarget)) != 0 {
		t.Error("WOS delete vectors not cleared after translation")
	}
}

func TestMoveoutPreservesPartitionBoundaries(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "k", Typ: types.Int64},
		types.Column{Name: "month", Typ: types.Int64},
	)
	mgr, _ := storage.NewManager(t.TempDir(), schema, storage.ManagerOpts{})
	em := txn.NewEpochManager()
	tm, _ := New(Config{
		Projection: "p", Mgr: mgr, Epochs: em, SortKey: []int{0},
		PartitionOf: func(r types.Row) (string, error) {
			return fmt.Sprintf("m%d", r[1].I), nil
		},
	})
	e := em.CommitDML()
	var rows []types.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 3))})
	}
	mgr.WOS().Append(rows, e)
	if _, err := tm.Moveout(); err != nil {
		t.Fatal(err)
	}
	if len(mgr.Containers()) != 3 {
		t.Fatalf("containers = %d, want 3 (one per partition)", len(mgr.Containers()))
	}
	for _, c := range mgr.Containers() {
		if c.Meta.Partition == "" {
			t.Error("partition key missing")
		}
		if c.Meta.RowCount != 10 {
			t.Errorf("partition %s has %d rows", c.Meta.Partition, c.Meta.RowCount)
		}
	}
}

func TestMergeoutReducesContainerCount(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 4; i++ {
		f.load(t, 50, f.em.CommitDML())
		if _, err := f.tm.Moveout(); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.mgr.Containers()) != 4 {
		t.Fatalf("pre-merge containers = %d", len(f.mgr.Containers()))
	}
	merges, err := f.tm.Mergeout()
	if err != nil {
		t.Fatal(err)
	}
	if merges != 1 {
		t.Fatalf("merges = %d", merges)
	}
	if len(f.mgr.Containers()) != 1 {
		t.Fatalf("post-merge containers = %d", len(f.mgr.Containers()))
	}
	c := f.mgr.Containers()[0]
	if c.Meta.RowCount != 200 {
		t.Errorf("merged rows = %d", c.Meta.RowCount)
	}
	if c.Meta.MergeLevel != 1 {
		t.Errorf("merge level = %d", c.Meta.MergeLevel)
	}
	// Output is globally sorted.
	rows := f.rosRows(t)
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Compare(rows[i], []int{0}) > 0 {
			t.Fatalf("merged rows out of order at %d", i)
		}
	}
}

func TestMergeoutElidesRowsDeletedBeforeAHM(t *testing.T) {
	f := newFixture(t)
	f.load(t, 20, f.em.CommitDML())
	f.tm.Moveout()
	f.load(t, 20, f.em.CommitDML())
	f.tm.Moveout()
	// Delete positions 0..4 of the first container at the current epoch.
	first := f.mgr.Containers()[0].Meta.ID
	delEpoch := f.em.CommitDML()
	var dvs []storage.DVEntry
	for p := int64(0); p < 5; p++ {
		dvs = append(dvs, storage.DVEntry{Pos: p, Epoch: delEpoch})
	}
	f.mgr.DVs().Add(first, dvs)
	// Advance AHM past the delete epoch.
	f.em.SetLGE("p_test", f.em.Current())
	f.em.AdvanceAHM()
	if _, err := f.tm.Mergeout(); err != nil {
		t.Fatal(err)
	}
	if len(f.mgr.Containers()) != 1 {
		t.Fatalf("containers = %d", len(f.mgr.Containers()))
	}
	c := f.mgr.Containers()[0]
	if c.Meta.RowCount != 35 {
		t.Errorf("rows after elision = %d, want 35", c.Meta.RowCount)
	}
	if got := f.mgr.DVs().Get(c.Meta.ID); len(got) != 0 {
		t.Errorf("elided rows left DV entries: %+v", got)
	}
}

func TestMergeoutKeepsRecentDeletesAsTranslatedDVs(t *testing.T) {
	f := newFixture(t)
	f.load(t, 10, f.em.CommitDML())
	f.tm.Moveout()
	f.load(t, 10, f.em.CommitDML())
	f.tm.Moveout()
	first := f.mgr.Containers()[0].Meta.ID
	delEpoch := f.em.CommitDML()
	f.mgr.DVs().Add(first, []storage.DVEntry{{Pos: 0, Epoch: delEpoch}})
	// AHM stays at 0: the delete is recent history and must survive.
	if _, err := f.tm.Mergeout(); err != nil {
		t.Fatal(err)
	}
	c := f.mgr.Containers()[0]
	if c.Meta.RowCount != 20 {
		t.Errorf("recent-delete row was elided: rows = %d", c.Meta.RowCount)
	}
	got := f.mgr.DVs().Get(c.Meta.ID)
	if len(got) != 1 || got[0].Epoch != delEpoch {
		t.Fatalf("translated DV = %+v", got)
	}
}

func TestMergeoutPreservesPartitionAndSegmentBoundaries(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "k", Typ: types.Int64})
	mgr, _ := storage.NewManager(t.TempDir(), schema, storage.ManagerOpts{})
	em := txn.NewEpochManager()
	tm, _ := New(Config{
		Projection: "p", Mgr: mgr, Epochs: em, SortKey: []int{0},
		PartitionOf:    func(r types.Row) (string, error) { return fmt.Sprintf("m%d", r[0].I%2), nil },
		LocalSegmentOf: func(r types.Row) int { return int(r[0].I % 3) },
	})
	for i := 0; i < 3; i++ {
		var rows []types.Row
		for j := 0; j < 60; j++ {
			rows = append(rows, types.Row{types.NewInt(int64(j))})
		}
		mgr.WOS().Append(rows, em.CommitDML())
		if _, err := tm.Moveout(); err != nil {
			t.Fatal(err)
		}
	}
	// 2 partitions x 3 segments... but partition m0 only pairs with segs
	// {0,2,1} etc.; just record the pre-merge group set.
	type gk struct {
		p string
		s int
	}
	pre := map[gk]bool{}
	for _, c := range mgr.Containers() {
		pre[gk{c.Meta.Partition, c.Meta.LocalSegment}] = true
	}
	for {
		n, err := tm.Mergeout()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	post := map[gk]bool{}
	for _, c := range mgr.Containers() {
		post[gk{c.Meta.Partition, c.Meta.LocalSegment}] = true
	}
	if len(post) != len(pre) {
		t.Errorf("merge crossed boundaries: pre %d groups, post %d", len(pre), len(post))
	}
	for k := range post {
		if !pre[k] {
			t.Errorf("unexpected group %+v after merge", k)
		}
	}
}

func TestStrataBoundsRewrites(t *testing.T) {
	// Property from §4: by choosing strata sizes exponentially, the number
	// of times any tuple is rewritten is bounded by the number of strata.
	f := newFixture(t)
	const loads = 16
	for i := 0; i < loads; i++ {
		f.load(t, 40, f.em.CommitDML())
		if _, err := f.tm.Moveout(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.tm.Mergeout(); err != nil {
			t.Fatal(err)
		}
	}
	maxLevel := 0
	totalBytes := int64(0)
	for _, c := range f.mgr.Containers() {
		if c.Meta.MergeLevel > maxLevel {
			maxLevel = c.Meta.MergeLevel
		}
		totalBytes += c.Meta.SizeBytes
	}
	// Upper bound: number of strata spanned by total data volume.
	strataBound := f.tm.Stratum(totalBytes) + 1
	if maxLevel > strataBound {
		t.Errorf("tuple rewritten %d times, strata bound %d", maxLevel, strataBound)
	}
}

func TestStratum(t *testing.T) {
	tm, _ := New(Config{
		Mgr:        mustMgr(t),
		Epochs:     txn.NewEpochManager(),
		StrataBase: 1024,
	})
	cases := map[int64]int{0: 0, 1023: 0, 1024: 1, 2047: 1, 2048: 2, 4096: 3}
	for size, want := range cases {
		if got := tm.Stratum(size); got != want {
			t.Errorf("Stratum(%d) = %d, want %d", size, got, want)
		}
	}
}

func mustMgr(t *testing.T) *storage.Manager {
	t.Helper()
	m, err := storage.NewManager(t.TempDir(), types.NewSchema(types.Column{Name: "k", Typ: types.Int64}), storage.ManagerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunFullCycle(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 3; i++ {
		f.load(t, 30, f.em.CommitDML())
	}
	moved, merges, err := f.tm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 90 {
		t.Errorf("moved = %d", moved)
	}
	if merges != 0 {
		// A single moveout produces one container; no merge needed.
		t.Errorf("merges = %d, want 0", merges)
	}
	if f.mgr.RowCount() != 90 {
		t.Errorf("ROS rows = %d", f.mgr.RowCount())
	}
}

func TestMoveoutEmptyWOSStillAdvancesLGE(t *testing.T) {
	f := newFixture(t)
	f.em.CommitDML()
	moved, err := f.tm.Moveout()
	if err != nil || moved != 0 {
		t.Fatalf("moveout: %d, %v", moved, err)
	}
	if f.em.LGE("p_test") != f.em.Current() {
		t.Error("LGE not advanced on empty moveout")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without Mgr/Epochs should fail")
	}
}
