package cluster

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/txn"
	"repro/internal/types"
)

func testCluster(t *testing.T, nodes, k int) (*Cluster, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New("")
	if err := cat.CreateTable(&catalog.Table{
		Name: "t",
		Schema: types.NewSchema(
			types.Column{Name: "id", Typ: types.Int64},
			types.Column{Name: "v", Typ: types.Float64},
		),
	}); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Nodes: nodes, Dir: t.TempDir(), K: k}, cat, txn.NewManager())
	if err != nil {
		t.Fatal(err)
	}
	return c, cat
}

func segProjection(t *testing.T, cat *catalog.Catalog, name string, offset int) *catalog.Projection {
	t.Helper()
	p := &catalog.Projection{
		Name: name, Anchor: "t",
		Columns:   []string{"id", "v"},
		SortOrder: []string{"id"},
		Seg:       catalog.Segmentation{ExprText: "HASH(id)", Offset: offset},
		IsBuddy:   offset > 0,
	}
	if err := cat.CreateProjection(p); err != nil {
		t.Fatal(err)
	}
	seg, err := expr.NewFunc("HASH", expr.NewColRef(0, types.Int64, "id"))
	if err != nil {
		t.Fatal(err)
	}
	p.Seg.Expr = seg
	return p
}

func TestRouteRowSegmented(t *testing.T) {
	c, cat := testCluster(t, 4, 0)
	p := segProjection(t, cat, "p", 0)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewFloat(0)}
		ids, err := c.RouteRow(p, row)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 {
			t.Fatalf("segmented row routed to %d nodes", len(ids))
		}
		counts[ids[0]]++
	}
	for n, cnt := range counts {
		if cnt < 500 || cnt > 1500 {
			t.Errorf("node %d got %d rows: ring badly skewed", n, cnt)
		}
	}
}

func TestRouteRowBuddyOffset(t *testing.T) {
	c, cat := testCluster(t, 3, 1)
	p := segProjection(t, cat, "p", 0)
	b := segProjection(t, cat, "p_b1", 1)
	p.Buddy = "p_b1"
	for i := 0; i < 300; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewFloat(0)}
		pid, _ := c.RouteRow(p, row)
		bid, _ := c.RouteRow(b, row)
		if pid[0] == bid[0] {
			t.Fatalf("row %d stored on the same node by both projections (K-safety violated)", i)
		}
		if bid[0] != (pid[0]+1)%3 {
			t.Fatalf("buddy offset wrong: primary %d buddy %d", pid[0], bid[0])
		}
	}
}

func TestRouteRowReplicated(t *testing.T) {
	c, cat := testCluster(t, 3, 0)
	p := &catalog.Projection{
		Name: "r", Anchor: "t", Columns: []string{"id", "v"},
		Seg: catalog.Segmentation{Replicated: true},
	}
	cat.CreateProjection(p)
	ids, err := c.RouteRow(p, types.Row{types.NewInt(1), types.NewFloat(0)})
	if err != nil || len(ids) != 3 {
		t.Errorf("replicated row routed to %v (%v)", ids, err)
	}
}

func TestQuorum(t *testing.T) {
	c, _ := testCluster(t, 5, 1)
	if c.QuorumSize() != 3 {
		t.Errorf("quorum of 5 = %d", c.QuorumSize())
	}
	if !c.HasQuorum() {
		t.Error("full cluster should have quorum")
	}
	c.nodes[0].setUp(false)
	c.nodes[1].setUp(false)
	if !c.HasQuorum() {
		t.Error("3 of 5 should still be quorum")
	}
	c.nodes[2].setUp(false)
	if c.HasQuorum() {
		t.Error("2 of 5 is not quorum")
	}
}

func TestFailNodeEjectsAndHoldsAHM(t *testing.T) {
	c, cat := testCluster(t, 3, 1)
	p := segProjection(t, cat, "p", 0)
	segProjection(t, cat, "p_b1", 1)
	p.Buddy = "p_b1"
	if err := c.FailNode(1); err != nil {
		t.Fatalf("single failure with buddies should not shut down: %v", err)
	}
	if c.Node(1).Up() {
		t.Error("node still up")
	}
	// AHM is held.
	c.Txn.Epochs.CommitDML()
	c.Txn.Epochs.CommitDML()
	if got := c.Txn.Epochs.AdvanceAHM(); got != 0 {
		t.Errorf("AHM advanced to %d while node down", got)
	}
	if err := c.FailNode(1); err == nil {
		t.Error("failing a down node should error")
	}
}

func TestDataUnavailableWithoutBuddies(t *testing.T) {
	c, cat := testCluster(t, 3, 0)
	segProjection(t, cat, "p", 0) // no buddy
	err := c.FailNode(0)
	if err == nil {
		t.Fatal("losing a segment with no buddy must shut the database down")
	}
	if !c.IsShutdown() {
		t.Error("cluster should be shut down")
	}
}

func TestLocalSegmentOf(t *testing.T) {
	c, cat := testCluster(t, 2, 0)
	p := segProjection(t, cat, "p", 0)
	segOf := c.LocalSegmentOf(p)
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		s := segOf(types.Row{types.NewInt(int64(i)), types.NewFloat(0)})
		if s < 0 || s >= 3 {
			t.Fatalf("local segment %d out of range", s)
		}
		counts[s]++
	}
	if len(counts) != 3 {
		t.Errorf("local segments used = %v, want 3 (Figure 2)", counts)
	}
}

func TestStageInsertRejectsNullInNotNull(t *testing.T) {
	cat := catalog.New("")
	cat.CreateTable(&catalog.Table{
		Name: "nn",
		Schema: types.NewSchema(
			types.Column{Name: "id", Typ: types.Int64, Nullable: false},
		),
	})
	c, err := New(Config{Nodes: 1, Dir: t.TempDir()}, cat, txn.NewManager())
	if err != nil {
		t.Fatal(err)
	}
	cat.CreateProjection(&catalog.Projection{Name: "nn_s", Anchor: "nn", Columns: []string{"id"}})
	tx := c.Txn.Begin(txn.ReadCommitted)
	err = c.StageInsert(tx, "nn", []types.Row{{types.NewNull(types.Int64)}}, false)
	if err == nil {
		t.Error("NULL into NOT NULL column should fail")
	}
}
