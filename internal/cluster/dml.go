package cluster

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// DML: row routing and staged application at commit epoch. "Any ROS or WOS
// created by the committing transaction becomes visible to other
// transactions when the commit completes" (paper §5) — so all effects are
// staged on the transaction and applied under the commit epoch.

// StageInsert routes rows to every projection of the table (including
// buddies) and stages per-node WOS appends. When direct is true (or a WOS is
// saturated) the rows bypass the WOS and are written straight to new ROS
// containers at commit — the paper's "Direct Loading to the ROS" (§7).
func (c *Cluster) StageInsert(tx *txn.Txn, table string, rows []types.Row, direct bool) error {
	if c.IsShutdown() {
		return fmt.Errorf("cluster: database is shut down")
	}
	if !c.HasQuorum() {
		return fmt.Errorf("cluster: no quorum, cannot accept DML")
	}
	t, err := c.cat.Table(table)
	if err != nil {
		return err
	}
	projs := c.cat.ProjectionsFor(table)
	if len(projs) == 0 {
		return fmt.Errorf("cluster: table %q has no projections; create a super projection first", table)
	}
	// Validate NOT NULL and arity once against the table schema.
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("cluster: row arity %d != table %s arity %d", len(r), table, t.Schema.Len())
		}
		for i, v := range r {
			col := t.Schema.Col(i)
			if v.Null && !col.Nullable {
				return fmt.Errorf("cluster: NULL in NOT NULL column %q", col.Name)
			}
		}
	}
	type target struct {
		proj *catalog.Projection
		node *Node
	}
	staged := map[target][]types.Row{}
	for _, p := range projs {
		if err := c.EnsureStorage(p); err != nil {
			return err
		}
		for _, r := range rows {
			pr, err := projectTableRow(t, p, r, c.cat)
			if err != nil {
				return err
			}
			nodeIDs, err := c.RouteRow(p, pr)
			if err != nil {
				return err
			}
			for _, id := range nodeIDs {
				tg := target{proj: p, node: c.nodes[id]}
				staged[tg] = append(staged[tg], pr)
			}
		}
	}
	tx.StageCommit(true, func(epoch types.Epoch) error {
		for tg, trows := range staged {
			if !tg.node.Up() {
				continue // down nodes miss the DML; recovery replays it
			}
			mgr, err := tg.node.Mgr(tg.proj, c.ManagerOpts())
			if err != nil {
				return err
			}
			if direct || mgr.WOS().Saturated() {
				if err := c.directLoad(tg.node, tg.proj, mgr, trows, epoch, tx); err != nil {
					return err
				}
				c.Txn.Epochs.SetLGE(tg.proj.Name, epoch)
				continue
			}
			if _, err := mgr.WOS().Append(trows, epoch); err != nil {
				return err
			}
		}
		return nil
	})
	return nil
}

// projectTableRow maps a table row onto a projection's columns (resolving
// prejoin dimension columns is the caller's concern; plain projections only).
func projectTableRow(t *catalog.Table, p *catalog.Projection, r types.Row, cat *catalog.Catalog) (types.Row, error) {
	out := make(types.Row, p.Schema.Len())
	for i, name := range p.Columns {
		if _, _, isDim := splitDim(name); isDim {
			return nil, fmt.Errorf("cluster: prejoin projection %q must be loaded via refresh", p.Name)
		}
		ci := t.Schema.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("cluster: projection %q column %q missing from table", p.Name, name)
		}
		out[i] = r[ci]
	}
	return out, nil
}

func splitDim(name string) (string, string, bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i], name[i+1:], true
		}
	}
	return "", "", false
}

// directLoad sorts rows and writes them straight to ROS containers grouped
// by (partition, local segment), bypassing the WOS.
func (c *Cluster) directLoad(n *Node, p *catalog.Projection, mgr *storage.Manager, rows []types.Row, epoch types.Epoch, tx *txn.Txn) error {
	t, err := c.cat.Table(p.Anchor)
	if err != nil {
		return err
	}
	partOf := func(r types.Row) (string, error) { return partitionKey(t, p, r) }
	segOf := c.LocalSegmentOf(p)
	type gk struct {
		part string
		seg  int
	}
	groups := map[gk][]types.Row{}
	for _, r := range rows {
		part, err := partOf(r)
		if err != nil {
			return err
		}
		k := gk{part, segOf(r)}
		groups[k] = append(groups[k], r)
	}
	sortKey := p.SortKey()
	encs := encodingSpecs(p)
	for k, g := range groups {
		sortRows(g, sortKey)
		id, dir := mgr.NewContainerID()
		meta := &storage.ContainerMeta{
			ID: id, Projection: p.Name, Cols: mgr.StoredColumns(encs),
			Partition: k.part, LocalSegment: k.seg,
			MinEpoch: epoch, MaxEpoch: epoch,
		}
		w, err := storage.NewContainerWriter(dir, meta, storage.WriterOpts{})
		if err != nil {
			return err
		}
		batch := newStoredBatch(p, len(g))
		for _, r := range g {
			batch.AppendRow(append(r.Clone(), types.NewInt(int64(epoch))))
		}
		if err := w.Append(batch); err != nil {
			w.Abort()
			return err
		}
		if _, err := w.Close(); err != nil {
			return err
		}
		if err := mgr.Publish(meta); err != nil {
			return err
		}
		cid := id
		m := mgr
		tx.StageRollback(func() { m.Remove(cid) })
	}
	return nil
}

// partitionKey evaluates the table's PARTITION BY expression over a
// projection row (the expression references table columns; the projection
// must store them — super projections always do).
func partitionKey(t *catalog.Table, p *catalog.Projection, r types.Row) (string, error) {
	if t.PartitionExpr == nil {
		return "", nil
	}
	// Remap from table columns to projection columns by name.
	m := map[int]int{}
	for i := 0; i < t.Schema.Len(); i++ {
		if pi := p.Schema.ColIndex(t.Schema.Col(i).Name); pi >= 0 {
			m[i] = pi
		}
	}
	re, err := expr.Remap(t.PartitionExpr, m)
	if err != nil {
		return "", fmt.Errorf("cluster: projection %q cannot evaluate partition expression: %w", p.Name, err)
	}
	v, err := re.EvalRow(r)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

func encodingSpecs(p *catalog.Projection) map[string]storage.ColumnSpec {
	out := map[string]storage.ColumnSpec{}
	for name, k := range p.Encodings {
		i := p.Schema.ColIndex(name)
		if i < 0 {
			continue
		}
		out[name] = storage.ColumnSpec{Name: name, Typ: p.Schema.Col(i).Typ, Enc: k}
	}
	return out
}

func newStoredBatch(p *catalog.Projection, capacity int) *vector.Batch {
	cols := append([]types.Column{}, p.Schema.Cols...)
	cols = append(cols, types.Column{Name: storage.EpochColumn, Typ: types.Int64})
	return vector.NewBatchForSchema(types.NewSchema(cols...), capacity)
}

func sortRows(rows []types.Row, key []int) {
	if len(key) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].Compare(rows[j], key) < 0
	})
}

// StageDelete finds rows matching pred in every projection of the table on
// every up node and stages delete vectors (paper §3.7.1: deletes never
// modify data in place). Returns the number of logical table rows deleted
// (counted on super projections only, to avoid double counting).
func (c *Cluster) StageDelete(tx *txn.Txn, table string, pred expr.Expr, snapshot types.Epoch) (int64, error) {
	if !c.HasQuorum() {
		return 0, fmt.Errorf("cluster: no quorum, cannot accept DML")
	}
	t, err := c.cat.Table(table)
	if err != nil {
		return 0, err
	}
	var deleted int64
	countProj := ""
	for _, p := range c.cat.ProjectionsFor(table) {
		if err := c.EnsureStorage(p); err != nil {
			return 0, err
		}
		// Remap the table-schema predicate onto the projection schema.
		var ppred expr.Expr
		if pred != nil {
			m := map[int]int{}
			for i := 0; i < t.Schema.Len(); i++ {
				if pi := p.Schema.ColIndex(t.Schema.Col(i).Name); pi >= 0 {
					m[i] = pi
				}
			}
			ppred, err = expr.Remap(pred, m)
			if err != nil {
				// Projection lacks predicate columns: it must still delete
				// matching rows; unsupported in this reproduction.
				return 0, fmt.Errorf("cluster: projection %q does not cover DELETE predicate columns: %w", p.Name, err)
			}
		}
		if countProj == "" && p.IsSuper && !p.IsBuddy {
			countProj = p.Name
		}
		for _, n := range c.UpNodes() {
			mgr, err := n.Mgr(p, c.ManagerOpts())
			if err != nil {
				return 0, err
			}
			targets, err := findMatches(mgr, ppred, snapshot)
			if err != nil {
				return 0, err
			}
			if p.Name == countProj {
				for _, entries := range targets {
					deleted += int64(len(entries))
				}
			}
			m := mgr
			tg := targets
			tx.StageCommit(true, func(epoch types.Epoch) error {
				for target, positions := range tg {
					entries := make([]storage.DVEntry, len(positions))
					for i, pos := range positions {
						entries[i] = storage.DVEntry{Pos: pos, Epoch: epoch}
					}
					m.DVs().Add(target, entries)
				}
				return nil
			})
		}
	}
	return deleted, nil
}

// findMatches scans a projection's local storage and returns matching row
// positions per delete-vector target (container ID or the WOS).
func findMatches(mgr *storage.Manager, pred expr.Expr, snapshot types.Epoch) (map[string][]int64, error) {
	out := map[string][]int64{}
	deletedOf := func(target string) map[int64]bool {
		s := map[int64]bool{}
		for _, p := range mgr.DVs().DeletedAt(target, snapshot) {
			s[p] = true
		}
		return s
	}
	for _, r := range mgr.Containers() {
		if r.Meta.MinEpoch > snapshot {
			continue
		}
		cols := make([]int, len(r.Meta.Cols))
		for i := range cols {
			cols[i] = i
		}
		batch, err := r.ReadAll(cols)
		if err != nil {
			return nil, err
		}
		epochIdx := r.Meta.ColIndex(storage.EpochColumn)
		dels := deletedOf(r.Meta.ID)
		rows := batch.Rows()
		for pos, row := range rows {
			if dels[int64(pos)] {
				continue
			}
			if epochIdx >= 0 && types.Epoch(row[epochIdx].I) > snapshot {
				continue
			}
			match := true
			if pred != nil {
				v, err := pred.EvalRow(row[:len(row)-1])
				if err != nil {
					return nil, err
				}
				match = v.Bool()
			}
			if match {
				out[r.Meta.ID] = append(out[r.Meta.ID], int64(pos))
			}
		}
	}
	dels := deletedOf(storage.WOSTarget)
	for _, wr := range mgr.WOS().Snapshot(snapshot) {
		if dels[wr.Pos] {
			continue
		}
		match := true
		if pred != nil {
			v, err := pred.EvalRow(wr.Row)
			if err != nil {
				return nil, err
			}
			match = v.Bool()
		}
		if match {
			out[storage.WOSTarget] = append(out[storage.WOSTarget], wr.Pos)
		}
	}
	return out, nil
}

// StageUpdate implements UPDATE as DELETE + INSERT (paper §3.7.1): matching
// rows are read at the snapshot, deleted, and re-inserted with the SET
// expressions applied.
func (c *Cluster) StageUpdate(tx *txn.Txn, table string, set map[int]expr.Expr, pred expr.Expr, snapshot types.Epoch) (int64, error) {
	t, err := c.cat.Table(table)
	if err != nil {
		return 0, err
	}
	// Gather current matching rows from a super projection across up nodes.
	super, err := c.cat.SuperProjection(table)
	if err != nil {
		return 0, err
	}
	var newRows []types.Row
	seen := map[int]bool{}
	for _, n := range c.UpNodes() {
		mgr, err := n.Mgr(super, c.ManagerOpts())
		if err != nil {
			return 0, err
		}
		rows, err := collectRows(mgr, pred, snapshot, t, super)
		if err != nil {
			return 0, err
		}
		for _, r := range rows {
			updated := r.Clone()
			for ci, e := range set {
				v, err := e.EvalRow(r)
				if err != nil {
					return 0, err
				}
				if v.Typ != t.Schema.Col(ci).Typ && !(v.Null) {
					v = coerceTo(v, t.Schema.Col(ci).Typ)
				}
				updated[ci] = v
			}
			newRows = append(newRows, updated)
		}
		seen[n.ID] = true
	}
	if _, err := c.StageDelete(tx, table, pred, snapshot); err != nil {
		return 0, err
	}
	if len(newRows) > 0 {
		if err := c.StageInsert(tx, table, newRows, false); err != nil {
			return 0, err
		}
	}
	return int64(len(newRows)), nil
}

func coerceTo(v types.Value, t types.Type) types.Value {
	switch {
	case t == types.Float64 && v.Typ.IsIntegral():
		return types.NewFloat(float64(v.I))
	case t.IsIntegral() && v.Typ == types.Float64:
		return types.Value{Typ: t, I: int64(v.F)}
	default:
		v.Typ = t
		return v
	}
}

// collectRows returns visible table rows matching pred from one node's
// super-projection storage, in table column order.
func collectRows(mgr *storage.Manager, pred expr.Expr, snapshot types.Epoch, t *catalog.Table, p *catalog.Projection) ([]types.Row, error) {
	var ppred expr.Expr
	var err error
	if pred != nil {
		m := map[int]int{}
		for i := 0; i < t.Schema.Len(); i++ {
			if pi := p.Schema.ColIndex(t.Schema.Col(i).Name); pi >= 0 {
				m[i] = pi
			}
		}
		if ppred, err = expr.Remap(pred, m); err != nil {
			return nil, err
		}
	}
	matches, err := findMatches(mgr, ppred, snapshot)
	if err != nil {
		return nil, err
	}
	var out []types.Row
	// Re-read matched rows in table order.
	for target, positions := range matches {
		if target == storage.WOSTarget {
			posSet := map[int64]bool{}
			for _, pos := range positions {
				posSet[pos] = true
			}
			for _, wr := range mgr.WOS().Snapshot(snapshot) {
				if posSet[wr.Pos] {
					out = append(out, projToTableRow(t, p, wr.Row))
				}
			}
			continue
		}
		r, ok := mgr.Container(target)
		if !ok {
			continue
		}
		cols := make([]int, len(r.Meta.Cols))
		for i := range cols {
			cols[i] = i
		}
		batch, err := r.ReadAll(cols)
		if err != nil {
			return nil, err
		}
		rows := batch.Rows()
		for _, pos := range positions {
			row := rows[pos]
			out = append(out, projToTableRow(t, p, row[:len(row)-1]))
		}
	}
	return out, nil
}

func projToTableRow(t *catalog.Table, p *catalog.Projection, pr types.Row) types.Row {
	out := make(types.Row, t.Schema.Len())
	for i := 0; i < t.Schema.Len(); i++ {
		pi := p.Schema.ColIndex(t.Schema.Col(i).Name)
		out[i] = pr[pi]
	}
	return out
}
