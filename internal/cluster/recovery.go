package cluster

import (
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// Recovery, refresh, rebalance and backup (paper §5.2). Vertica keeps no
// transaction log: "the data+epoch itself serves as a log of past system
// activity", so a recovering node replays missed DML by copying epoch ranges
// from buddy projections in two phases — a lock-free historical phase and a
// brief current phase under a Shared lock.

// lastEpochOf returns the newest epoch present in a node's local storage for
// a projection — the node's per-projection Last Good Epoch after a failure
// (WOS content is lost with the node, so only ROS epochs count).
func lastEpochOf(mgr *storage.Manager) types.Epoch {
	var last types.Epoch
	for _, r := range mgr.Containers() {
		if r.Meta.MaxEpoch > last {
			last = r.Meta.MaxEpoch
		}
	}
	return last
}

// ClearWOS simulates the memory loss of a node failure: buffered WOS rows
// that were never moved out are gone (this is why the LGE exists, §5.1).
func (n *Node) ClearWOS() {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, m := range n.mgrs {
		m.WOS().DrainUpTo(types.MaxEpoch)
	}
}

// RecoverNode rejoins a failed node: per projection it truncates to the
// node's local LGE, copies missed epochs from a surviving source in a
// historical phase (no locks), then a current phase under a Shared lock,
// and finally rejoins the cluster and releases the AHM.
func (c *Cluster) RecoverNode(id int) error {
	n := c.nodes[id]
	if n.Up() {
		return fmt.Errorf("cluster: node %d is not down", id)
	}
	current := c.Txn.Epochs.Current()
	for _, p := range c.cat.Projections() {
		mgr, err := n.Mgr(p, c.ManagerOpts())
		if err != nil {
			return err
		}
		lge := lastEpochOf(mgr)
		// Historical phase: copy (lge, Eh] lock-free.
		eh := current - 1
		if eh > lge {
			if err := c.copyMissedRows(n, p, mgr, lge, eh); err != nil {
				return err
			}
			lge = eh
		}
		// Current phase: Shared lock on the anchor table, copy the rest.
		rtx := c.Txn.Begin(txn.ReadCommitted)
		if err := c.Txn.Locks.Acquire(rtx.ID, p.Anchor, txn.S); err != nil {
			return err
		}
		err = c.copyMissedRows(n, p, mgr, lge, c.Txn.Epochs.Current())
		c.Txn.Locks.ReleaseAll(rtx.ID)
		if err != nil {
			return err
		}
	}
	n.setUp(true)
	// Release the AHM hold once every node is back.
	if len(c.UpNodes()) == c.N() {
		c.Txn.Epochs.HoldAHM(false)
	}
	healthy := c.HasQuorum() && c.DataAvailable()
	c.mu.Lock()
	if healthy {
		c.shutdown = false
	}
	c.mu.Unlock()
	return nil
}

// copyMissedRows copies projection rows belonging to node n with commit
// epoch in (lo, hi] from a surviving source, including rows that were later
// deleted ("an execution plan similar to INSERT ... SELECT ... is used to
// move rows (including deleted rows) ... a separate plan is used to move
// delete vectors", §5.2).
func (c *Cluster) copyMissedRows(n *Node, p *catalog.Projection, dst *storage.Manager, lo, hi types.Epoch) error {
	src, srcProj, err := c.sourceFor(n, p)
	if err != nil {
		return err
	}
	if src == nil {
		return nil // no source required (e.g. nothing segmented here)
	}
	srcMgr, err := src.Mgr(srcProj, c.ManagerOpts())
	if err != nil {
		return err
	}
	rows, epochs, delEpochs, err := readRowsInEpochRange(srcMgr, lo, hi)
	if err != nil {
		return err
	}
	// Replay deletes of rows the node already has: rows inserted at or
	// before the node's LGE but deleted during the outage need delete
	// vectors on the node's existing containers.
	if err := replayMissedDeletes(c, n, p, dst, srcMgr, lo, hi); err != nil {
		return err
	}
	// Keep only rows that belong to node n under projection p.
	keep := make([]int, 0, len(rows))
	for i, r := range rows {
		ids, err := c.RouteRow(p, r)
		if err != nil {
			return err
		}
		for _, id := range ids {
			if id == n.ID {
				keep = append(keep, i)
				break
			}
		}
	}
	if len(keep) == 0 {
		return nil
	}
	// Sort by the projection sort order and write one container.
	sort.SliceStable(keep, func(a, b int) bool {
		return rows[keep[a]].Compare(rows[keep[b]], p.SortKey()) < 0
	})
	id, dir := dst.NewContainerID()
	minE, maxE := epochs[keep[0]], epochs[keep[0]]
	for _, i := range keep {
		if epochs[i] < minE {
			minE = epochs[i]
		}
		if epochs[i] > maxE {
			maxE = epochs[i]
		}
	}
	meta := &storage.ContainerMeta{
		ID: id, Projection: p.Name, Cols: dst.StoredColumns(encodingSpecs(p)),
		MinEpoch: minE, MaxEpoch: maxE,
	}
	w, err := storage.NewContainerWriter(dir, meta, storage.WriterOpts{})
	if err != nil {
		return err
	}
	batch := newStoredBatch(p, len(keep))
	var dvs []storage.DVEntry
	for outPos, i := range keep {
		batch.AppendRow(append(rows[i].Clone(), types.NewInt(int64(epochs[i]))))
		if delEpochs[i] != 0 {
			dvs = append(dvs, storage.DVEntry{Pos: int64(outPos), Epoch: delEpochs[i]})
		}
	}
	if err := w.Append(batch); err != nil {
		w.Abort()
		return err
	}
	if _, err := w.Close(); err != nil {
		return err
	}
	if err := dst.Publish(meta); err != nil {
		return err
	}
	if len(dvs) > 0 {
		dst.DVs().Add(id, dvs)
		if err := dst.DVs().Persist(id); err != nil {
			return err
		}
	}
	return nil
}

// replayMissedDeletes copies delete vectors for rows the recovering node
// already stores (inserted <= lo, deleted in (lo, hi]). Rows are matched by
// full-value equality between the source's deleted rows and the local
// storage — "a separate plan is used to move delete vectors" (§5.2).
func replayMissedDeletes(c *Cluster, n *Node, p *catalog.Projection, dst *storage.Manager, srcMgr *storage.Manager, lo, hi types.Epoch) error {
	// Source rows deleted in the window but inserted before it.
	oldRows, _, oldDels, err := readRowsInEpochRange(srcMgr, 0, lo)
	if err != nil {
		return err
	}
	type pendingDel struct {
		count int
		epoch types.Epoch
	}
	want := map[string]*pendingDel{}
	total := 0
	for i, r := range oldRows {
		if oldDels[i] == 0 || oldDels[i] <= lo || oldDels[i] > hi {
			continue
		}
		ids, err := c.RouteRow(p, r)
		if err != nil {
			return err
		}
		mine := false
		for _, id := range ids {
			if id == n.ID {
				mine = true
			}
		}
		if !mine {
			continue
		}
		k := r.String()
		if want[k] == nil {
			want[k] = &pendingDel{}
		}
		want[k].count++
		want[k].epoch = oldDels[i]
		total++
	}
	if total == 0 {
		return nil
	}
	// Find matching live local positions and stamp delete vectors.
	for _, cr := range dst.Containers() {
		cols := make([]int, len(cr.Meta.Cols))
		for i := range cols {
			cols[i] = i
		}
		batch, err := cr.ReadAll(cols)
		if err != nil {
			return err
		}
		already := map[int64]bool{}
		for _, e := range dst.DVs().Get(cr.Meta.ID) {
			already[e.Pos] = true
		}
		var entries []storage.DVEntry
		for pos, row := range batch.Rows() {
			if already[int64(pos)] {
				continue
			}
			k := row[:len(row)-1].String()
			pd := want[k]
			if pd == nil || pd.count == 0 {
				continue
			}
			pd.count--
			entries = append(entries, storage.DVEntry{Pos: int64(pos), Epoch: pd.epoch})
		}
		if len(entries) > 0 {
			dst.DVs().Add(cr.Meta.ID, entries)
			if err := dst.DVs().Persist(cr.Meta.ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// sourceFor finds a surviving node and projection holding the rows node n
// needs for projection p.
func (c *Cluster) sourceFor(n *Node, p *catalog.Projection) (*Node, *catalog.Projection, error) {
	if p.Seg.Replicated {
		for _, s := range c.UpNodes() {
			if s.ID != n.ID {
				return s, p, nil
			}
		}
		return nil, nil, fmt.Errorf("cluster: no surviving replica of %q", p.Name)
	}
	if p.IsBuddy {
		// The buddy's rows on node n are the primary rows of node
		// (n - offset) mod N; find the owning primary projection.
		for _, primary := range c.cat.Projections() {
			if primary.Buddy != p.Name {
				continue
			}
			owner := (n.ID - p.Seg.Offset%c.N() + c.N()) % c.N()
			src := c.nodes[owner]
			if !src.Up() {
				return nil, nil, fmt.Errorf("cluster: primary source node %d for buddy %q is down", owner, p.Name)
			}
			return src, primary, nil
		}
		return nil, nil, fmt.Errorf("cluster: buddy projection %q has no primary", p.Name)
	}
	if p.Buddy == "" {
		// Unsafe (K=0) projection: nothing to recover from; accept the gap.
		return nil, nil, nil
	}
	buddy, err := c.cat.Projection(p.Buddy)
	if err != nil {
		return nil, nil, err
	}
	host := c.nodes[(n.ID+buddy.Seg.Offset)%c.N()]
	if !host.Up() {
		return nil, nil, fmt.Errorf("cluster: buddy host node %d is down", host.ID)
	}
	return host, buddy, nil
}

// readRowsInEpochRange reads every row of a projection's local storage with
// commit epoch in (lo, hi], returning rows (user columns), their epochs, and
// their delete epoch (0 if live).
func readRowsInEpochRange(mgr *storage.Manager, lo, hi types.Epoch) ([]types.Row, []types.Epoch, []types.Epoch, error) {
	var rows []types.Row
	var epochs, delEpochs []types.Epoch
	for _, r := range mgr.Containers() {
		if r.Meta.MinEpoch > hi || r.Meta.MaxEpoch <= lo {
			continue
		}
		cols := make([]int, len(r.Meta.Cols))
		for i := range cols {
			cols[i] = i
		}
		batch, err := r.ReadAll(cols)
		if err != nil {
			return nil, nil, nil, err
		}
		epochIdx := r.Meta.ColIndex(storage.EpochColumn)
		delOf := map[int64]types.Epoch{}
		for _, e := range mgr.DVs().Get(r.Meta.ID) {
			delOf[e.Pos] = e.Epoch
		}
		all := batch.Rows()
		for pos, row := range all {
			e := types.Epoch(row[epochIdx].I)
			if e <= lo || e > hi {
				continue
			}
			rows = append(rows, row[:len(row)-1])
			epochs = append(epochs, e)
			delEpochs = append(delEpochs, delOf[int64(pos)])
		}
	}
	for _, wr := range mgr.WOS().Snapshot(hi) {
		if wr.Epoch <= lo {
			continue
		}
		var del types.Epoch
		for _, e := range mgr.DVs().Get(storage.WOSTarget) {
			if e.Pos == wr.Pos {
				del = e.Epoch
			}
		}
		rows = append(rows, wr.Row)
		epochs = append(epochs, wr.Epoch)
		delEpochs = append(delEpochs, del)
	}
	return rows, epochs, delEpochs, nil
}

// Refresh populates a projection created after its anchor table was loaded
// (paper §5.2: "refresh is used to populate new projections"). Rows are read
// from the anchor's super projection across the cluster, routed by the new
// projection's segmentation and written with their original epochs.
func (c *Cluster) Refresh(projName string) error {
	p, err := c.cat.Projection(projName)
	if err != nil {
		return err
	}
	if err := c.EnsureStorage(p); err != nil {
		return err
	}
	super, err := c.cat.SuperProjection(p.Anchor)
	if err != nil {
		return err
	}
	if super.Name == p.Name {
		return fmt.Errorf("cluster: cannot refresh a projection from itself")
	}
	t, err := c.cat.Table(p.Anchor)
	if err != nil {
		return err
	}
	// Current phase lock: brief S lock while copying (single phase in the
	// simulation; the historical/current split matters only under
	// concurrent load).
	rtx := c.Txn.Begin(txn.ReadCommitted)
	if err := c.Txn.Locks.Acquire(rtx.ID, p.Anchor, txn.S); err != nil {
		return err
	}
	defer c.Txn.Locks.ReleaseAll(rtx.ID)

	dimRows, err := c.prejoinDimData(p)
	if err != nil {
		return err
	}
	type nodeRows struct {
		rows   []types.Row
		epochs []types.Epoch
	}
	staged := map[int]*nodeRows{}
	seen := map[int]bool{}
	for _, src := range c.UpNodes() {
		if super.Seg.Replicated && len(seen) > 0 {
			break // one replica suffices
		}
		seen[src.ID] = true
		mgr, err := src.Mgr(super, c.ManagerOpts())
		if err != nil {
			return err
		}
		rows, epochs, _, err := readRowsInEpochRange(mgr, 0, c.Txn.Epochs.Current())
		if err != nil {
			return err
		}
		for i, tr := range rows {
			pr, err := c.buildProjectionRow(t, super, p, tr, dimRows)
			if err != nil {
				return err
			}
			if pr == nil {
				continue // prejoin inner join dropped the row
			}
			ids, err := c.RouteRow(p, pr)
			if err != nil {
				return err
			}
			for _, id := range ids {
				nr := staged[id]
				if nr == nil {
					nr = &nodeRows{}
					staged[id] = nr
				}
				nr.rows = append(nr.rows, pr)
				nr.epochs = append(nr.epochs, epochs[i])
			}
		}
	}
	for id, nr := range staged {
		n := c.nodes[id]
		if !n.Up() {
			continue
		}
		mgr, err := n.Mgr(p, c.ManagerOpts())
		if err != nil {
			return err
		}
		if err := writeRefreshedContainer(mgr, p, nr.rows, nr.epochs); err != nil {
			return err
		}
	}
	return nil
}

// prejoinDimData loads each prejoin dimension table into a key->row map
// using its super projection on the first node that has it.
func (c *Cluster) prejoinDimData(p *catalog.Projection) (map[string]map[string]types.Row, error) {
	if len(p.Prejoin) == 0 {
		return nil, nil
	}
	out := map[string]map[string]types.Row{}
	for _, pj := range p.Prejoin {
		dimT, err := c.cat.Table(pj.DimTable)
		if err != nil {
			return nil, err
		}
		dimSuper, err := c.cat.SuperProjection(pj.DimTable)
		if err != nil {
			return nil, err
		}
		if !dimSuper.Seg.Replicated && c.N() > 1 {
			return nil, fmt.Errorf("cluster: prejoin dimension %q must be replicated", pj.DimTable)
		}
		byKey := map[string]types.Row{}
		for _, n := range c.UpNodes() {
			mgr, err := n.Mgr(dimSuper, c.ManagerOpts())
			if err != nil {
				return nil, err
			}
			rows, _, _, err := readRowsInEpochRange(mgr, 0, c.Txn.Epochs.Current())
			if err != nil {
				return nil, err
			}
			ki := dimSuper.Schema.ColIndex(pj.DimKey)
			for _, r := range rows {
				byKey[r[ki].String()] = projToTableRow(dimT, dimSuper, r)
			}
			break // replicated: one node is enough
		}
		out[pj.DimTable] = byKey
	}
	return out, nil
}

// buildProjectionRow maps a table row (from the super projection) onto the
// target projection's columns, resolving prejoin dimension columns via the
// N:1 join. Inner-join semantics: a missing dimension row drops the fact row.
func (c *Cluster) buildProjectionRow(t *catalog.Table, super *catalog.Projection, p *catalog.Projection, superRow types.Row, dims map[string]map[string]types.Row) (types.Row, error) {
	tableRow := projToTableRow(t, super, superRow)
	out := make(types.Row, p.Schema.Len())
	for i, name := range p.Columns {
		if dim, col, isDim := splitDim(name); isDim {
			var pj *catalog.PrejoinDim
			for j := range p.Prejoin {
				if p.Prejoin[j].DimTable == dim {
					pj = &p.Prejoin[j]
					break
				}
			}
			if pj == nil {
				return nil, fmt.Errorf("cluster: projection %q references %q without a prejoin clause", p.Name, name)
			}
			factKeyIdx := t.Schema.ColIndex(pj.FactKey)
			dimRow, ok := dims[dim][tableRow[factKeyIdx].String()]
			if !ok {
				return nil, nil // N:1 inner join miss
			}
			dimT, err := c.cat.Table(dim)
			if err != nil {
				return nil, err
			}
			out[i] = dimRow[dimT.Schema.ColIndex(col)]
			continue
		}
		out[i] = tableRow[t.Schema.ColIndex(name)]
	}
	return out, nil
}

func writeRefreshedContainer(mgr *storage.Manager, p *catalog.Projection, rows []types.Row, epochs []types.Epoch) error {
	if len(rows) == 0 {
		return nil
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	key := p.SortKey()
	sort.SliceStable(idx, func(a, b int) bool {
		return rows[idx[a]].Compare(rows[idx[b]], key) < 0
	})
	id, dir := mgr.NewContainerID()
	minE, maxE := epochs[0], epochs[0]
	for _, e := range epochs {
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	meta := &storage.ContainerMeta{
		ID: id, Projection: p.Name, Cols: mgr.StoredColumns(encodingSpecs(p)),
		MinEpoch: minE, MaxEpoch: maxE,
	}
	w, err := storage.NewContainerWriter(dir, meta, storage.WriterOpts{})
	if err != nil {
		return err
	}
	batch := newStoredBatch(p, len(rows))
	for _, i := range idx {
		batch.AppendRow(append(rows[i].Clone(), types.NewInt(int64(epochs[i]))))
	}
	if err := w.Append(batch); err != nil {
		w.Abort()
		return err
	}
	if _, err := w.Close(); err != nil {
		return err
	}
	return mgr.Publish(meta)
}

// AddNode grows the cluster by one node; call Rebalance to redistribute
// segments onto it (paper §5.2).
func (c *Cluster) AddNode() *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := len(c.nodes)
	n := &Node{
		ID:   id,
		Name: fmt.Sprintf("node%04d", id+1),
		Dir:  filepath.Join(c.cfg.Dir, fmt.Sprintf("node%04d", id+1)),
		up:   true,
		mgrs: map[string]*storage.Manager{},
	}
	c.nodes = append(c.nodes, n)
	return n
}

// Rebalance redistributes every segmented projection's rows across the
// current node set. The paper transfers whole local segments in native
// format; the simulation re-routes rows, which preserves the observable
// outcome (each row on its new ring owner).
func (c *Cluster) Rebalance() error {
	for _, p := range c.cat.Projections() {
		if p.Seg.Replicated {
			// New nodes need replica copies.
			if err := c.rebalanceReplicated(p); err != nil {
				return err
			}
			continue
		}
		if err := c.rebalanceSegmented(p); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) rebalanceReplicated(p *catalog.Projection) error {
	// Find a node with data and copy everything to nodes without any.
	var src *Node
	for _, n := range c.UpNodes() {
		mgr, err := n.Mgr(p, c.ManagerOpts())
		if err != nil {
			return err
		}
		if mgr.RowCount() > 0 || mgr.WOS().Len() > 0 {
			src = n
			break
		}
	}
	if src == nil {
		return nil
	}
	srcMgr, _ := src.Mgr(p, c.ManagerOpts())
	rows, epochs, _, err := readRowsInEpochRange(srcMgr, 0, c.Txn.Epochs.Current())
	if err != nil {
		return err
	}
	for _, n := range c.UpNodes() {
		mgr, err := n.Mgr(p, c.ManagerOpts())
		if err != nil {
			return err
		}
		if mgr.RowCount() > 0 || mgr.WOS().Len() > 0 || n.ID == src.ID {
			continue
		}
		if err := writeRefreshedContainer(mgr, p, rows, epochs); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) rebalanceSegmented(p *catalog.Projection) error {
	// Gather all rows cluster-wide, then rewrite each node's storage with
	// its new share.
	type stamped struct {
		row   types.Row
		epoch types.Epoch
	}
	perNode := map[int][]stamped{}
	for _, n := range c.UpNodes() {
		mgr, err := n.Mgr(p, c.ManagerOpts())
		if err != nil {
			return err
		}
		rows, epochs, _, err := readRowsInEpochRange(mgr, 0, c.Txn.Epochs.Current())
		if err != nil {
			return err
		}
		for i, r := range rows {
			ids, err := c.RouteRow(p, r)
			if err != nil {
				return err
			}
			for _, id := range ids {
				perNode[id] = append(perNode[id], stamped{r, epochs[i]})
			}
		}
		// Clear the node's current storage for this projection.
		var drop []string
		for _, cr := range mgr.Containers() {
			drop = append(drop, cr.Meta.ID)
		}
		if err := mgr.Remove(drop...); err != nil {
			return err
		}
		mgr.WOS().DrainUpTo(types.MaxEpoch)
	}
	for id, st := range perNode {
		n := c.nodes[id]
		if !n.Up() {
			continue
		}
		mgr, err := n.Mgr(p, c.ManagerOpts())
		if err != nil {
			return err
		}
		rows := make([]types.Row, len(st))
		epochs := make([]types.Epoch, len(st))
		for i := range st {
			rows[i], epochs[i] = st[i].row, st[i].epoch
		}
		if err := writeRefreshedContainer(mgr, p, rows, epochs); err != nil {
			return err
		}
	}
	return nil
}

// Backup snapshots every node's storage via hard links (paper §5.2): data
// files cannot vanish while the backup image is copied away.
func (c *Cluster) Backup(destDir string) error {
	for _, n := range c.UpNodes() {
		n.mu.RLock()
		mgrs := make(map[string]*storage.Manager, len(n.mgrs))
		for k, v := range n.mgrs {
			mgrs[k] = v
		}
		n.mu.RUnlock()
		for pname, mgr := range mgrs {
			dst := filepath.Join(destDir, n.Name, pname)
			if err := mgr.SnapshotHardlink(dst); err != nil {
				return err
			}
		}
	}
	return nil
}
