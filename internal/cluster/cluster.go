// Package cluster implements the shared-nothing distribution layer of paper
// §3.6 and §5.2–5.3 as an in-process simulation: N nodes each own a storage
// directory; projections are replicated or ring-segmented across nodes;
// buddy projections provide K-safety; commits require a quorum; failed nodes
// are ejected and later recover via the historical/current two-phase copy
// from their buddies.
//
// The simulation preserves the paper's logical protocols exactly — the
// substitution is only that "network" message delivery is a method call,
// which makes failure injection deterministic and testable.
package cluster

import (
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/catalog"
	"repro/internal/resmgr"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// Node is one cluster member: private storage per projection plus liveness.
type Node struct {
	ID   int
	Name string
	Dir  string

	mu   sync.RWMutex
	up   bool
	mgrs map[string]*storage.Manager // projection name -> storage
}

// Up reports node liveness.
func (n *Node) Up() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.up
}

func (n *Node) setUp(up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.up = up
}

// Mgr returns the node's storage manager for a projection, creating it on
// first use.
func (n *Node) Mgr(p *catalog.Projection, opts storage.ManagerOpts) (*storage.Manager, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m, ok := n.mgrs[p.Name]; ok {
		return m, nil
	}
	m, err := storage.NewManager(filepath.Join(n.Dir, p.Name), p.Schema, opts)
	if err != nil {
		return nil, err
	}
	n.mgrs[p.Name] = m
	return m, nil
}

// Config sets cluster-wide parameters.
type Config struct {
	Nodes int
	Dir   string
	// K is the K-safety level: projections get K buddy copies.
	K int
	// LocalSegments per node (paper §3.6; Figure 2 shows 3).
	LocalSegments int
	WOSMaxBytes   int64
	// Governor, when set, admission-controls query dispatch on the
	// coordinator and sizes operator memory budgets from its grants.
	Governor *resmgr.Governor
	// TempDir hosts operator spill files (default: system temp).
	TempDir string
}

// Cluster owns the node set, the shared epoch clock and group membership.
type Cluster struct {
	cfg Config
	cat *catalog.Catalog
	Txn *txn.Manager

	mu       sync.RWMutex
	nodes    []*Node
	shutdown bool
}

// New creates a cluster of cfg.Nodes nodes rooted at cfg.Dir.
func New(cfg Config, cat *catalog.Catalog, tm *txn.Manager) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.LocalSegments <= 0 {
		cfg.LocalSegments = 3
	}
	c := &Cluster{cfg: cfg, cat: cat, Txn: tm}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			ID:   i,
			Name: fmt.Sprintf("node%04d", i+1),
			Dir:  filepath.Join(cfg.Dir, fmt.Sprintf("node%04d", i+1)),
			up:   true,
			mgrs: map[string]*storage.Manager{},
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Catalog returns the shared metadata catalog.
func (c *Cluster) Catalog() *catalog.Catalog { return c.cat }

// Governor returns the coordinator's resource governor (nil if ungoverned).
func (c *Cluster) Governor() *resmgr.Governor { return c.cfg.Governor }

// Nodes returns all nodes (up and down).
func (c *Cluster) Nodes() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Node{}, c.nodes...)
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// N returns the cluster size.
func (c *Cluster) N() int { return len(c.nodes) }

// UpNodes returns the currently live nodes.
func (c *Cluster) UpNodes() []*Node {
	var out []*Node
	for _, n := range c.Nodes() {
		if n.Up() {
			out = append(out, n)
		}
	}
	return out
}

// QuorumSize is the agreement protocol's N/2+1 requirement (paper §5.3).
func (c *Cluster) QuorumSize() int { return c.N()/2 + 1 }

// HasQuorum reports whether enough nodes are up to accept commits.
func (c *Cluster) HasQuorum() bool { return len(c.UpNodes()) >= c.QuorumSize() }

// IsShutdown reports whether the cluster performed a safety shutdown.
func (c *Cluster) IsShutdown() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shutdown
}

// FailNode ejects a node from the cluster ("failure to receive a message
// will cause a node to be ejected"). The AHM freezes so recovery can replay
// missed DML (§5.1), and the cluster shuts down if quorum or data coverage
// is lost (§5.3).
func (c *Cluster) FailNode(id int) error {
	n := c.nodes[id]
	if !n.Up() {
		return fmt.Errorf("cluster: node %d is already down", id)
	}
	n.setUp(false)
	c.Txn.Epochs.HoldAHM(true)
	if !c.HasQuorum() {
		c.mu.Lock()
		c.shutdown = true
		c.mu.Unlock()
		return fmt.Errorf("cluster: lost quorum (%d/%d up): safety shutdown", len(c.UpNodes()), c.N())
	}
	if !c.DataAvailable() {
		c.mu.Lock()
		c.shutdown = true
		c.mu.Unlock()
		return fmt.Errorf("cluster: segment coverage lost: database shutdown until recovery")
	}
	return nil
}

// DataAvailable verifies that every segmented projection still has every
// segment reachable: for each down node, some live node must hold a buddy
// copy of its rows. Replicated projections need any single live node.
func (c *Cluster) DataAvailable() bool {
	for _, p := range c.cat.Projections() {
		if p.IsBuddy {
			continue
		}
		if p.Seg.Replicated {
			if len(c.UpNodes()) == 0 {
				return false
			}
			continue
		}
		for _, n := range c.nodes {
			if n.Up() {
				continue
			}
			// Node n's primary segment must be covered by a live buddy.
			covered := false
			for off := 1; off <= c.cfg.K; off++ {
				buddyNode := (n.ID + off) % c.N()
				if c.nodes[buddyNode].Up() && p.Buddy != "" {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
	}
	return true
}

// UpProjectionNames lists the projections with in-memory WOS data for LGE
// accounting.
func (c *Cluster) projectionNames() []string {
	var out []string
	for _, p := range c.cat.Projections() {
		out = append(out, p.Name)
	}
	return out
}

// ManagerOpts returns the storage options nodes use.
func (c *Cluster) ManagerOpts() storage.ManagerOpts {
	return storage.ManagerOpts{
		WOSMaxBytes:   c.cfg.WOSMaxBytes,
		LocalSegments: c.cfg.LocalSegments,
	}
}

// K returns the configured K-safety level.
func (c *Cluster) K() int { return c.cfg.K }

// EnsureStorage materializes storage managers for a projection on every
// node (idempotent).
func (c *Cluster) EnsureStorage(p *catalog.Projection) error {
	for _, n := range c.nodes {
		if _, err := n.Mgr(p, c.ManagerOpts()); err != nil {
			return err
		}
	}
	return nil
}

// ringNode maps an unsigned segmentation value to its ring node index with
// the projection's offset applied (paper §3.6's range mapping).
func (c *Cluster) ringNode(hash uint64, offset int) int {
	n := uint64(c.N())
	if n == 1 {
		return 0
	}
	// Contiguous ranges of the hash space, CMAX/N wide.
	idx := int(hash / (^uint64(0)/n + 1))
	return (idx + offset) % c.N()
}

// RouteRow returns the node IDs that must store a row of projection p.
func (c *Cluster) RouteRow(p *catalog.Projection, row types.Row) ([]int, error) {
	if p.Seg.Replicated {
		out := make([]int, c.N())
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	if p.Seg.Expr == nil {
		return []int{0}, nil
	}
	v, err := p.Seg.Expr.EvalRow(row)
	if err != nil {
		return nil, fmt.Errorf("cluster: segmentation expression: %w", err)
	}
	if !v.Typ.IsIntegral() {
		return nil, fmt.Errorf("cluster: segmentation expression must be integral, got %s", v.Typ)
	}
	return []int{c.ringNode(uint64(v.I), p.Seg.Offset)}, nil
}

// PrimaryOwner returns the ring node for a row under a projection ignoring
// the buddy offset — i.e. which node's primary segment the row belongs to.
func (c *Cluster) PrimaryOwner(p *catalog.Projection, row types.Row) (int, error) {
	if p.Seg.Expr == nil {
		return 0, nil
	}
	v, err := p.Seg.Expr.EvalRow(row)
	if err != nil {
		return 0, err
	}
	return c.ringNode(uint64(v.I), 0), nil
}

// LocalSegmentOf splits a node's hash subrange into equal local segments
// (paper §3.6: "local segments" let the cluster expand by reassigning whole
// segments).
func (c *Cluster) LocalSegmentOf(p *catalog.Projection) func(types.Row) int {
	ls := c.cfg.LocalSegments
	if p.Seg.Replicated || p.Seg.Expr == nil {
		return func(types.Row) int { return 0 }
	}
	seg := p.Seg.Expr
	n := uint64(c.N())
	rangeWidth := ^uint64(0)
	if n > 1 {
		rangeWidth = ^uint64(0)/n + 1
	}
	return func(r types.Row) int {
		v, err := seg.EvalRow(r)
		if err != nil {
			return 0
		}
		pos := uint64(v.I) % rangeWidth
		return int(pos / (rangeWidth/uint64(ls) + 1))
	}
}
