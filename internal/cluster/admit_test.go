package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/resmgr"
)

// TestAdmitSizedFallsBackToDefault: a plan-sized request above the pool
// default is computed from headroom seen at probe time; when a concurrent
// admission takes that headroom, the oversized request times out in the
// queue — admitSized must then admit at the pool default (which still
// fits) instead of failing the query, since renegotiation and spilling
// cover the estimate gap mid-flight.
func TestAdmitSizedFallsBackToDefault(t *testing.T) {
	const kib = int64(1 << 10)
	gov := resmgr.NewGovernor(resmgr.Config{
		PoolBytes:      512 * kib,
		MaxConcurrency: 4,
		GrantBytes:     128 * kib,
		QueueTimeout:   30 * time.Millisecond,
	})
	ctx := context.Background()

	// At probe time the pool was empty, so SizeGrant returned 400K. Before
	// this query admits, another one takes 384K.
	other, err := gov.AdmitBytes(ctx, 384*kib)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Release()

	grant, err := admitSized(ctx, gov, "", 400*kib)
	if err != nil {
		t.Fatalf("above-default request did not fall back to the default grant: %v", err)
	}
	if grant.Bytes() != 128*kib {
		t.Fatalf("fallback grant = %d, want pool default %d", grant.Bytes(), 128*kib)
	}
	grant.Release()

	// A below-default request gets no fallback: retrying at the (larger)
	// default could never help, so the timeout surfaces.
	extra, err := gov.AdmitBytes(ctx, 64*kib) // pool now holds 448K
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Release()
	if _, err := admitSized(ctx, gov, "", 100*kib); !errors.Is(err, resmgr.ErrQueueTimeout) {
		t.Fatalf("below-default request: err = %v, want ErrQueueTimeout", err)
	}
}

// TestAdmitSizedFallsBackOnInfeasible: reservations created between grant
// sizing and admission can make an above-default request structurally
// impossible; the fail-fast infeasibility error must also fall back to the
// still-feasible pool default instead of failing the query.
func TestAdmitSizedFallsBackOnInfeasible(t *testing.T) {
	const kib = int64(1 << 10)
	gov := resmgr.NewGovernor(resmgr.Config{
		PoolBytes:      512 * kib,
		MaxConcurrency: 4,
		GrantBytes:     64 * kib,
		QueueTimeout:   30 * time.Millisecond,
	})
	ctx := context.Background()
	// Sized at 400K while the pool was unreserved; then an admin reserves
	// 384K for another pool: 400K can never be admitted, 64K still can.
	if err := gov.CreatePool(resmgr.PoolConfig{Name: "etl", MemBytes: 384 * kib}); err != nil {
		t.Fatal(err)
	}
	grant, err := admitSized(ctx, gov, "", 400*kib)
	if err != nil {
		t.Fatalf("infeasible above-default request did not fall back: %v", err)
	}
	if grant.Bytes() != 64*kib {
		t.Fatalf("fallback grant = %d, want pool default %d", grant.Bytes(), 64*kib)
	}
	grant.Release()
}
