package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/resmgr"
	"repro/internal/storage"
	"repro/internal/types"
)

// Distributed query execution. Each up node plans and runs the query against
// its local projection data; the initiator merges partial results. Like
// Vertica, "segmentation ... enables many important optimizations", so the
// merge strategy depends on placement:
//
//   - replicated-only queries run on a single node;
//   - when the group keys contain the segmentation columns, alike values are
//     co-located and node results simply concatenate;
//   - otherwise aggregates are rewritten into distributive partials (AVG
//     becomes SUM and COUNT) and re-aggregated at the initiator.
//
// When a node is down, its segment is replanned onto the buddy projection on
// a surviving node (paper §6.2), restricted to the down node's ring range.

// nodeProvider adapts one node's local storage to the optimizer.
type nodeProvider struct {
	c *Cluster
	n *Node
}

// Catalog implements optimizer.Provider.
func (p *nodeProvider) Catalog() *catalog.Catalog { return p.c.cat }

// ProjectionData implements optimizer.Provider.
func (p *nodeProvider) ProjectionData(name string) (*storage.Manager, error) {
	proj, err := p.c.cat.Projection(name)
	if err != nil {
		return nil, err
	}
	return p.n.Mgr(proj, p.c.ManagerOpts())
}

// QueryResult carries the final rows plus plan diagnostics and the query's
// resource stats (zero when the cluster runs ungoverned).
type QueryResult struct {
	Schema  *types.Schema
	Rows    []types.Row
	Explain string
	Stats   resmgr.QueryStats
	// Probe echoes the placement-probe metadata the run used (projection
	// choice, cost estimates) so the plan cache can store it on a miss.
	Probe optimizer.ProbeInfo
	// OpProfiles are the executed plans' per-operator records, node plans
	// concatenated in execution order (each pre-order within its plan). The
	// initiator merge pipeline is not profiled — it runs after the node
	// plans finish and its operators are built per-merge, not per-plan.
	OpProfiles []resmgr.OpProfile
}

// Run executes a logical query across the cluster at the current READ
// COMMITTED snapshot epoch.
func (c *Cluster) Run(q *optimizer.LogicalQuery, opts optimizer.PlanOpts) (*QueryResult, error) {
	return c.RunAt(q, opts, c.Txn.Epochs.ReadEpoch())
}

// RunAt executes at an explicit snapshot epoch (historical queries).
func (c *Cluster) RunAt(q *optimizer.LogicalQuery, opts optimizer.PlanOpts, epoch types.Epoch) (*QueryResult, error) {
	return c.RunAtCtx(context.Background(), q, opts, epoch)
}

// RunCtx is Run with caller-controlled cancellation and admission.
func (c *Cluster) RunCtx(ctx context.Context, q *optimizer.LogicalQuery, opts optimizer.PlanOpts) (*QueryResult, error) {
	return c.RunAtCtx(ctx, q, opts, c.Txn.Epochs.ReadEpoch())
}

// RunAtCtx executes at an explicit snapshot epoch under a cancellable
// context. When the cluster has a governor the query is first admitted on
// the coordinator — blocking in its resource pool's admission queue
// (resmgr.WithPool selects the pool; general by default) if the pool is at
// its concurrency or memory limit — and every operator budget derives from
// the admission grant instead of the built-in default.
//
// Queries over system tables only (v_monitor.*) bypass admission and run on
// the coordinator alone, so the cluster stays observable even when every
// pool is saturated — Vertica's SYSQUERY escape hatch.
func (c *Cluster) RunAtCtx(ctx context.Context, q *optimizer.LogicalQuery, opts optimizer.PlanOpts, epoch types.Epoch) (res *QueryResult, err error) {
	tr := dc.TraceFrom(ctx)
	allVirtual, anyVirtual := c.virtualTables(q)
	if anyVirtual && !allVirtual && c.N() > 1 {
		return nil, fmt.Errorf("cluster: system tables cannot join user tables on a multi-node cluster")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.IsShutdown() {
		return nil, fmt.Errorf("cluster: database is shut down")
	}
	up := c.UpNodes()
	if len(up) == 0 {
		return nil, fmt.Errorf("cluster: no nodes available")
	}
	// Probe plan on the first up node, BEFORE admission: it determines
	// projection choices, placement validity, and — when every base table
	// has statistics — the memory estimate the admission request is sized
	// from (dynamic grant sizing; planning itself consumes no governed
	// memory). Per-node plans are rebuilt after admission, so a long queue
	// wait cannot execute a stale probe. A plan-cache hit supplies the
	// probe metadata directly (opts.CachedProbe) and skips the probe Plan
	// call — the expensive half of short-query planning — while placement
	// checks and admission still run against live state.
	tr.Begin("plan")
	var probe optimizer.ProbeInfo
	if cp := opts.CachedProbe; cp != nil {
		probe = *cp
	} else {
		var pp *optimizer.PhysicalPlan
		pp, err = optimizer.Plan(&nodeProvider{c, up[0]}, q, opts)
		if err == nil {
			probe = optimizer.ProbeInfo{
				ProjectionsUsed: pp.ProjectionsUsed,
				EstRows:         pp.EstRows,
				EstMemBytes:     pp.EstMemBytes,
				StatsBacked:     pp.StatsBacked,
				Workers:         pp.Workers,
			}
		}
	}
	if err == nil {
		err = c.checkPlacement(q, probe.ProjectionsUsed)
	}
	if err != nil {
		// Pre-admission failures still leave a query profile, so operators
		// watching v_monitor.query_profiles see this failure class.
		if gov := c.cfg.Governor; gov != nil && !allVirtual {
			gov.RecordFailure(resmgr.PoolFromContext(ctx), resmgr.LabelFromContext(ctx), err)
		}
		return nil, err
	}
	var grant *resmgr.Grant
	if gov := c.cfg.Governor; gov != nil && !allVirtual {
		poolName := resmgr.PoolFromContext(ctx)
		tr.Begin("queue")
		grant, err = admitSized(ctx, gov, poolName, c.grantRequest(poolName, probe))
		if err != nil {
			return nil, err
		}
		// The query id exists from here on: stamp the trace so events from
		// worker goroutines and the phase records flushed at statement end
		// all join v_monitor.query_profiles.
		tr.SetQueryID(grant.QueryID())
		// Record failures in the retained query profile before releasing.
		defer func() {
			if err != nil {
				grant.SetError(err)
			}
			grant.Release()
		}()
		// RUNTIMECAP: a capped pool's statements run under a deadline, so a
		// runaway statement cancels at the next batch boundary and releases
		// its slot and memory instead of holding them forever. The error is
		// attributed to the cap only when the cap is the binding deadline —
		// a tighter caller-supplied deadline keeps its own error.
		if d := grant.RuntimeCap(); d > 0 {
			outerDeadline, hasOuter := ctx.Deadline()
			capBinds := !hasOuter || time.Now().Add(d).Before(outerDeadline)
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
			if capBinds {
				defer func() {
					if err != nil && errors.Is(err, context.DeadlineExceeded) {
						tr.Event("RUNTIME_CAP_EXCEEDED", fmt.Sprintf("cap=%s", d))
						err = fmt.Errorf("resmgr: statement exceeded the pool runtime cap of %s: %w", d, err)
					}
				}()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	// Per-pool PARALLELISM: the admitted pool's degree overrides the engine
	// default for this statement. The probe ran with the engine default,
	// but per-node plans are rebuilt below with the effective degree.
	if pp := grant.Parallelism(); pp > 0 {
		opts.Parallelism = pp
	}
	allReplicated := c.allReplicated(probe.ProjectionsUsed)
	localFinal := allReplicated || allVirtual || c.N() == 1 || c.groupsColocated(q, probe.ProjectionsUsed)

	// Build the per-node logical query and initiator merge pipeline.
	nodeQ, merge, err := buildDistributedAgg(q, localFinal, c.N() == 1)
	if err != nil {
		return nil, err
	}

	execNodes := up
	if allReplicated || allVirtual {
		// System-table state lives on the coordinator; replicated data is
		// whole on any single node.
		execNodes = up[:1]
	}
	type nodeRun struct {
		node  *Node
		plan  *optimizer.PhysicalPlan
		buddy bool
	}
	var runs []nodeRun
	var firstErr error
	var partials []types.Row
	// Plans that split ROS containers across parallel workers pin the
	// storage generation they were built from; a tuple-mover moveout
	// committing before execution invalidates the split (the WOS rows it
	// moved would be scanned by no worker) and fails the scan with
	// ErrStorageChanged. The plan is cheap relative to the queue wait, so
	// just replan against current storage and retry a few times.
	const maxStorageRetries = 3
	tr.Begin("execute")
	for attempt := 0; ; attempt++ {
		runs, firstErr, partials = nil, nil, nil
		for _, n := range execNodes {
			plan, err := optimizer.Plan(&nodeProvider{c, n}, nodeQ, opts)
			if err != nil {
				return nil, err
			}
			runs = append(runs, nodeRun{node: n, plan: plan})
		}
		// Buddy coverage for down nodes (skipped when everything is
		// replicated: any single up node already has full data).
		if !allReplicated && !allVirtual {
			for _, n := range c.Nodes() {
				if n.Up() {
					continue
				}
				plan, host, err := c.planBuddySegment(nodeQ, opts, n.ID)
				if err != nil {
					return nil, err
				}
				if plan != nil {
					runs = append(runs, nodeRun{node: host, plan: plan, buddy: true})
				}
			}
		}

		// Execute node plans in parallel (the MPP step). Each node pipeline
		// shares the query's admission grant; the per-operator budget splits
		// the grant across the concurrent pipelines — and, when a plan fans
		// out intra-node parallel workers, across those workers too, so a
		// parallel plan shares one grant instead of multiplying it. The
		// split is computed once, before any pipeline starts: a pipeline's
		// mid-flight grant extension belongs to the operator that requested
		// it, and must not inflate the initial budget of a sibling whose
		// goroutine happens to start later.
		workers := 1
		for _, r := range runs {
			if r.plan.Workers > workers {
				workers = r.plan.Workers
			}
		}
		pipelineBudget := grant.OperatorBudget(len(runs) * workers)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, r := range runs {
			wg.Add(1)
			go func(r nodeRun) {
				defer wg.Done()
				ectx := c.execCtx(ctx, epoch, opts, grant, pipelineBudget)
				rows, err := exec.Drain(ectx, r.plan.Root)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("cluster: node %s: %w", r.node.Name, err)
					return
				}
				partials = append(partials, rows...)
			}(r)
		}
		wg.Wait()
		if firstErr == nil || attempt >= maxStorageRetries || !errors.Is(firstErr, storage.ErrStorageChanged) {
			break
		}
		tr.Event("REPLAN_ON_STORAGE_GENERATION",
			fmt.Sprintf("attempt=%d: %s", attempt+1, firstErr))
	}
	// Collect per-operator profiles (one cheap walk per plan) and attach
	// them to the grant, so the governor retains them for PROFILE runs and
	// queries crossing the slow-query threshold — including failed ones.
	var opRecs []resmgr.OpProfile
	for _, r := range runs {
		opRecs = append(opRecs, exec.CollectProfiles(r.plan.Root, r.node.Name)...)
	}
	grant.SetOpProfile(opRecs, opts.Profile)
	if firstErr != nil {
		return nil, firstErr
	}

	// Initiator merge (single pipeline: the full grant as it stands now,
	// node-pipeline extensions included — those operators have finished).
	tr.Begin("fetch")
	nodeSchema := runs[0].plan.Root.Schema()
	final, schema, err := merge(partials, nodeSchema, c.execCtx(ctx, epoch, opts, grant, grant.OperatorBudget(1)))
	if err != nil {
		return nil, err
	}
	tr.End()
	grant.ReportRows(int64(len(final)))
	var explain strings.Builder
	fmt.Fprintf(&explain, "-- distributed over %d node plan(s); local-final=%v\n", len(runs), localFinal)
	explain.WriteString(runs[0].plan.Explain())
	return &QueryResult{Schema: schema, Rows: final, Explain: explain.String(),
		Stats: grant.Stats(), OpProfiles: opRecs, Probe: probe}, nil
}

// grantRequest sizes the admission request from the probe plan (the
// roadmap's "dynamic grant sizing"): a statistics-backed plan requests its
// estimated working memory instead of the static pool/concurrency split, so
// well-estimated small queries stop reserving the full slice and more of
// them run concurrently under memory pressure. Plans estimating above the
// pool's default grant are no longer clamped down: resmgr.SizeGrant raises
// the request into whatever pool headroom exists right now (bounded by
// MAXMEMORYSIZE), and any residual estimate error is covered by mid-flight
// renegotiation (Grant.Request) at the operators' spill thresholds.
// Returning 0 keeps the pool's default (heuristic-only plans, unknown
// pools).
func (c *Cluster) grantRequest(poolName string, probe optimizer.ProbeInfo) int64 {
	if !probe.StatsBacked {
		return 0
	}
	return c.cfg.Governor.SizeGrant(poolName, probe.EstMemBytes)
}

// admitSized admits with the plan-sized grant request (0 = pool default).
// SizeGrant sizes above-default requests from the headroom visible at probe
// time; if that headroom is taken — by a concurrent admission, or by a
// CREATE/ALTER RESOURCE POOL reshaping reservations — before this query
// reaches the front of the queue, the oversized request can time out or
// become infeasible where the pre-renegotiation behavior (clamp to default)
// would have admitted. So an above-default request that fails falls back to
// one admission at the pool default — mid-flight renegotiation covers the
// estimate gap once memory frees up, and spilling covers it when it does
// not. An infeasible request failed fast, so its fallback queues normally;
// a timed-out request already consumed the pool's queue budget, so its
// fallback is a single non-queueing attempt (TryAdmitSince — no second
// wait, no double-counted queue statistics) and the original timeout error
// surfaces if the default does not fit right now. Both fallbacks keep the
// original enqueue time so the grant's queue-wait accounting covers the
// whole stall, not just the final attempt.
//
// Deliberate trade-off: if the pool stays saturated for the whole timeout
// (or other statements queued up behind the oversized request), the
// fallback declines and the statement pays a queue-timeout failure the old
// always-clamp behavior avoided. Overtaking those waiters would break the
// pool's FIFO fairness — the same head-blocking policy Admit itself
// enforces — and a pool that busy is exactly what admission control exists
// to push back on.
func admitSized(ctx context.Context, gov *resmgr.Governor, poolName string, req int64) (*resmgr.Grant, error) {
	enqueued := time.Now()
	grant, err := gov.AdmitPoolBytes(ctx, poolName, req)
	var inf *resmgr.InfeasibleError
	timedOut := errors.Is(err, resmgr.ErrQueueTimeout)
	if err == nil || req <= 0 || (!timedOut && !errors.As(err, &inf)) {
		return grant, err
	}
	name := poolName
	if name == "" {
		name = resmgr.GeneralPool
	}
	st, ok := gov.PoolStatus(name)
	if !ok || req <= st.EffGrantBytes {
		return grant, err
	}
	if !timedOut {
		return gov.AdmitPoolBytesSince(ctx, poolName, 0, enqueued)
	}
	if g2, ok := gov.TryAdmitSince(ctx, poolName, 0, enqueued); ok {
		return g2, nil
	}
	return nil, err
}

// execCtx builds one pipeline's execution context: snapshot epoch, the
// query's cancellation context and grant, and the caller-computed
// per-operator budget (callers snapshot OperatorBudget before launching
// pipelines so concurrent extensions don't skew the split).
func (c *Cluster) execCtx(cctx context.Context, epoch types.Epoch, opts optimizer.PlanOpts, grant *resmgr.Grant, budget int64) *exec.Ctx {
	ectx := exec.NewCtx(epoch)
	if opts.Parallelism > 0 {
		ectx.Parallelism = opts.Parallelism
	}
	ectx.Context = cctx
	ectx.Grant = grant
	ectx.ProfTimes = opts.Profile
	ectx.Trace = dc.TraceFrom(cctx)
	if c.cfg.TempDir != "" {
		ectx.TempDir = c.cfg.TempDir
	}
	if grant != nil {
		ectx.MemBudget = budget
	}
	return ectx
}

// virtualTables classifies the query's FROM tables: all/any virtual.
func (c *Cluster) virtualTables(q *optimizer.LogicalQuery) (all, any bool) {
	if len(q.From) == 0 {
		return false, false
	}
	all = true
	for _, tr := range q.From {
		if c.cat.Virtual(tr.Table.Name) != nil {
			any = true
		} else {
			all = false
		}
	}
	return all, any
}

// allReplicated reports whether every chosen projection is replicated.
func (c *Cluster) allReplicated(projections []string) bool {
	if len(projections) == 0 {
		return false
	}
	for _, name := range projections {
		p, err := c.cat.Projection(name)
		if err != nil || !p.Seg.Replicated {
			return false
		}
	}
	return true
}

// groupsColocated reports whether the fact projection's segmentation columns
// are all among the group keys, making groups node-local ("Vertica uses
// segmentation to perform ... efficient distributed aggregations,
// particularly effective for high-cardinality distinct aggregates", §3.6).
func (c *Cluster) groupsColocated(q *optimizer.LogicalQuery, projections []string) bool {
	if !q.IsAggregate() || len(q.GroupBy) == 0 || len(projections) == 0 {
		return false
	}
	proj, err := c.cat.Projection(projections[0])
	if err != nil || proj.Seg.Replicated || proj.Seg.Expr == nil {
		return false
	}
	segCols := expr.ColumnsOf(proj.Seg.Expr) // projection-schema indexes
	// Group keys as projection column names.
	keyNames := map[string]bool{}
	for _, g := range q.GroupBy {
		t, cIdx := flatToTable(q, g)
		if t == nil {
			return false
		}
		keyNames[t.Schema.Col(cIdx).Name] = true
	}
	for _, sc := range segCols {
		if !keyNames[proj.Schema.Col(sc).Name] {
			return false
		}
	}
	return true
}

func flatToTable(q *optimizer.LogicalQuery, flat int) (*catalog.Table, int) {
	off := 0
	for _, t := range q.From {
		n := t.Table.Schema.Len()
		if flat < off+n {
			return t.Table, flat - off
		}
		off += n
	}
	return nil, -1
}

// checkPlacement verifies multi-table queries can run with local joins:
// every non-fact projection must be replicated, or share the fact's
// segmentation text (co-segmented). Vertica's V2Opt reshuffles on the fly;
// this reproduction requires placement that StarOpt also handled (§6.2).
func (c *Cluster) checkPlacement(q *optimizer.LogicalQuery, projections []string) error {
	if len(q.From) <= 1 || c.N() == 1 {
		return nil
	}
	var segTexts []string
	for _, name := range projections {
		p, err := c.cat.Projection(name)
		if err != nil {
			return err
		}
		if p.Seg.Replicated {
			continue
		}
		segTexts = append(segTexts, p.Seg.ExprText)
	}
	if len(segTexts) <= 1 {
		return nil
	}
	for _, s := range segTexts[1:] {
		if s != segTexts[0] {
			return fmt.Errorf("cluster: join requires co-located projections: segment dimension tables identically or replicate them (StarOpt placement rule, paper §6.2)")
		}
	}
	return nil
}

// planBuddySegment replans a down node's segment onto its buddy projection
// hosted by a surviving node, restricted to the down node's ring range.
func (c *Cluster) planBuddySegment(q *optimizer.LogicalQuery, opts optimizer.PlanOpts, downID int) (*optimizer.PhysicalPlan, *Node, error) {
	// Only single-table (or replicated-dim) fact coverage is supported; the
	// fact table is the one with a segmented projection.
	factIdx := -1
	var primary *catalog.Projection
	for i, tr := range q.From {
		for _, p := range c.cat.ProjectionsFor(tr.Table.Name) {
			if !p.IsBuddy && !p.Seg.Replicated && p.Buddy != "" {
				factIdx = i
				primary = p
				break
			}
		}
		if factIdx >= 0 {
			break
		}
	}
	if primary == nil {
		return nil, nil, nil // nothing segmented: replicated data covers it
	}
	buddy, err := c.cat.Projection(primary.Buddy)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: node %d down and projection %q has no buddy: %w", downID, primary.Name, err)
	}
	// The buddy stores down-node rows on ring(downID + offset).
	hostID := (downID + buddy.Seg.Offset) % c.N()
	host := c.nodes[hostID]
	if !host.Up() {
		return nil, nil, fmt.Errorf("cluster: buddy host node %d for down node %d is also down", hostID, downID)
	}
	// Restrict to the down node's primary segment: RING_NODE(N, seg) = down.
	segExpr := primary.Seg.Expr
	if segExpr == nil {
		return nil, nil, fmt.Errorf("cluster: projection %q has no segmentation expression", primary.Name)
	}
	// Remap the projection-schema expression onto the query's flat schema.
	t := q.From[factIdx].Table
	offs := 0
	for i := 0; i < factIdx; i++ {
		offs += q.From[i].Table.Schema.Len()
	}
	m := map[int]int{}
	for pi := 0; pi < primary.Schema.Len(); pi++ {
		ti := t.Schema.ColIndex(primary.Schema.Col(pi).Name)
		if ti >= 0 {
			m[pi] = offs + ti
		}
	}
	flatSeg, err := expr.Remap(segExpr, m)
	if err != nil {
		return nil, nil, err
	}
	ring, err := expr.NewFunc("RING_NODE", expr.NewConst(types.NewInt(int64(c.N()))), flatSeg)
	if err != nil {
		return nil, nil, err
	}
	restrict := expr.MustCmp(expr.Eq, ring, expr.NewConst(types.NewInt(int64(downID))))
	bq := *q
	bq.Where = expr.MustAnd(q.Where, restrict)
	bopts := opts
	bopts.AllowBuddies = true
	ex := map[string]bool{}
	for k, v := range opts.ExcludeProjections {
		ex[k] = v
	}
	// Exclude every non-buddy projection of the fact table so the buddy is
	// chosen.
	for _, p := range c.cat.ProjectionsFor(t.Name) {
		if !p.IsBuddy {
			ex[p.Name] = true
		}
	}
	bopts.ExcludeProjections = ex
	plan, err := optimizer.Plan(&nodeProvider{c, host}, &bq, bopts)
	if err != nil {
		return nil, nil, err
	}
	plan.Notes = append(plan.Notes, fmt.Sprintf("buddy replan: node %d segment served by %s on %s", downID, buddy.Name, host.Name))
	return plan, host, nil
}

// mergeFunc combines node-partial rows at the initiator under the query's
// execution context (cancellation, grant budget, spill dir).
type mergeFunc func(partials []types.Row, nodeSchema *types.Schema, ectx *exec.Ctx) ([]types.Row, *types.Schema, error)

// buildDistributedAgg derives the per-node query and the initiator merge.
// On a single-node cluster the node plan computes the complete result —
// HAVING, DISTINCT, ORDER BY and LIMIT included — and the initiator is a
// passthrough: that routes the whole query through the optimizer, so its
// intra-node parallel sort/DISTINCT shapes apply, and removes the redundant
// initiator re-sort the distributed split would otherwise do.
func buildDistributedAgg(q *optimizer.LogicalQuery, localFinal, singleNode bool) (*optimizer.LogicalQuery, mergeFunc, error) {
	if singleNode {
		merge := func(partials []types.Row, schema *types.Schema, _ *exec.Ctx) ([]types.Row, *types.Schema, error) {
			return partials, schema, nil
		}
		return q, merge, nil
	}
	finishLocal := func(partials []types.Row, schema *types.Schema, ectx *exec.Ctx, ops func(exec.Operator) exec.Operator) ([]types.Row, *types.Schema, error) {
		src := exec.NewValues(schema, partials)
		root := ops(src)
		rows, err := exec.Drain(ectx, root)
		if err != nil {
			return nil, nil, err
		}
		return rows, root.Schema(), nil
	}

	if !q.IsAggregate() {
		// Plain select: nodes project; initiator concatenates, then orders
		// and limits. DISTINCT must dedup globally, so it stays at the
		// initiator too.
		nodeQ := *q
		nodeQ.OrderBy = nil
		nodeQ.Limit = -1
		nodeQ.Offset = 0
		nodeQ.Distinct = false
		merge := func(partials []types.Row, schema *types.Schema, ectx *exec.Ctx) ([]types.Row, *types.Schema, error) {
			return finishLocal(partials, schema, ectx, func(op exec.Operator) exec.Operator {
				if q.Distinct {
					keys := make([]expr.Expr, schema.Len())
					names := make([]string, schema.Len())
					for i := range keys {
						keys[i] = expr.NewColRef(i, schema.Col(i).Typ, schema.Col(i).Name)
						names[i] = schema.Col(i).Name
					}
					op = exec.NewGroupBy(op, keys, names, nil)
				}
				if len(q.OrderBy) > 0 {
					op = exec.NewSort(op, q.OrderBy)
				}
				if q.Limit >= 0 || q.Offset > 0 {
					op = exec.NewLimit(op, q.Offset, q.Limit)
				}
				return op
			})
		}
		return &nodeQ, merge, nil
	}

	if localFinal {
		// Groups are node-local: nodes compute final aggregates; the
		// initiator concatenates and applies HAVING/post/order/limit.
		nodeQ := *q
		nodeQ.Having = nil
		nodeQ.PostProject = nil
		nodeQ.PostProjectNames = nil
		nodeQ.OrderBy = nil
		nodeQ.Limit = -1
		nodeQ.Offset = 0
		merge := func(partials []types.Row, schema *types.Schema, ectx *exec.Ctx) ([]types.Row, *types.Schema, error) {
			return finishLocal(partials, schema, ectx, func(op exec.Operator) exec.Operator {
				return finishAggregate(q, op)
			})
		}
		return &nodeQ, merge, nil
	}

	// Re-aggregation: rewrite AVG into SUM+COUNT; COUNT DISTINCT cannot be
	// merged across nodes without co-location.
	nodeQ := *q
	nodeQ.Having = nil
	nodeQ.PostProject = nil
	nodeQ.PostProjectNames = nil
	nodeQ.OrderBy = nil
	nodeQ.Limit = -1
	nodeQ.Offset = 0
	var nodeAggs []exec.AggSpec
	type aggMap struct {
		kind    exec.AggKind
		sumIdx  int // into nodeAggs
		cntIdx  int // for AVG
		origIdx int
	}
	var maps []aggMap
	for i, a := range q.Aggs {
		switch a.Kind {
		case exec.AggCountDistinct:
			return nil, nil, fmt.Errorf("cluster: COUNT(DISTINCT) requires grouping on the segmentation columns for co-located evaluation (paper §3.6)")
		case exec.AggAvg:
			nodeAggs = append(nodeAggs,
				exec.AggSpec{Kind: exec.AggSum, Arg: mustFloat(a.Arg), Name: a.Name + "_sum"},
				exec.AggSpec{Kind: exec.AggCount, Arg: a.Arg, Name: a.Name + "_cnt"})
			maps = append(maps, aggMap{kind: a.Kind, sumIdx: len(nodeAggs) - 2, cntIdx: len(nodeAggs) - 1, origIdx: i})
		default:
			nodeAggs = append(nodeAggs, a)
			maps = append(maps, aggMap{kind: a.Kind, sumIdx: len(nodeAggs) - 1, origIdx: i})
		}
	}
	nodeQ.Aggs = nodeAggs
	nKeys := len(q.GroupBy)
	merge := func(partials []types.Row, schema *types.Schema, ectx *exec.Ctx) ([]types.Row, *types.Schema, error) {
		return finishLocal(partials, schema, ectx, func(op exec.Operator) exec.Operator {
			// Re-aggregate node partials by the group keys.
			keys := make([]expr.Expr, nKeys)
			names := make([]string, nKeys)
			for i := 0; i < nKeys; i++ {
				keys[i] = expr.NewColRef(i, schema.Col(i).Typ, schema.Col(i).Name)
				names[i] = schema.Col(i).Name
			}
			reAggs := make([]exec.AggSpec, len(nodeAggs))
			for i, a := range nodeAggs {
				col := expr.NewColRef(nKeys+i, schema.Col(nKeys+i).Typ, schema.Col(nKeys+i).Name)
				switch a.Kind {
				case exec.AggCount, exec.AggCountStar:
					reAggs[i] = exec.AggSpec{Kind: exec.AggSum, Arg: col, Name: a.Name}
				case exec.AggSum:
					reAggs[i] = exec.AggSpec{Kind: exec.AggSum, Arg: col, Name: a.Name}
				case exec.AggMin:
					reAggs[i] = exec.AggSpec{Kind: exec.AggMin, Arg: col, Name: a.Name}
				case exec.AggMax:
					reAggs[i] = exec.AggSpec{Kind: exec.AggMax, Arg: col, Name: a.Name}
				}
			}
			op = exec.NewGroupBy(op, keys, names, reAggs)
			// Reshape merged partials back into the original agg outputs.
			outSchema := op.Schema()
			exprs := make([]expr.Expr, nKeys+len(q.Aggs))
			outNames := make([]string, nKeys+len(q.Aggs))
			for i := 0; i < nKeys; i++ {
				exprs[i] = expr.NewColRef(i, outSchema.Col(i).Typ, outSchema.Col(i).Name)
				outNames[i] = outSchema.Col(i).Name
			}
			for _, m := range maps {
				var e expr.Expr
				switch m.kind {
				case exec.AggAvg:
					sum := expr.NewColRef(nKeys+m.sumIdx, types.Float64, "")
					cnt := expr.NewColRef(nKeys+m.cntIdx, types.Int64, "")
					div, _ := expr.NewArith(expr.Div, sum, mustFloat(cnt))
					zero := expr.MustCmp(expr.Eq, cnt, expr.NewConst(types.NewInt(0)))
					c, _ := expr.NewCase([]expr.When{{Cond: zero, Then: expr.NewConst(types.NewNull(types.Float64))}}, div)
					e = c
				default:
					e = expr.NewColRef(nKeys+m.sumIdx, outSchema.Col(nKeys+m.sumIdx).Typ, q.Aggs[m.origIdx].Name)
				}
				exprs[nKeys+m.origIdx] = e
				outNames[nKeys+m.origIdx] = q.Aggs[m.origIdx].Name
			}
			op = exec.NewProject(op, exprs, outNames)
			return finishAggregate(q, op)
		})
	}
	return &nodeQ, merge, nil
}

// finishAggregate applies HAVING, post-projection, ORDER BY and LIMIT over
// the canonical [keys..., aggs...] schema at the initiator.
func finishAggregate(q *optimizer.LogicalQuery, op exec.Operator) exec.Operator {
	if q.Having != nil {
		op = exec.NewFilter(op, q.Having)
	}
	if q.PostProject != nil {
		op = exec.NewProject(op, q.PostProject, q.PostProjectNames)
	}
	if len(q.OrderBy) > 0 {
		op = exec.NewSort(op, q.OrderBy)
	}
	if q.Limit >= 0 || q.Offset > 0 {
		op = exec.NewLimit(op, q.Offset, q.Limit)
	}
	return op
}

func mustFloat(e expr.Expr) expr.Expr {
	if e.Type() == types.Float64 {
		return e
	}
	f, err := expr.NewFunc("FLOAT", e)
	if err != nil {
		return e
	}
	return f
}
