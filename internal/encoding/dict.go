package encoding

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/types"
	"repro/internal/vector"
)

// BlockDict payload: uvarint dictSize, dict entries in raw per-value format
// (sorted, so dictionary order is value order), then bit-packed indexes with
// width = ceil(log2(dictSize)). "Within a data block, distinct column values
// are stored in a dictionary and actual values are replaced with references"
// (paper §3.4.1).

func encodeBlockDict(buf []byte, v *vector.Vector) ([]byte, error) {
	n := v.PhysLen()
	switch v.Typ {
	case types.Float64:
		dict := map[float64]int{}
		for _, f := range v.Floats {
			if _, ok := dict[f]; !ok {
				dict[f] = 0
			}
		}
		keys := make([]float64, 0, len(dict))
		for k := range dict {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		for i, k := range keys {
			dict[k] = i
		}
		buf = appendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = appendUint64(buf, math.Float64bits(k))
		}
		idx := make([]int, n)
		for i, f := range v.Floats {
			idx[i] = dict[f]
		}
		return packBits(buf, idx, bitWidth(len(keys))), nil
	case types.Varchar:
		dict := map[string]int{}
		for _, s := range v.Strs {
			if _, ok := dict[s]; !ok {
				dict[s] = 0
			}
		}
		keys := make([]string, 0, len(dict))
		for k := range dict {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			dict[k] = i
		}
		buf = appendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = appendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
		}
		idx := make([]int, n)
		for i, s := range v.Strs {
			idx[i] = dict[s]
		}
		return packBits(buf, idx, bitWidth(len(keys))), nil
	default:
		dict := map[int64]int{}
		for _, x := range v.Ints {
			if _, ok := dict[x]; !ok {
				dict[x] = 0
			}
		}
		keys := make([]int64, 0, len(dict))
		for k := range dict {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i, k := range keys {
			dict[k] = i
		}
		buf = appendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = appendVarint(buf, k)
		}
		idx := make([]int, n)
		for i, x := range v.Ints {
			idx[i] = dict[x]
		}
		return packBits(buf, idx, bitWidth(len(keys))), nil
	}
}

func decodeBlockDict(b []byte, t types.Type, n int) (*vector.Vector, error) {
	ds64, sz := uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("encoding: corrupt BLOCK_DICT size")
	}
	if ds64 > uint64(len(b)) { // every dictionary entry costs ≥ 1 byte
		return nil, fmt.Errorf("encoding: BLOCK_DICT size %d exceeds payload", ds64)
	}
	ds := int(ds64)
	pos := sz
	switch t {
	case types.Float64:
		dict := make([]float64, ds)
		for i := range dict {
			if pos+8 > len(b) {
				return nil, fmt.Errorf("encoding: truncated BLOCK_DICT entries")
			}
			dict[i] = math.Float64frombits(getUint64(b[pos:]))
			pos += 8
		}
		idx, _ := unpackBits(b[pos:], n, bitWidth(ds))
		if idx == nil {
			return nil, fmt.Errorf("encoding: truncated BLOCK_DICT indexes")
		}
		out := make([]float64, n)
		for i, ix := range idx {
			if ix >= ds {
				return nil, fmt.Errorf("encoding: BLOCK_DICT index out of range")
			}
			out[i] = dict[ix]
		}
		return vector.NewFromFloats(out), nil
	case types.Varchar:
		dict := make([]string, ds)
		for i := range dict {
			l, sz := uvarint(b[pos:])
			if sz <= 0 || int(l) < 0 || pos+sz+int(l) > len(b) {
				return nil, fmt.Errorf("encoding: truncated BLOCK_DICT entries")
			}
			pos += sz
			dict[i] = string(b[pos : pos+int(l)])
			pos += int(l)
		}
		idx, _ := unpackBits(b[pos:], n, bitWidth(ds))
		if idx == nil {
			return nil, fmt.Errorf("encoding: truncated BLOCK_DICT indexes")
		}
		out := make([]string, n)
		for i, ix := range idx {
			if ix >= ds {
				return nil, fmt.Errorf("encoding: BLOCK_DICT index out of range")
			}
			out[i] = dict[ix]
		}
		return vector.NewFromStrings(out), nil
	default:
		dict := make([]int64, ds)
		for i := range dict {
			x, sz := varint(b[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("encoding: truncated BLOCK_DICT entries")
			}
			dict[i] = x
			pos += sz
		}
		idx, _ := unpackBits(b[pos:], n, bitWidth(ds))
		if idx == nil {
			return nil, fmt.Errorf("encoding: truncated BLOCK_DICT indexes")
		}
		out := make([]int64, n)
		for i, ix := range idx {
			if ix >= ds {
				return nil, fmt.Errorf("encoding: BLOCK_DICT index out of range")
			}
			out[i] = dict[ix]
		}
		return vector.NewFromInts(t, out), nil
	}
}
