package encoding

import (
	"fmt"
	"sort"

	"repro/internal/types"
	"repro/internal/vector"
)

// CompressedCommonDelta payload (integral only): "builds a dictionary of all
// the deltas in the block and then stores indexes into the dictionary using
// entropy coding. Best for sorted data with predictable sequences and
// occasional sequence breaks, e.g. timestamps recorded at periodic intervals
// or primary keys" (paper §3.4.1).
//
// Layout: varint firstValue, uvarint dictSize, varint dict entries, then a
// canonical-Huffman-coded stream of n-1 dictionary indexes (see huffman.go).

// maxCommonDeltaDict bounds the delta dictionary; blocks with more distinct
// deltas than this are a poor fit and encoding fails over to another scheme
// via Auto (direct encode requests get an error).
const maxCommonDeltaDict = 4096

func encodeCommonDelta(buf []byte, v *vector.Vector) ([]byte, error) {
	if v.Typ == types.Float64 || v.Typ == types.Varchar {
		return nil, fmt.Errorf("encoding: COMMONDELTA_COMP requires integral column, got %s", v.Typ)
	}
	n := len(v.Ints)
	if n == 0 {
		return buf, nil
	}
	buf = appendVarint(buf, v.Ints[0])
	deltas := make([]int64, n-1)
	dictIdx := map[int64]int{}
	for i := 1; i < n; i++ {
		d := v.Ints[i] - v.Ints[i-1]
		deltas[i-1] = d
		if _, ok := dictIdx[d]; !ok {
			if len(dictIdx) >= maxCommonDeltaDict {
				return nil, fmt.Errorf("encoding: COMMONDELTA_COMP delta dictionary exceeds %d entries", maxCommonDeltaDict)
			}
			dictIdx[d] = 0
		}
	}
	dict := make([]int64, 0, len(dictIdx))
	for d := range dictIdx {
		dict = append(dict, d)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	for i, d := range dict {
		dictIdx[d] = i
	}
	buf = appendUvarint(buf, uint64(len(dict)))
	for _, d := range dict {
		buf = appendVarint(buf, d)
	}
	if len(dict) == 0 {
		return buf, nil
	}
	freq := make([]int, len(dict))
	syms := make([]int, len(deltas))
	for i, d := range deltas {
		s := dictIdx[d]
		syms[i] = s
		freq[s]++
	}
	lengths, err := huffmanCodeLengths(freq)
	if err != nil {
		return nil, err
	}
	return huffmanEncode(buf, len(dict), lengths, syms), nil
}

func decodeCommonDelta(b []byte, t types.Type, n int) (*vector.Vector, error) {
	if n == 0 {
		return vector.New(t, 0), nil
	}
	first, sz := varint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("encoding: corrupt COMMONDELTA_COMP first value")
	}
	pos := sz
	ds64, sz := uvarint(b[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("encoding: corrupt COMMONDELTA_COMP dict size")
	}
	pos += sz
	if ds64 > uint64(len(b)) { // every dictionary entry costs ≥ 1 byte
		return nil, fmt.Errorf("encoding: COMMONDELTA_COMP dict size %d exceeds payload", ds64)
	}
	ds := int(ds64)
	dict := make([]int64, ds)
	for i := range dict {
		d, sz := varint(b[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("encoding: corrupt COMMONDELTA_COMP dict entry")
		}
		dict[i] = d
		pos += sz
	}
	out := make([]int64, n)
	out[0] = first
	if n > 1 {
		syms, _, err := huffmanDecode(b[pos:], n-1)
		if err != nil {
			return nil, err
		}
		for i, s := range syms {
			if s >= ds {
				return nil, fmt.Errorf("encoding: COMMONDELTA_COMP symbol out of range")
			}
			out[i+1] = out[i] + dict[s]
		}
	}
	return vector.NewFromInts(t, out), nil
}
