// Package encoding implements Vertica's column encoding schemes (paper
// §3.4.1): Auto, RLE, Delta Value, Block Dictionary, Compressed Delta Range
// and Compressed Common Delta, plus an uncompressed None baseline.
//
// Encoding operates block-at-a-time: the storage layer hands each block of a
// column (a flat vector) to EncodeBlock and stores the resulting bytes; reads
// go through DecodeBlock. RLE blocks can be decoded directly into run-length
// form so the execution engine can operate on encoded data (paper §6.1).
package encoding

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/vector"
)

// Kind identifies an encoding scheme.
type Kind uint8

// The encoding schemes of paper §3.4.1.
const (
	// None stores values uncompressed (fixed-width ints/floats, raw strings).
	None Kind = iota
	// Auto picks the most advantageous encoding per block from the data
	// itself; this is the default (paper: "used when insufficient usage
	// examples are known").
	Auto
	// RLE replaces sequences of identical values with (value, count) pairs.
	// Best for low-cardinality sorted columns.
	RLE
	// DeltaValue records each value as a difference from the smallest value
	// in the block. Best for many-valued unsorted integer columns.
	DeltaValue
	// BlockDict stores distinct values in a per-block dictionary and replaces
	// values with bit-packed dictionary references. Best for few-valued
	// unsorted columns such as stock prices.
	BlockDict
	// CompressedDeltaRange stores each value as a delta from the previous
	// one. Ideal for many-valued float columns that are sorted or confined
	// to a range (floats use an XOR-of-bits delta).
	CompressedDeltaRange
	// CompressedCommonDelta builds a dictionary of all deltas in the block
	// and entropy-codes (canonical Huffman) indexes into it. Best for sorted
	// data with predictable sequences and occasional breaks, e.g. periodic
	// timestamps or primary keys.
	CompressedCommonDelta
)

// String returns the DBD-style name of the encoding.
func (k Kind) String() string {
	switch k {
	case None:
		return "NONE"
	case Auto:
		return "AUTO"
	case RLE:
		return "RLE"
	case DeltaValue:
		return "DELTAVAL"
	case BlockDict:
		return "BLOCK_DICT"
	case CompressedDeltaRange:
		return "DELTARANGE_COMP"
	case CompressedCommonDelta:
		return "COMMONDELTA_COMP"
	default:
		return fmt.Sprintf("KIND(%d)", k)
	}
}

// ParseKind parses an encoding name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "NONE", "RAW":
		return None, nil
	case "AUTO":
		return Auto, nil
	case "RLE":
		return RLE, nil
	case "DELTAVAL", "DELTA":
		return DeltaValue, nil
	case "BLOCK_DICT", "DICT":
		return BlockDict, nil
	case "DELTARANGE_COMP", "DELTARANGE":
		return CompressedDeltaRange, nil
	case "COMMONDELTA_COMP", "COMMONDELTA":
		return CompressedCommonDelta, nil
	default:
		return None, fmt.Errorf("encoding: unknown encoding %q", s)
	}
}

// Applicable reports whether kind can encode columns of type t.
func (k Kind) Applicable(t types.Type) bool {
	switch k {
	case None, Auto, RLE, BlockDict:
		return true
	case DeltaValue, CompressedCommonDelta:
		return t.IsIntegral()
	case CompressedDeltaRange:
		return t.IsIntegral() || t == types.Float64
	default:
		return false
	}
}

// blockHeader layout: [kind u8][uvarint rowCount][nullFlag u8][nullBitmap?].
// The payload that follows is kind-specific and always encodes rowCount
// logical slots (null slots carry zero values).

// EncodeBlock encodes a flat vector as one block. kind must not be Auto
// (resolve Auto with Choose first) and must be applicable to v's type.
func EncodeBlock(kind Kind, v *vector.Vector) ([]byte, error) {
	if v.IsRLE() {
		v = v.Expand()
	}
	if kind == Auto {
		kind = Choose(v)
	}
	if !kind.Applicable(v.Typ) {
		return nil, fmt.Errorf("encoding: %s not applicable to %s", kind, v.Typ)
	}
	n := v.PhysLen()
	buf := make([]byte, 0, n)
	buf = append(buf, byte(kind))
	buf = appendUvarint(buf, uint64(n))
	if v.HasNulls() {
		buf = append(buf, 1)
		bm := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if v.Nulls[i] {
				bm[i/8] |= 1 << (i % 8)
			}
		}
		buf = append(buf, bm...)
	} else {
		buf = append(buf, 0)
	}
	var err error
	switch kind {
	case None:
		buf, err = encodeNone(buf, v)
	case RLE:
		buf, err = encodeRLE(buf, v)
	case DeltaValue:
		buf, err = encodeDeltaValue(buf, v)
	case BlockDict:
		buf, err = encodeBlockDict(buf, v)
	case CompressedDeltaRange:
		buf, err = encodeDeltaRange(buf, v)
	case CompressedCommonDelta:
		buf, err = encodeCommonDelta(buf, v)
	default:
		err = fmt.Errorf("encoding: cannot encode with kind %s", kind)
	}
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeBlock decodes one block into a flat vector of type t.
// RLE blocks decode into run-length form when preserveRuns is true.
func DecodeBlock(data []byte, t types.Type, preserveRuns bool) (*vector.Vector, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("encoding: short block (%d bytes)", len(data))
	}
	kind := Kind(data[0])
	if kind > CompressedCommonDelta {
		return nil, fmt.Errorf("encoding: unknown block kind %d", kind)
	}
	if !kind.Applicable(t) {
		return nil, fmt.Errorf("encoding: block kind %s not applicable to %s", kind, t)
	}
	pos := 1
	n64, sz := uvarint(data[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("encoding: corrupt row count")
	}
	pos += sz
	// Harden against corrupt headers: a row count beyond anything the writer
	// produces is a malformed block, not a request to allocate.
	if n64 > maxBlockRows {
		return nil, fmt.Errorf("encoding: block row count %d exceeds limit %d", n64, maxBlockRows)
	}
	n := int(n64)
	if pos >= len(data) {
		return nil, fmt.Errorf("encoding: truncated block header")
	}
	nullFlag := data[pos]
	pos++
	var nulls []bool
	if nullFlag == 1 {
		bmLen := (n + 7) / 8
		if pos+bmLen > len(data) {
			return nil, fmt.Errorf("encoding: truncated null bitmap")
		}
		nulls = make([]bool, n)
		for i := 0; i < n; i++ {
			nulls[i] = data[pos+i/8]&(1<<(i%8)) != 0
		}
		pos += bmLen
	}
	payload := data[pos:]
	var (
		v   *vector.Vector
		err error
	)
	switch kind {
	case None:
		v, err = decodeNone(payload, t, n)
	case RLE:
		v, err = decodeRLE(payload, t, n, preserveRuns && nulls == nil)
	case DeltaValue:
		v, err = decodeDeltaValue(payload, t, n)
	case BlockDict:
		v, err = decodeBlockDict(payload, t, n)
	case CompressedDeltaRange:
		v, err = decodeDeltaRange(payload, t, n)
	case CompressedCommonDelta:
		v, err = decodeCommonDelta(payload, t, n)
	default:
		err = fmt.Errorf("encoding: unknown block kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	if nulls != nil {
		v.Nulls = nulls
	}
	return v, nil
}

// maxBlockRows bounds the row count a decoder will honor from a block
// header. Storage blocks hold at most one batch of a column, far below this;
// anything larger is corruption (or an attack) and must not drive
// allocations.
const maxBlockRows = 1 << 22

// BlockKind returns the encoding kind stored in an encoded block.
func BlockKind(data []byte) (Kind, error) {
	if len(data) == 0 {
		return None, fmt.Errorf("encoding: empty block")
	}
	return Kind(data[0]), nil
}
