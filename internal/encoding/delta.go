package encoding

import (
	"fmt"
	"math"

	"repro/internal/types"
	"repro/internal/vector"
)

// DeltaValue payload (integral only): varint blockMin, then per value
// uvarint(v - blockMin). "Data is recorded as a difference from the smallest
// value in a data block" (paper §3.4.1).

func encodeDeltaValue(buf []byte, v *vector.Vector) ([]byte, error) {
	if v.Typ == types.Float64 || v.Typ == types.Varchar {
		return nil, fmt.Errorf("encoding: DELTAVAL requires integral column, got %s", v.Typ)
	}
	mn := int64(math.MaxInt64)
	for _, x := range v.Ints {
		if x < mn {
			mn = x
		}
	}
	if len(v.Ints) == 0 {
		mn = 0
	}
	buf = appendVarint(buf, mn)
	for _, x := range v.Ints {
		buf = appendUvarint(buf, uint64(x-mn))
	}
	return buf, nil
}

func decodeDeltaValue(b []byte, t types.Type, n int) (*vector.Vector, error) {
	mn, sz := varint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("encoding: corrupt DELTAVAL base")
	}
	if n > len(b) { // every delta costs at least one payload byte
		return nil, fmt.Errorf("encoding: DELTAVAL payload too short for %d rows", n)
	}
	pos := sz
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		d, sz := uvarint(b[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("encoding: corrupt DELTAVAL delta at %d", i)
		}
		pos += sz
		out[i] = mn + int64(d)
	}
	return vector.NewFromInts(t, out), nil
}

// CompressedDeltaRange payload: "stores each value as a delta from the
// previous one" (paper §3.4.1).
//
//	integral: varint first value, then varint(v[i] - v[i-1]) per value.
//	float:    8-byte first value, then uvarint(bits(v[i]) XOR bits(v[i-1]))
//	          per value — the XOR of similar floats has mostly-zero high
//	          bits after byte reversal, so we reverse bytes before varint.
func encodeDeltaRange(buf []byte, v *vector.Vector) ([]byte, error) {
	switch v.Typ {
	case types.Float64:
		if len(v.Floats) == 0 {
			return buf, nil
		}
		buf = appendUint64(buf, math.Float64bits(v.Floats[0]))
		prev := math.Float64bits(v.Floats[0])
		for _, f := range v.Floats[1:] {
			cur := math.Float64bits(f)
			buf = appendUvarint(buf, reverseBytes(cur^prev))
			prev = cur
		}
		return buf, nil
	case types.Varchar:
		return nil, fmt.Errorf("encoding: DELTARANGE_COMP requires numeric column, got %s", v.Typ)
	default:
		if len(v.Ints) == 0 {
			return buf, nil
		}
		buf = appendVarint(buf, v.Ints[0])
		prev := v.Ints[0]
		for _, x := range v.Ints[1:] {
			buf = appendVarint(buf, x-prev)
			prev = x
		}
		return buf, nil
	}
}

func decodeDeltaRange(b []byte, t types.Type, n int) (*vector.Vector, error) {
	if n == 0 {
		return vector.New(t, 0), nil
	}
	if n > len(b) { // first value plus ≥1 byte per delta
		return nil, fmt.Errorf("encoding: DELTARANGE_COMP payload too short for %d rows", n)
	}
	if t == types.Float64 {
		if len(b) < 8 {
			return nil, fmt.Errorf("encoding: corrupt DELTARANGE_COMP first value")
		}
		out := make([]float64, n)
		prev := getUint64(b)
		out[0] = math.Float64frombits(prev)
		pos := 8
		for i := 1; i < n; i++ {
			x, sz := uvarint(b[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("encoding: corrupt DELTARANGE_COMP xor at %d", i)
			}
			pos += sz
			prev ^= reverseBytes(x)
			out[i] = math.Float64frombits(prev)
		}
		return vector.NewFromFloats(out), nil
	}
	out := make([]int64, n)
	first, sz := varint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("encoding: corrupt DELTARANGE_COMP first value")
	}
	out[0] = first
	pos := sz
	for i := 1; i < n; i++ {
		d, sz := varint(b[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("encoding: corrupt DELTARANGE_COMP delta at %d", i)
		}
		pos += sz
		out[i] = out[i-1] + d
	}
	return vector.NewFromInts(t, out), nil
}

// reverseBytes flips byte order so that XORs of similar floats (which differ
// in low mantissa bytes) present their zero bytes to the varint encoder last.
func reverseBytes(v uint64) uint64 {
	var out uint64
	for i := 0; i < 8; i++ {
		out = out<<8 | v&0xff
		v >>= 8
	}
	return out
}
