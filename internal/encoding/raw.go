package encoding

import (
	"fmt"
	"math"

	"repro/internal/types"
	"repro/internal/vector"
)

// None payload: ints/timestamps/bools as fixed 8-byte little-endian words,
// floats as 8-byte IEEE bits, strings as uvarint length + bytes. This is the
// "uncompressed" baseline the paper's Table 4 compares against.

func encodeNone(buf []byte, v *vector.Vector) ([]byte, error) {
	switch v.Typ {
	case types.Float64:
		for _, f := range v.Floats {
			buf = appendUint64(buf, math.Float64bits(f))
		}
	case types.Varchar:
		for _, s := range v.Strs {
			buf = appendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	default:
		for _, i := range v.Ints {
			buf = appendUint64(buf, uint64(i))
		}
	}
	return buf, nil
}

func decodeNone(b []byte, t types.Type, n int) (*vector.Vector, error) {
	switch t {
	case types.Float64:
		if len(b) < 8*n {
			return nil, fmt.Errorf("encoding: raw float payload too short")
		}
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = math.Float64frombits(getUint64(b[8*i:]))
		}
		return vector.NewFromFloats(out), nil
	case types.Varchar:
		if n > len(b) { // every string needs at least its length byte
			return nil, fmt.Errorf("encoding: raw string payload too short")
		}
		out := make([]string, n)
		pos := 0
		for i := 0; i < n; i++ {
			l, sz := uvarint(b[pos:])
			if sz <= 0 || int(l) < 0 || pos+sz+int(l) > len(b) {
				return nil, fmt.Errorf("encoding: raw string payload corrupt")
			}
			pos += sz
			out[i] = string(b[pos : pos+int(l)])
			pos += int(l)
		}
		return vector.NewFromStrings(out), nil
	default:
		if len(b) < 8*n {
			return nil, fmt.Errorf("encoding: raw int payload too short")
		}
		out := make([]int64, n)
		for i := 0; i < n; i++ {
			out[i] = int64(getUint64(b[8*i:]))
		}
		return vector.NewFromInts(t, out), nil
	}
}

// rawValueAppend encodes a single value in the None per-value format
// (shared by the RLE and dictionary encoders).
func rawValueAppend(buf []byte, t types.Type, v *vector.Vector, i int) []byte {
	switch t {
	case types.Float64:
		return appendUint64(buf, math.Float64bits(v.Floats[i]))
	case types.Varchar:
		s := v.Strs[i]
		buf = appendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	default:
		return appendUint64(buf, uint64(v.Ints[i]))
	}
}

// rawValueDecode decodes a single value in the None per-value format,
// appending it to out and returning the bytes consumed.
func rawValueDecode(b []byte, t types.Type, out *vector.Vector) (int, error) {
	switch t {
	case types.Float64:
		if len(b) < 8 {
			return 0, fmt.Errorf("encoding: truncated float value")
		}
		out.Floats = append(out.Floats, math.Float64frombits(getUint64(b)))
		return 8, nil
	case types.Varchar:
		l, sz := uvarint(b)
		if sz <= 0 || sz+int(l) > len(b) {
			return 0, fmt.Errorf("encoding: truncated string value")
		}
		out.Strs = append(out.Strs, string(b[sz:sz+int(l)]))
		return sz + int(l), nil
	default:
		if len(b) < 8 {
			return 0, fmt.Errorf("encoding: truncated int value")
		}
		out.Ints = append(out.Ints, int64(getUint64(b)))
		return 8, nil
	}
}
