package encoding

import (
	"container/heap"
	"fmt"
	"sort"
)

// Canonical Huffman coding over small symbol alphabets, used by the
// Compressed Common Delta encoding to entropy-code delta-dictionary indexes
// (paper §3.4.1: "stores indexes into the dictionary using entropy coding").

const maxHuffmanCodeLen = 56 // fits in a uint64 accumulator with room to spare

// huffmanCodeLengths computes canonical code lengths for the given symbol
// frequencies (freq[i] > 0 for used symbols). Single-symbol alphabets get
// length 1.
func huffmanCodeLengths(freq []int) ([]int, error) {
	var nodes []huffNode
	var live []int
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, huffNode{weight: f, sym: s, left: -1, right: -1})
			live = append(live, len(nodes)-1)
		}
	}
	if len(live) == 0 {
		return make([]int, len(freq)), nil
	}
	if len(live) == 1 {
		out := make([]int, len(freq))
		out[nodes[live[0]].sym] = 1
		return out, nil
	}
	h := &nodeHeap{nodes: &nodes, idx: live}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		nodes = append(nodes, huffNode{
			weight: nodes[a].weight + nodes[b].weight,
			sym:    -1, left: a, right: b,
		})
		heap.Push(h, len(nodes)-1)
	}
	root := h.idx[0]
	out := make([]int, len(freq))
	var walk func(n, depth int) error
	walk = func(n, depth int) error {
		if depth > maxHuffmanCodeLen {
			return fmt.Errorf("encoding: huffman code too long (%d)", depth)
		}
		nd := nodes[n]
		if nd.sym >= 0 {
			out[nd.sym] = depth
			return nil
		}
		if err := walk(nd.left, depth+1); err != nil {
			return err
		}
		return walk(nd.right, depth+1)
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// huffNode is one node of the Huffman construction forest; leaves carry a
// symbol (sym >= 0), internal nodes carry child indexes.
type huffNode struct {
	weight      int
	sym         int
	left, right int
}

type nodeHeap struct {
	nodes *[]huffNode
	idx   []int
}

func (h *nodeHeap) Len() int { return len(h.idx) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := (*h.nodes)[h.idx[i]], (*h.nodes)[h.idx[j]]
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	return h.idx[i] < h.idx[j] // deterministic tie-break
}
func (h *nodeHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *nodeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// canonicalCodes assigns canonical codes (numerically increasing with length,
// then symbol order) from code lengths. Returns code bits per symbol.
func canonicalCodes(lengths []int) []uint64 {
	type sl struct{ sym, length int }
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].length != syms[j].length {
			return syms[i].length < syms[j].length
		}
		return syms[i].sym < syms[j].sym
	})
	codes := make([]uint64, len(lengths))
	var code uint64
	prevLen := 0
	for _, s := range syms {
		code <<= uint(s.length - prevLen)
		codes[s.sym] = code
		code++
		prevLen = s.length
	}
	return codes
}

// huffmanEncode writes lengths table (uvarint per symbol) + uvarint bit count
// + MSB-first bitstream of the symbols.
func huffmanEncode(buf []byte, symCount int, lengths []int, syms []int) []byte {
	buf = appendUvarint(buf, uint64(symCount))
	for s := 0; s < symCount; s++ {
		buf = appendUvarint(buf, uint64(lengths[s]))
	}
	codes := canonicalCodes(lengths)
	totalBits := 0
	for _, s := range syms {
		totalBits += lengths[s]
	}
	buf = appendUvarint(buf, uint64(totalBits))
	var acc uint64
	accBits := 0
	for _, s := range syms {
		l := lengths[s]
		acc = acc<<uint(l) | codes[s]
		accBits += l
		for accBits >= 8 {
			buf = append(buf, byte(acc>>uint(accBits-8)))
			accBits -= 8
		}
	}
	if accBits > 0 {
		buf = append(buf, byte(acc<<uint(8-accBits)))
	}
	return buf
}

// huffmanDecode reads what huffmanEncode wrote, returning n decoded symbols
// and the number of payload bytes consumed.
func huffmanDecode(b []byte, n int) ([]int, int, error) {
	sc64, sz := uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("encoding: corrupt huffman symbol count")
	}
	if sc64 > uint64(len(b)) { // every length entry costs ≥ 1 byte
		return nil, 0, fmt.Errorf("encoding: huffman symbol count %d exceeds payload", sc64)
	}
	pos := sz
	symCount := int(sc64)
	lengths := make([]int, symCount)
	for s := 0; s < symCount; s++ {
		l, sz := uvarint(b[pos:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("encoding: corrupt huffman length table")
		}
		if l > 64 { // codes are accumulated in a uint64
			return nil, 0, fmt.Errorf("encoding: huffman code length %d exceeds 64 bits", l)
		}
		lengths[s] = int(l)
		pos += sz
	}
	bits64, sz := uvarint(b[pos:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("encoding: corrupt huffman bit count")
	}
	pos += sz
	totalBits := int(bits64)
	byteLen := (totalBits + 7) / 8
	if pos+byteLen > len(b) {
		return nil, 0, fmt.Errorf("encoding: truncated huffman bitstream")
	}
	stream := b[pos : pos+byteLen]
	pos += byteLen

	// Canonical decode tables: because codes are assigned numerically
	// increasing by (length, symbol), a code c of length l is valid iff
	// firstCode[l] <= c < firstCode[l]+count[l], and its symbol is the
	// (c-firstCode[l])-th symbol of length l in symbol order. Array math per
	// bit, no per-symbol map probes.
	maxLen := 0
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen == 0 && n > 0 {
		return nil, 0, fmt.Errorf("encoding: huffman table has no codes")
	}
	// One spare slot past maxLen: the accumulator reaches maxLen+1 before
	// the top-of-loop overflow check fires, and must find no match there.
	count := make([]int, maxLen+2)
	for _, l := range lengths {
		if l > 0 {
			count[l]++
		}
	}
	firstCode := make([]uint64, maxLen+2)
	offset := make([]int, maxLen+2)
	var code uint64
	idx := 0
	for l := 1; l <= maxLen; l++ {
		firstCode[l] = code
		offset[l] = idx
		code = (code + uint64(count[l])) << 1
		idx += count[l]
	}
	symOfRank := make([]int, idx)
	rank := append([]int(nil), offset...)
	for s, l := range lengths {
		if l > 0 {
			symOfRank[rank[l]] = s
			rank[l]++
		}
	}

	out := make([]int, 0, n)
	var acc uint64
	accLen := 0
	bitPos := 0
	for len(out) < n {
		if accLen > maxLen {
			return nil, 0, fmt.Errorf("encoding: invalid huffman stream")
		}
		if bitPos >= totalBits && accLen == 0 {
			return nil, 0, fmt.Errorf("encoding: huffman stream exhausted after %d of %d symbols", len(out), n)
		}
		if bitPos < totalBits {
			acc = acc<<1 | uint64(stream[bitPos>>3]>>(7-bitPos&7)&1)
			bitPos++
			accLen++
		} else {
			return nil, 0, fmt.Errorf("encoding: huffman stream exhausted mid-symbol")
		}
		if r := acc - firstCode[accLen]; acc >= firstCode[accLen] && r < uint64(count[accLen]) {
			out = append(out, symOfRank[offset[accLen]+int(r)])
			acc, accLen = 0, 0
		}
	}
	return out, pos, nil
}
