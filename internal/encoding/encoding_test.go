package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
	"repro/internal/vector"
)

// roundTrip encodes v with kind, decodes it back, and compares every value.
func roundTrip(t *testing.T, kind Kind, v *vector.Vector) []byte {
	t.Helper()
	enc, err := EncodeBlock(kind, v)
	if err != nil {
		t.Fatalf("EncodeBlock(%s): %v", kind, err)
	}
	dec, err := DecodeBlock(enc, v.Typ, false)
	if err != nil {
		t.Fatalf("DecodeBlock(%s): %v", kind, err)
	}
	if dec.Len() != v.Len() {
		t.Fatalf("%s: decoded %d rows, want %d", kind, dec.Len(), v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		want, got := v.ValueAt(i), dec.ValueAt(i)
		if want.Null != got.Null || (!want.Null && want.Compare(got) != 0) {
			t.Fatalf("%s: row %d = %v, want %v", kind, i, got, want)
		}
	}
	return enc
}

func intVec(vals ...int64) *vector.Vector { return vector.NewFromInts(types.Int64, vals) }

func TestRoundTripAllKindsInt(t *testing.T) {
	data := intVec(5, 5, 5, 9, 9, 100, 101, 102, 103, 5)
	for _, k := range []Kind{None, RLE, DeltaValue, BlockDict, CompressedDeltaRange, CompressedCommonDelta} {
		roundTrip(t, k, data)
	}
}

func TestRoundTripAllKindsFloat(t *testing.T) {
	data := vector.NewFromFloats([]float64{1.5, 1.5, 2.25, 100.0, 98.5, 0, -3.75})
	for _, k := range []Kind{None, RLE, BlockDict, CompressedDeltaRange} {
		roundTrip(t, k, data)
	}
}

func TestRoundTripAllKindsString(t *testing.T) {
	data := vector.NewFromStrings([]string{"cpu", "cpu", "mem", "disk", "", "cpu"})
	for _, k := range []Kind{None, RLE, BlockDict} {
		roundTrip(t, k, data)
	}
}

func TestRoundTripWithNulls(t *testing.T) {
	v := vector.New(types.Int64, 6)
	v.AppendNull()
	v.AppendNull()
	v.AppendValue(types.NewInt(7))
	v.AppendValue(types.NewInt(7))
	v.AppendNull()
	v.AppendValue(types.NewInt(9))
	for _, k := range []Kind{None, RLE, DeltaValue, BlockDict, CompressedDeltaRange, CompressedCommonDelta} {
		roundTrip(t, k, v)
	}
}

func TestRoundTripEmptyAndSingle(t *testing.T) {
	for _, k := range []Kind{None, RLE, DeltaValue, BlockDict, CompressedDeltaRange, CompressedCommonDelta} {
		roundTrip(t, k, intVec())
		roundTrip(t, k, intVec(42))
	}
}

func TestRoundTripNegativeAndExtremes(t *testing.T) {
	data := intVec(-1, -9223372036854775808, 9223372036854775807, 0, -1)
	for _, k := range []Kind{None, RLE, BlockDict, CompressedDeltaRange} {
		roundTrip(t, k, data)
	}
}

func TestRLEPreservesRuns(t *testing.T) {
	data := intVec(3, 3, 3, 3, 8, 8, 1)
	enc, err := EncodeBlock(RLE, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBlock(enc, types.Int64, true)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.IsRLE() {
		t.Fatal("expected RLE-form vector")
	}
	if len(dec.RunLens) != 3 || dec.RunLens[0] != 4 || dec.RunLens[1] != 2 || dec.RunLens[2] != 1 {
		t.Errorf("runs = %v", dec.RunLens)
	}
	if dec.Ints[0] != 3 || dec.Ints[1] != 8 || dec.Ints[2] != 1 {
		t.Errorf("run values = %v", dec.Ints)
	}
	if dec.Len() != 7 {
		t.Errorf("logical len = %d", dec.Len())
	}
}

func TestRLECompressesSortedLowCardinality(t *testing.T) {
	// Paper §3.4.1: RLE is best for low cardinality sorted columns.
	v := vector.New(types.Int64, 4096)
	for i := 0; i < 4096; i++ {
		v.AppendValue(types.NewInt(int64(i / 1024))) // 4 distinct values, sorted
	}
	enc, _ := EncodeBlock(RLE, v)
	raw, _ := EncodeBlock(None, v)
	if len(enc)*100 > len(raw) {
		t.Errorf("RLE %d bytes vs raw %d bytes: expected >100x compression", len(enc), len(raw))
	}
}

func TestDeltaValueCompressesClusteredInts(t *testing.T) {
	// Many-valued unsorted integers confined to a narrow range.
	rng := rand.New(rand.NewSource(1))
	v := vector.New(types.Int64, 4096)
	for i := 0; i < 4096; i++ {
		v.AppendValue(types.NewInt(1_000_000_000 + rng.Int63n(1000)))
	}
	enc, _ := EncodeBlock(DeltaValue, v)
	raw, _ := EncodeBlock(None, v)
	if len(enc)*3 > len(raw) {
		t.Errorf("DELTAVAL %d vs raw %d: expected >3x compression", len(enc), len(raw))
	}
}

func TestBlockDictCompressesFewValued(t *testing.T) {
	// Paper §3.4.1: best for few-valued, unsorted columns such as stock prices.
	rng := rand.New(rand.NewSource(2))
	prices := []float64{99.5, 100.0, 100.25, 100.5, 101.0}
	v := vector.New(types.Float64, 4096)
	for i := 0; i < 4096; i++ {
		v.AppendValue(types.NewFloat(prices[rng.Intn(len(prices))]))
	}
	enc, _ := EncodeBlock(BlockDict, v)
	raw, _ := EncodeBlock(None, v)
	if len(enc)*10 > len(raw) {
		t.Errorf("BLOCK_DICT %d vs raw %d: expected >10x compression", len(enc), len(raw))
	}
}

func TestCommonDeltaCompressesPeriodicTimestamps(t *testing.T) {
	// Paper §3.4.1: ideal for timestamps recorded at periodic intervals.
	v := vector.New(types.Timestamp, 4096)
	ts := int64(1_600_000_000_000_000)
	for i := 0; i < 4096; i++ {
		v.AppendValue(types.NewTimestampMicros(ts))
		ts += 300_000_000 // every 5 minutes
		if i%500 == 499 {
			ts += 7_000_000 // occasional sequence break
		}
	}
	enc, _ := EncodeBlock(CompressedCommonDelta, v)
	raw, _ := EncodeBlock(None, v)
	if len(enc)*20 > len(raw) {
		t.Errorf("COMMONDELTA_COMP %d vs raw %d: expected >20x compression", len(enc), len(raw))
	}
	roundTrip(t, CompressedCommonDelta, v)
}

func TestDeltaRangeCompressesSortedFloats(t *testing.T) {
	v := vector.New(types.Float64, 4096)
	x := 100.0
	for i := 0; i < 4096; i++ {
		v.AppendValue(types.NewFloat(x))
		x += 0.25
	}
	enc, _ := EncodeBlock(CompressedDeltaRange, v)
	raw, _ := EncodeBlock(None, v)
	if len(enc)*2 > len(raw) {
		t.Errorf("DELTARANGE_COMP %d vs raw %d: expected >2x compression", len(enc), len(raw))
	}
}

func TestAutoPicksRLEForSorted(t *testing.T) {
	v := vector.New(types.Int64, 1000)
	for i := 0; i < 1000; i++ {
		v.AppendValue(types.NewInt(int64(i / 250)))
	}
	if k := Choose(v); k != RLE {
		t.Errorf("Choose picked %s for sorted low-cardinality data, want RLE", k)
	}
}

func TestAutoNeverReturnsAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := vector.New(types.Int64, 100)
	for i := 0; i < 100; i++ {
		v.AppendValue(types.NewInt(rng.Int63()))
	}
	if k := Choose(v); k == Auto {
		t.Error("Choose returned Auto")
	}
}

func TestAutoEncodeBlockResolves(t *testing.T) {
	v := intVec(1, 1, 1, 1, 1, 1)
	enc, err := EncodeBlock(Auto, v)
	if err != nil {
		t.Fatal(err)
	}
	k, err := BlockKind(enc)
	if err != nil || k == Auto {
		t.Errorf("stored kind = %v, %v", k, err)
	}
	dec, err := DecodeBlock(enc, types.Int64, false)
	if err != nil || dec.Len() != 6 {
		t.Fatalf("decode after auto: %v", err)
	}
}

func TestApplicability(t *testing.T) {
	if DeltaValue.Applicable(types.Varchar) || DeltaValue.Applicable(types.Float64) {
		t.Error("DELTAVAL should be integral-only")
	}
	if CompressedCommonDelta.Applicable(types.Float64) {
		t.Error("COMMONDELTA_COMP should be integral-only")
	}
	if !CompressedDeltaRange.Applicable(types.Float64) {
		t.Error("DELTARANGE_COMP should accept floats")
	}
	if !RLE.Applicable(types.Varchar) || !BlockDict.Applicable(types.Varchar) {
		t.Error("RLE/BLOCK_DICT should accept strings")
	}
	if _, err := EncodeBlock(DeltaValue, vector.NewFromStrings([]string{"x"})); err == nil {
		t.Error("encoding strings with DELTAVAL should fail")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{None, Auto, RLE, DeltaValue, BlockDict, CompressedDeltaRange, CompressedCommonDelta} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("LZ4"); err == nil {
		t.Error("ParseKind(LZ4) should fail")
	}
}

func TestDecodeCorruptBlocks(t *testing.T) {
	if _, err := DecodeBlock(nil, types.Int64, false); err == nil {
		t.Error("nil block should fail")
	}
	if _, err := DecodeBlock([]byte{byte(RLE)}, types.Int64, false); err == nil {
		t.Error("truncated block should fail")
	}
	if _, err := DecodeBlock([]byte{99, 1, 0}, types.Int64, false); err == nil {
		t.Error("unknown kind should fail")
	}
	// Valid header, truncated payload.
	v := intVec(1, 2, 3, 4, 5, 6, 7, 8)
	enc, _ := EncodeBlock(None, v)
	if _, err := DecodeBlock(enc[:len(enc)-4], types.Int64, false); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestQuickRoundTripIntsAllKinds(t *testing.T) {
	f := func(vals []int64) bool {
		v := intVec(vals...)
		for _, k := range []Kind{None, RLE, BlockDict, CompressedDeltaRange} {
			enc, err := EncodeBlock(k, v)
			if err != nil {
				return false
			}
			dec, err := DecodeBlock(enc, types.Int64, false)
			if err != nil || dec.Len() != len(vals) {
				return false
			}
			for i, want := range vals {
				if dec.Ints[i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripFloats(t *testing.T) {
	f := func(vals []float64) bool {
		v := vector.NewFromFloats(vals)
		for _, k := range []Kind{None, RLE, BlockDict, CompressedDeltaRange} {
			enc, err := EncodeBlock(k, v)
			if err != nil {
				return false
			}
			dec, err := DecodeBlock(enc, types.Float64, false)
			if err != nil || dec.Len() != len(vals) {
				return false
			}
			for i, want := range vals {
				got := dec.Floats[i]
				if got != want && !(got != got && want != want) { // NaN == NaN
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripStrings(t *testing.T) {
	f := func(vals []string) bool {
		v := vector.NewFromStrings(vals)
		for _, k := range []Kind{None, RLE, BlockDict} {
			enc, err := EncodeBlock(k, v)
			if err != nil {
				return false
			}
			dec, err := DecodeBlock(enc, types.Varchar, false)
			if err != nil || dec.Len() != len(vals) {
				return false
			}
			for i, want := range vals {
				if dec.Strs[i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickAutoAlwaysSmallestOrTied(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		v := intVec(vals...)
		chosen := Choose(v)
		sizes := TrialSizes(v)
		best := -1
		for _, s := range sizes {
			if best < 0 || s < best {
				best = s
			}
		}
		return sizes[chosen] == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	freq := []int{50, 30, 10, 5, 5}
	lengths, err := huffmanCodeLengths(freq)
	if err != nil {
		t.Fatal(err)
	}
	// Kraft inequality must hold with equality for a complete code.
	var kraft float64
	for _, l := range lengths {
		if l > 0 {
			kraft += 1 / float64(uint64(1)<<uint(l))
		}
	}
	if kraft > 1.0000001 {
		t.Errorf("Kraft sum %f > 1", kraft)
	}
	syms := []int{0, 1, 2, 3, 4, 0, 0, 1, 2, 0, 4, 3, 2, 1, 0}
	enc := huffmanEncode(nil, len(freq), lengths, syms)
	dec, _, err := huffmanDecode(enc, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range syms {
		if dec[i] != s {
			t.Fatalf("symbol %d = %d, want %d", i, dec[i], s)
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	lengths, err := huffmanCodeLengths([]int{100})
	if err != nil || lengths[0] != 1 {
		t.Fatalf("single-symbol lengths = %v, %v", lengths, err)
	}
	syms := []int{0, 0, 0, 0}
	enc := huffmanEncode(nil, 1, lengths, syms)
	dec, _, err := huffmanDecode(enc, 4)
	if err != nil || len(dec) != 4 {
		t.Fatalf("single-symbol decode: %v %v", dec, err)
	}
}

func TestBitPackRoundTrip(t *testing.T) {
	f := func(raw []uint8, width8 uint8) bool {
		width := int(width8%16) + 1
		vals := make([]int, len(raw))
		for i, r := range raw {
			vals[i] = int(r) % (1 << uint(width))
		}
		buf := packBits(nil, vals, width)
		got, _ := unpackBits(buf, len(vals), width)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCommonDeltaDictTooLarge(t *testing.T) {
	// Random data has ~n distinct deltas; beyond maxCommonDeltaDict the
	// encoder must refuse rather than bloat.
	rng := rand.New(rand.NewSource(4))
	v := vector.New(types.Int64, maxCommonDeltaDict+100)
	for i := 0; i < maxCommonDeltaDict+100; i++ {
		v.AppendValue(types.NewInt(rng.Int63n(1 << 40)))
	}
	if _, err := EncodeBlock(CompressedCommonDelta, v); err == nil {
		t.Error("expected dictionary-overflow error on random data")
	}
}
