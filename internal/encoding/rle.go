package encoding

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/vector"
)

// RLE payload: uvarint runCount, then per run: raw value + uvarint runLength.
// Null slots participate in runs via their zero value; the null bitmap in the
// block header restores them (null runs therefore compress exactly like value
// runs when the column is sorted NULLS FIRST).

func encodeRLE(buf []byte, v *vector.Vector) ([]byte, error) {
	n := v.PhysLen()
	type run struct {
		start int
		count int
	}
	var runs []run
	for i := 0; i < n; i++ {
		if len(runs) > 0 && sameSlot(v, runs[len(runs)-1].start, i) {
			runs[len(runs)-1].count++
			continue
		}
		runs = append(runs, run{start: i, count: 1})
	}
	buf = appendUvarint(buf, uint64(len(runs)))
	for _, r := range runs {
		buf = rawValueAppend(buf, v.Typ, v, r.start)
		buf = appendUvarint(buf, uint64(r.count))
	}
	return buf, nil
}

// sameSlot reports whether physical slots i and j hold identical content
// (treating any two NULL slots as equal for run purposes only when their
// zero values also match, which they always do).
func sameSlot(v *vector.Vector, i, j int) bool {
	ni, nj := v.NullAt(i), v.NullAt(j)
	if ni != nj {
		return false
	}
	switch v.Typ {
	case types.Float64:
		return v.Floats[i] == v.Floats[j]
	case types.Varchar:
		return v.Strs[i] == v.Strs[j]
	default:
		return v.Ints[i] == v.Ints[j]
	}
}

func decodeRLE(b []byte, t types.Type, n int, preserveRuns bool) (*vector.Vector, error) {
	rc, sz := uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("encoding: corrupt RLE run count")
	}
	// Every run costs at least two payload bytes (value + length), and no
	// run may claim more rows than the block holds: reject before any
	// count-sized allocation or expansion loop.
	if rc > uint64(len(b))/2 {
		return nil, fmt.Errorf("encoding: RLE run count %d exceeds payload", rc)
	}
	pos := sz
	if preserveRuns {
		out := vector.New(t, int(rc))
		out.RunLens = make([]int, 0, rc)
		total := 0
		for r := 0; r < int(rc); r++ {
			used, err := rawValueDecode(b[pos:], t, out)
			if err != nil {
				return nil, err
			}
			pos += used
			rl, sz := uvarint(b[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("encoding: corrupt RLE run length")
			}
			if rl > uint64(n) {
				return nil, fmt.Errorf("encoding: RLE run length %d exceeds row count %d", rl, n)
			}
			pos += sz
			out.RunLens = append(out.RunLens, int(rl))
			total += int(rl)
		}
		if total != n {
			return nil, fmt.Errorf("encoding: RLE run total %d != row count %d", total, n)
		}
		return out, nil
	}
	out := vector.New(t, n)
	scratch := vector.New(t, 1)
	total := 0
	for r := 0; r < int(rc); r++ {
		scratch.Ints = scratch.Ints[:0]
		scratch.Floats = scratch.Floats[:0]
		scratch.Strs = scratch.Strs[:0]
		used, err := rawValueDecode(b[pos:], t, scratch)
		if err != nil {
			return nil, err
		}
		pos += used
		rl, sz := uvarint(b[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("encoding: corrupt RLE run length")
		}
		if rl > uint64(n) {
			return nil, fmt.Errorf("encoding: RLE run length %d exceeds row count %d", rl, n)
		}
		pos += sz
		val := scratch.ValueAt(0)
		for k := 0; k < int(rl); k++ {
			out.AppendValue(val)
		}
		total += int(rl)
	}
	if total != n {
		return nil, fmt.Errorf("encoding: RLE run total %d != row count %d", total, n)
	}
	return out, nil
}
