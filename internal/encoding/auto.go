package encoding

import (
	"repro/internal/types"
	"repro/internal/vector"
)

// Auto encoding selection (paper §3.4.1: "the system automatically picks the
// most advantageous encoding type based on properties of the data itself").
//
// Like the Database Designer's storage-optimization phase (paper §6.3), the
// choice is empirical: encode the block with every applicable candidate and
// keep the smallest. Ties favour the cheaper-to-decode scheme (declaration
// order below).

// candidateKinds returns the encodings worth trying for a column type, in
// decode-cost order (cheapest first, used to break size ties).
func candidateKinds(t types.Type) []Kind {
	switch {
	case t == types.Float64:
		return []Kind{RLE, CompressedDeltaRange, BlockDict, None}
	case t == types.Varchar:
		return []Kind{RLE, BlockDict, None}
	default:
		return []Kind{RLE, DeltaValue, CompressedCommonDelta, BlockDict, CompressedDeltaRange, None}
	}
}

// Choose picks the most advantageous concrete encoding for the block by
// trial encoding. It never returns Auto.
func Choose(v *vector.Vector) Kind {
	if v.IsRLE() {
		return RLE
	}
	best := None
	bestSize := -1
	for _, k := range candidateKinds(v.Typ) {
		enc, err := EncodeBlock(k, v)
		if err != nil {
			continue
		}
		if bestSize < 0 || len(enc) < bestSize {
			best, bestSize = k, len(enc)
		}
	}
	return best
}

// TrialSizes encodes the block with every applicable scheme and returns the
// encoded size per kind; used by the Database Designer's empirical encoding
// experiments and by tests.
func TrialSizes(v *vector.Vector) map[Kind]int {
	out := make(map[Kind]int)
	for _, k := range candidateKinds(v.Typ) {
		enc, err := EncodeBlock(k, v)
		if err != nil {
			continue
		}
		out[k] = len(enc)
	}
	return out
}
