package encoding

import "encoding/binary"

// Varint / zigzag / bit-packing primitives shared by the block encoders.

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func uvarint(b []byte) (uint64, int) { return binary.Uvarint(b) }

func varint(b []byte) (int64, int) { return binary.Varint(b) }

func appendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func getUint64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// bitWidth returns the number of bits needed to represent values in [0, n).
func bitWidth(n int) int {
	if n <= 1 {
		return 1
	}
	w := 0
	for x := n - 1; x > 0; x >>= 1 {
		w++
	}
	return w
}

// packBits appends n values of the given bit width (LSB-first within bytes).
func packBits(buf []byte, vals []int, width int) []byte {
	var cur uint64
	bits := 0
	for _, v := range vals {
		cur |= uint64(v) << bits
		bits += width
		for bits >= 8 {
			buf = append(buf, byte(cur))
			cur >>= 8
			bits -= 8
		}
	}
	if bits > 0 {
		buf = append(buf, byte(cur))
	}
	return buf
}

// unpackBits reads n values of the given bit width.
func unpackBits(b []byte, n, width int) ([]int, int) {
	out := make([]int, n)
	var cur uint64
	bits := 0
	pos := 0
	mask := uint64(1)<<width - 1
	for i := 0; i < n; i++ {
		for bits < width {
			if pos >= len(b) {
				return nil, -1
			}
			cur |= uint64(b[pos]) << bits
			pos++
			bits += 8
		}
		out[i] = int(cur & mask)
		cur >>= width
		bits -= width
	}
	return out, pos
}
