package encoding

import (
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

// FuzzDecode feeds arbitrary bytes to the block decoder under every type and
// both run-preservation modes: malformed blocks must produce errors, never
// panics or runaway allocations. Valid seed blocks come from round-tripping
// each encoder so the fuzzer starts inside the format.
func FuzzDecode(f *testing.F) {
	ints := make([]int64, 300)
	for i := range ints {
		ints[i] = int64(i / 10)
	}
	intVec := vector.NewFromInts(types.Int64, ints)
	strs := make([]string, 100)
	for i := range strs {
		strs[i] = []string{"ny", "sf", "la"}[i%3]
	}
	strVec := vector.NewFromStrings(strs)
	floats := make([]float64, 100)
	for i := range floats {
		floats[i] = float64(i) * 1.5
	}
	floatVec := vector.NewFromFloats(floats)

	kinds := []Kind{None, RLE, DeltaValue, BlockDict, CompressedDeltaRange, CompressedCommonDelta}
	for _, kind := range kinds {
		for _, v := range []*vector.Vector{intVec, strVec, floatVec} {
			if !kind.Applicable(v.Typ) {
				continue
			}
			if b, err := EncodeBlock(kind, v); err == nil {
				f.Add(b, uint8(v.Typ), false)
				f.Add(b, uint8(v.Typ), true)
			}
		}
	}
	f.Add([]byte{}, uint8(types.Int64), false)
	f.Add([]byte{0xff, 0x00, 0x01}, uint8(types.Varchar), true)

	f.Fuzz(func(t *testing.T, data []byte, typ uint8, preserveRuns bool) {
		tt := types.Type(typ)
		switch tt {
		case types.Int64, types.Float64, types.Varchar, types.Bool, types.Timestamp:
		default:
			tt = types.Int64
		}
		v, err := DecodeBlock(data, tt, preserveRuns)
		if err != nil {
			return
		}
		// A successful decode must yield a self-consistent vector (ValueAt
		// indexes physical entries: runs count once in RLE form).
		for i := 0; i < v.PhysLen(); i++ {
			_ = v.ValueAt(i)
		}
		_ = v.Len()
	})
}
