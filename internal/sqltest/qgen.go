// Deterministic random query generation for the TLP metamorphic oracle
// (tlp.go). The generator is seeded: a failing predicate is reproduced by
// re-running with the seed printed in the failure message.
package sqltest

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/types"
)

// ColProfile describes one generatable column: its name, type, and SQL
// literals sampled from the table's actual data (so generated comparisons
// hit interesting selectivities instead of always-empty ranges).
type ColProfile struct {
	Name    string
	Typ     types.Type
	Samples []string // rendered SQL literals; never NULL
}

// TableProfile describes one table the generator can build predicates over.
type TableProfile struct {
	Name string
	Cols []ColProfile
}

// QGen generates random boolean predicates over profiled tables. All
// randomness flows from the seed, so a run is fully determined by
// (seed, profiles, call sequence).
type QGen struct {
	rng    *rand.Rand
	tables []TableProfile
}

// NewQGen builds a generator over the given table profiles.
func NewQGen(seed int64, tables []TableProfile) *QGen {
	return &QGen{rng: rand.New(rand.NewSource(seed)), tables: tables}
}

// NextPredicate picks a table and generates a boolean predicate over its
// columns. Predicates mix comparisons, BETWEEN, IN, IS [NOT] NULL and
// AND/OR/NOT composition; under SQL's ternary logic each may evaluate to
// TRUE, FALSE or NULL, which is exactly what TLP partitions on.
func (g *QGen) NextPredicate() (TableProfile, string) {
	t := g.tables[g.rng.Intn(len(g.tables))]
	return t, g.boolExpr(t, 2)
}

func (g *QGen) boolExpr(t TableProfile, depth int) string {
	if depth <= 0 || g.rng.Intn(100) < 40 {
		return g.leaf(t)
	}
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s AND %s)", g.boolExpr(t, depth-1), g.boolExpr(t, depth-1))
	case 1:
		return fmt.Sprintf("(%s OR %s)", g.boolExpr(t, depth-1), g.boolExpr(t, depth-1))
	default:
		return fmt.Sprintf("NOT (%s)", g.boolExpr(t, depth-1))
	}
}

var cmpOps = []string{"=", "<>", "<", "<=", ">", ">="}

func (g *QGen) leaf(t TableProfile) string {
	c := t.Cols[g.rng.Intn(len(t.Cols))]
	if len(c.Samples) == 0 {
		// All-NULL (or unsampled) column: only nullness tests are useful.
		if g.rng.Intn(2) == 0 {
			return c.Name + " IS NULL"
		}
		return c.Name + " IS NOT NULL"
	}
	switch g.rng.Intn(100) {
	case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9:
		return c.Name + " IS NULL"
	case 10, 11, 12, 13, 14, 15, 16, 17, 18, 19:
		return c.Name + " IS NOT NULL"
	case 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34:
		a, b := g.literal(c), g.literal(c)
		return fmt.Sprintf("%s BETWEEN %s AND %s", c.Name, a, b)
	case 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49:
		// IN lists admit only plain literals (no expressions) per the
		// grammar, so draw raw samples rather than perturbed literals.
		n := 1 + g.rng.Intn(3)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = c.Samples[g.rng.Intn(len(c.Samples))]
		}
		not := ""
		if g.rng.Intn(3) == 0 {
			not = "NOT "
		}
		return fmt.Sprintf("%s %sIN (%s)", c.Name, not, strings.Join(vals, ", "))
	default:
		return fmt.Sprintf("%s %s %s", c.Name, cmpOps[g.rng.Intn(len(cmpOps))], g.literal(c))
	}
}

// literal draws a comparison literal for a column: usually one of the
// sampled data values, occasionally a perturbed or out-of-domain value so
// empty and full selections are generated too.
func (g *QGen) literal(c ColProfile) string {
	s := c.Samples[g.rng.Intn(len(c.Samples))]
	if g.rng.Intn(4) != 0 {
		return s
	}
	switch c.Typ {
	case types.Int64:
		return fmt.Sprintf("(%s + %d)", s, g.rng.Intn(7)-3)
	case types.Float64:
		return fmt.Sprintf("(%s + %d.5)", s, g.rng.Intn(3)-1)
	case types.Varchar:
		return "'zzz_none'"
	default:
		return s
	}
}

// GeneratedTLPSetup deterministically builds DDL + multi-row INSERTs for a
// NULL-heavy mixed-type table, so TLP also runs over data that no .slt
// golden happens to define (every type, ~15% NULLs per nullable column,
// duplicate rows, quote-bearing strings).
func GeneratedTLPSetup(seed int64, rows int) []string {
	rng := rand.New(rand.NewSource(seed))
	stmts := []string{
		"CREATE TABLE tlp_data (id INT, grp INT, val FLOAT, name VARCHAR, flag BOOL, ts TIMESTAMP)",
		"CREATE PROJECTION tlp_data_super ON tlp_data (id, grp, val, name, flag, ts) ORDER BY grp",
	}
	names := []string{"alpha", "beta", "gamma", "o'brien", ""}
	base := time.Date(2012, 8, 27, 10, 0, 0, 0, time.UTC)
	null := func() bool { return rng.Intn(100) < 15 }
	var batch []string
	flush := func() {
		if len(batch) > 0 {
			stmts = append(stmts, "INSERT INTO tlp_data VALUES "+strings.Join(batch, ", "))
			batch = nil
		}
	}
	for i := 0; i < rows; i++ {
		grp, val, name, flag, ts := "NULL", "NULL", "NULL", "NULL", "NULL"
		if !null() {
			grp = fmt.Sprintf("%d", rng.Intn(8))
		}
		if !null() {
			// Exactly representable halves keep float SUMs ulp-stable
			// under parallel re-association.
			val = fmt.Sprintf("%d.5", rng.Intn(40)-20)
		}
		if !null() {
			name, _ = SampleLiteral(types.NewString(names[rng.Intn(len(names))]))
		}
		if !null() {
			if rng.Intn(2) == 0 {
				flag = "TRUE"
			} else {
				flag = "FALSE"
			}
		}
		if !null() {
			t := base.Add(time.Duration(rng.Intn(72)) * time.Hour)
			ts = "TIMESTAMP '" + t.Format("2006-01-02 15:04:05") + "'"
		}
		// Duplicate ids (id%32) make multiset-vs-set distinctions matter.
		batch = append(batch, fmt.Sprintf("(%d, %s, %s, %s, %s, %s)", i%32, grp, val, name, flag, ts))
		if len(batch) == 50 {
			flush()
		}
	}
	flush()
	return stmts
}

// SampleLiteral renders a value as a SQL literal for the generator's sample
// pools (strings quoted with ” doubling, timestamps with the TIMESTAMP
// prefix). NULLs must not be sampled; they are reached via IS NULL.
func SampleLiteral(v types.Value) (string, bool) {
	if v.Null {
		return "", false
	}
	switch v.Typ {
	case types.Varchar:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'", true
	case types.Timestamp:
		return "TIMESTAMP '" + v.String() + "'", true
	case types.Bool:
		if v.Bool() {
			return "TRUE", true
		}
		return "FALSE", true
	default:
		return v.String(), true
	}
}
