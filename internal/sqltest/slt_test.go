package sqltest

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSLTFiles runs every golden file under testdata against a fresh
// engine. Regenerate expectations with:
//
//	go test ./internal/sqltest -run TestSLTFiles -update
func TestSLTFiles(t *testing.T) {
	files, err := filepath.Glob("testdata/*.slt")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .slt files found")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			RunFile(t, f, DefaultOptions(t))
		})
	}
}

// TestHarnessRejectsMalformed covers the harness's own parser errors.
func TestHarnessRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"statement ok\n",
		"statement error\nSELECT 1 FROM t\n",
		"query\nSELECT 1 FROM t\n",
		"bogus directive\n",
		"session\n",
	} {
		dir := t.TempDir()
		path := filepath.Join(dir, "bad.slt")
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := parseFile(path); err == nil {
			t.Errorf("expected parse error for %q", bad)
		}
	}
}
