package sqltest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSLTFiles runs every golden file under testdata against a fresh
// engine. Regenerate expectations with:
//
//	go test ./internal/sqltest -run TestSLTFiles -update
func TestSLTFiles(t *testing.T) {
	files, err := filepath.Glob("testdata/*.slt")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .slt files found")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			opts := DefaultOptions(t)
			// parallel.slt pins the intra-node parallel plan shapes: it
			// runs 4-way with the cardinality gate dropped so the tiny
			// fixture still plans them. profile.slt does the same so its
			// PROFILE goldens cover a parallel shape next to serial ones
			// (scans without parallel-eligible operators still plan serial).
			switch filepath.Base(f) {
			case "parallel.slt", "profile.slt":
				opts.Parallelism = 4
				opts.ForceParallel = true
			}
			RunFile(t, f, opts)
		})
	}
}

// TestHarnessRejectsMalformed covers the harness's own parser errors.
func TestHarnessRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"statement ok\n",
		"statement error\nSELECT 1 FROM t\n",
		"query\nSELECT 1 FROM t\n",
		"query error\nSELECT 1 FROM t\n",
		"query error boom\n",
		"query error boom\nSELECT 1 FROM t\n----\n1\n",
		"bogus directive\n",
		"session\n",
	} {
		dir := t.TempDir()
		path := filepath.Join(dir, "bad.slt")
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := parseFile(path); err == nil {
			t.Errorf("expected parse error for %q", bad)
		}
	}
}

// TestSLTParallelDifferential runs every golden file twice — serial and
// 4-way parallel with the planner's cardinality gate dropped — and asserts
// identical results: the parallel-vs-serial equivalence oracle pinned in
// CI. EXPLAIN output and system-table queries are executed on both engines
// but not compared (plans and resource counters legitimately differ
// between the configurations).
func TestSLTParallelDifferential(t *testing.T) {
	files, err := filepath.Glob("testdata/*.slt")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .slt files found")
	}
	skip := func(sql string) bool {
		u := strings.ToUpper(strings.TrimSpace(sql))
		return strings.HasPrefix(u, "EXPLAIN") ||
			strings.HasPrefix(u, "PROFILE") ||
			strings.Contains(u, "V_MONITOR.") ||
			strings.Contains(u, "V_CATALOG.")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			serial := DefaultOptions(t)
			parallel := DefaultOptions(t)
			parallel.Parallelism = 4
			parallel.ForceParallel = true
			// Profiling on both sides: the equivalence oracle doubles as the
			// proof that operator timing never perturbs results.
			serial.Profile = true
			parallel.Profile = true
			RunFileDifferential(t, f, serial, parallel, skip)
		})
	}
}
