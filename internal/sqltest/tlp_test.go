package sqltest

import (
	"flag"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

var (
	tlpSeed       = flag.Int64("tlp.seed", 20120827, "seed for the TLP metamorphic query generator")
	tlpPredicates = flag.Int("tlp.queries", 16, "generated predicates per schema")
)

// TestTLPMetamorphic runs the TLP oracle over every .slt schema plus the
// generated mixed-type table. Each generated predicate produces a rowset
// check and an alternating aggregate/DISTINCT check, and every query runs
// on both a serial and a parallel engine — so a single run is a TLP oracle
// and a differential oracle at once. Failures print the seed and the exact
// partition SQL; re-run with -tlp.seed=<seed> to reproduce.
func TestTLPMetamorphic(t *testing.T) {
	files, err := filepath.Glob("testdata/*.slt")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .slt files found")
	}
	total := 0
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			st := RunTLP(t, TLPConfig{
				Seed:       *tlpSeed,
				Predicates: *tlpPredicates,
				Setup:      sltStatements(t, f),
			})
			total += st.Queries
		})
	}
	t.Run("generated", func(t *testing.T) {
		st := RunTLP(t, TLPConfig{
			Seed:       *tlpSeed,
			Predicates: *tlpPredicates * 2,
			Setup:      GeneratedTLPSetup(*tlpSeed, 200),
		})
		total += st.Queries
	})
	if total < 500 {
		t.Errorf("TLP executed %d generated queries, want >= 500 (raise -tlp.queries)", total)
	}
	t.Logf("TLP executed %d generated queries (seed=%d)", total, *tlpSeed)
}

// sltStatements extracts an .slt file's statement records for setup replay.
// `statement error` records are included: both engines fail on them
// identically, which RunTLP tolerates.
func sltStatements(t *testing.T, path string) []string {
	t.Helper()
	_, recs, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, r := range recs {
		if r.kind == "statement" {
			out = append(out, r.sql)
		}
	}
	return out
}

// TestTLPSelfCheck corrupts partition results on purpose and asserts every
// CheckTLP* variant catches it — guarding against an oracle that silently
// passes everything.
func TestTLPSelfCheck(t *testing.T) {
	all := []string{"1|x", "2|y", "2|y", "3|NULL"}
	p := []string{"1|x"}
	n := []string{"2|y", "2|y"}
	nl := []string{"3|NULL"}
	if err := CheckTLP(all, p, n, nl); err != nil {
		t.Fatalf("CheckTLP rejected a correct partitioning: %v", err)
	}
	if err := CheckTLP(all, p, []string{"2|y"}, nl); err == nil {
		t.Error("CheckTLP missed a dropped row")
	}
	if err := CheckTLP(all, p, n, []string{"3|NULL", "9|z"}); err == nil {
		t.Error("CheckTLP missed an extra row")
	}
	if err := CheckTLP(all, p, []string{"2|y", "2|z"}, nl); err == nil {
		t.Error("CheckTLP missed a mutated row")
	}

	if err := CheckTLPDistinct([]string{"a", "b"}, []string{"a"}, []string{"b", "a"}, nil); err != nil {
		t.Fatalf("CheckTLPDistinct rejected a correct partitioning: %v", err)
	}
	if err := CheckTLPDistinct([]string{"a", "b"}, []string{"a"}, nil, nil); err == nil {
		t.Error("CheckTLPDistinct missed a missing value")
	}
	if err := CheckTLPDistinct([]string{"a"}, []string{"a"}, []string{"b"}, nil); err == nil {
		t.Error("CheckTLPDistinct missed a spurious value")
	}

	ok := []string{"4|10"}
	if err := CheckTLPAggregate(ok, []string{"2|6"}, []string{"1|4"}, []string{"1|NULL"}); err != nil {
		t.Fatalf("CheckTLPAggregate rejected a correct partitioning: %v", err)
	}
	if err := CheckTLPAggregate(ok, []string{"2|6"}, []string{"1|5"}, []string{"1|NULL"}); err == nil {
		t.Error("CheckTLPAggregate missed a wrong SUM")
	}
	if err := CheckTLPAggregate(ok, []string{"1|6"}, []string{"1|4"}, []string{"1|NULL"}); err == nil {
		t.Error("CheckTLPAggregate missed a wrong COUNT")
	}
	if err := CheckTLPAggregate([]string{}, []string{"1|1"}, []string{"0|NULL"}, []string{"0|NULL"}); err == nil {
		t.Error("CheckTLPAggregate accepted a zero-row aggregate result")
	}
}

// TestQGenDeterminism pins that the generator is a pure function of its
// seed — the property the reproduce-by-seed workflow relies on.
func TestQGenDeterminism(t *testing.T) {
	prof := []TableProfile{{
		Name: "t",
		Cols: []ColProfile{
			{Name: "a", Typ: types.Int64, Samples: []string{"1", "2", "3"}},
			{Name: "b", Typ: types.Varchar, Samples: []string{"'x'", "'y'"}},
			{Name: "c", Typ: types.Float64},
		},
	}}
	gen := func(seed int64) []string {
		g := NewQGen(seed, prof)
		out := make([]string, 20)
		for i := range out {
			_, out[i] = g.NextPredicate()
		}
		return out
	}
	a, b := gen(42), gen(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at predicate %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	c := gen(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical predicate stream")
	}
}
