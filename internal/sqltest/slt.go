// Package sqltest is a table-driven SQL logic-test harness in the spirit of
// sqllogictest, applied to this engine as the VDBMS testing roadmap
// (Wang et al., arXiv:2502.20812) prescribes for young engines: golden
// `.slt` files of statement/query/expected-rows triples run against a fresh
// in-memory database, with `-update` regeneration of expectations.
//
// File format (testdata/*.slt), records separated by blank lines:
//
//	# comment                     anywhere; kept verbatim on -update
//
//	statement ok                  the SQL (following lines) must succeed
//	CREATE TABLE t (a INT)
//
//	statement error <substring>   the SQL must fail; the error must contain
//	SELECT * FROM nope            the (case-insensitive) substring
//
//	query                         run the SELECT; compare rendered rows
//	SELECT a FROM t ORDER BY a
//	----
//	1|x                           one line per row, columns joined by '|'
//	2|y
//
//	query error <substring>       the SELECT must fail; the error must
//	SELECT nope FROM t            contain the (case-insensitive) substring.
//	                              No ---- block — there are no rows.
//
//	session <name>                switch the current session (created on
//	                              first use; "main" is the default)
//
// Rows render NULL as "NULL", timestamps as "2006-01-02 15:04:05". Use
// ORDER BY (or single-row aggregates) to keep expectations deterministic.
package sqltest

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

var update = flag.Bool("update", false, "rewrite .slt query expectations from actual engine output")

// record is one parsed directive.
type record struct {
	kind     string // "statement" | "query" | "session"
	arg      string // "ok" / error substring / session name
	sql      string
	expected []string
	line     int // 1-based line of the directive
	expStart int // line index (0-based) where the expected block starts
	expEnd   int // one past the last expected line
}

// parseFile splits an .slt file into records, retaining line spans so
// -update can splice regenerated expectations back in.
func parseFile(path string) ([]string, []*record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	lines := strings.Split(strings.ReplaceAll(string(raw), "\r\n", "\n"), "\n")
	var recs []*record
	i := 0
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			i++
		case line == "statement ok" || strings.HasPrefix(line, "statement error"):
			r := &record{kind: "statement", arg: "ok", line: i + 1}
			if strings.HasPrefix(line, "statement error") {
				r.arg = strings.TrimSpace(strings.TrimPrefix(line, "statement error"))
				if r.arg == "" {
					return nil, nil, fmt.Errorf("%s:%d: statement error needs a substring", path, i+1)
				}
			}
			i++
			var sqlLines []string
			for i < len(lines) && strings.TrimSpace(lines[i]) != "" {
				sqlLines = append(sqlLines, lines[i])
				i++
			}
			if len(sqlLines) == 0 {
				return nil, nil, fmt.Errorf("%s:%d: statement without SQL", path, r.line)
			}
			r.sql = strings.Join(sqlLines, "\n")
			recs = append(recs, r)
		case strings.HasPrefix(line, "query error"):
			r := &record{kind: "query", line: i + 1}
			r.arg = strings.TrimSpace(strings.TrimPrefix(line, "query error"))
			if r.arg == "" {
				return nil, nil, fmt.Errorf("%s:%d: query error needs a substring", path, i+1)
			}
			i++
			var sqlLines []string
			for i < len(lines) && strings.TrimSpace(lines[i]) != "" {
				if strings.TrimSpace(lines[i]) == "----" {
					return nil, nil, fmt.Errorf("%s:%d: query error takes no ---- block", path, r.line)
				}
				sqlLines = append(sqlLines, lines[i])
				i++
			}
			if len(sqlLines) == 0 {
				return nil, nil, fmt.Errorf("%s:%d: query error without SQL", path, r.line)
			}
			r.sql = strings.Join(sqlLines, "\n")
			recs = append(recs, r)
		case line == "query":
			r := &record{kind: "query", line: i + 1}
			i++
			var sqlLines []string
			for i < len(lines) && strings.TrimSpace(lines[i]) != "----" {
				if strings.TrimSpace(lines[i]) == "" {
					return nil, nil, fmt.Errorf("%s:%d: query needs a ---- separator", path, r.line)
				}
				sqlLines = append(sqlLines, lines[i])
				i++
			}
			if i >= len(lines) {
				return nil, nil, fmt.Errorf("%s:%d: query needs a ---- separator", path, r.line)
			}
			r.sql = strings.Join(sqlLines, "\n")
			i++ // skip ----
			r.expStart = i
			for i < len(lines) && strings.TrimSpace(lines[i]) != "" {
				r.expected = append(r.expected, lines[i])
				i++
			}
			r.expEnd = i
			recs = append(recs, r)
		case strings.HasPrefix(line, "session"):
			name := strings.TrimSpace(strings.TrimPrefix(line, "session"))
			if name == "" {
				return nil, nil, fmt.Errorf("%s:%d: session needs a name", path, i+1)
			}
			recs = append(recs, &record{kind: "session", arg: name, line: i + 1})
			i++
		default:
			return nil, nil, fmt.Errorf("%s:%d: unknown directive %q", path, i+1, line)
		}
	}
	return lines, recs, nil
}

// durTokens matches PROFILE's wall-clock annotations. Goldens strip them:
// the tokens are timing-dependent in value AND presence (a sub-microsecond
// operator renders no time= at all), so neither can be pinned.
var durTokens = regexp.MustCompile(` (?:time|blocked)=[0-9.]+ms`)

// renderRows renders a result set one line per row, columns joined by '|'.
// EXPLAIN and PROFILE statements produce plan text instead of rows (they
// are the only SELECT results without a schema); it renders one line per
// plan line so goldens can pin projection choices, row estimates, and —
// for PROFILE — actual-row/batch counters, with duration tokens stripped.
// An ordinary query with zero matching rows still renders as zero lines.
func renderRows(res *core.Result) []string {
	if res.Schema == nil && res.Explain != "" {
		text := durTokens.ReplaceAllString(strings.TrimRight(res.Explain, "\n"), "")
		return strings.Split(text, "\n")
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, strings.Join(cells, "|"))
	}
	return out
}

// RenderRows renders a result for comparison — one line per row, columns
// joined by '|'. Exported for harnesses outside the package (the
// continuous-ingest scenario driver) that reuse the TLP multiset checks.
func RenderRows(res *core.Result) []string { return renderRows(res) }

// DefaultOptions is the engine configuration .slt files run under: small
// in-memory-style database, governed, single node.
func DefaultOptions(t *testing.T) core.Options {
	return core.Options{
		Dir:          t.TempDir(),
		TempDir:      t.TempDir(),
		MemPoolBytes: 64 << 20,
	}
}

// RunFile executes one .slt file against a fresh database. With -update,
// query expectations are regenerated from the engine's actual output and the
// file is rewritten.
func RunFile(t *testing.T, path string, opts core.Options) {
	t.Helper()
	lines, recs, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	sessions := map[string]*core.Session{}
	t.Cleanup(func() {
		for _, s := range sessions {
			s.Close()
		}
	})
	sess := func(name string) *core.Session {
		if s, ok := sessions[name]; ok {
			return s
		}
		s := db.NewSession()
		sessions[name] = s
		return s
	}
	cur := "main"

	type patch struct {
		start, end int
		repl       []string
	}
	var patches []patch
	failed := false
	for _, r := range recs {
		switch r.kind {
		case "session":
			cur = r.arg
			sess(cur)
		case "statement":
			res, err := sess(cur).Execute(r.sql)
			_ = res
			if r.arg == "ok" {
				if err != nil {
					t.Errorf("%s:%d: statement failed: %v\n  %s", path, r.line, err, r.sql)
					failed = true
				}
				continue
			}
			if err == nil {
				t.Errorf("%s:%d: statement succeeded, want error containing %q\n  %s", path, r.line, r.arg, r.sql)
				failed = true
			} else if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(r.arg)) {
				t.Errorf("%s:%d: error %q does not contain %q", path, r.line, err, r.arg)
				failed = true
			}
		case "query":
			res, err := sess(cur).Execute(r.sql)
			if r.arg != "" {
				if err == nil {
					t.Errorf("%s:%d: query succeeded, want error containing %q\n  %s", path, r.line, r.arg, r.sql)
					failed = true
				} else if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(r.arg)) {
					t.Errorf("%s:%d: error %q does not contain %q", path, r.line, err, r.arg)
					failed = true
				}
				continue
			}
			if err != nil {
				t.Errorf("%s:%d: query failed: %v\n  %s", path, r.line, err, r.sql)
				failed = true
				continue
			}
			got := renderRows(res)
			if *update {
				patches = append(patches, patch{r.expStart, r.expEnd, got})
				continue
			}
			if strings.Join(got, "\n") != strings.Join(r.expected, "\n") {
				t.Errorf("%s:%d: query mismatch\n  %s\ngot:\n  %s\nwant:\n  %s",
					path, r.line, r.sql,
					strings.Join(got, "\n  "), strings.Join(r.expected, "\n  "))
				failed = true
			}
		}
	}
	if *update && !failed {
		// Apply patches back-to-front so earlier spans stay valid.
		out := append([]string{}, lines...)
		for i := len(patches) - 1; i >= 0; i-- {
			p := patches[i]
			out = append(out[:p.start], append(append([]string{}, p.repl...), out[p.end:]...)...)
		}
		if err := os.WriteFile(path, []byte(strings.Join(out, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
	}
}

// RunFileDifferential executes one .slt file against two engine
// configurations in lockstep and asserts every query returns identical
// results — the self-checking parallel-vs-serial oracle the VDBMS testing
// roadmap recommends: the serial plan is the reference semantics, the
// parallel plan must be observationally equivalent. Statements must agree
// on success vs failure (error text may differ); queries the skip predicate
// accepts (EXPLAIN output, system tables whose counters depend on the
// configuration) are executed on both engines but not compared. Queries
// without an ORDER BY compare as sorted multisets, since parallel plans may
// legitimately reorder unordered results.
//
// Golden-authoring constraint: float aggregates must use exactly
// representable data (x.5-style values) — parallel aggregation
// re-associates SUM/AVG, and results here compare as full-precision
// rendered strings, so a non-representable sum can differ in the last ulp
// between configurations.
func RunFileDifferential(t *testing.T, path string, optsA, optsB core.Options, skip func(sql string) bool) {
	t.Helper()
	_, recs, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	open := func(opts core.Options) (*core.Database, map[string]*core.Session) {
		db, err := core.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		return db, map[string]*core.Session{}
	}
	dbA, sessA := open(optsA)
	dbB, sessB := open(optsB)
	t.Cleanup(func() {
		for _, s := range sessA {
			s.Close()
		}
		for _, s := range sessB {
			s.Close()
		}
	})
	sess := func(db *core.Database, m map[string]*core.Session, name string) *core.Session {
		if s, ok := m[name]; ok {
			return s
		}
		s := db.NewSession()
		m[name] = s
		return s
	}
	cur := "main"
	for _, r := range recs {
		switch r.kind {
		case "session":
			cur = r.arg
			sess(dbA, sessA, cur)
			sess(dbB, sessB, cur)
		case "statement":
			_, errA := sess(dbA, sessA, cur).Execute(r.sql)
			_, errB := sess(dbB, sessB, cur).Execute(r.sql)
			if (errA == nil) != (errB == nil) {
				t.Errorf("%s:%d: statement diverged: A err=%v, B err=%v\n  %s",
					path, r.line, errA, errB, r.sql)
			}
		case "query":
			resA, errA := sess(dbA, sessA, cur).Execute(r.sql)
			resB, errB := sess(dbB, sessB, cur).Execute(r.sql)
			if (errA == nil) != (errB == nil) {
				t.Errorf("%s:%d: query diverged: A err=%v, B err=%v\n  %s",
					path, r.line, errA, errB, r.sql)
				continue
			}
			if r.arg != "" {
				// query error: both engines must fail with the substring.
				for side, err := range map[string]error{"A": errA, "B": errB} {
					if err == nil {
						t.Errorf("%s:%d: %s: query succeeded, want error containing %q\n  %s",
							path, r.line, side, r.arg, r.sql)
					} else if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(r.arg)) {
						t.Errorf("%s:%d: %s: error %q does not contain %q", path, r.line, side, err, r.arg)
					}
				}
				continue
			}
			if errA != nil || (skip != nil && skip(r.sql)) {
				continue
			}
			gotA, gotB := renderRows(resA), renderRows(resB)
			ordered := strings.Contains(strings.ToUpper(r.sql), "ORDER BY")
			if ordered && strings.Join(gotA, "\n") == strings.Join(gotB, "\n") {
				continue
			}
			// Unordered queries compare as multisets; so do ORDER BY
			// queries whose exact order differs — SQL leaves tie order
			// unspecified and serial vs parallel plans may break ties
			// differently. (That an ordered result IS globally ordered is
			// pinned separately: the .slt goldens run exact-match per
			// config, and the optimizer's parallel-sort tests check
			// order.)
			sort.Strings(gotA)
			sort.Strings(gotB)
			if strings.Join(gotA, "\n") != strings.Join(gotB, "\n") {
				t.Errorf("%s:%d: result diverged\n  %s\nA:\n  %s\nB:\n  %s",
					path, r.line, r.sql,
					strings.Join(gotA, "\n  "), strings.Join(gotB, "\n  "))
			}
		}
	}
}

// Rows builds test rows (helper for seeding programmatically in harness
// tests).
func Rows(vals ...[]types.Value) []types.Row {
	out := make([]types.Row, len(vals))
	for i, v := range vals {
		out[i] = types.Row(v)
	}
	return out
}
