// Ternary Logic Partitioning (TLP) metamorphic oracle (Rigger & Su, OSDI
// 2020), composed with the parallel-vs-serial differential oracle: for a
// generated predicate p over table t, SQL's three-valued logic guarantees
//
//	SELECT cols FROM t
//	  ≡(multiset)
//	SELECT cols FROM t WHERE p
//	  ∪ SELECT cols FROM t WHERE NOT (p)
//	  ∪ SELECT cols FROM t WHERE (p) IS NULL
//
// because every row makes p evaluate to exactly one of TRUE / FALSE / NULL.
// No expected output is needed — the database is its own oracle — so the
// check exercises predicate evaluation, NULL handling, scan pruning and
// delete-vector filtering far beyond what hand-written goldens cover.
// Every partition query additionally runs on a serial AND a parallel
// (Parallelism=4, ForceParallel) engine and must agree as a multiset, so
// each generated query is simultaneously a TLP and a differential probe.
package sqltest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

// TLPConfig configures one metamorphic run.
type TLPConfig struct {
	// Seed fully determines the generated query stream (given the same
	// Setup); failures print it so runs are reproducible.
	Seed int64
	// Predicates is how many random predicates to generate. Each predicate
	// drives one rowset TLP check plus an alternating aggregate or DISTINCT
	// form (4 + ~4 executed queries, each on both engines).
	Predicates int
	// Setup statements are replayed into both engines before generation
	// (typically the `statement` records of an .slt file). Statements on
	// which both engines fail identically are skipped, so error-exercising
	// setup lines are harmless.
	Setup []string
}

// TLPStats reports what a run executed.
type TLPStats struct {
	Predicates int // predicates generated
	Queries    int // generated SELECTs executed (each ran on both engines)
}

// ParallelOptions is the engine configuration the differential side runs
// under: intra-node parallelism with the planner's cardinality gate dropped
// so tiny test tables still take parallel plans.
func ParallelOptions(t *testing.T) core.Options {
	opts := DefaultOptions(t)
	opts.Parallelism = 4
	opts.ForceParallel = true
	return opts
}

// RunTLP replays cfg.Setup into a serial and a parallel engine, profiles
// the resulting tables, and checks cfg.Predicates generated predicates
// under the TLP identities. Violations are reported with the seed, the
// partition SQL, and a reproduction command.
func RunTLP(t *testing.T, cfg TLPConfig) TLPStats {
	t.Helper()
	serial, err := core.Open(DefaultOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.Open(ParallelOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range cfg.Setup {
		_, errA := serial.Execute(stmt)
		_, errB := parallel.Execute(stmt)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("TLP setup diverged: serial err=%v, parallel err=%v\n  %s", errA, errB, stmt)
		}
	}
	profiles := ProfileTables(t, serial)
	if len(profiles) == 0 {
		t.Skip("no non-empty tables to generate over")
	}
	run := &tlpRun{t: t, serial: serial, parallel: parallel, seed: cfg.Seed}
	g := NewQGen(cfg.Seed, profiles)
	for i := 0; i < cfg.Predicates; i++ {
		tp, pred := g.NextPredicate()
		run.checkRowset(i, tp, pred)
		if i%2 == 0 {
			run.checkAggregate(i, tp, pred)
		} else {
			run.checkDistinct(i, tp, pred, g)
		}
	}
	return TLPStats{Predicates: cfg.Predicates, Queries: run.queries}
}

// ProfileTables samples every non-empty catalog table through db, building
// the generator's column profiles (up to 8 distinct non-NULL literals per
// column, drawn from the table's actual data).
func ProfileTables(t *testing.T, db *core.Database) []TableProfile {
	t.Helper()
	var out []TableProfile
	for _, tab := range db.Catalog().Tables() {
		cols := tab.Schema.Cols
		names := make([]string, len(cols))
		for i, c := range cols {
			names[i] = c.Name
		}
		res, err := db.Execute(fmt.Sprintf("SELECT %s FROM %s", strings.Join(names, ", "), tab.Name))
		if err != nil || len(res.Rows) == 0 {
			continue
		}
		tp := TableProfile{Name: tab.Name}
		for i, c := range cols {
			cp := ColProfile{Name: c.Name, Typ: c.Typ}
			seen := map[string]bool{}
			for _, row := range res.Rows {
				if len(cp.Samples) >= 8 {
					break
				}
				lit, ok := SampleLiteral(row[i])
				if ok && !seen[lit] {
					seen[lit] = true
					cp.Samples = append(cp.Samples, lit)
				}
			}
			tp.Cols = append(tp.Cols, cp)
		}
		out = append(out, tp)
	}
	return out
}

// tlpRun holds the two engines and failure context for one RunTLP call.
type tlpRun struct {
	t        *testing.T
	serial   *core.Database
	parallel *core.Database
	seed     int64
	queries  int
}

func (r *tlpRun) repro() string {
	return fmt.Sprintf("reproduce: go test ./internal/sqltest -run TestTLPMetamorphic -tlp.seed=%d", r.seed)
}

// rows executes one generated query on both engines, requires both to
// succeed with multiset-identical results, and returns the sorted rendered
// rows. A generated query erroring at all is itself a finding.
func (r *tlpRun) rows(idx int, sql string) ([]string, bool) {
	r.t.Helper()
	r.queries++
	resA, errA := r.serial.Execute(sql)
	resB, errB := r.parallel.Execute(sql)
	if errA != nil || errB != nil {
		r.t.Errorf("TLP query error (seed=%d, predicate #%d): serial=%v, parallel=%v\n  %s\n%s",
			r.seed, idx, errA, errB, sql, r.repro())
		return nil, false
	}
	a, b := renderRows(resA), renderRows(resB)
	sort.Strings(a)
	sort.Strings(b)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		r.t.Errorf("parallel-vs-serial divergence (seed=%d, predicate #%d):\n  %s\nserial:\n  %s\nparallel:\n  %s\n%s",
			r.seed, idx, sql, strings.Join(a, "\n  "), strings.Join(b, "\n  "), r.repro())
		return nil, false
	}
	return a, true
}

// partitionSQL renders the unpartitioned query and its three TLP partitions.
func partitionSQL(base, pred string) (all, p, notP, nullP string) {
	return base,
		base + " WHERE " + pred,
		base + " WHERE NOT (" + pred + ")",
		base + " WHERE (" + pred + ") IS NULL"
}

func (r *tlpRun) checkRowset(idx int, tp TableProfile, pred string) {
	r.t.Helper()
	names := make([]string, len(tp.Cols))
	for i, c := range tp.Cols {
		names[i] = c.Name
	}
	base := fmt.Sprintf("SELECT %s FROM %s", strings.Join(names, ", "), tp.Name)
	all, p, notP, nullP := partitionSQL(base, pred)
	rowsAll, ok1 := r.rows(idx, all)
	rowsP, ok2 := r.rows(idx, p)
	rowsN, ok3 := r.rows(idx, notP)
	rowsNull, ok4 := r.rows(idx, nullP)
	if !(ok1 && ok2 && ok3 && ok4) {
		return
	}
	if err := CheckTLP(rowsAll, rowsP, rowsN, rowsNull); err != nil {
		r.t.Errorf("TLP rowset violation (seed=%d, predicate #%d): %v\n  %s\n  %s\n  %s\n  %s\n%s",
			r.seed, idx, err, all, p, notP, nullP, r.repro())
	}
}

func (r *tlpRun) checkAggregate(idx int, tp TableProfile, pred string) {
	r.t.Helper()
	// COUNT(*) always; SUM over the first integer column when there is one.
	agg := "COUNT(*)"
	sumCol := ""
	for _, c := range tp.Cols {
		if c.Typ == types.Int64 {
			sumCol = c.Name
			break
		}
	}
	if sumCol != "" {
		agg += ", SUM(" + sumCol + ")"
	}
	base := fmt.Sprintf("SELECT %s FROM %s", agg, tp.Name)
	all, p, notP, nullP := partitionSQL(base, pred)
	rowsAll, ok1 := r.rows(idx, all)
	rowsP, ok2 := r.rows(idx, p)
	rowsN, ok3 := r.rows(idx, notP)
	rowsNull, ok4 := r.rows(idx, nullP)
	if !(ok1 && ok2 && ok3 && ok4) {
		return
	}
	if err := CheckTLPAggregate(rowsAll, rowsP, rowsN, rowsNull); err != nil {
		r.t.Errorf("TLP aggregate violation (seed=%d, predicate #%d): %v\n  %s\n  %s\n  %s\n  %s\n%s",
			r.seed, idx, err, all, p, notP, nullP, r.repro())
	}
}

func (r *tlpRun) checkDistinct(idx int, tp TableProfile, pred string, g *QGen) {
	r.t.Helper()
	c := tp.Cols[g.rng.Intn(len(tp.Cols))]
	base := fmt.Sprintf("SELECT DISTINCT %s FROM %s", c.Name, tp.Name)
	all, p, notP, nullP := partitionSQL(base, pred)
	rowsAll, ok1 := r.rows(idx, all)
	rowsP, ok2 := r.rows(idx, p)
	rowsN, ok3 := r.rows(idx, notP)
	rowsNull, ok4 := r.rows(idx, nullP)
	if !(ok1 && ok2 && ok3 && ok4) {
		return
	}
	if err := CheckTLPDistinct(rowsAll, rowsP, rowsN, rowsNull); err != nil {
		r.t.Errorf("TLP DISTINCT violation (seed=%d, predicate #%d): %v\n  %s\n  %s\n  %s\n  %s\n%s",
			r.seed, idx, err, all, p, notP, nullP, r.repro())
	}
}

// CheckTLP asserts the rowset TLP identity: the unpartitioned result must
// equal the multiset union of the partition results. Inputs are rendered
// row lines; order is irrelevant.
func CheckTLP(all []string, partitions ...[]string) error {
	var union []string
	for _, p := range partitions {
		union = append(union, p...)
	}
	a := append([]string(nil), all...)
	sort.Strings(a)
	sort.Strings(union)
	if len(a) != len(union) {
		return fmt.Errorf("row count: unpartitioned=%d, partitions sum=%d", len(a), len(union))
	}
	for i := range a {
		if a[i] != union[i] {
			return fmt.Errorf("multiset mismatch at sorted row %d: unpartitioned has %q, partitions have %q", i, a[i], union[i])
		}
	}
	return nil
}

// CheckTLPDistinct asserts the DISTINCT TLP identity: the unpartitioned
// distinct values must equal the set union of the partitions' distinct
// values (a value may appear in several partitions).
func CheckTLPDistinct(all []string, partitions ...[]string) error {
	union := map[string]bool{}
	for _, p := range partitions {
		for _, row := range p {
			union[row] = true
		}
	}
	set := map[string]bool{}
	for _, row := range all {
		set[row] = true
	}
	for row := range set {
		if !union[row] {
			return fmt.Errorf("value %q in unpartitioned DISTINCT but in no partition", row)
		}
	}
	for row := range union {
		if !set[row] {
			return fmt.Errorf("value %q in a partition's DISTINCT but not unpartitioned", row)
		}
	}
	return nil
}

// CheckTLPAggregate asserts the aggregate TLP identity for single-row
// results of the form "COUNT|SUM" (or just "COUNT"): each aggregate cell of
// the unpartitioned query must equal the sum of the partitions' cells, with
// a NULL SUM (empty partition) contributing 0.
func CheckTLPAggregate(all []string, partitions ...[]string) error {
	allCells, err := aggCells(all)
	if err != nil {
		return err
	}
	sums := make([]float64, len(allCells))
	for _, p := range partitions {
		cells, err := aggCells(p)
		if err != nil {
			return err
		}
		if len(cells) != len(allCells) {
			return fmt.Errorf("aggregate arity mismatch: %d vs %d", len(cells), len(allCells))
		}
		for i, v := range cells {
			sums[i] += v
		}
	}
	for i, v := range allCells {
		if v != sums[i] {
			return fmt.Errorf("aggregate %d: unpartitioned=%v, partitions sum=%v", i, v, sums[i])
		}
	}
	return nil
}

// aggCells parses a one-row aggregate result into numeric cells, mapping a
// NULL cell (SUM over an empty partition) to 0.
func aggCells(rows []string) ([]float64, error) {
	if len(rows) != 1 {
		return nil, fmt.Errorf("aggregate query returned %d rows, want 1", len(rows))
	}
	parts := strings.Split(rows[0], "|")
	out := make([]float64, len(parts))
	for i, p := range parts {
		if p == "NULL" {
			out[i] = 0
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("aggregate cell %q is not numeric: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}
