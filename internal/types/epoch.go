package types

// Epoch is the cluster-wide logical commit clock (paper §5): every tuple is
// stamped with the epoch in which its transaction committed, and an epoch
// boundary is a globally consistent snapshot. Epoch 0 is "before all data".
type Epoch uint64

// MaxEpoch is the largest representable epoch, used as an "infinitely recent"
// sentinel when scanning without a snapshot bound.
const MaxEpoch = Epoch(^uint64(0))
