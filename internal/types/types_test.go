package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Int64: "INTEGER", Float64: "FLOAT", Varchar: "VARCHAR",
		Bool: "BOOLEAN", Timestamp: "TIMESTAMP", Invalid: "INVALID",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Type
	}{
		{"INT", Int64}, {"INTEGER", Int64}, {"BIGINT", Int64},
		{"FLOAT", Float64}, {"DOUBLE", Float64},
		{"VARCHAR", Varchar}, {"TEXT", Varchar},
		{"BOOLEAN", Bool}, {"TIMESTAMP", Timestamp}, {"DATE", Timestamp},
	} {
		got, err := ParseType(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("ParseType(BLOB) should fail")
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	if got := NewInt(42).String(); got != "42" {
		t.Errorf("NewInt(42).String() = %q", got)
	}
	if got := NewFloat(2.5).String(); got != "2.5" {
		t.Errorf("NewFloat(2.5).String() = %q", got)
	}
	if got := NewString("hi").String(); got != "hi" {
		t.Errorf("NewString.String() = %q", got)
	}
	if got := NewBool(true).String(); got != "true" {
		t.Errorf("NewBool(true).String() = %q", got)
	}
	if got := NewNull(Int64).String(); got != "NULL" {
		t.Errorf("NewNull.String() = %q", got)
	}
	ts := time.Date(2012, 8, 27, 9, 0, 0, 0, time.UTC)
	if got := NewTimestamp(ts).String(); got != "2012-08-27 09:00:00" {
		t.Errorf("NewTimestamp.String() = %q", got)
	}
	if !NewTimestamp(ts).Time().Equal(ts) {
		t.Error("Timestamp round trip failed")
	}
}

func TestValueCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewFloat(1.5), NewInt(1), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewNull(Int64), NewInt(-100), -1}, // NULLS FIRST
		{NewInt(-100), NewNull(Int64), 1},
		{NewNull(Int64), NewNull(Varchar), 0},
		{NewBool(false), NewBool(true), -1},
	} {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return NewInt(a).Compare(NewInt(b)) == -NewInt(b).Compare(NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueComparePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic comparing INTEGER with VARCHAR")
		}
	}()
	NewInt(1).Compare(NewString("x"))
}

func TestSchema(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Typ: Int64},
		Column{Name: "b", Typ: Varchar},
		Column{Name: "c", Typ: Float64},
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ColIndex("b") != 1 || s.ColIndex("missing") != -1 {
		t.Error("ColIndex wrong")
	}
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Col(0).Name != "c" || p.Col(1).Name != "a" {
		t.Errorf("Project wrong: %v", p)
	}
	want := "(a INTEGER, b VARCHAR, c FLOAT)"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
	if len(s.Names()) != 3 || s.Names()[0] != "a" {
		t.Error("Names wrong")
	}
}

func TestRowCompareAndClone(t *testing.T) {
	r1 := Row{NewInt(1), NewString("x")}
	r2 := Row{NewInt(1), NewString("y")}
	if r1.Compare(r2, []int{0}) != 0 {
		t.Error("compare on col 0 should be equal")
	}
	if r1.Compare(r2, []int{0, 1}) != -1 {
		t.Error("compare on both cols should be -1")
	}
	c := r1.Clone()
	c[0] = NewInt(99)
	if r1[0].I != 1 {
		t.Error("Clone did not deep copy")
	}
	if r1.String() != "(1, x)" {
		t.Errorf("Row.String = %q", r1.String())
	}
}

func TestHashValueStability(t *testing.T) {
	// Same value must hash identically; different values should differ.
	if HashValue(NewInt(7)) != HashValue(NewInt(7)) {
		t.Error("hash not deterministic")
	}
	if HashValue(NewInt(7)) == HashValue(NewInt(8)) {
		t.Error("suspicious collision on adjacent ints")
	}
	if HashValue(NewString("abc")) == HashValue(NewString("abd")) {
		t.Error("suspicious collision on adjacent strings")
	}
	// NULLs of the same type co-locate.
	if HashValue(NewNull(Int64)) != HashValue(NewNull(Int64)) {
		t.Error("NULL hash not deterministic")
	}
	// Raw-value fast paths agree with Value paths.
	if HashInt64(1234) != HashValue(NewInt(1234)) {
		t.Error("HashInt64 disagrees with HashValue")
	}
	if HashString("meter") != HashValue(NewString("meter")) {
		t.Error("HashString disagrees with HashValue")
	}
}

func TestHashRowOrderSensitivity(t *testing.T) {
	r := Row{NewInt(1), NewInt(2)}
	h12 := HashRow(r, []int{0, 1})
	h21 := HashRow(r, []int{1, 0})
	if h12 == h21 {
		t.Error("multi-column hash should be order sensitive")
	}
}

func TestHashDistribution(t *testing.T) {
	// A crude uniformity check: bucket 100k sequential ints into 16 buckets;
	// no bucket should be more than 20% off the mean. Sequential keys are
	// exactly the "primary key" case the paper's HASH segmentation targets.
	const n, buckets = 100000, 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[HashInt64(int64(i))%buckets]++
	}
	mean := n / buckets
	for b, c := range counts {
		if c < mean*8/10 || c > mean*12/10 {
			t.Errorf("bucket %d has %d entries (mean %d): hash is badly skewed", b, c, mean)
		}
	}
}

func TestIsIntegralIsNumeric(t *testing.T) {
	if !Int64.IsIntegral() || !Timestamp.IsIntegral() || !Bool.IsIntegral() {
		t.Error("integral types misclassified")
	}
	if Float64.IsIntegral() || Varchar.IsIntegral() {
		t.Error("non-integral types misclassified")
	}
	if !Int64.IsNumeric() || !Float64.IsNumeric() || Varchar.IsNumeric() {
		t.Error("IsNumeric misclassified")
	}
}
