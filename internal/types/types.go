// Package types defines the SQL value types, typed values, schemas and rows
// shared by every layer of the engine.
//
// Vertica (per the paper, §8.1) extended C-Store's INTEGER-only model with
// FLOAT, VARCHAR, NULLs and 64-bit integral types; this package models that
// type system.
package types

import (
	"fmt"
	"strconv"
	"time"
)

// Type identifies a column data type.
type Type uint8

const (
	// Invalid is the zero Type; it is never valid in a schema.
	Invalid Type = iota
	// Int64 is a 64-bit signed integer (the paper's integral type).
	Int64
	// Float64 is a 64-bit IEEE-754 float.
	Float64
	// Varchar is a variable-length string.
	Varchar
	// Bool is a boolean.
	Bool
	// Timestamp is microseconds since the Unix epoch, stored as int64.
	Timestamp
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "INTEGER"
	case Float64:
		return "FLOAT"
	case Varchar:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	case Timestamp:
		return "TIMESTAMP"
	default:
		return "INVALID"
	}
}

// IsIntegral reports whether values of t are represented as int64
// (and are therefore valid segmentation-expression results).
func (t Type) IsIntegral() bool {
	return t == Int64 || t == Timestamp || t == Bool
}

// IsNumeric reports whether t supports arithmetic.
func (t Type) IsNumeric() bool {
	return t == Int64 || t == Float64 || t == Timestamp
}

// ParseType parses a SQL type name (as accepted by the parser) into a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "INT", "INTEGER", "BIGINT", "INT8", "SMALLINT", "TINYINT":
		return Int64, nil
	case "FLOAT", "FLOAT8", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return Float64, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return Varchar, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	case "TIMESTAMP", "DATE", "DATETIME":
		return Timestamp, nil
	default:
		return Invalid, fmt.Errorf("types: unknown type %q", s)
	}
}

// Value is a single typed SQL value. The zero Value is the SQL NULL of an
// invalid type. Values are small and passed by value.
type Value struct {
	Typ  Type
	Null bool
	I    int64   // Int64, Timestamp (micros), Bool (0/1)
	F    float64 // Float64
	S    string  // Varchar
}

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{Typ: Int64, I: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{Typ: Float64, F: v} }

// NewString returns a Varchar value.
func NewString(v string) Value { return Value{Typ: Varchar, S: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Typ: Bool, I: i}
}

// NewTimestamp returns a Timestamp value from a time.Time.
func NewTimestamp(t time.Time) Value {
	return Value{Typ: Timestamp, I: t.UnixMicro()}
}

// NewTimestampMicros returns a Timestamp value from raw microseconds.
func NewTimestampMicros(us int64) Value { return Value{Typ: Timestamp, I: us} }

// NewNull returns the NULL value of type t.
func NewNull(t Type) Value { return Value{Typ: t, Null: true} }

// Bool reports the boolean interpretation of the value.
func (v Value) Bool() bool { return !v.Null && v.I != 0 }

// Time returns the timestamp as a time.Time (UTC).
func (v Value) Time() time.Time { return time.UnixMicro(v.I).UTC() }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Null }

// String renders the value for display.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Varchar:
		return v.S
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case Timestamp:
		return v.Time().Format("2006-01-02 15:04:05")
	default:
		return "<invalid>"
	}
}

// Compare orders v against o. NULL sorts before all non-NULL values
// (NULLS FIRST), matching the storage sort order. It panics if the types
// are incomparable.
func (v Value) Compare(o Value) int {
	if v.Null || o.Null {
		switch {
		case v.Null && o.Null:
			return 0
		case v.Null:
			return -1
		default:
			return 1
		}
	}
	switch v.Typ {
	case Int64, Timestamp, Bool:
		var ov int64
		switch o.Typ {
		case Int64, Timestamp, Bool:
			ov = o.I
		case Float64:
			return -NewFloat(o.F).Compare(NewFloat(float64(v.I)))
		default:
			panic(fmt.Sprintf("types: cannot compare %s with %s", v.Typ, o.Typ))
		}
		switch {
		case v.I < ov:
			return -1
		case v.I > ov:
			return 1
		default:
			return 0
		}
	case Float64:
		var of float64
		switch o.Typ {
		case Float64:
			of = o.F
		case Int64, Timestamp, Bool:
			of = float64(o.I)
		default:
			panic(fmt.Sprintf("types: cannot compare %s with %s", v.Typ, o.Typ))
		}
		switch {
		case v.F < of:
			return -1
		case v.F > of:
			return 1
		default:
			return 0
		}
	case Varchar:
		if o.Typ != Varchar {
			panic(fmt.Sprintf("types: cannot compare %s with %s", v.Typ, o.Typ))
		}
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	default:
		panic("types: compare on invalid type")
	}
}

// Equal reports v == o under Compare semantics (NULL equals NULL, which is
// the grouping/sorting notion of equality, not SQL ternary equality).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Column describes one attribute of a table or projection.
type Column struct {
	Name     string
	Typ      Type
	Nullable bool
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Col returns the column at index i.
func (s *Schema) Col(i int) Column { return s.Cols[i] }

// Project returns a new schema containing the columns at the given indexes.
func (s *Schema) Project(idxs []int) *Schema {
	out := &Schema{Cols: make([]Column, len(idxs))}
	for i, idx := range idxs {
		out.Cols[i] = s.Cols[idx]
	}
	return out
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a INTEGER, b VARCHAR)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.Cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Typ.String()
	}
	return out + ")"
}

// Row is a tuple of values, positionally aligned with a schema.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Compare orders two rows by the given column indexes.
func (r Row) Compare(o Row, keyIdx []int) int {
	for _, k := range keyIdx {
		if c := r[k].Compare(o[k]); c != 0 {
			return c
		}
	}
	return 0
}

// String renders the row for display.
func (r Row) String() string {
	out := "("
	for i, v := range r {
		if i > 0 {
			out += ", "
		}
		out += v.String()
	}
	return out + ")"
}
