package types

import "math"

// Hash support for segmentation expressions. The paper (§3.6) segments
// projections by an integral expression, most commonly HASH(col1..coln) of a
// high-cardinality column; nodes own contiguous ranges of the unsigned hash
// space. We use FNV-1a over the value's canonical byte representation so the
// hash is stable across processes and nodes.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashSeed is the initial accumulator for multi-column hashing: combining
// per-column HashValue results into it with HashCombine reproduces HashRow,
// letting vectorized kernels hash column-at-a-time.
const HashSeed uint64 = fnvOffset64

// HashValue returns a stable 64-bit hash of the value. NULL hashes to a
// fixed constant per type so that NULLs co-locate.
func HashValue(v Value) uint64 {
	h := uint64(fnvOffset64)
	h = fnvByte(h, byte(v.Typ))
	if v.Null {
		return fnvByte(h, 0xff)
	}
	switch v.Typ {
	case Int64, Timestamp, Bool:
		h = fnvUint64(h, uint64(v.I))
	case Float64:
		h = fnvUint64(h, float64Bits(v.F))
	case Varchar:
		for i := 0; i < len(v.S); i++ {
			h = fnvByte(h, v.S[i])
		}
	}
	return h
}

// HashCombine folds a new hash into an accumulated multi-column hash.
func HashCombine(acc, h uint64) uint64 {
	acc ^= h
	acc *= fnvPrime64
	return acc
}

// HashRow hashes the given key columns of a row.
func HashRow(r Row, keyIdx []int) uint64 {
	acc := uint64(fnvOffset64)
	for _, k := range keyIdx {
		acc = HashCombine(acc, HashValue(r[k]))
	}
	return acc
}

// HashInt64 hashes a raw int64 with the same function used by HashValue for
// Int64 values, letting vectorized kernels avoid constructing Values.
func HashInt64(v int64) uint64 {
	h := uint64(fnvOffset64)
	h = fnvByte(h, byte(Int64))
	return fnvUint64(h, uint64(v))
}

// HashString hashes a raw string consistently with HashValue for Varchar.
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	h = fnvByte(h, byte(Varchar))
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}

func float64Bits(f float64) uint64 {
	// Normalise -0 to +0 so they hash identically.
	if f == 0 {
		f = 0
	}
	return math.Float64bits(f)
}
