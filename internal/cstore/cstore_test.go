package cstore

import (
	"testing"

	"repro/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "k", Typ: types.Int64},
		types.Column{Name: "grp", Typ: types.Int64},
		types.Column{Name: "v", Typ: types.Float64},
	)
}

func testRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(n - i)), // unsorted on purpose
			types.NewInt(int64(i % 4)),
			types.NewFloat(float64(i)),
		}
	}
	return rows
}

func TestLoadSortsAndScans(t *testing.T) {
	st := NewStore()
	st.Load("t", testSchema(), testRows(100), 0)
	tb, err := st.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 100 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	it := tb.Scan([]int{0})
	prev := int64(-1)
	n := 0
	for {
		r, ok := it()
		if !ok {
			break
		}
		if r[0].I < prev {
			t.Fatal("not sorted by sort column")
		}
		prev = r[0].I
		n++
	}
	if n != 100 {
		t.Fatalf("scanned %d", n)
	}
	if _, err := st.Table("nosuch"); err == nil {
		t.Error("missing table should error")
	}
}

func TestFilterAndGroupAgg(t *testing.T) {
	st := NewStore()
	st.Load("t", testSchema(), testRows(100), 0)
	tb, _ := st.Table("t")
	it := Filter(tb.Scan([]int{1, 2}), func(r types.Row) bool { return r[0].I == 2 })
	groups := GroupAgg(it, 0, CountStar, -1)
	if len(groups) != 1 || groups[0][1].I != 25 {
		t.Errorf("groups = %v", groups)
	}
	it2 := tb.Scan([]int{1, 2})
	groups = GroupAgg(it2, 0, SumFloat, 1)
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	it3 := tb.Scan([]int{1, 2})
	avg := GroupAgg(it3, 0, AvgFloat, 1)
	if len(avg) != 4 || avg[0][1].Typ != types.Float64 {
		t.Errorf("avg groups = %v", avg)
	}
}

func TestHashJoin(t *testing.T) {
	st := NewStore()
	st.Load("fact", testSchema(), testRows(100), 0)
	dimSchema := types.NewSchema(
		types.Column{Name: "id", Typ: types.Int64},
		types.Column{Name: "name", Typ: types.Varchar},
	)
	dimRows := []types.Row{
		{types.NewInt(0), types.NewString("zero")},
		{types.NewInt(1), types.NewString("one")},
	}
	st.Load("dim", dimSchema, dimRows, 0)
	fact, _ := st.Table("fact")
	dim, _ := st.Table("dim")
	it := HashJoin(fact.Scan([]int{1}), 0, dim, 0, []int{1})
	n := 0
	for {
		r, ok := it()
		if !ok {
			break
		}
		if r[1].Typ != types.Varchar {
			t.Fatal("join output shape wrong")
		}
		n++
	}
	if n != 50 { // grp 0 and 1 each 25 rows
		t.Errorf("join rows = %d", n)
	}
}

func TestJoinIndexReconstruction(t *testing.T) {
	st := NewStore()
	// Partial projections: sort by k, group2 = {v} sorted by grp.
	st.LoadPartial("t", testSchema(), testRows(50), 0, 1, []int{2})
	tb, _ := st.Table("t")
	// Reading (k, v) must still return each row's own v despite the
	// indirection.
	it := tb.Scan([]int{0, 2})
	for {
		r, ok := it()
		if !ok {
			break
		}
		// By construction v = i and k = n-i, so k + v = n = 50.
		if r[0].I+int64(r[1].F) != 50 {
			t.Fatalf("join index reconstruction broke row pairing: %v", r)
		}
	}
}

func TestWriteDisk(t *testing.T) {
	st := NewStore()
	st.Load("t", testSchema(), testRows(1000), 1) // sort by grp: RLE-friendly
	bytes, err := st.WriteDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// k raw (8000) + v raw (8000) + grp RLE (4 runs x 16 bytes).
	if bytes >= 24000 || bytes <= 16000 {
		t.Errorf("disk bytes = %d, want ~16KB (RLE on sort column only)", bytes)
	}
}
