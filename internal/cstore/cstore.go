// Package cstore implements a baseline engine modeled on the 2005 C-Store
// research prototype, as characterized by the paper's §8.1 comparison:
// column-oriented storage with simple RLE on sorted columns, but a
// single-threaded, tuple-at-a-time execution model with none of Vertica's
// vectorization, prepass aggregation, SIP filters or sophisticated
// compression — and with join indexes for tuple reconstruction across
// partial projections (§3.2), which Vertica dropped in favour of super
// projections.
//
// This is the comparator for the Table 3 reproduction: the deltas between
// this engine and the main one are exactly the deltas the paper enumerates.
package cstore

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/types"
)

// Store holds the baseline engine's tables.
type Store struct {
	tables map[string]*Table
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{tables: map[string]*Table{}} }

// Table is one C-Store table stored as column arrays, totally sorted by a
// sort column. When partial projections are enabled the table is split into
// two column groups connected by a join index.
type Table struct {
	Schema  *types.Schema
	SortCol int
	rows    int

	ints    map[int][]int64
	floats  map[int][]float64
	strs    map[int][]string
	nulls   map[int][]bool
	nullany map[int]bool

	// Partial projections: columns in group2 are stored in a different
	// (orderkey-sorted) permutation; joinIndex maps a group1 position to
	// the row's position in group2 ("C-Store uses a data structure called a
	// join index to reconstitute tuples from the original table", §3.2).
	group2    map[int]bool
	joinIndex []int32
}

// Load sorts rows by sortCol and stores them as columns.
func (s *Store) Load(name string, schema *types.Schema, rows []types.Row, sortCol int) *Table {
	t := &Table{
		Schema: schema, SortCol: sortCol, rows: len(rows),
		ints: map[int][]int64{}, floats: map[int][]float64{},
		strs: map[int][]string{}, nulls: map[int][]bool{}, nullany: map[int]bool{},
	}
	sorted := append([]types.Row{}, rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i][sortCol].Compare(sorted[j][sortCol]) < 0
	})
	for c := 0; c < schema.Len(); c++ {
		t.storeColumn(c, sorted)
	}
	s.tables[name] = t
	return t
}

// LoadPartial stores the table as two partial projections: group1 columns
// sorted by sortCol, group2 columns sorted by altSortCol, connected by a
// join index. Queries touching both groups pay the reconstruction
// indirection — the cost Vertica's super projections eliminate.
func (s *Store) LoadPartial(name string, schema *types.Schema, rows []types.Row, sortCol, altSortCol int, group2Cols []int) *Table {
	t := s.Load(name, schema, rows, sortCol)
	// Build the permutation before enabling the indirection (valueAt must
	// read group2 columns directly while computing the new order).
	perm := make([]int, t.rows)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return t.valueAt(altSortCol, perm[a]).Compare(t.valueAt(altSortCol, perm[b])) < 0
	})
	t.group2 = map[int]bool{}
	for _, c := range group2Cols {
		t.group2[c] = true
	}
	// inv[old] = new position within group2 ordering.
	inv := make([]int32, t.rows)
	for newPos, oldPos := range perm {
		inv[oldPos] = int32(newPos)
	}
	for c := range t.group2 {
		t.permuteColumn(c, perm)
	}
	t.joinIndex = inv
	return t
}

func (t *Table) storeColumn(c int, sorted []types.Row) {
	typ := t.Schema.Col(c).Typ
	switch typ {
	case types.Float64:
		col := make([]float64, len(sorted))
		for i, r := range sorted {
			col[i] = r[c].F
		}
		t.floats[c] = col
	case types.Varchar:
		col := make([]string, len(sorted))
		for i, r := range sorted {
			col[i] = r[c].S
		}
		t.strs[c] = col
	default:
		col := make([]int64, len(sorted))
		for i, r := range sorted {
			col[i] = r[c].I
		}
		t.ints[c] = col
	}
	nulls := make([]bool, len(sorted))
	any := false
	for i, r := range sorted {
		if r[c].Null {
			nulls[i] = true
			any = true
		}
	}
	if any {
		t.nulls[c] = nulls
		t.nullany[c] = true
	}
}

func (t *Table) permuteColumn(c int, perm []int) {
	typ := t.Schema.Col(c).Typ
	switch typ {
	case types.Float64:
		old := t.floats[c]
		out := make([]float64, len(old))
		for i, p := range perm {
			out[i] = old[p]
		}
		t.floats[c] = out
	case types.Varchar:
		old := t.strs[c]
		out := make([]string, len(old))
		for i, p := range perm {
			out[i] = old[p]
		}
		t.strs[c] = out
	default:
		old := t.ints[c]
		out := make([]int64, len(old))
		for i, p := range perm {
			out[i] = old[p]
		}
		t.ints[c] = out
	}
}

// Rows returns the table's row count.
func (t *Table) Rows() int { return t.rows }

// valueAt fetches one value, following the join index for group2 columns —
// the per-value indirection is the point.
func (t *Table) valueAt(c, pos int) types.Value {
	if t.group2 != nil && t.group2[c] {
		pos = int(t.joinIndex[pos])
	}
	if t.nullany[c] && t.nulls[c][pos] {
		return types.NewNull(t.Schema.Col(c).Typ)
	}
	typ := t.Schema.Col(c).Typ
	switch typ {
	case types.Float64:
		return types.Value{Typ: types.Float64, F: t.floats[c][pos]}
	case types.Varchar:
		return types.Value{Typ: types.Varchar, S: t.strs[c][pos]}
	default:
		return types.Value{Typ: typ, I: t.ints[c][pos]}
	}
}

// Table resolves a loaded table.
func (s *Store) Table(name string) (*Table, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("cstore: no table %q", name)
	}
	return t, nil
}

// --- single-threaded tuple-at-a-time execution -----------------------------

// Iter is the 2005-style row iterator: one tuple per call.
type Iter func() (types.Row, bool)

// Scan returns a full-width tuple iterator (reconstructing via the join
// index when partial projections are in play).
func (t *Table) Scan(cols []int) Iter {
	pos := 0
	return func() (types.Row, bool) {
		if pos >= t.rows {
			return nil, false
		}
		row := make(types.Row, len(cols))
		for i, c := range cols {
			row[i] = t.valueAt(c, pos)
		}
		pos++
		return row, true
	}
}

// Filter drops rows failing pred, one tuple at a time.
func Filter(in Iter, pred func(types.Row) bool) Iter {
	return func() (types.Row, bool) {
		for {
			r, ok := in()
			if !ok {
				return nil, false
			}
			if pred(r) {
				return r, true
			}
		}
	}
}

// HashJoin builds an in-memory hash table over build rows (keyed by
// buildKey) and probes with each input tuple; emits probe ++ build columns.
func HashJoin(probe Iter, probeKey int, build *Table, buildKey int, buildCols []int) Iter {
	ht := map[int64][]types.Row{}
	bi := build.Scan(append([]int{buildKey}, buildCols...))
	for {
		r, ok := bi()
		if !ok {
			break
		}
		ht[r[0].I] = append(ht[r[0].I], r[1:])
	}
	var pending []types.Row
	return func() (types.Row, bool) {
		for {
			if len(pending) > 0 {
				r := pending[0]
				pending = pending[1:]
				return r, true
			}
			pr, ok := probe()
			if !ok {
				return nil, false
			}
			for _, br := range ht[pr[probeKey].I] {
				pending = append(pending, append(append(types.Row{}, pr...), br...))
			}
		}
	}
}

// GroupAggKind selects the aggregate of GroupAgg.
type GroupAggKind int

// Aggregates supported by the baseline.
const (
	CountStar GroupAggKind = iota
	SumFloat
	AvgFloat
)

// GroupAgg groups tuples by keyIdx and aggregates argIdx (ignored for
// CountStar), returning (key, agg) rows sorted by key.
func GroupAgg(in Iter, keyIdx int, kind GroupAggKind, argIdx int) []types.Row {
	type acc struct {
		key   types.Value
		cnt   int64
		sum   float64
		order int
	}
	groups := map[string]*acc{}
	n := 0
	for {
		r, ok := in()
		if !ok {
			break
		}
		k := r[keyIdx].String()
		a := groups[k]
		if a == nil {
			a = &acc{key: r[keyIdx], order: n}
			n++
			groups[k] = a
		}
		a.cnt++
		if kind != CountStar {
			v := r[argIdx]
			if v.Typ == types.Float64 {
				a.sum += v.F
			} else {
				a.sum += float64(v.I)
			}
		}
	}
	out := make([]types.Row, 0, len(groups))
	for _, a := range groups {
		var v types.Value
		switch kind {
		case CountStar:
			v = types.NewInt(a.cnt)
		case SumFloat:
			v = types.NewFloat(a.sum)
		default:
			v = types.NewFloat(a.sum / float64(a.cnt))
		}
		out = append(out, types.Row{a.key, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Compare(out[j][0]) < 0 })
	return out
}

// --- storage footprint --------------------------------------------------------

// WriteDisk writes every table's columns to dir with the prototype's simple
// encoding (RLE pairs on the sort column, fixed-width/raw otherwise) and
// returns total bytes — the Table 3 "Disk Space Required" comparator.
func (s *Store) WriteDisk(dir string) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	for name, t := range s.tables {
		for c := 0; c < t.Schema.Len(); c++ {
			data := t.encodeColumn(c)
			path := filepath.Join(dir, fmt.Sprintf("%s_c%d.dat", name, c))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return 0, err
			}
			total += int64(len(data))
		}
	}
	return total, nil
}

func (t *Table) encodeColumn(c int) []byte {
	typ := t.Schema.Col(c).Typ
	if c == t.SortCol && typ != types.Float64 && typ != types.Varchar {
		// Simple RLE on the sorted column: (value, count) pairs of 8 bytes.
		var out []byte
		col := t.ints[c]
		i := 0
		for i < len(col) {
			j := i
			for j < len(col) && col[j] == col[i] {
				j++
			}
			out = appendLE64(out, uint64(col[i]))
			out = appendLE64(out, uint64(j-i))
			i = j
		}
		return out
	}
	switch typ {
	case types.Float64:
		var out []byte
		for _, f := range t.floats[c] {
			out = appendLE64(out, math.Float64bits(f))
		}
		return out
	case types.Varchar:
		var out []byte
		for _, s := range t.strs[c] {
			out = append(out, byte(len(s)))
			out = append(out, s...)
		}
		return out
	default:
		var out []byte
		for _, v := range t.ints[c] {
			out = appendLE64(out, uint64(v))
		}
		return out
	}
}

func appendLE64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}
