package stats

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Op is a comparison operator for selectivity estimation, mirroring the
// expression layer's comparison set without importing it.
type Op int

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// Bucket is one equi-height histogram bucket covering the value range
// (lower, Upper], where lower is the previous bucket's Upper (the first
// bucket includes the histogram minimum).
type Bucket struct {
	Upper types.Value `json:"upper"`
	Rows  int64       `json:"rows"`
	NDV   int64       `json:"ndv"`
}

// Histogram is an equi-height value distribution over a column's non-null
// rows: every bucket holds roughly the same number of rows, so frequent
// values get narrow buckets and selectivity estimates stay accurate in the
// dense parts of the domain (the paper's equi-height choice, §6.2).
type Histogram struct {
	Min     types.Value `json:"min"`
	Rows    int64       `json:"rows"`
	Buckets []Bucket    `json:"buckets"`
}

// buildHistogram folds a sorted non-empty value sample into at most maxB
// equi-height buckets, scaling sample counts up to totalRows.
func buildHistogram(sorted []types.Value, maxB int, totalRows int64) *Histogram {
	n := len(sorted)
	if n == 0 || totalRows <= 0 {
		return nil
	}
	h := &Histogram{Min: sorted[0], Rows: totalRows}
	height := (n + maxB - 1) / maxB
	if height < 1 {
		height = 1
	}
	count, ndv := 0, 0
	for i := 0; i < n; {
		// Advance over the full run of one value: equal values never split
		// across buckets, so equality estimates stay sharp.
		j := i + 1
		for j < n && sorted[j].Compare(sorted[i]) == 0 {
			j++
		}
		count += j - i
		ndv++
		if count >= height || j == n {
			h.Buckets = append(h.Buckets, Bucket{Upper: sorted[j-1], Rows: int64(count), NDV: int64(ndv)})
			count, ndv = 0, 0
		}
		i = j
	}
	// Scale sample counts to the full (non-sampled) row count, keeping the
	// total exact via a running remainder.
	if int64(n) != totalRows {
		var acc, prev int64
		for i := range h.Buckets {
			acc += h.Buckets[i].Rows
			scaled := acc * totalRows / int64(n)
			h.Buckets[i].Rows = scaled - prev
			prev = scaled
		}
	}
	return h
}

// String renders the bucket boundaries compactly.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram(rows=%d, min=%s)", h.Rows, h.Min)
	for _, b := range h.Buckets {
		fmt.Fprintf(&sb, " [<=%s: %d rows, %d ndv]", b.Upper, b.Rows, b.NDV)
	}
	return sb.String()
}

// valueFloat projects a value onto the real line for in-bucket
// interpolation; ok is false for types with no meaningful metric (VARCHAR).
func valueFloat(v types.Value) (float64, bool) {
	switch v.Typ {
	case types.Int64, types.Timestamp, types.Bool:
		return float64(v.I), true
	case types.Float64:
		return v.F, true
	default:
		return 0, false
	}
}

// fracBelow estimates the fraction of rows with value < v (or <= v when
// inclusive). The cross-type comparison rules are types.Value.Compare's.
func (h *Histogram) fracBelow(v types.Value, inclusive bool) float64 {
	if len(h.Buckets) == 0 || h.Rows <= 0 {
		return 0
	}
	cmpMin := v.Compare(h.Min)
	if cmpMin < 0 || (cmpMin == 0 && !inclusive) {
		return 0
	}
	var below int64
	lower := h.Min
	for i, b := range h.Buckets {
		c := v.Compare(b.Upper)
		if c > 0 || (c == 0 && inclusive) {
			below += b.Rows
			lower = b.Upper
			continue
		}
		// v falls inside bucket i: interpolate between the bucket bounds.
		frac := 0.5
		lo, okLo := valueFloat(lower)
		hi, okHi := valueFloat(b.Upper)
		val, okV := valueFloat(v)
		if okLo && okHi && okV && hi > lo {
			frac = (val - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
		}
		if c == 0 { // v == Upper, exclusive: everything but the top value
			frac = 1
			if b.NDV > 0 {
				frac = 1 - 1/float64(b.NDV)
			}
		}
		est := float64(below) + frac*float64(b.Rows)
		// Exclusive bound at a bucket's lower edge contributes nothing of
		// this bucket beyond the interpolation above.
		_ = i
		return clamp01(est / float64(h.Rows))
	}
	return 1
}

// FracEq estimates the fraction of non-null rows equal to v: the containing
// bucket's rows spread uniformly over its distinct values.
func (h *Histogram) FracEq(v types.Value) float64 {
	if len(h.Buckets) == 0 || h.Rows <= 0 {
		return 0
	}
	if v.Compare(h.Min) < 0 {
		return 0
	}
	for _, b := range h.Buckets {
		if v.Compare(b.Upper) <= 0 {
			if b.Rows <= 0 {
				return 0
			}
			ndv := b.NDV
			if ndv < 1 {
				ndv = 1
			}
			return clamp01(float64(b.Rows) / float64(ndv) / float64(h.Rows))
		}
	}
	return 0
}

// FracCmp estimates the fraction of non-null rows satisfying <col> op v.
func (h *Histogram) FracCmp(op Op, v types.Value) float64 {
	switch op {
	case OpEq:
		return h.FracEq(v)
	case OpNe:
		return clamp01(1 - h.FracEq(v))
	case OpLt:
		return h.fracBelow(v, false)
	case OpLe:
		return h.fracBelow(v, true)
	case OpGt:
		return clamp01(1 - h.fracBelow(v, true))
	case OpGe:
		return clamp01(1 - h.fracBelow(v, false))
	default:
		return 1
	}
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// --- ColumnStats estimation over all rows (NULL-aware) ----------------------

// nonNullFrac converts a fraction of non-null rows into a fraction of all
// rows (SQL comparisons are never true for NULL inputs).
func (cs *ColumnStats) nonNullFrac(f float64) float64 {
	if cs.RowCount <= 0 {
		return 0
	}
	return clamp01(f * float64(cs.NonNull()) / float64(cs.RowCount))
}

// SelectivityCmp estimates the fraction of the table's rows satisfying
// <col> op v.
func (cs *ColumnStats) SelectivityCmp(op Op, v types.Value) float64 {
	if cs.RowCount <= 0 {
		return 0
	}
	if v.Null {
		return 0 // <col> op NULL is never true
	}
	if cs.Hist != nil {
		return cs.nonNullFrac(cs.Hist.FracCmp(op, v))
	}
	// No histogram (all-NULL column): nothing matches but NE of nothing.
	if cs.NonNull() == 0 {
		return 0
	}
	// Histogram-less fallback: NDV for equality, a third for ranges.
	switch op {
	case OpEq:
		ndv := cs.NDV
		if ndv < 1 {
			ndv = 1
		}
		return cs.nonNullFrac(1 / float64(ndv))
	case OpNe:
		ndv := cs.NDV
		if ndv < 1 {
			ndv = 1
		}
		return cs.nonNullFrac(1 - 1/float64(ndv))
	default:
		return cs.nonNullFrac(1.0 / 3)
	}
}

// SelectivityIn estimates the fraction of rows whose value is in vals.
func (cs *ColumnStats) SelectivityIn(vals []types.Value, negate bool) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += cs.SelectivityCmp(OpEq, v)
	}
	sum = clamp01(sum)
	if negate {
		// NOT IN is false for NULL rows too.
		return clamp01(cs.nonNullFrac(1) - sum)
	}
	return sum
}

// SelectivityIsNull estimates IS [NOT] NULL selectivity.
func (cs *ColumnStats) SelectivityIsNull(negate bool) float64 {
	f := cs.NullFraction()
	if negate {
		return clamp01(1 - f)
	}
	return clamp01(f)
}
