// Package stats implements per-column statistics for the cost-based
// optimizer (paper §6.2): Vertica's StarOpt/V2Opt "uses histograms to
// determine predicate selectivity" and per-column distinct-value counts to
// size join outputs. A ColumnStats carries row/null counts, min/max, an
// NDV estimate from a small HLL-style sketch, and an equi-height histogram
// with a configurable bucket count. Statistics are computed by
// ANALYZE_STATISTICS (which scans ROS+WOS through the normal executor
// path), persisted in the catalog next to their table, and consumed by the
// optimizer's estimation layer.
//
// # Invariants
//
// Everything in this package is deterministic for a given input sequence:
// the value sample uses a seeded xorshift reservoir, so repeated ANALYZE
// runs over identical data produce identical statistics (and identical
// plans, identical EXPLAIN goldens, and identical plan-derived memory
// grants). Statistics are a consistent snapshot of one scan — RowCount ≥
// NullCount, Min ≤ Max over non-null values, and histogram bucket
// populations sum to the sampled (non-null) rows — but they are not kept
// fresh: DML after ANALYZE_STATISTICS does not invalidate them, so
// estimates derived from stale statistics may be arbitrarily wrong while
// remaining well-formed. Estimation functions clamp to [0, RowCount] and
// fall back to shape heuristics rather than extrapolate beyond the
// observed min/max. Histograms are built over a bounded reservoir sample
// and scaled to the full row count, so bucket boundaries are approximate
// on very large columns while NDV and min/max come from sketches over
// every value.
package stats

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// DefaultBuckets is the histogram bucket count when none is configured.
const DefaultBuckets = 32

// MaxBuckets bounds user-requested bucket counts (catalog snapshots embed
// every bucket boundary).
const MaxBuckets = 1024

// sampleCap bounds the builder's value reservoir. Histograms are built over
// the sample and scaled back to the full row count; NDV and min/max come
// from sketches over every value, so only bucket boundaries are approximate
// on very large columns.
const sampleCap = 1 << 16

// ColumnStats is the persisted statistics record of one table column.
type ColumnStats struct {
	Column    string `json:"column"`
	RowCount  int64  `json:"row_count"`
	NullCount int64  `json:"null_count"`
	// Min and Max are the observed extremes of non-null values; both are
	// NULL values when the column held no non-null rows.
	Min types.Value `json:"min"`
	Max types.Value `json:"max"`
	// NDV is the estimated number of distinct non-null values.
	NDV  int64      `json:"ndv"`
	Hist *Histogram `json:"histogram,omitempty"`
}

// NonNull is the number of non-null rows.
func (cs *ColumnStats) NonNull() int64 { return cs.RowCount - cs.NullCount }

// NullFraction is the fraction of rows that are NULL.
func (cs *ColumnStats) NullFraction() float64 {
	if cs.RowCount <= 0 {
		return 0
	}
	return float64(cs.NullCount) / float64(cs.RowCount)
}

// String renders the stats for EXPLAIN notes and debugging.
func (cs *ColumnStats) String() string {
	b := 0
	if cs.Hist != nil {
		b = len(cs.Hist.Buckets)
	}
	return fmt.Sprintf("stats(%s: rows=%d nulls=%d ndv=%d buckets=%d)",
		cs.Column, cs.RowCount, cs.NullCount, cs.NDV, b)
}

// Builder accumulates one column's values and produces its ColumnStats.
type Builder struct {
	column string
	typ    types.Type

	rows   int64
	nulls  int64
	min    types.Value
	max    types.Value
	sketch sketch

	// Deterministic reservoir sample of non-null values.
	sample []types.Value
	seen   int64 // non-null values observed
	rng    uint64
}

// NewBuilder starts statistics collection for one column.
func NewBuilder(column string, typ types.Type) *Builder {
	return &Builder{
		column: column,
		typ:    typ,
		min:    types.NewNull(typ),
		max:    types.NewNull(typ),
		rng:    0x9e3779b97f4a7c15, // fixed seed: ANALYZE is deterministic
	}
}

// nextRand is a xorshift64* step: cheap, seeded, deterministic.
func (b *Builder) nextRand() uint64 {
	x := b.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	b.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Add feeds one value into the builder.
func (b *Builder) Add(v types.Value) {
	b.rows++
	if v.Null {
		b.nulls++
		return
	}
	if b.min.Null || v.Compare(b.min) < 0 {
		b.min = v
	}
	if b.max.Null || v.Compare(b.max) > 0 {
		b.max = v
	}
	b.sketch.add(types.HashValue(v))
	b.seen++
	if len(b.sample) < sampleCap {
		b.sample = append(b.sample, v)
		return
	}
	// Reservoir replacement keeps the sample uniform over the stream.
	if j := b.nextRand() % uint64(b.seen); j < sampleCap {
		b.sample[j] = v
	}
}

// Build finalizes the statistics with an equi-height histogram of at most
// buckets buckets (<= 0 takes DefaultBuckets).
func (b *Builder) Build(buckets int) *ColumnStats {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	if buckets > MaxBuckets {
		buckets = MaxBuckets
	}
	cs := &ColumnStats{
		Column:    b.column,
		RowCount:  b.rows,
		NullCount: b.nulls,
		Min:       b.min,
		Max:       b.max,
		NDV:       b.sketch.estimate(),
	}
	if nn := cs.NonNull(); cs.NDV > nn {
		cs.NDV = nn // a sketch can never legitimately exceed the row count
	}
	if len(b.sample) > 0 {
		sorted := append([]types.Value{}, b.sample...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
		cs.Hist = buildHistogram(sorted, buckets, cs.NonNull())
	}
	return cs
}
