package stats

import (
	"encoding/binary"
	"testing"

	"repro/internal/types"
)

// FuzzHistogramEstimate checks the estimator invariant the optimizer relies
// on: for any column contents and any predicate, the estimated matching row
// count stays within [0, rowcount].
func FuzzHistogramEstimate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), int64(3), uint8(4))
	f.Add([]byte{0xff, 0xff, 0, 0, 9}, uint8(4), int64(-1), uint8(1))
	f.Add([]byte{}, uint8(2), int64(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, opByte uint8, probe int64, buckets uint8) {
		b := NewBuilder("c", types.Int64)
		for len(data) >= 2 {
			if data[0]%7 == 0 {
				b.Add(types.NewNull(types.Int64))
				data = data[1:]
				continue
			}
			var v int64
			if len(data) >= 9 {
				v = int64(binary.LittleEndian.Uint64(data[1:9]))
				data = data[9:]
			} else {
				v = int64(int8(data[1]))
				data = data[2:]
			}
			b.Add(types.NewInt(v))
		}
		cs := b.Build(int(buckets))
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		val := types.NewInt(probe)
		check := func(name string, sel float64) {
			if sel < 0 || sel > 1 {
				t.Fatalf("%s selectivity %v outside [0,1] (stats %+v)", name, sel, cs)
			}
			est := sel * float64(cs.RowCount)
			if est < 0 || est > float64(cs.RowCount) {
				t.Fatalf("%s estimate %v outside [0, %d]", name, est, cs.RowCount)
			}
		}
		for _, op := range ops {
			check("cmp", cs.SelectivityCmp(op, val))
		}
		check("in", cs.SelectivityIn([]types.Value{val, types.NewInt(probe + 1)}, false))
		check("not-in", cs.SelectivityIn([]types.Value{val}, true))
		check("isnull", cs.SelectivityIsNull(false))
		check("isnotnull", cs.SelectivityIsNull(true))
		check("null-probe", cs.SelectivityCmp(OpEq, types.NewNull(types.Int64)))
	})
}
