package stats

import "math"

// sketch is a small HyperLogLog-style distinct counter: 256 registers each
// remembering the maximum leading-zero run observed for hashes routed to
// them. 256 registers give a relative error around 6.5% — plenty for
// cardinality estimation, where being within 2x is already decisive — at a
// fixed 256-byte footprint per column regardless of table size.
type sketch struct {
	regs [sketchRegs]uint8
}

const (
	sketchBits = 8 // register index bits
	sketchRegs = 1 << sketchBits
)

// mix64 is a splitmix64-style finalizer: the engine's FNV value hashes are
// stable and cheap but their high bits avalanche poorly on near-sequential
// inputs, which HLL register selection is very sensitive to.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// add routes one 64-bit hash into the sketch.
func (s *sketch) add(h uint64) {
	h = mix64(h)
	idx := h >> (64 - sketchBits)
	rest := h<<sketchBits | 1 // low bit set: rank is at most 64-sketchBits
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s.regs[idx] {
		s.regs[idx] = rank
	}
}

// estimate returns the distinct count estimate with the standard HLL bias
// correction and linear counting for the small range.
func (s *sketch) estimate() int64 {
	const m = float64(sketchRegs)
	sum := 0.0
	zeros := 0
	for _, r := range s.regs {
		sum += 1.0 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	// alpha_m for m=256 per the HLL paper.
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting is more accurate here.
		est = m * math.Log(m/float64(zeros))
	}
	if est < 0 {
		return 0
	}
	return int64(est + 0.5)
}
