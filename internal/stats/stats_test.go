package stats

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/types"
)

func buildInts(t *testing.T, buckets int, vals ...int64) *ColumnStats {
	t.Helper()
	b := NewBuilder("c", types.Int64)
	for _, v := range vals {
		b.Add(types.NewInt(v))
	}
	return b.Build(buckets)
}

func TestBuilderCountsAndExtremes(t *testing.T) {
	b := NewBuilder("c", types.Int64)
	for i := int64(1); i <= 100; i++ {
		b.Add(types.NewInt(i))
	}
	b.Add(types.NewNull(types.Int64))
	b.Add(types.NewNull(types.Int64))
	cs := b.Build(8)
	if cs.RowCount != 102 || cs.NullCount != 2 || cs.NonNull() != 100 {
		t.Fatalf("counts: %+v", cs)
	}
	if cs.Min.I != 1 || cs.Max.I != 100 {
		t.Fatalf("min/max: %s %s", cs.Min, cs.Max)
	}
	if cs.NDV < 90 || cs.NDV > 110 {
		t.Fatalf("NDV estimate %d far from 100", cs.NDV)
	}
	if cs.Hist == nil || len(cs.Hist.Buckets) == 0 || len(cs.Hist.Buckets) > 8 {
		t.Fatalf("histogram: %+v", cs.Hist)
	}
	var total int64
	for _, bk := range cs.Hist.Buckets {
		total += bk.Rows
	}
	if total != 100 {
		t.Fatalf("bucket rows sum %d, want 100", total)
	}
}

func TestAllNullColumn(t *testing.T) {
	b := NewBuilder("c", types.Int64)
	for i := 0; i < 10; i++ {
		b.Add(types.NewNull(types.Int64))
	}
	cs := b.Build(4)
	if cs.RowCount != 10 || cs.NullCount != 10 {
		t.Fatalf("counts: %+v", cs)
	}
	if !cs.Min.Null || !cs.Max.Null {
		t.Fatalf("min/max should be NULL: %s %s", cs.Min, cs.Max)
	}
	if cs.NDV != 0 {
		t.Fatalf("NDV of all-null column: %d", cs.NDV)
	}
	if cs.Hist != nil {
		t.Fatalf("all-null column should have no histogram")
	}
	if got := cs.SelectivityCmp(OpEq, types.NewInt(5)); got != 0 {
		t.Fatalf("eq selectivity on all-null column: %v", got)
	}
	if got := cs.SelectivityIsNull(false); got != 1 {
		t.Fatalf("IS NULL selectivity: %v", got)
	}
	if got := cs.SelectivityIsNull(true); got != 0 {
		t.Fatalf("IS NOT NULL selectivity: %v", got)
	}
}

func TestSingleValueColumn(t *testing.T) {
	cs := buildInts(t, 8, 7, 7, 7, 7, 7)
	if cs.NDV != 1 {
		t.Fatalf("NDV: %d", cs.NDV)
	}
	if len(cs.Hist.Buckets) != 1 {
		t.Fatalf("buckets: %+v", cs.Hist.Buckets)
	}
	if got := cs.SelectivityCmp(OpEq, types.NewInt(7)); got < 0.99 {
		t.Fatalf("eq on the single value: %v", got)
	}
	if got := cs.SelectivityCmp(OpEq, types.NewInt(8)); got != 0 {
		t.Fatalf("eq off the single value: %v", got)
	}
	if got := cs.SelectivityCmp(OpLt, types.NewInt(7)); got != 0 {
		t.Fatalf("lt the single value: %v", got)
	}
	if got := cs.SelectivityCmp(OpGe, types.NewInt(7)); got < 0.99 {
		t.Fatalf("ge the single value: %v", got)
	}
}

func TestNDVAboveBucketCount(t *testing.T) {
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i)
	}
	cs := buildInts(t, 4, vals...)
	if len(cs.Hist.Buckets) > 4 {
		t.Fatalf("bucket count %d exceeds 4", len(cs.Hist.Buckets))
	}
	if cs.NDV < 900 || cs.NDV > 1100 {
		t.Fatalf("NDV %d far from 1000", cs.NDV)
	}
	// Range estimates interpolate inside wide buckets.
	got := cs.SelectivityCmp(OpLt, types.NewInt(500))
	if got < 0.4 || got > 0.6 {
		t.Fatalf("lt 500 over uniform 0..999: %v", got)
	}
	// Equality spreads a bucket over its distinct values.
	eq := cs.SelectivityCmp(OpEq, types.NewInt(123))
	if eq <= 0 || eq > 0.01 {
		t.Fatalf("eq on 1000-distinct column: %v", eq)
	}
}

func TestSkewedEquiHeight(t *testing.T) {
	// 900 copies of 1, then 1..100 once each: equi-height isolates the
	// heavy value so its equality estimate is far above 1/NDV.
	b := NewBuilder("c", types.Int64)
	for i := 0; i < 900; i++ {
		b.Add(types.NewInt(1))
	}
	for i := int64(1); i <= 100; i++ {
		b.Add(types.NewInt(i))
	}
	cs := b.Build(10)
	hot := cs.SelectivityCmp(OpEq, types.NewInt(1))
	cold := cs.SelectivityCmp(OpEq, types.NewInt(90))
	if hot < 0.5 {
		t.Fatalf("hot value estimate %v, want > 0.5", hot)
	}
	if cold > 0.1 {
		t.Fatalf("cold value estimate %v, want < 0.1", cold)
	}
}

func TestSelectivityInAndRanges(t *testing.T) {
	var vals []int64
	for i := int64(1); i <= 100; i++ {
		vals = append(vals, i)
	}
	cs := buildInts(t, 10, vals...)
	in := cs.SelectivityIn([]types.Value{types.NewInt(3), types.NewInt(50), types.NewInt(999)}, false)
	if in <= 0 || in > 0.1 {
		t.Fatalf("IN estimate: %v", in)
	}
	notIn := cs.SelectivityIn([]types.Value{types.NewInt(3)}, true)
	if notIn < 0.9 || notIn > 1 {
		t.Fatalf("NOT IN estimate: %v", notIn)
	}
	if got := cs.SelectivityCmp(OpLe, types.NewInt(0)); got != 0 {
		t.Fatalf("le below min: %v", got)
	}
	if got := cs.SelectivityCmp(OpGt, types.NewInt(100)); got != 0 {
		t.Fatalf("gt above max: %v", got)
	}
	if got := cs.SelectivityCmp(OpGe, types.NewInt(1)); got < 0.99 {
		t.Fatalf("ge min: %v", got)
	}
	between := cs.SelectivityCmp(OpGe, types.NewInt(20)) +
		cs.SelectivityCmp(OpLe, types.NewInt(40)) - 1
	if between < 0.1 || between > 0.35 {
		t.Fatalf("20..40 over 1..100: %v", between)
	}
}

func TestVarcharHistogram(t *testing.T) {
	b := NewBuilder("c", types.Varchar)
	for _, s := range []string{"ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen"} {
		b.Add(types.NewString(s))
	}
	cs := b.Build(4)
	if cs.Min.S != "ant" || cs.Max.S != "hen" {
		t.Fatalf("min/max: %s %s", cs.Min, cs.Max)
	}
	// No metric on strings: in-bucket interpolation falls back to 1/2.
	got := cs.SelectivityCmp(OpLt, types.NewString("cow"))
	if got <= 0 || got >= 1 {
		t.Fatalf("string range estimate out of (0,1): %v", got)
	}
	if eq := cs.SelectivityCmp(OpEq, types.NewString("dog")); eq <= 0 || eq > 0.5 {
		t.Fatalf("string eq estimate: %v", eq)
	}
}

func TestReservoirSamplingBeyondCap(t *testing.T) {
	b := NewBuilder("c", types.Int64)
	n := int64(sampleCap + 20000)
	for i := int64(0); i < n; i++ {
		b.Add(types.NewInt(i % 1000))
	}
	cs := b.Build(16)
	if cs.RowCount != n {
		t.Fatalf("rows: %d", cs.RowCount)
	}
	var total int64
	for _, bk := range cs.Hist.Buckets {
		total += bk.Rows
	}
	if total != n {
		t.Fatalf("scaled bucket rows sum %d, want %d", total, n)
	}
	// Determinism: the same stream yields the same stats.
	b2 := NewBuilder("c", types.Int64)
	for i := int64(0); i < n; i++ {
		b2.Add(types.NewInt(i % 1000))
	}
	cs2 := b2.Build(16)
	j1, _ := json.Marshal(cs)
	j2, _ := json.Marshal(cs2)
	if string(j1) != string(j2) {
		t.Fatalf("ANALYZE is not deterministic:\n%s\n%s", j1, j2)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cs := buildInts(t, 4, 1, 2, 2, 3, 4, 5, 5, 5)
	blob, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}
	var back ColumnStats
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.RowCount != cs.RowCount || back.NDV != cs.NDV {
		t.Fatalf("round trip lost counters: %+v", back)
	}
	if back.Hist == nil || len(back.Hist.Buckets) != len(cs.Hist.Buckets) {
		t.Fatalf("round trip lost histogram: %+v", back.Hist)
	}
	if got := back.SelectivityCmp(OpEq, types.NewInt(5)); got <= 0 {
		t.Fatalf("deserialized stats unusable: %v", got)
	}
}

func TestSketchAccuracy(t *testing.T) {
	for _, n := range []int64{1, 10, 100, 5000, 100000} {
		var s sketch
		for i := int64(0); i < n; i++ {
			s.add(types.HashValue(types.NewInt(i)))
		}
		est := s.estimate()
		lo, hi := n*8/10, n*12/10
		if n <= 10 {
			lo, hi = n-1, n+1 // linear counting is near-exact when sparse
		}
		if est < lo || est > hi {
			t.Fatalf("n=%d: estimate %d outside [%d, %d]", n, est, lo, hi)
		}
	}
}

func TestBuildHistogramDegenerate(t *testing.T) {
	if h := buildHistogram(nil, 4, 0); h != nil {
		t.Fatalf("empty input built %+v", h)
	}
	cs := buildInts(t, 0) // no values at all
	if cs.Hist != nil || cs.RowCount != 0 {
		t.Fatalf("no-input stats: %+v", cs)
	}
	if got := cs.SelectivityCmp(OpEq, types.NewInt(1)); got != 0 {
		t.Fatalf("selectivity over empty table: %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	cs := buildInts(t, 2, 1, 2, 3, 4)
	if s := cs.String(); !strings.Contains(s, "rows=4") {
		t.Fatalf("ColumnStats.String: %q", s)
	}
	if s := cs.Hist.String(); !strings.Contains(s, "histogram(rows=4") {
		t.Fatalf("Histogram.String: %q", s)
	}
	all := NewBuilder("c", types.Int64)
	all.Add(types.NewNull(types.Int64))
	if s := all.Build(2).String(); !strings.Contains(s, "buckets=0") {
		t.Fatalf("histogram-less String: %q", s)
	}
}

func TestHistogramlessFallbacks(t *testing.T) {
	// A ColumnStats without a histogram (e.g. a hand-written or pruned
	// record) falls back to NDV-based equality and 1/3 ranges.
	cs := &ColumnStats{Column: "c", RowCount: 100, NullCount: 10, NDV: 30,
		Min: types.NewInt(1), Max: types.NewInt(90)}
	eq := cs.SelectivityCmp(OpEq, types.NewInt(5))
	if eq <= 0.02 || eq >= 0.04 {
		t.Fatalf("NDV fallback eq: %v", eq)
	}
	ne := cs.SelectivityCmp(OpNe, types.NewInt(5))
	if ne <= 0.8 || ne > 0.9 {
		t.Fatalf("NDV fallback ne: %v", ne)
	}
	rng := cs.SelectivityCmp(OpLt, types.NewInt(50))
	if rng <= 0.25 || rng >= 0.35 {
		t.Fatalf("range fallback: %v", rng)
	}
	zero := &ColumnStats{Column: "c", NDV: 0}
	if got := zero.SelectivityCmp(OpEq, types.NewInt(1)); got != 0 {
		t.Fatalf("empty-table cmp: %v", got)
	}
}

func TestFracCmpOperators(t *testing.T) {
	var vals []int64
	for i := int64(1); i <= 50; i++ {
		vals = append(vals, i)
	}
	cs := buildInts(t, 5, vals...)
	h := cs.Hist
	v := types.NewInt(25)
	if lt, le := h.FracCmp(OpLt, v), h.FracCmp(OpLe, v); le < lt {
		t.Fatalf("le %v < lt %v", le, lt)
	}
	if gt, ge := h.FracCmp(OpGt, v), h.FracCmp(OpGe, v); ge < gt {
		t.Fatalf("ge %v < gt %v", ge, gt)
	}
	sum := h.FracCmp(OpLt, v) + h.FracCmp(OpEq, v) + h.FracCmp(OpGt, v)
	if sum < 0.9 || sum > 1.1 {
		t.Fatalf("lt+eq+gt should be ~1, got %v", sum)
	}
	if ne := h.FracCmp(OpNe, v); ne < 0.9 {
		t.Fatalf("ne: %v", ne)
	}
	if got := h.FracCmp(Op(99), v); got != 1 {
		t.Fatalf("unknown op must be conservative: %v", got)
	}
	if got := h.FracEq(types.NewInt(-5)); got != 0 {
		t.Fatalf("eq below min: %v", got)
	}
	if got := h.FracEq(types.NewInt(500)); got != 0 {
		t.Fatalf("eq above max: %v", got)
	}
	if got := h.FracCmp(OpLt, types.NewInt(500)); got != 1 {
		t.Fatalf("lt above max: %v", got)
	}
	// Boolean projection of values for interpolation.
	if f, ok := valueFloat(types.NewBool(true)); !ok || f != 1 {
		t.Fatalf("valueFloat(bool): %v %v", f, ok)
	}
	if f, ok := valueFloat(types.NewFloat(2.5)); !ok || f != 2.5 {
		t.Fatalf("valueFloat(float): %v %v", f, ok)
	}
}
