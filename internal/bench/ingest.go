// Continuous-ingest scenario driver: the paper's core operating mode —
// "continuous load and query" (§1, §4) — as a single closed-loop harness.
// Concurrent writers stream INSERTs into the WOS, the tuple mover runs
// moveout/mergeout continuously, and analytical readers issue TLP-checked
// queries the whole time: some at the live read epoch, some pinned at a
// historical epoch (whose results must stay frozen across moveouts — the
// paper's claim that the tuple mover never changes what any epoch sees).
// Every reader query is a correctness probe, so the driver doubles as a
// race harness (run under -race) and a throughput/latency benchmark.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sqltest"
	"repro/internal/types"
)

// IngestConfig configures one RunContinuousIngest scenario.
type IngestConfig struct {
	// Dir is the database directory (use a fresh temp dir).
	Dir string
	// Duration is the scenario's wall-clock budget.
	Duration time.Duration
	// Writers is the number of concurrent INSERT streams (default 2).
	Writers int
	// LiveReaders issue TLP checks at the live read epoch (default 1).
	LiveReaders int
	// PinnedReaders issue TLP checks pinned at a pre-run historical epoch
	// and assert its COUNT(*) never changes (default 1).
	PinnedReaders int
	// BatchRows is the multi-row VALUES size per INSERT (default 20).
	BatchRows int
	// Parallelism is the engine's intra-node parallelism (default 2).
	Parallelism int
	// WOSMaxBytes bounds the WOS so moveouts actually happen (default 1 MiB).
	WOSMaxBytes int64
	// Seed drives all generated data and predicates (default 1).
	Seed int64
	// DCCapacity sizes the engine's Data Collector rings (0 = engine
	// default, negative disables collection) — see core.Options.DCCapacity.
	DCCapacity int
	// Inspect, when non-nil, runs against the still-open database after all
	// scenario goroutines have drained, so tests can assert on engine state
	// (e.g. Data Collector ring contents) accumulated during the run.
	Inspect func(db *core.Database) error
}

// IngestReport is the scenario outcome.
type IngestReport struct {
	Elapsed          time.Duration
	RowsIngested     int64
	IngestRowsPerSec float64
	MoverCycles      int64
	RowsMovedOut     int64
	Merges           int64
	ReaderQueries    int64 // individual SELECTs issued by readers
	TLPChecks        int64 // completed 4-query TLP identities
	P50, P99         time.Duration
}

func (c *IngestConfig) defaults() {
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Writers <= 0 {
		c.Writers = 2
	}
	if c.LiveReaders < 0 {
		c.LiveReaders = 0
	}
	if c.LiveReaders == 0 && c.PinnedReaders == 0 {
		c.LiveReaders, c.PinnedReaders = 1, 1
	}
	if c.BatchRows <= 0 {
		c.BatchRows = 20
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.WOSMaxBytes <= 0 {
		c.WOSMaxBytes = 1 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// eventsProfile is the static generator profile for the ingest table; the
// samples span the writers' value domains so generated predicates select
// interestingly.
func eventsProfile() []sqltest.TableProfile {
	return []sqltest.TableProfile{{
		Name: "events",
		Cols: []sqltest.ColProfile{
			{Name: "id", Typ: types.Int64, Samples: []string{"3", "40", "500", "100007"}},
			{Name: "grp", Typ: types.Int64, Samples: []string{"0", "2", "5", "7"}},
			{Name: "val", Typ: types.Float64, Samples: []string{"-9.5", "0.5", "7.5", "18.5"}},
			{Name: "note", Typ: types.Varchar, Samples: []string{"'alpha'", "'beta'", "'gamma'", "'o''brien'"}},
		},
	}}
}

var noteDomain = []string{"'alpha'", "'beta'", "'gamma'", "'o''brien'", "NULL"}

// latencies is a concurrency-safe duration recorder.
type latencies struct {
	mu sync.Mutex
	ds []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

func (l *latencies) percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// RunContinuousIngest runs the scenario and returns its report. Any
// correctness violation (TLP identity broken, pinned epoch drifting,
// parallel/serial divergence surfaced as a query error) aborts the run and
// is returned as an error.
func RunContinuousIngest(cfg IngestConfig) (*IngestReport, error) {
	cfg.defaults()
	db, err := core.Open(core.Options{
		Dir:          cfg.Dir,
		Parallelism:  cfg.Parallelism,
		WOSMaxBytes:  cfg.WOSMaxBytes,
		MemPoolBytes: 256 << 20,
		// Writers, readers and the mover all run at once; don't let the
		// admission queue serialize the scenario.
		MaxConcurrency: cfg.Writers + cfg.LiveReaders + cfg.PinnedReaders + 4,
		DCCapacity:     cfg.DCCapacity,
	})
	if err != nil {
		return nil, err
	}
	for _, stmt := range []string{
		"CREATE TABLE events (id INT, grp INT, val FLOAT, note VARCHAR)",
		"CREATE PROJECTION events_super ON events (id, grp, val, note) ORDER BY grp",
	} {
		if _, err := db.Execute(stmt); err != nil {
			return nil, err
		}
	}
	// Pinned readers need their epoch's history to survive the whole run.
	db.Txns().Epochs.HoldAHM(true)

	// Seed enough data that the pinned epoch has something to see, then
	// capture the pin: epoch + its frozen COUNT.
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	if _, err := db.Execute(insertBatch(seedRng, 0, 100)); err != nil {
		return nil, err
	}
	pinEpoch := db.Txns().Epochs.ReadEpoch()
	pinRes, err := db.QueryAt("SELECT COUNT(*) FROM events", pinEpoch)
	if err != nil {
		return nil, err
	}
	pinCount := strings.Join(sqltest.RenderRows(pinRes), "\n")

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	var (
		wg        sync.WaitGroup
		errOnce   sync.Once
		runErr    error
		rows      atomic.Int64
		moverRuns atomic.Int64
		movedOut  atomic.Int64
		merges    atomic.Int64
		queries   atomic.Int64
		tlpChecks atomic.Int64
		lat       latencies
		idSeq     atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			cancel()
		})
	}

	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w) + 1))
			for ctx.Err() == nil {
				base := idSeq.Add(int64(cfg.BatchRows)) - int64(cfg.BatchRows)
				if _, err := db.ExecuteContext(ctx, insertBatch(rng, base+1000, cfg.BatchRows)); err != nil {
					if ctx.Err() == nil {
						fail(fmt.Errorf("writer %d: %w", w, err))
					}
					return
				}
				rows.Add(int64(cfg.BatchRows))
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			moved, merged, err := db.RunTupleMover()
			if err != nil {
				if ctx.Err() == nil {
					fail(fmt.Errorf("tuple mover: %w", err))
				}
				return
			}
			moverRuns.Add(1)
			movedOut.Add(int64(moved))
			merges.Add(int64(merged))
		}
	}()

	reader := func(r int, pinned bool) {
		defer wg.Done()
		g := sqltest.NewQGen(cfg.Seed+int64(100+r), eventsProfile())
		for ctx.Err() == nil {
			_, pred := g.NextPredicate()
			epoch := db.Txns().Epochs.ReadEpoch()
			if pinned {
				epoch = pinEpoch
			}
			if err := tlpCheckAt(ctx, db, epoch, pred, &lat, &queries); err != nil {
				if ctx.Err() == nil {
					fail(fmt.Errorf("reader %d (epoch %d): %w", r, epoch, err))
				}
				return
			}
			tlpChecks.Add(1)
			if pinned {
				start := time.Now()
				res, err := db.QueryAtContext(ctx, "SELECT COUNT(*) FROM events", pinEpoch)
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					fail(fmt.Errorf("pinned reader %d: %w", r, err))
					return
				}
				lat.add(time.Since(start))
				queries.Add(1)
				if got := strings.Join(sqltest.RenderRows(res), "\n"); got != pinCount {
					fail(fmt.Errorf("pinned reader %d: COUNT(*) at epoch %d drifted from %s to %s across moveouts",
						r, pinEpoch, pinCount, got))
					return
				}
			}
		}
	}
	for r := 0; r < cfg.LiveReaders; r++ {
		wg.Add(1)
		go reader(r, false)
	}
	for r := 0; r < cfg.PinnedReaders; r++ {
		wg.Add(1)
		go reader(cfg.LiveReaders+r, true)
	}

	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}
	if cfg.Inspect != nil {
		if err := cfg.Inspect(db); err != nil {
			return nil, err
		}
	}
	rep := &IngestReport{
		Elapsed:       elapsed,
		RowsIngested:  rows.Load(),
		MoverCycles:   moverRuns.Load(),
		RowsMovedOut:  movedOut.Load(),
		Merges:        merges.Load(),
		ReaderQueries: queries.Load(),
		TLPChecks:     tlpChecks.Load(),
		P50:           lat.percentile(0.50),
		P99:           lat.percentile(0.99),
	}
	rep.IngestRowsPerSec = float64(rep.RowsIngested) / elapsed.Seconds()
	return rep, nil
}

// tlpCheckAt runs one TLP identity (unpartitioned vs p / NOT p / p IS NULL)
// with all four queries pinned at the same epoch, so the identity holds even
// while writers and the tuple mover churn the storage underneath.
func tlpCheckAt(ctx context.Context, db *core.Database, epoch types.Epoch, pred string, lat *latencies, queries *atomic.Int64) error {
	base := "SELECT id, grp, val, note FROM events"
	sqls := []string{
		base,
		base + " WHERE " + pred,
		base + " WHERE NOT (" + pred + ")",
		base + " WHERE (" + pred + ") IS NULL",
	}
	parts := make([][]string, 0, len(sqls))
	for _, q := range sqls {
		start := time.Now()
		res, err := db.QueryAtContext(ctx, q, epoch)
		if ctx.Err() != nil {
			return nil // shutdown race, not a finding
		}
		if err != nil {
			return fmt.Errorf("%w\n  %s", err, q)
		}
		lat.add(time.Since(start))
		queries.Add(1)
		parts = append(parts, sqltest.RenderRows(res))
	}
	if err := sqltest.CheckTLP(parts[0], parts[1], parts[2], parts[3]); err != nil {
		return fmt.Errorf("TLP violation: %v\n  %s\n  WHERE %s", err, base, pred)
	}
	return nil
}

// insertBatch renders one multi-row INSERT with ids from base, ~12% NULLs
// per nullable column, and exactly representable float halves.
func insertBatch(rng *rand.Rand, base int64, n int) string {
	var b strings.Builder
	b.WriteString("INSERT INTO events VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		grp, val, note := "NULL", "NULL", noteDomain[rng.Intn(len(noteDomain))]
		if rng.Intn(100) >= 12 {
			grp = fmt.Sprintf("%d", rng.Intn(8))
		}
		if rng.Intn(100) >= 12 {
			val = fmt.Sprintf("%d.5", rng.Intn(40)-20)
		}
		fmt.Fprintf(&b, "(%d, %s, %s, %s)", base+int64(i), grp, val, note)
	}
	return b.String()
}
