package bench

import (
	"testing"
	"time"
)

// TestContinuousIngestShort is the CI burst of the continuous-ingest
// scenario (run under -race by `make test-metamorphic`): concurrent
// writers, a continuously running tuple mover, and live + pinned TLP
// readers for a few hundred milliseconds. Any TLP violation, pinned-epoch
// drift, or concurrency fault fails the run.
func TestContinuousIngestShort(t *testing.T) {
	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	rep, err := RunContinuousIngest(IngestConfig{
		Dir:      t.TempDir(),
		Duration: dur,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsIngested == 0 {
		t.Error("no rows ingested")
	}
	if rep.MoverCycles == 0 {
		t.Error("tuple mover never ran")
	}
	if rep.RowsMovedOut == 0 {
		t.Error("no rows moved out of the WOS — the scenario exercised nothing")
	}
	if rep.TLPChecks == 0 {
		t.Error("no TLP checks completed")
	}
	t.Logf("ingested %d rows (%.0f rows/s), %d mover cycles (%d rows moved, %d merges), %d reader queries (%d TLP checks), p50=%v p99=%v",
		rep.RowsIngested, rep.IngestRowsPerSec, rep.MoverCycles, rep.RowsMovedOut, rep.Merges,
		rep.ReaderQueries, rep.TLPChecks, rep.P50, rep.P99)
}
