package bench

import (
	"strings"
	"testing"
)

func TestTable3SmallScale(t *testing.T) {
	res, err := Table3(t.TempDir(), 30_000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 7 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
	for _, q := range res.Queries {
		if q.GroupRows == 0 {
			t.Errorf("%s returned no groups", q.Name)
		}
		if q.Vertica <= 0 || q.CStore <= 0 {
			t.Errorf("%s has zero timing", q.Name)
		}
	}
	if res.VerticaDisk <= 0 || res.CStoreDisk <= 0 {
		t.Error("disk sizes missing")
	}
	// The paper's shape: Vertica uses less disk than C-Store.
	if res.VerticaDisk >= res.CStoreDisk {
		t.Errorf("vertica disk %d >= cstore disk %d: compression advantage lost",
			res.VerticaDisk, res.CStoreDisk)
	}
	out := res.Format()
	if !strings.Contains(out, "Q7") || !strings.Contains(out, "Total") {
		t.Errorf("format output wrong:\n%s", out)
	}
}

func TestTable4IntsShape(t *testing.T) {
	rows, err := Table4Ints(t.TempDir(), 100_000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	raw, gz, gzSort, vertica := rows[0], rows[1], rows[2], rows[3]
	// Paper shape: raw > gzip > gzip+sort > Vertica.
	if !(raw.Bytes > gz.Bytes && gz.Bytes > gzSort.Bytes && gzSort.Bytes > vertica.Bytes) {
		t.Errorf("ordering violated: raw=%d gzip=%d gzip+sort=%d vertica=%d",
			raw.Bytes, gz.Bytes, gzSort.Bytes, vertica.Bytes)
	}
	// Paper: Vertica ~12.5x vs raw (0.6 MB from 7.5 MB) at 1M rows; at this
	// reduced scale the delta-dictionary overhead per block is relatively
	// larger, so require >4x (the full-scale run in EXPERIMENTS.md shows
	// ~9x).
	if vertica.Ratio < 4 {
		t.Errorf("vertica ratio = %.1f, want > 4", vertica.Ratio)
	}
}

func TestTable4MeterShape(t *testing.T) {
	summary, perCol, err := Table4Meter(t.TempDir(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(summary) != 3 || len(perCol) != 4 {
		t.Fatalf("summary=%d perCol=%d", len(summary), len(perCol))
	}
	raw, gz, vertica := summary[0], summary[1], summary[2]
	if !(raw.Bytes > gz.Bytes && gz.Bytes > vertica.Bytes) {
		t.Errorf("ordering violated: raw=%d gzip=%d vertica=%d", raw.Bytes, gz.Bytes, vertica.Bytes)
	}
	// Paper: Vertica beats gzip (14.8x vs 5.9x) and lands near ~2 bytes/row
	// at 200M rows; at small scale require simply beating gzip and raw by a
	// wide margin.
	if vertica.Ratio < gz.Ratio {
		t.Errorf("vertica ratio %.1f < gzip ratio %.1f", vertica.Ratio, gz.Ratio)
	}
	// Per-column shape (§8.2.2): metric compresses to almost nothing;
	// value dominates the footprint.
	metric, value := perCol[0], perCol[3]
	if metric.Bytes*10 > value.Bytes {
		t.Errorf("metric (%d B) should be far smaller than value (%d B)", metric.Bytes, value.Bytes)
	}
	out := FormatCompression("meter data", summary)
	if !strings.Contains(out, "Vertica") {
		t.Error("format output wrong")
	}
}
