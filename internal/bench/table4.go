package bench

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/types"
)

// Table 4 reproduction (§8.2): compression of one million random integers
// and of the customer meter dataset, comparing raw text, gzip, gzip of
// sorted data, and the engine's columnar storage.

// CompressionRow is one Table 4 line.
type CompressionRow struct {
	Label       string
	Bytes       int64
	Ratio       float64 // vs raw
	BytesPerRow float64
}

// Table4Ints runs the §8.2.1 experiment on n random integers in [1, max].
func Table4Ints(dir string, n int, max int64) ([]CompressionRow, error) {
	vals := gen.RandomInts(n, max, 7)
	raw := gen.IntsTextBytes(vals)
	gz, err := gzipBytes(raw)
	if err != nil {
		return nil, err
	}
	sorted := append([]int64{}, vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	gzSorted, err := gzipBytes(gen.IntsTextBytes(sorted))
	if err != nil {
		return nil, err
	}
	// Vertica: a single-column table with a sorted projection; the engine
	// sorts on load and picks the encoding empirically (Auto).
	db, err := core.Open(core.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	if _, err := db.Execute(`CREATE TABLE ints (x INT)`); err != nil {
		return nil, err
	}
	if _, err := db.Execute(`CREATE PROJECTION ints_super ON ints (x) ORDER BY x SEGMENTED BY HASH(x)`); err != nil {
		return nil, err
	}
	rows := make([]types.Row, n)
	for i, v := range vals {
		rows[i] = types.Row{types.NewInt(v)}
	}
	if err := db.Load("ints", rows, true); err != nil {
		return nil, err
	}
	vBytes, err := projectionColumnBytes(db, "ints_super", "x")
	if err != nil {
		return nil, err
	}
	mk := func(label string, b int64) CompressionRow {
		return CompressionRow{
			Label: label, Bytes: b,
			Ratio:       float64(len(raw)) / float64(b),
			BytesPerRow: float64(b) / float64(n),
		}
	}
	return []CompressionRow{
		mk("Raw", int64(len(raw))),
		mk("gzip", int64(len(gz))),
		mk("gzip+sort", int64(len(gzSorted))),
		mk("Vertica", vBytes),
	}, nil
}

// Table4Meter runs the §8.2.2 experiment on n meter-metric rows (the paper
// used 200M; bytes-per-row is the scale-free comparator).
func Table4Meter(dir string, n int) ([]CompressionRow, []CompressionRow, error) {
	rows := gen.MeterData(n, 300, 2000, 11)
	csv := gen.MeterCSVBytes(rows)
	gz, err := gzipBytes(csv)
	if err != nil {
		return nil, nil, err
	}
	db, err := core.Open(core.Options{Dir: dir})
	if err != nil {
		return nil, nil, err
	}
	stmts := []string{
		`CREATE TABLE meters (metric VARCHAR, meter INT, ts TIMESTAMP, value FLOAT)`,
		// Sorted on metric, meter, collection time — "Vertica not only
		// optimizes common query predicates ... but exposes great
		// compression opportunities for each column" (§8.2.2).
		`CREATE PROJECTION meters_super ON meters (metric, meter, ts, value)
			ORDER BY metric, meter, ts SEGMENTED BY HASH(meter)`,
	}
	for _, s := range stmts {
		if _, err := db.Execute(s); err != nil {
			return nil, nil, err
		}
	}
	if err := db.Load("meters", rows, true); err != nil {
		return nil, nil, err
	}
	var vertica int64
	perCol := make([]CompressionRow, 0, 4)
	for _, col := range []string{"metric", "meter", "ts", "value"} {
		b, err := projectionColumnBytes(db, "meters_super", col)
		if err != nil {
			return nil, nil, err
		}
		vertica += b
		perCol = append(perCol, CompressionRow{
			Label: col, Bytes: b,
			BytesPerRow: float64(b) / float64(len(rows)),
		})
	}
	mk := func(label string, b int64) CompressionRow {
		return CompressionRow{
			Label: label, Bytes: b,
			Ratio:       float64(len(csv)) / float64(b),
			BytesPerRow: float64(b) / float64(len(rows)),
		}
	}
	summary := []CompressionRow{
		mk("Raw CSV", int64(len(csv))),
		mk("gzip", int64(len(gz))),
		mk("Vertica", vertica),
	}
	return summary, perCol, nil
}

// projectionColumnBytes sums the encoded bytes of one column across a
// projection's containers (excluding position indexes and the implicit
// epoch column so the comparison matches the paper's per-column numbers).
func projectionColumnBytes(db *core.Database, projName, col string) (int64, error) {
	p, err := db.Catalog().Projection(projName)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range db.Cluster().Nodes() {
		mgr, err := n.Mgr(p, db.Cluster().ManagerOpts())
		if err != nil {
			return 0, err
		}
		for _, r := range mgr.Containers() {
			ci := r.Meta.ColIndex(col)
			if ci < 0 {
				return 0, fmt.Errorf("bench: projection %s lacks column %s", projName, col)
			}
			pidx, err := r.Pidx(ci)
			if err != nil {
				return 0, err
			}
			for _, e := range pidx {
				total += e.Length
			}
		}
	}
	return total, nil
}

func gzipBytes(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, gzip.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(b); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FormatCompression renders Table 4 style output.
func FormatCompression(title string, rows []CompressionRow) string {
	out := title + "\n"
	out += fmt.Sprintf("%-12s %12s %8s %10s\n", "", "Size", "Ratio", "Bytes/Row")
	for _, r := range rows {
		ratio := "-"
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%.1f", r.Ratio)
		}
		out += fmt.Sprintf("%-12s %12s %8s %10.2f\n", r.Label, fmtSize(r.Bytes), ratio, r.BytesPerRow)
	}
	return out
}

func fmtSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
