// Package bench implements the paper's evaluation harness (§8): it loads
// the benchmark datasets into both engines and regenerates every table and
// figure — Table 3 (C-Store vs Vertica on the seven C-Store benchmark
// queries plus disk footprint), Table 4 (compression on random integers and
// customer meter data), Tables 1–2 (lock matrices) and Figure 3 (the
// parallel query plan).
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cstore"
	"repro/internal/gen"
	"repro/internal/types"
)

// Table3Scale is the default lineitem row count (the C-Store paper ran
// TPC-H scale 10 on 2005 hardware; this scale keeps the comparison
// laptop-sized while preserving the shape).
const Table3Scale = 300_000

// QueryResult is one Table 3 row.
type QueryResult struct {
	Name      string
	CStore    time.Duration
	Vertica   time.Duration
	GroupRows int // result cardinality (must agree between engines)
}

// Table3Result is the full Table 3 reproduction.
type Table3Result struct {
	Queries     []QueryResult
	CStoreTime  time.Duration
	VerticaTime time.Duration
	CStoreDisk  int64
	VerticaDisk int64
}

// day thresholds for the seven queries (out of 730 generated days).
var (
	d1 = gen.Day(700) // Q1: selective shipdate range
	d2 = gen.Day(300) // Q2: shipdate point
	d3 = gen.Day(0)   // Q3: full shipdate range
	d4 = gen.Day(650) // Q4: selective orderdate range, join
	d5 = gen.Day(300) // Q5: orderdate point, join
	d6 = gen.Day(600) // Q6: orderdate range, join
	d7 = gen.Day(500) // Q7: orderdate range, join, AVG
)

// SetupVertica loads the C-Store benchmark into the main engine: lineitem
// with a shipdate-sorted super projection, orders replicated and sorted by
// its key (so the join is key-ordered).
func SetupVertica(dir string, nLineitem int, parallelism int) (*core.Database, error) {
	db, err := core.Open(core.Options{Dir: dir, Nodes: 1, Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	stmts := []string{
		`CREATE TABLE lineitem (l_orderkey INT, l_suppkey INT, l_shipdate TIMESTAMP,
			l_extendedprice FLOAT, l_returnflag VARCHAR)`,
		`CREATE TABLE orders (o_orderkey INT, o_orderdate TIMESTAMP, o_custkey INT)`,
		`CREATE PROJECTION lineitem_super ON lineitem
			(l_shipdate, l_suppkey, l_orderkey, l_extendedprice, l_returnflag)
			ORDER BY l_shipdate, l_suppkey SEGMENTED BY HASH(l_orderkey)`,
		`CREATE PROJECTION orders_super ON orders (o_orderkey, o_orderdate, o_custkey)
			ORDER BY o_orderkey REPLICATED`,
	}
	for _, s := range stmts {
		if _, err := db.Execute(s); err != nil {
			return nil, err
		}
	}
	lineitem, orders := gen.LineitemOrders(nLineitem, 42)
	if err := db.Load("lineitem", lineitem, true); err != nil {
		return nil, err
	}
	if err := db.Load("orders", orders, true); err != nil {
		return nil, err
	}
	if _, _, err := db.RunTupleMover(); err != nil {
		return nil, err
	}
	return db, nil
}

// SetupCStore loads the same data into the baseline engine: lineitem as two
// partial projections linked by a join index (shipdate-sorted front columns;
// orderkey/price/flag in an orderkey-sorted group), orders sorted by key.
func SetupCStore(nLineitem int) *cstore.Store {
	st := cstore.NewStore()
	lineitem, orders := gen.LineitemOrders(nLineitem, 42)
	// Columns: 0 l_orderkey, 1 l_suppkey, 2 l_shipdate, 3 l_extendedprice,
	// 4 l_returnflag. Sorted by shipdate; group2 = {0, 3, 4} sorted by
	// orderkey, reached via the join index.
	st.LoadPartial("lineitem", gen.LineitemSchema(), lineitem, 2, 0, []int{0, 3, 4})
	st.Load("orders", gen.OrdersSchema(), orders, 0)
	return st
}

// verticaQueries are the seven C-Store benchmark queries in SQL.
func verticaQueries() []string {
	ts := func(v types.Value) string { return "TIMESTAMP '" + v.String() + "'" }
	return []string{
		`SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > ` + ts(d1) + ` GROUP BY l_shipdate`,
		`SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate = ` + ts(d2) + ` GROUP BY l_suppkey`,
		`SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > ` + ts(d3) + ` GROUP BY l_suppkey`,
		`SELECT o_orderdate, COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey
			WHERE o_orderdate > ` + ts(d4) + ` GROUP BY o_orderdate`,
		`SELECT l_suppkey, COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey
			WHERE o_orderdate = ` + ts(d5) + ` GROUP BY l_suppkey`,
		`SELECT l_suppkey, COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey
			WHERE o_orderdate > ` + ts(d6) + ` GROUP BY l_suppkey`,
		`SELECT l_returnflag, AVG(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey
			WHERE o_orderdate > ` + ts(d7) + ` GROUP BY l_returnflag`,
	}
}

// RunVerticaQuery executes benchmark query i (0-based) on the main engine.
func RunVerticaQuery(db *core.Database, i int) (int, error) {
	res, err := db.Execute(verticaQueries()[i])
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// RunCStoreQuery executes benchmark query i on the baseline engine,
// tuple-at-a-time and single-threaded.
func RunCStoreQuery(st *cstore.Store, i int) (int, error) {
	li, err := st.Table("lineitem")
	if err != nil {
		return 0, err
	}
	ord, err := st.Table("orders")
	if err != nil {
		return 0, err
	}
	gt := func(col int, v types.Value) func(types.Row) bool {
		return func(r types.Row) bool { return !r[col].Null && r[col].Compare(v) > 0 }
	}
	eq := func(col int, v types.Value) func(types.Row) bool {
		return func(r types.Row) bool { return !r[col].Null && r[col].Compare(v) == 0 }
	}
	switch i {
	case 0: // shipdate, count(*) where shipdate > d1 group by shipdate
		it := cstore.Filter(li.Scan([]int{2}), gt(0, d1))
		return len(cstore.GroupAgg(it, 0, cstore.CountStar, -1)), nil
	case 1: // suppkey, count(*) where shipdate = d2 group by suppkey
		it := cstore.Filter(li.Scan([]int{2, 1}), eq(0, d2))
		return len(cstore.GroupAgg(it, 1, cstore.CountStar, -1)), nil
	case 2: // suppkey, count(*) where shipdate > d3 group by suppkey
		it := cstore.Filter(li.Scan([]int{2, 1}), gt(0, d3))
		return len(cstore.GroupAgg(it, 1, cstore.CountStar, -1)), nil
	case 3: // join, where o_orderdate > d4, group by o_orderdate
		// lineitem scan pulls l_orderkey through the join index.
		it := cstore.HashJoin(li.Scan([]int{0}), 0, ord, 0, []int{1})
		it = cstore.Filter(it, gt(1, d4))
		return len(cstore.GroupAgg(it, 1, cstore.CountStar, -1)), nil
	case 4: // join, o_orderdate = d5, group by suppkey
		it := cstore.HashJoin(li.Scan([]int{0, 1}), 0, ord, 0, []int{1})
		it = cstore.Filter(it, eq(2, d5))
		return len(cstore.GroupAgg(it, 1, cstore.CountStar, -1)), nil
	case 5: // join, o_orderdate > d6, group by suppkey
		it := cstore.HashJoin(li.Scan([]int{0, 1}), 0, ord, 0, []int{1})
		it = cstore.Filter(it, gt(2, d6))
		return len(cstore.GroupAgg(it, 1, cstore.CountStar, -1)), nil
	default: // join, o_orderdate > d7, group by returnflag, avg(price)
		it := cstore.HashJoin(li.Scan([]int{0, 4, 3}), 0, ord, 0, []int{1})
		it = cstore.Filter(it, gt(3, d7))
		return len(cstore.GroupAgg(it, 1, cstore.AvgFloat, 2)), nil
	}
}

// Table3 runs the full comparison at the given scale. iterations > 1 takes
// the minimum time per query (warm cache, as both engines are memory-hot
// after the first pass).
func Table3(dir string, nLineitem, iterations, parallelism int) (*Table3Result, error) {
	if iterations < 1 {
		iterations = 1
	}
	db, err := SetupVertica(dir+"/vertica", nLineitem, parallelism)
	if err != nil {
		return nil, err
	}
	st := SetupCStore(nLineitem)
	out := &Table3Result{}
	for q := 0; q < 7; q++ {
		name := fmt.Sprintf("Q%d", q+1)
		// Warmup + verification: both engines must agree on cardinality.
		vRows, err := RunVerticaQuery(db, q)
		if err != nil {
			return nil, fmt.Errorf("bench: vertica %s: %w", name, err)
		}
		cRows, err := RunCStoreQuery(st, q)
		if err != nil {
			return nil, fmt.Errorf("bench: cstore %s: %w", name, err)
		}
		if vRows != cRows {
			return nil, fmt.Errorf("bench: %s cardinality mismatch: vertica %d, cstore %d", name, vRows, cRows)
		}
		qr := QueryResult{Name: name, GroupRows: vRows}
		qr.Vertica = minDuration(iterations, func() error {
			_, err := RunVerticaQuery(db, q)
			return err
		})
		qr.CStore = minDuration(iterations, func() error {
			_, err := RunCStoreQuery(st, q)
			return err
		})
		out.Queries = append(out.Queries, qr)
		out.VerticaTime += qr.Vertica
		out.CStoreTime += qr.CStore
	}
	// Disk footprints.
	if out.CStoreDisk, err = st.WriteDisk(dir + "/cstore"); err != nil {
		return nil, err
	}
	out.VerticaDisk = verticaDiskBytes(db)
	return out, nil
}

func minDuration(iterations int, f func() error) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iterations; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// verticaDiskBytes sums the encoded data bytes of every projection.
func verticaDiskBytes(db *core.Database) int64 {
	var total int64
	for _, p := range db.Catalog().Projections() {
		for _, n := range db.Cluster().Nodes() {
			mgr, err := n.Mgr(p, db.Cluster().ManagerOpts())
			if err != nil {
				continue
			}
			total += mgr.TotalBytes()
		}
	}
	return total
}

// Format renders the result in the paper's Table 3 layout.
func (r *Table3Result) Format() string {
	out := "Metric          C-Store      Vertica\n"
	for _, q := range r.Queries {
		out += fmt.Sprintf("%-15s %-12s %s\n", q.Name, fmtDur(q.CStore), fmtDur(q.Vertica))
	}
	out += fmt.Sprintf("%-15s %-12s %s\n", "Total Query Time", fmtDur(r.CStoreTime), fmtDur(r.VerticaTime))
	out += fmt.Sprintf("%-15s %-12s %s\n", "Disk Space", fmtMB(r.CStoreDisk), fmtMB(r.VerticaDisk))
	out += fmt.Sprintf("speedup: %.2fx, disk ratio: %.2fx\n",
		float64(r.CStoreTime)/float64(r.VerticaTime),
		float64(r.CStoreDisk)/float64(r.VerticaDisk))
	return out
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1f ms", float64(d.Microseconds())/1000)
}

func fmtMB(b int64) string {
	return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
}
