package bench

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dc"
)

// TestContinuousIngestDataCollector runs the continuous-ingest scenario
// (designed for -race) with the Data Collector enabled and audits the rings
// afterwards: with capacity comfortably above the event volume nothing may
// be lost, and each admitted query's phase records must carry contiguous
// sequence numbers with monotone start times. A second, tiny-capacity run
// checks that overflow is absorbed by the dropped counters, never a panic.
func TestContinuousIngestDataCollector(t *testing.T) {
	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	inspected := false
	_, err := RunContinuousIngest(IngestConfig{
		Dir:        t.TempDir(),
		Duration:   dur,
		Seed:       11,
		DCCapacity: 1 << 17,
		Inspect: func(db *core.Database) error {
			inspected = true
			col := db.Collector()
			for name, st := range col.Stats() {
				if st.Dropped != 0 {
					return fmt.Errorf("ring %q dropped %d events below capacity (appended %d, cap %d)",
						name, st.Dropped, st.Appended, st.Cap)
				}
				if int64(st.Len) != st.Appended {
					return fmt.Errorf("ring %q lost events: len %d != appended %d with zero drops",
						name, st.Len, st.Appended)
				}
			}
			if len(col.MoverEvents()) == 0 {
				return fmt.Errorf("no tuple-mover events recorded despite continuous moveouts")
			}
			return checkPhaseStreams(col.Phases())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inspected {
		t.Fatal("Inspect hook never ran")
	}

	// Overflow run: rings far smaller than the event volume must shed the
	// oldest entries and count them, with every stream still intact.
	_, err = RunContinuousIngest(IngestConfig{
		Dir:        t.TempDir(),
		Duration:   dur,
		Seed:       13,
		DCCapacity: 4,
		Inspect: func(db *core.Database) error {
			stats := db.Collector().Stats()
			var dropped int64
			for name, st := range stats {
				if st.Len > st.Cap {
					return fmt.Errorf("ring %q over capacity: len %d > cap %d", name, st.Len, st.Cap)
				}
				dropped += st.Dropped
			}
			if dropped == 0 {
				return fmt.Errorf("expected overflow drops with capacity 4, got none: %+v", stats)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// checkPhaseStreams verifies per-query phase integrity: contiguous
// sequence numbers starting at 0 and non-decreasing start times. Query id 0
// aggregates statements that bypassed admission (DDL, monitor queries), so
// only admitted queries (id > 0) are held to the per-query invariants.
func checkPhaseStreams(phases []dc.PhaseEvent) error {
	byQuery := map[int64][]dc.PhaseEvent{}
	for _, p := range phases {
		if p.QueryID > 0 {
			byQuery[p.QueryID] = append(byQuery[p.QueryID], p)
		}
	}
	if len(byQuery) == 0 {
		return fmt.Errorf("no admitted-query phase events recorded")
	}
	for id, ps := range byQuery {
		sort.Slice(ps, func(i, j int) bool { return ps[i].Seq < ps[j].Seq })
		for i, p := range ps {
			if p.Seq != i {
				return fmt.Errorf("query %d: phase seq gap: want %d, got %d (%q)", id, i, p.Seq, p.Phase)
			}
			if i > 0 && p.Start.Before(ps[i-1].Start) {
				return fmt.Errorf("query %d: phase %q starts at %v, before prior phase %q at %v",
					id, p.Phase, p.Start, ps[i-1].Phase, ps[i-1].Start)
			}
		}
	}
	return nil
}
