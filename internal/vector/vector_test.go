package vector

import (
	"testing"

	"repro/internal/types"
)

func TestVectorAppendAndValueAt(t *testing.T) {
	v := New(types.Int64, 4)
	v.AppendValue(types.NewInt(10))
	v.AppendValue(types.NewInt(20))
	v.AppendNull()
	v.AppendValue(types.NewInt(30))
	if v.Len() != 4 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.ValueAt(0).I != 10 || v.ValueAt(1).I != 20 || v.ValueAt(3).I != 30 {
		t.Error("values wrong")
	}
	if !v.ValueAt(2).Null || !v.NullAt(2) {
		t.Error("null slot wrong")
	}
	if !v.HasNulls() {
		t.Error("HasNulls should be true")
	}
}

func TestVectorNullBackfill(t *testing.T) {
	// Appending a NULL after non-nulls must backfill the bitmap.
	v := New(types.Varchar, 2)
	v.AppendValue(types.NewString("a"))
	v.AppendNull()
	if v.NullAt(0) || !v.NullAt(1) {
		t.Error("null bitmap backfill wrong")
	}
}

func TestRLEExpand(t *testing.T) {
	v := New(types.Int64, 2)
	v.AppendValue(types.NewInt(5))
	v.AppendValue(types.NewInt(9))
	v.RunLens = []int{3, 2}
	if !v.IsRLE() {
		t.Fatal("IsRLE should be true")
	}
	if v.Len() != 5 {
		t.Fatalf("logical Len = %d, want 5", v.Len())
	}
	if v.PhysLen() != 2 {
		t.Fatalf("PhysLen = %d, want 2", v.PhysLen())
	}
	e := v.Expand()
	want := []int64{5, 5, 5, 9, 9}
	for i, w := range want {
		if e.Ints[i] != w {
			t.Errorf("Expand[%d] = %d, want %d", i, e.Ints[i], w)
		}
	}
	if e.IsRLE() {
		t.Error("expanded vector should be flat")
	}
}

func TestNewConst(t *testing.T) {
	v := NewConst(types.NewFloat(1.5), 100)
	if v.Len() != 100 || v.PhysLen() != 1 {
		t.Fatalf("const vector len=%d phys=%d", v.Len(), v.PhysLen())
	}
	e := v.Expand()
	if e.Len() != 100 || e.Floats[99] != 1.5 {
		t.Error("const expand wrong")
	}
}

func TestGatherSlice(t *testing.T) {
	v := NewFromInts(types.Int64, []int64{1, 2, 3, 4, 5})
	g := v.Gather([]int{4, 0, 2})
	if g.Len() != 3 || g.Ints[0] != 5 || g.Ints[1] != 1 || g.Ints[2] != 3 {
		t.Errorf("Gather wrong: %v", g.Ints)
	}
	s := v.Slice(1, 4)
	if s.Len() != 3 || s.Ints[0] != 2 || s.Ints[2] != 4 {
		t.Errorf("Slice wrong: %v", s.Ints)
	}
}

func TestMinMax(t *testing.T) {
	v := New(types.Int64, 4)
	v.AppendNull()
	v.AppendValue(types.NewInt(7))
	v.AppendValue(types.NewInt(-3))
	v.AppendValue(types.NewInt(4))
	mn, mx, ok := v.MinMax()
	if !ok || mn.I != -3 || mx.I != 7 {
		t.Errorf("MinMax = %v, %v, %v", mn, mx, ok)
	}
	allNull := New(types.Int64, 1)
	allNull.AppendNull()
	if _, _, ok := allNull.MinMax(); ok {
		t.Error("all-null MinMax should report !ok")
	}
}

func TestBatchBasics(t *testing.T) {
	a := NewFromInts(types.Int64, []int64{1, 2, 3})
	b := NewFromStrings([]string{"x", "y", "z"})
	batch := NewBatch(a, b)
	if batch.Len() != 3 || batch.NumCols() != 2 {
		t.Fatal("batch shape wrong")
	}
	r := batch.Row(1)
	if r[0].I != 2 || r[1].S != "y" {
		t.Errorf("Row(1) = %v", r)
	}
}

func TestBatchSelection(t *testing.T) {
	a := NewFromInts(types.Int64, []int64{10, 20, 30, 40})
	batch := NewBatch(a)
	batch.Sel = []int{1, 3}
	if batch.Len() != 2 || batch.FullLen() != 4 {
		t.Fatal("selected batch lengths wrong")
	}
	if batch.Row(0)[0].I != 20 || batch.Row(1)[0].I != 40 {
		t.Error("selected Row access wrong")
	}
	flat := batch.Flatten()
	if flat.Len() != 2 || flat.Sel != nil || flat.Cols[0].Ints[1] != 40 {
		t.Error("Flatten wrong")
	}
}

func TestBatchFlattenRLE(t *testing.T) {
	rle := New(types.Varchar, 1)
	rle.AppendValue(types.NewString("cpu"))
	rle.RunLens = []int{3}
	flat := NewFromInts(types.Int64, []int64{1, 2, 3})
	batch := NewBatch(rle, flat)
	fb := batch.Flatten()
	if fb.Cols[0].Len() != 3 || fb.Cols[0].Strs[2] != "cpu" {
		t.Error("RLE flatten wrong")
	}
	rows := batch.Rows()
	if len(rows) != 3 || rows[2][0].S != "cpu" || rows[2][1].I != 3 {
		t.Errorf("Rows() = %v", rows)
	}
}

func TestBatchAppendRow(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "a", Typ: types.Int64},
		types.Column{Name: "b", Typ: types.Float64},
	)
	b := NewBatchForSchema(s, 4)
	b.AppendRow(types.Row{types.NewInt(1), types.NewFloat(0.5)})
	b.AppendRow(types.Row{types.NewInt(2), types.NewNull(types.Float64)})
	if b.Len() != 2 {
		t.Fatal("AppendRow length wrong")
	}
	if !b.Row(1)[1].Null {
		t.Error("null not preserved through AppendRow")
	}
}

func TestGatherPanicsOnRLE(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Gather on RLE should panic")
		}
	}()
	v := NewConst(types.NewInt(1), 5)
	v.Gather([]int{0})
}

func TestAppendFrom(t *testing.T) {
	src := NewFromInts(types.Int64, []int64{10, 20, 30, 40})
	dst := New(types.Int64, 8)
	dst.AppendValue(types.NewInt(1))
	dst.AppendFrom(src, nil)
	if dst.Len() != 5 || dst.Ints[4] != 40 {
		t.Fatalf("AppendFrom all: %v", dst.Ints)
	}
	dst.AppendFrom(src, []int{3, 1})
	if dst.Len() != 7 || dst.Ints[5] != 40 || dst.Ints[6] != 20 {
		t.Fatalf("AppendFrom sel: %v", dst.Ints)
	}
	// Null propagation: source nulls materialize the destination bitmap.
	ns := New(types.Int64, 2)
	ns.AppendValue(types.NewInt(7))
	ns.AppendNull()
	dst.AppendFrom(ns, nil)
	if dst.Len() != 9 || !dst.NullAt(8) || dst.NullAt(7) {
		t.Fatalf("AppendFrom nulls: nulls=%v", dst.Nulls)
	}
	// Appending a null-free source to a null-bearing destination backfills.
	dst.AppendFrom(src, []int{0})
	if dst.NullAt(9) {
		t.Error("null-free append marked null")
	}
}

func TestBatchHashesMatchHashRow(t *testing.T) {
	b := NewBatch(
		NewFromInts(types.Int64, []int64{1, 2, 1}),
		NewFromStrings([]string{"x", "y", "x"}),
	)
	hs := b.Hashes([]int{0, 1})
	for i, r := range b.Rows() {
		if want := types.HashRow(r, []int{0, 1}); hs[i] != want {
			t.Errorf("row %d: hash %x want %x", i, hs[i], want)
		}
	}
	if hs[0] != hs[2] || hs[0] == hs[1] {
		t.Error("equal keys must hash equal, different keys should differ")
	}
	// RLE key column: per-run hashing must agree with expanded hashing.
	rle := NewConst(types.NewString("cpu"), 3)
	rb := NewBatch(NewFromInts(types.Int64, []int64{5, 5, 6}), rle)
	rhs := rb.Hashes([]int{0, 1})
	for i, r := range rb.Rows() {
		if want := types.HashRow(r, []int{0, 1}); rhs[i] != want {
			t.Errorf("rle row %d: hash %x want %x", i, rhs[i], want)
		}
	}
}

func TestBatchPartition(t *testing.T) {
	n := 1000
	keys := make([]int64, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = int64(i % 37)
		vals[i] = float64(i)
	}
	b := NewBatch(NewFromInts(types.Int64, keys), NewFromFloats(vals))
	parts := b.Partition([]int{0}, 4)
	if len(parts) != 4 {
		t.Fatalf("ways = %d", len(parts))
	}
	seen := map[int64]int{} // key -> port
	total := 0
	for p, part := range parts {
		if part == nil {
			continue
		}
		total += part.Len()
		for _, r := range part.Rows() {
			if prev, ok := seen[r[0].I]; ok && prev != p {
				t.Fatalf("key %d split across ports %d and %d", r[0].I, prev, p)
			}
			seen[r[0].I] = p
		}
	}
	if total != n {
		t.Fatalf("partition lost rows: %d != %d", total, n)
	}
	// Row integrity: every (k, v) pair must satisfy v % 37 == k.
	for _, part := range parts {
		if part == nil {
			continue
		}
		for _, r := range part.Rows() {
			if int64(r[1].F)%37 != r[0].I {
				t.Fatalf("row integrity lost: %v", r)
			}
		}
	}
	// ways=1 short-circuits to the batch itself.
	one := b.Partition([]int{0}, 1)
	if one[0].Len() != n {
		t.Error("ways=1 should pass the batch through")
	}
}

func TestBatchAppendAndSliceRows(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "a", Typ: types.Int64},
		types.Column{Name: "b", Typ: types.Varchar},
	)
	acc := NewBatchForSchema(s, 8)
	src := NewBatch(
		NewFromInts(types.Int64, []int64{1, 2, 3, 4}),
		NewFromStrings([]string{"w", "x", "y", "z"}),
	)
	src.Sel = []int{1, 3} // only x and z are live
	acc.Append(src)
	if acc.Len() != 2 || acc.Cols[1].Strs[1] != "z" {
		t.Fatalf("Append with selection: %v", acc.Cols[1].Strs)
	}
	rle := NewBatch(NewConst(types.NewInt(9), 3), NewConst(types.NewString("r"), 3))
	acc.Append(rle)
	if acc.Len() != 5 || acc.Cols[0].Ints[4] != 9 {
		t.Fatalf("Append with RLE: %v", acc.Cols[0].Ints)
	}
	sl := acc.SliceRows(1, 4)
	if sl.Len() != 3 || sl.Cols[1].Strs[0] != "z" {
		t.Fatalf("SliceRows: %v", sl.Cols[1].Strs)
	}
	cp := acc.ShallowCopy()
	cp.Cols[0] = NewFromInts(types.Int64, []int64{0})
	if acc.Cols[0].Ints[0] == 0 {
		t.Error("ShallowCopy must not alias the column slice header")
	}
}
