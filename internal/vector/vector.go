// Package vector implements typed column vectors and batches, the unit of
// data flow in the vectorized execution engine (paper §6.1: "the EE is fully
// vectorized and makes requests for blocks of rows at a time").
//
// A Vector holds one column's values for a batch of rows in a typed slice,
// with an optional null bitmap and an optional run-length form so operators
// can work directly on RLE-encoded data (paper §6.1: "significant care has
// been taken ... to ensure operators can operate directly on encoded data").
package vector

import (
	"fmt"

	"repro/internal/types"
)

// DefaultBatchSize is the number of rows operators request at a time.
const DefaultBatchSize = 4096

// Vector is a column of values of a single type.
//
// Exactly one of the typed slices is in use, selected by Typ. If Nulls is
// non-nil, Nulls[i] marks row i as SQL NULL (the corresponding typed slot is
// meaningless). If RunLens is non-nil the vector is in run-length form: entry
// i represents RunLens[i] consecutive identical rows, and Len() is the sum of
// the run lengths.
type Vector struct {
	Typ types.Type

	Ints    []int64   // Int64, Timestamp, Bool (0/1)
	Floats  []float64 // Float64
	Strs    []string  // Varchar
	Nulls   []bool    // nil if no nulls in this vector
	RunLens []int     // nil unless in RLE form

	logicalLen int // cached Len() when RunLens != nil
}

// New returns an empty vector of the given type with capacity for n rows.
func New(t types.Type, n int) *Vector {
	v := &Vector{Typ: t}
	switch t {
	case types.Float64:
		v.Floats = make([]float64, 0, n)
	case types.Varchar:
		v.Strs = make([]string, 0, n)
	default:
		v.Ints = make([]int64, 0, n)
	}
	return v
}

// NewFromInts wraps an int64 slice as a vector (no copy).
func NewFromInts(t types.Type, vals []int64) *Vector {
	if t != types.Int64 && t != types.Timestamp && t != types.Bool {
		panic("vector: NewFromInts with non-integral type " + t.String())
	}
	return &Vector{Typ: t, Ints: vals}
}

// NewFromFloats wraps a float64 slice as a vector (no copy).
func NewFromFloats(vals []float64) *Vector {
	return &Vector{Typ: types.Float64, Floats: vals}
}

// NewFromStrings wraps a string slice as a vector (no copy).
func NewFromStrings(vals []string) *Vector {
	return &Vector{Typ: types.Varchar, Strs: vals}
}

// NewConst returns a vector of n copies of value val, represented as a single
// run when n > 1.
func NewConst(val types.Value, n int) *Vector {
	v := New(val.Typ, 1)
	v.AppendValue(val)
	if n > 1 {
		v.RunLens = []int{n}
		v.logicalLen = n
	}
	return v
}

// PhysLen returns the number of physical entries (runs count as one).
func (v *Vector) PhysLen() int {
	switch v.Typ {
	case types.Float64:
		return len(v.Floats)
	case types.Varchar:
		return len(v.Strs)
	default:
		return len(v.Ints)
	}
}

// Len returns the logical number of rows.
func (v *Vector) Len() int {
	if v.RunLens == nil {
		return v.PhysLen()
	}
	if v.logicalLen == 0 {
		for _, r := range v.RunLens {
			v.logicalLen += r
		}
	}
	return v.logicalLen
}

// IsRLE reports whether the vector is in run-length form.
func (v *Vector) IsRLE() bool { return v.RunLens != nil }

// AppendValue appends one value (of the vector's type) to the vector.
func (v *Vector) AppendValue(val types.Value) {
	if val.Null {
		v.appendNullSlot()
		return
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
	switch v.Typ {
	case types.Float64:
		f := val.F
		if val.Typ != types.Float64 {
			f = float64(val.I)
		}
		v.Floats = append(v.Floats, f)
	case types.Varchar:
		v.Strs = append(v.Strs, val.S)
	default:
		v.Ints = append(v.Ints, val.I)
	}
}

func (v *Vector) appendNullSlot() {
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.PhysLen(), v.PhysLen()+1)
	}
	v.Nulls = append(v.Nulls, true)
	switch v.Typ {
	case types.Float64:
		v.Floats = append(v.Floats, 0)
	case types.Varchar:
		v.Strs = append(v.Strs, "")
	default:
		v.Ints = append(v.Ints, 0)
	}
}

// AppendNull appends a NULL row.
func (v *Vector) AppendNull() { v.appendNullSlot() }

// NullAt reports whether physical entry i is NULL.
func (v *Vector) NullAt(i int) bool { return v.Nulls != nil && v.Nulls[i] }

// ValueAt returns physical entry i as a types.Value.
// For RLE vectors i indexes runs, not rows; use Expand first for row access.
func (v *Vector) ValueAt(i int) types.Value {
	if v.NullAt(i) {
		return types.NewNull(v.Typ)
	}
	switch v.Typ {
	case types.Float64:
		return types.Value{Typ: types.Float64, F: v.Floats[i]}
	case types.Varchar:
		return types.Value{Typ: types.Varchar, S: v.Strs[i]}
	default:
		return types.Value{Typ: v.Typ, I: v.Ints[i]}
	}
}

// Expand returns a row-per-entry copy of an RLE vector (or v itself when it
// is already flat).
func (v *Vector) Expand() *Vector {
	if v.RunLens == nil {
		return v
	}
	out := New(v.Typ, v.Len())
	for i, run := range v.RunLens {
		val := v.ValueAt(i)
		for j := 0; j < run; j++ {
			out.AppendValue(val)
		}
	}
	return out
}

// AppendFrom appends entries of a flat source vector of the same type:
// every physical entry when sel is nil, otherwise the entries at the given
// physical indexes, in order. Column-at-a-time appends are the batch
// movement fast path (no per-row Value boxing); both vectors must be flat.
func (v *Vector) AppendFrom(src *Vector, sel []int) {
	if src.RunLens != nil || v.RunLens != nil {
		panic("vector: AppendFrom requires flat vectors")
	}
	n := src.PhysLen()
	if sel != nil {
		n = len(sel)
	}
	if n == 0 {
		return
	}
	if src.HasNulls() && v.Nulls == nil {
		v.Nulls = make([]bool, v.PhysLen(), v.PhysLen()+n)
	}
	if v.Nulls != nil {
		switch {
		case src.Nulls == nil:
			for i := 0; i < n; i++ {
				v.Nulls = append(v.Nulls, false)
			}
		case sel == nil:
			v.Nulls = append(v.Nulls, src.Nulls...)
		default:
			for _, i := range sel {
				v.Nulls = append(v.Nulls, src.Nulls[i])
			}
		}
	}
	switch v.Typ {
	case types.Float64:
		if sel == nil {
			v.Floats = append(v.Floats, src.Floats...)
		} else {
			for _, i := range sel {
				v.Floats = append(v.Floats, src.Floats[i])
			}
		}
	case types.Varchar:
		if sel == nil {
			v.Strs = append(v.Strs, src.Strs...)
		} else {
			for _, i := range sel {
				v.Strs = append(v.Strs, src.Strs[i])
			}
		}
	default:
		if sel == nil {
			v.Ints = append(v.Ints, src.Ints...)
		} else {
			for _, i := range sel {
				v.Ints = append(v.Ints, src.Ints[i])
			}
		}
	}
}

// Gather returns a new flat vector with the entries at the given physical
// indexes, in order. The receiver must be flat.
func (v *Vector) Gather(idx []int) *Vector {
	if v.RunLens != nil {
		panic("vector: Gather on RLE vector")
	}
	out := New(v.Typ, len(idx))
	for _, i := range idx {
		out.AppendValue(v.ValueAt(i))
	}
	return out
}

// Slice returns a view of rows [lo, hi) of a flat vector (shares storage).
func (v *Vector) Slice(lo, hi int) *Vector {
	if v.RunLens != nil {
		panic("vector: Slice on RLE vector")
	}
	out := &Vector{Typ: v.Typ}
	switch v.Typ {
	case types.Float64:
		out.Floats = v.Floats[lo:hi]
	case types.Varchar:
		out.Strs = v.Strs[lo:hi]
	default:
		out.Ints = v.Ints[lo:hi]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	return out
}

// HasNulls reports whether any entry is NULL.
func (v *Vector) HasNulls() bool {
	for _, n := range v.Nulls {
		if n {
			return true
		}
	}
	return false
}

// MinMax returns the minimum and maximum non-NULL values, and ok=false if
// every row is NULL (or the vector is empty).
func (v *Vector) MinMax() (mn, mx types.Value, ok bool) {
	for i := 0; i < v.PhysLen(); i++ {
		if v.NullAt(i) {
			continue
		}
		val := v.ValueAt(i)
		if !ok {
			mn, mx, ok = val, val, true
			continue
		}
		if val.Compare(mn) < 0 {
			mn = val
		}
		if val.Compare(mx) > 0 {
			mx = val
		}
	}
	return mn, mx, ok
}

// String renders a short description for debugging.
func (v *Vector) String() string {
	form := "flat"
	if v.IsRLE() {
		form = fmt.Sprintf("rle(%d runs)", len(v.RunLens))
	}
	return fmt.Sprintf("Vector{%s, len=%d, %s}", v.Typ, v.Len(), form)
}
