package vector

import (
	"fmt"

	"repro/internal/types"
)

// Batch is a horizontal slice of a table: one vector per column, all with the
// same logical length. An optional selection vector (Sel) marks the subset of
// rows that are live after filtering, which lets predicates avoid copying
// survivors (qualifying rows flow onward by index).
type Batch struct {
	Cols []*Vector
	// Sel, when non-nil, lists the live row indexes in increasing order.
	// Vectors must be flat (non-RLE) when Sel is set.
	Sel []int
}

// NewBatch returns a batch over the given column vectors.
func NewBatch(cols ...*Vector) *Batch { return &Batch{Cols: cols} }

// NumCols returns the number of columns.
func (b *Batch) NumCols() int { return len(b.Cols) }

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// FullLen returns the number of rows ignoring the selection vector.
func (b *Batch) FullLen() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Flatten expands any RLE columns and materializes the selection vector so
// that every column is a dense, flat vector of exactly Len() rows.
func (b *Batch) Flatten() *Batch {
	out := &Batch{Cols: make([]*Vector, len(b.Cols))}
	for i, c := range b.Cols {
		flat := c.Expand()
		if b.Sel != nil {
			flat = flat.Gather(b.Sel)
		}
		out.Cols[i] = flat
	}
	return out
}

// ExpandRLE expands RLE columns in place (keeps Sel untouched).
func (b *Batch) ExpandRLE() {
	for i, c := range b.Cols {
		if c.IsRLE() {
			b.Cols[i] = c.Expand()
		}
	}
}

// Row materializes live row i (0 ≤ i < Len()) as a types.Row. Columns must be
// flat; call Flatten or ExpandRLE first if RLE columns may be present.
func (b *Batch) Row(i int) types.Row {
	phys := i
	if b.Sel != nil {
		phys = b.Sel[i]
	}
	r := make(types.Row, len(b.Cols))
	for c, col := range b.Cols {
		r[c] = col.ValueAt(phys)
	}
	return r
}

// Rows materializes every live row (convenience for tests and small results).
func (b *Batch) Rows() []types.Row {
	fb := b
	for _, c := range b.Cols {
		if c.IsRLE() {
			fb = b.Flatten()
			break
		}
	}
	out := make([]types.Row, fb.Len())
	for i := range out {
		out[i] = fb.Row(i)
	}
	return out
}

// AppendRow appends a row to a flat, unselected batch.
func (b *Batch) AppendRow(r types.Row) {
	if b.Sel != nil {
		panic("vector: AppendRow on batch with selection vector")
	}
	if len(r) != len(b.Cols) {
		panic(fmt.Sprintf("vector: AppendRow arity mismatch %d != %d", len(r), len(b.Cols)))
	}
	for i, v := range r {
		b.Cols[i].AppendValue(v)
	}
}

// NewBatchForSchema returns an empty flat batch shaped like the schema.
func NewBatchForSchema(s *types.Schema, capacity int) *Batch {
	cols := make([]*Vector, s.Len())
	for i := range cols {
		cols[i] = New(s.Col(i).Typ, capacity)
	}
	return &Batch{Cols: cols}
}

// String renders a short description for debugging.
func (b *Batch) String() string {
	return fmt.Sprintf("Batch{cols=%d, rows=%d, sel=%v}", len(b.Cols), b.Len(), b.Sel != nil)
}
