package vector

import (
	"fmt"

	"repro/internal/types"
)

// Batch is a horizontal slice of a table: one vector per column, all with the
// same logical length. An optional selection vector (Sel) marks the subset of
// rows that are live after filtering, which lets predicates avoid copying
// survivors (qualifying rows flow onward by index).
type Batch struct {
	Cols []*Vector
	// Sel, when non-nil, lists the live row indexes in increasing order.
	// Vectors must be flat (non-RLE) when Sel is set.
	Sel []int
}

// NewBatch returns a batch over the given column vectors.
func NewBatch(cols ...*Vector) *Batch { return &Batch{Cols: cols} }

// NumCols returns the number of columns.
func (b *Batch) NumCols() int { return len(b.Cols) }

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// FullLen returns the number of rows ignoring the selection vector.
func (b *Batch) FullLen() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Flatten expands any RLE columns and materializes the selection vector so
// that every column is a dense, flat vector of exactly Len() rows.
func (b *Batch) Flatten() *Batch {
	out := &Batch{Cols: make([]*Vector, len(b.Cols))}
	for i, c := range b.Cols {
		flat := c.Expand()
		if b.Sel != nil {
			flat = flat.Gather(b.Sel)
		}
		out.Cols[i] = flat
	}
	return out
}

// ExpandRLE expands RLE columns in place (keeps Sel untouched).
func (b *Batch) ExpandRLE() {
	for i, c := range b.Cols {
		if c.IsRLE() {
			b.Cols[i] = c.Expand()
		}
	}
}

// Row materializes live row i (0 ≤ i < Len()) as a types.Row. Columns must be
// flat; call Flatten or ExpandRLE first if RLE columns may be present.
func (b *Batch) Row(i int) types.Row {
	phys := i
	if b.Sel != nil {
		phys = b.Sel[i]
	}
	r := make(types.Row, len(b.Cols))
	for c, col := range b.Cols {
		r[c] = col.ValueAt(phys)
	}
	return r
}

// Rows materializes every live row (convenience for tests and small results).
func (b *Batch) Rows() []types.Row {
	fb := b
	for _, c := range b.Cols {
		if c.IsRLE() {
			fb = b.Flatten()
			break
		}
	}
	out := make([]types.Row, fb.Len())
	for i := range out {
		out[i] = fb.Row(i)
	}
	return out
}

// AppendRow appends a row to a flat, unselected batch.
func (b *Batch) AppendRow(r types.Row) {
	if b.Sel != nil {
		panic("vector: AppendRow on batch with selection vector")
	}
	if len(r) != len(b.Cols) {
		panic(fmt.Sprintf("vector: AppendRow arity mismatch %d != %d", len(r), len(b.Cols)))
	}
	for i, v := range r {
		b.Cols[i].AppendValue(v)
	}
}

// ShallowCopy returns a batch sharing the receiver's column vectors and
// selection vector but owning its own headers, so independent consumers
// (broadcast fan-out) can ExpandRLE/replace columns without racing.
func (b *Batch) ShallowCopy() *Batch {
	return &Batch{Cols: append([]*Vector(nil), b.Cols...), Sel: b.Sel}
}

// Append adds every live row of other to the receiver, column at a time.
// The receiver must be flat and unselected; other's RLE columns expand.
func (b *Batch) Append(other *Batch) {
	if b.Sel != nil {
		panic("vector: Append to batch with selection vector")
	}
	if len(other.Cols) != len(b.Cols) {
		panic(fmt.Sprintf("vector: Append arity mismatch %d != %d", len(other.Cols), len(b.Cols)))
	}
	for i, c := range other.Cols {
		b.Cols[i].AppendFrom(c.Expand(), other.Sel)
	}
}

// SliceRows returns a view of rows [lo, hi) of a flat, unselected batch
// (shares column storage with the receiver).
func (b *Batch) SliceRows(lo, hi int) *Batch {
	if b.Sel != nil {
		panic("vector: SliceRows on batch with selection vector")
	}
	out := &Batch{Cols: make([]*Vector, len(b.Cols))}
	for i, c := range b.Cols {
		out.Cols[i] = c.Slice(lo, hi)
	}
	return out
}

// Hashes returns one HashRow-compatible hash per live row over the key
// columns, computed column at a time. RLE key columns hash once per run
// (the paper's "operate directly on encoded data").
func (b *Batch) Hashes(keys []int) []uint64 {
	out := make([]uint64, b.Len())
	for i := range out {
		out[i] = types.HashSeed
	}
	for _, k := range keys {
		hashColInto(b.Cols[k], b.Sel, out)
	}
	return out
}

func hashColInto(v *Vector, sel []int, acc []uint64) {
	if v.IsRLE() {
		// Sel implies flat columns, so sel == nil here: one hash per run.
		pos := 0
		for r, run := range v.RunLens {
			h := types.HashValue(v.ValueAt(r))
			for j := 0; j < run && pos < len(acc); j++ {
				acc[pos] = types.HashCombine(acc[pos], h)
				pos++
			}
		}
		return
	}
	phys := func(i int) int {
		if sel != nil {
			return sel[i]
		}
		return i
	}
	// Typed fast paths keep the hot flat path free of Value boxing.
	switch {
	case v.Typ == types.Int64 && v.Nulls == nil:
		for i := range acc {
			acc[i] = types.HashCombine(acc[i], types.HashInt64(v.Ints[phys(i)]))
		}
	case v.Typ == types.Varchar && v.Nulls == nil:
		for i := range acc {
			acc[i] = types.HashCombine(acc[i], types.HashString(v.Strs[phys(i)]))
		}
	default:
		for i := range acc {
			acc[i] = types.HashCombine(acc[i], types.HashValue(v.ValueAt(phys(i))))
		}
	}
}

// Partition splits the batch into ways sub-batches by hashing the key
// columns — the routing kernel behind the batch-native Exchange: alike key
// values always land in the same output. Each non-empty output shares the
// receiver's column vectors and marks its rows with a selection vector;
// empty outputs are nil. RLE key columns hash once per run before the
// receiver's columns are expanded in place (Sel outputs require flat
// columns).
func (b *Batch) Partition(keys []int, ways int) []*Batch {
	out := make([]*Batch, ways)
	if ways == 1 {
		if b.Len() > 0 {
			out[0] = b
		}
		return out
	}
	hashes := b.Hashes(keys)
	b.ExpandRLE()
	sels := make([][]int, ways)
	for i, h := range hashes {
		p := int(h % uint64(ways))
		phys := i
		if b.Sel != nil {
			phys = b.Sel[i]
		}
		sels[p] = append(sels[p], phys)
	}
	for p, sel := range sels {
		if len(sel) > 0 {
			out[p] = &Batch{Cols: b.Cols, Sel: sel}
		}
	}
	return out
}

// NewBatchForSchema returns an empty flat batch shaped like the schema.
func NewBatchForSchema(s *types.Schema, capacity int) *Batch {
	cols := make([]*Vector, s.Len())
	for i := range cols {
		cols[i] = New(s.Col(i).Typ, capacity)
	}
	return &Batch{Cols: cols}
}

// String renders a short description for debugging.
func (b *Batch) String() string {
	return fmt.Sprintf("Batch{cols=%d, rows=%d, sel=%v}", len(b.Cols), b.Len(), b.Sel != nil)
}
