package catalog

import (
	"strings"
	"testing"

	"repro/internal/encoding"
	"repro/internal/expr"
	"repro/internal/types"
)

func salesTable() *Table {
	return &Table{
		Name: "sales",
		Schema: types.NewSchema(
			types.Column{Name: "sale_id", Typ: types.Int64},
			types.Column{Name: "date", Typ: types.Timestamp},
			types.Column{Name: "cust", Typ: types.Varchar},
			types.Column{Name: "price", Typ: types.Float64},
		),
	}
}

func TestCreateAndDropTable(t *testing.T) {
	c := New("")
	if err := c.CreateTable(salesTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(salesTable()); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := c.Table("sales"); err != nil {
		t.Error(err)
	}
	if len(c.Tables()) != 1 {
		t.Error("Tables() wrong")
	}
	if err := c.DropTable("nosuch"); err == nil {
		t.Error("dropping missing table should fail")
	}
	if err := c.DropTable("sales"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("sales"); err == nil {
		t.Error("table still resolvable after drop")
	}
}

// TestFigure1Projections models the paper's Figure 1: the sales table has a
// super projection sorted by date segmented by HASH(sale_id), and a narrow
// (cust, price) projection sorted and segmented by cust.
func TestFigure1Projections(t *testing.T) {
	c := New("")
	if err := c.CreateTable(salesTable()); err != nil {
		t.Fatal(err)
	}
	super := &Projection{
		Name:      "sales_super",
		Anchor:    "sales",
		Columns:   []string{"sale_id", "date", "cust", "price"},
		SortOrder: []string{"date"},
		Seg:       Segmentation{ExprText: "HASH(sale_id)"},
	}
	if err := c.CreateProjection(super); err != nil {
		t.Fatal(err)
	}
	if !super.IsSuper {
		t.Error("projection with every column must be marked super")
	}
	narrow := &Projection{
		Name:      "sales_cust_price",
		Anchor:    "sales",
		Columns:   []string{"cust", "price"},
		SortOrder: []string{"cust"},
		Seg:       Segmentation{ExprText: "HASH(cust)"},
	}
	if err := c.CreateProjection(narrow); err != nil {
		t.Fatal(err)
	}
	if narrow.IsSuper {
		t.Error("partial projection must not be super")
	}
	if narrow.Schema.Len() != 2 || narrow.Schema.Col(0).Name != "cust" {
		t.Errorf("narrow schema = %v", narrow.Schema)
	}
	if got := narrow.SortKey(); len(got) != 1 || got[0] != 0 {
		t.Errorf("sort key = %v", got)
	}
	sp, err := c.SuperProjection("sales")
	if err != nil || sp.Name != "sales_super" {
		t.Errorf("SuperProjection = %v, %v", sp, err)
	}
	if got := c.ProjectionsFor("sales"); len(got) != 2 {
		t.Errorf("ProjectionsFor = %d", len(got))
	}
}

func TestProjectionValidation(t *testing.T) {
	c := New("")
	c.CreateTable(salesTable())
	// Unknown column.
	err := c.CreateProjection(&Projection{
		Name: "bad", Anchor: "sales", Columns: []string{"nosuch"},
	})
	if err == nil {
		t.Error("unknown column should fail")
	}
	// Sort on unstored column.
	err = c.CreateProjection(&Projection{
		Name: "bad2", Anchor: "sales", Columns: []string{"cust"}, SortOrder: []string{"price"},
	})
	if err == nil {
		t.Error("sort on unstored column should fail")
	}
	// Missing anchor.
	err = c.CreateProjection(&Projection{Name: "bad3", Anchor: "nosuch", Columns: []string{"x"}})
	if err == nil {
		t.Error("missing anchor should fail")
	}
}

func TestLastSuperProjectionCannotBeDropped(t *testing.T) {
	c := New("")
	c.CreateTable(salesTable())
	super := &Projection{
		Name: "s1", Anchor: "sales",
		Columns: []string{"sale_id", "date", "cust", "price"},
	}
	if err := c.CreateProjection(super); err != nil {
		t.Fatal(err)
	}
	if err := c.DropProjection("s1"); err == nil ||
		!strings.Contains(err.Error(), "super projection") {
		t.Errorf("dropping the last super projection should fail: %v", err)
	}
	// With a second super projection it works.
	super2 := &Projection{
		Name: "s2", Anchor: "sales",
		Columns: []string{"sale_id", "date", "cust", "price"},
	}
	c.CreateProjection(super2)
	if err := c.DropProjection("s1"); err != nil {
		t.Errorf("drop with remaining super: %v", err)
	}
}

func TestPrejoinProjectionSchema(t *testing.T) {
	c := New("")
	c.CreateTable(salesTable())
	c.CreateTable(&Table{
		Name: "customers",
		Schema: types.NewSchema(
			types.Column{Name: "cust_id", Typ: types.Varchar},
			types.Column{Name: "region", Typ: types.Varchar},
		),
	})
	pj := &Projection{
		Name:      "sales_prejoin",
		Anchor:    "sales",
		Columns:   []string{"sale_id", "cust", "price", "customers.region"},
		SortOrder: []string{"sale_id"},
		Prejoin: []PrejoinDim{{
			DimTable: "customers", FactKey: "cust", DimKey: "cust_id",
			DimCols: []string{"region"},
		}},
	}
	if err := c.CreateProjection(pj); err != nil {
		t.Fatal(err)
	}
	if pj.Schema.Len() != 4 {
		t.Fatalf("prejoin schema = %v", pj.Schema)
	}
	if pj.Schema.Col(3).Name != "customers.region" || pj.Schema.Col(3).Typ != types.Varchar {
		t.Errorf("dim column = %+v", pj.Schema.Col(3))
	}
	if pj.IsSuper {
		t.Error("prejoin with all anchor columns is still 'super' by the paper's definition")
	}
}

func TestPersistAndLoad(t *testing.T) {
	dir := t.TempDir()
	c := New(dir)
	tab := salesTable()
	tab.PartitionExprText = "EXTRACT_MONTH(date)"
	if err := c.CreateTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateProjection(&Projection{
		Name: "sales_super", Anchor: "sales",
		Columns:   []string{"sale_id", "date", "cust", "price"},
		SortOrder: []string{"date"},
		Seg:       Segmentation{ExprText: "HASH(sale_id)"},
		Encodings: map[string]encoding.Kind{"date": encoding.RLE},
	}); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c2.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Len() != 4 || tb.PartitionExprText == "" {
		t.Errorf("reloaded table = %+v", tb)
	}
	p, err := c2.Projection("sales_super")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema == nil || p.Encodings["date"] != encoding.RLE {
		t.Errorf("reloaded projection = %+v", p)
	}
	// Rebind expressions with a trivial binder.
	bound := 0
	err = c2.RebindExprs(func(text string, schema *types.Schema) (expr.Expr, error) {
		bound++
		return expr.NewConst(types.NewInt(1)), nil
	})
	if err != nil || bound != 2 {
		t.Errorf("rebind count = %d, err %v", bound, err)
	}
	if tb.PartitionExpr == nil || p.Seg.Expr == nil {
		t.Error("expressions not rebound")
	}
}

func TestLoadEmptyDir(t *testing.T) {
	c, err := Load(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables()) != 0 {
		t.Error("empty catalog should have no tables")
	}
}

func TestDropTableCascadesProjections(t *testing.T) {
	c := New("")
	c.CreateTable(salesTable())
	c.CreateProjection(&Projection{
		Name: "p", Anchor: "sales", Columns: []string{"cust"},
	})
	c.DropTable("sales")
	if _, err := c.Projection("p"); err == nil {
		t.Error("projection should be dropped with its table")
	}
}

func TestHasColumn(t *testing.T) {
	c := New("")
	c.CreateTable(salesTable())
	p := &Projection{Name: "p", Anchor: "sales", Columns: []string{"cust", "price"}}
	c.CreateProjection(p)
	if !p.HasColumn("cust") || p.HasColumn("date") {
		t.Error("HasColumn wrong")
	}
}
