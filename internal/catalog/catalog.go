// Package catalog implements the metadata catalog (paper §5.3): tables,
// projections and their sort orders, encodings and segmentation clauses.
//
// As in Vertica, the catalog is not stored in database tables — it is a
// memory-resident structure transactionally persisted to disk via its own
// mechanism (here: an atomically renamed JSON snapshot per change).
// Expressions (partition and segmentation clauses) are persisted as SQL text
// and re-bound by the engine on open.
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/encoding"
	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// Table is a logical table definition.
type Table struct {
	Name   string        `json:"name"`
	Schema *types.Schema `json:"-"`
	// Cols persists the schema.
	Cols []types.Column `json:"columns"`
	// PartitionExprText is the PARTITION BY clause source ("" when the
	// table is unpartitioned); PartitionExpr is its bound runtime form over
	// the table schema.
	PartitionExprText string    `json:"partition_expr,omitempty"`
	PartitionExpr     expr.Expr `json:"-"`
}

// Segmentation describes how a projection's tuples map to nodes (paper
// §3.6): either replicated on every node or ring-segmented by an integral
// expression over the projection's columns.
type Segmentation struct {
	Replicated bool   `json:"replicated"`
	ExprText   string `json:"expr,omitempty"`
	// Offset shifts the ring mapping by whole nodes; buddy projections use
	// offset 1 so that "no row is stored on the same node by both
	// projections" (§5.2).
	Offset int       `json:"offset"`
	Expr   expr.Expr `json:"-"`
}

// PrejoinDim denormalizes one N:1 dimension join into a prejoin projection
// (paper §3.3).
type PrejoinDim struct {
	DimTable string   `json:"dim_table"`
	FactKey  string   `json:"fact_key"` // join column on the anchor table
	DimKey   string   `json:"dim_key"`  // join column on the dimension table
	DimCols  []string `json:"dim_cols"` // dimension columns stored in the projection
}

// Projection is the only physical data structure in Vertica (paper §3.1):
// a sorted subset of a table's columns, segmented across the cluster.
type Projection struct {
	Name   string `json:"name"`
	Anchor string `json:"anchor"` // anchoring table
	// Columns are anchor-table column names; for prejoin projections,
	// dimension columns appear as "dimtable.col".
	Columns   []string                 `json:"columns"`
	SortOrder []string                 `json:"sort_order"`
	Seg       Segmentation             `json:"segmentation"`
	Encodings map[string]encoding.Kind `json:"encodings,omitempty"`
	// IsSuper marks a super projection containing every anchor column;
	// Vertica requires at least one per table in place of join indexes
	// (§3.2).
	IsSuper bool `json:"is_super"`
	// Buddy names this projection's buddy (for K-safety); "" when none.
	Buddy string `json:"buddy,omitempty"`
	// IsBuddy marks projections created as buddies of another.
	IsBuddy bool `json:"is_buddy,omitempty"`
	// Prejoin lists denormalized dimension joins (nil for plain projections).
	Prejoin []PrejoinDim `json:"prejoin,omitempty"`

	// Schema is the bound projection schema (derived, not persisted).
	Schema *types.Schema `json:"-"`
}

// SortKey returns sort-order column indexes into the projection schema.
func (p *Projection) SortKey() []int {
	out := make([]int, 0, len(p.SortOrder))
	for _, name := range p.SortOrder {
		if i := p.Schema.ColIndex(name); i >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// HasColumn reports whether the projection stores the named column.
func (p *Projection) HasColumn(name string) bool {
	return p.Schema.ColIndex(name) >= 0
}

// VirtualTable is a system table: a schema plus a row producer evaluated at
// scan time. Virtual tables are not persisted and hold no projections; the
// planner scans them through exec.VirtualScan. They model Vertica's
// v_monitor/v_catalog metadata views — "Vertica is self-monitoring":
// runtime state is queryable with plain SQL.
type VirtualTable struct {
	Table *Table
	Rows  func() ([]types.Row, error)
}

// PoolDef is a persisted resource-pool definition (paper §8: workload
// management survives restarts). The catalog stores pool *definitions* only;
// runtime state (queues, grants, counters) lives in the governor, which
// core.Open re-registers these definitions with.
type PoolDef struct {
	Name               string `json:"name"`
	MemBytes           int64  `json:"memorysize,omitempty"`
	MaxMemBytes        int64  `json:"maxmemorysize,omitempty"`
	PlannedConcurrency int    `json:"planned_concurrency,omitempty"`
	MaxConcurrency     int    `json:"max_concurrency,omitempty"`
	// QueueTimeoutMS: 0 inherits the governor default, negative disables.
	QueueTimeoutMS int64 `json:"queue_timeout_ms,omitempty"`
	Priority       int   `json:"priority,omitempty"`
	// RuntimeCapMS bounds statement execution time (0 = uncapped).
	RuntimeCapMS int64 `json:"runtime_cap_ms,omitempty"`
	// Parallelism is the pool's intra-node parallel degree (0 = default).
	Parallelism int `json:"parallelism,omitempty"`
}

// Catalog is the cluster-wide metadata store.
type Catalog struct {
	mu          sync.RWMutex
	dir         string // "" for in-memory catalogs
	tables      map[string]*Table
	projections map[string]*Projection
	virtual     map[string]*VirtualTable
	// colStats holds per-table, per-column optimizer statistics written by
	// ANALYZE_STATISTICS. Kept beside (not inside) Table so planner reads
	// and ANALYZE writes synchronize on the catalog lock.
	colStats map[string]map[string]*stats.ColumnStats
	pools    map[string]*PoolDef
	// generation counts schema mutations (CREATE/DROP TABLE/PROJECTION) and
	// statsEpoch counts ANALYZE_STATISTICS writes. Both are monotonic and
	// in-memory only: they exist so the plan cache can key entries on the
	// catalog state they were planned against — a bump lazily invalidates
	// every cached plan without touching the cache.
	generation int64
	statsEpoch int64
}

// Generation returns the schema-mutation counter (bumped by CREATE/DROP of
// tables and projections).
func (c *Catalog) Generation() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.generation
}

// StatsEpoch returns the statistics-write counter (bumped by
// ANALYZE_STATISTICS via SetTableStats).
func (c *Catalog) StatsEpoch() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.statsEpoch
}

// New creates an empty catalog persisted under dir ("" keeps it in memory).
func New(dir string) *Catalog {
	return &Catalog{
		dir:         dir,
		tables:      map[string]*Table{},
		projections: map[string]*Projection{},
		virtual:     map[string]*VirtualTable{},
		colStats:    map[string]map[string]*stats.ColumnStats{},
		pools:       map[string]*PoolDef{},
	}
}

// RegisterVirtual installs (or replaces) a system table under its qualified
// name (e.g. "v_monitor.resource_pools"). Virtual tables shadow nothing:
// user tables resolve first.
func (c *Catalog) RegisterVirtual(t *Table, rows func() ([]types.Row, error)) error {
	if t == nil || t.Schema == nil || t.Schema.Len() == 0 {
		return fmt.Errorf("catalog: virtual table needs a schema")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.virtual[t.Name] = &VirtualTable{Table: t, Rows: rows}
	return nil
}

// Virtual resolves a virtual table by qualified name (nil when absent).
func (c *Catalog) Virtual(name string) *VirtualTable {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.virtual[name]
}

// VirtualNames lists registered virtual tables sorted by name.
func (c *Catalog) VirtualNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.virtual))
	for n := range c.virtual {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateTable registers a table.
func (c *Catalog) CreateTable(t *Table) error {
	if t.Schema == nil || t.Schema.Len() == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	t.Cols = t.Schema.Cols
	c.tables[t.Name] = t
	c.generation++
	return c.persistLocked()
}

// DropTable removes a table and all of its projections.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, name)
	delete(c.colStats, name)
	for pn, p := range c.projections {
		if p.Anchor == name {
			delete(c.projections, pn)
		}
	}
	c.generation++
	return c.persistLocked()
}

// Table resolves a table by name; virtual (system) tables resolve after
// user tables.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		if vt, vok := c.virtual[name]; vok {
			return vt.Table, nil
		}
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// Tables lists all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// bindProjectionSchema derives the projection schema from its anchor (and
// prejoin dimension) tables.
func (c *Catalog) bindProjectionSchema(p *Projection) error {
	anchor, ok := c.tables[p.Anchor]
	if !ok {
		return fmt.Errorf("catalog: projection %q anchors missing table %q", p.Name, p.Anchor)
	}
	cols := make([]types.Column, 0, len(p.Columns))
	for _, name := range p.Columns {
		if dim, col, isDim := splitDimRef(name); isDim {
			dt, ok := c.tables[dim]
			if !ok {
				return fmt.Errorf("catalog: projection %q references missing dimension table %q", p.Name, dim)
			}
			i := dt.Schema.ColIndex(col)
			if i < 0 {
				return fmt.Errorf("catalog: projection %q references missing column %q", p.Name, name)
			}
			cc := dt.Schema.Col(i)
			cc.Name = name
			cols = append(cols, cc)
			continue
		}
		i := anchor.Schema.ColIndex(name)
		if i < 0 {
			return fmt.Errorf("catalog: projection %q references missing column %q of %q", p.Name, name, p.Anchor)
		}
		cols = append(cols, anchor.Schema.Col(i))
	}
	p.Schema = types.NewSchema(cols...)
	for _, s := range p.SortOrder {
		if p.Schema.ColIndex(s) < 0 {
			return fmt.Errorf("catalog: projection %q sorts on column %q it does not store", p.Name, s)
		}
	}
	return nil
}

func splitDimRef(name string) (dim, col string, ok bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i], name[i+1:], true
		}
	}
	return "", "", false
}

// CreateProjection validates and registers a projection. A projection is
// super when it contains every column of its anchor table.
func (c *Catalog) CreateProjection(p *Projection) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.projections[p.Name]; ok {
		return fmt.Errorf("catalog: projection %q already exists", p.Name)
	}
	if err := c.bindProjectionSchema(p); err != nil {
		return err
	}
	anchor := c.tables[p.Anchor]
	p.IsSuper = true
	for _, col := range anchor.Schema.Cols {
		if p.Schema.ColIndex(col.Name) < 0 {
			p.IsSuper = false
			break
		}
	}
	if p.Encodings == nil {
		p.Encodings = map[string]encoding.Kind{}
	}
	c.projections[p.Name] = p
	c.generation++
	return c.persistLocked()
}

// DropProjection removes a projection. The last super projection of a table
// cannot be dropped ("we have no plans to lift the super projection
// requirement", §3.2).
func (c *Catalog) DropProjection(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.projections[name]
	if !ok {
		return fmt.Errorf("catalog: projection %q does not exist", name)
	}
	if p.IsSuper {
		supers := 0
		for _, o := range c.projections {
			if o.Anchor == p.Anchor && o.IsSuper {
				supers++
			}
		}
		if supers <= 1 {
			return fmt.Errorf("catalog: cannot drop %q: every table requires at least one super projection", name)
		}
	}
	delete(c.projections, name)
	c.generation++
	return c.persistLocked()
}

// Projection resolves a projection by name.
func (c *Catalog) Projection(name string) (*Projection, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.projections[name]
	if !ok {
		return nil, fmt.Errorf("catalog: projection %q does not exist", name)
	}
	return p, nil
}

// ProjectionsFor lists a table's projections sorted by name.
func (c *Catalog) ProjectionsFor(table string) []*Projection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Projection
	for _, p := range c.projections {
		if p.Anchor == table {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Projections lists every projection sorted by name.
func (c *Catalog) Projections() []*Projection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Projection, 0, len(c.projections))
	for _, p := range c.projections {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SuperProjection returns a table's first super projection, preferring
// plain ones over prejoin projections (a prejoin containing every anchor
// column is super by the paper's definition, but refresh/update paths need
// an undecorated source).
func (c *Catalog) SuperProjection(table string) (*Projection, error) {
	var prejoinSuper *Projection
	for _, p := range c.ProjectionsFor(table) {
		if !p.IsSuper || p.IsBuddy {
			continue
		}
		if len(p.Prejoin) > 0 {
			if prejoinSuper == nil {
				prejoinSuper = p
			}
			continue
		}
		return p, nil
	}
	if prejoinSuper != nil {
		return prejoinSuper, nil
	}
	return nil, fmt.Errorf("catalog: table %q has no super projection", table)
}

// --- column statistics -------------------------------------------------------

// SetTableStats merges per-column statistics for a table (ANALYZE of a
// single column replaces only that column's record) and persists the
// catalog, so statistics survive restart next to their table.
func (c *Catalog) SetTableStats(table string, cols []*stats.ColumnStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[table]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", table)
	}
	m := c.colStats[table]
	if m == nil {
		m = map[string]*stats.ColumnStats{}
		c.colStats[table] = m
	}
	for _, cs := range cols {
		m[cs.Column] = cs
	}
	c.statsEpoch++
	return c.persistLocked()
}

// TableStats snapshots a table's column statistics (nil when unanalyzed).
// ColumnStats records are immutable once stored; the returned map is a
// private copy the caller may hold without locking.
func (c *Catalog) TableStats(table string) map[string]*stats.ColumnStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.colStats[table]
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]*stats.ColumnStats, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ColumnStats returns one column's statistics (nil when unanalyzed).
func (c *Catalog) ColumnStats(table, column string) *stats.ColumnStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.colStats[table][column]
}

// --- resource pool definitions ----------------------------------------------

// SavePool upserts a persisted resource-pool definition.
func (c *Catalog) SavePool(def PoolDef) error {
	if def.Name == "" {
		return fmt.Errorf("catalog: pool definition needs a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d := def
	c.pools[def.Name] = &d
	return c.persistLocked()
}

// DropPool removes a persisted pool definition (no error when absent: the
// built-in general pool and pre-persistence pools have no definition).
func (c *Catalog) DropPool(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pools[name]; !ok {
		return nil
	}
	delete(c.pools, name)
	return c.persistLocked()
}

// PoolDef returns one persisted pool definition.
func (c *Catalog) PoolDef(name string) (PoolDef, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.pools[name]
	if !ok {
		return PoolDef{}, false
	}
	return *d, true
}

// PoolDefs lists persisted pool definitions sorted by name.
func (c *Catalog) PoolDefs() []PoolDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]PoolDef, 0, len(c.pools))
	for _, d := range c.pools {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// persisted is the JSON snapshot layout.
type persisted struct {
	Tables      []*Table      `json:"tables"`
	Projections []*Projection `json:"projections"`
	// Stats maps table -> column -> statistics, "next to tables" as the
	// paper keeps optimizer statistics in the catalog.
	Stats map[string]map[string]*stats.ColumnStats `json:"column_statistics,omitempty"`
	Pools []PoolDef                                `json:"resource_pools,omitempty"`
}

func (c *Catalog) persistLocked() error {
	if c.dir == "" {
		return nil
	}
	var p persisted
	for _, t := range c.tables {
		p.Tables = append(p.Tables, t)
	}
	for _, pr := range c.projections {
		p.Projections = append(p.Projections, pr)
	}
	sort.Slice(p.Tables, func(i, j int) bool { return p.Tables[i].Name < p.Tables[j].Name })
	sort.Slice(p.Projections, func(i, j int) bool { return p.Projections[i].Name < p.Projections[j].Name })
	if len(c.colStats) > 0 {
		p.Stats = c.colStats
	}
	for _, d := range c.pools {
		p.Pools = append(p.Pools, *d)
	}
	sort.Slice(p.Pools, func(i, j int) bool { return p.Pools[i].Name < p.Pools[j].Name })
	b, err := json.MarshalIndent(&p, "", " ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, "catalog.json.tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(c.dir, "catalog.json"))
}

// Load reopens a persisted catalog. Expression re-binding (partition and
// segmentation clauses) is left to the caller via RebindExprs, since parsing
// lives above this package.
func Load(dir string) (*Catalog, error) {
	c := New(dir)
	b, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var p persisted
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("catalog: corrupt catalog.json: %w", err)
	}
	for _, t := range p.Tables {
		t.Schema = types.NewSchema(t.Cols...)
		c.tables[t.Name] = t
	}
	for _, pr := range p.Projections {
		if err := c.bindProjectionSchema(pr); err != nil {
			return nil, err
		}
		c.projections[pr.Name] = pr
	}
	for table, m := range p.Stats {
		if _, ok := c.tables[table]; ok {
			c.colStats[table] = m
		}
	}
	for i := range p.Pools {
		d := p.Pools[i]
		c.pools[d.Name] = &d
	}
	return c, nil
}

// RebindExprs re-binds persisted expression text to runtime expressions
// using the supplied binder (the SQL layer's expression parser).
func (c *Catalog) RebindExprs(bind func(text string, schema *types.Schema) (expr.Expr, error)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.tables {
		if t.PartitionExprText != "" && t.PartitionExpr == nil {
			e, err := bind(t.PartitionExprText, t.Schema)
			if err != nil {
				return fmt.Errorf("catalog: rebinding partition expr of %q: %w", t.Name, err)
			}
			t.PartitionExpr = e
		}
	}
	for _, p := range c.projections {
		if p.Seg.ExprText != "" && p.Seg.Expr == nil {
			e, err := bind(p.Seg.ExprText, p.Schema)
			if err != nil {
				return fmt.Errorf("catalog: rebinding segmentation of %q: %w", p.Name, err)
			}
			p.Seg.Expr = e
		}
	}
	return nil
}
