package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/resmgr"
)

// profileChildren returns the indices of rec[i]'s direct children in the
// pre-order profile walk: subsequent records one level deeper, up to the
// first record at rec[i]'s depth or shallower.
func profileChildren(recs []resmgr.OpProfile, i int) []int {
	var out []int
	for j := i + 1; j < len(recs) && recs[j].Depth > recs[i].Depth; j++ {
		if recs[j].Depth == recs[i].Depth+1 {
			out = append(out, j)
		}
	}
	return out
}

// TestProfileParallelCountersConsistent runs a 4-way parallel join + sort +
// exchange under PROFILE and checks the per-operator counters are mutually
// consistent: every fan-in operator (ParallelUnion, merging Recv) must emit
// exactly the sum of its partitions' rows, regardless of how the scheduler
// interleaved the worker pipelines. Run under -race in CI, this doubles as
// the data-race check on the concurrent counter updates.
func TestProfileParallelCountersConsistent(t *testing.T) {
	db, err := Open(Options{
		Dir:           t.TempDir(),
		TempDir:       t.TempDir(),
		Parallelism:   4,
		ForceParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExecute(`CREATE TABLE sales (id INT, region INT, price FLOAT)`)
	db.MustExecute(`CREATE PROJECTION sales_super ON sales (id, region, price) ORDER BY id SEGMENTED BY HASH(id)`)
	db.MustExecute(`CREATE TABLE regions (rid INT, name VARCHAR)`)
	db.MustExecute(`CREATE PROJECTION regions_super ON regions (rid, name) ORDER BY rid REPLICATED`)
	var ins strings.Builder
	ins.WriteString(`INSERT INTO sales VALUES `)
	const nRows = 4000
	for i := 0; i < nRows; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d, %d.5)", i, i%16, i)
	}
	db.MustExecute(ins.String())
	db.MustExecute(`INSERT INTO regions VALUES (0,'a'), (1,'b'), (2,'c'), (3,'d'), (4,'e'), (5,'f'), (6,'g'), (7,'h'), (8,'i'), (9,'j'), (10,'k'), (11,'l'), (12,'m'), (13,'n'), (14,'o'), (15,'p')`)

	const q = `SELECT name, price FROM sales JOIN regions ON region = rid ORDER BY price`
	plain := db.MustExecute(q)
	want := int64(len(plain.Rows))
	if want != nRows {
		t.Fatalf("fixture join returned %d rows, want %d", want, nRows)
	}

	res := db.MustExecute("PROFILE " + q)
	recs := res.OpProfiles
	if len(recs) == 0 {
		t.Fatal("PROFILE returned no operator records")
	}
	if recs[0].Rows != want {
		t.Errorf("root %q produced %d rows, want %d", recs[0].Op, recs[0].Rows, want)
	}
	fanIns := 0
	for i, r := range recs {
		if r.NodeID < 0 {
			t.Errorf("operator %q has no plan-node id", r.Op)
		}
		if !strings.HasPrefix(r.Op, "ParallelUnion") && !strings.Contains(r.Op, "merge") {
			continue
		}
		// Fan-in: output rows must equal the sum over partitions, however
		// the worker goroutines interleaved.
		fanIns++
		var sum int64
		for _, c := range profileChildren(recs, i) {
			sum += recs[c].Rows
		}
		if sum != r.Rows {
			t.Errorf("fan-in %q emitted %d rows but partitions produced %d", r.Op, r.Rows, sum)
		}
		if r.Rows != want {
			t.Errorf("fan-in %q emitted %d rows, want the full %d", r.Op, r.Rows, want)
		}
	}
	if fanIns == 0 {
		t.Fatalf("plan had no fan-in operators — not a parallel plan?\n%s", res.Explain)
	}

	// The sort partitions together consumed every exchanged row: join + sort
	// + exchange all agree on the total.
	var sortRows int64
	sorts := 0
	for _, r := range recs {
		if strings.HasPrefix(r.Op, "Sort") {
			sorts++
			sortRows += r.Rows
		}
	}
	if sorts < 2 {
		t.Fatalf("expected parallel worker sorts, got %d\n%s", sorts, res.Explain)
	}
	if sortRows != want {
		t.Errorf("worker sorts produced %d rows total, want %d", sortRows, want)
	}

	// Timing ran (ProfTimes): the root of a 4000-row sort cannot round to
	// zero microseconds.
	if recs[0].WallUs <= 0 {
		t.Errorf("root wall time not recorded: %+v", recs[0])
	}
}
