package core

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/types"
)

// TestPlanCacheHitOnRepeat: the second execution of an identical SELECT is
// an exact cache hit — one entry, hit count advancing, identical results.
func TestPlanCacheHitOnRepeat(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 1_000)
	const q = `SELECT sale_id, price FROM sales WHERE cust = 3 ORDER BY sale_id`

	hits0 := metrics.PlanCacheHits.Value()
	first := db.MustExecute(q)
	if db.plans.Len() != 1 {
		t.Fatalf("entries after miss = %d", db.plans.Len())
	}
	second := db.MustExecute(q)
	if db.plans.Len() != 1 {
		t.Fatalf("entries after hit = %d", db.plans.Len())
	}
	if d := metrics.PlanCacheHits.Value() - hits0; d != 1 {
		t.Fatalf("hit delta = %d", d)
	}
	if len(first.Rows) != len(second.Rows) || len(first.Rows) == 0 {
		t.Fatalf("cached result differs: %d vs %d rows", len(first.Rows), len(second.Rows))
	}
	snap := db.plans.Snapshot()
	if snap[0].Hits != 1 || !strings.Contains(snap[0].Fingerprint, "cust = ?") {
		t.Fatalf("snapshot = %+v", snap[0])
	}
}

// TestPlanCacheShapeHitDifferentLiterals: same statement shape with a
// different constant shares the entry (probe reuse) without inserting a
// second one, and returns the right rows for the new constant.
func TestPlanCacheShapeHitDifferentLiterals(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 1_000)

	r3 := db.MustExecute(`SELECT COUNT(*) FROM sales WHERE cust = 3`)
	r7 := db.MustExecute(`SELECT COUNT(*) FROM sales WHERE cust = 7`)
	if db.plans.Len() != 1 {
		t.Fatalf("entries = %d", db.plans.Len())
	}
	if r3.Rows[0][0].I != 100 || r7.Rows[0][0].I != 100 {
		t.Fatalf("counts = %d, %d", r3.Rows[0][0].I, r7.Rows[0][0].I)
	}
}

// TestPlanCacheBypass: EXPLAIN, PROFILE and system-table queries never
// populate the cache.
func TestPlanCacheBypass(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	db.MustExecute(`EXPLAIN SELECT COUNT(*) FROM sales`)
	db.MustExecute(`PROFILE SELECT COUNT(*) FROM sales`)
	db.MustExecute(`SELECT COUNT(*) FROM v_monitor.resource_pools`)
	if db.plans.Len() != 0 {
		t.Fatalf("bypass statements cached: %d entries", db.plans.Len())
	}
}

// TestPlanCacheInvalidation: DDL, ANALYZE_STATISTICS and resource-pool
// changes each retire every cached plan by bumping their epoch.
func TestPlanCacheInvalidation(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 1_000)
	const q = `SELECT COUNT(*) FROM sales WHERE cust = 3`
	fill := func() {
		t.Helper()
		db.MustExecute(q)
		if db.plans.Len() != 1 {
			t.Fatalf("entries = %d", db.plans.Len())
		}
	}

	inv0 := metrics.PlanCacheInvalidations.Value()
	fill()
	db.MustExecute(`CREATE TABLE other (a INT)`) // catalog generation bump
	if db.plans.Len() != 0 {
		t.Fatal("DDL did not sweep the cache")
	}
	fill()
	db.MustExecute(`ANALYZE_STATISTICS('sales')`) // stats epoch bump
	if db.plans.Len() != 0 {
		t.Fatal("ANALYZE did not sweep the cache")
	}
	fill()
	db.MustExecute(`CREATE RESOURCE POOL p1 MEMORYSIZE '1M'`) // pool epoch bump
	if db.plans.Len() != 0 {
		t.Fatal("CREATE RESOURCE POOL did not sweep the cache")
	}
	fill()
	db.MustExecute(`ALTER RESOURCE POOL p1 PARALLELISM 2`)
	if db.plans.Len() != 0 {
		t.Fatal("ALTER RESOURCE POOL did not sweep the cache")
	}
	fill()
	db.MustExecute(`DROP RESOURCE POOL p1`)
	if db.plans.Len() != 0 {
		t.Fatal("DROP RESOURCE POOL did not sweep the cache")
	}
	if metrics.PlanCacheInvalidations.Value()-inv0 < 5 {
		t.Fatalf("invalidation counter delta = %d", metrics.PlanCacheInvalidations.Value()-inv0)
	}
	// The statement still runs (and re-caches) after all that churn.
	fill()
}

// TestPlanCacheDisabled: PlanCacheSize < 0 turns the cache off entirely.
func TestPlanCacheDisabled(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 100)
	db.MustExecute(`SELECT COUNT(*) FROM sales`)
	db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if db.plans != nil {
		t.Fatal("plan cache allocated despite PlanCacheSize = -1")
	}
}

// TestPlanCacheDivergenceReplan: when the re-bound selectivity estimate
// diverges ≥10× from the cached plan's, the statement replans instead of
// reusing the probe metadata.
func TestPlanCacheDivergenceReplan(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE skew (k INT, v INT)`)
	db.MustExecute(`CREATE PROJECTION skew_super ON skew (k, v) ORDER BY k SEGMENTED BY HASH(k)`)
	rows := make([]types.Row, 0, 10_100)
	for i := 0; i < 10_000; i++ {
		rows = append(rows, types.Row{types.NewInt(1), types.NewInt(int64(i))})
	}
	for i := 0; i < 100; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(1000 + i)), types.NewInt(int64(i))})
	}
	if err := db.Load("skew", rows, false); err != nil {
		t.Fatal(err)
	}
	db.MustExecute(`ANALYZE_STATISTICS('skew')`)

	replans0 := metrics.PlanCacheReplans.Value()
	// Seed the entry with a highly selective constant (~1e-4), then hit the
	// same shape with the 99% value: the estimates differ far beyond 10x.
	rare := db.MustExecute(`SELECT COUNT(*) FROM skew WHERE k = 1042`)
	common := db.MustExecute(`SELECT COUNT(*) FROM skew WHERE k = 1`)
	if rare.Rows[0][0].I != 1 || common.Rows[0][0].I != 10_000 {
		t.Fatalf("counts = %d, %d", rare.Rows[0][0].I, common.Rows[0][0].I)
	}
	if d := metrics.PlanCacheReplans.Value() - replans0; d != 1 {
		t.Fatalf("replan delta = %d", d)
	}
	// The replan re-inserted under the common literal; a nearby rare value
	// diverges again.
	db.MustExecute(`SELECT COUNT(*) FROM skew WHERE k = 1043`)
	if d := metrics.PlanCacheReplans.Value() - replans0; d != 2 {
		t.Fatalf("replan delta after second swing = %d", d)
	}
}

// TestPreparedStatementsShareCacheWithAdHoc: EXECUTE flows through the same
// plan cache as the equivalent ad-hoc SELECT — one entry serves both.
func TestPreparedStatementsShareCacheWithAdHoc(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 1_000)
	s := db.NewSession()
	defer s.Close()

	if _, err := s.Execute(`PREPARE q AS SELECT COUNT(*) FROM sales WHERE cust = $1`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`EXECUTE q(3)`); err != nil {
		t.Fatal(err)
	}
	if db.plans.Len() != 1 {
		t.Fatalf("entries after EXECUTE = %d", db.plans.Len())
	}
	hits0 := metrics.PlanCacheHits.Value()
	res, err := s.Execute(`SELECT COUNT(*) FROM sales WHERE cust = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 100 {
		t.Fatalf("count = %d", res.Rows[0][0].I)
	}
	if db.plans.Len() != 1 || metrics.PlanCacheHits.Value()-hits0 != 1 {
		t.Fatalf("ad-hoc twin missed the prepared entry (entries=%d)", db.plans.Len())
	}
}

// TestPreparedStatementLifecycleErrors covers the session-level error
// surface: duplicate names, unknown names, arity mismatches, gap-numbered
// parameters and parameters outside PREPARE.
func TestPreparedStatementLifecycleErrors(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	s := db.NewSession()
	defer s.Close()

	mustFail := func(sqlText, want string) {
		t.Helper()
		_, err := s.Execute(sqlText)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: error = %v, want %q", sqlText, err, want)
		}
	}

	if _, err := s.Execute(`PREPARE p AS SELECT COUNT(*) FROM sales WHERE cust = $1`); err != nil {
		t.Fatal(err)
	}
	mustFail(`PREPARE p AS SELECT 1 FROM sales`, "already exists")
	mustFail(`EXECUTE nope(1)`, "does not exist")
	mustFail(`EXECUTE p`, "needs 1 parameter(s), got 0")
	mustFail(`EXECUTE p(1, 2)`, "needs 1 parameter(s), got 2")
	mustFail(`DEALLOCATE nope`, "does not exist")
	mustFail(`PREPARE gap AS SELECT COUNT(*) FROM sales WHERE cust = $2`, "references $2 but not $1")
	mustFail(`SELECT COUNT(*) FROM sales WHERE cust = $1`, "outside a prepared statement")

	if _, err := s.Execute(`DEALLOCATE p`); err != nil {
		t.Fatal(err)
	}
	mustFail(`EXECUTE p(1)`, "does not exist")

	// DML bodies prepare and execute too (parameterized INSERT).
	if _, err := s.Execute(`PREPARE ins AS INSERT INTO sales VALUES ($1, $2, $3, $4)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`EXECUTE ins(9999, 1, 1.5, 0)`); err != nil {
		t.Fatal(err)
	}
	res := db.MustExecute(`SELECT COUNT(*) FROM sales WHERE sale_id = 9999`)
	if res.Rows[0][0].I != 1 {
		t.Fatalf("prepared INSERT did not land: %d", res.Rows[0][0].I)
	}
}

// TestPlanCacheMonitorTable: v_monitor.plan_cache exposes cached entries
// with their hit counts and epochs, SQL-queryable like any system table.
func TestPlanCacheMonitorTable(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 1_000)
	db.MustExecute(`SELECT COUNT(*) FROM sales WHERE cust = 5`)
	db.MustExecute(`SELECT COUNT(*) FROM sales WHERE cust = 5`)

	res := db.MustExecute(`SELECT statement, pool, hits, projections FROM v_monitor.plan_cache`)
	if len(res.Rows) != 1 {
		t.Fatalf("plan_cache rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if !strings.Contains(row[0].S, "cust = ?") || row[1].S != "general" || row[2].I != 1 {
		t.Fatalf("row = %v", row)
	}
	if row[3].S != "sales_super" {
		t.Fatalf("projections = %q", row[3].S)
	}
}

// TestPlanCacheStormNoStaleExecution is the PR's race regression test: a
// storm of concurrent EXECUTEs races ALTER RESOURCE POOL and
// ANALYZE_STATISTICS. Every EXECUTE must return the correct count (cached
// plans rebuild per-node operators against the live catalog), and once the
// churn stops, no surviving cache entry may carry a pre-bump epoch.
func TestPlanCacheStormNoStaleExecution(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 2_000)
	db.MustExecute(`CREATE RESOURCE POOL stormpool MEMORYSIZE '64M'`)

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters+iters)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			if _, err := s.Execute(`PREPARE c AS SELECT COUNT(*) FROM sales WHERE cust = $1`); err != nil {
				errs <- err
				return
			}
			for i := 0; i < iters; i++ {
				res, err := s.Execute(fmt.Sprintf(`EXECUTE c(%d)`, i%10))
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				if res.Rows[0][0].I != 200 {
					errs <- fmt.Errorf("worker %d iter %d: count = %d, want 200", w, i, res.Rows[0][0].I)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var stmt string
			switch i % 3 {
			case 0:
				stmt = fmt.Sprintf(`ALTER RESOURCE POOL stormpool MEMORYSIZE '%dM'`, 32+i)
			case 1:
				stmt = `ANALYZE_STATISTICS('sales')`
			default:
				stmt = `ALTER RESOURCE POOL stormpool PARALLELISM 2`
			}
			if _, err := db.Execute(stmt); err != nil {
				errs <- fmt.Errorf("churn iter %d: %w", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the last bump every surviving entry must be at the live epochs:
	// a stale entry still resident would mean an invalidation was missed.
	now := db.planEpochs()
	for _, info := range db.plans.Snapshot() {
		if info.CatalogGen != now.CatalogGen || info.StatsEpoch != now.StatsEpoch || info.PoolEpoch != now.PoolEpoch {
			t.Fatalf("stale entry survived churn: %+v vs now %+v", info, now)
		}
	}
	t.Logf("stale lookups retired (never served): %d", db.plans.StaleHits())
}

// TestPlanCacheSpeedupGate is the CI bench-smoke assertion for the serving
// path: steady-state cached serving (plan cache + decoded-block cache warm,
// repeated parameterized point lookups) must deliver at least 1.5x the
// statements/sec of cold serving (both caches disabled, every statement
// novel). Heavyweight for unit runs, so it only executes when
// PLANCACHE_GATE=1 (CI sets it).
func TestPlanCacheSpeedupGate(t *testing.T) {
	if os.Getenv("PLANCACHE_GATE") != "1" {
		t.Skip("set PLANCACHE_GATE=1 to run the speedup gate")
	}
	open := func(cacheSize int) *Database {
		db, err := Open(Options{Dir: t.TempDir(), PlanCacheSize: cacheSize})
		if err != nil {
			t.Fatal(err)
		}
		// ROS-resident fixture: the serving path being measured is repeated
		// reads of immutable containers, not WOS drains.
		db.MustExecute(`CREATE TABLE sales (sale_id INT, cust INT, price FLOAT, qty INT)`)
		db.MustExecute(`CREATE PROJECTION sales_super ON sales (sale_id, cust, price, qty)
			ORDER BY sale_id SEGMENTED BY HASH(sale_id)`)
		rows := make([]types.Row, 0, 50_000)
		for i := 0; i < 50_000; i++ {
			rows = append(rows, types.Row{
				types.NewInt(int64(i)), types.NewInt(int64(i % 10)),
				types.NewFloat(float64(i) + 0.5), types.NewInt(int64(i % 3)),
			})
		}
		if err := db.Load("sales", rows, true); err != nil {
			t.Fatal(err)
		}
		db.MustExecute(`ANALYZE_STATISTICS('sales')`)
		return db
	}
	const n = 300
	point := func(id int) string {
		return fmt.Sprintf(`SELECT price, qty FROM sales WHERE sale_id = %d`, id)
	}

	// Cold: serving caches off, point lookups scattered across the table.
	db := open(-1)
	storage.SetBlockCacheBudget(0)
	start := time.Now()
	for i := 0; i < n; i++ {
		db.MustExecute(point((i * 7919) % 50_000))
	}
	coldQPS := float64(n) / time.Since(start).Seconds()
	storage.SetBlockCacheBudget(storage.DefaultBlockCacheBytes)

	// Cached: both caches on, hot repeated parameterized lookups.
	db = open(0)
	for i := 0; i < 32; i++ {
		db.MustExecute(point(4000 + i)) // warm plan + block caches
	}
	start = time.Now()
	for i := 0; i < n; i++ {
		db.MustExecute(point(4000 + i%32))
	}
	cachedQPS := float64(n) / time.Since(start).Seconds()

	speedup := cachedQPS / coldQPS
	t.Logf("cold %.0f stmt/s, cached %.0f stmt/s (%.2fx)", coldQPS, cachedQPS, speedup)
	if speedup < 1.5 {
		t.Fatalf("cached serving throughput only %.2fx of cold (want >= 1.5x)", speedup)
	}
}
