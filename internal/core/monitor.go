// System tables (the v_monitor schema): the engine's runtime state exposed
// as SQL-queryable virtual tables, mirroring Vertica's self-monitoring
// design — resource pools, retained query profiles and live sessions are
// plain tables to SELECT from, joinable, filterable and aggregatable like
// any user data.
package core

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/types"
)

func col(name string, t types.Type) types.Column {
	return types.Column{Name: name, Typ: t, Nullable: true}
}

// registerMonitorTables installs the v_monitor.* virtual tables against this
// database's governor and session registry.
func (db *Database) registerMonitorTables() {
	poolSchema := types.NewSchema(
		col("name", types.Varchar),
		col("memorysize", types.Int64),
		col("maxmemorysize", types.Int64),
		col("grantsize", types.Int64),
		col("planned_concurrency", types.Int64),
		col("max_concurrency", types.Int64),
		col("queue_timeout_ms", types.Int64),
		col("running", types.Int64),
		col("waiting", types.Int64),
		col("in_use_bytes", types.Int64),
		col("borrowed_bytes", types.Int64),
		col("admitted", types.Int64),
		col("queued", types.Int64),
		col("timed_out", types.Int64),
		col("canceled", types.Int64),
		col("peak_running", types.Int64),
		col("queue_wait_us", types.Int64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.resource_pools", Schema: poolSchema},
		func() ([]types.Row, error) {
			pools := db.Governor().Pools()
			rows := make([]types.Row, 0, len(pools))
			for _, p := range pools {
				timeoutMS := p.EffQueueTimeout.Milliseconds()
				if p.EffQueueTimeout < 0 {
					timeoutMS = -1
				}
				rows = append(rows, types.Row{
					types.NewString(p.Name),
					types.NewInt(p.MemBytes),
					types.NewInt(p.EffMaxMemBytes),
					types.NewInt(p.EffGrantBytes),
					types.NewInt(int64(p.PlannedConcurrency)),
					types.NewInt(int64(p.EffMaxConcurrency)),
					types.NewInt(timeoutMS),
					types.NewInt(int64(p.Running)),
					types.NewInt(int64(p.Waiting)),
					types.NewInt(p.InUseBytes),
					types.NewInt(p.BorrowedBytes),
					types.NewInt(p.Admitted),
					types.NewInt(p.Queued),
					types.NewInt(p.TimedOut),
					types.NewInt(p.Canceled),
					types.NewInt(int64(p.PeakRunning)),
					types.NewInt(p.TotalQueueWait.Microseconds()),
				})
			}
			return rows, nil
		})

	profSchema := types.NewSchema(
		col("profile_id", types.Int64),
		col("pool", types.Varchar),
		col("statement", types.Varchar),
		col("grant_bytes", types.Int64),
		col("rows_produced", types.Int64),
		col("spills", types.Int64),
		col("spilled_bytes", types.Int64),
		col("alloc_peak_bytes", types.Int64),
		col("queue_wait_us", types.Int64),
		col("wall_us", types.Int64),
		col("started_at", types.Timestamp),
		col("status", types.Varchar),
		col("error", types.Varchar),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.query_profiles", Schema: profSchema},
		func() ([]types.Row, error) {
			profs := db.Governor().Profiles()
			rows := make([]types.Row, 0, len(profs))
			for _, p := range profs {
				status := "ok"
				if p.Error != "" {
					status = "error"
				}
				rows = append(rows, types.Row{
					types.NewInt(p.ID),
					types.NewString(p.Pool),
					types.NewString(p.Label),
					types.NewInt(p.GrantBytes),
					types.NewInt(p.Rows),
					types.NewInt(p.Spills),
					types.NewInt(p.SpilledBytes),
					types.NewInt(p.AllocPeak),
					types.NewInt(p.QueueWait.Microseconds()),
					types.NewInt(p.Wall.Microseconds()),
					types.NewTimestamp(p.Started.UTC()),
					types.NewString(status),
					types.NewString(p.Error),
				})
			}
			return rows, nil
		})

	sessSchema := types.NewSchema(
		col("session_id", types.Int64),
		col("pool", types.Varchar),
		col("statements", types.Int64),
		col("current_statement", types.Varchar),
		col("in_txn", types.Bool),
		col("created_at", types.Timestamp),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.sessions", Schema: sessSchema},
		func() ([]types.Row, error) {
			db.sessMu.Lock()
			sessions := make([]*Session, 0, len(db.sessions))
			for _, s := range db.sessions {
				sessions = append(sessions, s)
			}
			db.sessMu.Unlock()
			sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
			rows := make([]types.Row, 0, len(sessions))
			for _, s := range sessions {
				s.mu.Lock()
				pool := s.pool
				cur := s.curStmt
				stmts := s.stmts
				inTxn := s.tx != nil
				s.mu.Unlock()
				if pool == "" {
					pool = "general"
				}
				rows = append(rows, types.Row{
					types.NewInt(s.id),
					types.NewString(pool),
					types.NewInt(stmts),
					types.NewString(cur),
					types.NewBool(inTxn),
					types.NewTimestamp(s.created.UTC()),
				})
			}
			return rows, nil
		})
}
