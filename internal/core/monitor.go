// System tables (the v_monitor schema): the engine's runtime state exposed
// as SQL-queryable virtual tables, mirroring Vertica's self-monitoring
// design — resource pools, retained query profiles and live sessions are
// plain tables to SELECT from, joinable, filterable and aggregatable like
// any user data.
package core

import (
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/types"
)

func col(name string, t types.Type) types.Column {
	return types.Column{Name: name, Typ: t, Nullable: true}
}

// registerMonitorTables installs the v_monitor.* virtual tables against this
// database's governor and session registry.
func (db *Database) registerMonitorTables() {
	poolSchema := types.NewSchema(
		col("name", types.Varchar),
		col("memorysize", types.Int64),
		col("maxmemorysize", types.Int64),
		col("grantsize", types.Int64),
		col("planned_concurrency", types.Int64),
		col("max_concurrency", types.Int64),
		col("queue_timeout_ms", types.Int64),
		col("running", types.Int64),
		col("waiting", types.Int64),
		col("in_use_bytes", types.Int64),
		col("borrowed_bytes", types.Int64),
		col("admitted", types.Int64),
		col("queued", types.Int64),
		col("timed_out", types.Int64),
		col("canceled", types.Int64),
		col("peak_running", types.Int64),
		col("queue_wait_us", types.Int64),
		col("priority", types.Int64),
		col("runtimecap_ms", types.Int64),
		col("parallelism", types.Int64),
		col("grant_extensions", types.Int64),
		col("extension_bytes", types.Int64),
		col("denied_extensions", types.Int64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.resource_pools", Schema: poolSchema},
		func() ([]types.Row, error) {
			pools := db.Governor().Pools()
			rows := make([]types.Row, 0, len(pools))
			for _, p := range pools {
				timeoutMS := p.EffQueueTimeout.Milliseconds()
				if p.EffQueueTimeout < 0 {
					timeoutMS = -1
				}
				rows = append(rows, types.Row{
					types.NewString(p.Name),
					types.NewInt(p.MemBytes),
					types.NewInt(p.EffMaxMemBytes),
					types.NewInt(p.EffGrantBytes),
					types.NewInt(int64(p.PlannedConcurrency)),
					types.NewInt(int64(p.EffMaxConcurrency)),
					types.NewInt(timeoutMS),
					types.NewInt(int64(p.Running)),
					types.NewInt(int64(p.Waiting)),
					types.NewInt(p.InUseBytes),
					types.NewInt(p.BorrowedBytes),
					types.NewInt(p.Admitted),
					types.NewInt(p.Queued),
					types.NewInt(p.TimedOut),
					types.NewInt(p.Canceled),
					types.NewInt(int64(p.PeakRunning)),
					types.NewInt(p.TotalQueueWait.Microseconds()),
					types.NewInt(int64(p.Priority)),
					types.NewInt(p.RuntimeCap.Milliseconds()),
					types.NewInt(int64(p.Parallelism)),
					types.NewInt(p.GrantExtensions),
					types.NewInt(p.ExtensionBytes),
					types.NewInt(p.DeniedExtensions),
				})
			}
			return rows, nil
		})

	profSchema := types.NewSchema(
		col("profile_id", types.Int64),
		col("pool", types.Varchar),
		col("statement", types.Varchar),
		col("grant_bytes", types.Int64),
		col("rows_produced", types.Int64),
		col("spills", types.Int64),
		col("spilled_bytes", types.Int64),
		col("grant_extensions", types.Int64),
		col("extension_bytes", types.Int64),
		col("denied_extensions", types.Int64),
		col("alloc_peak_bytes", types.Int64),
		col("queue_wait_us", types.Int64),
		col("wall_us", types.Int64),
		col("started_at", types.Timestamp),
		col("status", types.Varchar),
		col("error", types.Varchar),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.query_profiles", Schema: profSchema},
		func() ([]types.Row, error) {
			profs := db.Governor().Profiles()
			rows := make([]types.Row, 0, len(profs))
			for _, p := range profs {
				status := "ok"
				if p.Error != "" {
					status = "error"
				}
				rows = append(rows, types.Row{
					types.NewInt(p.ID),
					types.NewString(p.Pool),
					types.NewString(p.Label),
					types.NewInt(p.GrantBytes),
					types.NewInt(p.Rows),
					types.NewInt(p.Spills),
					types.NewInt(p.SpilledBytes),
					types.NewInt(p.GrantExtensions),
					types.NewInt(p.ExtensionBytes),
					types.NewInt(p.DeniedExtensions),
					types.NewInt(p.AllocPeak),
					types.NewInt(p.QueueWait.Microseconds()),
					types.NewInt(p.Wall.Microseconds()),
					types.NewTimestamp(p.Started.UTC()),
					types.NewString(status),
					types.NewString(p.Error),
				})
			}
			return rows, nil
		})

	// v_monitor.execution_engine_profiles: retained per-operator execution
	// records, one row per plan node of a PROFILEd or slow query. Joins to
	// v_monitor.query_profiles on profile_id = query_id.
	opProfSchema := types.NewSchema(
		col("query_id", types.Int64),
		col("node_name", types.Varchar),
		col("plan_node_id", types.Int64),
		col("depth", types.Int64),
		col("operator", types.Varchar),
		col("est_rows", types.Int64),
		col("batches", types.Int64),
		col("rows_produced", types.Int64),
		col("wall_us", types.Int64),
		col("blocked_us", types.Int64),
		col("spills", types.Int64),
		col("spilled_bytes", types.Int64),
		col("alloc_peak_bytes", types.Int64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.execution_engine_profiles", Schema: opProfSchema},
		func() ([]types.Row, error) {
			recs := db.Governor().OpProfiles()
			rows := make([]types.Row, 0, len(recs))
			for _, r := range recs {
				rows = append(rows, types.Row{
					types.NewInt(r.QueryID),
					types.NewString(r.Node),
					types.NewInt(int64(r.NodeID)),
					types.NewInt(int64(r.Depth)),
					types.NewString(r.Op),
					types.NewInt(r.EstRows),
					types.NewInt(r.Batches),
					types.NewInt(r.Rows),
					types.NewInt(r.WallUs),
					types.NewInt(r.BlockedUs),
					types.NewInt(r.Spills),
					types.NewInt(r.SpilledBytes),
					types.NewInt(r.AllocPeak),
				})
			}
			return rows, nil
		})

	// v_monitor.metrics: the process-wide metrics registry, one row per
	// counter/gauge. Values are cumulative since process start (counters)
	// or instantaneous (gauges).
	metricsSchema := types.NewSchema(
		col("name", types.Varchar),
		col("kind", types.Varchar),
		col("value", types.Int64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.metrics", Schema: metricsSchema},
		func() ([]types.Row, error) {
			samples := metrics.Default.Snapshot()
			rows := make([]types.Row, 0, len(samples))
			for _, s := range samples {
				rows = append(rows, types.Row{
					types.NewString(s.Name),
					types.NewString(string(s.Kind)),
					types.NewInt(s.Value),
				})
			}
			return rows, nil
		})

	// v_catalog.column_statistics: the optimizer statistics written by
	// ANALYZE_STATISTICS, one row per analyzed column.
	statsSchema := types.NewSchema(
		col("table_name", types.Varchar),
		col("column_name", types.Varchar),
		col("row_count", types.Int64),
		col("null_count", types.Int64),
		col("ndv", types.Int64),
		col("min_value", types.Varchar),
		col("max_value", types.Varchar),
		col("histogram_buckets", types.Int64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_catalog.column_statistics", Schema: statsSchema},
		func() ([]types.Row, error) {
			var rows []types.Row
			for _, t := range db.cat.Tables() {
				m := db.cat.TableStats(t.Name)
				if m == nil {
					continue
				}
				names := make([]string, 0, len(m))
				for n := range m {
					names = append(names, n)
				}
				sort.Strings(names)
				for _, n := range names {
					cs := m[n]
					buckets := int64(0)
					if cs.Hist != nil {
						buckets = int64(len(cs.Hist.Buckets))
					}
					rows = append(rows, types.Row{
						types.NewString(t.Name),
						types.NewString(cs.Column),
						types.NewInt(cs.RowCount),
						types.NewInt(cs.NullCount),
						types.NewInt(cs.NDV),
						types.NewString(cs.Min.String()),
						types.NewString(cs.Max.String()),
						types.NewInt(buckets),
					})
				}
			}
			return rows, nil
		})

	// v_catalog.projections: the physical design, one row per projection.
	projSchema := types.NewSchema(
		col("projection_name", types.Varchar),
		col("anchor_table", types.Varchar),
		col("columns", types.Varchar),
		col("sort_order", types.Varchar),
		col("segmentation", types.Varchar),
		col("is_super", types.Bool),
		col("is_buddy", types.Bool),
		col("buddy", types.Varchar),
		col("is_prejoin", types.Bool),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_catalog.projections", Schema: projSchema},
		func() ([]types.Row, error) {
			projs := db.cat.Projections()
			rows := make([]types.Row, 0, len(projs))
			for _, p := range projs {
				seg := "unsegmented"
				switch {
				case p.Seg.Replicated:
					seg = "replicated"
				case p.Seg.ExprText != "":
					seg = p.Seg.ExprText
				}
				rows = append(rows, types.Row{
					types.NewString(p.Name),
					types.NewString(p.Anchor),
					types.NewString(strings.Join(p.Columns, ",")),
					types.NewString(strings.Join(p.SortOrder, ",")),
					types.NewString(seg),
					types.NewBool(p.IsSuper),
					types.NewBool(p.IsBuddy),
					types.NewString(p.Buddy),
					types.NewBool(len(p.Prejoin) > 0),
				})
			}
			return rows, nil
		})

	// v_monitor.projection_storage: per-projection, per-node physical
	// storage — ROS/WOS bytes and rows, container and delete-vector counts.
	storSchema := types.NewSchema(
		col("projection_name", types.Varchar),
		col("node_name", types.Varchar),
		col("ros_bytes", types.Int64),
		col("ros_containers", types.Int64),
		col("ros_rows", types.Int64),
		col("wos_bytes", types.Int64),
		col("wos_rows", types.Int64),
		col("dv_count", types.Int64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.projection_storage", Schema: storSchema},
		func() ([]types.Row, error) {
			var rows []types.Row
			for _, p := range db.cat.Projections() {
				for _, n := range db.cluster.UpNodes() {
					mgr, err := n.Mgr(p, db.cluster.ManagerOpts())
					if err != nil {
						return nil, err
					}
					dvCount := int64(len(mgr.DVs().Get(storage.WOSTarget)))
					for _, r := range mgr.Containers() {
						dvCount += int64(len(mgr.DVs().Get(r.Meta.ID)))
					}
					rows = append(rows, types.Row{
						types.NewString(p.Name),
						types.NewString(n.Name),
						types.NewInt(mgr.TotalBytes()),
						types.NewInt(int64(len(mgr.Containers()))),
						types.NewInt(mgr.RowCount()),
						types.NewInt(mgr.WOS().Bytes()),
						types.NewInt(int64(mgr.WOS().Len())),
						types.NewInt(dvCount),
					})
				}
			}
			return rows, nil
		})

	// v_catalog.tables: one row per user table — the logical schema
	// inventory next to v_catalog.projections' physical one.
	tblSchema := types.NewSchema(
		col("table_name", types.Varchar),
		col("column_count", types.Int64),
		col("partition_expr", types.Varchar),
		col("projection_count", types.Int64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_catalog.tables", Schema: tblSchema},
		func() ([]types.Row, error) {
			tables := db.cat.Tables()
			rows := make([]types.Row, 0, len(tables))
			for _, t := range tables {
				rows = append(rows, types.Row{
					types.NewString(t.Name),
					types.NewInt(int64(t.Schema.Len())),
					types.NewString(t.PartitionExprText),
					types.NewInt(int64(len(db.cat.ProjectionsFor(t.Name)))),
				})
			}
			return rows, nil
		})

	// v_monitor.locks: the lock manager's held table locks, one row per
	// (transaction, table) pair.
	lockSchema := types.NewSchema(
		col("table_name", types.Varchar),
		col("txn_id", types.Int64),
		col("mode", types.Varchar),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.locks", Schema: lockSchema},
		func() ([]types.Row, error) {
			locks := db.txns.Locks.Snapshot()
			rows := make([]types.Row, 0, len(locks))
			for _, l := range locks {
				rows = append(rows, types.Row{
					types.NewString(l.Table),
					types.NewInt(int64(l.Txn)),
					types.NewString(l.Mode.String()),
				})
			}
			return rows, nil
		})

	sessSchema := types.NewSchema(
		col("session_id", types.Int64),
		col("pool", types.Varchar),
		col("statements", types.Int64),
		col("current_statement", types.Varchar),
		col("in_txn", types.Bool),
		col("created_at", types.Timestamp),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.sessions", Schema: sessSchema},
		func() ([]types.Row, error) {
			db.sessMu.Lock()
			sessions := make([]*Session, 0, len(db.sessions))
			for _, s := range db.sessions {
				sessions = append(sessions, s)
			}
			db.sessMu.Unlock()
			sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
			rows := make([]types.Row, 0, len(sessions))
			for _, s := range sessions {
				s.mu.Lock()
				pool := s.pool
				cur := s.curStmt
				stmts := s.stmts
				inTxn := s.tx != nil
				s.mu.Unlock()
				if pool == "" {
					pool = "general"
				}
				rows = append(rows, types.Row{
					types.NewInt(s.id),
					types.NewString(pool),
					types.NewInt(stmts),
					types.NewString(cur),
					types.NewBool(inTxn),
					types.NewTimestamp(s.created.UTC()),
				})
			}
			return rows, nil
		})

	planCacheSchema := types.NewSchema(
		col("statement", types.Varchar),
		col("pool", types.Varchar),
		col("parallelism", types.Int64),
		col("hits", types.Int64),
		col("est_rows", types.Int64),
		col("est_mem_bytes", types.Int64),
		col("stats_backed", types.Bool),
		col("projections", types.Varchar),
		col("catalog_generation", types.Int64),
		col("stats_epoch", types.Int64),
		col("pool_epoch", types.Int64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.plan_cache", Schema: planCacheSchema},
		func() ([]types.Row, error) {
			if db.plans == nil {
				return nil, nil
			}
			infos := db.plans.Snapshot()
			rows := make([]types.Row, 0, len(infos))
			for _, i := range infos {
				rows = append(rows, types.Row{
					types.NewString(i.Fingerprint),
					types.NewString(i.Pool),
					types.NewInt(int64(i.Parallelism)),
					types.NewInt(i.Hits),
					types.NewInt(i.EstRows),
					types.NewInt(i.EstMemBytes),
					types.NewBool(i.StatsBacked),
					types.NewString(strings.Join(i.Projections, ",")),
					types.NewInt(i.CatalogGen),
					types.NewInt(i.StatsEpoch),
					types.NewInt(i.PoolEpoch),
				})
			}
			return rows, nil
		})

	db.registerDCTables()
}

// registerDCTables installs the Data Collector's event-stream tables: each
// one is a snapshot of a bounded ring buffer (oldest events are overwritten
// once a ring fills; v_monitor.metrics' dc.dropped_events counts the loss).
// All are joinable to v_monitor.query_profiles on query_id.
func (db *Database) registerDCTables() {
	phaseSchema := types.NewSchema(
		col("query_id", types.Int64),
		col("phase_seq", types.Int64),
		col("phase", types.Varchar),
		col("start", types.Timestamp),
		col("duration_us", types.Float64),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.query_phases", Schema: phaseSchema},
		func() ([]types.Row, error) {
			evs := db.dcol.Phases()
			rows := make([]types.Row, 0, len(evs))
			for _, e := range evs {
				rows = append(rows, types.Row{
					types.NewInt(e.QueryID),
					types.NewInt(int64(e.Seq)),
					types.NewString(e.Phase),
					types.NewTimestamp(e.Start.UTC()),
					types.NewFloat(float64(e.Duration) / 1e3),
				})
			}
			return rows, nil
		})

	eventSchema := types.NewSchema(
		col("query_id", types.Int64),
		col("event_type", types.Varchar),
		col("detail", types.Varchar),
		col("time", types.Timestamp),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.query_events", Schema: eventSchema},
		func() ([]types.Row, error) {
			evs := db.dcol.Events()
			rows := make([]types.Row, 0, len(evs))
			for _, e := range evs {
				rows = append(rows, types.Row{
					types.NewInt(e.QueryID),
					types.NewString(e.Type),
					types.NewString(e.Detail),
					types.NewTimestamp(e.Time.UTC()),
				})
			}
			return rows, nil
		})

	moverSchema := types.NewSchema(
		col("operation", types.Varchar),
		col("projection", types.Varchar),
		col("containers", types.Int64),
		col("rows_moved", types.Int64),
		col("bytes", types.Int64),
		col("duration_us", types.Float64),
		col("time", types.Timestamp),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.dc_tuple_mover_events", Schema: moverSchema},
		func() ([]types.Row, error) {
			evs := db.dcol.MoverEvents()
			rows := make([]types.Row, 0, len(evs))
			for _, e := range evs {
				rows = append(rows, types.Row{
					types.NewString(e.Op),
					types.NewString(e.Projection),
					types.NewInt(int64(e.Containers)),
					types.NewInt(e.Rows),
					types.NewInt(e.Bytes),
					types.NewFloat(float64(e.Duration) / 1e3),
					types.NewTimestamp(e.Time.UTC()),
				})
			}
			return rows, nil
		})

	lockSchema := types.NewSchema(
		col("table_name", types.Varchar),
		col("txn_id", types.Int64),
		col("mode", types.Varchar),
		col("wait_us", types.Float64),
		col("granted", types.Bool),
		col("time", types.Timestamp),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.dc_lock_attempts", Schema: lockSchema},
		func() ([]types.Row, error) {
			evs := db.dcol.LockEvents()
			rows := make([]types.Row, 0, len(evs))
			for _, e := range evs {
				rows = append(rows, types.Row{
					types.NewString(e.Table),
					types.NewInt(int64(e.Txn)),
					types.NewString(e.Mode),
					types.NewFloat(float64(e.Wait) / 1e3),
					types.NewBool(e.Granted),
					types.NewTimestamp(e.Time.UTC()),
				})
			}
			return rows, nil
		})

	errSchema := types.NewSchema(
		col("query_id", types.Int64),
		col("statement", types.Varchar),
		col("error", types.Varchar),
		col("time", types.Timestamp),
	)
	db.cat.RegisterVirtual(&catalog.Table{Name: "v_monitor.dc_errors", Schema: errSchema},
		func() ([]types.Row, error) {
			evs := db.dcol.Errors()
			rows := make([]types.Row, 0, len(evs))
			for _, e := range evs {
				rows = append(rows, types.Row{
					types.NewInt(e.QueryID),
					types.NewString(e.SQL),
					types.NewString(e.Error),
					types.NewTimestamp(e.Time.UTC()),
				})
			}
			return rows, nil
		})
}
