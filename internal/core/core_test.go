package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/types"
)

func openTestDB(t testing.TB, nodes, k int) *Database {
	t.Helper()
	db, err := Open(Options{Dir: t.TempDir(), Nodes: nodes, K: k})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func setupSales(t testing.TB, db *Database, n int) {
	t.Helper()
	db.MustExecute(`CREATE TABLE sales (sale_id INT, cust INT, price FLOAT, qty INT)`)
	db.MustExecute(`CREATE PROJECTION sales_super ON sales (sale_id, cust, price, qty)
		ORDER BY sale_id SEGMENTED BY HASH(sale_id)`)
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 10)),
			types.NewFloat(float64(i) + 0.5),
			types.NewInt(int64(i % 3)),
		})
	}
	if err := db.Load("sales", rows, false); err != nil {
		t.Fatal(err)
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE t1 (a INT, b VARCHAR, c FLOAT)`)
	db.MustExecute(`CREATE PROJECTION t1_super ON t1 (a, b, c) ORDER BY a SEGMENTED BY HASH(a)`)
	db.MustExecute(`INSERT INTO t1 VALUES (1, 'one', 1.5), (2, 'two', 2.5), (3, NULL, 3.5)`)
	res := db.MustExecute(`SELECT a, b, c FROM t1 ORDER BY a`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].S != "one" || !res.Rows[2][1].Null {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Schema.Col(2).Typ != types.Float64 {
		t.Error("schema type wrong")
	}
}

func TestSelectWherePredicate(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	res := db.MustExecute(`SELECT sale_id FROM sales WHERE price > 49.0 AND qty = 0 ORDER BY sale_id`)
	// price > 49.0 means sale_id >= 49; qty = 0 means sale_id % 3 == 0.
	want := 0
	for i := 49; i < 100; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestAggregateQuery(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 1000)
	res := db.MustExecute(`SELECT cust, COUNT(*) AS n, SUM(price) AS total, AVG(price) AS ap
		FROM sales GROUP BY cust ORDER BY cust`)
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	r0 := res.Rows[0] // cust 0: sale_ids 0,10,...,990
	if r0[1].I != 100 {
		t.Errorf("count = %v", r0[1])
	}
	wantSum := 0.0
	for i := 0; i < 1000; i += 10 {
		wantSum += float64(i) + 0.5
	}
	if r0[2].F != wantSum {
		t.Errorf("sum = %v, want %v", r0[2], wantSum)
	}
	if r0[3].F != wantSum/100 {
		t.Errorf("avg = %v", r0[3])
	}
}

func TestHavingAndExpressionSelect(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	res := db.MustExecute(`SELECT cust, COUNT(*) * 2 AS double_n FROM sales
		GROUP BY cust HAVING COUNT(*) > 5 ORDER BY cust`)
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][1].I != 20 {
		t.Errorf("computed select = %v", res.Rows[0][1])
	}
}

func TestGlobalAggregateOnEmptyTable(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE e (x INT)`)
	db.MustExecute(`CREATE PROJECTION e_super ON e (x) ORDER BY x SEGMENTED BY HASH(x)`)
	res := db.MustExecute(`SELECT COUNT(*), SUM(x) FROM e`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 0 || !res.Rows[0][1].Null {
		t.Errorf("empty agg = %v", res.Rows[0])
	}
}

func TestJoinWithReplicatedDimension(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	db.MustExecute(`CREATE TABLE customers (cust_id INT, name VARCHAR, region VARCHAR)`)
	db.MustExecute(`CREATE PROJECTION customers_super ON customers (cust_id, name, region)
		ORDER BY cust_id REPLICATED`)
	var ins []string
	for i := 0; i < 8; i++ { // custs 8,9 have no dimension row
		ins = append(ins, fmt.Sprintf("(%d, 'cust%d', 'r%d')", i, i, i%2))
	}
	db.MustExecute(`INSERT INTO customers VALUES ` + strings.Join(ins, ", "))
	res := db.MustExecute(`SELECT region, COUNT(*) AS n FROM sales
		JOIN customers ON sales.cust = customers.cust_id
		GROUP BY region ORDER BY region`)
	if len(res.Rows) != 2 {
		t.Fatalf("regions = %d: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][1].I != 40 || res.Rows[1][1].I != 40 {
		t.Errorf("join counts = %v", res.Rows)
	}
	// Left join keeps unmatched custs.
	res = db.MustExecute(`SELECT COUNT(*) FROM sales LEFT JOIN customers ON sales.cust = customers.cust_id`)
	if res.Rows[0][0].I != 100 {
		t.Errorf("left join count = %v", res.Rows[0][0])
	}
}

func TestDeleteAndTimeTravel(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 50)
	before := db.Txns().Epochs.ReadEpoch()
	res := db.MustExecute(`DELETE FROM sales WHERE sale_id < 10`)
	if res.RowsAffected != 10 {
		t.Fatalf("deleted = %d", res.RowsAffected)
	}
	now := db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if now.Rows[0][0].I != 40 {
		t.Errorf("post-delete count = %v", now.Rows[0][0])
	}
	// Historical query sees the deleted rows (epoch snapshot).
	hist, err := db.QueryAt(`SELECT COUNT(*) FROM sales`, before)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Rows[0][0].I != 50 {
		t.Errorf("historical count = %v, want 50", hist.Rows[0][0])
	}
}

func TestUpdateIsDeletePlusInsert(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 20)
	res := db.MustExecute(`UPDATE sales SET price = 999.0 WHERE sale_id = 5`)
	if res.RowsAffected != 1 {
		t.Fatalf("updated = %d", res.RowsAffected)
	}
	got := db.MustExecute(`SELECT price FROM sales WHERE sale_id = 5`)
	if len(got.Rows) != 1 || got.Rows[0][0].F != 999.0 {
		t.Errorf("updated row = %v", got.Rows)
	}
	cnt := db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if cnt.Rows[0][0].I != 20 {
		t.Errorf("count changed by update: %v", cnt.Rows[0][0])
	}
}

func TestTransactionVisibilityAndRollback(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE t (x INT)`)
	db.MustExecute(`CREATE PROJECTION t_super ON t (x) ORDER BY x SEGMENTED BY HASH(x)`)
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// Uncommitted data is invisible to other sessions.
	res := db.MustExecute(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("uncommitted insert visible: %v", res.Rows[0][0])
	}
	if _, err := s.Execute(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	res = db.MustExecute(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("rollback left data: %v", res.Rows[0][0])
	}
	// Committed transaction becomes visible.
	s2 := db.NewSession()
	defer s2.Close()
	s2.Execute(`BEGIN`)
	s2.Execute(`INSERT INTO t VALUES (2), (3)`)
	s2.Execute(`COMMIT`)
	res = db.MustExecute(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 2 {
		t.Errorf("committed rows = %v", res.Rows[0][0])
	}
}

func TestTupleMoverIntegration(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 200)
	// Load went to the WOS (below direct threshold); move it out.
	moved, _, err := db.RunTupleMover()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 200 {
		t.Errorf("moved = %d", moved)
	}
	res := db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 200 {
		t.Errorf("count after moveout = %v", res.Rows[0][0])
	}
	// Load more and merge out.
	var rows []types.Row
	for i := 200; i < 400; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 10)),
			types.NewFloat(float64(i)), types.NewInt(0),
		})
	}
	db.Load("sales", rows, false)
	if _, _, err := db.RunTupleMover(); err != nil {
		t.Fatal(err)
	}
	res = db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 400 {
		t.Errorf("count after merge = %v", res.Rows[0][0])
	}
}

// TestPinnedEpochStableAcrossMoveout pins a historical epoch and asserts
// its full result set never changes while the tuple mover migrates the
// rows it covers from WOS to ROS, merges containers, and later DML stamps
// delete vectors — the paper's invariant that the tuple mover is invisible
// to every epoch ("queries take no locks" + epoch snapshots). The AHM is
// held, as a real deployment must when readers pin ancient epochs.
func TestPinnedEpochStableAcrossMoveout(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 120) // below the direct-load threshold: lands in the WOS
	db.Txns().Epochs.HoldAHM(true)

	pin := db.Txns().Epochs.ReadEpoch()
	const pinQ = `SELECT sale_id, cust, price FROM sales ORDER BY sale_id`
	snapshot := func() string {
		res, err := db.QueryAt(pinQ, pin)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, row := range res.Rows {
			for _, v := range row {
				b.WriteString(v.String())
				b.WriteByte('|')
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	want := snapshot()
	if want == "" {
		t.Fatal("pinned snapshot is empty")
	}

	// Churn: new inserts, deletes of rows the pin can see, then tuple-mover
	// cycles (moveout of the pinned rows, mergeout of the containers).
	db.MustExecute(`INSERT INTO sales VALUES (500, 1, 1.5, 1), (501, 2, 2.5, 1)`)
	db.MustExecute(`DELETE FROM sales WHERE sale_id < 30`)
	for i := 0; i < 3; i++ {
		if _, _, err := db.RunTupleMover(); err != nil {
			t.Fatal(err)
		}
		if got := snapshot(); got != want {
			t.Fatalf("pinned epoch %d drifted after mover cycle %d:\ngot:\n%s\nwant:\n%s", pin, i+1, got, want)
		}
		db.MustExecute(fmt.Sprintf(`INSERT INTO sales VALUES (%d, 3, 3.5, 1)`, 600+i))
	}
	// The live view meanwhile reflects all the churn.
	live := db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if got := live.Rows[0][0].I; got != 120+2-30+3 {
		t.Errorf("live count = %d, want %d", got, 120+2-30+3)
	}
}

func TestDirectLoadBypassesWOS(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE big (x INT)`)
	db.MustExecute(`CREATE PROJECTION big_super ON big (x) ORDER BY x SEGMENTED BY HASH(x)`)
	rows := make([]types.Row, 500)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))}
	}
	if err := db.Load("big", rows, true); err != nil {
		t.Fatal(err)
	}
	// Direct load: data is in ROS containers, WOS empty.
	p, _ := db.Catalog().Projection("big_super")
	mgr, _ := db.Cluster().Node(0).Mgr(p, db.Cluster().ManagerOpts())
	if mgr.WOS().Len() != 0 {
		t.Error("direct load left rows in WOS")
	}
	if mgr.RowCount() != 500 {
		t.Errorf("ROS rows = %d", mgr.RowCount())
	}
	res := db.MustExecute(`SELECT COUNT(*) FROM big`)
	if res.Rows[0][0].I != 500 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestDropPartition(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE events (id INT, month INT, v FLOAT) PARTITION BY month`)
	db.MustExecute(`CREATE PROJECTION events_super ON events (id, month, v)
		ORDER BY id SEGMENTED BY HASH(id)`)
	var rows []types.Row
	for i := 0; i < 300; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 3)), types.NewFloat(1),
		})
	}
	db.Load("events", rows, true)
	res := db.MustExecute(`DROP PARTITION events '1'`)
	if res.RowsAffected != 100 {
		t.Fatalf("dropped = %d", res.RowsAffected)
	}
	cnt := db.MustExecute(`SELECT COUNT(*) FROM events`)
	if cnt.Rows[0][0].I != 200 {
		t.Errorf("count = %v", cnt.Rows[0][0])
	}
	m := db.MustExecute(`SELECT COUNT(*) FROM events WHERE month = 1`)
	if m.Rows[0][0].I != 0 {
		t.Errorf("partition rows remain: %v", m.Rows[0][0])
	}
}

func TestExplain(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	res := db.MustExecute(`EXPLAIN SELECT cust, COUNT(*) FROM sales WHERE price > 10 GROUP BY cust`)
	if !strings.Contains(res.Explain, "Scan") || !strings.Contains(res.Explain, "GroupBy") {
		t.Errorf("explain = %s", res.Explain)
	}
}

// --- multi-node ---------------------------------------------------------------

func TestMultiNodeQueryAndAggregate(t *testing.T) {
	db := openTestDB(t, 3, 1)
	setupSales(t, db, 999)
	res := db.MustExecute(`SELECT COUNT(*), SUM(price), AVG(qty) FROM sales`)
	if res.Rows[0][0].I != 999 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	var wantSum float64
	for i := 0; i < 999; i++ {
		wantSum += float64(i) + 0.5
	}
	if diff := res.Rows[0][1].F - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sum = %v, want %v", res.Rows[0][1], wantSum)
	}
	g := db.MustExecute(`SELECT cust, COUNT(*) AS n FROM sales GROUP BY cust ORDER BY cust`)
	if len(g.Rows) != 10 {
		t.Fatalf("groups = %d", len(g.Rows))
	}
	total := int64(0)
	for _, r := range g.Rows {
		total += r[1].I
	}
	if total != 999 {
		t.Errorf("group total = %d", total)
	}
}

func TestMultiNodeDataIsSegmented(t *testing.T) {
	db := openTestDB(t, 3, 1)
	setupSales(t, db, 600)
	p, _ := db.Catalog().Projection("sales_super")
	counts := make([]int, 3)
	for i, n := range db.Cluster().Nodes() {
		mgr, _ := n.Mgr(p, db.Cluster().ManagerOpts())
		counts[i] = mgr.WOS().Len() + int(mgr.RowCount())
	}
	sum := counts[0] + counts[1] + counts[2]
	if sum != 600 {
		t.Fatalf("segmented rows total %d, want 600 (counts %v)", sum, counts)
	}
	for i, c := range counts {
		if c == 0 || c == 600 {
			t.Errorf("node %d holds %d rows: not segmented", i, c)
		}
	}
	// Buddy projection stores a full second copy offset by one node.
	buddy, err := db.Catalog().Projection("sales_super_b1")
	if err != nil {
		t.Fatal(err)
	}
	bsum := 0
	for _, n := range db.Cluster().Nodes() {
		mgr, _ := n.Mgr(buddy, db.Cluster().ManagerOpts())
		bsum += mgr.WOS().Len() + int(mgr.RowCount())
	}
	if bsum != 600 {
		t.Errorf("buddy rows = %d, want 600", bsum)
	}
}

func TestNodeFailureQueriesViaBuddy(t *testing.T) {
	db := openTestDB(t, 3, 1)
	setupSales(t, db, 300)
	// Move WOS to ROS so the failed node's data is durable on its buddy.
	if _, _, err := db.RunTupleMover(); err != nil {
		t.Fatal(err)
	}
	base := db.MustExecute(`SELECT COUNT(*), SUM(price) FROM sales`)
	if err := db.Cluster().FailNode(1); err != nil {
		t.Fatal(err)
	}
	db.Cluster().Node(1).ClearWOS()
	got := db.MustExecute(`SELECT COUNT(*), SUM(price) FROM sales`)
	if got.Rows[0][0].I != base.Rows[0][0].I {
		t.Errorf("count with node down = %v, want %v", got.Rows[0][0], base.Rows[0][0])
	}
	if got.Rows[0][1].F != base.Rows[0][1].F {
		t.Errorf("sum with node down = %v, want %v", got.Rows[0][1], base.Rows[0][1])
	}
}

func TestNodeFailureRecoveryReplaysMissedDML(t *testing.T) {
	db := openTestDB(t, 3, 1)
	setupSales(t, db, 300)
	db.RunTupleMover()
	if err := db.Cluster().FailNode(2); err != nil {
		t.Fatal(err)
	}
	db.Cluster().Node(2).ClearWOS()
	// DML while the node is down.
	var rows []types.Row
	for i := 300; i < 400; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 10)),
			types.NewFloat(float64(i)), types.NewInt(0),
		})
	}
	if err := db.Load("sales", rows, false); err != nil {
		t.Fatal(err)
	}
	db.MustExecute(`DELETE FROM sales WHERE sale_id < 50`)
	// Recover; the node replays the missed epochs from its buddies.
	if err := db.Cluster().RecoverNode(2); err != nil {
		t.Fatal(err)
	}
	res := db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 350 {
		t.Errorf("count after recovery = %v, want 350", res.Rows[0][0])
	}
	// Fail a different node: the recovered node must now serve as a buddy
	// source, proving its copy is complete.
	if err := db.Cluster().FailNode(0); err != nil {
		t.Fatal(err)
	}
	db.Cluster().Node(0).ClearWOS()
	res = db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 350 {
		t.Errorf("count with recovered topology = %v, want 350", res.Rows[0][0])
	}
}

func TestQuorumLossShutsDown(t *testing.T) {
	db := openTestDB(t, 3, 1)
	setupSales(t, db, 30)
	db.RunTupleMover()
	if err := db.Cluster().FailNode(0); err != nil {
		t.Fatal(err)
	}
	// Second failure loses quorum (2 of 3 needed).
	err := db.Cluster().FailNode(1)
	if err == nil {
		t.Fatal("expected shutdown error on quorum loss")
	}
	if !db.Cluster().IsShutdown() {
		t.Error("cluster should be shut down")
	}
	if _, err := db.Execute(`SELECT COUNT(*) FROM sales`); err == nil {
		t.Error("queries should fail after shutdown")
	}
}

func TestAHMHeldWhileNodeDown(t *testing.T) {
	db := openTestDB(t, 3, 1)
	setupSales(t, db, 30)
	db.RunTupleMover()
	ahmBefore := db.Txns().Epochs.AHM()
	db.Cluster().FailNode(1)
	db.MustExecute(`DELETE FROM sales WHERE sale_id = 1`)
	db.RunTupleMover() // would normally advance the AHM
	if got := db.Txns().Epochs.AHM(); got != ahmBefore {
		t.Errorf("AHM advanced to %d while a node was down", got)
	}
	if err := db.Cluster().RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	db.RunTupleMover()
	if got := db.Txns().Epochs.AHM(); got <= ahmBefore {
		t.Errorf("AHM did not advance after recovery: %d", got)
	}
}

func TestRefreshPopulatesNewProjection(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	db.RunTupleMover()
	db.MustExecute(`CREATE PROJECTION sales_by_cust ON sales (cust, price)
		ORDER BY cust SEGMENTED BY HASH(cust)`)
	if err := db.Cluster().Refresh("sales_by_cust"); err != nil {
		t.Fatal(err)
	}
	p, _ := db.Catalog().Projection("sales_by_cust")
	mgr, _ := db.Cluster().Node(0).Mgr(p, db.Cluster().ManagerOpts())
	if mgr.RowCount() != 100 {
		t.Errorf("refreshed rows = %d", mgr.RowCount())
	}
	// The narrow projection should now serve cust-grouped queries.
	res := db.MustExecute(`EXPLAIN SELECT cust, SUM(price) FROM sales GROUP BY cust`)
	if !strings.Contains(res.Explain, "sales_by_cust") {
		t.Errorf("optimizer did not pick the narrow projection:\n%s", res.Explain)
	}
}

func TestAddNodeAndRebalance(t *testing.T) {
	db := openTestDB(t, 2, 0)
	setupSales(t, db, 400)
	db.RunTupleMover()
	before := db.MustExecute(`SELECT COUNT(*), SUM(price) FROM sales`)
	db.Cluster().AddNode()
	if err := db.Cluster().Rebalance(); err != nil {
		t.Fatal(err)
	}
	after := db.MustExecute(`SELECT COUNT(*), SUM(price) FROM sales`)
	if after.Rows[0][0].I != before.Rows[0][0].I || after.Rows[0][1].F != before.Rows[0][1].F {
		t.Errorf("rebalance changed results: %v -> %v", before.Rows[0], after.Rows[0])
	}
	// The new node now owns a share.
	p, _ := db.Catalog().Projection("sales_super")
	mgr, _ := db.Cluster().Node(2).Mgr(p, db.Cluster().ManagerOpts())
	if mgr.RowCount() == 0 {
		t.Error("new node received no data")
	}
}

func TestBackupSurvivesDataRemoval(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 50)
	db.RunTupleMover()
	backup := t.TempDir()
	if err := db.Cluster().Backup(backup); err != nil {
		t.Fatal(err)
	}
	db.MustExecute(`DELETE FROM sales`)
	// Backup directory still holds container files (hard links).
	res := db.MustExecute(`SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("delete failed: %v", res.Rows[0][0])
	}
}

func TestInsertLockConflictsWithDelete(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 10)
	s1 := db.NewSession()
	defer s1.Close()
	s1.Execute(`BEGIN`)
	if _, err := s1.Execute(`INSERT INTO sales VALUES (100, 1, 1.0, 1)`); err != nil {
		t.Fatal(err)
	}
	// A concurrent DELETE needs X, which conflicts with the held I lock and
	// must time out.
	_, err := db.Execute(`DELETE FROM sales WHERE sale_id = 1`)
	if err == nil {
		t.Error("DELETE should conflict with concurrent INSERT's I lock")
	}
	s1.Execute(`COMMIT`)
	if _, err := db.Execute(`DELETE FROM sales WHERE sale_id = 1`); err != nil {
		t.Errorf("DELETE after commit: %v", err)
	}
}

func TestDistinct(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	res := db.MustExecute(`SELECT DISTINCT cust FROM sales ORDER BY cust`)
	if len(res.Rows) != 10 {
		t.Fatalf("distinct rows = %d", len(res.Rows))
	}
	cd := db.MustExecute(`SELECT COUNT(DISTINCT cust) FROM sales`)
	if cd.Rows[0][0].I != 10 {
		t.Errorf("count distinct = %v", cd.Rows[0][0])
	}
}

func TestReopenPersistsCatalogAndData(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExecute(`CREATE TABLE t (a INT, b VARCHAR)`)
	db.MustExecute(`CREATE PROJECTION t_super ON t (a, b) ORDER BY a SEGMENTED BY HASH(a)`)
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewString("x")}
	}
	db.Load("t", rows, true) // direct: durable in ROS
	db2, err := Open(Options{Dir: dir, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := db2.MustExecute(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 100 {
		t.Errorf("reopened count = %v", res.Rows[0][0])
	}
}

func TestInsertRequiresSuperProjection(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE t (a INT)`)
	if _, err := db.Execute(`INSERT INTO t VALUES (1)`); err == nil {
		t.Error("insert without projection should fail")
	}
}

func TestCaseExpression(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 10)
	res := db.MustExecute(`SELECT sale_id, CASE WHEN sale_id < 5 THEN 'low' ELSE 'high' END AS bucket
		FROM sales ORDER BY sale_id`)
	if res.Rows[0][1].S != "low" || res.Rows[9][1].S != "high" {
		t.Errorf("case = %v", res.Rows)
	}
}
