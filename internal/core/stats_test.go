package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/resmgr"
)

// setupTwoProjections creates a table whose two projections lead with
// different columns, plus data where a region predicate is far more
// selective than an id range.
func setupTwoProjections(t testing.TB, db *Database) {
	t.Helper()
	db.MustExecute(`CREATE TABLE sales (id INT, region INT, price FLOAT)`)
	db.MustExecute(`CREATE PROJECTION sales_by_id ON sales (id, region, price) ORDER BY id`)
	db.MustExecute(`CREATE PROJECTION sales_by_region ON sales (id, region, price) ORDER BY region`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO sales VALUES `)
	for i := 1; i <= 40; i++ {
		if i > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d.5)", i, i%5, i)
	}
	db.MustExecute(sb.String())
}

const flipQuery = `EXPLAIN SELECT price FROM sales WHERE id > 4 AND region = 3`

// TestAnalyzeFlipsProjectionChoice is the acceptance scenario: after
// ANALYZE_STATISTICS the planner prefers the projection led by the more
// selective predicate column.
func TestAnalyzeFlipsProjectionChoice(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 8)
	setupTwoProjections(t, db)
	before := db.MustExecute(flipQuery).Explain
	if !strings.Contains(before, "Scan sales_by_id") || !strings.Contains(before, "heuristic") {
		t.Fatalf("unanalyzed plan should use the shape heuristics on sales_by_id:\n%s", before)
	}
	res := db.MustExecute(`ANALYZE_STATISTICS('sales')`)
	if res.RowsAffected != 40 {
		t.Fatalf("analyze scanned %d rows, want 40", res.RowsAffected)
	}
	after := db.MustExecute(flipQuery).Explain
	if !strings.Contains(after, "Scan sales_by_region") || !strings.Contains(after, "histogram") {
		t.Fatalf("analyzed plan should pick sales_by_region via histograms:\n%s", after)
	}
}

// TestStatsSurviveReload closes the acceptance loop: statistics persist in
// the catalog and a reopened database plans with them immediately.
func TestStatsSurviveReload(t *testing.T) {
	dir, tmp := t.TempDir(), t.TempDir()
	opts := Options{Dir: dir, TempDir: tmp, MemPoolBytes: 64 << 20}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	setupTwoProjections(t, db)
	db.MustExecute(`ANALYZE_STATISTICS('sales')`)
	// Move WOS rows into ROS containers so the data (not just the catalog)
	// survives the reopen.
	if _, _, err := db.RunTupleMover(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Catalog().TableStats("sales") == nil {
		t.Fatal("column statistics lost across reload")
	}
	if cs := db2.Catalog().ColumnStats("sales", "region"); cs == nil || cs.NDV != 5 || cs.Hist == nil {
		t.Fatalf("region stats corrupted across reload: %+v", cs)
	}
	ex := db2.MustExecute(flipQuery).Explain
	if !strings.Contains(ex, "Scan sales_by_region") || !strings.Contains(ex, "histogram") {
		t.Fatalf("reloaded database should plan from persisted statistics:\n%s", ex)
	}
	// Plan-derived grant sizing works off the persisted stats too.
	db2.MustExecute(`SELECT price FROM sales WHERE region = 3`)
	profs := db2.Governor().Profiles()
	last := profs[len(profs)-1]
	if last.GrantBytes != resmgr.MinGrantBytes {
		t.Fatalf("selective stats-backed query got grant %d, want the %d floor",
			last.GrantBytes, int64(resmgr.MinGrantBytes))
	}
}

// TestAnalyzeSingleColumnMerges re-analyzes one column without disturbing
// the others.
func TestAnalyzeSingleColumnMerges(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 8)
	setupTwoProjections(t, db)
	db.MustExecute(`ANALYZE_STATISTICS('sales')`)
	db.MustExecute(`ANALYZE_STATISTICS('sales.price', 4)`)
	price := db.Catalog().ColumnStats("sales", "price")
	if price == nil || len(price.Hist.Buckets) != 4 {
		t.Fatalf("price should have a 4-bucket histogram: %+v", price)
	}
	if id := db.Catalog().ColumnStats("sales", "id"); id == nil || len(id.Hist.Buckets) == 4 {
		t.Fatalf("id stats should be untouched: %+v", id)
	}
}

// TestAnalyzeMultiNode collects statistics across a segmented cluster: the
// scan concatenates every node's rows.
func TestAnalyzeMultiNode(t *testing.T) {
	db := openGovernedDB(t, 3, 64<<20, 8)
	setupSales(t, db, 900)
	res := db.MustExecute(`ANALYZE_STATISTICS('sales')`)
	if res.RowsAffected != 900 {
		t.Fatalf("analyze scanned %d rows, want 900", res.RowsAffected)
	}
	cs := db.Catalog().ColumnStats("sales", "cust")
	if cs == nil || cs.RowCount != 900 || cs.NDV < 9 || cs.NDV > 11 {
		t.Fatalf("cluster-wide stats wrong: %+v", cs)
	}
}

// TestPoolDefsSurviveReload: CREATE/ALTER RESOURCE POOL definitions persist
// in the catalog and re-register with the governor on open; DROP removes
// the definition.
func TestPoolDefsSurviveReload(t *testing.T) {
	dir, tmp := t.TempDir(), t.TempDir()
	opts := Options{Dir: dir, TempDir: tmp, MemPoolBytes: 64 << 20}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExecute(`CREATE RESOURCE POOL etl MEMORYSIZE '8M' MAXCONCURRENCY 2 PRIORITY -3 RUNTIMECAP 45000`)
	db.MustExecute(`CREATE RESOURCE POOL scratch`)
	db.MustExecute(`ALTER RESOURCE POOL etl PLANNEDCONCURRENCY 2 QUEUETIMEOUT 1500`)
	db.MustExecute(`ALTER RESOURCE POOL general PRIORITY 1`)
	db.MustExecute(`DROP RESOURCE POOL scratch`)

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := db2.Governor().PoolStatus("etl")
	if !ok {
		t.Fatal("etl pool not restored on open")
	}
	if st.MemBytes != 8<<20 || st.MaxConcurrency != 2 || st.Priority != -3 ||
		st.RuntimeCap.Milliseconds() != 45000 || st.PlannedConcurrency != 2 ||
		st.QueueTimeout.Milliseconds() != 1500 {
		t.Fatalf("etl pool restored with wrong knobs: %+v", st.PoolConfig)
	}
	if gen, _ := db2.Governor().PoolStatus(resmgr.GeneralPool); gen.Priority != 1 {
		t.Fatalf("general pool ALTER not restored: %+v", gen.PoolConfig)
	}
	if db2.Governor().HasPool("scratch") {
		t.Fatal("dropped pool resurrected on open")
	}
}

// TestRuntimeCapCancelsRunaway: a statement in a RUNTIMECAP pool is
// cancelled at a batch boundary and releases its slot and memory.
func TestRuntimeCapCancelsRunaway(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 4)
	setupSales(t, db, 60000)
	db.MustExecute(`CREATE RESOURCE POOL capped RUNTIMECAP 1`)
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(`SET RESOURCE POOL capped`); err != nil {
		t.Fatal(err)
	}
	_, err := s.Execute(`SELECT cust, COUNT(*) AS n, SUM(price) AS s FROM sales GROUP BY cust ORDER BY s`)
	if err == nil {
		t.Skip("query finished inside a 1ms runtime cap; machine too fast for this test")
	}
	if !strings.Contains(err.Error(), "runtime cap") {
		t.Fatalf("expected a runtime-cap error, got: %v", err)
	}
	st := db.Governor().Stats()
	if st.Running != 0 || st.InUseBytes != 0 {
		t.Fatalf("cancelled statement did not release its grant: %+v", st)
	}
	// The pool is usable again afterwards.
	db.MustExecute(`ALTER RESOURCE POOL capped RUNTIMECAP NONE`)
	if _, err := s.Execute(`SELECT COUNT(*) AS n FROM sales`); err != nil {
		t.Fatalf("pool unusable after runtime-cap cancellation: %v", err)
	}
}

// TestPartialAnalyzeFallsBackToHeuristics: a predicate on a column without
// statistics must not masquerade as histogram-backed (and must not size
// memory grants).
func TestPartialAnalyzeFallsBackToHeuristics(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 8)
	setupTwoProjections(t, db)
	db.MustExecute(`ANALYZE_STATISTICS('sales.id')`)
	ex := db.MustExecute(`EXPLAIN SELECT price FROM sales WHERE region = 3`).Explain
	if !strings.Contains(ex, "heuristic") || strings.Contains(ex, "(histogram)") {
		t.Fatalf("partially analyzed table must report heuristic estimates:\n%s", ex)
	}
	db.MustExecute(`SELECT price FROM sales WHERE region = 3`)
	profs := db.Governor().Profiles()
	if g := profs[len(profs)-1].GrantBytes; g != 64<<20/8 {
		t.Fatalf("blended estimate sized the grant (%d); want the static split %d", g, 64<<20/8)
	}
}

// TestPlanFailureLeavesProfile: statements that fail before admission
// (planning/placement errors) still land in v_monitor.query_profiles.
func TestPlanFailureLeavesProfile(t *testing.T) {
	db := openGovernedDB(t, 3, 64<<20, 8)
	db.MustExecute(`CREATE TABLE f (fk INT, v INT)`)
	db.MustExecute(`CREATE PROJECTION f_super ON f (fk, v) ORDER BY fk SEGMENTED BY HASH(fk)`)
	db.MustExecute(`CREATE TABLE d (dk INT, w INT)`)
	db.MustExecute(`CREATE PROJECTION d_super ON d (dk, w) ORDER BY dk SEGMENTED BY HASH(w)`)
	stmt := `SELECT v, w FROM f JOIN d ON fk = dk`
	if _, err := db.Execute(stmt); err == nil {
		t.Fatal("expected a placement error for non-co-located projections")
	}
	res := db.MustExecute(`SELECT statement, status FROM v_monitor.query_profiles WHERE status = 'error'`)
	found := false
	for _, r := range res.Rows {
		if r[0].S == stmt {
			found = true
		}
	}
	if !found {
		t.Fatalf("placement failure missing from query_profiles: %v", res.Rows)
	}
}
