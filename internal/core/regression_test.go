package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/types"
)

func newPrejoinProjection() *catalog.Projection {
	return &catalog.Projection{
		Name:      "fact_prejoin",
		Anchor:    "fact",
		Columns:   []string{"id", "cust", "price", "dim.region"},
		SortOrder: []string{"id"},
		Seg:       catalog.Segmentation{ExprText: "HASH(id)"},
		Prejoin: []catalog.PrejoinDim{{
			DimTable: "dim", FactKey: "cust", DimKey: "cust_id",
			DimCols: []string{"region"},
		}},
	}
}

// Regression: a pushed-down predicate matching zero rows of a block must
// drop the whole block, not pass it through. (SelectWhere used to return a
// nil selection for zero matches, which the scan read as "no predicate".)
func TestZeroMatchBlocksAreDropped(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE m (metric VARCHAR, v FLOAT)`)
	db.MustExecute(`CREATE PROJECTION m_super ON m (metric, v) ORDER BY metric SEGMENTED BY HASH(metric)`)
	var rows []types.Row
	for i := 0; i < 9000; i++ {
		rows = append(rows, types.Row{
			types.NewString([]string{"a", "b", "c", "d", "e", "f"}[i%6]),
			types.NewFloat(float64(i)),
		})
	}
	if err := db.Load("m", rows, true); err != nil {
		t.Fatal(err)
	}
	res := db.MustExecute(`SELECT metric, COUNT(*) FROM m WHERE metric IN ('a','b') GROUP BY metric ORDER BY metric`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2 (got %v)", len(res.Rows), res.Rows)
	}
	if res.Rows[0][1].I != 1500 || res.Rows[1][1].I != 1500 {
		t.Errorf("counts = %v", res.Rows)
	}
	// Same regression via an equality predicate whose value entire blocks
	// cannot contain.
	res = db.MustExecute(`SELECT COUNT(*) FROM m WHERE metric = 'f'`)
	if res.Rows[0][0].I != 1500 {
		t.Errorf("eq count = %v", res.Rows[0][0])
	}
}

// TestPrejoinProjectionServesJoin exercises the prejoin path end-to-end
// (paper §3.3): create a prejoin projection, populate it via refresh, and
// check the optimizer answers a fact-dimension join from the single scan.
func TestPrejoinProjectionServesJoin(t *testing.T) {
	db := openTestDB(t, 1, 0)
	db.MustExecute(`CREATE TABLE fact (id INT, cust INT, price FLOAT)`)
	db.MustExecute(`CREATE TABLE dim (cust_id INT, region VARCHAR)`)
	db.MustExecute(`CREATE PROJECTION fact_super ON fact (id, cust, price)
		ORDER BY id SEGMENTED BY HASH(id)`)
	db.MustExecute(`CREATE PROJECTION dim_super ON dim (cust_id, region)
		ORDER BY cust_id REPLICATED`)
	var frows []types.Row
	for i := 0; i < 400; i++ {
		frows = append(frows, types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 4)), types.NewFloat(float64(i)),
		})
	}
	if err := db.Load("fact", frows, true); err != nil {
		t.Fatal(err)
	}
	var drows []types.Row
	for i := 0; i < 4; i++ {
		drows = append(drows, types.Row{
			types.NewInt(int64(i)), types.NewString([]string{"east", "west"}[i%2]),
		})
	}
	if err := db.Load("dim", drows, true); err != nil {
		t.Fatal(err)
	}
	// Prejoin projections are created programmatically (SQL DDL for them is
	// out of the subset) and populated by refresh.
	pj := newPrejoinProjection()
	if err := db.CreateProjection(pj); err != nil {
		t.Fatal(err)
	}
	if err := db.Cluster().Refresh("fact_prejoin"); err != nil {
		t.Fatal(err)
	}
	res := db.MustExecute(`EXPLAIN SELECT region, SUM(price) FROM fact
		JOIN dim ON cust = cust_id GROUP BY region`)
	if !containsStr(res.Explain, "prejoin projection fact_prejoin") {
		t.Errorf("join not answered from the prejoin projection:\n%s", res.Explain)
	}
	got := db.MustExecute(`SELECT region, SUM(price) FROM fact
		JOIN dim ON cust = cust_id GROUP BY region ORDER BY region`)
	if len(got.Rows) != 2 {
		t.Fatalf("rows = %v", got.Rows)
	}
	// east = custs 0,2; west = custs 1,3. Sum over i: i%4 in {0,2} etc.
	var east, west float64
	for i := 0; i < 400; i++ {
		if (i%4)%2 == 0 {
			east += float64(i)
		} else {
			west += float64(i)
		}
	}
	if got.Rows[0][1].F != east || got.Rows[1][1].F != west {
		t.Errorf("sums = %v, want %v/%v", got.Rows, east, west)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestColocatedCountDistinctMultiNode: COUNT(DISTINCT) works across nodes
// when the grouping contains the segmentation columns (paper §3.6:
// segmentation is "particularly effective for the computation of
// high-cardinality distinct aggregates"), and is rejected otherwise.
func TestColocatedCountDistinctMultiNode(t *testing.T) {
	db := openTestDB(t, 3, 1)
	db.MustExecute(`CREATE TABLE t (grp INT, val INT)`)
	db.MustExecute(`CREATE PROJECTION t_super ON t (grp, val)
		ORDER BY grp SEGMENTED BY HASH(grp)`)
	var rows []types.Row
	for i := 0; i < 3000; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i % 10)), types.NewInt(int64(i % 250)),
		})
	}
	if err := db.Load("t", rows, true); err != nil {
		t.Fatal(err)
	}
	res := db.MustExecute(`SELECT grp, COUNT(DISTINCT val) FROM t GROUP BY grp ORDER BY grp`)
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// val = i%250, grp = i%10: within a group, distinct vals = 25.
	for _, r := range res.Rows {
		if r[1].I != 25 {
			t.Errorf("group %v distinct = %v, want 25", r[0], r[1])
		}
	}
	// Non-co-located distinct is rejected, not answered wrongly.
	if _, err := db.Execute(`SELECT val % 2, COUNT(DISTINCT grp) FROM t GROUP BY val % 2`); err == nil {
		t.Error("non-co-located COUNT DISTINCT should be rejected on a multi-node cluster")
	}
}
