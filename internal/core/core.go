// Package core is the public face of the engine: a Database handle that
// parses and executes SQL, coordinates transactions and the tuple mover, and
// exposes bulk load, backup, recovery and physical-design entry points. It
// corresponds to the overall system of the paper — a shared-nothing columnar
// RDBMS with projections as the only physical data structure.
//
// Typical use:
//
//	db, _ := core.Open(core.Options{Dir: dir, Nodes: 3, K: 1})
//	db.Execute(`CREATE TABLE sales (sale_id INT, date TIMESTAMP, cust INT, price FLOAT)`)
//	db.Execute(`CREATE PROJECTION sales_super ON sales (sale_id, date, cust, price)
//	            ORDER BY date SEGMENTED BY HASH(sale_id)`)
//	db.Load("sales", rows, true)
//	res, _ := db.Execute(`SELECT cust, SUM(price) FROM sales GROUP BY cust`)
package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/resmgr"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/tuplemover"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vlog"
)

// Options configures a database instance.
type Options struct {
	// Dir is the root storage directory (one subdirectory per node).
	Dir string
	// Nodes is the simulated cluster size (default 1).
	Nodes int
	// K is the K-safety level: segmented projections automatically get K
	// buddy projections (default 0 for single node, 1 otherwise).
	K int
	// Parallelism enables intra-node parallel plans (Figure 3) when > 1.
	Parallelism int
	// ForceParallel drops the planner's cardinality gate so parallel shapes
	// plan even for tiny inputs — a testing knob for the parallel-vs-serial
	// differential oracle, not a production setting.
	ForceParallel bool
	// DirectLoadRowThreshold: Load calls with at least this many rows go
	// straight to the ROS (paper §7, "Direct Loading to the ROS").
	DirectLoadRowThreshold int
	// WOSMaxBytes bounds each projection's WOS per node.
	WOSMaxBytes int64
	// LocalSegments per node (default 3).
	LocalSegments int

	// Resource governor knobs (see internal/resmgr). Zero values take the
	// resmgr defaults: 1 GiB pool, 8 concurrent queries, 30s queue timeout.
	//
	// MemPoolBytes is the global query-memory pool shared by all statements.
	MemPoolBytes int64
	// MaxConcurrency bounds simultaneously executing queries; excess
	// statements wait in the admission queue.
	MaxConcurrency int
	// QueueTimeout bounds admission-queue wait (negative disables).
	QueueTimeout time.Duration
	// TempDir hosts operator spill files (default: system temp).
	TempDir string
	// DefaultPool is the resource pool new sessions admit against until SET
	// RESOURCE POOL changes it ("" = the built-in general pool).
	DefaultPool string
	// ProfileCapacity bounds the retained query-profile ring backing
	// v_monitor.query_profiles (0 = resmgr default, negative disables).
	ProfileCapacity int
	// OpProfileCapacity bounds the retained per-operator profile ring
	// backing v_monitor.execution_engine_profiles (0 = resmgr default,
	// negative disables).
	OpProfileCapacity int
	// SlowQueryThreshold is the wall time past which a finished statement's
	// per-operator profile is retained even without PROFILE (0 = resmgr
	// default of 1s, negative disables slow-query capture).
	SlowQueryThreshold time.Duration
	// Profile runs every SELECT with wall-clock operator timing, as if each
	// were prefixed with PROFILE — a benchmarking/testing knob; interactive
	// use profiles per statement with the PROFILE verb.
	Profile bool
	// StatsBuckets is the histogram bucket count ANALYZE_STATISTICS builds
	// when the statement does not name one (0 = stats.DefaultBuckets).
	StatsBuckets int
	// DCCapacity bounds each Data Collector ring (phases, events, mover,
	// locks, errors). 0 = dc.DefaultCapacity; negative disables the Data
	// Collector entirely (the v_monitor dc tables stay registered but
	// empty).
	DCCapacity int
	// PlanCacheSize bounds the plan cache (entries). 0 = the default of
	// 256; negative disables plan caching entirely (every SELECT replans —
	// the cold-path baseline benchmarks compare against).
	PlanCacheSize int
	// LogWriter receives the engine's structured log lines (slow queries,
	// server lifecycle). Nil means os.Stderr; io.Discard silences them.
	LogWriter io.Writer
}

// Database is one engine instance.
type Database struct {
	opts    Options
	cat     *catalog.Catalog
	cluster *cluster.Cluster
	txns    *txn.Manager
	dcol    *dc.Collector // Data Collector (nil when disabled)
	logger  *vlog.Logger

	moverMu sync.Mutex
	movers  map[string]*tuplemover.TupleMover // "node/projection"

	// Session registry backing v_monitor.sessions.
	sessMu   sync.Mutex
	sessSeq  int64
	sessions map[int64]*Session

	// plans caches analyzed queries and probe metadata keyed on normalized
	// fingerprints (nil when disabled). poolEpoch counts resource-pool
	// CREATE/ALTER/DROP statements; together with the catalog's generation
	// and stats epoch it makes every cached plan's validity checkable with
	// three integer compares.
	plans     *plancache.Cache
	poolEpoch atomic.Int64
}

// Result is the outcome of one statement.
type Result struct {
	Schema       *types.Schema
	Rows         []types.Row
	RowsAffected int64
	Explain      string
	Message      string
	// Stats carries the statement's resource accounting (SELECTs only).
	Stats resmgr.QueryStats
	// OpProfiles are the per-operator execution records of a PROFILE
	// statement (nil otherwise; Explain holds the rendered tree).
	OpProfiles []resmgr.OpProfile
}

// Open creates or reopens a database.
func Open(opts Options) (*Database, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	if opts.DirectLoadRowThreshold <= 0 {
		opts.DirectLoadRowThreshold = 10000
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: Options.Dir is required")
	}
	cat, err := catalog.Load(opts.Dir)
	if err != nil {
		return nil, err
	}
	if err := cat.RebindExprs(sql.BindScalarExpr); err != nil {
		return nil, err
	}
	logw := opts.LogWriter
	if logw == nil {
		logw = os.Stderr
	}
	// Warn-and-above keeps the log quiet in normal operation while slow
	// queries and failures still surface.
	logger := vlog.New(logw, vlog.Warn)
	// The Data Collector is on by default: collection is bounded (ring
	// buffers) and per-statement-granularity, so the always-on cost is a
	// handful of appends per query. DCCapacity < 0 disables it outright.
	var dcol *dc.Collector
	if opts.DCCapacity >= 0 {
		dcol = dc.New(opts.DCCapacity)
	}
	tm := txn.NewManager()
	tm.Locks.SetCollector(dcol)
	gov := resmgr.NewGovernor(resmgr.Config{
		PoolBytes:          opts.MemPoolBytes,
		MaxConcurrency:     opts.MaxConcurrency,
		QueueTimeout:       opts.QueueTimeout,
		ProfileCapacity:    opts.ProfileCapacity,
		OpProfileCapacity:  opts.OpProfileCapacity,
		SlowQueryThreshold: opts.SlowQueryThreshold,
		Logger:             logger,
	})
	cl, err := cluster.New(cluster.Config{
		Nodes:         opts.Nodes,
		Dir:           opts.Dir,
		K:             opts.K,
		LocalSegments: opts.LocalSegments,
		WOSMaxBytes:   opts.WOSMaxBytes,
		Governor:      gov,
		TempDir:       opts.TempDir,
	}, cat, tm)
	if err != nil {
		return nil, err
	}
	db := &Database{
		opts:     opts,
		cat:      cat,
		cluster:  cl,
		txns:     tm,
		dcol:     dcol,
		logger:   logger,
		movers:   map[string]*tuplemover.TupleMover{},
		sessions: map[int64]*Session{},
	}
	// Plan caching is on by default (the high-QPS serving path); a negative
	// size opts out for cold-path baselines and ablation benches.
	if opts.PlanCacheSize >= 0 {
		size := opts.PlanCacheSize
		if size == 0 {
			size = 256
		}
		db.plans = plancache.New(size)
	}
	db.registerMonitorTables()
	// Re-register persisted resource pools with the fresh governor: CREATE
	// RESOURCE POOL definitions live in the catalog and survive restart;
	// runtime state (queues, counters) starts clean. A persisted definition
	// of the built-in general pool records ALTERs to it. Restore is
	// best-effort: a definition that no longer validates (the global pool
	// shrank below a reservation, say) is skipped — not restoring one pool
	// must never brick Open, and the definition stays in the catalog so a
	// compatible configuration restores it on a later start.
	for _, d := range cat.PoolDefs() {
		if d.Name == resmgr.GeneralPool {
			_ = gov.AlterPool(resmgr.GeneralPool, poolAlterFromDef(d))
			continue
		}
		_ = gov.CreatePool(poolConfigFromDef(d))
	}
	// Bootstrap the configured default pool so `vsql -pool x` works before
	// any CREATE RESOURCE POOL has run (defaults apply; ALTER tunes it).
	if opts.DefaultPool != "" && opts.DefaultPool != resmgr.GeneralPool && !gov.HasPool(opts.DefaultPool) {
		if err := gov.CreatePool(resmgr.PoolConfig{Name: opts.DefaultPool}); err != nil {
			return nil, fmt.Errorf("core: Options.DefaultPool: %w", err)
		}
	}
	// Restore the epoch clock from stored data: the epoch column is the
	// durable log (paper §5.2), so the clock resumes past the newest stored
	// epoch and each projection's LGE reflects what reached the ROS.
	var maxEpoch types.Epoch
	for _, p := range cat.Projections() {
		if err := cl.EnsureStorage(p); err != nil {
			return nil, err
		}
		var projMax types.Epoch
		for _, n := range cl.Nodes() {
			mgr, err := n.Mgr(p, cl.ManagerOpts())
			if err != nil {
				return nil, err
			}
			for _, r := range mgr.Containers() {
				if r.Meta.MaxEpoch > projMax {
					projMax = r.Meta.MaxEpoch
				}
			}
		}
		tm.Epochs.SetLGE(p.Name, projMax)
		if projMax > maxEpoch {
			maxEpoch = projMax
		}
	}
	tm.Epochs.Restore(maxEpoch)
	// Publish live WOS size into the metrics registry. Registration
	// replaces any previous database's function (the registry is
	// process-wide; the newest open database wins, which is what tests
	// opening several databases in one process want).
	metrics.RegisterFunc("storage.wos_rows", func() int64 {
		var rows int64
		for _, p := range cat.Projections() {
			for _, n := range cl.UpNodes() {
				if mgr, err := n.Mgr(p, cl.ManagerOpts()); err == nil {
					rows += int64(mgr.WOS().Len())
				}
			}
		}
		return rows
	})
	// Publish the Data Collector's total dropped-event count so overflow
	// is visible on /metrics and v_monitor.metrics without querying every
	// dc table.
	metrics.RegisterFunc("dc.dropped_events", func() int64 {
		var n int64
		for _, st := range dcol.Stats() {
			n += st.Dropped
		}
		return n
	})
	return db, nil
}

// Catalog exposes the metadata catalog.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Cluster exposes the simulated cluster (failure injection, recovery).
func (db *Database) Cluster() *cluster.Cluster { return db.cluster }

// Txns exposes the transaction manager (epochs, locks).
func (db *Database) Txns() *txn.Manager { return db.txns }

// Governor exposes the resource governor (admission control, memory pool,
// workload stats).
func (db *Database) Governor() *resmgr.Governor { return db.cluster.Governor() }

// Collector exposes the Data Collector (nil when disabled via a negative
// Options.DCCapacity).
func (db *Database) Collector() *dc.Collector { return db.dcol }

// Logger exposes the engine's structured logger (nil-safe to use directly;
// see Options.LogWriter).
func (db *Database) Logger() *vlog.Logger { return db.logger }

// Execute parses and runs one SQL statement with autocommit.
func (db *Database) Execute(sqlText string) (*Result, error) {
	return db.ExecuteContext(context.Background(), sqlText)
}

// ExecuteContext is Execute under a cancellable context: cancelling ctx
// aborts a queued or running statement and returns its memory grant.
func (db *Database) ExecuteContext(ctx context.Context, sqlText string) (*Result, error) {
	s := db.NewSession()
	defer s.Close()
	return s.ExecuteContext(ctx, sqlText)
}

// MustExecute is Execute that panics on error (examples and tests).
func (db *Database) MustExecute(sqlText string) *Result {
	r, err := db.Execute(sqlText)
	if err != nil {
		panic(fmt.Sprintf("core: %v\n  in: %s", err, sqlText))
	}
	return r
}

// Session is one client connection: it carries the open transaction and the
// resource pool its statements admit against.
type Session struct {
	db      *Database
	tx      *txn.Txn
	id      int64
	created time.Time

	mu      sync.Mutex
	pool    string // "" = general
	curStmt string // statement currently executing ("" when idle)
	stmts   int64  // statements executed
	notrace bool   // SET SESSION TRACE OFF: skip phase/event tracing

	// prepared holds the session's PREPAREd statements by name. Prepared
	// statements are session-scoped (like Vertica's and Postgres's) and die
	// with the session.
	prepared map[string]*preparedStmt
}

// preparedStmt is one PREPARE'd statement: the parsed body (never mutated —
// EXECUTE substitutes parameters into a deep copy) and its parameter count.
type preparedStmt struct {
	name    string
	stmt    sql.Statement
	nparams int
}

// NewSession opens a session and registers it with v_monitor.sessions.
func (db *Database) NewSession() *Session {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	db.sessSeq++
	s := &Session{db: db, id: db.sessSeq, created: time.Now(), pool: db.opts.DefaultPool}
	db.sessions[s.id] = s
	metrics.ActiveSessions.Add(1)
	db.dcol.RecordEvent(dc.QueryEvent{Type: "SESSION_CONNECT", Detail: fmt.Sprintf("session=%d", s.id)})
	return s
}

// ID returns the session's monitor identifier.
func (s *Session) ID() int64 { return s.id }

// Pool returns the session's current resource pool ("" = general).
func (s *Session) Pool() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool
}

// Close rolls back any open transaction and unregisters the session.
func (s *Session) Close() {
	if s.tx != nil {
		s.db.txns.Rollback(s.tx)
		s.setTx(nil)
	}
	s.db.sessMu.Lock()
	if _, live := s.db.sessions[s.id]; live {
		delete(s.db.sessions, s.id)
		metrics.ActiveSessions.Add(-1) // guarded: Close must be idempotent
		s.db.dcol.RecordEvent(dc.QueryEvent{Type: "SESSION_DISCONNECT", Detail: fmt.Sprintf("session=%d", s.id)})
	}
	s.db.sessMu.Unlock()
}

// newTrace returns a Data Collector trace for one statement, or nil when
// the session has tracing off or the collector is disabled.
func (s *Session) newTrace() *dc.Trace {
	s.mu.Lock()
	off := s.notrace
	s.mu.Unlock()
	if off {
		return nil
	}
	return dc.NewTrace(s.db.dcol)
}

// setTx stores the open transaction under the session mutex: the session's
// own goroutine is the only writer, but v_monitor.sessions reads in_txn from
// other goroutines.
func (s *Session) setTx(tx *txn.Txn) {
	s.mu.Lock()
	s.tx = tx
	s.mu.Unlock()
}

// noteStatement records the executing statement for v_monitor.sessions.
func (s *Session) noteStatement(text string) {
	s.mu.Lock()
	s.curStmt = text
	s.stmts++
	s.mu.Unlock()
}

func (s *Session) clearStatement() {
	s.mu.Lock()
	s.curStmt = ""
	s.mu.Unlock()
}

// Execute runs one statement in the session. Without an explicit BEGIN the
// statement autocommits.
func (s *Session) Execute(sqlText string) (*Result, error) {
	return s.ExecuteContext(context.Background(), sqlText)
}

// ExecuteContext runs one statement under a cancellable context. SELECTs and
// DML are admission-controlled by the session's resource pool and abandon
// execution at the next batch boundary when ctx ends.
func (s *Session) ExecuteContext(ctx context.Context, sqlText string) (res *Result, err error) {
	// Trace the statement's lifecycle phases into the Data Collector. The
	// trace buffers locally and publishes at statement end (the deferred
	// Flush), so a v_monitor.query_phases query sees complete statements
	// only. Failures also land in dc_errors, keyed by the same query id.
	tr := s.newTrace()
	defer func() {
		tr.Flush()
		if err != nil {
			s.db.dcol.RecordError(dc.ErrorEvent{
				QueryID: tr.QueryID(), SQL: statementLabel(sqlText), Error: err.Error()})
		}
	}()
	tr.Begin("parse")
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	tr.End()
	s.noteStatement(strings.TrimSpace(sqlText))
	defer s.clearStatement()
	ctx = resmgr.WithPool(ctx, s.Pool())
	ctx = resmgr.WithLabel(ctx, statementLabel(sqlText))
	ctx = dc.WithTrace(ctx, tr)
	return s.dispatch(ctx, stmt)
}

// dispatch routes a parsed statement to its implementation. EXECUTE re-enters
// here with its parameter-substituted body.
func (s *Session) dispatch(ctx context.Context, stmt sql.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *sql.TxnStmt:
		return s.execTxnStmt(st)
	case *sql.SelectStmt:
		return s.db.execSelect(ctx, st)
	case *sql.PrepareStmt:
		return s.execPrepare(st)
	case *sql.ExecuteStmt:
		return s.execExecute(ctx, st)
	case *sql.DeallocateStmt:
		return s.execDeallocate(st)
	case *sql.CreateTableStmt:
		return s.db.execCreateTable(st)
	case *sql.CreateProjectionStmt:
		return s.db.execCreateProjection(st)
	case *sql.CreatePoolStmt:
		return s.db.execCreatePool(st)
	case *sql.AlterPoolStmt:
		return s.db.execAlterPool(st)
	case *sql.SetStmt:
		return s.execSet(st)
	case *sql.AnalyzeStmt:
		return s.db.execAnalyze(ctx, st)
	case *sql.DropStmt:
		return s.db.execDrop(st)
	case *sql.InsertStmt:
		return s.autocommitDML(ctx, func(tx *txn.Txn) (int64, error) {
			return s.db.execInsert(tx, st)
		})
	case *sql.DeleteStmt:
		return s.autocommitDML(ctx, func(tx *txn.Txn) (int64, error) {
			return s.db.execDelete(tx, st)
		})
	case *sql.UpdateStmt:
		return s.autocommitDML(ctx, func(tx *txn.Txn) (int64, error) {
			return s.db.execUpdate(tx, st)
		})
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

// execPrepare stores a parsed statement body under a session-scoped name.
func (s *Session) execPrepare(st *sql.PrepareStmt) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.prepared[st.Name]; exists {
		return nil, fmt.Errorf("core: prepared statement %q already exists", st.Name)
	}
	if s.prepared == nil {
		s.prepared = map[string]*preparedStmt{}
	}
	s.prepared[st.Name] = &preparedStmt{name: st.Name, stmt: st.Stmt, nparams: st.NumParams}
	return &Result{Message: "PREPARE"}, nil
}

// execExecute substitutes the EXECUTE arguments into a deep copy of the
// prepared body and dispatches it like any other statement. A prepared
// SELECT therefore flows through the plan cache: its fingerprint normalizes
// the substituted values just like ad-hoc literals, so repeated EXECUTEs
// with different parameters share one cache entry — re-binding selectivity
// (and with it, grant size) at each execution without replanning, unless
// the estimate diverges far enough that execSelect forces a replan.
func (s *Session) execExecute(ctx context.Context, st *sql.ExecuteStmt) (*Result, error) {
	s.mu.Lock()
	ps := s.prepared[st.Name]
	s.mu.Unlock()
	if ps == nil {
		return nil, fmt.Errorf("core: prepared statement %q does not exist", st.Name)
	}
	if len(st.Args) != ps.nparams {
		return nil, fmt.Errorf("core: prepared statement %q needs %d parameter(s), got %d",
			st.Name, ps.nparams, len(st.Args))
	}
	bound, err := sql.SubstituteParams(ps.stmt, st.Args)
	if err != nil {
		return nil, err
	}
	return s.dispatch(ctx, bound)
}

// execDeallocate drops a prepared statement by name.
func (s *Session) execDeallocate(st *sql.DeallocateStmt) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.prepared[st.Name]; !exists {
		return nil, fmt.Errorf("core: prepared statement %q does not exist", st.Name)
	}
	delete(s.prepared, st.Name)
	return &Result{Message: "DEALLOCATE"}, nil
}

// statementLabel is the profile label for a statement: trimmed and bounded
// so the profile ring cannot retain arbitrarily large SQL text. Truncation
// backs up to a rune boundary so the label stays valid UTF-8.
func statementLabel(sqlText string) string {
	t := strings.TrimSpace(sqlText)
	const maxLabel = 256
	if len(t) > maxLabel {
		cut := maxLabel
		for cut > 0 && !utf8.RuneStart(t[cut]) {
			cut--
		}
		t = t[:cut] + "…"
	}
	return t
}

func (s *Session) execTxnStmt(st *sql.TxnStmt) (*Result, error) {
	switch st.Kind {
	case "BEGIN":
		if s.tx != nil {
			return nil, fmt.Errorf("core: transaction already open")
		}
		s.setTx(s.db.txns.Begin(txn.ReadCommitted))
		return &Result{Message: "BEGIN"}, nil
	case "COMMIT":
		if s.tx == nil {
			return nil, fmt.Errorf("core: no open transaction")
		}
		_, err := s.db.txns.Commit(s.tx)
		s.setTx(nil)
		if err != nil {
			return nil, err
		}
		return &Result{Message: "COMMIT"}, nil
	default: // ROLLBACK
		if s.tx == nil {
			return nil, fmt.Errorf("core: no open transaction")
		}
		s.db.txns.Rollback(s.tx)
		s.setTx(nil)
		return &Result{Message: "ROLLBACK"}, nil
	}
}

// autocommitDML stages DML in the session transaction, committing
// immediately when none is open. DML admits against the session's resource
// pool like SELECTs do (before any lock is taken), so pools constrain load
// statements too and the grant's stats ride on the Result.
func (s *Session) autocommitDML(ctx context.Context, stage func(tx *txn.Txn) (int64, error)) (res *Result, err error) {
	tr := dc.TraceFrom(ctx)
	tr.Begin("queue")
	grant, err := s.db.Governor().Admit(ctx)
	if err != nil {
		return nil, err
	}
	tr.SetQueryID(grant.QueryID())
	tr.Begin("execute")
	defer func() {
		if err != nil {
			grant.SetError(err)
		}
		grant.Release()
	}()
	auto := s.tx == nil
	tx := s.tx
	if auto {
		tx = s.db.txns.Begin(txn.ReadCommitted)
	}
	n, err := stage(tx)
	if err != nil {
		if auto {
			s.db.txns.Rollback(tx)
		}
		return nil, err
	}
	if auto {
		if _, err := s.db.txns.Commit(tx); err != nil {
			return nil, err
		}
	}
	grant.ReportRows(n)
	return &Result{RowsAffected: n, Message: fmt.Sprintf("%d rows", n), Stats: grant.Stats()}, nil
}

// --- resource pool statements ------------------------------------------------

// poolConfigOf translates parsed CREATE RESOURCE POOL options.
func poolConfigOf(name string, o sql.PoolOpts) resmgr.PoolConfig {
	cfg := resmgr.PoolConfig{Name: name}
	if o.MemBytes != nil {
		cfg.MemBytes = *o.MemBytes
	}
	if o.MaxMemBytes != nil {
		cfg.MaxMemBytes = *o.MaxMemBytes
	}
	if o.PlannedConcurrency != nil {
		cfg.PlannedConcurrency = int(*o.PlannedConcurrency)
	}
	if o.MaxConcurrency != nil {
		cfg.MaxConcurrency = int(*o.MaxConcurrency)
	}
	if o.QueueTimeoutMS != nil {
		cfg.QueueTimeout = queueTimeoutOf(*o.QueueTimeoutMS)
	}
	if o.Priority != nil {
		cfg.Priority = int(*o.Priority)
	}
	if o.RuntimeCapMS != nil {
		cfg.RuntimeCap = time.Duration(*o.RuntimeCapMS) * time.Millisecond
	}
	if o.Parallelism != nil {
		cfg.Parallelism = int(*o.Parallelism)
	}
	return cfg
}

// poolDefOf snapshots a pool's configured (not effective) knobs into the
// catalog's persisted form.
func poolDefOf(cfg resmgr.PoolConfig) catalog.PoolDef {
	d := catalog.PoolDef{
		Name:               cfg.Name,
		MemBytes:           cfg.MemBytes,
		MaxMemBytes:        cfg.MaxMemBytes,
		PlannedConcurrency: cfg.PlannedConcurrency,
		MaxConcurrency:     cfg.MaxConcurrency,
		Priority:           cfg.Priority,
		Parallelism:        cfg.Parallelism,
	}
	switch {
	case cfg.QueueTimeout < 0:
		d.QueueTimeoutMS = -1
	case cfg.QueueTimeout > 0:
		d.QueueTimeoutMS = cfg.QueueTimeout.Milliseconds()
	}
	if cfg.RuntimeCap > 0 {
		d.RuntimeCapMS = cfg.RuntimeCap.Milliseconds()
	}
	return d
}

// poolConfigFromDef rebuilds a governor pool configuration from its
// persisted definition.
func poolConfigFromDef(d catalog.PoolDef) resmgr.PoolConfig {
	cfg := resmgr.PoolConfig{
		Name:               d.Name,
		MemBytes:           d.MemBytes,
		MaxMemBytes:        d.MaxMemBytes,
		PlannedConcurrency: d.PlannedConcurrency,
		MaxConcurrency:     d.MaxConcurrency,
		Priority:           d.Priority,
		Parallelism:        d.Parallelism,
	}
	if d.QueueTimeoutMS != 0 {
		cfg.QueueTimeout = queueTimeoutOf(d.QueueTimeoutMS)
	}
	if d.RuntimeCapMS > 0 {
		cfg.RuntimeCap = time.Duration(d.RuntimeCapMS) * time.Millisecond
	}
	return cfg
}

// poolAlterFromDef expresses a persisted general-pool definition as an
// ALTER of only the knobs the definition records (non-zero fields): the
// general pool's other settings come from CLI flags / Options on every
// start, and restoring an ALTER must not freeze those.
func poolAlterFromDef(d catalog.PoolDef) resmgr.PoolAlter {
	cfg := poolConfigFromDef(d)
	var a resmgr.PoolAlter
	if cfg.MemBytes != 0 {
		a.MemBytes = &cfg.MemBytes
	}
	if cfg.MaxMemBytes != 0 {
		a.MaxMemBytes = &cfg.MaxMemBytes
	}
	if cfg.PlannedConcurrency != 0 {
		a.PlannedConcurrency = &cfg.PlannedConcurrency
	}
	if cfg.MaxConcurrency != 0 {
		a.MaxConcurrency = &cfg.MaxConcurrency
	}
	if cfg.QueueTimeout != 0 {
		a.QueueTimeout = &cfg.QueueTimeout
	}
	if cfg.Priority != 0 {
		a.Priority = &cfg.Priority
	}
	if cfg.RuntimeCap != 0 {
		a.RuntimeCap = &cfg.RuntimeCap
	}
	if cfg.Parallelism != 0 {
		a.Parallelism = &cfg.Parallelism
	}
	return a
}

// persistPool snapshots the named pool's current configuration into the
// catalog so CREATE/ALTER RESOURCE POOL survive restart. The built-in
// general pool is special: its baseline comes from CLI flags / Options, so
// only the knobs actually ALTERed (accumulated across statements) persist —
// never the flag-derived snapshot.
func (db *Database) persistPool(name string, opts *sql.PoolOpts) error {
	if name == resmgr.GeneralPool {
		d, _ := db.cat.PoolDef(name)
		d.Name = name
		if opts != nil {
			mergePoolOpts(&d, *opts)
		}
		return db.cat.SavePool(d)
	}
	st, ok := db.Governor().PoolStatus(name)
	if !ok {
		return fmt.Errorf("core: pool %q vanished before persisting", name)
	}
	return db.cat.SavePool(poolDefOf(st.PoolConfig))
}

// mergePoolOpts applies the fields one ALTER statement specified onto a
// persisted definition.
func mergePoolOpts(d *catalog.PoolDef, o sql.PoolOpts) {
	if o.MemBytes != nil {
		d.MemBytes = *o.MemBytes
	}
	if o.MaxMemBytes != nil {
		d.MaxMemBytes = *o.MaxMemBytes
	}
	if o.PlannedConcurrency != nil {
		d.PlannedConcurrency = int(*o.PlannedConcurrency)
	}
	if o.MaxConcurrency != nil {
		d.MaxConcurrency = int(*o.MaxConcurrency)
	}
	if o.QueueTimeoutMS != nil {
		d.QueueTimeoutMS = *o.QueueTimeoutMS
	}
	if o.Priority != nil {
		d.Priority = int(*o.Priority)
	}
	if o.RuntimeCapMS != nil {
		d.RuntimeCapMS = *o.RuntimeCapMS
	}
	if o.Parallelism != nil {
		d.Parallelism = int(*o.Parallelism)
	}
}

// queueTimeoutOf maps the parsed QUEUETIMEOUT milliseconds (-1 = NONE) onto
// resmgr semantics (negative disables, zero inherits).
func queueTimeoutOf(ms int64) time.Duration {
	if ms < 0 {
		return -1
	}
	return time.Duration(ms) * time.Millisecond
}

func (db *Database) execCreatePool(st *sql.CreatePoolStmt) (*Result, error) {
	if err := db.Governor().CreatePool(poolConfigOf(st.Name, st.Opts)); err != nil {
		return nil, err
	}
	if err := db.persistPool(st.Name, &st.Opts); err != nil {
		return nil, err
	}
	db.poolEpoch.Add(1)
	db.sweepPlans()
	return &Result{Message: "CREATE RESOURCE POOL"}, nil
}

func (db *Database) execAlterPool(st *sql.AlterPoolStmt) (*Result, error) {
	var a resmgr.PoolAlter
	a.MemBytes = st.Opts.MemBytes
	a.MaxMemBytes = st.Opts.MaxMemBytes
	if st.Opts.PlannedConcurrency != nil {
		v := int(*st.Opts.PlannedConcurrency)
		a.PlannedConcurrency = &v
	}
	if st.Opts.MaxConcurrency != nil {
		v := int(*st.Opts.MaxConcurrency)
		a.MaxConcurrency = &v
	}
	if st.Opts.QueueTimeoutMS != nil {
		d := queueTimeoutOf(*st.Opts.QueueTimeoutMS)
		a.QueueTimeout = &d
	}
	if st.Opts.Priority != nil {
		v := int(*st.Opts.Priority)
		a.Priority = &v
	}
	if st.Opts.RuntimeCapMS != nil {
		d := time.Duration(*st.Opts.RuntimeCapMS) * time.Millisecond
		a.RuntimeCap = &d
	}
	if st.Opts.Parallelism != nil {
		v := int(*st.Opts.Parallelism)
		a.Parallelism = &v
	}
	if err := db.Governor().AlterPool(st.Name, a); err != nil {
		return nil, err
	}
	if err := db.persistPool(st.Name, &st.Opts); err != nil {
		return nil, err
	}
	db.poolEpoch.Add(1)
	db.sweepPlans()
	return &Result{Message: "ALTER RESOURCE POOL"}, nil
}

// execSet dispatches SET statements: SESSION TRACE toggles the session's
// Data Collector tracing, RESOURCE POOL switches the admission pool.
func (s *Session) execSet(st *sql.SetStmt) (*Result, error) {
	if st.Trace != "" {
		s.mu.Lock()
		s.notrace = st.Trace == "off"
		s.mu.Unlock()
		return &Result{Message: "SET SESSION TRACE " + strings.ToUpper(st.Trace)}, nil
	}
	return s.execSetPool(st)
}

// execSetPool switches the session's admission pool after verifying the
// pool exists (SET RESOURCE POOL general always works). It holds the
// session registry lock across check and set so a concurrent DROP RESOURCE
// POOL — whose fallback sweep runs under the same lock — cannot interleave
// and leave the session pinned to a pool that no longer exists.
func (s *Session) execSetPool(st *sql.SetStmt) (*Result, error) {
	s.db.sessMu.Lock()
	defer s.db.sessMu.Unlock()
	if !s.db.Governor().HasPool(st.Pool) {
		return nil, fmt.Errorf("core: resource pool %q does not exist", st.Pool)
	}
	s.mu.Lock()
	s.pool = st.Pool
	s.mu.Unlock()
	return &Result{Message: "SET RESOURCE POOL " + st.Pool}, nil
}

// --- statement implementations ---------------------------------------------

// divergenceThreshold is the selectivity ratio past which a cached plan's
// probe metadata is considered wrong for the incoming literal values and
// the statement replans from scratch (the "≥10×" rule for EXECUTE).
const divergenceThreshold = 10.0

func (db *Database) execSelect(ctx context.Context, st *sql.SelectStmt) (*Result, error) {
	dc.TraceFrom(ctx).Begin("analyze")
	opts := db.planOpts(st)

	// Plan-cache lookup. EXPLAIN/PROFILE always replan (their whole point
	// is showing planning), and system-table queries are too cheap and too
	// volatile (virtual schemas can be re-registered) to cache.
	var (
		cacheEpochs plancache.Epochs
		cacheKey    plancache.Key
		cacheLits   []types.Value
		entry       *plancache.Entry
		cacheable   = db.plans != nil && !st.Explain && !st.Profile && !db.usesVirtual(st)
	)
	if cacheable {
		fp, lits := sql.Fingerprint(st)
		cacheLits = lits
		pool := resmgr.PoolFromContext(ctx)
		if pool == "" {
			// An unset session pool admits against general: key it that way
			// so explicit SET RESOURCE POOL general shares the entries.
			pool = resmgr.GeneralPool
		}
		cacheKey = plancache.Key{
			Fingerprint:   fp,
			Pool:          pool,
			Parallelism:   opts.Parallelism,
			ForceParallel: opts.ForceParallel,
		}
		cacheEpochs = db.planEpochs()
		entry = db.plans.Lookup(cacheKey, cacheEpochs)
	}

	var q *optimizer.LogicalQuery
	var err error
	switch {
	case entry != nil && sql.LiteralsEqual(entry.Literals, cacheLits):
		// Exact hit: the cached bound query embeds these very constants, so
		// analysis is skipped entirely along with the probe plan.
		q = entry.Query
		opts.CachedProbe = probeOf(entry)
	case entry != nil:
		// Shape hit, different literals: the cached LogicalQuery embeds the
		// old constants and must not run, but analysis (name binding) is the
		// cheap half — re-analyze for correct constants and reuse the probe
		// metadata, re-sizing the grant by how much the fresh literals move
		// the selectivity estimate. Past divergenceThreshold the projection
		// choice itself is suspect: drop the entry and replan.
		q, err = sql.AnalyzeSelect(st, db.cat)
		if err != nil {
			return nil, err
		}
		sel, _ := optimizer.EstimateSelectivity(db.cat, q)
		if ratio := divergence(sel, entry.Selectivity); ratio >= divergenceThreshold {
			metrics.PlanCacheReplans.Inc()
			entry = nil
		} else {
			probe := probeOf(entry)
			if entry.Selectivity > 0 && sel > 0 {
				probe.EstMemBytes = int64(float64(entry.EstMemBytes) * sel / entry.Selectivity)
			}
			opts.CachedProbe = probe
		}
	}
	if q == nil {
		q, err = sql.AnalyzeSelect(st, db.cat)
		if err != nil {
			return nil, err
		}
	}
	res, err := db.cluster.RunCtx(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	if cacheable && opts.CachedProbe == nil {
		// Miss (or forced replan): record the plan with its fresh probe
		// metadata and plan-time selectivity for future divergence checks.
		sel, _ := optimizer.EstimateSelectivity(db.cat, q)
		db.plans.Insert(cacheKey, &plancache.Entry{
			Query:           q,
			Literals:        cacheLits,
			ProjectionsUsed: res.Probe.ProjectionsUsed,
			EstRows:         res.Probe.EstRows,
			EstMemBytes:     res.Probe.EstMemBytes,
			StatsBacked:     res.Probe.StatsBacked,
			Workers:         res.Probe.Workers,
			Selectivity:     sel,
			Epochs:          cacheEpochs,
		})
	}
	if st.Explain {
		return &Result{Explain: res.Explain, Message: res.Explain}, nil
	}
	if st.Profile {
		// PROFILE executes normally, then reports the annotated plan
		// instead of the rows (the records also land in
		// v_monitor.execution_engine_profiles via the grant).
		tree := exec.FormatProfiles(res.OpProfiles)
		return &Result{Explain: tree, Message: tree, OpProfiles: res.OpProfiles, Stats: res.Stats}, nil
	}
	return &Result{Schema: res.Schema, Rows: res.Rows, Explain: res.Explain, Stats: res.Stats}, nil
}

// probeOf replays a cache entry's probe metadata into the runner.
func probeOf(e *plancache.Entry) *optimizer.ProbeInfo {
	return &optimizer.ProbeInfo{
		ProjectionsUsed: e.ProjectionsUsed,
		EstRows:         e.EstRows,
		EstMemBytes:     e.EstMemBytes,
		StatsBacked:     e.StatsBacked,
		Workers:         e.Workers,
	}
}

// divergence is the symmetric ratio between two selectivity estimates
// (always ≥ 1; a non-positive estimate on either side counts as fully
// diverged).
func divergence(a, b float64) float64 {
	if a == b {
		return 1
	}
	if a <= 0 || b <= 0 {
		return divergenceThreshold // treat sign flips as fully diverged
	}
	if a < b {
		a, b = b, a
	}
	return a / b
}

// usesVirtual reports whether the SELECT reads any system table.
func (db *Database) usesVirtual(st *sql.SelectStmt) bool {
	for _, te := range st.From {
		if db.cat.Virtual(te.Table) != nil {
			return true
		}
	}
	return false
}

// planEpochs snapshots the three epoch counters a cached plan's validity
// depends on.
func (db *Database) planEpochs() plancache.Epochs {
	return plancache.Epochs{
		CatalogGen: db.cat.Generation(),
		StatsEpoch: db.cat.StatsEpoch(),
		PoolEpoch:  db.poolEpoch.Load(),
	}
}

// sweepPlans eagerly retires cache entries invalidated by an epoch bump.
// Lookup would retire them lazily anyway; the sweep keeps
// v_monitor.plan_cache and the invalidation counters current the moment
// DDL/ANALYZE/pool changes commit.
func (db *Database) sweepPlans() {
	if db.plans != nil {
		db.plans.InvalidateStale(db.planEpochs())
	}
}

// planOpts assembles the per-statement planner/runner options from the
// database configuration and the statement's modifiers.
func (db *Database) planOpts(st *sql.SelectStmt) optimizer.PlanOpts {
	return optimizer.PlanOpts{
		Parallelism:   db.opts.Parallelism,
		ForceParallel: db.opts.ForceParallel,
		Profile:       db.opts.Profile || (st != nil && st.Profile),
	}
}

// QueryAt runs a SELECT at a historical epoch (time travel).
func (db *Database) QueryAt(sqlText string, epoch types.Epoch) (*Result, error) {
	return db.QueryAtContext(context.Background(), sqlText, epoch)
}

// QueryAtContext is QueryAt under a cancellable, admission-controlled
// context (the server's pinned-epoch sessions run through here).
func (db *Database) QueryAtContext(ctx context.Context, sqlText string, epoch types.Epoch) (res *Result, err error) {
	tr := dc.NewTrace(db.dcol)
	defer func() {
		tr.Flush()
		if err != nil {
			db.dcol.RecordError(dc.ErrorEvent{
				QueryID: tr.QueryID(), SQL: statementLabel(sqlText), Error: err.Error()})
		}
	}()
	tr.Begin("parse")
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	st, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: QueryAt requires a SELECT")
	}
	ctx = resmgr.WithLabel(ctx, statementLabel(sqlText))
	ctx = dc.WithTrace(ctx, tr)
	tr.Begin("analyze")
	q, err := sql.AnalyzeSelect(st, db.cat)
	if err != nil {
		return nil, err
	}
	qres, err := db.cluster.RunAtCtx(ctx, q, db.planOpts(st), epoch)
	if err != nil {
		return nil, err
	}
	if st.Profile {
		tree := exec.FormatProfiles(qres.OpProfiles)
		return &Result{Explain: tree, Message: tree, OpProfiles: qres.OpProfiles, Stats: qres.Stats}, nil
	}
	return &Result{Schema: qres.Schema, Rows: qres.Rows, Explain: qres.Explain, Stats: qres.Stats}, nil
}

func (db *Database) execCreateTable(st *sql.CreateTableStmt) (*Result, error) {
	cols := make([]types.Column, len(st.Cols))
	for i, c := range st.Cols {
		cols[i] = types.Column{Name: c.Name, Typ: c.Typ, Nullable: !c.NotNull}
	}
	t := &catalog.Table{
		Name:              st.Name,
		Schema:            types.NewSchema(cols...),
		PartitionExprText: st.PartitionText,
	}
	if st.PartitionText != "" {
		e, err := sql.BindScalarExpr(st.PartitionText, t.Schema)
		if err != nil {
			return nil, err
		}
		t.PartitionExpr = e
	}
	if err := db.cat.CreateTable(t); err != nil {
		return nil, err
	}
	db.sweepPlans()
	return &Result{Message: "CREATE TABLE"}, nil
}

func (db *Database) execCreateProjection(st *sql.CreateProjectionStmt) (*Result, error) {
	p := &catalog.Projection{
		Name:      st.Name,
		Anchor:    st.Table,
		Columns:   st.Columns,
		SortOrder: st.SortOrder,
		Encodings: st.Encodings,
	}
	if st.Replicated {
		p.Seg.Replicated = true
	} else if len(st.SegCols) > 0 {
		p.Seg.ExprText = st.SegText
	}
	if st.BuddyOf != "" {
		primary, err := db.cat.Projection(st.BuddyOf)
		if err != nil {
			return nil, err
		}
		p.IsBuddy = true
		p.Seg.Offset = 1
		primary.Buddy = p.Name
	}
	if err := db.CreateProjection(p); err != nil {
		return nil, err
	}
	db.sweepPlans()
	return &Result{Message: "CREATE PROJECTION"}, nil
}

// CreateProjection registers a projection (programmatic API), binding its
// segmentation expression and auto-creating a buddy when K-safety requires
// one (paper §5.2: "each projection must have at least one buddy projection
// ... such that no row is stored on the same node by both").
func (db *Database) CreateProjection(p *catalog.Projection) error {
	if err := db.cat.CreateProjection(p); err != nil {
		return err
	}
	if p.Seg.ExprText != "" {
		if err := db.cat.RebindExprs(sql.BindScalarExpr); err != nil {
			return err
		}
	}
	if err := db.cluster.EnsureStorage(p); err != nil {
		return err
	}
	// Auto-buddy for K-safety on multi-node clusters.
	if db.opts.K >= 1 && !p.IsBuddy && !p.Seg.Replicated && p.Buddy == "" && db.opts.Nodes > 1 {
		buddy := &catalog.Projection{
			Name:      p.Name + "_b1",
			Anchor:    p.Anchor,
			Columns:   append([]string{}, p.Columns...),
			SortOrder: append([]string{}, p.SortOrder...),
			Encodings: p.Encodings,
			Seg: catalog.Segmentation{
				ExprText: p.Seg.ExprText,
				Offset:   1,
			},
			IsBuddy: true,
			Prejoin: p.Prejoin,
		}
		if err := db.cat.CreateProjection(buddy); err != nil {
			return err
		}
		if err := db.cat.RebindExprs(sql.BindScalarExpr); err != nil {
			return err
		}
		if err := db.cluster.EnsureStorage(buddy); err != nil {
			return err
		}
		p.Buddy = buddy.Name
	}
	return nil
}

func (db *Database) execDrop(st *sql.DropStmt) (*Result, error) {
	switch st.Kind {
	case "TABLE":
		if err := db.cat.DropTable(st.Name); err != nil {
			return nil, err
		}
		db.sweepPlans()
		return &Result{Message: "DROP TABLE"}, nil
	case "PROJECTION":
		if err := db.cat.DropProjection(st.Name); err != nil {
			return nil, err
		}
		db.sweepPlans()
		return &Result{Message: "DROP PROJECTION"}, nil
	case "RESOURCE POOL":
		if err := db.Governor().DropPool(st.Name); err != nil {
			return nil, err
		}
		if err := db.cat.DropPool(st.Name); err != nil {
			return nil, err
		}
		// Sessions still SET to the dropped pool — and the default for
		// future sessions — fall back to general instead of failing every
		// subsequent statement.
		db.sessMu.Lock()
		if db.opts.DefaultPool == st.Name {
			db.opts.DefaultPool = ""
		}
		for _, s := range db.sessions {
			s.mu.Lock()
			if s.pool == st.Name {
				s.pool = ""
			}
			s.mu.Unlock()
		}
		db.sessMu.Unlock()
		db.poolEpoch.Add(1)
		db.sweepPlans()
		return &Result{Message: "DROP RESOURCE POOL"}, nil
	default: // PARTITION: fast bulk deletion by dropping container files
		// (paper §3.5). Requires an Owner lock.
		otx := db.txns.Begin(txn.ReadCommitted)
		if err := db.txns.Locks.Acquire(otx.ID, st.Name, txn.O); err != nil {
			return nil, err
		}
		defer db.txns.Locks.ReleaseAll(otx.ID)
		var dropped int64
		for _, p := range db.cat.ProjectionsFor(st.Name) {
			for _, n := range db.cluster.UpNodes() {
				mgr, err := n.Mgr(p, db.cluster.ManagerOpts())
				if err != nil {
					return nil, err
				}
				rows, err := mgr.DropPartition(st.Key)
				if err != nil {
					return nil, err
				}
				if p.IsSuper && !p.IsBuddy {
					dropped += rows
				}
			}
		}
		return &Result{RowsAffected: dropped, Message: fmt.Sprintf("DROP PARTITION (%d rows)", dropped)}, nil
	}
}

func (db *Database) execInsert(tx *txn.Txn, st *sql.InsertStmt) (int64, error) {
	t, err := db.cat.Table(st.Table)
	if err != nil {
		return 0, err
	}
	// Insert lock: compatible with itself, so parallel loads proceed (§5).
	if err := db.txns.Locks.Acquire(tx.ID, st.Table, txn.I); err != nil {
		return 0, err
	}
	colIdx := make([]int, 0, t.Schema.Len())
	if len(st.Cols) > 0 {
		for _, cn := range st.Cols {
			i := t.Schema.ColIndex(cn)
			if i < 0 {
				return 0, fmt.Errorf("core: unknown column %q", cn)
			}
			colIdx = append(colIdx, i)
		}
	} else {
		for i := 0; i < t.Schema.Len(); i++ {
			colIdx = append(colIdx, i)
		}
	}
	rows := make([]types.Row, 0, len(st.Rows))
	for _, astRow := range st.Rows {
		if len(astRow) != len(colIdx) {
			return 0, fmt.Errorf("core: INSERT arity mismatch")
		}
		row := make(types.Row, t.Schema.Len())
		for i := range row {
			row[i] = types.NewNull(t.Schema.Col(i).Typ)
		}
		for i, ae := range astRow {
			v, err := evalLiteral(ae)
			if err != nil {
				return 0, err
			}
			row[colIdx[i]] = coerceValue(v, t.Schema.Col(colIdx[i]).Typ)
		}
		rows = append(rows, row)
	}
	if err := db.cluster.StageInsert(tx, st.Table, rows, false); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

func (db *Database) execDelete(tx *txn.Txn, st *sql.DeleteStmt) (int64, error) {
	t, err := db.cat.Table(st.Table)
	if err != nil {
		return 0, err
	}
	// Deletes require the eXclusive lock (paper §5).
	if err := db.txns.Locks.Acquire(tx.ID, st.Table, txn.X); err != nil {
		return 0, err
	}
	var pred expr.Expr
	if st.Where != nil {
		pred, err = sql.BindExprToTable(st.Where, t)
		if err != nil {
			return 0, err
		}
	}
	return db.cluster.StageDelete(tx, st.Table, pred, db.txns.Epochs.ReadEpoch())
}

func (db *Database) execUpdate(tx *txn.Txn, st *sql.UpdateStmt) (int64, error) {
	t, err := db.cat.Table(st.Table)
	if err != nil {
		return 0, err
	}
	if err := db.txns.Locks.Acquire(tx.ID, st.Table, txn.X); err != nil {
		return 0, err
	}
	set := map[int]expr.Expr{}
	for _, cn := range st.Cols {
		i := t.Schema.ColIndex(cn)
		if i < 0 {
			return 0, fmt.Errorf("core: unknown column %q", cn)
		}
		e, err := sql.BindExprToTable(st.Set[cn], t)
		if err != nil {
			return 0, err
		}
		set[i] = e
	}
	var pred expr.Expr
	if st.Where != nil {
		pred, err = sql.BindExprToTable(st.Where, t)
		if err != nil {
			return 0, err
		}
	}
	return db.cluster.StageUpdate(tx, st.Table, set, pred, db.txns.Epochs.ReadEpoch())
}

// Load bulk-loads rows into a table. Loads of DirectLoadRowThreshold rows or
// more (or with direct=true) bypass the WOS and write ROS containers
// immediately.
func (db *Database) Load(table string, rows []types.Row, direct bool) error {
	tx := db.txns.Begin(txn.ReadCommitted)
	if err := db.txns.Locks.Acquire(tx.ID, table, txn.I); err != nil {
		return err
	}
	direct = direct || len(rows) >= db.opts.DirectLoadRowThreshold
	if err := db.cluster.StageInsert(tx, table, rows, direct); err != nil {
		db.txns.Rollback(tx)
		return err
	}
	_, err := db.txns.Commit(tx)
	return err
}

// --- tuple mover -------------------------------------------------------------

// moverFor builds (once) the tuple mover for a projection on a node.
func (db *Database) moverFor(n *cluster.Node, p *catalog.Projection) (*tuplemover.TupleMover, error) {
	key := fmt.Sprintf("%d/%s", n.ID, p.Name)
	db.moverMu.Lock()
	defer db.moverMu.Unlock()
	if tm, ok := db.movers[key]; ok {
		return tm, nil
	}
	mgr, err := n.Mgr(p, db.cluster.ManagerOpts())
	if err != nil {
		return nil, err
	}
	t, err := db.cat.Table(p.Anchor)
	if err != nil {
		return nil, err
	}
	encs := map[string]storage.ColumnSpec{}
	for name, k := range p.Encodings {
		if i := p.Schema.ColIndex(name); i >= 0 {
			encs[name] = storage.ColumnSpec{Name: name, Typ: p.Schema.Col(i).Typ, Enc: k}
		}
	}
	var partOf func(types.Row) (string, error)
	if t.PartitionExpr != nil {
		m := map[int]int{}
		for i := 0; i < t.Schema.Len(); i++ {
			if pi := p.Schema.ColIndex(t.Schema.Col(i).Name); pi >= 0 {
				m[i] = pi
			}
		}
		pe, err := expr.Remap(t.PartitionExpr, m)
		if err == nil {
			partOf = func(r types.Row) (string, error) {
				v, err := pe.EvalRow(r)
				if err != nil {
					return "", err
				}
				return v.String(), nil
			}
		}
	}
	tm, err := tuplemover.New(tuplemover.Config{
		Projection:     p.Name,
		Mgr:            mgr,
		Epochs:         db.txns.Epochs,
		SortKey:        p.SortKey(),
		Encodings:      encs,
		PartitionOf:    partOf,
		LocalSegmentOf: db.cluster.LocalSegmentOf(p),
		Collector:      db.dcol,
	})
	if err != nil {
		return nil, err
	}
	db.movers[key] = tm
	return tm, nil
}

// RunTupleMover performs one moveout+mergeout cycle on every node and
// projection; the paper's tuple mover runs this continuously in the
// background, here it is explicit for determinism. Returns total rows moved
// out and merges performed.
func (db *Database) RunTupleMover() (int, int, error) {
	start := time.Now()
	defer func() { metrics.MoverCycleUs.Observe(time.Since(start).Microseconds()) }()
	// Tuple mover operations take the T lock, compatible with queries and
	// loads but not X (paper §5, Table 1).
	ttx := db.txns.Begin(txn.ReadCommitted)
	defer db.txns.Locks.ReleaseAll(ttx.ID)
	totalMoved, totalMerged := 0, 0
	for _, p := range db.cat.Projections() {
		if err := db.txns.Locks.Acquire(ttx.ID, p.Anchor, txn.T); err != nil {
			return totalMoved, totalMerged, err
		}
		for _, n := range db.cluster.UpNodes() {
			tm, err := db.moverFor(n, p)
			if err != nil {
				return totalMoved, totalMerged, err
			}
			moved, merged, err := tm.Run()
			if err != nil {
				return totalMoved, totalMerged, err
			}
			if moved > 0 {
				metrics.TupleMoverMoveouts.Inc()
			}
			metrics.TupleMoverMergeouts.Add(int64(merged))
			totalMoved += moved
			totalMerged += merged
		}
	}
	db.txns.Epochs.AdvanceAHM()
	db.logger.Debugf("tuple_mover_cycle", "rows_moved", totalMoved,
		"merges", totalMerged, "wall_us", time.Since(start).Microseconds())
	return totalMoved, totalMerged, nil
}

// --- helpers ------------------------------------------------------------------

// evalLiteral evaluates a literal-only AST expression (INSERT values).
func evalLiteral(a sql.AstExpr) (types.Value, error) {
	e, err := sql.BindLiteralExpr(a)
	if err != nil {
		return types.Value{}, err
	}
	return e.EvalRow(nil)
}

func coerceValue(v types.Value, t types.Type) types.Value {
	if v.Null {
		return types.NewNull(t)
	}
	switch {
	case v.Typ == t:
		return v
	case t == types.Float64 && v.Typ.IsIntegral():
		return types.NewFloat(float64(v.I))
	case t.IsIntegral() && v.Typ == types.Float64:
		return types.Value{Typ: t, I: int64(v.F)}
	case t == types.Timestamp && v.Typ == types.Varchar:
		if tv, err := sql.ParseTimestamp(v.S); err == nil {
			return tv
		}
		return v
	case t.IsIntegral() && v.Typ.IsIntegral():
		v.Typ = t
		return v
	default:
		return v
	}
}
