package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/resmgr"
	"repro/internal/types"
)

func seedSales(t *testing.T, db *Database, n int) {
	t.Helper()
	db.MustExecute(`CREATE TABLE sales (sale_id INT, cust INT, price FLOAT)`)
	db.MustExecute(`CREATE PROJECTION sales_super ON sales (sale_id, cust, price) ORDER BY sale_id`)
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 7)), types.NewFloat(float64(i)),
		})
	}
	if err := db.Load("sales", rows, true); err != nil {
		t.Fatal(err)
	}
}

// TestResourcePoolsTable: CREATE/ALTER RESOURCE POOL is visible through
// v_monitor.resource_pools with effective knobs and live counters.
func TestResourcePoolsTable(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 4)
	db.MustExecute(`CREATE RESOURCE POOL etl MEMORYSIZE '8M' MAXMEMORYSIZE '16M' MAXCONCURRENCY 2 QUEUETIMEOUT 500`)
	res := db.MustExecute(`SELECT name, memorysize, maxmemorysize, max_concurrency, queue_timeout_ms
		FROM v_monitor.resource_pools ORDER BY name`)
	if len(res.Rows) != 2 {
		t.Fatalf("pools = %d rows: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].S != "etl" || res.Rows[1][0].S != "general" {
		t.Fatalf("pool names: %v", res.Rows)
	}
	etl := res.Rows[0]
	if etl[1].I != 8<<20 || etl[2].I != 16<<20 || etl[3].I != 2 || etl[4].I != 500 {
		t.Fatalf("etl row: %v", etl)
	}

	db.MustExecute(`ALTER RESOURCE POOL etl MAXCONCURRENCY 3`)
	res = db.MustExecute(`SELECT max_concurrency FROM v_monitor.resource_pools WHERE name = 'etl'`)
	if res.Rows[0][0].I != 3 {
		t.Fatalf("altered max_concurrency = %v", res.Rows[0][0])
	}

	db.MustExecute(`DROP RESOURCE POOL etl`)
	res = db.MustExecute(`SELECT COUNT(*) FROM v_monitor.resource_pools`)
	if res.Rows[0][0].I != 1 {
		t.Fatalf("pools after drop: %v", res.Rows)
	}
}

// TestQueryProfilesTable: executed statements leave profiles carrying the
// pool name, statement text and row counts, queryable over SQL.
func TestQueryProfilesTable(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 4)
	seedSales(t, db, 100)
	db.MustExecute(`CREATE RESOURCE POOL interactive`)

	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(`SET RESOURCE POOL interactive`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`SELECT COUNT(*) FROM sales`); err != nil {
		t.Fatal(err)
	}

	res := db.MustExecute(`SELECT pool, statement, rows_produced, status
		FROM v_monitor.query_profiles WHERE pool = 'interactive'`)
	if len(res.Rows) != 1 {
		t.Fatalf("interactive profiles = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[1].S != `SELECT COUNT(*) FROM sales` || row[2].I != 1 || row[3].S != "ok" {
		t.Fatalf("profile row = %v", row)
	}

	// The bulk Load and the seeding DDL ran on general; profiles aggregate.
	res = db.MustExecute(`SELECT pool, COUNT(*) FROM v_monitor.query_profiles GROUP BY pool ORDER BY pool`)
	if len(res.Rows) < 1 {
		t.Fatalf("profile pools: %v", res.Rows)
	}

	// Failed statements record status 'error'.
	s2 := db.NewSession()
	defer s2.Close()
	if _, err := s2.Execute(`INSERT INTO sales VALUES (1)`); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	res = db.MustExecute(`SELECT COUNT(*) FROM v_monitor.query_profiles WHERE status = 'error'`)
	if res.Rows[0][0].I != 1 {
		t.Fatalf("error profiles = %v", res.Rows)
	}
}

// TestSessionsTable: open sessions appear with their pool and statement
// counters; closed sessions disappear.
func TestSessionsTable(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 4)
	db.MustExecute(`CREATE RESOURCE POOL etl`)
	a := db.NewSession()
	defer a.Close()
	b := db.NewSession()
	if _, err := b.Execute(`SET RESOURCE POOL etl`); err != nil {
		t.Fatal(err)
	}
	res, err := a.Execute(`SELECT session_id, pool, in_txn FROM v_monitor.sessions ORDER BY session_id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("sessions = %v", res.Rows)
	}
	if res.Rows[0][1].S != "general" || res.Rows[1][1].S != "etl" {
		t.Fatalf("session pools = %v", res.Rows)
	}
	b.Close()
	res, err = a.Execute(`SELECT COUNT(*) FROM v_monitor.sessions`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1 {
		t.Fatalf("sessions after close = %v", res.Rows)
	}
}

// TestPoolConstrainsAdmission: a MAXCONCURRENCY 1 pool with a short queue
// timeout rejects the second concurrent statement, while general stays
// unaffected — SET RESOURCE POOL demonstrably constrains admission.
func TestPoolConstrainsAdmission(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 8)
	seedSales(t, db, 10)
	db.MustExecute(`CREATE RESOURCE POOL tiny MAXCONCURRENCY 1 QUEUETIMEOUT 20`)

	hold, err := db.Governor().AdmitPoolBytes(t.Context(), "tiny", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()

	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(`SET RESOURCE POOL tiny`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`SELECT COUNT(*) FROM sales`); !errors.Is(err, resmgr.ErrQueueTimeout) {
		t.Fatalf("expected queue timeout on saturated pool, got %v", err)
	}
	// DML admits through the pool too.
	if _, err := s.Execute(`INSERT INTO sales VALUES (100, 1, 1.0)`); !errors.Is(err, resmgr.ErrQueueTimeout) {
		t.Fatalf("expected queue timeout for DML, got %v", err)
	}
	// The general pool still has slots: a fresh session is unaffected.
	g := db.NewSession()
	defer g.Close()
	if _, err := g.Execute(`SELECT COUNT(*) FROM sales`); err != nil {
		t.Fatalf("general pool should admit: %v", err)
	}
	// System tables bypass admission: monitoring works while saturated.
	if _, err := s.Execute(`SELECT name, running FROM v_monitor.resource_pools`); err != nil {
		t.Fatalf("v_monitor must bypass admission: %v", err)
	}
}

// TestDMLStatsReported: DML results carry queue-wait and wall-time stats
// like SELECTs (regression for the SELECT-only stats gap).
func TestDMLStatsReported(t *testing.T) {
	db := openGovernedDB(t, 1, 64<<20, 4)
	seedSales(t, db, 10)
	res := db.MustExecute(`INSERT INTO sales VALUES (1000, 1, 2.0)`)
	if res.Stats.WallTime <= 0 || res.Stats.Rows != 1 {
		t.Fatalf("DML stats = %+v", res.Stats)
	}
	res = db.MustExecute(`DELETE FROM sales WHERE sale_id = 1000`)
	if res.Stats.WallTime <= 0 {
		t.Fatalf("DELETE stats = %+v", res.Stats)
	}
}

// TestVirtualJoinsAndDefaultPool: system tables join each other; the
// DefaultPool option routes new sessions.
func TestVirtualJoinsAndDefaultPool(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), DefaultPool: "svc", MemPoolBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Options.DefaultPool bootstraps the pool at Open; ALTER tunes it.
	db.MustExecute(`ALTER RESOURCE POOL svc MAXCONCURRENCY 2`)
	s := db.NewSession()
	defer s.Close()
	res, err := s.Execute(`SELECT p.name, s.session_id FROM v_monitor.resource_pools p
		JOIN v_monitor.sessions s ON p.name = s.pool`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "svc" {
		t.Fatalf("join rows = %v", res.Rows)
	}
	// Aggregation over a virtual table.
	res, err = s.Execute(`SELECT COUNT(*), MAX(grantsize) FROM v_monitor.resource_pools`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 2 {
		t.Fatalf("agg rows = %v", res.Rows)
	}
}

// TestProfilesOnMultiNode: profiles and pools work on a simulated cluster
// and v_monitor queries run on the coordinator only.
func TestProfilesOnMultiNode(t *testing.T) {
	db := openGovernedDB(t, 3, 64<<20, 4)
	db.MustExecute(`CREATE TABLE kv (k INT, v INT)`)
	db.MustExecute(`CREATE PROJECTION kv_super ON kv (k, v) ORDER BY k SEGMENTED BY HASH(k)`)
	for i := 0; i < 5; i++ {
		db.MustExecute(fmt.Sprintf(`INSERT INTO kv VALUES (%d, %d)`, i, i*i))
	}
	if _, err := db.Execute(`SELECT SUM(v) FROM kv`); err != nil {
		t.Fatal(err)
	}
	res := db.MustExecute(`SELECT COUNT(*) FROM v_monitor.query_profiles`)
	if res.Rows[0][0].I < 6 {
		t.Fatalf("profiles on cluster = %v", res.Rows)
	}
	// Mixed system/user joins are rejected on multi-node clusters.
	_, err := db.Execute(`SELECT * FROM kv JOIN v_monitor.sessions s ON kv.k = s.session_id`)
	if err == nil || !strings.Contains(err.Error(), "system tables") {
		t.Fatalf("mixed join error = %v", err)
	}
}

// TestDropDefaultPoolFallsBackForNewSessions: dropping the configured
// default pool must not break sessions opened afterwards.
func TestDropDefaultPoolFallsBackForNewSessions(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), DefaultPool: "etl", MemPoolBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExecute(`CREATE TABLE t (a INT)`)
	db.MustExecute(`CREATE PROJECTION t_super ON t (a) ORDER BY a`)
	db.MustExecute(`DROP RESOURCE POOL etl`)
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatalf("new session after dropping the default pool: %v", err)
	}
	if s.Pool() != "" {
		t.Fatalf("new session pool = %q, want general", s.Pool())
	}
}
