// ANALYZE_STATISTICS: column statistics collection (paper §6.2 — the
// cost-based optimizer is driven by per-column histograms and distinct
// counts gathered on demand). The statement scans the table through the
// normal executor path — ROS containers plus the WOS at the current
// snapshot epoch, admission-controlled like any SELECT — feeds every value
// through a stats.Builder, and persists the resulting ColumnStats in the
// catalog next to the table so they survive restart.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/sql"
	"repro/internal/stats"
)

// resolveAnalyzeTarget splits 'table' / 'table.column' against the catalog.
func (db *Database) resolveAnalyzeTarget(target string) (table, column string, err error) {
	table = target
	if _, terr := db.cat.Table(table); terr != nil {
		if i := strings.LastIndex(target, "."); i > 0 {
			table, column = target[:i], target[i+1:]
		}
	}
	if db.cat.Virtual(table) != nil {
		return "", "", fmt.Errorf("core: cannot analyze system table %q", table)
	}
	if _, terr := db.cat.Table(table); terr != nil {
		return "", "", terr
	}
	return table, column, nil
}

// execAnalyze implements ANALYZE_STATISTICS('table'[.column][, buckets]).
func (db *Database) execAnalyze(ctx context.Context, st *sql.AnalyzeStmt) (*Result, error) {
	table, column, err := db.resolveAnalyzeTarget(st.Target)
	if err != nil {
		return nil, err
	}
	t, err := db.cat.Table(table)
	if err != nil {
		return nil, err
	}
	cols := make([]int, 0, t.Schema.Len())
	if column != "" {
		i := t.Schema.ColIndex(column)
		if i < 0 {
			return nil, fmt.Errorf("core: table %q has no column %q", table, column)
		}
		cols = append(cols, i)
	} else {
		for i := 0; i < t.Schema.Len(); i++ {
			cols = append(cols, i)
		}
	}
	// Scan the target columns through the normal executor path: the plan
	// reads ROS+WOS at the current snapshot, runs distributed across up
	// nodes, and admits against the session's resource pool like a SELECT.
	q := &optimizer.LogicalQuery{
		From:  []optimizer.TableRef{{Table: t, Alias: t.Name}},
		Limit: -1,
	}
	for _, c := range cols {
		col := t.Schema.Col(c)
		q.SelectExprs = append(q.SelectExprs, expr.NewColRef(c, col.Typ, col.Name))
		q.SelectNames = append(q.SelectNames, col.Name)
	}
	res, err := db.cluster.RunCtx(ctx, q, optimizer.PlanOpts{Parallelism: db.opts.Parallelism, ForceParallel: db.opts.ForceParallel})
	if err != nil {
		return nil, err
	}
	buckets := int(st.Buckets)
	if buckets <= 0 {
		buckets = db.opts.StatsBuckets
	}
	builders := make([]*stats.Builder, len(cols))
	for i, c := range cols {
		builders[i] = stats.NewBuilder(t.Schema.Col(c).Name, t.Schema.Col(c).Typ)
	}
	for _, row := range res.Rows {
		for i := range builders {
			builders[i].Add(row[i])
		}
	}
	out := make([]*stats.ColumnStats, len(builders))
	for i, b := range builders {
		out[i] = b.Build(buckets)
	}
	if err := db.cat.SetTableStats(table, out); err != nil {
		return nil, err
	}
	// Fresh statistics bumped the stats epoch; retire cached plans eagerly
	// so v_monitor.plan_cache reflects the invalidation immediately.
	db.sweepPlans()
	rows := int64(len(res.Rows))
	return &Result{
		RowsAffected: rows,
		Message:      fmt.Sprintf("ANALYZE_STATISTICS %s (%d rows, %d columns)", st.Target, rows, len(out)),
		Stats:        res.Stats,
	}, nil
}
