package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resmgr"
)

func openGovernedDB(t testing.TB, nodes int, pool int64, conc int) *Database {
	t.Helper()
	db, err := Open(Options{
		Dir:            t.TempDir(),
		Nodes:          nodes,
		MemPoolBytes:   pool,
		MaxConcurrency: conc,
		TempDir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestQueryStatsReported checks the governor accounts a simple statement:
// rows flow into the grant and the pool fully drains afterwards.
func TestQueryStatsReported(t *testing.T) {
	db := openGovernedDB(t, 1, 32<<20, 2)
	setupSales(t, db, 500)
	res := db.MustExecute(`SELECT cust, COUNT(*) AS n FROM sales GROUP BY cust ORDER BY cust`)
	if res.Stats.Rows != int64(len(res.Rows)) {
		t.Fatalf("stats rows = %d, result rows = %d", res.Stats.Rows, len(res.Rows))
	}
	st := db.Governor().Stats()
	if st.Admitted == 0 {
		t.Fatalf("no admissions recorded: %+v", st)
	}
	if st.Running != 0 || st.InUseBytes != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
}

// TestGrantReleasedOnQueryError runs a statement that fails after admission
// (COUNT DISTINCT without co-located grouping on a multi-node cluster) and
// checks the grant went back to the pool.
func TestGrantReleasedOnQueryError(t *testing.T) {
	db := openGovernedDB(t, 3, 32<<20, 2)
	setupSales(t, db, 300)
	_, err := db.Execute(`SELECT COUNT(DISTINCT price) AS d FROM sales`)
	if err == nil {
		t.Fatal("expected distributed COUNT(DISTINCT) to fail")
	}
	st := db.Governor().Stats()
	if st.Admitted == 0 {
		t.Fatalf("query should fail after admission, not before: %+v", st)
	}
	if st.Running != 0 || st.InUseBytes != 0 {
		t.Fatalf("grant leaked on error: %+v", st)
	}
}

// TestExecuteContextPreCanceled: a dead context never reaches execution.
func TestExecuteContextPreCanceled(t *testing.T) {
	db := openGovernedDB(t, 1, 32<<20, 2)
	setupSales(t, db, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecuteContext(ctx, `SELECT COUNT(*) AS n FROM sales`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAdmissionQueueCancelAndDrain saturates a 1-slot governor with a slow
// query, cancels a queued one, then verifies the queue advances and the pool
// drains — all race-enabled.
func TestAdmissionQueueCancelAndDrain(t *testing.T) {
	db := openGovernedDB(t, 1, 8<<20, 1)
	setupSales(t, db, 20_000)
	gov := db.Governor()

	// Hold the only slot directly so queueing below is deterministic.
	hold, err := gov.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	qctx, qcancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := db.ExecuteContext(qctx, `SELECT SUM(price) AS s FROM sales`)
		queuedErr <- err
	}()
	for gov.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	qcancel()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued query err = %v, want context.Canceled", err)
	}

	// A second queued query must still be admitted once the slot frees.
	var wg sync.WaitGroup
	wg.Add(1)
	var res *Result
	go func() {
		defer wg.Done()
		r, err := db.ExecuteContext(context.Background(), `SELECT COUNT(*) AS n FROM sales`)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
	}()
	for gov.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	hold.Release()
	wg.Wait()
	if res == nil || len(res.Rows) != 1 || res.Rows[0][0].I != 20_000 {
		t.Fatalf("queued query result wrong: %+v", res)
	}
	if res.Stats.QueueWait <= 0 {
		t.Fatalf("expected queue wait > 0, got %v", res.Stats.QueueWait)
	}
	st := gov.Stats()
	if st.Running != 0 || st.InUseBytes != 0 || st.Waiting != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
}

// TestConstrainedPoolConcurrentQueries runs 8 simultaneous clients against a
// 32MB/2-slot governor: all must complete correctly and the excess must
// observably queue. Both slots are pre-held until all 8 are enqueued so the
// queueing is deterministic on any machine (a single-CPU box otherwise runs
// fast queries to completion back-to-back with no overlap).
func TestConstrainedPoolConcurrentQueries(t *testing.T) {
	db := openGovernedDB(t, 1, 32<<20, 2)
	setupSales(t, db, 5_000)
	gov := db.Governor()
	holdA, err := gov.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	holdB, err := gov.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	waits := make([]time.Duration, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := db.ExecuteContext(context.Background(),
				`SELECT cust, SUM(price) AS s FROM sales GROUP BY cust ORDER BY cust`)
			if err != nil {
				t.Error(err)
				return
			}
			if len(res.Rows) != 10 {
				t.Errorf("client %d: got %d groups, want 10", i, len(res.Rows))
			}
			waits[i] = res.Stats.QueueWait
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for gov.Stats().Waiting != 8 {
		if time.Now().After(deadline) {
			t.Fatalf("clients never queued: %+v", gov.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	holdA.Release()
	holdB.Release()
	wg.Wait()
	st := gov.Stats()
	if st.PeakRunning > 2 {
		t.Fatalf("concurrency limit violated: %+v", st)
	}
	if st.Queued != 8 || st.TotalQueueWait <= 0 {
		t.Fatalf("expected queueing under 8 clients / 2 slots: %+v", st)
	}
	for i, w := range waits {
		if w <= 0 {
			t.Fatalf("client %d reported no queue wait", i)
		}
	}
	if st.Running != 0 || st.InUseBytes != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
}

// TestDefaultOptionsAreGoverned guards the embedded path: a database opened
// with zero resource options still gets a (generous) default governor, and
// historical queries flow through it too.
func TestDefaultOptionsAreGoverned(t *testing.T) {
	db := openTestDB(t, 1, 0)
	setupSales(t, db, 100)
	res := db.MustExecute(`SELECT COUNT(*) AS n FROM sales`)
	if res.Rows[0][0].I != 100 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Stats.Rows == 0 {
		t.Fatalf("expected stats on default-governed db: %+v", res.Stats)
	}
	if _, err := db.QueryAt(`SELECT COUNT(*) AS n FROM sales`, db.Txns().Epochs.ReadEpoch()); err != nil {
		t.Fatal(err)
	}
	if got := db.Governor().Config().PoolBytes; got != resmgr.DefaultPoolBytes {
		t.Fatalf("default pool = %d, want %d", got, resmgr.DefaultPoolBytes)
	}
}

// TestPoolParallelismDrivesParallelPlan checks the per-pool PARALLELISM
// knob threads through admission into planning: a statement admitted on a
// PARALLELISM 4 pool plans parallel shapes even though the engine default
// is serial, and the general pool stays serial. ForceParallel bypasses the
// cardinality gate (the fixture is tiny).
func TestPoolParallelismDrivesParallelPlan(t *testing.T) {
	db, err := Open(Options{
		Dir:           t.TempDir(),
		TempDir:       t.TempDir(),
		MemPoolBytes:  64 << 20,
		ForceParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupSales(t, db, 500)
	db.MustExecute(`CREATE RESOURCE POOL px PARALLELISM 4`)
	sess := db.NewSession()
	defer sess.Close()
	if _, err := sess.Execute(`SET RESOURCE POOL px`); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Execute(`EXPLAIN SELECT DISTINCT cust FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Explain, "parallel distinct") {
		t.Errorf("pool PARALLELISM 4 did not produce a parallel plan:\n%s", res.Explain)
	}
	// Same statement on the general pool (engine default: serial).
	res2 := db.MustExecute(`EXPLAIN SELECT DISTINCT cust FROM sales`)
	if strings.Contains(res2.Explain, "parallel distinct") {
		t.Errorf("general pool should stay serial:\n%s", res2.Explain)
	}
	// The parallel statement still returns correct rows and the pool knob
	// shows in v_monitor.resource_pools.
	rows, err := sess.Execute(`SELECT cust FROM sales GROUP BY cust ORDER BY cust`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 10 {
		t.Fatalf("rows = %d", len(rows.Rows))
	}
	mon := db.MustExecute(`SELECT name, parallelism FROM v_monitor.resource_pools WHERE name = 'px'`)
	if len(mon.Rows) != 1 || mon.Rows[0][1].I != 4 {
		t.Errorf("resource_pools parallelism = %v", mon.Rows)
	}
	// ALTER adjusts it; persistence is covered by the pool-restore tests.
	db.MustExecute(`ALTER RESOURCE POOL px PARALLELISM 2`)
	mon = db.MustExecute(`SELECT parallelism FROM v_monitor.resource_pools WHERE name = 'px'`)
	if len(mon.Rows) != 1 || mon.Rows[0][0].I != 2 {
		t.Errorf("after ALTER, parallelism = %v", mon.Rows)
	}
}
