package server

import (
	"bufio"
	stdbin "encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/encoding"
	"repro/internal/types"
	"repro/internal/vector"
)

// Client speaks the line protocol; it is the reference implementation for
// the wire format and the harness for the server tests and benchmarks.
type Client struct {
	conn net.Conn
	br   *bufio.Reader

	bytesRead atomic.Int64 // wire bytes received, pre-buffering

	reqMu   sync.Mutex // one request/response exchange at a time
	writeMu sync.Mutex // raw writes (Cancel interleaves with Exec's write)
}

// countingConn counts bytes as they arrive off the socket, underneath the
// client's read buffer, so text/binary wire sizes compare honestly.
type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// Result is one statement's parsed reply.
type Result struct {
	// Message is the OK payload for row-less statements.
	Message string
	// Cols and Rows carry a SELECT's result set (string-typed; the wire
	// protocol is text).
	Cols []string
	Rows [][]string
	// QueryID is the engine-assigned admission id of the statement,
	// joinable against v_monitor.query_profiles and the Data Collector
	// tables (0 for statements that bypassed admission).
	QueryID int64
	// QueueWait is how long the statement sat in the admission queue.
	QueueWait time.Duration
	// SpilledBytes counts operator externalizations during the statement.
	SpilledBytes int64
	// WallTime is the statement's server-side execution wall clock.
	WallTime time.Duration
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{}
	c.conn = countingConn{Conn: conn, n: &c.bytesRead}
	// 64KB is plenty: ReadString accumulates longer lines dynamically and
	// binary frames stream through io.ReadFull, so the buffer size only
	// bounds syscall batching, not frame size.
	c.br = bufio.NewReaderSize(c.conn, 64<<10)
	return c, nil
}

// BytesRead reports the total wire bytes this client has received.
func (c *Client) BytesRead() int64 { return c.bytesRead.Load() }

// Format negotiates the session's result frame: "binary" or "text".
func (c *Client) Format(mode string) error {
	_, err := c.Meta("\\format " + mode)
	return err
}

// Close sends \q and closes the connection.
func (c *Client) Close() error {
	c.writeMu.Lock()
	fmt.Fprintf(c.conn, "\\q\n")
	c.writeMu.Unlock()
	return c.conn.Close()
}

func (c *Client) send(text string) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err := c.conn.Write([]byte(text))
	return err
}

// Exec runs one statement (';' appended if missing) and parses the reply.
// Safe for one statement at a time per client; use one client per goroutine
// for concurrent load.
func (c *Client) Exec(sqlText string) (*Result, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	t := strings.TrimSpace(sqlText)
	if !strings.HasSuffix(t, ";") {
		t += ";"
	}
	if err := c.send(t + "\n"); err != nil {
		return nil, err
	}
	return c.readReply()
}

// Cancel aborts the statement currently executing on this session. It
// deliberately bypasses the request lock: its purpose is to overtake a
// running Exec. The cancelled Exec returns the server's ERR reply.
func (c *Client) Cancel() error {
	return c.send("\\cancel\n")
}

// Meta sends a meta command that produces a single OK/ERR line
// (\stats, \pin, \unpin).
func (c *Client) Meta(cmd string) (*Result, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if err := c.send(cmd + "\n"); err != nil {
		return nil, err
	}
	return c.readReply()
}

func (c *Client) readLine() (string, error) {
	l, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(l, "\n"), nil
}

func (c *Client) readReply() (*Result, error) {
	head, err := c.readLine()
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasPrefix(head, "ERR "):
		return nil, fmt.Errorf("server: %s", head[4:])
	case strings.HasPrefix(head, "OK"):
		res := &Result{Message: strings.TrimPrefix(strings.TrimPrefix(head, "OK"), " ")}
		res.parseOKStats()
		return res, nil
	case strings.HasPrefix(head, "ROWS "):
		parts := strings.Fields(head)
		if len(parts) != 6 {
			return nil, fmt.Errorf("server: malformed header %q", head)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("server: malformed row count %q", head)
		}
		queryID, _ := strconv.ParseInt(parts[2], 10, 64)
		waitUS, _ := strconv.ParseInt(parts[3], 10, 64)
		spilled, _ := strconv.ParseInt(parts[4], 10, 64)
		wallUS, _ := strconv.ParseInt(parts[5], 10, 64)
		res := &Result{
			QueryID:      queryID,
			QueueWait:    time.Duration(waitUS) * time.Microsecond,
			SpilledBytes: spilled,
			WallTime:     time.Duration(wallUS) * time.Microsecond,
		}
		hdr, err := c.readLine()
		if err != nil {
			return nil, err
		}
		res.Cols = splitFields(hdr)
		res.Rows = make([][]string, 0, n)
		for i := 0; i < n; i++ {
			l, err := c.readLine()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, splitFields(l))
		}
		tail, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if tail != "DONE" {
			return nil, fmt.Errorf("server: missing DONE, got %q", tail)
		}
		return res, nil
	case strings.HasPrefix(head, "BROWS "):
		return c.readBinaryRows(head)
	default:
		return nil, fmt.Errorf("server: unexpected reply %q", head)
	}
}

// readBinaryRows parses a columnar BROWS frame: header, names, type names,
// then length-prefixed encoding blocks (ncols per row chunk) until the
// advertised row count is reached. Values decode back into the same strings
// the text protocol would have carried.
func (c *Client) readBinaryRows(head string) (*Result, error) {
	parts := strings.Fields(head)
	if len(parts) != 7 {
		return nil, fmt.Errorf("server: malformed header %q", head)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("server: malformed row count %q", head)
	}
	ncols, err := strconv.Atoi(parts[2])
	if err != nil || ncols < 1 {
		return nil, fmt.Errorf("server: malformed column count %q", head)
	}
	queryID, _ := strconv.ParseInt(parts[3], 10, 64)
	waitUS, _ := strconv.ParseInt(parts[4], 10, 64)
	spilled, _ := strconv.ParseInt(parts[5], 10, 64)
	wallUS, _ := strconv.ParseInt(parts[6], 10, 64)
	res := &Result{
		QueryID:      queryID,
		QueueWait:    time.Duration(waitUS) * time.Microsecond,
		SpilledBytes: spilled,
		WallTime:     time.Duration(wallUS) * time.Microsecond,
	}
	hdr, err := c.readLine()
	if err != nil {
		return nil, err
	}
	res.Cols = splitFields(hdr)
	typeLine, err := c.readLine()
	if err != nil {
		return nil, err
	}
	typs := make([]types.Type, 0, ncols)
	for _, tn := range strings.Split(typeLine, "\t") {
		t, err := types.ParseType(tn)
		if err != nil {
			return nil, fmt.Errorf("server: bad column type in BROWS frame: %v", err)
		}
		typs = append(typs, t)
	}
	if len(typs) != ncols {
		return nil, fmt.Errorf("server: BROWS frame has %d types for %d columns", len(typs), ncols)
	}
	res.Rows = make([][]string, 0, n)
	for len(res.Rows) < n {
		cols := make([]*vector.Vector, ncols)
		for j := 0; j < ncols; j++ {
			var lenbuf [4]byte
			if _, err := io.ReadFull(c.br, lenbuf[:]); err != nil {
				return nil, err
			}
			blob := make([]byte, stdbin.BigEndian.Uint32(lenbuf[:]))
			if _, err := io.ReadFull(c.br, blob); err != nil {
				return nil, err
			}
			v, err := encoding.DecodeBlock(blob, typs[j], false)
			if err != nil {
				return nil, fmt.Errorf("server: bad column block: %v", err)
			}
			cols[j] = v
		}
		nr := cols[0].Len()
		for j, v := range cols {
			if v.Len() != nr {
				return nil, fmt.Errorf("server: ragged BROWS chunk (col %d has %d rows, col 0 has %d)", j, v.Len(), nr)
			}
		}
		if nr == 0 || len(res.Rows)+nr > n {
			return nil, fmt.Errorf("server: BROWS chunk overruns advertised row count %d", n)
		}
		for i := 0; i < nr; i++ {
			row := make([]string, ncols)
			for j, v := range cols {
				row[j] = v.ValueAt(i).String()
			}
			res.Rows = append(res.Rows, row)
		}
	}
	tail, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if tail != "DONE" {
		return nil, fmt.Errorf("server: missing DONE, got %q", tail)
	}
	return res, nil
}

// parseOKStats extracts the DML stats suffix
// "[query_id=Q wait_us=N spilled=M wall_us=W]" from an OK message into
// QueryID/QueueWait/SpilledBytes/WallTime, trimming it from Message.
func (r *Result) parseOKStats() {
	msg := r.Message
	i := strings.LastIndex(msg, " [query_id=")
	if i < 0 || !strings.HasSuffix(msg, "]") {
		return
	}
	var queryID, waitUS, spilled, wallUS int64
	if _, err := fmt.Sscanf(msg[i+1:], "[query_id=%d wait_us=%d spilled=%d wall_us=%d]",
		&queryID, &waitUS, &spilled, &wallUS); err != nil {
		return
	}
	r.QueryID = queryID
	r.QueueWait = time.Duration(waitUS) * time.Microsecond
	r.SpilledBytes = spilled
	r.WallTime = time.Duration(wallUS) * time.Microsecond
	r.Message = msg[:i]
}

func splitFields(l string) []string {
	raw := strings.Split(l, "\t")
	out := make([]string, len(raw))
	for i, f := range raw {
		out[i] = unescapeField(f)
	}
	return out
}
