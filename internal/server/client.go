package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client speaks the line protocol; it is the reference implementation for
// the wire format and the harness for the server tests and benchmarks.
type Client struct {
	conn net.Conn
	br   *bufio.Reader

	reqMu   sync.Mutex // one request/response exchange at a time
	writeMu sync.Mutex // raw writes (Cancel interleaves with Exec's write)
}

// Result is one statement's parsed reply.
type Result struct {
	// Message is the OK payload for row-less statements.
	Message string
	// Cols and Rows carry a SELECT's result set (string-typed; the wire
	// protocol is text).
	Cols []string
	Rows [][]string
	// QueryID is the engine-assigned admission id of the statement,
	// joinable against v_monitor.query_profiles and the Data Collector
	// tables (0 for statements that bypassed admission).
	QueryID int64
	// QueueWait is how long the statement sat in the admission queue.
	QueueWait time.Duration
	// SpilledBytes counts operator externalizations during the statement.
	SpilledBytes int64
	// WallTime is the statement's server-side execution wall clock.
	WallTime time.Duration
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReaderSize(conn, 1<<20)}, nil
}

// Close sends \q and closes the connection.
func (c *Client) Close() error {
	c.writeMu.Lock()
	fmt.Fprintf(c.conn, "\\q\n")
	c.writeMu.Unlock()
	return c.conn.Close()
}

func (c *Client) send(text string) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err := c.conn.Write([]byte(text))
	return err
}

// Exec runs one statement (';' appended if missing) and parses the reply.
// Safe for one statement at a time per client; use one client per goroutine
// for concurrent load.
func (c *Client) Exec(sqlText string) (*Result, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	t := strings.TrimSpace(sqlText)
	if !strings.HasSuffix(t, ";") {
		t += ";"
	}
	if err := c.send(t + "\n"); err != nil {
		return nil, err
	}
	return c.readReply()
}

// Cancel aborts the statement currently executing on this session. It
// deliberately bypasses the request lock: its purpose is to overtake a
// running Exec. The cancelled Exec returns the server's ERR reply.
func (c *Client) Cancel() error {
	return c.send("\\cancel\n")
}

// Meta sends a meta command that produces a single OK/ERR line
// (\stats, \pin, \unpin).
func (c *Client) Meta(cmd string) (*Result, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if err := c.send(cmd + "\n"); err != nil {
		return nil, err
	}
	return c.readReply()
}

func (c *Client) readLine() (string, error) {
	l, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(l, "\n"), nil
}

func (c *Client) readReply() (*Result, error) {
	head, err := c.readLine()
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasPrefix(head, "ERR "):
		return nil, fmt.Errorf("server: %s", head[4:])
	case strings.HasPrefix(head, "OK"):
		res := &Result{Message: strings.TrimPrefix(strings.TrimPrefix(head, "OK"), " ")}
		res.parseOKStats()
		return res, nil
	case strings.HasPrefix(head, "ROWS "):
		parts := strings.Fields(head)
		if len(parts) != 6 {
			return nil, fmt.Errorf("server: malformed header %q", head)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("server: malformed row count %q", head)
		}
		queryID, _ := strconv.ParseInt(parts[2], 10, 64)
		waitUS, _ := strconv.ParseInt(parts[3], 10, 64)
		spilled, _ := strconv.ParseInt(parts[4], 10, 64)
		wallUS, _ := strconv.ParseInt(parts[5], 10, 64)
		res := &Result{
			QueryID:      queryID,
			QueueWait:    time.Duration(waitUS) * time.Microsecond,
			SpilledBytes: spilled,
			WallTime:     time.Duration(wallUS) * time.Microsecond,
		}
		hdr, err := c.readLine()
		if err != nil {
			return nil, err
		}
		res.Cols = splitFields(hdr)
		res.Rows = make([][]string, 0, n)
		for i := 0; i < n; i++ {
			l, err := c.readLine()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, splitFields(l))
		}
		tail, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if tail != "DONE" {
			return nil, fmt.Errorf("server: missing DONE, got %q", tail)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("server: unexpected reply %q", head)
	}
}

// parseOKStats extracts the DML stats suffix
// "[query_id=Q wait_us=N spilled=M wall_us=W]" from an OK message into
// QueryID/QueueWait/SpilledBytes/WallTime, trimming it from Message.
func (r *Result) parseOKStats() {
	msg := r.Message
	i := strings.LastIndex(msg, " [query_id=")
	if i < 0 || !strings.HasSuffix(msg, "]") {
		return
	}
	var queryID, waitUS, spilled, wallUS int64
	if _, err := fmt.Sscanf(msg[i+1:], "[query_id=%d wait_us=%d spilled=%d wall_us=%d]",
		&queryID, &waitUS, &spilled, &wallUS); err != nil {
		return
	}
	r.QueryID = queryID
	r.QueueWait = time.Duration(waitUS) * time.Microsecond
	r.SpilledBytes = spilled
	r.WallTime = time.Duration(wallUS) * time.Microsecond
	r.Message = msg[:i]
}

func splitFields(l string) []string {
	raw := strings.Split(l, "\t")
	out := make([]string, len(raw))
	for i, f := range raw {
		out[i] = unescapeField(f)
	}
	return out
}
