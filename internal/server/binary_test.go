package server

import (
	"fmt"
	"strings"
	"testing"
)

// TestBinaryFormatRoundTrip verifies binary-mode results decode to exactly
// the rows the text protocol carries, across chunk boundaries (the fixture
// exceeds binaryBlockRows) and for NULL-bearing and empty result sets.
func TestBinaryFormatRoundTrip(t *testing.T) {
	srv, _ := startServer(t, 10_000, 32<<20, 4)
	text := dial(t, srv)
	bin := dial(t, srv)
	if err := bin.Format("binary"); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT sale_id, cust, price FROM sales ORDER BY sale_id`,
		`SELECT cust, COUNT(*), SUM(price) FROM sales GROUP BY cust ORDER BY cust`,
		`SELECT sale_id FROM sales WHERE sale_id < 0`,
		`SELECT SUM(price) FROM sales WHERE sale_id < 0`, // NULL aggregate
	}
	for _, q := range queries {
		want, err := text.Exec(q)
		if err != nil {
			t.Fatalf("%s (text): %v", q, err)
		}
		got, err := bin.Exec(q)
		if err != nil {
			t.Fatalf("%s (binary): %v", q, err)
		}
		if strings.Join(got.Cols, "|") != strings.Join(want.Cols, "|") {
			t.Fatalf("%s: cols %v != %v", q, got.Cols, want.Cols)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d rows != %d rows", q, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			if strings.Join(got.Rows[i], "|") != strings.Join(want.Rows[i], "|") {
				t.Fatalf("%s row %d: %v != %v", q, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

// TestBinaryFormatBytesPerRow asserts the point of the columnar frame: the
// sorted sale_id and low-cardinality cust columns compress on the wire, so
// binary mode moves fewer bytes per row than the text frame for the same
// multi-column scan.
func TestBinaryFormatBytesPerRow(t *testing.T) {
	srv, _ := startServer(t, 20_000, 32<<20, 4)
	const q = `SELECT sale_id, cust, price FROM sales ORDER BY sale_id`

	text := dial(t, srv)
	before := text.BytesRead()
	if _, err := text.Exec(q); err != nil {
		t.Fatal(err)
	}
	textBytes := text.BytesRead() - before

	bin := dial(t, srv)
	if err := bin.Format("binary"); err != nil {
		t.Fatal(err)
	}
	before = bin.BytesRead()
	if _, err := bin.Exec(q); err != nil {
		t.Fatal(err)
	}
	binBytes := bin.BytesRead() - before

	if binBytes >= textBytes {
		t.Fatalf("binary frame (%d bytes) not smaller than text (%d bytes)", binBytes, textBytes)
	}
	t.Logf("text %d bytes, binary %d bytes (%.1fx smaller)", textBytes, binBytes,
		float64(textBytes)/float64(binBytes))
}

// TestFormatNegotiation covers the \format meta command: querying the mode,
// switching back to text, and rejecting unknown formats.
func TestFormatNegotiation(t *testing.T) {
	srv, _ := startServer(t, 10, 32<<20, 2)
	c := dial(t, srv)

	res, err := c.Meta(`\format`)
	if err != nil || res.Message != "format text" {
		t.Fatalf("default format: %v %v", res, err)
	}
	if err := c.Format("binary"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Meta(`\format`)
	if err != nil || res.Message != "format binary" {
		t.Fatalf("after negotiation: %v %v", res, err)
	}
	if err := c.Format("text"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`SELECT COUNT(*) FROM sales`); err != nil {
		t.Fatalf("text mode after switch-back: %v", err)
	}
	if err := c.Format("csv"); err == nil || !strings.Contains(err.Error(), "unknown result format") {
		t.Fatalf("bad format accepted: %v", err)
	}
}

// TestPreparedStatementsOverWire drives PREPARE/EXECUTE/DEALLOCATE through
// the TCP protocol, including the error replies for unknown names and
// argument arity mismatches.
func TestPreparedStatementsOverWire(t *testing.T) {
	srv, _ := startServer(t, 1_000, 32<<20, 2)
	c := dial(t, srv)

	if _, err := c.Exec(`PREPARE pt AS SELECT sale_id, price FROM sales WHERE cust = $1 AND sale_id < $2 ORDER BY sale_id`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`EXECUTE pt(3, 50)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0] >= "50" && len(row[0]) >= 2 {
			t.Fatalf("row outside predicate: %v", row)
		}
	}
	direct, err := c.Exec(`SELECT sale_id, price FROM sales WHERE cust = 3 AND sale_id < 50 ORDER BY sale_id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(direct.Rows) {
		t.Fatalf("EXECUTE returned %d rows, ad-hoc %d", len(res.Rows), len(direct.Rows))
	}

	if _, err := c.Exec(`EXECUTE missing(1)`); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("unknown statement: %v", err)
	}
	if _, err := c.Exec(`EXECUTE pt(1)`); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("arity mismatch: %v", err)
	}
	if _, err := c.Exec(`DEALLOCATE pt`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`EXECUTE pt(3, 50)`); err == nil {
		t.Fatal("EXECUTE after DEALLOCATE succeeded")
	}

	// Prepared statements are session-scoped: a second connection cannot
	// execute this session's statement.
	if _, err := c.Exec(`PREPARE pt AS SELECT COUNT(*) FROM sales WHERE cust = $1`); err != nil {
		t.Fatal(err)
	}
	other := dial(t, srv)
	if _, err := other.Exec(`EXECUTE pt(1)`); err == nil {
		t.Fatal("prepared statement leaked across sessions")
	}
}

// TestClassifyPinnedRouting checks the parser-driven classification that
// replaced prefix sniffing: on a pinned session, EXPLAIN goes through the
// session executor (plan text in an OK frame), EXECUTE reaches the
// session's prepared statements, and a plain SELECT still reads the pinned
// epoch.
func TestClassifyPinnedRouting(t *testing.T) {
	srv, db := startServer(t, 100, 32<<20, 2)
	c := dial(t, srv)

	if _, err := c.Exec(`PREPARE cnt AS SELECT COUNT(*) FROM sales WHERE cust = $1`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Meta(`\pin`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`SELECT COUNT(*) FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	pinnedCount := res.Rows[0][0]

	// New rows land in a later epoch; the pinned SELECT must not see them.
	mustExec(t, db, `INSERT INTO sales VALUES (100000, 1, 1.0)`)
	res, err = c.Exec(`SELECT COUNT(*) FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != pinnedCount {
		t.Fatalf("pinned SELECT saw new epoch: %s != %s", res.Rows[0][0], pinnedCount)
	}

	// EXPLAIN must not be routed to the pinned SELECT path.
	res, err = c.Exec(`EXPLAIN SELECT COUNT(*) FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Message == "" || !strings.Contains(res.Message, "Scan") {
		t.Fatalf("EXPLAIN reply missing plan text: %q", res.Message)
	}

	// EXECUTE must reach the session executor (prepared map lives there).
	if _, err := c.Exec(fmt.Sprintf(`EXECUTE cnt(%d)`, 1)); err != nil {
		t.Fatalf("EXECUTE on pinned session: %v", err)
	}
}
