// Package server exposes a database over TCP with a line-oriented text
// protocol, turning the embedded engine into a served, multi-client system.
// Each connection is one session (its own transaction state and optional
// pinned snapshot epoch); statements from different connections execute
// concurrently and are admission-controlled by the database's resource
// governor.
//
// Protocol, client to server (UTF-8 lines):
//
//	SELECT ...;            statements end with ';' at end of line and may
//	                       span multiple lines
//	\cancel                cancel the statement currently executing on this
//	                       session (out of band: valid mid-statement)
//	\pin                   pin the session's snapshot to the current epoch
//	\unpin                 return to READ COMMITTED latest-epoch reads
//	\format binary|text    negotiate the result-set frame for this session
//	                       (text is the default; binary sends column-encoded
//	                       BROWS frames, see below)
//	\stats                 report governor workload stats
//	\q                     close the session
//
// Server to client, one reply per statement or meta command:
//
//	ERR <message>                      statement failed
//	OK <message>                       statement succeeded, no row set
//	OK <message> [query_id=Q wait_us=N spilled=M wall_us=W]
//	                                   DML reply: the engine-assigned query id
//	                                   (joinable against v_monitor.query_profiles
//	                                   and the Data Collector tables), admission
//	                                   queue wait, spill bytes and wall-clock
//	                                   ride on the OK line
//	ROWS <n> <query-id> <queue-wait-us> <spilled-bytes> <wall-us>
//	<tab-separated column names>
//	<n tab-separated data lines>       values escape \t, \n, \r, \\
//	DONE
//
// Sessions negotiated to binary mode (\format binary) receive result sets
// as columnar frames instead of ROWS: the column values travel through the
// engine's own block encodings (RLE, delta, dictionary — paper §3.4.1), so
// low-cardinality and sorted result columns compress on the wire exactly as
// they do on disk.
//
//	BROWS <n> <ncols> <query-id> <queue-wait-us> <spilled-bytes> <wall-us>
//	<tab-separated column names>
//	<tab-separated column type names>
//	column blocks                      rows travel in chunks of at most 4096;
//	                                   each chunk is ncols blocks in column
//	                                   order, each block a 4-byte big-endian
//	                                   length followed by an encoding.Block
//	DONE
//
// Every other reply (OK, ERR) is unchanged in binary mode.
//
// Cancelling a running statement produces its ERR reply (context canceled);
// the session survives and accepts further statements.
package server

import (
	"bufio"
	"context"
	stdbin "encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/metrics"
	"repro/internal/resmgr"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// Config sets server parameters.
type Config struct {
	// Addr is the TCP listen address (e.g. ":5433"; "127.0.0.1:0" in tests).
	Addr string
	// DrainTimeout bounds how long Shutdown waits for in-flight statements
	// before cancelling them (default 5s).
	DrainTimeout time.Duration
}

// Server accepts connections and runs sessions.
type Server struct {
	db  *core.Database
	cfg Config

	ln        net.Listener
	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	connWG   sync.WaitGroup // connection handlers
	stmtWG   sync.WaitGroup // in-flight statements (drain barrier)
	draining atomic.Bool

	// Sessions counts connections accepted over the server's lifetime.
	Sessions atomic.Int64
}

// New builds a server for db.
func New(db *core.Database, cfg Config) *Server {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{db: db, cfg: cfg, baseCtx: ctx, cancelAll: cancel, conns: map[net.Conn]struct{}{}}
}

// Listen binds the configured address. Addr() is valid afterwards, so tests
// can bind port 0 and dial the chosen port.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown closes the listener, then
// returns ErrServerClosed (net/http idiom: any other error is a real
// listener failure).
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.Sessions.Add(1)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown drains the server: stop accepting, let in-flight statements
// finish, cancel whatever remains, then close every connection. The drain
// is bounded by ctx when it carries a deadline, by Config.DrainTimeout
// otherwise — a caller-supplied deadline wins over the server default.
func (s *Server) Shutdown(ctx context.Context) error {
	// The mutex orders this store against runStatement's check-then-Add, so
	// stmtWG.Wait() below cannot race a late Add.
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.stmtWG.Wait()
		close(done)
	}()
	var timeout <-chan time.Time
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		t := time.NewTimer(s.cfg.DrainTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-done:
	case <-ctx.Done():
	case <-timeout:
	}
	// Hard-cancel stragglers and unblock idle readers.
	s.cancelAll()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return nil
}

// session is one connection's state.
type session struct {
	srv  *Server
	sess *core.Session
	w    *bufio.Writer

	writeMu sync.Mutex // serializes statement replies

	cancelMu   sync.Mutex
	cancelStmt context.CancelFunc // non-nil while a statement runs

	pinned      bool
	pinnedEpoch types.Epoch
	binary      bool // \format binary: columnar BROWS result frames
}

// stmtRequest is one unit of work handed from the reader to the executor.
type stmtRequest struct {
	text    string
	meta    string // non-empty for meta commands that execute in order
	errText string // non-empty for reader-side failures to report in order
}

func (s *Server) handleConn(conn net.Conn) {
	st := &session{srv: s, sess: s.db.NewSession(), w: bufio.NewWriter(conn)}
	s.db.Logger().Infof("session_connect", "remote", conn.RemoteAddr())
	defer func() {
		st.sess.Close()
		s.db.Logger().Infof("session_disconnect", "remote", conn.RemoteAddr())
	}()

	// The reader parses lines into statements; \cancel acts immediately
	// (that is the whole point: it must overtake the running statement).
	// Everything else executes strictly in order on this goroutine.
	reqs := make(chan stmtRequest, 16)
	go func() {
		defer close(reqs)
		sc := bufio.NewScanner(conn)
		// Start small and let the scanner grow toward the 1MB statement
		// limit on demand: a fixed 1MB per connection is real memory at
		// thousands of idle connections.
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		var buf strings.Builder
		for sc.Scan() {
			line := sc.Text()
			trimmed := strings.TrimSpace(line)
			if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
				if trimmed == "\\cancel" {
					st.cancelCurrent()
					continue
				}
				if trimmed == "\\q" {
					return
				}
				reqs <- stmtRequest{meta: trimmed}
				continue
			}
			if trimmed == "" && buf.Len() == 0 {
				continue
			}
			buf.WriteString(line)
			buf.WriteString("\n")
			if strings.HasSuffix(trimmed, ";") {
				reqs <- stmtRequest{text: buf.String()}
				buf.Reset()
			}
		}
		// Surface reader failures (e.g. a line over the scanner limit)
		// instead of silently dropping the connection.
		if err := sc.Err(); err != nil {
			reqs <- stmtRequest{errText: err.Error()}
		}
	}()

	for req := range reqs {
		switch {
		case req.errText != "":
			st.reply(func() { st.line("ERR " + req.errText) })
		case req.meta != "":
			st.runMeta(req.meta)
		default:
			st.runStatement(req.text)
		}
	}
}

// cancelCurrent aborts the statement executing on this session, if any.
func (st *session) cancelCurrent() {
	st.cancelMu.Lock()
	defer st.cancelMu.Unlock()
	if st.cancelStmt != nil {
		st.cancelStmt()
	}
}

func (st *session) runMeta(cmd string) {
	switch {
	case cmd == "\\stats":
		st.reply(func() { st.line("OK " + st.srv.db.Governor().Stats().String()) })
	case cmd == "\\pin":
		st.pinned = true
		st.pinnedEpoch = st.srv.db.Txns().Epochs.ReadEpoch()
		st.reply(func() { st.line(fmt.Sprintf("OK pinned epoch %d", st.pinnedEpoch)) })
	case cmd == "\\unpin":
		st.pinned = false
		st.reply(func() { st.line("OK unpinned") })
	case cmd == "\\format" || strings.HasPrefix(cmd, "\\format "):
		switch arg := strings.TrimSpace(strings.TrimPrefix(cmd, "\\format")); arg {
		case "binary":
			st.binary = true
			st.reply(func() { st.line("OK format binary") })
		case "text":
			st.binary = false
			st.reply(func() { st.line("OK format text") })
		case "":
			mode := "text"
			if st.binary {
				mode = "binary"
			}
			st.reply(func() { st.line("OK format " + mode) })
		default:
			st.reply(func() { st.line("ERR unknown result format " + arg + " (want binary or text)") })
		}
	default:
		st.reply(func() { st.line("ERR unknown meta command " + cmd) })
	}
}

func (st *session) runStatement(text string) {
	srv := st.srv
	srv.mu.Lock()
	if srv.draining.Load() {
		srv.mu.Unlock()
		st.reply(func() { st.line("ERR server draining") })
		return
	}
	srv.stmtWG.Add(1)
	srv.mu.Unlock()
	defer srv.stmtWG.Done()

	start := time.Now()
	defer func() { metrics.ServerStatementUs.Observe(time.Since(start).Microseconds()) }()

	ctx, cancel := context.WithCancel(srv.baseCtx)
	st.cancelMu.Lock()
	st.cancelStmt = cancel
	st.cancelMu.Unlock()
	defer func() {
		st.cancelMu.Lock()
		st.cancelStmt = nil
		st.cancelMu.Unlock()
		cancel()
	}()

	var res *core.Result
	var err error
	if st.pinned && sql.Classify(text) == sql.ClassSelect {
		// The pinned path bypasses the session executor: carry the session's
		// resource pool on the context so admission still honors it.
		res, err = srv.db.QueryAtContext(resmgr.WithPool(ctx, st.sess.Pool()), text, st.pinnedEpoch)
	} else {
		res, err = st.sess.ExecuteContext(ctx, text)
	}
	if err != nil {
		st.reply(func() { st.line("ERR " + strings.ReplaceAll(err.Error(), "\n", " ")) })
		return
	}
	st.reply(func() { st.writeResult(res) })
}

// reply serializes one full response frame onto the wire.
func (st *session) reply(f func()) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	f()
	st.w.Flush()
}

func (st *session) line(l string) {
	st.w.WriteString(l)
	st.w.WriteByte('\n')
}

func (st *session) writeResult(res *core.Result) {
	if res.Schema == nil {
		msg := res.Message
		if res.Explain != "" {
			msg = strings.ReplaceAll(res.Explain, "\n", " | ")
		}
		// Row-less statements that ran under the governor (DML) surface
		// their resource stats on the OK line, as SELECTs do on ROWS.
		if res.Stats.WallTime > 0 {
			msg += fmt.Sprintf(" [query_id=%d wait_us=%d spilled=%d wall_us=%d]",
				res.Stats.QueryID, res.Stats.QueueWait.Microseconds(),
				res.Stats.SpilledBytes, res.Stats.WallTime.Microseconds())
		}
		st.line("OK " + strings.ReplaceAll(msg, "\n", " "))
		return
	}
	if st.binary {
		st.writeBinaryResult(res)
		return
	}
	st.line(fmt.Sprintf("ROWS %d %d %d %d %d", len(res.Rows), res.Stats.QueryID,
		res.Stats.QueueWait.Microseconds(), res.Stats.SpilledBytes,
		res.Stats.WallTime.Microseconds()))
	st.writeNamesLine(res)
	cells := make([]string, res.Schema.Len())
	for _, row := range res.Rows {
		for i, v := range row {
			cells[i] = escapeField(v.String())
		}
		st.line(strings.Join(cells, "\t"))
	}
	st.line("DONE")
}

func (st *session) writeNamesLine(res *core.Result) {
	names := res.Schema.Names()
	esc := make([]string, len(names))
	for i, n := range names {
		esc[i] = escapeField(n)
	}
	st.line(strings.Join(esc, "\t"))
}

// binaryBlockRows bounds one BROWS column block: chunking keeps a huge
// result from buffering as one giant block on either side of the wire.
const binaryBlockRows = 4096

// writeBinaryResult sends a result set as a columnar BROWS frame: the rows
// are pivoted into column vectors (chunked at binaryBlockRows) and each
// vector travels as one self-describing encoding block, Auto-encoded the
// same way storage blocks are.
func (st *session) writeBinaryResult(res *core.Result) {
	// Encode every block before the first header byte: an encoding failure
	// must produce a clean ERR reply, not a half-written binary frame.
	var blocks [][]byte
	for lo := 0; lo < len(res.Rows); lo += binaryBlockRows {
		hi := lo + binaryBlockRows
		if hi > len(res.Rows) {
			hi = len(res.Rows)
		}
		batch := vector.NewBatchForSchema(res.Schema, hi-lo)
		for _, row := range res.Rows[lo:hi] {
			batch.AppendRow(row)
		}
		for _, col := range batch.Cols {
			blob, err := encoding.EncodeBlock(encoding.Auto, col)
			if err != nil {
				st.line("ERR " + strings.ReplaceAll(err.Error(), "\n", " "))
				return
			}
			blocks = append(blocks, blob)
		}
	}
	st.line(fmt.Sprintf("BROWS %d %d %d %d %d %d", len(res.Rows), res.Schema.Len(),
		res.Stats.QueryID, res.Stats.QueueWait.Microseconds(), res.Stats.SpilledBytes,
		res.Stats.WallTime.Microseconds()))
	st.writeNamesLine(res)
	typs := make([]string, res.Schema.Len())
	for i := range typs {
		typs[i] = res.Schema.Col(i).Typ.String()
	}
	st.line(strings.Join(typs, "\t"))
	var lenbuf [4]byte
	for _, blob := range blocks {
		stdbin.BigEndian.PutUint32(lenbuf[:], uint32(len(blob)))
		st.w.Write(lenbuf[:])
		st.w.Write(blob)
	}
	st.line("DONE")
}

var fieldEscaper = strings.NewReplacer("\\", "\\\\", "\t", "\\t", "\n", "\\n", "\r", "\\r")
var fieldUnescaper = strings.NewReplacer("\\\\", "\\", "\\t", "\t", "\\n", "\n", "\\r", "\r")

func escapeField(s string) string   { return fieldEscaper.Replace(s) }
func unescapeField(s string) string { return fieldUnescaper.Replace(s) }

// ErrServerClosed is returned by Serve after Shutdown closes the listener,
// mirroring net/http's sentinel: it distinguishes a graceful drain from a
// real accept failure.
var ErrServerClosed = errors.New("server: closed")
