package server

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// startServer opens a governed database, seeds the sales table with n rows,
// and serves it on an ephemeral port.
func startServer(t *testing.T, n int, pool int64, conc int) (*Server, *core.Database) {
	t.Helper()
	db, err := core.Open(core.Options{
		Dir:            t.TempDir(),
		MemPoolBytes:   pool,
		MaxConcurrency: conc,
		TempDir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE sales (sale_id INT, cust INT, price FLOAT)`)
	mustExec(t, db, `CREATE PROJECTION sales_super ON sales (sale_id, cust, price)
		ORDER BY sale_id SEGMENTED BY HASH(sale_id)`)
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 10)),
			types.NewFloat(float64(i)),
		})
	}
	if err := db.Load("sales", rows, true); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{Addr: "127.0.0.1:0", DrainTimeout: 10 * time.Second})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, db
}

func mustExec(t *testing.T, db *core.Database, sqlText string) {
	t.Helper()
	if _, err := db.Execute(sqlText); err != nil {
		t.Fatal(err)
	}
}

func dial(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestEightClientsConstrainedPool is the acceptance scenario: 8 simultaneous
// clients against a 32MB pool with 2 concurrency slots. Everyone completes
// with correct results and the excess observably queues. Both slots are
// pre-held until all 8 statements are enqueued so queueing is deterministic
// even on a single-CPU machine where fast queries would otherwise never
// overlap.
func TestEightClientsConstrainedPool(t *testing.T) {
	srv, db := startServer(t, 5_000, 32<<20, 2)
	holdA, err := db.Governor().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	holdB, err := db.Governor().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	released := false
	defer func() {
		if !released {
			holdA.Release()
			holdB.Release()
		}
	}()
	var wg sync.WaitGroup
	results := make([]*Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			res, err := c.Exec(`SELECT cust, COUNT(*) AS n, SUM(price) AS s FROM sales GROUP BY cust ORDER BY cust`)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for db.Governor().Stats().Waiting != 8 {
		if time.Now().After(deadline) {
			t.Fatalf("clients never queued: %+v", db.Governor().Stats())
		}
		time.Sleep(time.Millisecond)
	}
	holdA.Release()
	holdB.Release()
	released = true
	wg.Wait()

	var sawQueueWait bool
	for i, res := range results {
		if res == nil {
			t.Fatalf("client %d got no result", i)
		}
		if len(res.Rows) != 10 {
			t.Fatalf("client %d: %d groups, want 10", i, len(res.Rows))
		}
		for g, row := range res.Rows {
			if row[0] != strconv.Itoa(g) {
				t.Fatalf("client %d group %d: key %q", i, g, row[0])
			}
			if n, _ := strconv.Atoi(row[1]); n != 500 {
				t.Fatalf("client %d group %d: count %q, want 500", i, g, row[1])
			}
		}
		if res.QueueWait > 0 {
			sawQueueWait = true
		}
	}
	if !sawQueueWait {
		t.Fatal("8 clients over 2 slots: no client reported queue wait > 0")
	}
	st := db.Governor().Stats()
	if st.PeakRunning > 2 {
		t.Fatalf("concurrency limit violated: %+v", st)
	}
	if st.Queued == 0 || st.TotalQueueWait <= 0 {
		t.Fatalf("expected observable queueing: %+v", st)
	}
	if st.Running != 0 || st.InUseBytes != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
	if srv.Sessions.Load() != 8 {
		t.Fatalf("sessions = %d, want 8", srv.Sessions.Load())
	}
}

// TestCancelRunningStatement cancels a spilling sort mid-flight: the
// statement must fail with a cancellation error and the grant must return
// to the pool while the session stays usable.
func TestCancelRunningStatement(t *testing.T) {
	srv, db := startServer(t, 150_000, 2<<20, 2)
	c := dial(t, srv)

	done := make(chan error, 1)
	go func() {
		// Tiny grant (1MB/operator) forces the sort to externalize run
		// after run; plenty of time to land the cancel.
		_, err := c.Exec(`SELECT sale_id, price FROM sales ORDER BY price DESC`)
		done <- err
	}()
	// Wait until the statement is actually running (holding a grant).
	deadline := time.Now().Add(5 * time.Second)
	for db.Governor().Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("statement never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if err == nil {
		t.Fatal("cancelled statement succeeded")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
	// Grant returned.
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := db.Governor().Stats()
		if st.Running == 0 && st.InUseBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grant not returned: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	// Session survives and runs the next statement.
	res, err := c.Exec(`SELECT COUNT(*) AS n FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "150000" {
		t.Fatalf("post-cancel count = %q", res.Rows[0][0])
	}
}

// TestCancelQueuedStatement cancels a statement still waiting in the
// admission queue.
func TestCancelQueuedStatement(t *testing.T) {
	srv, db := startServer(t, 1_000, 1<<20, 1)
	// Occupy the only slot out-of-band so the client's statement queues.
	hold, err := db.Governor().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()

	c := dial(t, srv)
	done := make(chan error, 1)
	go func() {
		_, err := c.Exec(`SELECT COUNT(*) AS n FROM sales`)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.Governor().Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("statement never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("queued cancel err = %v", err)
	}
	if st := db.Governor().Stats(); st.Canceled != 1 || st.Waiting != 0 {
		t.Fatalf("governor stats after queued cancel: %+v", st)
	}
}

// TestGracefulDrain lets an in-flight statement finish, then refuses new
// connections.
func TestGracefulDrain(t *testing.T) {
	srv, _ := startServer(t, 30_000, 32<<20, 2)
	c := dial(t, srv)
	done := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := c.Exec(`SELECT cust, SUM(price) AS s FROM sales GROUP BY cust ORDER BY cust`)
		if err != nil {
			errCh <- err
			return
		}
		done <- res
	}()
	time.Sleep(5 * time.Millisecond) // let the statement reach the server
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if len(res.Rows) != 10 {
			t.Fatalf("drained statement rows = %d", len(res.Rows))
		}
	case err := <-errCh:
		t.Fatalf("in-flight statement failed during drain: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("drained statement never completed")
	}
	if _, err := Dial(srv.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestPinnedEpochSnapshot pins a session's snapshot, loads more rows, and
// checks the pinned session keeps reading the old epoch while a fresh
// session sees the new rows.
func TestPinnedEpochSnapshot(t *testing.T) {
	srv, db := startServer(t, 100, 32<<20, 2)
	pinned := dial(t, srv)
	if _, err := pinned.Meta(`\pin`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO sales VALUES (100000, 99, 1.0)`)

	res, err := pinned.Exec(`SELECT COUNT(*) AS n FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "100" {
		t.Fatalf("pinned session sees %q rows, want 100", res.Rows[0][0])
	}
	fresh := dial(t, srv)
	res, err = fresh.Exec(`SELECT COUNT(*) AS n FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "101" {
		t.Fatalf("fresh session sees %q rows, want 101", res.Rows[0][0])
	}
	if _, err := pinned.Meta(`\unpin`); err != nil {
		t.Fatal(err)
	}
	res, err = pinned.Exec(`SELECT COUNT(*) AS n FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "101" {
		t.Fatalf("unpinned session sees %q rows, want 101", res.Rows[0][0])
	}
}

// TestFieldEscaping round-trips values containing protocol delimiters.
func TestFieldEscaping(t *testing.T) {
	srv, db := startServer(t, 1, 32<<20, 2)
	mustExec(t, db, `CREATE TABLE notes (id INT, body VARCHAR)`)
	mustExec(t, db, `CREATE PROJECTION notes_super ON notes (id, body) ORDER BY id SEGMENTED BY HASH(id)`)
	tricky := "line1\nline2\tcol\\end"
	if err := db.Load("notes", []types.Row{{types.NewInt(1), types.NewString(tricky)}}, true); err != nil {
		t.Fatal(err)
	}
	c := dial(t, srv)
	res, err := c.Exec(`SELECT id, body FROM notes`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != tricky {
		t.Fatalf("round-trip = %q, want %q", res.Rows[0][1], tricky)
	}
}

// TestSpillStatsOnWire checks a budget-constrained statement reports spill
// bytes back to the client.
func TestSpillStatsOnWire(t *testing.T) {
	srv, _ := startServer(t, 60_000, 1<<20, 4)
	c := dial(t, srv)
	res, err := c.Exec(`SELECT sale_id, price FROM sales ORDER BY price`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 60_000 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.SpilledBytes == 0 {
		t.Fatal("expected spill bytes under a 256KB operator budget")
	}
}

// TestManySequentialStatements exercises statement framing (multi-line,
// comments in strings, back-to-back statements).
func TestManySequentialStatements(t *testing.T) {
	srv, _ := startServer(t, 1_000, 32<<20, 2)
	c := dial(t, srv)
	for i := 0; i < 20; i++ {
		res, err := c.Exec(fmt.Sprintf("SELECT COUNT(*) AS n\nFROM sales\nWHERE cust = %d", i%10))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0] != "100" {
			t.Fatalf("iter %d: %q", i, res.Rows[0][0])
		}
	}
	if _, err := c.Meta(`\stats`); err != nil {
		t.Fatal(err)
	}
}

// TestDMLStatsOnWire is the regression test for the SELECT-only stats gap:
// INSERT/DELETE replies must carry queue-wait stats on the OK line exactly
// like SELECT replies carry them on the ROWS header.
func TestDMLStatsOnWire(t *testing.T) {
	srv, db := startServer(t, 100, 32<<20, 2)
	c := dial(t, srv)

	res, err := c.Exec(`INSERT INTO sales VALUES (100000, 1, 9.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Message != "1 rows" {
		t.Fatalf("message = %q", res.Message)
	}
	// The DML admitted through the governor: its profile must be retained
	// and the reply must have parsed a stats suffix (wait may be zero on an
	// idle pool, but the suffix itself is mandatory — probe via a queued
	// statement below).
	st := db.Governor().Stats()
	if st.Admitted == 0 {
		t.Fatalf("governor saw no DML admission: %+v", st)
	}

	// Saturate both slots so the next DML observably queues.
	g1, err := db.Governor().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := db.Governor().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := c.Exec(`DELETE FROM sales WHERE sale_id = 100000`)
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	for db.Governor().Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	g1.Release()
	g2.Release()
	select {
	case err := <-errc:
		t.Fatal(err)
	case res = <-done:
	}
	if res.QueueWait <= 0 {
		t.Fatalf("queued DELETE reported no queue wait: %+v", res)
	}
	if res.Message != "1 rows" {
		t.Fatalf("message with stats stripped = %q", res.Message)
	}
}

// TestResourcePoolsOverTCP is the acceptance scenario: pools are created,
// selected and observed entirely over the wire — SET RESOURCE POOL
// constrains admission per session, and v_monitor.query_profiles returns
// profiles of previously executed statements with pool and queue-wait
// populated even while the pool is saturated.
func TestResourcePoolsOverTCP(t *testing.T) {
	srv, db := startServer(t, 1_000, 32<<20, 4)
	admin := dial(t, srv)

	mustWire := func(c *Client, stmt string) *Result {
		t.Helper()
		res, err := c.Exec(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		return res
	}

	mustWire(admin, `CREATE RESOURCE POOL reporting MEMORYSIZE '4M' MAXMEMORYSIZE '8M' MAXCONCURRENCY 1 QUEUETIMEOUT 100`)

	// Session A runs in the reporting pool.
	a := dial(t, srv)
	mustWire(a, `SET RESOURCE POOL reporting`)
	mustWire(a, `SELECT COUNT(*) FROM sales`)

	// Saturate the reporting pool out-of-band; session A now times out...
	hold, err := db.Governor().AdmitPoolBytes(context.Background(), "reporting", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(`SELECT COUNT(*) FROM sales`); err == nil ||
		!strings.Contains(err.Error(), "queue timeout") {
		t.Fatalf("saturated pool should time out, got %v", err)
	}
	// ...while the admin session (general pool) is unaffected, and the
	// system tables remain queryable.
	mustWire(admin, `SELECT COUNT(*) FROM sales`)
	res := mustWire(admin, `SELECT name, running, waiting, timed_out FROM v_monitor.resource_pools WHERE name = 'reporting'`)
	if len(res.Rows) != 1 || res.Rows[0][1] != "1" || res.Rows[0][3] != "1" {
		t.Fatalf("reporting pool row = %v", res.Rows)
	}
	hold.Release()

	// Profiles of the earlier statements are queryable with pool names.
	res = mustWire(admin, `SELECT profile_id, statement, rows_produced, status
		FROM v_monitor.query_profiles WHERE pool = 'reporting' ORDER BY profile_id`)
	if len(res.Rows) < 1 {
		t.Fatalf("no reporting profiles: %v", res.Rows)
	}
	if res.Rows[0][1] != `SELECT COUNT(*) FROM sales;` || res.Rows[0][3] != "ok" {
		t.Fatalf("profile row = %v", res.Rows[0])
	}
	// The timed-out admission left an error profile? No grant existed, so
	// no profile: verify only successful profiles are present and every one
	// carries the pool name.
	for _, r := range res.Rows {
		if r[3] != "ok" {
			t.Fatalf("unexpected non-ok profile: %v", r)
		}
	}

	// Sessions table shows the pool assignment of the live sessions.
	res = mustWire(admin, `SELECT pool, COUNT(*) FROM v_monitor.sessions GROUP BY pool ORDER BY pool`)
	got := map[string]string{}
	for _, r := range res.Rows {
		got[r[0]] = r[1]
	}
	if got["reporting"] != "1" || got["general"] == "" {
		t.Fatalf("session pools = %v", got)
	}

	// Queue-wait lands in profiles when a statement actually queues.
	hold2, err := db.Governor().AdmitPoolBytes(context.Background(), "reporting", 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Exec(`SELECT MAX(price) FROM sales`)
		done <- err
	}()
	for db.Governor().Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	hold2.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	res = mustWire(admin, `SELECT queue_wait_us FROM v_monitor.query_profiles
		WHERE pool = 'reporting' AND statement = 'SELECT MAX(price) FROM sales;'`)
	if len(res.Rows) != 1 {
		t.Fatalf("queued profile missing: %v", res.Rows)
	}
	if w, err := strconv.ParseInt(res.Rows[0][0], 10, 64); err != nil || w <= 0 {
		t.Fatalf("queue_wait_us = %v (%v)", res.Rows[0][0], err)
	}
}
