package optimizer

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/tuplemover"
	"repro/internal/txn"
	"repro/internal/types"
)

// mapProvider serves projections from a map of storage managers.
type mapProvider struct {
	cat  *catalog.Catalog
	mgrs map[string]*storage.Manager
}

func (p *mapProvider) Catalog() *catalog.Catalog { return p.cat }
func (p *mapProvider) ProjectionData(name string) (*storage.Manager, error) {
	return p.mgrs[name], nil
}

type fixture struct {
	p  *mapProvider
	em *txn.EpochManager
}

// newFixture creates a sales fact (n rows) with a wide super projection
// sorted by sale_id and a narrow (cust, price) projection sorted by cust,
// plus a small replicated customers dimension — the Figure 1 physical
// design.
func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	cat := catalog.New("")
	em := txn.NewEpochManager()
	if err := cat.CreateTable(&catalog.Table{
		Name: "sales",
		Schema: types.NewSchema(
			types.Column{Name: "sale_id", Typ: types.Int64},
			types.Column{Name: "cust", Typ: types.Int64},
			types.Column{Name: "price", Typ: types.Float64},
		),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateTable(&catalog.Table{
		Name: "customers",
		Schema: types.NewSchema(
			types.Column{Name: "cust_id", Typ: types.Int64},
			types.Column{Name: "region", Typ: types.Varchar},
		),
	}); err != nil {
		t.Fatal(err)
	}
	mgrs := map[string]*storage.Manager{}
	mkProj := func(pr *catalog.Projection, rows []types.Row) {
		if err := cat.CreateProjection(pr); err != nil {
			t.Fatal(err)
		}
		mgr, err := storage.NewManager(t.TempDir(), pr.Schema, storage.ManagerOpts{})
		if err != nil {
			t.Fatal(err)
		}
		mgrs[pr.Name] = mgr
		mgr.WOS().Append(rows, em.CommitDML())
		tm, err := tuplemover.New(tuplemover.Config{
			Projection: pr.Name, Mgr: mgr, Epochs: em, SortKey: pr.SortKey(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tm.Moveout(); err != nil {
			t.Fatal(err)
		}
	}
	salesRows := make([]types.Row, n)
	narrowRows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		salesRows[i] = types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 20)), types.NewFloat(float64(i)),
		}
		narrowRows[i] = types.Row{types.NewInt(int64(i % 20)), types.NewFloat(float64(i))}
	}
	mkProj(&catalog.Projection{
		Name: "sales_super", Anchor: "sales",
		Columns:   []string{"sale_id", "cust", "price"},
		SortOrder: []string{"sale_id"},
		Seg:       catalog.Segmentation{ExprText: "HASH(sale_id)"},
	}, salesRows)
	mkProj(&catalog.Projection{
		Name: "sales_by_cust", Anchor: "sales",
		Columns:   []string{"cust", "price"},
		SortOrder: []string{"cust"},
		Seg:       catalog.Segmentation{ExprText: "HASH(cust)"},
	}, narrowRows)
	dimRows := make([]types.Row, 20)
	for i := range dimRows {
		dimRows[i] = types.Row{types.NewInt(int64(i)), types.NewString([]string{"e", "w"}[i%2])}
	}
	mkProj(&catalog.Projection{
		Name: "customers_super", Anchor: "customers",
		Columns:   []string{"cust_id", "region"},
		SortOrder: []string{"cust_id"},
		Seg:       catalog.Segmentation{Replicated: true},
	}, dimRows)
	return &fixture{p: &mapProvider{cat: cat, mgrs: mgrs}, em: em}
}

func (f *fixture) table(t *testing.T, name string) *catalog.Table {
	tb, err := f.p.cat.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func (f *fixture) run(t *testing.T, q *LogicalQuery, opts PlanOpts) ([]types.Row, *PhysicalPlan) {
	t.Helper()
	plan, err := Plan(f.p, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(exec.NewCtx(f.em.ReadEpoch()), plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	return rows, plan
}

func TestPlanChoosesNarrowProjection(t *testing.T) {
	f := newFixture(t, 200)
	sales := f.table(t, "sales")
	// Query touching only cust and price: the narrow cust-sorted projection
	// should win over the super projection.
	q := &LogicalQuery{
		From:     []TableRef{{Table: sales}},
		GroupBy:  []int{1},
		KeyNames: []string{"cust"},
		Aggs: []exec.AggSpec{{
			Kind: exec.AggSum, Arg: expr.NewColRef(2, types.Float64, "price"), Name: "s",
		}},
		Limit: -1,
	}
	rows, plan := f.run(t, q, PlanOpts{})
	if len(rows) != 20 {
		t.Fatalf("groups = %d", len(rows))
	}
	if plan.ProjectionsUsed[0] != "sales_by_cust" {
		t.Errorf("chose %s, want sales_by_cust", plan.ProjectionsUsed[0])
	}
	// And it plans one-pass aggregation on the sorted projection.
	if !strings.Contains(plan.Explain(), "one-pass") {
		t.Errorf("expected one-pass aggregation:\n%s", plan.Explain())
	}
}

func TestPlanPushesPredicateIntoScan(t *testing.T) {
	f := newFixture(t, 200)
	sales := f.table(t, "sales")
	q := &LogicalQuery{
		From:        []TableRef{{Table: sales}},
		Where:       expr.MustCmp(expr.Gt, expr.NewColRef(0, types.Int64, "sale_id"), expr.NewConst(types.NewInt(150))),
		SelectExprs: []expr.Expr{expr.NewColRef(0, types.Int64, "sale_id")},
		SelectNames: []string{"sale_id"},
		Limit:       -1,
	}
	rows, plan := f.run(t, q, PlanOpts{})
	if len(rows) != 49 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(plan.Explain(), "filter=") {
		t.Errorf("predicate not pushed into scan:\n%s", plan.Explain())
	}
}

func joinQuery(f *fixture, t *testing.T) *LogicalQuery {
	sales := f.table(t, "sales")
	custs := f.table(t, "customers")
	// flat: sales(0,1,2) customers(3,4)
	return &LogicalQuery{
		From:      []TableRef{{Table: sales}, {Table: custs}},
		JoinConds: []JoinCond{{LeftTbl: 0, LeftCol: 1, RightTbl: 1, RightCol: 0, Type: exec.InnerJoin}},
		Where: expr.MustCmp(expr.Eq, expr.NewColRef(4, types.Varchar, "region"),
			expr.NewConst(types.NewString("e"))),
		GroupBy:  []int{4},
		KeyNames: []string{"region"},
		Aggs:     []exec.AggSpec{{Kind: exec.AggCountStar, Name: "n"}},
		Limit:    -1,
	}
}

func TestPlanMergeJoinWhenSortOrdersAlign(t *testing.T) {
	// The narrow cust-sorted projection joins the cust_id-sorted dimension:
	// the planner must pick a merge join (paper §6.2: "merge joins on
	// compressed columns are applied first").
	f := newFixture(t, 200)
	q := joinQuery(f, t)
	rows, plan := f.run(t, q, PlanOpts{})
	if len(rows) != 1 || rows[0][1].I != 100 {
		t.Fatalf("rows = %v", rows)
	}
	ex := plan.Explain()
	if !strings.Contains(ex, "MergeJoin") {
		t.Errorf("aligned sort orders should produce a merge join:\n%s", ex)
	}
	if !strings.Contains(ex, "fact table: sales") {
		t.Errorf("star ordering note missing:\n%s", ex)
	}
}

func TestPlanStarJoinWithSIP(t *testing.T) {
	f := newFixture(t, 200)
	q := joinQuery(f, t)
	// Force the super projection (sorted by sale_id, not the join key) so
	// the join must be a hash join — where SIP applies.
	opts := PlanOpts{ExcludeProjections: map[string]bool{"sales_by_cust": true}}
	rows, plan := f.run(t, q, opts)
	if len(rows) != 1 || rows[0][1].I != 100 {
		t.Fatalf("rows = %v", rows)
	}
	ex := plan.Explain()
	if !strings.Contains(ex, "HashJoin") {
		t.Fatalf("expected hash join:\n%s", ex)
	}
	if !strings.Contains(ex, "SIP") {
		t.Errorf("SIP not placed:\n%s", ex)
	}
	// Ablation switch must remove it.
	opts.NoSIP = true
	_, plan2 := f.run(t, q, opts)
	if strings.Contains(plan2.Explain(), "SIP") {
		t.Error("NoSIP did not disable SIP")
	}
}

func TestPlanParallelAggregate(t *testing.T) {
	f := newFixture(t, 2000)
	sales := f.table(t, "sales")
	q := &LogicalQuery{
		From:     []TableRef{{Table: sales}},
		GroupBy:  []int{1},
		KeyNames: []string{"cust"},
		Aggs: []exec.AggSpec{{
			Kind: exec.AggAvg, Arg: expr.NewColRef(2, types.Float64, "price"), Name: "ap",
		}},
		// Touch sale_id so the wide projection is required (its sort order
		// does not match the grouping, forcing the parallel hash path).
		Where: expr.MustCmp(expr.Ge, expr.NewColRef(0, types.Int64, "sale_id"), expr.NewConst(types.NewInt(0))),
		Limit: -1,
	}
	rows, plan := f.run(t, q, PlanOpts{Parallelism: 3, NoSIP: true})
	if len(rows) != 20 {
		t.Fatalf("groups = %d", len(rows))
	}
	ex := plan.Explain()
	// The Figure 3 shape: prepass, Recv (resegment), ParallelUnion.
	for _, want := range []string{"GroupByPrepass", "Recv", "ParallelUnion"} {
		if !strings.Contains(ex, want) {
			t.Errorf("parallel plan missing %s:\n%s", want, ex)
		}
	}
	// NoPrepass ablation falls back.
	_, plan2 := f.run(t, q, PlanOpts{Parallelism: 3, NoPrepass: true})
	if strings.Contains(plan2.Explain(), "GroupByPrepass") {
		t.Error("NoPrepass did not disable the prepass")
	}
}

func TestPlanExcludeProjectionsAndBuddies(t *testing.T) {
	f := newFixture(t, 100)
	sales := f.table(t, "sales")
	q := &LogicalQuery{
		From:        []TableRef{{Table: sales}},
		SelectExprs: []expr.Expr{expr.NewColRef(1, types.Int64, "cust")},
		SelectNames: []string{"cust"},
		Limit:       -1,
	}
	_, plan := f.run(t, q, PlanOpts{ExcludeProjections: map[string]bool{"sales_by_cust": true}})
	if plan.ProjectionsUsed[0] != "sales_super" {
		t.Errorf("exclusion ignored: %s", plan.ProjectionsUsed[0])
	}
	// Excluding everything fails.
	_, err := Plan(f.p, q, PlanOpts{ExcludeProjections: map[string]bool{
		"sales_super": true, "sales_by_cust": true,
	}})
	if err == nil {
		t.Error("planning with no projection should fail")
	}
}

func TestPlanCostReflectsNarrowness(t *testing.T) {
	f := newFixture(t, 500)
	sales := f.table(t, "sales")
	wide := &LogicalQuery{
		From: []TableRef{{Table: sales}},
		SelectExprs: []expr.Expr{
			expr.NewColRef(0, types.Int64, "sale_id"),
			expr.NewColRef(1, types.Int64, "cust"),
			expr.NewColRef(2, types.Float64, "price"),
		},
		SelectNames: []string{"sale_id", "cust", "price"},
		Limit:       -1,
	}
	narrow := &LogicalQuery{
		From:        []TableRef{{Table: sales}},
		SelectExprs: []expr.Expr{expr.NewColRef(1, types.Int64, "cust")},
		SelectNames: []string{"cust"},
		Limit:       -1,
	}
	_, widePlan := f.run(t, wide, PlanOpts{})
	_, narrowPlan := f.run(t, narrow, PlanOpts{})
	if narrowPlan.EstCost >= widePlan.EstCost {
		t.Errorf("narrow query cost %.0f >= wide cost %.0f", narrowPlan.EstCost, widePlan.EstCost)
	}
}

func TestPlanDistinct(t *testing.T) {
	f := newFixture(t, 100)
	sales := f.table(t, "sales")
	q := &LogicalQuery{
		From:        []TableRef{{Table: sales}},
		SelectExprs: []expr.Expr{expr.NewColRef(1, types.Int64, "cust")},
		SelectNames: []string{"cust"},
		Distinct:    true,
		Limit:       -1,
	}
	rows, _ := f.run(t, q, PlanOpts{})
	if len(rows) != 20 {
		t.Errorf("distinct rows = %d", len(rows))
	}
}

func TestPlanNoFromFails(t *testing.T) {
	f := newFixture(t, 10)
	if _, err := Plan(f.p, &LogicalQuery{Limit: -1}, PlanOpts{}); err == nil {
		t.Error("empty FROM should fail")
	}
}

// parallelJoinQuery is the 2-table join used by the parallel-shape tests.
func parallelJoinQuery(t *testing.T, f *fixture) *LogicalQuery {
	sales := f.table(t, "sales")
	customers := f.table(t, "customers")
	return &LogicalQuery{
		From:      []TableRef{{Table: sales}, {Table: customers}},
		JoinConds: []JoinCond{{LeftTbl: 0, LeftCol: 1, RightTbl: 1, RightCol: 0, Type: exec.InnerJoin}},
		SelectExprs: []expr.Expr{
			expr.NewColRef(4, types.Varchar, "region"),
			expr.NewColRef(2, types.Float64, "price"),
		},
		SelectNames: []string{"region", "price"},
		// Touch sale_id so the wide sale_id-sorted projection is required:
		// its sort order cannot serve the cust join key, forcing the hash
		// join path the parallel shape applies to.
		Where: expr.MustCmp(expr.Ge, expr.NewColRef(0, types.Int64, "sale_id"), expr.NewConst(types.NewInt(0))),
		Limit: -1,
	}
}

func TestPlanParallelHashJoin(t *testing.T) {
	f := newFixture(t, 2000)
	q := parallelJoinQuery(t, f)
	rows, plan := f.run(t, q, PlanOpts{Parallelism: 4, ForceParallel: true, NoSIP: true})
	if len(rows) != 2000 {
		t.Fatalf("rows = %d", len(rows))
	}
	ex := plan.Explain()
	for _, want := range []string{"parallel hash join", "segment keys=", "ParallelUnion", "HashJoin"} {
		if !strings.Contains(ex, want) {
			t.Errorf("parallel join plan missing %q:\n%s", want, ex)
		}
	}
	if plan.Workers != 4 {
		t.Errorf("Workers = %d, want 4", plan.Workers)
	}
	// Differential: the parallel plan must produce exactly the serial rows.
	serial, _ := f.run(t, q, PlanOpts{NoSIP: true})
	var sumP, sumS float64
	for _, r := range rows {
		sumP += r[1].F
	}
	for _, r := range serial {
		sumS += r[1].F
	}
	if len(serial) != len(rows) || sumP != sumS {
		t.Errorf("parallel join diverged: %d rows sum %v vs serial %d rows sum %v",
			len(rows), sumP, len(serial), sumS)
	}
	// The cardinality gate keeps tiny inputs serial without ForceParallel.
	_, gated := f.run(t, q, PlanOpts{Parallelism: 4, NoSIP: true})
	if strings.Contains(gated.Explain(), "parallel hash join") {
		t.Errorf("2000-row join should stay serial under the %d-row gate", int(MinParallelRows))
	}
}

func TestPlanParallelSort(t *testing.T) {
	f := newFixture(t, 3000)
	sales := f.table(t, "sales")
	q := &LogicalQuery{
		From: []TableRef{{Table: sales}},
		SelectExprs: []expr.Expr{
			expr.NewColRef(0, types.Int64, "sale_id"),
			expr.NewColRef(2, types.Float64, "price"),
		},
		SelectNames: []string{"sale_id", "price"},
		OrderBy:     []exec.SortSpec{{Col: 1, Desc: true}},
		Limit:       -1,
	}
	rows, plan := f.run(t, q, PlanOpts{Parallelism: 4, ForceParallel: true})
	if len(rows) != 3000 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1].F < rows[i][1].F {
			t.Fatalf("parallel sort lost global order at row %d", i)
		}
	}
	ex := plan.Explain()
	for _, want := range []string{"parallel sort: 4 worker sorts", "round-robin", "merge"} {
		if !strings.Contains(ex, want) {
			t.Errorf("parallel sort plan missing %q:\n%s", want, ex)
		}
	}
	_, gated := f.run(t, q, PlanOpts{Parallelism: 4})
	if strings.Contains(gated.Explain(), "parallel sort") {
		t.Error("3000-row sort should stay serial under the cardinality gate")
	}
}

func TestPlanParallelDistinct(t *testing.T) {
	f := newFixture(t, 2000)
	sales := f.table(t, "sales")
	q := &LogicalQuery{
		From:        []TableRef{{Table: sales}},
		SelectExprs: []expr.Expr{expr.NewColRef(1, types.Int64, "cust")},
		SelectNames: []string{"cust"},
		Distinct:    true,
		Limit:       -1,
	}
	rows, plan := f.run(t, q, PlanOpts{Parallelism: 4, ForceParallel: true})
	if len(rows) != 20 {
		t.Fatalf("distinct rows = %d, want 20", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("duplicate %d survived parallel distinct", r[0].I)
		}
		seen[r[0].I] = true
	}
	ex := plan.Explain()
	for _, want := range []string{"parallel distinct", "segment keys=", "ParallelUnion"} {
		if !strings.Contains(ex, want) {
			t.Errorf("parallel distinct plan missing %q:\n%s", want, ex)
		}
	}
	_, gated := f.run(t, q, PlanOpts{Parallelism: 4})
	if strings.Contains(gated.Explain(), "parallel distinct") {
		t.Error("2000-row distinct should stay serial under the cardinality gate")
	}
}
