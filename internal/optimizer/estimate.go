package optimizer

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// Histogram-backed cardinality estimation (paper §6.2: the optimizer "uses
// histograms to determine predicate selectivity" and distinct-value counts
// to size join outputs). Every FROM table gets a tableEstimate; tables
// without ANALYZE_STATISTICS records fall back to the original conjunct
// shape heuristics, so unanalyzed databases plan exactly as before.

// tableEstimate is the estimation state of one FROM table.
type tableEstimate struct {
	analyzed bool    // every referenced predicate column had statistics
	sel      float64 // combined selectivity of the table's local conjuncts
	// colSel maps a table column index to the combined selectivity of the
	// conjuncts over that column (used for stats-aware projection choice:
	// prefer sort orders led by the most selective predicate column).
	colSel map[int]float64
	// tstats is the table's column statistics by name (nil = unanalyzed).
	tstats map[string]*stats.ColumnStats
}

// statsOp maps an expression comparison onto the stats package's operator.
func statsOp(op expr.CmpOp) (stats.Op, bool) {
	switch op {
	case expr.Eq:
		return stats.OpEq, true
	case expr.Ne:
		return stats.OpNe, true
	case expr.Lt:
		return stats.OpLt, true
	case expr.Le:
		return stats.OpLe, true
	case expr.Gt:
		return stats.OpGt, true
	case expr.Ge:
		return stats.OpGe, true
	default:
		return 0, false
	}
}

// shapeSelectivity is the pre-statistics heuristic for one conjunct (the
// crude classifier StarOpt shipped before histograms existed).
func shapeSelectivity(c expr.Expr) float64 {
	switch e := c.(type) {
	case *expr.Cmp:
		if e.Op == expr.Eq {
			return 0.05
		}
		return 0.4
	case *expr.InList:
		return 0.1
	default:
		return 0.5
	}
}

// conjunctSelectivity estimates one conjunct from column statistics.
// ok=false means the conjunct's shape or its column's missing statistics
// force the shape heuristic.
func conjunctSelectivity(c expr.Expr, t *catalog.Table, tstats map[string]*stats.ColumnStats, flatOff int) (float64, int, bool) {
	colOf := func(e expr.Expr) (*stats.ColumnStats, int, bool) {
		cr, ok := e.(*expr.ColRef)
		if !ok {
			return nil, -1, false
		}
		col := cr.Idx - flatOff
		if col < 0 || col >= t.Schema.Len() {
			return nil, -1, false
		}
		cs := tstats[t.Schema.Col(col).Name]
		return cs, col, cs != nil
	}
	switch e := c.(type) {
	case *expr.Cmp:
		op, opOK := statsOp(e.Op)
		if !opOK {
			return 0, -1, false
		}
		if cs, col, ok := colOf(e.L); ok {
			if k, isConst := e.R.(*expr.Const); isConst {
				return cs.SelectivityCmp(op, k.Val), col, true
			}
		}
		if cs, col, ok := colOf(e.R); ok {
			if k, isConst := e.L.(*expr.Const); isConst {
				swapped, _ := statsOp(e.Op.Swap())
				return cs.SelectivityCmp(swapped, k.Val), col, true
			}
		}
		return 0, -1, false
	case *expr.InList:
		if cs, col, ok := colOf(e.Arg); ok {
			return cs.SelectivityIn(e.Vals, e.Negate), col, true
		}
		return 0, -1, false
	case *expr.IsNull:
		if cs, col, ok := colOf(e.Arg); ok {
			return cs.SelectivityIsNull(e.Negate), col, true
		}
		return 0, -1, false
	default:
		return 0, -1, false
	}
}

// estimateTable combines a table's local conjuncts into a selectivity
// estimate, histogram-backed where statistics exist.
func estimateTable(cat *catalog.Catalog, t *catalog.Table, conjuncts []expr.Expr, flatOff int) tableEstimate {
	est := tableEstimate{sel: 1, colSel: map[int]float64{}, tstats: cat.TableStats(t.Name)}
	est.analyzed = est.tstats != nil
	for _, c := range conjuncts {
		sel, col, ok := 0.0, -1, false
		if est.tstats != nil {
			sel, col, ok = conjunctSelectivity(c, t, est.tstats, flatOff)
		}
		if !ok {
			sel = shapeSelectivity(c)
			// A conjunct the histograms cannot estimate (no stats record
			// for its column — e.g. a single-column ANALYZE — or a shape
			// beyond cmp/IN/IS NULL) blends heuristics into the estimate.
			// Mark the table unanalyzed so EXPLAIN reports "heuristic" and
			// grant sizing does not trust the blend.
			est.analyzed = false
			if est.tstats != nil {
				if cols := expr.ColumnsOf(c); len(cols) > 0 {
					col = cols[0] - flatOff
				}
			}
		}
		est.sel *= sel
		if col >= 0 {
			if cur, found := est.colSel[col]; found {
				est.colSel[col] = cur * sel
			} else {
				est.colSel[col] = sel
			}
		}
	}
	return est
}

// EstimateSelectivity combines every table's local-conjunct selectivity
// into one number for the bound query, histogram-backed where statistics
// exist. The plan cache records it at insert time; EXECUTE re-binds
// parameter values and compares the fresh estimate against the recorded
// one — a ≥10× divergence means the cached plan was sized for a very
// different slice of the data and triggers a replan.
func EstimateSelectivity(cat *catalog.Catalog, q *LogicalQuery) (sel float64, statsBacked bool) {
	perTable, _ := q.splitConjuncts()
	offs := q.flatOffsets()
	sel, statsBacked = 1.0, true
	for i, t := range q.From {
		est := estimateTable(cat, t.Table, perTable[i], offs[i])
		sel *= est.sel
		if !est.analyzed {
			statsBacked = false
		}
	}
	return sel, statsBacked
}

// ndvOf returns a column's NDV estimate (0 when unknown).
func ndvOf(cat *catalog.Catalog, t *catalog.Table, col int) int64 {
	if col < 0 || col >= t.Schema.Len() {
		return 0
	}
	cs := cat.ColumnStats(t.Name, t.Schema.Col(col).Name)
	if cs == nil {
		return 0
	}
	return cs.NDV
}

// estimateJoinRows sizes an equi-join output: |R| x |S| / max(NDV(keys)).
// Unknown NDVs fall back to the N:1 star assumption (output = outer rows).
func estimateJoinRows(outerRows, innerRows float64, ndvOuter, ndvInner int64) float64 {
	d := ndvOuter
	if ndvInner > d {
		d = ndvInner
	}
	if d <= 0 {
		return outerRows // star-schema N:1 default
	}
	out := outerRows * innerRows / float64(d)
	if out < 0 {
		return 0
	}
	return out
}

// rowWidthOf approximates the in-memory bytes of one row of a schema.
func rowWidthOf(schema *types.Schema) int64 {
	var w int64
	for i := 0; i < schema.Len(); i++ {
		if schema.Col(i).Typ == types.Varchar {
			w += 24
		} else {
			w += 8
		}
	}
	if w < 8 {
		w = 8
	}
	return w
}

// groupCountEstimate bounds an aggregation's output rows by the product of
// the group keys' NDVs (capped at the input estimate). Unknown NDVs return
// the input estimate unchanged.
func groupCountEstimate(cat *catalog.Catalog, q *LogicalQuery, inputRows float64) float64 {
	if len(q.GroupBy) == 0 {
		if q.IsAggregate() {
			return 1 // global aggregate: one row
		}
		return inputRows
	}
	groups := 1.0
	for _, g := range q.GroupBy {
		ti, ci := q.tableOfFlat(g)
		if ti < 0 {
			return inputRows
		}
		ndv := ndvOf(cat, q.From[ti].Table, ci)
		if ndv <= 0 {
			return inputRows
		}
		groups *= float64(ndv)
		if groups > inputRows {
			return inputRows
		}
	}
	if groups > inputRows {
		return inputRows
	}
	return groups
}

// fmtEst renders a row estimate for EXPLAIN notes.
func fmtEst(rows float64) string {
	if rows < 0 {
		rows = 0
	}
	return fmt.Sprintf("%d", int64(rows+0.5))
}

// estSource names the estimation mode for EXPLAIN notes.
func estSource(analyzed bool) string {
	if analyzed {
		return "histogram"
	}
	return "heuristic"
}
