// Package optimizer implements the V2Opt-style query planner (paper §6.2):
// it classifies the query's physical properties (column selectivity,
// projection sort order, prejoin availability), chooses projections, orders
// joins star-style (most selective dimension first), pushes predicates into
// scans, places SIP filters, and costs alternatives with compression-aware
// I/O estimates.
package optimizer

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
)

// Provider supplies the planner with metadata and per-projection storage.
type Provider interface {
	Catalog() *catalog.Catalog
	// ProjectionData returns the local storage of a projection (the node's
	// own data in a cluster, or the only data on a single node).
	ProjectionData(name string) (*storage.Manager, error)
}

// TableRef is one FROM-clause table.
type TableRef struct {
	Table *catalog.Table
	Alias string
}

// JoinCond is one equi-join condition between two FROM tables.
type JoinCond struct {
	LeftTbl  int // index into From
	LeftCol  int // column index within the left table's schema
	RightTbl int
	RightCol int
	// Type applies when the query has exactly two tables; N-way joins are
	// planned as INNER.
	Type exec.JoinType
}

// LogicalQuery is the analyzer's output: a bound, flat-schema query.
// The flat schema is the concatenation of the From tables' schemas in order;
// Where/Select/agg-arg expressions reference flat column indexes.
type LogicalQuery struct {
	From      []TableRef
	JoinConds []JoinCond

	Where expr.Expr

	// Plain (non-aggregate) queries: select list over the flat schema.
	SelectExprs []expr.Expr
	SelectNames []string

	// Aggregate queries: group keys (flat indexes) and aggregates (args over
	// the flat schema). Output is keys then aggs; PostProject (over that
	// output) optionally reshapes it, and Having filters it.
	GroupBy  []int
	Aggs     []exec.AggSpec
	Having   expr.Expr
	KeyNames []string

	// PostProject reshapes the final schema (nil = identity). For aggregate
	// queries its column refs index [keys..., aggs...].
	PostProject      []expr.Expr
	PostProjectNames []string

	OrderBy []exec.SortSpec // over the final output schema
	Offset  int64
	Limit   int64 // -1 = no limit

	Distinct bool
}

// IsAggregate reports whether the query aggregates.
func (q *LogicalQuery) IsAggregate() bool {
	return len(q.Aggs) > 0 || len(q.GroupBy) > 0
}

// flatOffsets returns the starting flat index of each table.
func (q *LogicalQuery) flatOffsets() []int {
	out := make([]int, len(q.From))
	off := 0
	for i, t := range q.From {
		out[i] = off
		off += t.Table.Schema.Len()
	}
	return out
}

// tableOfFlat maps a flat column index to (table index, column-in-table).
func (q *LogicalQuery) tableOfFlat(flat int) (int, int) {
	offs := q.flatOffsets()
	for i := len(offs) - 1; i >= 0; i-- {
		if flat >= offs[i] {
			return i, flat - offs[i]
		}
	}
	return -1, -1
}

// PlanOpts tunes planning.
type PlanOpts struct {
	// Parallelism enables intra-node parallel plans when > 1: the Figure 3
	// aggregation shape, partitioned parallel hash joins, parallel sorts
	// and parallel DISTINCT.
	Parallelism int
	// ForceParallel drops the MinParallelRows cardinality gate so parallel
	// shapes plan even for tiny inputs (tests and the parallel-vs-serial
	// differential oracle, which needs parallel plans on small fixtures).
	ForceParallel bool
	// NoSIP disables sideways information passing (ablation benches).
	NoSIP bool
	// NoPrepass disables prepass partial aggregation (ablation benches).
	NoPrepass bool
	// ExcludeProjections skips these projections (buddy replan on node-down
	// uses this to avoid projections whose segments are unavailable).
	ExcludeProjections map[string]bool
	// AllowBuddies lets the planner choose buddy projections (used when
	// replanning a down node's segment onto its buddy, paper §6.2:
	// "the optimizer replans the query by replacing ... the projections on
	// unavailable nodes with their corresponding buddy projections").
	AllowBuddies bool
	// Profile runs the plan with wall-clock operator timing (PROFILE
	// <statement>, or the engine's Profile option) and always retains the
	// per-operator records. Planning is unaffected; the flag rides here
	// because PlanOpts is the per-statement options record the runner sees.
	Profile bool
	// CachedProbe, when set, supplies the probe metadata (projection
	// choice, cost estimates) from a plan-cache hit so the runner skips
	// the placement-probe Plan call entirely. Per-node execution plans are
	// still built fresh against the live catalog — only the probe is
	// elided.
	CachedProbe *ProbeInfo
}

// ProbeInfo is the slice of a placement probe's PhysicalPlan that the
// query runner actually consumes: projection choice (placement, replication
// and colocation checks) and the cost estimates behind admission sizing.
// It is what the plan cache stores and replays.
type ProbeInfo struct {
	ProjectionsUsed []string
	EstRows         int64
	EstMemBytes     int64
	StatsBacked     bool
	Workers         int
}

// PhysicalPlan is a planned, executable query.
type PhysicalPlan struct {
	Root exec.Operator
	// ProjectionsUsed records the chosen projection per From table.
	ProjectionsUsed []string
	// EstCost is the compression-aware I/O cost estimate (bytes).
	EstCost float64
	// Notes explains planning decisions for EXPLAIN output.
	Notes []string

	// EstRows and EstBytes are the estimated output cardinality and size;
	// EstMemBytes is the estimated working memory of the whole plan, the
	// basis for plan-derived admission grants. StatsBacked reports whether
	// every base table had ANALYZE_STATISTICS records (estimates from shape
	// heuristics alone are too crude to size memory grants with).
	EstRows     int64
	EstBytes    int64
	EstMemBytes int64
	StatsBacked bool

	// Workers is the largest number of worker pipelines any parallel shape
	// in the plan runs concurrently (1 = fully serial). Admission uses it
	// to split the query's memory grant per worker, so a parallel plan's
	// workers share one grant instead of multiplying it.
	Workers int

	estInput float64 // running row estimate through the join tree
	memAcc   float64 // accumulated operator working-set bytes
}

// Explain renders the plan tree plus planner notes.
func (p *PhysicalPlan) Explain() string {
	out := exec.Describe(p.Root)
	for _, n := range p.Notes {
		out += "-- " + n + "\n"
	}
	return out
}

// columnSet tracks needed columns per table.
type columnSet map[int]map[int]bool // table idx -> col idx set

func (cs columnSet) add(tbl, col int) {
	if cs[tbl] == nil {
		cs[tbl] = map[int]bool{}
	}
	cs[tbl][col] = true
}

func (cs columnSet) sorted(tbl int) []int {
	var out []int
	for c := range cs[tbl] {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// neededColumns computes, per table, every column the query touches.
func (q *LogicalQuery) neededColumns() columnSet {
	cs := columnSet{}
	addExpr := func(e expr.Expr) {
		if e == nil {
			return
		}
		for _, f := range expr.ColumnsOf(e) {
			t, c := q.tableOfFlat(f)
			if t >= 0 {
				cs.add(t, c)
			}
		}
	}
	addExpr(q.Where)
	for _, e := range q.SelectExprs {
		addExpr(e)
	}
	for i := range q.Aggs {
		if q.Aggs[i].Arg != nil {
			addExpr(q.Aggs[i].Arg)
		}
	}
	for _, g := range q.GroupBy {
		t, c := q.tableOfFlat(g)
		if t >= 0 {
			cs.add(t, c)
		}
	}
	for _, jc := range q.JoinConds {
		cs.add(jc.LeftTbl, jc.LeftCol)
		cs.add(jc.RightTbl, jc.RightCol)
	}
	return cs
}

// splitConjuncts partitions the WHERE clause into per-table conjuncts (all
// columns from one table) and cross-table residuals.
func (q *LogicalQuery) splitConjuncts() (perTable map[int][]expr.Expr, residual []expr.Expr) {
	perTable = map[int][]expr.Expr{}
	for _, c := range expr.Conjuncts(q.Where) {
		tbl := -2
		for _, f := range expr.ColumnsOf(c) {
			t, _ := q.tableOfFlat(f)
			if tbl == -2 {
				tbl = t
			} else if tbl != t {
				tbl = -1
			}
		}
		if tbl >= 0 {
			perTable[tbl] = append(perTable[tbl], c)
		} else if tbl == -2 {
			// Constant conjunct: attach to table 0.
			perTable[0] = append(perTable[0], c)
		} else {
			residual = append(residual, c)
		}
	}
	return perTable, residual
}

// selectivityScore estimates the fraction of rows surviving a table's local
// predicates from conjunct shapes alone — the fallback classifier for
// unanalyzed tables (paper §6.2 uses equi-height histograms; see
// estimate.go for the histogram-backed path).
func selectivityScore(conjuncts []expr.Expr) float64 {
	s := 1.0
	for _, c := range conjuncts {
		s *= shapeSelectivity(c)
	}
	return s
}

var errNoProjection = fmt.Errorf("optimizer: no projection covers the required columns")

// chooseProjection picks the best projection of a table for the needed
// columns and local predicates: it must cover the columns; ties break by
// (1) sort-order match with predicate/grouping columns — weighted, when the
// table is analyzed, by how selective the leading column's predicates are
// (histogram-backed block pruning pays off most on selective leads) —
// then (2) narrowness.
func chooseProjection(p Provider, t *catalog.Table, needed []int, predCols map[int]bool, preferSortCols []int, est tableEstimate, opts PlanOpts) (*catalog.Projection, *storage.Manager, error) {
	var best *catalog.Projection
	var bestMgr *storage.Manager
	bestScore := -1.0
	for _, proj := range p.Catalog().ProjectionsFor(t.Name) {
		if opts.ExcludeProjections[proj.Name] || (proj.IsBuddy && !opts.AllowBuddies) {
			continue
		}
		covers := true
		for _, c := range needed {
			if proj.Schema.ColIndex(t.Schema.Col(c).Name) < 0 {
				covers = false
				break
			}
		}
		if !covers {
			continue
		}
		mgr, err := p.ProjectionData(proj.Name)
		if err != nil {
			continue
		}
		score := 0.0
		// Sort-order match: predicate or grouping columns leading the sort
		// order make scans prunable and aggregation one-pass.
		if len(proj.SortOrder) > 0 {
			lead := proj.SortOrder[0]
			leadIdx := t.Schema.ColIndex(lead)
			if predCols[leadIdx] {
				score += 10
				if est.analyzed {
					if sel, ok := est.colSel[leadIdx]; ok {
						// Statistics break the tie between projections that
						// each lead with some predicate column: the more
						// selective lead prunes more blocks.
						score += 8 * (1 - sel)
					}
				}
			}
			for i, pc := range preferSortCols {
				if i < len(proj.SortOrder) && t.Schema.ColIndex(proj.SortOrder[i]) == pc {
					score += 5
				}
			}
		}
		// Narrowness: fewer stored columns means less I/O.
		score += 2.0 / float64(len(proj.Columns))
		if score > bestScore {
			best, bestMgr, bestScore = proj, mgr, score
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("%w (table %s, columns %v)", errNoProjection, t.Name, needed)
	}
	return best, bestMgr, nil
}

// estimateScanCost is the compression-aware I/O estimate: encoded bytes of
// the needed columns, scaled by predicate selectivity (block pruning).
func estimateScanCost(mgr *storage.Manager, proj *catalog.Projection, needed int, selectivity float64) float64 {
	total := float64(mgr.TotalBytes())
	frac := 1.0
	if n := len(proj.Columns); n > 0 {
		frac = float64(needed) / float64(n)
	}
	return total * frac * (0.5 + selectivity/2)
}
