package optimizer

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
)

// tableScan is the planner's working state for one FROM table.
type tableScan struct {
	tblIdx      int
	proj        *catalog.Projection // nil for virtual (system) tables
	mgr         *storage.Manager    // nil for virtual tables
	cols        []int               // table-schema column indexes produced, in order
	colToOut    map[int]int         // table col -> scan output index
	conjuncts   []expr.Expr         // flat-schema local predicates
	selectivity float64
	rows        int64
	est         tableEstimate // statistics-backed estimation state
	estRows     float64       // rows surviving local predicates
	scan        *exec.Scan    // nil for virtual tables
	op          exec.Operator // the table's access path (scan, or virtual pipeline)
}

// Plan compiles a logical query into a physical operator tree.
func Plan(p Provider, q *LogicalQuery, opts PlanOpts) (*PhysicalPlan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("optimizer: query has no FROM tables")
	}
	plan := &PhysicalPlan{}
	needed := q.neededColumns()
	perTable, residual := q.splitConjuncts()
	offs := q.flatOffsets()

	// Prejoin projection shortcut (paper §3.3): a denormalized projection
	// can answer a fact-dimension join with a single scan. Prejoin scans
	// keep the heuristic estimator: their storage mixes two tables' columns,
	// so per-table statistics do not apply directly.
	if op, colMap, note, ok := tryPrejoin(p, q, needed, perTable, opts); ok {
		plan.Notes = append(plan.Notes, note)
		if scan, isScan := op.(*exec.Scan); isScan {
			rows := scan.Mgr.RowCount() + int64(scan.Mgr.WOS().Len())
			sel := 1.0
			for _, conjs := range perTable {
				sel *= selectivityScore(conjs)
			}
			plan.estInput = float64(rows) * sel
			plan.memAcc = plan.estInput * float64(rowWidthOf(op.Schema()))
			exec.SetEstRows(op, int64(plan.estInput+0.5))
		}
		return finishPlan(p, q, plan, op, colMap, residual, opts)
	}

	// Build per-table scans.
	scans := make([]*tableScan, len(q.From))
	plan.StatsBacked = true
	for i := range q.From {
		ts, err := buildTableScan(p, q, i, needed, perTable[i], opts)
		if err != nil {
			return nil, err
		}
		scans[i] = ts
		if ts.proj != nil {
			plan.ProjectionsUsed = append(plan.ProjectionsUsed, ts.proj.Name)
			plan.EstCost += estimateScanCost(ts.mgr, ts.proj, len(ts.cols), ts.selectivity)
			plan.Notes = append(plan.Notes, fmt.Sprintf("est: scan %s ~%s of %d rows (%s)",
				ts.proj.Name, fmtEst(ts.estRows), ts.rows, estSource(ts.est.analyzed)))
		}
		if !ts.est.analyzed {
			plan.StatsBacked = false
		}
		// Every scanned stream occupies operator memory downstream.
		plan.memAcc += ts.estRows * float64(rowWidthOf(ts.op.Schema()))
	}

	if len(scans) == 1 {
		ts := scans[0]
		colMap := map[int]int{}
		for c, out := range ts.colToOut {
			colMap[offs[0]+c] = out
		}
		plan.estInput = ts.estRows
		return finishPlan(p, q, plan, ts.op, colMap, residual, opts)
	}

	// Star-style join ordering (paper §6.2): the largest table is the fact;
	// dimensions join in increasing effective size (selectivity x rows) so
	// the most selective dimensions filter first.
	factIdx := 0
	for i, ts := range scans {
		if ts.rows > scans[factIdx].rows {
			factIdx = i
		}
	}
	var dims []*tableScan
	for i, ts := range scans {
		if i != factIdx {
			dims = append(dims, ts)
		}
	}
	sort.SliceStable(dims, func(i, j int) bool {
		return dims[i].selectivity*float64(dims[i].rows) < dims[j].selectivity*float64(dims[j].rows)
	})
	plan.Notes = append(plan.Notes, fmt.Sprintf("fact table: %s; dimension order: %v",
		q.From[factIdx].Table.Name, dimNames(q, dims)))

	// colMap: flat index -> current combined output index.
	fact := scans[factIdx]
	colMap := map[int]int{}
	for c, out := range fact.colToOut {
		colMap[offs[factIdx]+c] = out
	}
	joined := map[int]bool{factIdx: true}
	cur := fact.op
	curWidth := len(fact.cols)
	runningEst := fact.estRows

	for _, dim := range dims {
		conds := condsConnecting(q, joined, dim.tblIdx)
		if len(conds) == 0 {
			return nil, fmt.Errorf("optimizer: no join condition connects table %s (cross joins unsupported)",
				q.From[dim.tblIdx].Table.Name)
		}
		var outerKeys, innerKeys []int
		for _, jc := range conds {
			of, dc := jc.LeftTbl, jc.LeftCol
			df := jc.RightCol
			if jc.RightTbl != dim.tblIdx {
				// condition written dim-first: swap sides
				of, dc = jc.RightTbl, jc.RightCol
				df = jc.LeftCol
			}
			outerFlat := offs[of] + dc
			out, ok := colMap[outerFlat]
			if !ok {
				return nil, fmt.Errorf("optimizer: join key column lost during planning")
			}
			outerKeys = append(outerKeys, out)
			innerKeys = append(innerKeys, dim.colToOut[df])
		}
		jt := exec.InnerJoin
		if len(q.From) == 2 {
			jt = q.JoinConds[0].Type
		}
		dimDesc := q.From[dim.tblIdx].Table.Name
		if dim.proj != nil {
			dimDesc = dim.proj.Name
		}
		// Merge join when both sides are sorted on the join keys
		// (paper §6.2: merge joins on sorted, compressed columns first).
		if mj, ok := tryMergeJoin(q, jt, fact, dim, cur, outerKeys, innerKeys); ok {
			cur = mj
			plan.Notes = append(plan.Notes, fmt.Sprintf("merge join with %s (sort orders aligned)", dimDesc))
		} else if w := parallelWays(opts, runningEst); w > 1 {
			// Partitioned parallel hash join: both sides resegment on the
			// join keys across w ways, so each way joins a complete,
			// disjoint key partition (SIP is skipped — the probe scan sits
			// behind an exchange and each way holds only a partial key set).
			pj, err := planParallelHashJoin(plan, jt, cur, dim.op, outerKeys, innerKeys, w)
			if err != nil {
				return nil, err
			}
			cur = pj
			plan.Notes = append(plan.Notes, fmt.Sprintf(
				"parallel hash join with %s: %d ways, both sides resegmented on the join keys", dimDesc, w))
		} else {
			hj, err := exec.NewHashJoin(jt, cur, dim.op, outerKeys, innerKeys)
			if err != nil {
				return nil, err
			}
			// SIP (paper §6.1): push a build-side key filter into the scan
			// owning every outer key, for join types that discard
			// unmatched probe rows.
			if !opts.NoSIP && (jt == exec.InnerJoin || jt == exec.SemiJoin || jt == exec.RightOuterJoin) {
				if sip := trySIP(fact, outerKeys, dimDesc); sip != nil {
					hj.SIP = sip
					plan.Notes = append(plan.Notes, "SIP filter pushed to scan of "+fact.proj.Name)
				}
			}
			cur = hj
		}
		if jt != exec.SemiJoin && jt != exec.AntiJoin {
			for c, out := range dim.colToOut {
				colMap[offs[dim.tblIdx]+c] = curWidth + out
			}
			curWidth += len(dim.cols)
		}
		joined[dim.tblIdx] = true

		// Join output cardinality from the key columns' distinct counts
		// (paper §6.2); unknown NDVs assume the star-schema N:1 shape.
		jc := conds[0]
		ot, oc, dc := jc.LeftTbl, jc.LeftCol, jc.RightCol
		if jc.RightTbl != dim.tblIdx {
			ot, oc, dc = jc.RightTbl, jc.RightCol, jc.LeftCol
		}
		ndvOuter := ndvOf(p.Catalog(), q.From[ot].Table, oc)
		ndvDim := ndvOf(p.Catalog(), q.From[dim.tblIdx].Table, dc)
		runningEst = estimateJoinRows(runningEst, dim.estRows, ndvOuter, ndvDim)
		exec.SetEstRows(cur, int64(runningEst+0.5))
		plan.Notes = append(plan.Notes, fmt.Sprintf("est: join %s ~%s rows (%s)",
			dimDesc, fmtEst(runningEst), estSource(ndvOuter > 0 || ndvDim > 0)))
	}
	plan.estInput = runningEst
	return finishPlan(p, q, plan, cur, colMap, residual, opts)
}

func dimNames(q *LogicalQuery, dims []*tableScan) []string {
	out := make([]string, len(dims))
	for i, d := range dims {
		out[i] = q.From[d.tblIdx].Table.Name
	}
	return out
}

func condsConnecting(q *LogicalQuery, joined map[int]bool, dim int) []JoinCond {
	var out []JoinCond
	for _, jc := range q.JoinConds {
		if joined[jc.LeftTbl] && jc.RightTbl == dim {
			out = append(out, jc)
		} else if joined[jc.RightTbl] && jc.LeftTbl == dim {
			out = append(out, jc)
		}
	}
	return out
}

// buildTableScan chooses the projection and constructs the scan for a table.
// Virtual (system) tables get a VirtualScan pipeline instead of a
// projection-backed storage scan.
func buildTableScan(p Provider, q *LogicalQuery, tblIdx int, needed columnSet, conjuncts []expr.Expr, opts PlanOpts) (*tableScan, error) {
	t := q.From[tblIdx].Table
	offs := q.flatOffsets()
	cols := needed.sorted(tblIdx)
	if len(cols) == 0 {
		// A table contributing nothing still needs one column to count rows.
		cols = []int{0}
	}
	if vt := p.Catalog().Virtual(t.Name); vt != nil {
		return buildVirtualScan(q, tblIdx, t, vt, cols, conjuncts, offs)
	}
	predCols := map[int]bool{}
	for _, c := range conjuncts {
		for _, f := range expr.ColumnsOf(c) {
			tb, cc := q.tableOfFlat(f)
			if tb == tblIdx {
				predCols[cc] = true
			}
		}
	}
	// Prefer a sort order matching group-by columns of this table.
	var preferSort []int
	for _, g := range q.GroupBy {
		tb, cc := q.tableOfFlat(g)
		if tb == tblIdx {
			preferSort = append(preferSort, cc)
		}
	}
	est := estimateTable(p.Catalog(), t, conjuncts, offs[tblIdx])
	proj, mgr, err := chooseProjection(p, t, cols, predCols, preferSort, est, opts)
	if err != nil {
		return nil, err
	}
	// Map table columns to projection-schema indexes for the scan.
	projCols := make([]int, len(cols))
	for i, c := range cols {
		pi := proj.Schema.ColIndex(t.Schema.Col(c).Name)
		if pi < 0 {
			return nil, fmt.Errorf("optimizer: projection %s lost column %s", proj.Name, t.Schema.Col(c).Name)
		}
		projCols[i] = pi
	}
	scan := exec.NewScan(proj.Name, mgr, proj.Schema, projCols)
	ts := &tableScan{
		tblIdx: tblIdx, proj: proj, mgr: mgr, cols: cols,
		colToOut: map[int]int{}, conjuncts: conjuncts,
		selectivity: est.sel,
		rows:        mgr.RowCount() + int64(mgr.WOS().Len()),
		est:         est,
		scan:        scan,
	}
	ts.estRows = float64(ts.rows) * est.sel
	exec.SetEstRows(scan, int64(ts.estRows+0.5))
	for i, c := range cols {
		ts.colToOut[c] = i
	}
	// Push local predicates into the scan, remapped flat -> scan output.
	if len(conjuncts) > 0 {
		m := map[int]int{}
		for c, out := range ts.colToOut {
			m[offs[tblIdx]+c] = out
		}
		pred, err := expr.Remap(expr.MustAnd(conjuncts...), m)
		if err != nil {
			return nil, err
		}
		scan.Predicate = pred
	}
	ts.op = scan
	return ts, nil
}

// buildVirtualScan assembles the access path for a system table: a
// VirtualScan producing the full table schema, a projection down to the
// needed columns, and the table's local predicates as a filter.
func buildVirtualScan(q *LogicalQuery, tblIdx int, t *catalog.Table, vt *catalog.VirtualTable, cols []int, conjuncts []expr.Expr, offs []int) (*tableScan, error) {
	exprs := make([]expr.Expr, len(cols))
	names := make([]string, len(cols))
	colToOut := map[int]int{}
	for i, c := range cols {
		col := t.Schema.Col(c)
		exprs[i] = expr.NewColRef(c, col.Typ, col.Name)
		names[i] = col.Name
		colToOut[c] = i
	}
	var op exec.Operator = exec.NewProject(exec.NewVirtualScan(t.Name, t.Schema, vt.Rows), exprs, names)
	if len(conjuncts) > 0 {
		m := map[int]int{}
		for c, out := range colToOut {
			m[offs[tblIdx]+c] = out
		}
		pred, err := expr.Remap(expr.MustAnd(conjuncts...), m)
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, pred)
	}
	return &tableScan{
		tblIdx: tblIdx, cols: cols, colToOut: colToOut, conjuncts: conjuncts,
		selectivity: selectivityScore(conjuncts),
		est:         tableEstimate{sel: selectivityScore(conjuncts)},
		op:          op,
	}, nil
}

// trySIP attaches a SIP filter to the fact scan when every outer key is one
// of the scan's own output columns.
func trySIP(fact *tableScan, outerKeys []int, joinDesc string) *exec.SIPFilter {
	if fact.scan == nil {
		return nil // virtual tables have no storage scan to push into
	}
	for _, k := range outerKeys {
		if k >= len(fact.cols) {
			return nil // key produced by an earlier join, not the base scan
		}
	}
	sip := exec.NewSIPFilter(outerKeys, joinDesc)
	fact.scan.SIPs = append(fact.scan.SIPs, sip)
	return sip
}

// tryMergeJoin plans a merge join when both inputs are sorted on the join
// keys: the fact's projection sort prefix must equal its keys (and the fact
// must still be the bare scan), and likewise for the dimension.
func tryMergeJoin(q *LogicalQuery, jt exec.JoinType, fact, dim *tableScan, cur exec.Operator, outerKeys, innerKeys []int) (exec.Operator, bool) {
	if jt != exec.InnerJoin && jt != exec.LeftOuterJoin {
		return nil, false
	}
	if fact.scan == nil || dim.scan == nil {
		return nil, false // virtual tables carry no sort order
	}
	if cur != exec.Operator(fact.scan) {
		return nil, false // already joined: combined stream order unknown
	}
	if !scanSortedByKeys(q, fact, outerKeys) || !scanSortedByKeys(q, dim, innerKeys) {
		return nil, false
	}
	fact.scan.MergeSorted = true
	fact.scan.SortKey = outerKeys
	dim.scan.MergeSorted = true
	dim.scan.SortKey = innerKeys
	mj, err := exec.NewMergeJoin(jt, fact.scan, dim.scan, outerKeys, innerKeys)
	if err != nil {
		return nil, false
	}
	return mj, true
}

// scanSortedByKeys reports whether the projection's sort order starts with
// exactly the key columns (by scan output index).
func scanSortedByKeys(q *LogicalQuery, ts *tableScan, keys []int) bool {
	t := q.From[ts.tblIdx].Table
	if len(ts.proj.SortOrder) < len(keys) {
		return false
	}
	for i, k := range keys {
		// key is a scan output index; find its table column.
		var tblCol = -1
		for c, out := range ts.colToOut {
			if out == k {
				tblCol = c
				break
			}
		}
		if tblCol < 0 || t.Schema.Col(tblCol).Name != ts.proj.SortOrder[i] {
			return false
		}
	}
	return true
}

// finishPlan adds residual filters, aggregation, post-projection, ordering
// and limits on top of the joined input, then finalizes the plan's output
// and memory estimates.
func finishPlan(p Provider, q *LogicalQuery, plan *PhysicalPlan, cur exec.Operator, colMap map[int]int, residual []expr.Expr, opts PlanOpts) (*PhysicalPlan, error) {
	// Cardinality through the tail of the plan, computed up front so the
	// parallel sort/DISTINCT gates can consult it: residual filters shrink
	// the joined stream, grouping collapses it to (at most) the product of
	// the key NDVs, LIMIT caps it.
	inEst := plan.estInput
	for _, c := range residual {
		inEst *= shapeSelectivity(c)
	}
	if len(residual) > 0 {
		pred, err := expr.Remap(expr.MustAnd(residual...), colMap)
		if err != nil {
			return nil, err
		}
		cur = exec.NewFilter(cur, pred)
		exec.SetEstRows(cur, int64(inEst+0.5))
	}
	outEst := inEst
	if q.IsAggregate() || q.Distinct {
		outEst = groupCountEstimate(p.Catalog(), q, inEst)
	}
	var err error
	if q.IsAggregate() {
		cur, err = planAggregate(p, q, plan, cur, colMap, opts)
		if err != nil {
			return nil, err
		}
		exec.SetEstRows(cur, int64(outEst+0.5))
		if q.Having != nil {
			cur = exec.NewFilter(cur, q.Having)
		}
		if q.PostProject != nil {
			cur = exec.NewProject(cur, q.PostProject, q.PostProjectNames)
		}
	} else {
		exprs := make([]expr.Expr, len(q.SelectExprs))
		for i, e := range q.SelectExprs {
			re, err := expr.Remap(e, colMap)
			if err != nil {
				return nil, err
			}
			exprs[i] = re
		}
		cur = exec.NewProject(cur, exprs, q.SelectNames)
		if q.Distinct {
			// DISTINCT gates on the rows flowing INTO the dedup, not the
			// distinct count coming out.
			if w := parallelWays(opts, inEst); w > 1 {
				cur = planParallelDistinct(plan, cur, w)
			} else {
				keys := make([]expr.Expr, cur.Schema().Len())
				names := make([]string, cur.Schema().Len())
				for i := range keys {
					keys[i] = expr.NewColRef(i, cur.Schema().Col(i).Typ, cur.Schema().Col(i).Name)
					names[i] = cur.Schema().Col(i).Name
				}
				cur = exec.NewGroupBy(cur, keys, names, nil)
			}
			exec.SetEstRows(cur, int64(outEst+0.5))
		}
	}
	if len(q.OrderBy) > 0 {
		if w := parallelWays(opts, outEst); w > 1 {
			cur = planParallelSort(plan, cur, q.OrderBy, w)
		} else {
			cur = exec.NewSort(cur, q.OrderBy)
		}
		exec.SetEstRows(cur, int64(outEst+0.5))
	}
	if q.Limit >= 0 || q.Offset > 0 {
		limit := q.Limit
		if limit < 0 {
			limit = -1
		}
		cur = exec.NewLimit(cur, q.Offset, limit)
	}
	plan.Root = cur

	if q.Limit >= 0 && float64(q.Limit) < outEst {
		outEst = float64(q.Limit)
	}
	outBytes := outEst * float64(rowWidthOf(cur.Schema()))
	plan.EstRows = int64(outEst + 0.5)
	plan.EstBytes = int64(outBytes + 0.5)
	plan.EstMemBytes = int64(plan.memAcc + outBytes + 0.5)
	plan.Notes = append(plan.Notes, fmt.Sprintf("est: output ~%s rows, ~%d bytes (plan memory ~%d bytes, %s)",
		fmtEst(outEst), plan.EstBytes, plan.EstMemBytes, estSource(plan.StatsBacked)))
	// Profiling metadata: the root carries the plan's output estimate, every
	// node gets its pre-order id (matching EXPLAIN lines), and nodes between
	// the anchors tagged above inherit estimates from their children.
	exec.SetEstRows(cur, plan.EstRows)
	exec.AssignNodeIDs(cur)
	exec.FinalizeEstimates(cur)
	return plan, nil
}

// MinParallelRows gates the intra-node parallel join/sort/DISTINCT shapes:
// below this estimated input cardinality the exchange setup costs more than
// the parallelism pays, so tiny inputs stay serial. The estimate is
// histogram-backed when the tables were ANALYZEd and shape-heuristic
// otherwise; PlanOpts.ForceParallel overrides the gate.
const MinParallelRows = 16384

// parallelWays resolves the degree a parallel shape should plan with:
// opts.Parallelism when parallelism is on and the input is big enough (or
// forced), 1 otherwise.
func parallelWays(opts PlanOpts, estRows float64) int {
	if opts.Parallelism <= 1 {
		return 1
	}
	if opts.ForceParallel || estRows >= MinParallelRows {
		return opts.Parallelism
	}
	return 1
}

// noteWorkers records a shape's concurrent worker pipelines on the plan so
// admission can split the memory grant per worker.
func (p *PhysicalPlan) noteWorkers(w int) {
	if w > p.Workers {
		p.Workers = w
	}
}

// planParallelHashJoin builds the partitioned parallel join: both sides
// resegment on the join keys across w ways (batch-native hash-partition
// exchanges), each way hash-joins a complete key partition, and a
// ParallelUnion merges the ways. Correct for every join flavor because a
// key value — NULLs included — lives in exactly one partition on each side.
func planParallelHashJoin(plan *PhysicalPlan, jt exec.JoinType, outer, inner exec.Operator, outerKeys, innerKeys []int, w int) (exec.Operator, error) {
	exOuter := exec.NewExchange([]exec.Operator{outer}, w, outerKeys)
	exInner := exec.NewExchange([]exec.Operator{inner}, w, innerKeys)
	outerPorts, innerPorts := exOuter.Ports(), exInner.Ports()
	joins := make([]exec.Operator, w)
	for i := 0; i < w; i++ {
		hj, err := exec.NewHashJoin(jt, outerPorts[i], innerPorts[i], outerKeys, innerKeys)
		if err != nil {
			return nil, err
		}
		joins[i] = hj
	}
	plan.noteWorkers(w)
	return exec.NewParallelUnion(joins...), nil
}

// planParallelSort splits the input round-robin across w worker sorts and
// recombines them through an order-preserving merge Recv, parallelizing the
// O(n log n) sort CPU while keeping the output globally ordered.
func planParallelSort(plan *PhysicalPlan, cur exec.Operator, specs []exec.SortSpec, w int) exec.Operator {
	split := exec.NewSplitExchange(cur, w)
	sorters := make([]exec.Operator, w)
	for i, port := range split.Ports() {
		sorters[i] = exec.NewSort(port, specs)
	}
	merge := exec.NewMergeExchange(sorters, specs)
	plan.noteWorkers(w)
	plan.Notes = append(plan.Notes, fmt.Sprintf(
		"parallel sort: %d worker sorts (round-robin split), order-preserving merge Recv", w))
	return merge.Ports()[0]
}

// planParallelDistinct resegments the projected stream on all output
// columns so each of the w GroupBys deduplicates a complete, disjoint
// partition of the value space.
func planParallelDistinct(plan *PhysicalPlan, cur exec.Operator, w int) exec.Operator {
	n := cur.Schema().Len()
	ex := exec.NewExchange([]exec.Operator{cur}, w, seq(n))
	finals := make([]exec.Operator, 0, w)
	for _, port := range ex.Ports() {
		keys := make([]expr.Expr, n)
		names := make([]string, n)
		for i := range keys {
			keys[i] = expr.NewColRef(i, cur.Schema().Col(i).Typ, cur.Schema().Col(i).Name)
			names[i] = cur.Schema().Col(i).Name
		}
		finals = append(finals, exec.NewGroupBy(port, keys, names, nil))
	}
	plan.noteWorkers(w)
	plan.Notes = append(plan.Notes, fmt.Sprintf(
		"parallel distinct: resegment on all %d columns into %d GroupBys", n, w))
	return exec.NewParallelUnion(finals...)
}

// planAggregate builds the grouping pipeline: one-pass over sorted scans,
// the parallel prepass/resegment shape of Figure 3, or plain hash.
func planAggregate(p Provider, q *LogicalQuery, plan *PhysicalPlan, cur exec.Operator, colMap map[int]int, opts PlanOpts) (exec.Operator, error) {
	keys := make([]expr.Expr, len(q.GroupBy))
	names := make([]string, len(q.GroupBy))
	for i, g := range q.GroupBy {
		out, ok := colMap[g]
		if !ok {
			return nil, fmt.Errorf("optimizer: group-by column lost during planning")
		}
		name := ""
		if q.KeyNames != nil {
			name = q.KeyNames[i]
		}
		if name == "" {
			t, c := q.tableOfFlat(g)
			name = q.From[t].Table.Schema.Col(c).Name
		}
		keys[i] = expr.NewColRef(out, cur.Schema().Col(out).Typ, name)
		names[i] = name
	}
	aggs := make([]exec.AggSpec, len(q.Aggs))
	for i := range q.Aggs {
		aggs[i] = q.Aggs[i]
		if q.Aggs[i].Arg != nil {
			re, err := expr.Remap(q.Aggs[i].Arg, colMap)
			if err != nil {
				return nil, err
			}
			aggs[i].Arg = re
		}
	}
	// One-pass aggregation when the (single-table) scan can present rows
	// sorted by the group keys.
	if scan, ok := cur.(*exec.Scan); ok && len(keys) > 0 {
		if keyOuts, ok := keysArePrefixOfSort(p, q, scan, keys); ok {
			scan.MergeSorted = true
			scan.SortKey = keyOuts
			g := exec.NewGroupBy(cur, keys, names, aggs)
			g.InputSorted = true
			plan.Notes = append(plan.Notes, "one-pass aggregation on sorted projection")
			return g, nil
		}
	}
	// Figure 3 shape: parallel worker scans with prepass partial aggregation,
	// locally resegmented by group key so each final GroupBy computes
	// complete groups independently.
	if scan, ok := cur.(*exec.Scan); ok && opts.Parallelism > 1 && !opts.NoPrepass &&
		len(keys) > 0 && allPartial(aggs) {
		op, err := planParallelAggregate(q, plan, scan, keys, names, aggs, opts)
		if err == nil && op != nil {
			return op, nil
		}
		if err != nil {
			return nil, err
		}
	}
	// Serial prepass + merging GroupBy when the aggregates allow partials.
	if !opts.NoPrepass && len(keys) > 0 && allPartial(aggs) {
		pre, err := exec.NewPrepass(cur, keys, names, aggs)
		if err == nil {
			final := mergeGroupBy(pre, keys, names, aggs)
			plan.Notes = append(plan.Notes, "prepass partial aggregation enabled")
			return final, nil
		}
	}
	return exec.NewGroupBy(cur, keys, names, aggs), nil
}

func allPartial(aggs []exec.AggSpec) bool {
	for i := range aggs {
		if !aggs[i].SupportsPartial() {
			return false
		}
	}
	return true
}

// mergeGroupBy builds the final GroupBy consuming prepass partial rows:
// keys are columns 0..len(keys)-1 of the prepass output.
func mergeGroupBy(pre exec.Operator, keys []expr.Expr, names []string, aggs []exec.AggSpec) *exec.GroupBy {
	mergedKeys := make([]expr.Expr, len(keys))
	for i := range keys {
		mergedKeys[i] = expr.NewColRef(i, keys[i].Type(), names[i])
	}
	final := exec.NewGroupBy(pre, mergedKeys, names, aggs)
	final.MergePartials = true
	return final
}

// keysArePrefixOfSort checks whether the group keys are bare columns forming
// a prefix of the scan projection's sort order, returning their scan output
// indexes.
func keysArePrefixOfSort(p Provider, q *LogicalQuery, scan *exec.Scan, keys []expr.Expr) ([]int, bool) {
	proj, err := p.Catalog().Projection(scan.Projection)
	if err != nil || len(proj.SortOrder) < len(keys) {
		return nil, false
	}
	outs := make([]int, len(keys))
	for i, k := range keys {
		cr, ok := k.(*expr.ColRef)
		if !ok {
			return nil, false
		}
		if scan.Schema().Col(cr.Idx).Name != proj.SortOrder[i] {
			return nil, false
		}
		outs[i] = cr.Idx
	}
	return outs, true
}

// planParallelAggregate builds the Figure 3 plan: the StorageUnion dispatches
// worker scans over disjoint ROS container subsets, each feeding a prepass;
// the exchange locally resegments partials by group key; parallel final
// GroupBys compute complete groups; a ParallelUnion merges them.
func planParallelAggregate(q *LogicalQuery, plan *PhysicalPlan, scan *exec.Scan, keys []expr.Expr, names []string, aggs []exec.AggSpec, opts PlanOpts) (exec.Operator, error) {
	// Generation before container list: if a moveout commits in between,
	// the stale generation forces ErrStorageChanged + replan rather than
	// silently scanning a split that no longer covers the data.
	gen := scan.Mgr.Gen()
	containers := scan.Mgr.Containers()
	w := opts.Parallelism
	if w > len(containers) && len(containers) > 0 {
		w = len(containers)
	}
	if w < 1 {
		w = 1
	}
	var workers []exec.Operator
	for i := 0; i < w; i++ {
		var ids []string
		for j := i; j < len(containers); j += w {
			ids = append(ids, containers[j].Meta.ID)
		}
		ws := exec.NewScan(scan.Projection, scan.Mgr, scanProjSchema(scan), scan.Columns)
		ws.Predicate = scan.Predicate
		ws.SIPs = scan.SIPs
		ws.ContainerIDs = ids
		if ids == nil {
			ws.ContainerIDs = []string{}
		}
		ws.StorageGen = gen
		ws.IncludeWOS = i == 0
		pre, err := exec.NewPrepass(ws, keys, names, aggs)
		if err != nil {
			return nil, err
		}
		workers = append(workers, pre)
	}
	ex := exec.NewExchange(workers, opts.Parallelism, seq(len(keys)))
	var finals []exec.Operator
	for _, port := range ex.Ports() {
		finals = append(finals, mergeGroupBy(port, keys, names, aggs))
	}
	plan.noteWorkers(opts.Parallelism)
	plan.Notes = append(plan.Notes,
		fmt.Sprintf("parallel aggregation: %d worker scans, prepass, resegment into %d final GroupBys", w, opts.Parallelism))
	return exec.NewParallelUnion(finals...), nil
}

// scanProjSchema reconstructs the projection schema a scan was built from.
func scanProjSchema(s *exec.Scan) *types.Schema {
	return s.Mgr.Schema()
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// tryPrejoin answers a 2-table inner equi-join from a prejoin projection on
// the fact table when it stores every needed dimension column.
func tryPrejoin(p Provider, q *LogicalQuery, needed columnSet, perTable map[int][]expr.Expr, opts PlanOpts) (exec.Operator, map[int]int, string, bool) {
	if len(q.From) != 2 || len(q.JoinConds) != 1 || q.JoinConds[0].Type != exec.InnerJoin {
		return nil, nil, "", false
	}
	jc := q.JoinConds[0]
	offs := q.flatOffsets()
	// Identify fact (anchor) and dim sides by looking for a matching
	// prejoin projection either way around.
	for _, factIdx := range []int{jc.LeftTbl, jc.RightTbl} {
		dimIdx := jc.LeftTbl
		if factIdx == jc.LeftTbl {
			dimIdx = jc.RightTbl
		}
		factT := q.From[factIdx].Table
		dimT := q.From[dimIdx].Table
		factKey, dimKey := jc.LeftCol, jc.RightCol
		if factIdx != jc.LeftTbl {
			factKey, dimKey = jc.RightCol, jc.LeftCol
		}
		for _, proj := range p.Catalog().ProjectionsFor(factT.Name) {
			if opts.ExcludeProjections[proj.Name] || proj.IsBuddy || len(proj.Prejoin) == 0 {
				continue
			}
			match := false
			for _, pj := range proj.Prejoin {
				if pj.DimTable == dimT.Name &&
					pj.FactKey == factT.Schema.Col(factKey).Name &&
					pj.DimKey == dimT.Schema.Col(dimKey).Name {
					match = true
				}
			}
			if !match {
				continue
			}
			// Every needed column must exist in the prejoin projection. The
			// dimension's join key is not stored — by the N:1 join it equals
			// the fact key column, which serves in its place.
			colMap := map[int]int{}
			covers := true
			var projCols []int
			addCol := func(flat int, name string) {
				pi := proj.Schema.ColIndex(name)
				if pi < 0 {
					covers = false
					return
				}
				for i, pc := range projCols {
					if pc == pi {
						colMap[flat] = i
						return
					}
				}
				colMap[flat] = len(projCols)
				projCols = append(projCols, pi)
			}
			for _, c := range needed.sorted(factIdx) {
				addCol(offs[factIdx]+c, factT.Schema.Col(c).Name)
			}
			for _, c := range needed.sorted(dimIdx) {
				if c == dimKey {
					addCol(offs[dimIdx]+c, factT.Schema.Col(factKey).Name)
					continue
				}
				addCol(offs[dimIdx]+c, dimT.Name+"."+dimT.Schema.Col(c).Name)
			}
			if !covers {
				continue
			}
			mgr, err := p.ProjectionData(proj.Name)
			if err != nil {
				continue
			}
			scan := exec.NewScan(proj.Name, mgr, proj.Schema, projCols)
			// Push all single-table predicates (both tables' columns are
			// physically in this projection).
			var conjs []expr.Expr
			conjs = append(conjs, perTable[factIdx]...)
			conjs = append(conjs, perTable[dimIdx]...)
			if len(conjs) > 0 {
				pred, err := expr.Remap(expr.MustAnd(conjs...), colMap)
				if err != nil {
					continue
				}
				scan.Predicate = pred
			}
			return scan, colMap, "answered from prejoin projection " + proj.Name, true
		}
	}
	return nil, nil, "", false
}
