package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/encoding"
	"repro/internal/types"
)

// ErrStorageChanged reports that the container set changed since a plan was
// built (a moveout drained the WOS into new containers, or a retired
// container aged out of the keep-alive window). Parallel plans that pinned
// a container split at plan time replan and retry on it.
var ErrStorageChanged = errors.New("storage: container set changed since plan")

// retiredKeep bounds how many retired container readers are kept resolvable
// for in-flight scans planned before a mergeout swap. Older entries fall
// off; a scan that still asks for one gets ErrStorageChanged and replans.
const retiredKeep = 64

// Manager owns the physical storage of one projection on one node: its ROS
// containers, WOS and delete vectors. Container layouts are private to each
// node — "while two nodes might contain the same tuples, it is common for
// them to have a different layout of ROS containers" (paper §4).
type Manager struct {
	mu  sync.RWMutex
	dir string

	schema        *types.Schema // projection columns + implicit $epoch last
	nextID        int64
	containers    map[string]*ContainerReader
	wos           *WOS
	dvs           *DVStore
	localSegments int
	maxROSBytes   int64

	// gen counts committed moveouts: any event that changes which store
	// (WOS vs ROS) holds a row. Plans that split containers across parallel
	// workers record it and fail with ErrStorageChanged when it moved.
	gen int64
	// retired keeps recently swapped-out readers resolvable (bounded FIFO).
	retired      map[string]*ContainerReader
	retiredOrder []string
}

// ManagerOpts configures a projection storage manager.
type ManagerOpts struct {
	WOSMaxBytes   int64
	LocalSegments int   // intra-node local segments (paper §3.6); default 3
	MaxROSBytes   int64 // mergeout output cap (the paper's 2TB); default 1<<40
}

// NewManager creates (or reopens) the storage for one projection under dir.
// schema is the projection's user-visible schema; the implicit epoch column
// is managed internally.
func NewManager(dir string, schema *types.Schema, opts ManagerOpts) (*Manager, error) {
	if opts.LocalSegments <= 0 {
		opts.LocalSegments = 3
	}
	if opts.MaxROSBytes <= 0 {
		opts.MaxROSBytes = 1 << 40
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dvs, err := NewDVStore(filepath.Join(dir, "dv"))
	if err != nil {
		return nil, err
	}
	m := &Manager{
		dir:           dir,
		schema:        schema,
		containers:    map[string]*ContainerReader{},
		wos:           NewWOS(schema, opts.WOSMaxBytes),
		dvs:           dvs,
		localSegments: opts.LocalSegments,
		maxROSBytes:   opts.MaxROSBytes,
		gen:           1,
		retired:       map[string]*ContainerReader{},
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "ros_") {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.RemoveAll(filepath.Join(dir, e.Name())) // crash leftovers
			continue
		}
		r, err := OpenContainer(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("storage: reopening %s: %w", e.Name(), err)
		}
		m.containers[r.Meta.ID] = r
		var seq int64
		if _, err := fmt.Sscanf(r.Meta.ID, "ros_%d", &seq); err == nil && seq >= m.nextID {
			m.nextID = seq + 1
		}
	}
	return m, nil
}

// Schema returns the projection schema (without the implicit epoch column).
func (m *Manager) Schema() *types.Schema { return m.schema }

// StoredColumns returns the full stored column specs including the trailing
// implicit epoch column, applying the given per-column encodings (Auto when
// enc is nil or missing a column).
func (m *Manager) StoredColumns(encs map[string]ColumnSpec) []ColumnSpec {
	cols := make([]ColumnSpec, 0, m.schema.Len()+1)
	for _, c := range m.schema.Cols {
		// Auto is the default encoding (paper §3.4.1): the system picks the
		// most advantageous scheme from the data itself.
		spec := ColumnSpec{Name: c.Name, Typ: c.Typ, Enc: encoding.Auto}
		if e, ok := encs[c.Name]; ok {
			spec.Enc = e.Enc
		}
		cols = append(cols, spec)
	}
	// The epoch column is always RLE: commits stamp long runs of equal epochs.
	cols = append(cols, ColumnSpec{Name: EpochColumn, Typ: types.Int64, Enc: encoding.RLE})
	return cols
}

// WOS returns the projection's write-optimized store.
func (m *Manager) WOS() *WOS { return m.wos }

// DVs returns the projection's delete-vector store.
func (m *Manager) DVs() *DVStore { return m.dvs }

// LocalSegments returns the number of intra-node local segments.
func (m *Manager) LocalSegments() int { return m.localSegments }

// MaxROSBytes returns the mergeout output size cap.
func (m *Manager) MaxROSBytes() int64 { return m.maxROSBytes }

// Dir returns the manager's root directory.
func (m *Manager) Dir() string { return m.dir }

// NewContainerID reserves the next container ID and returns (id, dir).
func (m *Manager) NewContainerID() (string, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := fmt.Sprintf("ros_%08d", m.nextID)
	m.nextID++
	return id, filepath.Join(m.dir, id)
}

// Publish registers a freshly written container.
func (m *Manager) Publish(meta *ContainerMeta) error {
	r, err := OpenContainer(filepath.Join(m.dir, meta.ID))
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.containers[meta.ID] = r
	return nil
}

// retireLocked detaches a container reader: its caches are preloaded into
// memory and its delete vectors snapshotted, so queries that resolved the
// reader before the swap keep a consistent view after the files are
// deleted. Preload failure is tolerated — a scan needing the missing data
// fails exactly as it would have without retirement. Callers hold m.mu.
func (m *Manager) retireLocked(id string) {
	r := m.containers[id]
	if r == nil {
		return
	}
	_ = r.Preload()
	r.Retire(m.dvs.Get(id))
	delete(m.containers, id)
	m.retired[id] = r
	m.retiredOrder = append(m.retiredOrder, id)
	for len(m.retiredOrder) > retiredKeep {
		old := m.retiredOrder[0]
		m.retiredOrder = m.retiredOrder[1:]
		delete(m.retired, old)
	}
}

// Remove deletes containers (and their delete vectors) from disk; used by
// mergeout, rollback and partition drop. Readers are retired before their
// files are deleted: queries take no locks ("a query executing in the
// recent past needs no locks", §5), so an in-flight scan may still hold a
// removed container and must keep reading a consistent image of it.
func (m *Manager) Remove(ids ...string) error {
	m.mu.Lock()
	for _, id := range ids {
		m.retireLocked(id)
	}
	m.mu.Unlock()
	for _, id := range ids {
		if err := os.RemoveAll(filepath.Join(m.dir, id)); err != nil {
			return err
		}
		if err := m.dvs.Drop(id); err != nil {
			return err
		}
	}
	return nil
}

// MoveoutCommit is the atomic publication step of a moveout: the containers
// written from a WOS snapshot, the delete vectors translated to container
// positions, the WOS prefix to drain, and the WOS delete vectors that
// survive (they reference rows beyond the drained prefix).
type MoveoutCommit struct {
	Metas        []*ContainerMeta
	DVs          map[string][]DVEntry
	DrainThrough int64 // highest WOS position covered by Metas
	WOSRemaining []DVEntry
}

// CommitMoveout atomically swaps a WOS prefix for its ROS containers:
// registration of the new containers (and their translated delete vectors)
// and the WOS drain happen under one lock, so no ScanView can observe the
// moved rows in both stores or in neither.
func (m *Manager) CommitMoveout(c MoveoutCommit) error {
	readers := make([]*ContainerReader, len(c.Metas))
	for i, meta := range c.Metas {
		r, err := OpenContainer(filepath.Join(m.dir, meta.ID))
		if err != nil {
			return err
		}
		readers[i] = r
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, entries := range c.DVs {
		m.dvs.Add(id, entries)
	}
	for i, meta := range c.Metas {
		m.containers[meta.ID] = readers[i]
	}
	m.wos.DrainThrough(c.DrainThrough)
	m.dvs.Rewrite(WOSTarget, c.WOSRemaining)
	m.gen++
	return nil
}

// SwapContainers atomically replaces merge inputs with the merged output:
// the output container and its delete vectors become visible in the same
// critical section that retires the inputs, so no ScanView can double-count
// (or miss) the merged rows. Input files are deleted only after retirement
// preloaded them for in-flight scans.
func (m *Manager) SwapContainers(meta *ContainerMeta, outDVs []DVEntry, removeIDs []string) error {
	r, err := OpenContainer(filepath.Join(m.dir, meta.ID))
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.dvs.Add(meta.ID, outDVs)
	m.containers[meta.ID] = r
	for _, id := range removeIDs {
		m.retireLocked(id)
	}
	m.mu.Unlock()
	for _, id := range removeIDs {
		if err := os.RemoveAll(filepath.Join(m.dir, id)); err != nil {
			return err
		}
		if err := m.dvs.Drop(id); err != nil {
			return err
		}
	}
	return nil
}

// Gen returns the storage generation (see ErrStorageChanged).
func (m *Manager) Gen() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.gen
}

// ScanView is an atomic snapshot of the stores a scan reads: the registered
// containers plus the WOS rows visible at the snapshot epoch with WOS
// delete vectors already applied, and the storage generation they were
// captured at.
type ScanView struct {
	Gen        int64
	Containers []*ContainerReader
	WOSRows    []WOSRow
	byID       map[string]*ContainerReader
}

// Container resolves a container ID within the view.
func (v *ScanView) Container(id string) (*ContainerReader, bool) {
	r, ok := v.byID[id]
	return r, ok
}

// ScanView captures containers, visible WOS rows and WOS delete vectors
// under one lock, so a concurrent moveout commit can never be observed
// half-applied (rows present in neither store — or in both).
func (m *Manager) ScanView(epoch types.Epoch, includeWOS bool) *ScanView {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v := &ScanView{
		Gen:        m.gen,
		Containers: make([]*ContainerReader, 0, len(m.containers)),
		byID:       make(map[string]*ContainerReader, len(m.containers)),
	}
	for id, r := range m.containers {
		v.Containers = append(v.Containers, r)
		v.byID[id] = r
	}
	sort.Slice(v.Containers, func(i, j int) bool {
		return v.Containers[i].Meta.ID < v.Containers[j].Meta.ID
	})
	if includeWOS {
		rows := m.wos.Snapshot(epoch)
		if deleted := m.dvs.DeletedAt(WOSTarget, epoch); len(deleted) > 0 {
			delSet := make(map[int64]bool, len(deleted))
			for _, p := range deleted {
				delSet[p] = true
			}
			kept := rows[:0]
			for _, r := range rows {
				if !delSet[r.Pos] {
					kept = append(kept, r)
				}
			}
			rows = kept
		}
		v.WOSRows = rows
	}
	return v
}

// Containers returns a stable-ordered snapshot of current container readers.
func (m *Manager) Containers() []*ContainerReader {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*ContainerReader, 0, len(m.containers))
	for _, r := range m.containers {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.ID < out[j].Meta.ID })
	return out
}

// Container returns the reader for one container ID. Recently retired
// containers still resolve (to their preloaded, DV-snapshotted readers), so
// scans planned before a mergeout swap keep their plan-time container set.
func (m *Manager) Container(id string) (*ContainerReader, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if r, ok := m.containers[id]; ok {
		return r, ok
	}
	r, ok := m.retired[id]
	return r, ok
}

// RowCount returns the total ROS row count (not excluding deleted rows).
func (m *Manager) RowCount() int64 {
	var n int64
	for _, r := range m.Containers() {
		n += r.Meta.RowCount
	}
	return n
}

// TotalBytes returns total encoded bytes across containers.
func (m *Manager) TotalBytes() int64 {
	var n int64
	for _, r := range m.Containers() {
		n += r.Meta.SizeBytes
	}
	return n
}

// Partitions returns the distinct partition keys present in the ROS.
func (m *Manager) Partitions() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range m.Containers() {
		if !seen[r.Meta.Partition] {
			seen[r.Meta.Partition] = true
			out = append(out, r.Meta.Partition)
		}
	}
	sort.Strings(out)
	return out
}

// DropPartition removes every container whose partition key matches —
// the paper's "fast bulk deletion ... as simple as deleting files from a
// filesystem" (§3.5). Returns the number of rows dropped.
func (m *Manager) DropPartition(key string) (int64, error) {
	var ids []string
	var rows int64
	for _, r := range m.Containers() {
		if r.Meta.Partition == key {
			ids = append(ids, r.Meta.ID)
			rows += r.Meta.RowCount
		}
	}
	if err := m.Remove(ids...); err != nil {
		return 0, err
	}
	return rows, nil
}

// SnapshotHardlink hard-links every container file into destDir — the
// paper's backup mechanism (§5.2): "creates hard-links for each Vertica data
// file on the file system" so files cannot vanish while the backup is copied.
func (m *Manager) SnapshotHardlink(destDir string) error {
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	for _, r := range m.Containers() {
		cdir := filepath.Join(destDir, r.Meta.ID)
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			return err
		}
		ents, err := os.ReadDir(r.Dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			src := filepath.Join(r.Dir, e.Name())
			dst := filepath.Join(cdir, e.Name())
			if err := os.Link(src, dst); err != nil {
				return err
			}
		}
	}
	return nil
}
