package storage

import (
	"fmt"
	"sync"

	"repro/internal/types"
)

// WOS is the in-memory Write Optimized Store (paper §3.7): it buffers small
// inserts so that writes to physical structures contain enough rows to
// amortize write cost. Data in the WOS is unencoded and uncompressed; rows
// carry their commit epoch (the implicit epoch column). Row orientation is
// used here — the paper notes Vertica moved between row and column WOS
// layouts with "no significant performance differences".
//
// Each row is identified by a monotonically increasing WOS position, which
// delete vectors reference; moveout translates surviving delete vectors to
// container positions (see tuplemover).
type WOS struct {
	mu       sync.RWMutex
	schema   *types.Schema
	rows     []types.Row
	epochs   []types.Epoch
	firstPos int64 // WOS position of rows[0]
	bytes    int64
	maxBytes int64
}

// WOSRow is a row with its identity and commit epoch, as returned by Snapshot.
type WOSRow struct {
	Pos   int64
	Epoch types.Epoch
	Row   types.Row
}

// NewWOS creates a WOS for a projection schema. maxBytes bounds memory;
// beyond it the WOS reports saturation and loads go direct to ROS
// ("in the event that the WOS becomes saturated ... subsequently loaded data
// is written directly to new ROS containers", paper §4).
func NewWOS(schema *types.Schema, maxBytes int64) *WOS {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &WOS{schema: schema, maxBytes: maxBytes}
}

// Schema returns the projection schema (without the implicit epoch column).
func (w *WOS) Schema() *types.Schema { return w.schema }

// Append adds committed rows at the given epoch and returns the WOS position
// of the first appended row.
func (w *WOS) Append(rows []types.Row, epoch types.Epoch) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := w.firstPos + int64(len(w.rows))
	for _, r := range rows {
		if len(r) != w.schema.Len() {
			return 0, fmt.Errorf("storage: WOS row arity %d != schema %d", len(r), w.schema.Len())
		}
		w.rows = append(w.rows, r)
		w.epochs = append(w.epochs, epoch)
		w.bytes += rowBytes(r)
	}
	return start, nil
}

// rowBytes estimates the in-memory footprint of a row.
func rowBytes(r types.Row) int64 {
	b := int64(0)
	for _, v := range r {
		b += 24
		if v.Typ == types.Varchar {
			b += int64(len(v.S))
		}
	}
	return b
}

// Saturated reports whether the WOS is over its memory budget.
func (w *WOS) Saturated() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.bytes >= w.maxBytes
}

// Len returns the current number of buffered rows.
func (w *WOS) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.rows)
}

// Bytes returns the current memory footprint estimate.
func (w *WOS) Bytes() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.bytes
}

// Snapshot returns a copy of all rows committed at or before epoch, with
// their WOS positions. Queries over the WOS use this (no locks held after
// return — "a query executing in the recent past needs no locks", §5).
func (w *WOS) Snapshot(epoch types.Epoch) []WOSRow {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]WOSRow, 0, len(w.rows))
	for i, r := range w.rows {
		if w.epochs[i] <= epoch {
			out = append(out, WOSRow{Pos: w.firstPos + int64(i), Epoch: w.epochs[i], Row: r})
		}
	}
	return out
}

// DrainUpTo removes and returns every row with epoch <= bound (moveout).
// Rows committed after bound stay buffered. Positions remain stable: the
// WOS's firstPos advances past drained rows; any retained newer rows keep
// their original positions only if no older row remains before them, so
// moveout always drains a prefix in practice — the tuple mover drains with
// bound = current epoch. Mixed retention is handled by re-basing positions.
func (w *WOS) DrainUpTo(bound types.Epoch) []WOSRow {
	w.mu.Lock()
	defer w.mu.Unlock()
	var drained []WOSRow
	var keptRows []types.Row
	var keptEpochs []types.Epoch
	var keptPos []int64
	for i, r := range w.rows {
		p := w.firstPos + int64(i)
		if w.epochs[i] <= bound {
			drained = append(drained, WOSRow{Pos: p, Epoch: w.epochs[i], Row: r})
			w.bytes -= rowBytes(r)
		} else {
			keptRows = append(keptRows, r)
			keptEpochs = append(keptEpochs, w.epochs[i])
			keptPos = append(keptPos, p)
		}
	}
	if len(keptRows) == 0 {
		w.firstPos += int64(len(w.rows))
		w.rows, w.epochs = nil, nil
		return drained
	}
	// Re-base retained rows at their first surviving position; since drains
	// take a prefix (epochs are monotone), positions are preserved.
	w.firstPos = keptPos[0]
	w.rows, w.epochs = keptRows, keptEpochs
	return drained
}

// DrainThrough removes and returns every row at a WOS position <= pos.
// Moveout snapshots the WOS, writes containers outside any lock, then
// commits by draining exactly the snapshotted prefix — rows appended in
// between (necessarily at higher positions) stay buffered, so the drain
// and the published containers always cover the same rows.
func (w *WOS) DrainThrough(pos int64) []WOSRow {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := pos - w.firstPos + 1
	if n <= 0 {
		return nil
	}
	if n > int64(len(w.rows)) {
		n = int64(len(w.rows))
	}
	drained := make([]WOSRow, 0, n)
	for i := int64(0); i < n; i++ {
		drained = append(drained, WOSRow{Pos: w.firstPos + i, Epoch: w.epochs[i], Row: w.rows[i]})
		w.bytes -= rowBytes(w.rows[i])
	}
	w.firstPos += n
	w.rows = append([]types.Row(nil), w.rows[n:]...)
	w.epochs = append([]types.Epoch(nil), w.epochs[n:]...)
	if len(w.rows) == 0 {
		w.rows, w.epochs = nil, nil
	}
	return drained
}

// Truncate discards every row with epoch > bound (recovery: "the node
// truncates all tuples that were inserted after its LGE", §5.2).
func (w *WOS) Truncate(bound types.Epoch) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := 0
	removed := 0
	for i, r := range w.rows {
		if w.epochs[i] <= bound {
			w.rows[kept] = w.rows[i]
			w.epochs[kept] = w.epochs[i]
			kept++
		} else {
			w.bytes -= rowBytes(r)
			removed++
		}
	}
	w.rows = w.rows[:kept]
	w.epochs = w.epochs[:kept]
	return removed
}
