package storage

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/types"
)

// TestBlockCacheHitOnRepeatedDecode: decoding the same block twice serves
// the second decode from the cache, returning the identical vector.
func TestBlockCacheHitOnRepeatedDecode(t *testing.T) {
	defer SetBlockCacheBudget(DefaultBlockCacheBytes)
	SetBlockCacheBudget(DefaultBlockCacheBytes) // reset LRU state across tests
	r, _ := writeTestContainer(t, t.TempDir(), 200)
	pidx, err := r.Pidx(0)
	if err != nil {
		t.Fatal(err)
	}
	hits0 := metrics.BlockCacheHits.Value()
	v1, err := r.decodeBlock(0, &pidx[0], false)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.decodeBlock(0, &pidx[0], false)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("second decode did not return the cached vector")
	}
	if d := metrics.BlockCacheHits.Value() - hits0; d != 1 {
		t.Fatalf("hit counter delta = %d", d)
	}
	// preserveRuns requests a different vector shape: it must not alias the
	// flat cached entry.
	v3, err := r.decodeBlock(1, &pidx[0], true)
	if err != nil {
		t.Fatal(err)
	}
	v4, err := r.decodeBlock(1, &pidx[0], false)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v4 {
		t.Fatal("preserveRuns variants share a cache entry")
	}
}

// TestBlockCacheBudgetAndEviction: inserts beyond the budget evict the
// least-recently-used entries, and a zero budget disables caching.
func TestBlockCacheBudgetAndEviction(t *testing.T) {
	defer SetBlockCacheBudget(DefaultBlockCacheBytes)
	r, _ := writeTestContainer(t, t.TempDir(), 640) // 10 blocks of 64 rows
	pidx, err := r.Pidx(0)
	if err != nil {
		t.Fatal(err)
	}

	// Budget for roughly two 64-row int blocks (64*8 + overhead each).
	SetBlockCacheBudget(1200)
	ev0 := metrics.BlockCacheEvictions.Value()
	for i := 0; i < len(pidx); i++ {
		if _, err := r.decodeBlock(0, &pidx[i], false); err != nil {
			t.Fatal(err)
		}
	}
	if used := BlockCacheUsed(); used > 1200 {
		t.Fatalf("cache used %d bytes, budget 1200", used)
	}
	if metrics.BlockCacheEvictions.Value() == ev0 {
		t.Fatal("no evictions despite exceeding the budget")
	}

	// Zero budget: nothing is retained.
	SetBlockCacheBudget(0)
	if used := BlockCacheUsed(); used != 0 {
		t.Fatalf("cache not emptied by zero budget: %d bytes", used)
	}
	if _, err := r.decodeBlock(0, &pidx[0], false); err != nil {
		t.Fatal(err)
	}
	if used := BlockCacheUsed(); used != 0 {
		t.Fatalf("zero-budget cache retained %d bytes", used)
	}
}

// TestBlockCacheDistinctColumns: blocks of different columns and types cache
// under distinct keys and decode to their own values.
func TestBlockCacheDistinctColumns(t *testing.T) {
	defer SetBlockCacheBudget(DefaultBlockCacheBytes)
	SetBlockCacheBudget(DefaultBlockCacheBytes)
	r, _ := writeTestContainer(t, t.TempDir(), 128)
	for c, typ := range []types.Type{types.Int64, types.Varchar, types.Float64} {
		pidx, err := r.Pidx(c)
		if err != nil {
			t.Fatal(err)
		}
		v, err := r.decodeBlock(c, &pidx[0], false)
		if err != nil {
			t.Fatal(err)
		}
		if v.Typ != typ {
			t.Fatalf("col %d decoded as %s, want %s", c, v.Typ, typ)
		}
		again, err := r.decodeBlock(c, &pidx[0], false)
		if err != nil {
			t.Fatal(err)
		}
		if again != v {
			t.Fatalf("col %d second decode missed the cache", c)
		}
	}
}
