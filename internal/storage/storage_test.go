package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/encoding"
	"repro/internal/types"
	"repro/internal/vector"
)

func testMeta(id string) *ContainerMeta {
	return &ContainerMeta{
		ID:         id,
		Projection: "p1",
		Cols: []ColumnSpec{
			{Name: "a", Typ: types.Int64, Enc: encoding.Auto},
			{Name: "b", Typ: types.Varchar, Enc: encoding.RLE},
			{Name: "v", Typ: types.Float64, Enc: encoding.Auto},
		},
		MinEpoch: 1, MaxEpoch: 1,
	}
}

func buildBatch(n int) *vector.Batch {
	a := vector.New(types.Int64, n)
	b := vector.New(types.Varchar, n)
	v := vector.New(types.Float64, n)
	for i := 0; i < n; i++ {
		a.AppendValue(types.NewInt(int64(i)))
		b.AppendValue(types.NewString([]string{"cpu", "mem", "disk"}[i/(n/3+1)]))
		v.AppendValue(types.NewFloat(float64(i) * 0.5))
	}
	return vector.NewBatch(a, b, v)
}

func writeTestContainer(t *testing.T, dir string, n int) (*ContainerReader, *ContainerMeta) {
	t.Helper()
	meta := testMeta("ros_00000001")
	got, err := WriteContainerFromBatch(filepath.Join(dir, meta.ID), meta, buildBatch(n), WriterOpts{BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenContainer(filepath.Join(dir, meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	return r, got
}

func TestContainerWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, meta := writeTestContainer(t, dir, 200)
	if meta.RowCount != 200 {
		t.Fatalf("RowCount = %d", meta.RowCount)
	}
	if meta.SizeBytes <= 0 {
		t.Fatal("SizeBytes not recorded")
	}
	batch, err := r.ReadAll([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() != 200 {
		t.Fatalf("read %d rows", batch.Len())
	}
	if batch.Cols[0].Ints[123] != 123 {
		t.Error("int column wrong")
	}
	if batch.Cols[2].Floats[10] != 5.0 {
		t.Error("float column wrong")
	}
}

func TestContainerTwoFilesPerColumn(t *testing.T) {
	// Paper §3.7: "Vertica stores two files per column within a ROS
	// container: one with the actual column data, and one with a position
	// index."
	dir := t.TempDir()
	r, _ := writeTestContainer(t, dir, 100)
	ents, err := os.ReadDir(r.Dir)
	if err != nil {
		t.Fatal(err)
	}
	dat, pidx, other := 0, 0, 0
	for _, e := range ents {
		switch filepath.Ext(e.Name()) {
		case ".dat":
			dat++
		case ".pidx":
			pidx++
		case ".json":
			other++
		default:
			t.Errorf("unexpected file %s", e.Name())
		}
	}
	if dat != 3 || pidx != 3 || other != 1 {
		t.Errorf("files: %d dat, %d pidx, %d meta; want 3/3/1", dat, pidx, other)
	}
}

func TestPositionIndexMinMax(t *testing.T) {
	dir := t.TempDir()
	r, _ := writeTestContainer(t, dir, 200)
	pidx, err := r.Pidx(0)
	if err != nil {
		t.Fatal(err)
	}
	// 200 rows at 64/block = 4 blocks.
	if len(pidx) != 4 {
		t.Fatalf("pidx blocks = %d, want 4", len(pidx))
	}
	if pidx[0].Min.I != 0 || pidx[0].Max.I != 63 {
		t.Errorf("block 0 min/max = %v/%v", pidx[0].Min, pidx[0].Max)
	}
	if pidx[3].FirstPos != 192 || pidx[3].RowCount != 8 {
		t.Errorf("block 3 firstPos/rows = %d/%d", pidx[3].FirstPos, pidx[3].RowCount)
	}
}

func TestBlockPruning(t *testing.T) {
	dir := t.TempDir()
	r, _ := writeTestContainer(t, dir, 256)
	// Scan column a with filter a >= 200: only the last block (192..255)
	// should be decoded.
	bound := types.NewInt(200)
	blocks := 0
	it := r.NewColumnIter(0, func(e *PidxEntry) bool {
		pr := PruneRange{Min: e.Min, Max: e.Max, Valid: true}
		return pr.MayContainGt(bound, true)
	})
	for {
		v, first, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			break
		}
		blocks++
		if first != 192 {
			t.Errorf("unpruned block at pos %d", first)
		}
	}
	if blocks != 1 {
		t.Errorf("decoded %d blocks, want 1", blocks)
	}
}

func TestColumnRangeAndPruneRange(t *testing.T) {
	dir := t.TempDir()
	r, _ := writeTestContainer(t, dir, 100)
	pr, err := r.ColumnRange(0)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Valid || pr.Min.I != 0 || pr.Max.I != 99 {
		t.Fatalf("ColumnRange = %+v", pr)
	}
	if pr.MayContainEq(types.NewInt(150)) {
		t.Error("150 cannot be in [0,99]")
	}
	if !pr.MayContainEq(types.NewInt(50)) {
		t.Error("50 must be in [0,99]")
	}
	if pr.MayContainGt(types.NewInt(99), false) {
		t.Error("nothing > 99 in [0,99]")
	}
	if !pr.MayContainGt(types.NewInt(99), true) {
		t.Error(">= 99 must match")
	}
	if pr.MayContainLt(types.NewInt(0), false) {
		t.Error("nothing < 0 in [0,99]")
	}
	var invalid PruneRange
	if !invalid.MayContainEq(types.NewInt(5)) {
		t.Error("invalid range must never prune")
	}
}

func TestFetchPositions(t *testing.T) {
	dir := t.TempDir()
	r, _ := writeTestContainer(t, dir, 300)
	v, err := r.FetchPositions(0, []int64{0, 63, 64, 299})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 63, 64, 299}
	for i, w := range want {
		if v.Ints[i] != w {
			t.Errorf("fetch[%d] = %d, want %d", i, v.Ints[i], w)
		}
	}
	if _, err := r.FetchPositions(0, []int64{300}); err == nil {
		t.Error("out-of-range position should error")
	}
}

func TestColumnIterSkipTo(t *testing.T) {
	dir := t.TempDir()
	r, _ := writeTestContainer(t, dir, 256)
	it := r.NewColumnIter(0, nil)
	if err := it.SkipTo(130); err != nil {
		t.Fatal(err)
	}
	v, first, err := it.Next()
	if err != nil || v == nil {
		t.Fatal(err)
	}
	if first != 128 {
		t.Errorf("SkipTo landed at block starting %d, want 128", first)
	}
}

func TestRLEBlocksPreserveRunsThroughReader(t *testing.T) {
	dir := t.TempDir()
	r, _ := writeTestContainer(t, dir, 99) // "b" column has 3 long runs
	it := r.NewColumnIter(1, nil)
	it.PreserveRuns = true
	v, _, err := it.Next()
	if err != nil || v == nil {
		t.Fatal(err)
	}
	if !v.IsRLE() {
		t.Error("expected run-length vector from RLE block")
	}
}

func TestWOSAppendSnapshotDrain(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "a", Typ: types.Int64})
	w := NewWOS(schema, 1<<20)
	rows := []types.Row{{types.NewInt(1)}, {types.NewInt(2)}}
	p0, err := w.Append(rows, 5)
	if err != nil || p0 != 0 {
		t.Fatalf("Append: %d, %v", p0, err)
	}
	p1, _ := w.Append([]types.Row{{types.NewInt(3)}}, 7)
	if p1 != 2 {
		t.Fatalf("second Append pos = %d", p1)
	}
	if got := len(w.Snapshot(5)); got != 2 {
		t.Errorf("Snapshot(5) = %d rows", got)
	}
	if got := len(w.Snapshot(7)); got != 3 {
		t.Errorf("Snapshot(7) = %d rows", got)
	}
	drained := w.DrainUpTo(5)
	if len(drained) != 2 || drained[0].Pos != 0 || drained[1].Epoch != 5 {
		t.Errorf("DrainUpTo = %+v", drained)
	}
	if w.Len() != 1 {
		t.Errorf("post-drain Len = %d", w.Len())
	}
	// Remaining row keeps its position.
	snap := w.Snapshot(types.MaxEpoch)
	if len(snap) != 1 || snap[0].Pos != 2 {
		t.Errorf("post-drain snapshot = %+v", snap)
	}
}

func TestWOSTruncate(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "a", Typ: types.Int64})
	w := NewWOS(schema, 1<<20)
	w.Append([]types.Row{{types.NewInt(1)}}, 3)
	w.Append([]types.Row{{types.NewInt(2)}}, 9)
	if removed := w.Truncate(5); removed != 1 {
		t.Errorf("Truncate removed %d, want 1", removed)
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestWOSSaturation(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "s", Typ: types.Varchar})
	w := NewWOS(schema, 100)
	if w.Saturated() {
		t.Error("empty WOS saturated")
	}
	w.Append([]types.Row{{types.NewString("0123456789012345678901234567890123456789012345678901234567890123456789012345678901234567890123456789")}}, 1)
	if !w.Saturated() {
		t.Error("WOS should be saturated")
	}
}

func TestWOSArityCheck(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "a", Typ: types.Int64})
	w := NewWOS(schema, 0)
	if _, err := w.Append([]types.Row{{types.NewInt(1), types.NewInt(2)}}, 1); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestDVStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDVStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Add("ros_1", []DVEntry{{Pos: 10, Epoch: 5}, {Pos: 3, Epoch: 6}})
	got := s.Get("ros_1")
	if len(got) != 2 || got[0].Pos != 3 {
		t.Errorf("Get = %+v", got)
	}
	if del := s.DeletedAt("ros_1", 5); len(del) != 1 || del[0] != 10 {
		t.Errorf("DeletedAt(5) = %v", del)
	}
	if del := s.DeletedAt("ros_1", 6); len(del) != 2 {
		t.Errorf("DeletedAt(6) = %v", del)
	}
	// Persist and reload from disk.
	if err := s.Persist("ros_1"); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDVStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Get("ros_1"); len(got) != 2 {
		t.Errorf("reloaded Get = %+v", got)
	}
	if err := s2.Drop("ros_1"); err != nil {
		t.Fatal(err)
	}
	if got := s2.Get("ros_1"); len(got) != 0 {
		t.Error("Drop did not clear entries")
	}
}

func TestDVStoreMemTargetsAndRewrite(t *testing.T) {
	s, _ := NewDVStore(t.TempDir())
	s.Add(WOSTarget, []DVEntry{{Pos: 1, Epoch: 2}})
	s.Add("ros_2", []DVEntry{{Pos: 0, Epoch: 2}})
	mt := s.MemTargets()
	if len(mt) != 2 {
		t.Errorf("MemTargets = %v", mt)
	}
	s.Rewrite(WOSTarget, nil)
	if len(s.Get(WOSTarget)) != 0 {
		t.Error("Rewrite(nil) should clear")
	}
	s.Rewrite("ros_2", []DVEntry{{Pos: 9, Epoch: 3}, {Pos: 4, Epoch: 3}})
	got := s.Get("ros_2")
	if len(got) != 2 || got[0].Pos != 4 {
		t.Errorf("Rewrite result = %+v", got)
	}
}

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "a", Typ: types.Int64},
		types.Column{Name: "b", Typ: types.Varchar},
		types.Column{Name: "v", Typ: types.Float64},
	)
	m, err := NewManager(t.TempDir(), schema, ManagerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func managerAddContainer(t *testing.T, m *Manager, partition string, seg int, n int) *ContainerMeta {
	t.Helper()
	id, dir := m.NewContainerID()
	meta := testMeta(id)
	meta.Partition = partition
	meta.LocalSegment = seg
	got, err := WriteContainerFromBatch(dir, meta, buildBatch(n), WriterOpts{BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Publish(got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestManagerPublishListRemove(t *testing.T) {
	m := newTestManager(t)
	managerAddContainer(t, m, "2012-03", 0, 100)
	managerAddContainer(t, m, "2012-04", 1, 50)
	if len(m.Containers()) != 2 {
		t.Fatalf("containers = %d", len(m.Containers()))
	}
	if m.RowCount() != 150 {
		t.Errorf("RowCount = %d", m.RowCount())
	}
	if m.TotalBytes() <= 0 {
		t.Error("TotalBytes not accumulated")
	}
	first := m.Containers()[0].Meta.ID
	if err := m.Remove(first); err != nil {
		t.Fatal(err)
	}
	if len(m.Containers()) != 1 {
		t.Error("Remove did not drop container")
	}
	// Removed containers stay resolvable as retired readers: queries take
	// no locks, so an in-flight scan that planned against the old container
	// set must still be able to read a consistent, preloaded image.
	r, ok := m.Container(first)
	if !ok {
		t.Fatal("removed container not resolvable as a retired reader")
	}
	if _, retired := r.RetiredDVs(); !retired {
		t.Error("removed container's reader is not marked retired")
	}
	if _, err := r.ReadAll([]int{0}); err != nil {
		t.Errorf("retired reader cannot read preloaded data: %v", err)
	}
	for _, live := range m.Containers() {
		if live.Meta.ID == first {
			t.Error("removed container still listed by Containers()")
		}
	}
}

func TestManagerReopen(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Typ: types.Int64},
		types.Column{Name: "b", Typ: types.Varchar},
		types.Column{Name: "v", Typ: types.Float64},
	)
	dir := t.TempDir()
	m, err := NewManager(dir, schema, ManagerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	managerAddContainer(t, m, "p", 0, 80)
	m2, err := NewManager(dir, schema, ManagerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Containers()) != 1 || m2.RowCount() != 80 {
		t.Fatalf("reopen: %d containers, %d rows", len(m2.Containers()), m2.RowCount())
	}
	// ID allocation must continue past existing containers.
	id, _ := m2.NewContainerID()
	if id == m2.Containers()[0].Meta.ID {
		t.Error("NewContainerID reused an existing ID")
	}
}

func TestManagerDropPartition(t *testing.T) {
	m := newTestManager(t)
	managerAddContainer(t, m, "2012-03", 0, 100)
	managerAddContainer(t, m, "2012-03", 1, 100)
	managerAddContainer(t, m, "2012-04", 0, 100)
	if got := m.Partitions(); len(got) != 2 {
		t.Fatalf("Partitions = %v", got)
	}
	rows, err := m.DropPartition("2012-03")
	if err != nil {
		t.Fatal(err)
	}
	if rows != 200 {
		t.Errorf("dropped %d rows, want 200", rows)
	}
	if got := m.Partitions(); len(got) != 1 || got[0] != "2012-04" {
		t.Errorf("remaining partitions = %v", got)
	}
}

func TestManagerBackupHardlink(t *testing.T) {
	m := newTestManager(t)
	meta := managerAddContainer(t, m, "p", 0, 64)
	backup := filepath.Join(t.TempDir(), "backup")
	if err := m.SnapshotHardlink(backup); err != nil {
		t.Fatal(err)
	}
	// Remove the live container; backup must still open.
	if err := m.Remove(meta.ID); err != nil {
		t.Fatal(err)
	}
	r, err := OpenContainer(filepath.Join(backup, meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadAll([]int{0})
	if err != nil || b.Len() != 64 {
		t.Fatalf("backup read: %v rows=%d", err, b.Len())
	}
}

func TestFigure2Layout(t *testing.T) {
	// Paper Figure 2: a node with PARTITION BY month/year and 3 local
	// segments holds 14 ROS containers over 4 partition keys; each column's
	// data within a container is a single file, two columns -> 28 data files.
	m := newTestManager(t)
	partitions := []string{"3/2012", "4/2012", "5/2012", "6/2012"}
	// Distribution from the figure: some partitions have containers in all 3
	// local segments, some have extras from unmerged loads.
	layout := []struct {
		part string
		seg  int
	}{
		{"3/2012", 0}, {"3/2012", 1}, {"3/2012", 2},
		{"4/2012", 0}, {"4/2012", 1}, {"4/2012", 2},
		{"5/2012", 0}, {"5/2012", 1}, {"5/2012", 2},
		{"6/2012", 0}, {"6/2012", 0}, {"6/2012", 1}, {"6/2012", 1}, {"6/2012", 2},
	}
	for _, l := range layout {
		id, dir := m.NewContainerID()
		meta := &ContainerMeta{
			ID: id, Projection: "p1", Partition: l.part, LocalSegment: l.seg,
			Cols: []ColumnSpec{
				{Name: "cid", Typ: types.Int64, Enc: encoding.Auto},
				{Name: "price", Typ: types.Float64, Enc: encoding.Auto},
			},
		}
		a := vector.NewFromInts(types.Int64, []int64{1, 2, 3})
		v := vector.NewFromFloats([]float64{100, 98.5, 99})
		if _, err := WriteContainerFromBatch(dir, meta, vector.NewBatch(a, v), WriterOpts{}); err != nil {
			t.Fatal(err)
		}
		rd, err := OpenContainer(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Publish(rd.Meta); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Containers()); got != 14 {
		t.Fatalf("containers = %d, want 14", got)
	}
	if got := m.Partitions(); len(got) != 4 {
		t.Fatalf("partitions = %v", got)
	}
	_ = partitions
	// Count user data files: 14 containers x 2 columns = 28 .dat files.
	dat := 0
	for _, r := range m.Containers() {
		ents, err := os.ReadDir(r.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if filepath.Ext(e.Name()) == ".dat" {
				dat++
			}
		}
	}
	if dat != 28 {
		t.Errorf("user data files = %d, want 28", dat)
	}
	// Local segment boundaries are respected per partition.
	for _, r := range m.Containers() {
		if r.Meta.LocalSegment < 0 || r.Meta.LocalSegment >= 3 {
			t.Errorf("container %s in invalid local segment %d", r.Meta.ID, r.Meta.LocalSegment)
		}
	}
}

func TestValueMarshalRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.NewInt(-5), types.NewInt(1 << 60), types.NewFloat(3.14),
		types.NewString("hello"), types.NewString(""), types.NewNull(types.Int64),
		types.NewBool(true), types.NewTimestampMicros(1345500000000000),
	}
	for _, v := range vals {
		buf := marshalValue(nil, v)
		got, n, err := unmarshalValue(buf, v.Typ)
		if err != nil || n != len(buf) {
			t.Fatalf("unmarshal %v: %v (n=%d, len=%d)", v, err, n, len(buf))
		}
		if got.Null != v.Null || (!v.Null && got.Compare(v) != 0) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}
