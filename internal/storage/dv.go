package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/types"
)

// Delete vectors (paper §3.7.1): data is never modified in place; a delete
// or update creates a delete vector — a list of (position, delete-epoch)
// pairs naming rows of a specific target (the WOS or one ROS container).
// Delete vectors follow the same lifecycle as data: they are born in memory
// (DVWOS) and the tuple mover persists them to disk (DVROS).

// WOSTarget is the delete-vector target naming the projection's WOS.
const WOSTarget = "$wos"

// DVEntry marks one deleted row.
type DVEntry struct {
	Pos   int64
	Epoch types.Epoch // epoch in which the delete committed
}

// DeleteVector is a sorted-by-position list of deleted rows for one target.
type DeleteVector struct {
	Target  string // WOSTarget or a ROS container ID
	Entries []DVEntry
}

// DVStore manages delete vectors for one projection on one node. In-memory
// entries are the DVWOS; Persist writes DVROS files alongside the containers.
type DVStore struct {
	mu  sync.RWMutex
	dir string
	// mem holds unpersisted entries; disk holds loaded DVROS entries.
	mem  map[string][]DVEntry
	disk map[string][]DVEntry
}

// NewDVStore creates (or reopens) the delete-vector store rooted at dir.
func NewDVStore(dir string) (*DVStore, error) {
	s := &DVStore{dir: dir, mem: map[string][]DVEntry{}, disk: map[string][]DVEntry{}}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".dv" {
			continue
		}
		target, entries, err := readDVFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		s.disk[target] = entries
	}
	return s, nil
}

// Add records deletions against a target (in the DVWOS).
func (s *DVStore) Add(target string, entries []DVEntry) {
	if len(entries) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[target] = append(s.mem[target], entries...)
}

// Get returns all delete entries for a target (memory + disk), sorted by
// position.
func (s *DVStore) Get(target string) []DVEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DVEntry, 0, len(s.mem[target])+len(s.disk[target]))
	out = append(out, s.disk[target]...)
	out = append(out, s.mem[target]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// DeletedAt returns the sorted positions of rows in target deleted at or
// before the snapshot epoch — the set a scan at that epoch must hide.
func (s *DVStore) DeletedAt(target string, epoch types.Epoch) []int64 {
	all := s.Get(target)
	out := make([]int64, 0, len(all))
	for _, e := range all {
		if e.Epoch <= epoch {
			out = append(out, e.Pos)
		}
	}
	return out
}

// MemTargets returns the targets that have unpersisted entries.
func (s *DVStore) MemTargets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.mem))
	for t := range s.mem {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Persist merges a target's in-memory entries into its DVROS file (the
// DV-moveout half of the tuple mover).
func (s *DVStore) Persist(target string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mem := s.mem[target]
	if len(mem) == 0 {
		return nil
	}
	merged := append(append([]DVEntry{}, s.disk[target]...), mem...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].Pos < merged[j].Pos })
	if err := writeDVFile(s.path(target), target, merged); err != nil {
		return err
	}
	s.disk[target] = merged
	delete(s.mem, target)
	return nil
}

// Drop removes all delete vectors for a target (when its container is
// removed by mergeout or partition drop).
func (s *DVStore) Drop(target string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.mem, target)
	delete(s.disk, target)
	err := os.Remove(s.path(target))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Rewrite replaces a target's delete vectors wholesale (used by moveout to
// translate WOS positions into container positions).
func (s *DVStore) Rewrite(target string, entries []DVEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.disk, target)
	if len(entries) == 0 {
		delete(s.mem, target)
		os.Remove(s.path(target))
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Pos < entries[j].Pos })
	s.mem[target] = entries
	os.Remove(s.path(target))
}

func (s *DVStore) path(target string) string {
	return filepath.Join(s.dir, sanitize(target)+".dv")
}

// DV file format: uvarint targetLen + target bytes, uvarint count, then per
// entry varint pos, uvarint epoch.
func writeDVFile(path, target string, entries []DVEntry) error {
	buf := binary.AppendUvarint(nil, uint64(len(target)))
	buf = append(buf, target...)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(e.Pos))
		buf = binary.AppendUvarint(buf, uint64(e.Epoch))
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readDVFile(path string) (string, []DVEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	tl, n := binary.Uvarint(b)
	if n <= 0 || int(tl)+n > len(b) {
		return "", nil, fmt.Errorf("storage: corrupt dv file %s", path)
	}
	pos := n
	target := string(b[pos : pos+int(tl)])
	pos += int(tl)
	cnt, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return "", nil, fmt.Errorf("storage: corrupt dv file %s", path)
	}
	pos += n
	entries := make([]DVEntry, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		p, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return "", nil, fmt.Errorf("storage: corrupt dv file %s", path)
		}
		pos += n
		ep, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return "", nil, fmt.Errorf("storage: corrupt dv file %s", path)
		}
		pos += n
		entries = append(entries, DVEntry{Pos: int64(p), Epoch: types.Epoch(ep)})
	}
	return target, entries, nil
}
