package storage

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
	"repro/internal/vector"
)

// Decoded-block cache. ROS containers are immutable — once written they are
// only ever replaced wholesale by the tuple mover — so a block's decoded
// vector can be shared by every scan that reads it, and consumers treat scan
// vectors as read-only. On a hot serving path this turns the dominant
// per-query cost (entropy-decoding the same blocks over and over) into a map
// hit. The cache is process-wide with a byte budget and LRU eviction; entries
// are keyed by reader identity, so a container dropped or retired by
// mergeout simply ages out.

// DefaultBlockCacheBytes is the initial cache budget.
const DefaultBlockCacheBytes = 64 << 20

type blockKey struct {
	r            *ContainerReader
	col          int
	offset       int64 // block offset within the column file
	preserveRuns bool
}

type blockEntry struct {
	key  blockKey
	v    *vector.Vector
	size int64
}

type blockCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[blockKey]*list.Element
	lru     *list.List // front = most recently used
}

var sharedBlockCache = &blockCache{
	budget:  DefaultBlockCacheBytes,
	entries: make(map[blockKey]*list.Element),
	lru:     list.New(),
}

// SetBlockCacheBudget resizes the decoded-block cache, evicting down to the
// new budget. A budget <= 0 disables caching entirely.
func SetBlockCacheBudget(bytes int64) {
	c := sharedBlockCache
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = bytes
	c.evictToLocked(bytes)
}

// BlockCacheUsed reports the bytes currently held by the decoded-block cache.
func BlockCacheUsed() int64 {
	c := sharedBlockCache
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

func (c *blockCache) get(k blockKey) (*vector.Vector, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		metrics.BlockCacheMisses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	metrics.BlockCacheHits.Inc()
	return el.Value.(*blockEntry).v, true
}

func (c *blockCache) put(k blockKey, v *vector.Vector) {
	size := vectorFootprint(v)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return // larger than the whole cache; never worth evicting for
	}
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.evictToLocked(c.budget - size)
	el := c.lru.PushFront(&blockEntry{key: k, v: v, size: size})
	c.entries[k] = el
	c.used += size
	metrics.BlockCacheBytes.Set(c.used)
}

// evictToLocked drops least-recently-used entries until used <= target.
func (c *blockCache) evictToLocked(target int64) {
	for c.used > target {
		el := c.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*blockEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.used -= e.size
		metrics.BlockCacheEvictions.Inc()
	}
	metrics.BlockCacheBytes.Set(c.used)
}

// vectorFootprint approximates a decoded vector's heap size in bytes.
func vectorFootprint(v *vector.Vector) int64 {
	n := int64(len(v.Ints))*8 + int64(len(v.Floats))*8 + int64(len(v.Nulls)) + int64(len(v.RunLens))*8
	for _, s := range v.Strs {
		n += int64(len(s)) + 16
	}
	return n + 64 // struct overhead
}
