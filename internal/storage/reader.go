package storage

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/encoding"
	"repro/internal/vector"
)

// ContainerReader provides columnar access to one immutable ROS container:
// sequential block iteration with min/max pruning, and random access by
// implicit position ("complete tuples are reconstructed by fetching values
// with the same position from each column file", paper §3.7).
//
// Readers are shared between concurrent scans; the lazy per-column caches
// are guarded by a mutex. A reader whose container is replaced by mergeout
// (or dropped) is Retired first: its caches are fully preloaded and its
// delete vectors snapshotted, so scans that resolved the reader before the
// swap keep working after the files are gone.
type ContainerReader struct {
	Dir  string
	Meta *ContainerMeta

	mu   sync.Mutex
	pidx [][]PidxEntry // lazily loaded per column
	data [][]byte      // lazily loaded per column (whole file)

	retired    bool
	retiredDVs []DVEntry // delete vectors snapshotted at retirement
}

// OpenContainer opens a container directory for reading.
func OpenContainer(dir string) (*ContainerReader, error) {
	meta, err := ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	return &ContainerReader{
		Dir:  dir,
		Meta: meta,
		pidx: make([][]PidxEntry, len(meta.Cols)),
		data: make([][]byte, len(meta.Cols)),
	}, nil
}

// Pidx returns the position index of column c, loading it on first use.
func (r *ContainerReader) Pidx(c int) ([]PidxEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pidxLocked(c)
}

func (r *ContainerReader) pidxLocked(c int) ([]PidxEntry, error) {
	if r.pidx[c] == nil {
		p, err := readPidx(r.Meta.pidxPath(r.Dir, c), r.Meta.Cols[c].Typ)
		if err != nil {
			return nil, err
		}
		if p == nil {
			p = []PidxEntry{}
		}
		r.pidx[c] = p
	}
	return r.pidx[c], nil
}

func (r *ContainerReader) colData(c int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.colDataLocked(c)
}

func (r *ContainerReader) colDataLocked(c int) ([]byte, error) {
	if r.data[c] == nil {
		b, err := os.ReadFile(r.Meta.dataPath(r.Dir, c))
		if err != nil {
			return nil, err
		}
		if b == nil {
			b = []byte{}
		}
		r.data[c] = b
	}
	return r.data[c], nil
}

// Preload reads every column's position index and data file into the cache,
// so the reader stays usable after its files are deleted.
func (r *ContainerReader) Preload() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for c := range r.Meta.Cols {
		if _, err := r.pidxLocked(c); err != nil {
			return err
		}
		if _, err := r.colDataLocked(c); err != nil {
			return err
		}
	}
	return nil
}

// Retire marks the reader as detached from the storage manager, carrying a
// snapshot of its delete vectors taken at the swap point. In-flight scans
// that resolved this reader before the swap read the snapshot instead of
// the (since dropped) DV store entries.
func (r *ContainerReader) Retire(dvs []DVEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retired = true
	r.retiredDVs = dvs
}

// RetiredDVs returns the delete-vector snapshot taken at retirement and
// whether the reader has been retired.
func (r *ContainerReader) RetiredDVs() ([]DVEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retiredDVs, r.retired
}

// ColumnRange returns the min/max across all blocks of a column, for
// container-level pruning at plan time.
func (r *ContainerReader) ColumnRange(c int) (PruneRange, error) {
	pidx, err := r.Pidx(c)
	if err != nil {
		return PruneRange{}, err
	}
	var out PruneRange
	for _, e := range pidx {
		if e.Min.Null && e.Max.Null {
			continue // all-NULL block constrains nothing
		}
		if !out.Valid {
			out = PruneRange{Min: e.Min, Max: e.Max, Valid: true}
			continue
		}
		if e.Min.Compare(out.Min) < 0 {
			out.Min = e.Min
		}
		if e.Max.Compare(out.Max) > 0 {
			out.Max = e.Max
		}
	}
	return out, nil
}

// BlockFilter decides whether a block may be skipped given its min/max.
// Returning false prunes the block.
type BlockFilter func(e *PidxEntry) bool

// ColumnIter iterates the blocks of one column in position order.
type ColumnIter struct {
	r      *ContainerReader
	col    int
	next   int
	filter BlockFilter
	// PreserveRuns requests RLE-form vectors for RLE blocks so operators can
	// work on encoded data directly.
	PreserveRuns bool
}

// NewColumnIter returns an iterator over column c's blocks. filter may be nil.
func (r *ContainerReader) NewColumnIter(c int, filter BlockFilter) *ColumnIter {
	return &ColumnIter{r: r, col: c, filter: filter}
}

// Next returns the next unpruned block and its first implicit position, or
// (nil, 0, nil) at end of column.
func (it *ColumnIter) Next() (*vector.Vector, int64, error) {
	pidx, err := it.r.Pidx(it.col)
	if err != nil {
		return nil, 0, err
	}
	for it.next < len(pidx) {
		e := &pidx[it.next]
		it.next++
		if it.filter != nil && !it.filter(e) {
			continue
		}
		v, err := it.r.decodeBlock(it.col, e, it.PreserveRuns)
		if err != nil {
			return nil, 0, err
		}
		return v, e.FirstPos, nil
	}
	return nil, 0, nil
}

// SkipTo positions the iterator at the block containing position p (or the
// first later block).
func (it *ColumnIter) SkipTo(p int64) error {
	pidx, err := it.r.Pidx(it.col)
	if err != nil {
		return err
	}
	it.next = sort.Search(len(pidx), func(i int) bool {
		return pidx[i].FirstPos+pidx[i].RowCount > p
	})
	return nil
}

func (r *ContainerReader) decodeBlock(c int, e *PidxEntry, preserveRuns bool) (*vector.Vector, error) {
	key := blockKey{r: r, col: c, offset: e.Offset, preserveRuns: preserveRuns}
	if v, ok := sharedBlockCache.get(key); ok {
		return v, nil
	}
	data, err := r.colData(c)
	if err != nil {
		return nil, err
	}
	if e.Offset+e.Length > int64(len(data)) {
		return nil, fmt.Errorf("storage: block out of range in %s col %d", r.Dir, c)
	}
	v, err := encoding.DecodeBlock(data[e.Offset:e.Offset+e.Length], r.Meta.Cols[c].Typ, preserveRuns)
	if err != nil {
		return nil, err
	}
	// Scan consumers treat decoded vectors as read-only, so the container's
	// immutability makes the cached copy safe to share across queries.
	sharedBlockCache.put(key, v)
	return v, nil
}

// FetchPositions gathers the values of column c at the given ascending
// positions — the tuple-reconstruction / late-materialization path.
func (r *ContainerReader) FetchPositions(c int, positions []int64) (*vector.Vector, error) {
	out := vector.New(r.Meta.Cols[c].Typ, len(positions))
	if len(positions) == 0 {
		return out, nil
	}
	pidx, err := r.Pidx(c)
	if err != nil {
		return nil, err
	}
	var cur *vector.Vector
	curBlock := -1
	for _, p := range positions {
		bi := sort.Search(len(pidx), func(i int) bool {
			return pidx[i].FirstPos+pidx[i].RowCount > p
		})
		if bi >= len(pidx) || !pidx[bi].Contains(p) {
			return nil, fmt.Errorf("storage: position %d out of range in %s", p, r.Dir)
		}
		if bi != curBlock {
			cur, err = r.decodeBlock(c, &pidx[bi], false)
			if err != nil {
				return nil, err
			}
			curBlock = bi
		}
		idx := int(p - pidx[bi].FirstPos)
		if cur.NullAt(idx) {
			out.AppendNull()
		} else {
			out.AppendValue(cur.ValueAt(idx))
		}
	}
	return out, nil
}

// ReadAll reads entire columns (by container column index) into one batch,
// for recovery/refresh/mergeout and tests.
func (r *ContainerReader) ReadAll(cols []int) (*vector.Batch, error) {
	out := &vector.Batch{Cols: make([]*vector.Vector, len(cols))}
	for i, c := range cols {
		full := vector.New(r.Meta.Cols[c].Typ, int(r.Meta.RowCount))
		it := r.NewColumnIter(c, nil)
		for {
			v, _, err := it.Next()
			if err != nil {
				return nil, err
			}
			if v == nil {
				break
			}
			v = v.Expand()
			for j := 0; j < v.PhysLen(); j++ {
				if v.NullAt(j) {
					full.AppendNull()
				} else {
					full.AppendValue(v.ValueAt(j))
				}
			}
		}
		out.Cols[i] = full
	}
	return out, nil
}
