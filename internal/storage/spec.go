// Package storage implements the on-disk Read Optimized Store (ROS), the
// in-memory Write Optimized Store (WOS), delete vectors, partitioning and
// local segments — the physical storage layer of paper §3.5–§3.7.
//
// A ROS container is a directory holding, per column, a data file of encoded
// blocks and a position index file with per-block metadata (start position,
// min, max) — "Vertica stores two files per column within a ROS container"
// (§3.7). Positions are implicit ordinals and are never stored. Containers
// are immutable once written; deletes are recorded in delete vectors.
package storage

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/encoding"
	"repro/internal/types"
)

// EpochColumn is the name of the implicit 64-bit commit-epoch column stored
// in every container (paper §5: "implemented as implicit 64-bit integral
// columns on the projection"). It RLE-compresses to almost nothing since
// loads commit in large same-epoch runs.
const EpochColumn = "$epoch"

// DefaultBlockRows is the number of values per encoded block.
const DefaultBlockRows = 4096

// ColumnSpec describes one stored column of a container.
type ColumnSpec struct {
	Name string        `json:"name"`
	Typ  types.Type    `json:"type"`
	Enc  encoding.Kind `json:"encoding"`
}

// ContainerMeta is the persistent metadata of one ROS container
// (stored as meta.json in the container directory).
type ContainerMeta struct {
	ID           string       `json:"id"`
	Projection   string       `json:"projection"`
	Cols         []ColumnSpec `json:"columns"`
	RowCount     int64        `json:"row_count"`
	Partition    string       `json:"partition"`     // partition key, "" if unpartitioned
	LocalSegment int          `json:"local_segment"` // intra-node segment index
	MinEpoch     types.Epoch  `json:"min_epoch"`
	MaxEpoch     types.Epoch  `json:"max_epoch"`
	SizeBytes    int64        `json:"size_bytes"` // total encoded data size
	// MergeLevel counts how many mergeouts produced this container; used by
	// tests to verify the strata bound on tuple rewrites.
	MergeLevel int `json:"merge_level"`
}

// ColIndex returns the index of the named column in the container, or -1.
func (m *ContainerMeta) ColIndex(name string) int {
	for i, c := range m.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// dataPath returns the data file path for column i.
func (m *ContainerMeta) dataPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("c%d_%s.dat", i, sanitize(m.Cols[i].Name)))
}

// pidxPath returns the position index file path for column i.
func (m *ContainerMeta) pidxPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("c%d_%s.pidx", i, sanitize(m.Cols[i].Name)))
}

func sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func writeMeta(dir string, m *ContainerMeta) error {
	b, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "meta.json"), b, 0o644)
}

// ReadMeta loads a container's metadata from its directory.
func ReadMeta(dir string) (*ContainerMeta, error) {
	b, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var m ContainerMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("storage: corrupt meta.json in %s: %w", dir, err)
	}
	return &m, nil
}

// marshalValue serializes a value for position-index min/max entries:
// [null u8][type-specific payload].
func marshalValue(buf []byte, v types.Value) []byte {
	if v.Null {
		return append(buf, 1)
	}
	buf = append(buf, 0)
	switch v.Typ {
	case types.Float64:
		var tmp [8]byte
		bits := math.Float64bits(v.F)
		for i := 0; i < 8; i++ {
			tmp[i] = byte(bits >> (8 * i))
		}
		return append(buf, tmp[:]...)
	case types.Varchar:
		if len(v.S) > 0xffff {
			v.S = v.S[:0xffff]
		}
		buf = append(buf, byte(len(v.S)), byte(len(v.S)>>8))
		return append(buf, v.S...)
	default:
		var tmp [8]byte
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			tmp[i] = byte(u >> (8 * i))
		}
		return append(buf, tmp[:]...)
	}
}

// unmarshalValue reads a value of type t written by marshalValue, returning
// the value and bytes consumed.
func unmarshalValue(b []byte, t types.Type) (types.Value, int, error) {
	if len(b) < 1 {
		return types.Value{}, 0, fmt.Errorf("storage: truncated value")
	}
	if b[0] == 1 {
		return types.NewNull(t), 1, nil
	}
	b = b[1:]
	switch t {
	case types.Float64:
		if len(b) < 8 {
			return types.Value{}, 0, fmt.Errorf("storage: truncated float value")
		}
		var bits uint64
		for i := 0; i < 8; i++ {
			bits |= uint64(b[i]) << (8 * i)
		}
		return types.Value{Typ: types.Float64, F: math.Float64frombits(bits)}, 9, nil
	case types.Varchar:
		if len(b) < 2 {
			return types.Value{}, 0, fmt.Errorf("storage: truncated string value")
		}
		l := int(b[0]) | int(b[1])<<8
		if len(b) < 2+l {
			return types.Value{}, 0, fmt.Errorf("storage: truncated string value")
		}
		return types.Value{Typ: types.Varchar, S: string(b[2 : 2+l])}, 3 + l, nil
	default:
		if len(b) < 8 {
			return types.Value{}, 0, fmt.Errorf("storage: truncated int value")
		}
		var u uint64
		for i := 0; i < 8; i++ {
			u |= uint64(b[i]) << (8 * i)
		}
		return types.Value{Typ: t, I: int64(u)}, 9, nil
	}
}
