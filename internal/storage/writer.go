package storage

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/encoding"
	"repro/internal/types"
	"repro/internal/vector"
)

// ContainerWriter streams sorted batches into a new ROS container directory.
// The caller is responsible for sort order (moveout/mergeout/bulk load sort
// before writing) and for supplying the implicit epoch column if desired.
//
// The container is written into a temporary directory and atomically renamed
// into place on Close, so a crash mid-write never leaves a half-container
// visible — rollback is "simply discarding any ROS container ... created by
// the transaction" (paper §5).
type ContainerWriter struct {
	meta     *ContainerMeta
	finalDir string
	tmpDir   string

	blockRows int
	files     []*os.File
	bufs      []*bufio.Writer
	offsets   []int64
	pidxBufs  [][]byte
	pending   []*vector.Vector // per-column accumulation toward a block
	flushed   []int64          // per-column rows already written to blocks
	rows      int64
	closed    bool
}

// WriterOpts configures container writing.
type WriterOpts struct {
	BlockRows int // values per block; DefaultBlockRows if 0
}

// NewContainerWriter creates a writer for a container that will appear at
// dir once Close succeeds. The meta's RowCount and SizeBytes are filled in
// by Close.
func NewContainerWriter(dir string, meta *ContainerMeta, opts WriterOpts) (*ContainerWriter, error) {
	if opts.BlockRows <= 0 {
		opts.BlockRows = DefaultBlockRows
	}
	tmp := dir + ".tmp"
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, err
	}
	w := &ContainerWriter{
		meta:      meta,
		finalDir:  dir,
		tmpDir:    tmp,
		blockRows: opts.BlockRows,
		files:     make([]*os.File, len(meta.Cols)),
		bufs:      make([]*bufio.Writer, len(meta.Cols)),
		offsets:   make([]int64, len(meta.Cols)),
		pidxBufs:  make([][]byte, len(meta.Cols)),
		pending:   make([]*vector.Vector, len(meta.Cols)),
		flushed:   make([]int64, len(meta.Cols)),
	}
	for i, c := range meta.Cols {
		f, err := os.Create(meta.dataPath(tmp, i))
		if err != nil {
			w.abort()
			return nil, err
		}
		w.files[i] = f
		w.bufs[i] = bufio.NewWriterSize(f, 1<<16)
		w.pending[i] = vector.New(c.Typ, opts.BlockRows)
	}
	return w, nil
}

// Append adds a batch (flat or RLE; any selection is honoured). Columns must
// be positionally aligned with the container spec.
func (w *ContainerWriter) Append(b *vector.Batch) error {
	if len(b.Cols) != len(w.meta.Cols) {
		return fmt.Errorf("storage: batch has %d cols, container expects %d", len(b.Cols), len(w.meta.Cols))
	}
	fb := b
	if b.Sel != nil {
		fb = b.Flatten()
	} else {
		fb.ExpandRLE()
	}
	n := fb.Len()
	for r := 0; r < n; r++ {
		for c := range w.pending {
			col := fb.Cols[c]
			if col.NullAt(r) {
				w.pending[c].AppendNull()
			} else {
				w.pending[c].AppendValue(col.ValueAt(r))
			}
		}
	}
	w.rows += int64(n)
	return w.flushFullBlocks(false)
}

// AppendColumns adds pre-built column vectors directly (fast path used by
// bulk load; avoids per-value copies when the caller already has full
// columns). All vectors must be flat and the same length.
func (w *ContainerWriter) AppendColumns(cols []*vector.Vector) error {
	if len(cols) != len(w.meta.Cols) {
		return fmt.Errorf("storage: got %d cols, container expects %d", len(cols), len(w.meta.Cols))
	}
	n := cols[0].Len()
	for c, col := range cols {
		if col.IsRLE() {
			col = col.Expand()
		}
		if col.Len() != n {
			return fmt.Errorf("storage: ragged columns (%d vs %d)", col.Len(), n)
		}
		// Append values wholesale into pending.
		dst := w.pending[c]
		switch dst.Typ {
		case types.Float64:
			dst.Floats = append(dst.Floats, col.Floats...)
		case types.Varchar:
			dst.Strs = append(dst.Strs, col.Strs...)
		default:
			dst.Ints = append(dst.Ints, col.Ints...)
		}
		if col.Nulls != nil || dst.Nulls != nil {
			if dst.Nulls == nil {
				dst.Nulls = make([]bool, dst.PhysLen()-col.Len())
			}
			if col.Nulls != nil {
				dst.Nulls = append(dst.Nulls, col.Nulls...)
			} else {
				dst.Nulls = append(dst.Nulls, make([]bool, col.Len())...)
			}
		}
	}
	w.rows += int64(n)
	return w.flushFullBlocks(false)
}

func (w *ContainerWriter) flushFullBlocks(final bool) error {
	for {
		n := w.pending[0].PhysLen()
		if n == 0 || (n < w.blockRows && !final) {
			return nil
		}
		take := n
		if take > w.blockRows {
			take = w.blockRows
		}
		for c := range w.pending {
			block := slicePrefix(w.pending[c], take)
			if err := w.writeBlock(c, block); err != nil {
				return err
			}
			w.pending[c] = sliceSuffix(w.pending[c], take)
		}
		if take == n && final {
			return nil
		}
	}
}

func slicePrefix(v *vector.Vector, n int) *vector.Vector {
	out := &vector.Vector{Typ: v.Typ}
	switch v.Typ {
	case types.Float64:
		out.Floats = v.Floats[:n]
	case types.Varchar:
		out.Strs = v.Strs[:n]
	default:
		out.Ints = v.Ints[:n]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[:n]
	}
	return out
}

func sliceSuffix(v *vector.Vector, n int) *vector.Vector {
	out := &vector.Vector{Typ: v.Typ}
	switch v.Typ {
	case types.Float64:
		out.Floats = append(out.Floats, v.Floats[n:]...)
	case types.Varchar:
		out.Strs = append(out.Strs, v.Strs[n:]...)
	default:
		out.Ints = append(out.Ints, v.Ints[n:]...)
	}
	if v.Nulls != nil {
		out.Nulls = append(out.Nulls, v.Nulls[n:]...)
	}
	return out
}

func (w *ContainerWriter) writeBlock(c int, block *vector.Vector) error {
	enc, err := encoding.EncodeBlock(w.meta.Cols[c].Enc, block)
	if err != nil {
		return fmt.Errorf("storage: column %s: %w", w.meta.Cols[c].Name, err)
	}
	mn, mx, ok := block.MinMax()
	if !ok {
		mn, mx = types.NewNull(block.Typ), types.NewNull(block.Typ)
	}
	firstPos := w.flushed[c]
	e := PidxEntry{
		Offset:   w.offsets[c],
		Length:   int64(len(enc)),
		FirstPos: firstPos,
		RowCount: int64(block.PhysLen()),
		Min:      mn,
		Max:      mx,
	}
	w.pidxBufs[c] = appendPidxEntry(w.pidxBufs[c], &e)
	if _, err := w.bufs[c].Write(enc); err != nil {
		return err
	}
	w.offsets[c] += int64(len(enc))
	w.flushed[c] += int64(block.PhysLen())
	return nil
}

// Close flushes remaining rows, writes position indexes and metadata, and
// atomically publishes the container directory. On error the temporary
// directory is removed.
func (w *ContainerWriter) Close() (*ContainerMeta, error) {
	if w.closed {
		return w.meta, nil
	}
	w.closed = true
	if err := w.flushFullBlocks(true); err != nil {
		w.abort()
		return nil, err
	}
	var total int64
	for c := range w.meta.Cols {
		if err := w.bufs[c].Flush(); err != nil {
			w.abort()
			return nil, err
		}
		if err := w.files[c].Close(); err != nil {
			w.abort()
			return nil, err
		}
		if err := os.WriteFile(w.meta.pidxPath(w.tmpDir, c), w.pidxBufs[c], 0o644); err != nil {
			w.abort()
			return nil, err
		}
		total += w.offsets[c]
	}
	w.meta.RowCount = w.rows
	w.meta.SizeBytes = total
	if err := writeMeta(w.tmpDir, w.meta); err != nil {
		w.abort()
		return nil, err
	}
	if err := os.Rename(w.tmpDir, w.finalDir); err != nil {
		w.abort()
		return nil, err
	}
	return w.meta, nil
}

// Abort discards the container without publishing it.
func (w *ContainerWriter) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	w.abort()
}

func (w *ContainerWriter) abort() {
	for _, f := range w.files {
		if f != nil {
			f.Close()
		}
	}
	os.RemoveAll(w.tmpDir)
}

// WriteContainerFromBatch is a convenience that writes a whole in-memory
// batch as one container.
func WriteContainerFromBatch(dir string, meta *ContainerMeta, b *vector.Batch, opts WriterOpts) (*ContainerMeta, error) {
	w, err := NewContainerWriter(dir, meta, opts)
	if err != nil {
		return nil, err
	}
	if err := w.Append(b); err != nil {
		w.Abort()
		return nil, err
	}
	return w.Close()
}
