package storage

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/types"
)

// The position index (paper §3.7) stores, per encoded block: the block's
// offset and length in the data file, its first implicit position, its row
// count, and the minimum and maximum column values. It is what lets the scan
// prune blocks at read time and reconstruct tuples by position without a
// B-tree — the containers are never modified, so a flat sorted array of
// entries suffices. It is tiny relative to the data (the paper reports
// ~1/1000 of the raw column size).

// PidxEntry is one position-index record.
type PidxEntry struct {
	Offset   int64 // byte offset of the encoded block in the data file
	Length   int64 // encoded byte length
	FirstPos int64 // implicit position of the block's first row
	RowCount int64
	Min, Max types.Value // NULL when the block is entirely NULL
}

// Contains reports whether position p falls inside the block.
func (e *PidxEntry) Contains(p int64) bool {
	return p >= e.FirstPos && p < e.FirstPos+e.RowCount
}

// appendPidxEntry serializes an entry.
func appendPidxEntry(buf []byte, e *PidxEntry) []byte {
	buf = binary.AppendUvarint(buf, uint64(e.Offset))
	buf = binary.AppendUvarint(buf, uint64(e.Length))
	buf = binary.AppendUvarint(buf, uint64(e.FirstPos))
	buf = binary.AppendUvarint(buf, uint64(e.RowCount))
	buf = marshalValue(buf, e.Min)
	buf = marshalValue(buf, e.Max)
	return buf
}

// readPidx loads a column's whole position index.
func readPidx(path string, t types.Type) ([]PidxEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []PidxEntry
	pos := 0
	for pos < len(b) {
		var e PidxEntry
		var n int
		var v uint64
		if v, n = binary.Uvarint(b[pos:]); n <= 0 {
			return nil, fmt.Errorf("storage: corrupt pidx %s", path)
		}
		e.Offset = int64(v)
		pos += n
		if v, n = binary.Uvarint(b[pos:]); n <= 0 {
			return nil, fmt.Errorf("storage: corrupt pidx %s", path)
		}
		e.Length = int64(v)
		pos += n
		if v, n = binary.Uvarint(b[pos:]); n <= 0 {
			return nil, fmt.Errorf("storage: corrupt pidx %s", path)
		}
		e.FirstPos = int64(v)
		pos += n
		if v, n = binary.Uvarint(b[pos:]); n <= 0 {
			return nil, fmt.Errorf("storage: corrupt pidx %s", path)
		}
		e.RowCount = int64(v)
		pos += n
		var used int
		if e.Min, used, err = unmarshalValue(b[pos:], t); err != nil {
			return nil, fmt.Errorf("storage: corrupt pidx %s: %w", path, err)
		}
		pos += used
		if e.Max, used, err = unmarshalValue(b[pos:], t); err != nil {
			return nil, fmt.Errorf("storage: corrupt pidx %s: %w", path, err)
		}
		pos += used
		out = append(out, e)
	}
	return out, nil
}

// PruneRange reports whether a block whose values span [min, max] could
// contain a value satisfying `op bound` (used for plan-time and scan-time
// container/block pruning, paper §3.5: "Vertica stores the minimum and
// maximum values of the column data in each ROS to quickly prune containers
// ... that can not possibly pass query predicates").
type PruneRange struct {
	Min, Max types.Value
	Valid    bool // false when min/max are unknown (e.g. all-NULL)
}

// MayContainEq reports whether the range may contain v.
func (r PruneRange) MayContainEq(v types.Value) bool {
	if !r.Valid || v.Null {
		return true
	}
	if r.Min.Null || r.Max.Null {
		return true
	}
	return v.Compare(r.Min) >= 0 && v.Compare(r.Max) <= 0
}

// MayContainLt reports whether the range may contain a value < v (or <= v
// when orEqual is set).
func (r PruneRange) MayContainLt(v types.Value, orEqual bool) bool {
	if !r.Valid || v.Null || r.Min.Null {
		return true
	}
	c := r.Min.Compare(v)
	if orEqual {
		return c <= 0
	}
	return c < 0
}

// MayContainGt reports whether the range may contain a value > v (or >= v
// when orEqual is set).
func (r PruneRange) MayContainGt(v types.Value, orEqual bool) bool {
	if !r.Valid || v.Null || r.Max.Null {
		return true
	}
	c := r.Max.Compare(v)
	if orEqual {
		return c >= 0
	}
	return c > 0
}
