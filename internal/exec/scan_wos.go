package exec

import (
	"container/heap"
	"sort"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// WOS and merge-sorted scan paths.

// projectRow picks the given column indexes out of a row.
func projectRow(r types.Row, cols []int) types.Row {
	out := make(types.Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// nextWOS produces the WOS's visible rows (once), then ends the stream.
func (s *Scan) nextWOS(ctx *Ctx) (*vector.Batch, error) {
	if s.wosDone || !s.IncludeWOS {
		return nil, nil
	}
	s.wosDone = true
	rows := s.wosRows
	if len(rows) == 0 {
		return nil, nil
	}
	batch := vector.NewBatchForSchema(s.schema, len(rows))
	for _, r := range rows {
		batch.AppendRow(projectRow(r.Row, s.Columns))
	}
	sel, err := expr.SelectWhere(batch, s.Predicate)
	if err != nil {
		return nil, err
	}
	batch.Sel = sel
	for _, sip := range s.SIPs {
		before := batch.Len()
		if err := sip.Apply(batch); err != nil {
			return nil, err
		}
		ctx.SIPFiltered.Add(int64(before - batch.Len()))
	}
	if batch.Len() == 0 {
		return nil, nil
	}
	ctx.RowsScanned.Add(int64(batch.Len()))
	return batch.Flatten(), nil
}

// Visible WOS rows (already epoch- and DV-filtered) are captured once at
// Open as part of the atomic storage ScanView; see Scan.Open.

// --- merge-sorted scan -------------------------------------------------

// mergedScan heap-merges per-container sorted streams (plus the sorted WOS
// snapshot) so the scan emits rows globally ordered by the projection sort
// key — used under merge joins and one-pass aggregation (paper §6.1:
// "Vertica's operators are optimized for the sorted data that the storage
// system maintains").
type mergedScan struct {
	h *rowMergeHeap
}

// sortedSource is one source's visible, filtered rows (sorted internally).
type sortedSource struct {
	rows []types.Row
	pos  int
}

type rowMergeHeap struct {
	src     []*sortedSource
	sortKey []int
}

func (h *rowMergeHeap) Len() int { return len(h.src) }
func (h *rowMergeHeap) Less(i, j int) bool {
	a := h.src[i].rows[h.src[i].pos]
	b := h.src[j].rows[h.src[j].pos]
	return a.Compare(b, h.sortKey) < 0
}
func (h *rowMergeHeap) Swap(i, j int)      { h.src[i], h.src[j] = h.src[j], h.src[i] }
func (h *rowMergeHeap) Push(x interface{}) { h.src = append(h.src, x.(*sortedSource)) }
func (h *rowMergeHeap) Pop() interface{} {
	old := h.src
	n := len(old)
	x := old[n-1]
	h.src = old[:n-1]
	return x
}

func (s *Scan) openMerged(ctx *Ctx) error {
	var sources []*sortedSource
	for _, r := range s.containers {
		st, err := s.openContainer(ctx, r)
		if err != nil {
			return err
		}
		if st == nil {
			continue
		}
		src := &sortedSource{}
		for {
			b, err := st.nextBlock(ctx, s)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			src.rows = append(src.rows, b.Rows()...)
		}
		if len(src.rows) > 0 {
			sources = append(sources, src)
		}
	}
	if s.IncludeWOS {
		wosRows := s.wosRows
		if len(wosRows) > 0 {
			batch := vector.NewBatchForSchema(s.schema, len(wosRows))
			for _, r := range wosRows {
				batch.AppendRow(projectRow(r.Row, s.Columns))
			}
			sel, err := expr.SelectWhere(batch, s.Predicate)
			if err != nil {
				return err
			}
			batch.Sel = sel
			for _, sip := range s.SIPs {
				if err := sip.Apply(batch); err != nil {
					return err
				}
			}
			rows := batch.Rows()
			sort.SliceStable(rows, func(i, j int) bool {
				return rows[i].Compare(rows[j], s.SortKey) < 0
			})
			if len(rows) > 0 {
				ctx.RowsScanned.Add(int64(len(rows)))
				sources = append(sources, &sortedSource{rows: rows})
			}
		}
	}
	h := &rowMergeHeap{src: sources, sortKey: s.SortKey}
	heap.Init(h)
	s.merged = &mergedScan{h: h}
	return nil
}

func (s *Scan) nextMerged(*Ctx) (*vector.Batch, error) {
	h := s.merged.h
	if h.Len() == 0 {
		return nil, nil
	}
	batch := vector.NewBatchForSchema(s.schema, vector.DefaultBatchSize)
	for batch.Len() < vector.DefaultBatchSize && h.Len() > 0 {
		src := h.src[0]
		batch.AppendRow(src.rows[src.pos])
		src.pos++
		if src.pos >= len(src.rows) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	if batch.Len() == 0 {
		return nil, nil
	}
	return batch, nil
}
