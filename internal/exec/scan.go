package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vector"
)

// Scan reads a projection's ROS containers (and WOS) at the query's snapshot
// epoch, applying predicates "in the most advantageous manner possible"
// (paper §6.1): per-block min/max pruning from the position index, late
// materialization of non-predicate columns, run-preserving decode of RLE
// blocks, and SIP filters installed by downstream joins.
type Scan struct {
	Projection string
	Mgr        *storage.Manager
	// Columns are projection-schema column indexes to output, in order.
	Columns []int
	// Predicate is over the scan's OUTPUT columns (already remapped).
	Predicate expr.Expr
	// SIPs are sideways-information-passing filters (see sip.go), evaluated
	// against output columns once their join builds are ready.
	SIPs []*SIPFilter
	// ContainerIDs restricts the scan to a subset (StorageUnion workers);
	// nil scans everything.
	ContainerIDs []string
	// StorageGen, when non-zero, is the storage generation the ContainerIDs
	// split was planned against. If a moveout commits in between (moving
	// rows from the WOS — owned by one worker — into containers owned by
	// none), Open fails with storage.ErrStorageChanged and the query layer
	// replans.
	StorageGen int64
	// IncludeWOS scans the write-optimized store too (default true via
	// NewScan; exactly one worker of a parallel scan includes it).
	IncludeWOS bool
	// MergeSorted presents rows globally sorted by SortKey by heap-merging
	// container streams (used under merge joins and one-pass aggregation).
	MergeSorted bool
	// SortKey is the projection sort order as output column indexes
	// (required when MergeSorted).
	SortKey []int
	// PreserveRuns requests RLE-form vectors where possible.
	PreserveRuns bool

	schema      *types.Schema
	compactPred expr.Expr // predicate remapped onto predCols
	predCols    []int     // output column indexes the predicate reads
	containers  []*storage.ContainerReader
	wosRows     []storage.WOSRow // visible WOS rows captured at Open
	cur         int
	curState    *containerScan
	wosDone     bool
	merged      *mergedScan
	// singleSorted short-circuits MergeSorted when one container holds all
	// visible rows: its storage order is already the requested order.
	singleSorted bool
	prof         OpProf
}

// NewScan builds a scan over the given projection columns.
func NewScan(projection string, mgr *storage.Manager, schema *types.Schema, cols []int) *Scan {
	out := make([]types.Column, len(cols))
	for i, c := range cols {
		out[i] = schema.Col(c)
	}
	return &Scan{
		Projection: projection,
		Mgr:        mgr,
		Columns:    cols,
		IncludeWOS: true,
		schema:     types.NewSchema(out...),
	}
}

// Schema implements Operator.
func (s *Scan) Schema() *types.Schema { return s.schema }

// Describe implements Operator.
func (s *Scan) Describe() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("Scan %s cols=%v", s.Projection, s.schema.Names()))
	if s.Predicate != nil {
		parts = append(parts, "filter="+s.Predicate.String())
	}
	for _, sip := range s.SIPs {
		parts = append(parts, "sip="+sip.Describe())
	}
	if s.MergeSorted {
		parts = append(parts, "merge-sorted")
	}
	return strings.Join(parts, " ")
}

// Children implements the plan-walk interface (scans are leaves).
func (s *Scan) Children() []Operator { return nil }

// Open implements Operator.
func (s *Scan) Open(ctx *Ctx) error {
	if s.Predicate != nil {
		s.predCols = expr.ColumnsOf(s.Predicate)
		m := make(map[int]int, len(s.predCols))
		for i, c := range s.predCols {
			m[c] = i
		}
		cp, err := expr.Remap(s.Predicate, m)
		if err != nil {
			return err
		}
		s.compactPred = cp
	}
	// One atomic view of containers + WOS: a moveout committing between two
	// separate reads would show its rows in both stores or in neither.
	view := s.Mgr.ScanView(ctx.Epoch, s.IncludeWOS)
	s.wosRows = view.WOSRows
	s.containers = nil
	if s.ContainerIDs != nil {
		// A worker scan owns a plan-time subset. The plan's container split
		// is only exhaustive at the generation it was computed from: a
		// moveout in between moved WOS rows (owned by worker 0) into new
		// containers owned by nobody. Retired (merged-away) containers
		// still resolve via Container; a vanished one forces a replan too.
		if s.StorageGen != 0 && view.Gen != s.StorageGen {
			return fmt.Errorf("exec: scan of %s planned at storage generation %d, now %d: %w",
				s.Projection, s.StorageGen, view.Gen, storage.ErrStorageChanged)
		}
		for _, id := range s.ContainerIDs {
			r, ok := view.Container(id)
			if !ok {
				r, ok = s.Mgr.Container(id) // recently retired readers
			}
			if !ok {
				return fmt.Errorf("exec: container %s of %s is gone: %w",
					id, s.Projection, storage.ErrStorageChanged)
			}
			s.containers = append(s.containers, r)
		}
	} else {
		s.containers = view.Containers
	}
	// Snapshot visibility: containers born after the snapshot are invisible.
	visible := s.containers[:0]
	for _, r := range s.containers {
		if r.Meta.MinEpoch <= ctx.Epoch {
			visible = append(visible, r)
		}
	}
	s.containers = visible
	s.cur, s.curState, s.wosDone = 0, nil, false
	s.singleSorted = false
	if s.MergeSorted {
		if len(s.containers) <= 1 && len(s.wosRows) == 0 {
			// A single container is already in projection sort order.
			s.singleSorted = true
			return nil
		}
		return s.openMerged(ctx)
	}
	return nil
}

// Close implements Operator.
func (s *Scan) Close(*Ctx) error {
	s.curState, s.merged = nil, nil
	return nil
}

// next is the operator body behind the profiled Next (profile.go).
func (s *Scan) next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Canceled(); err != nil {
		return nil, err
	}
	if s.MergeSorted && !s.singleSorted {
		return s.nextMerged(ctx)
	}
	for {
		if s.curState == nil {
			if s.cur >= len(s.containers) {
				return s.nextWOS(ctx)
			}
			st, err := s.openContainer(ctx, s.containers[s.cur])
			if err != nil {
				return nil, err
			}
			s.cur++
			s.curState = st
			if st == nil {
				continue
			}
		}
		b, err := s.curState.nextBlock(ctx, s)
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.curState = nil
			continue
		}
		if b.Len() == 0 {
			continue
		}
		return b, nil
	}
}

// containerScan is the per-container cursor.
type containerScan struct {
	r         *storage.ContainerReader
	colIdx    []int // container column index per output column
	pidx      [][]storage.PidxEntry
	epochIdx  int // container epoch column, -1 when visibility is trivial
	epochPidx []storage.PidxEntry
	deleted   []int64 // sorted deleted positions at the snapshot
	block     int
	numBlocks int
	pruners   []blockPruner
}

// blockPruner prunes blocks via one predicate conjunct of the form
// <col> <op> <const>.
type blockPruner struct {
	outCol int // index into s.Columns (and pidx)
	op     expr.CmpOp
	val    types.Value
}

func (p *blockPruner) mayMatch(e *storage.PidxEntry) bool {
	pr := storage.PruneRange{Min: e.Min, Max: e.Max, Valid: true}
	switch p.op {
	case expr.Eq:
		return pr.MayContainEq(p.val)
	case expr.Lt:
		return pr.MayContainLt(p.val, false)
	case expr.Le:
		return pr.MayContainLt(p.val, true)
	case expr.Gt:
		return pr.MayContainGt(p.val, false)
	case expr.Ge:
		return pr.MayContainGt(p.val, true)
	default:
		return true
	}
}

// extractPruners finds prunable conjuncts of the scan predicate.
func (s *Scan) extractPruners() []blockPruner {
	var out []blockPruner
	for _, c := range expr.Conjuncts(s.Predicate) {
		cmp, ok := c.(*expr.Cmp)
		if !ok {
			continue
		}
		if col, okL := cmp.L.(*expr.ColRef); okL {
			if k, okR := cmp.R.(*expr.Const); okR {
				out = append(out, blockPruner{outCol: col.Idx, op: cmp.Op, val: k.Val})
			}
			continue
		}
		if k, okL := cmp.L.(*expr.Const); okL {
			if col, okR := cmp.R.(*expr.ColRef); okR {
				out = append(out, blockPruner{outCol: col.Idx, op: cmp.Op.Swap(), val: k.Val})
			}
		}
	}
	return out
}

func (s *Scan) openContainer(ctx *Ctx, r *storage.ContainerReader) (*containerScan, error) {
	st := &containerScan{r: r, epochIdx: -1}
	st.colIdx = make([]int, len(s.Columns))
	for i, pc := range s.Columns {
		name := s.Mgr.Schema().Col(pc).Name
		ci := r.Meta.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("exec: container %s lacks column %q", r.Meta.ID, name)
		}
		st.colIdx[i] = ci
	}
	st.pidx = make([][]storage.PidxEntry, len(st.colIdx))
	for i, ci := range st.colIdx {
		p, err := r.Pidx(ci)
		if err != nil {
			return nil, err
		}
		st.pidx[i] = p
	}
	if len(st.pidx) > 0 {
		st.numBlocks = len(st.pidx[0])
	}
	// Container-level pruning: skip the whole container when a prunable
	// conjunct excludes its full column range (paper §3.5).
	st.pruners = s.extractPruners()
	for _, p := range st.pruners {
		rng, err := r.ColumnRange(st.colIdx[p.outCol])
		if err != nil {
			return nil, err
		}
		whole := storage.PidxEntry{Min: rng.Min, Max: rng.Max}
		if rng.Valid && !p.mayMatch(&whole) {
			ctx.BlocksPruned.Add(int64(st.numBlocks))
			return nil, nil
		}
	}
	// Epoch visibility: read the epoch column only when the container
	// straddles the snapshot.
	if r.Meta.MaxEpoch > ctx.Epoch {
		ei := r.Meta.ColIndex(storage.EpochColumn)
		if ei < 0 {
			return nil, fmt.Errorf("exec: container %s lacks epoch column", r.Meta.ID)
		}
		st.epochIdx = ei
		p, err := r.Pidx(ei)
		if err != nil {
			return nil, err
		}
		st.epochPidx = p
		if st.numBlocks == 0 {
			st.numBlocks = len(p)
		}
	}
	// Deleted positions: read the DV store first, then prefer the reader's
	// retirement snapshot. In this order a racing swap is harmless — if the
	// reader is not retired at the second check, the store read happened
	// before the swap dropped its entries.
	st.deleted = s.Mgr.DVs().DeletedAt(r.Meta.ID, ctx.Epoch)
	if dvs, retired := r.RetiredDVs(); retired {
		st.deleted = st.deleted[:0]
		for _, e := range dvs {
			if e.Epoch <= ctx.Epoch {
				st.deleted = append(st.deleted, e.Pos)
			}
		}
		sort.Slice(st.deleted, func(i, j int) bool { return st.deleted[i] < st.deleted[j] })
	}
	return st, nil
}

// nextBlock produces the batch for the next unpruned, visible block, or nil
// when the container is exhausted.
func (st *containerScan) nextBlock(ctx *Ctx, s *Scan) (*vector.Batch, error) {
	for st.block < st.numBlocks {
		b := st.block
		st.block++
		pruned := false
		for _, p := range st.pruners {
			if !p.mayMatch(&st.pidx[p.outCol][b]) {
				pruned = true
				break
			}
		}
		if pruned {
			ctx.BlocksPruned.Add(1)
			continue
		}
		ctx.BlocksRead.Add(1)
		var firstPos, nRows int64
		if len(st.pidx) > 0 {
			firstPos, nRows = st.pidx[0][b].FirstPos, st.pidx[0][b].RowCount
		} else {
			firstPos, nRows = st.epochPidx[b].FirstPos, st.epochPidx[b].RowCount
		}
		cols := make([]*vector.Vector, len(s.Columns))
		// Decode predicate columns first and evaluate (late materialization:
		// remaining columns decode only if any row survives).
		sel, err := st.evalPredicate(ctx, s, b, cols)
		if err != nil {
			return nil, err
		}
		if sel != nil && len(sel) == 0 {
			continue
		}
		// Visibility: epoch column and delete vector.
		sel, err = st.applyVisibility(ctx, s, b, firstPos, nRows, sel)
		if err != nil {
			return nil, err
		}
		if sel != nil && len(sel) == 0 {
			continue
		}
		// Materialize remaining columns.
		preserve := s.PreserveRuns && sel == nil
		for i := range cols {
			if cols[i] != nil {
				continue
			}
			it := st.r.NewColumnIter(st.colIdx[i], nil)
			it.PreserveRuns = preserve
			if err := it.SkipTo(firstPos); err != nil {
				return nil, err
			}
			v, _, err := it.Next()
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, fmt.Errorf("exec: short column %d in %s", i, st.r.Meta.ID)
			}
			cols[i] = v
		}
		batch := &vector.Batch{Cols: cols, Sel: sel}
		// SIP filters: drop probe rows whose keys cannot match the join's
		// hash table (paper §6.1).
		for _, sip := range s.SIPs {
			before := batch.Len()
			if err := sip.Apply(batch); err != nil {
				return nil, err
			}
			ctx.SIPFiltered.Add(int64(before - batch.Len()))
			if batch.Len() == 0 {
				break
			}
		}
		if batch.Len() == 0 {
			continue
		}
		ctx.RowsScanned.Add(int64(batch.Len()))
		if batch.Sel != nil {
			batch = batch.Flatten()
		}
		return batch, nil
	}
	return nil, nil
}

// evalPredicate decodes predicate columns into cols and returns the
// selection (nil means "all rows pass" with no predicate).
func (st *containerScan) evalPredicate(ctx *Ctx, s *Scan, b int, cols []*vector.Vector) ([]int, error) {
	if s.compactPred == nil {
		return nil, nil
	}
	compact := make([]*vector.Vector, len(s.predCols))
	for i, oc := range s.predCols {
		it := st.r.NewColumnIter(st.colIdx[oc], nil)
		if err := it.SkipTo(st.pidx[oc][b].FirstPos); err != nil {
			return nil, err
		}
		v, _, err := it.Next()
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, fmt.Errorf("exec: short predicate column in %s", st.r.Meta.ID)
		}
		cols[oc] = v.Expand()
		compact[i] = cols[oc]
	}
	return expr.SelectWhere(&vector.Batch{Cols: compact}, s.compactPred)
}

// applyVisibility intersects sel with epoch-visible, undeleted rows.
func (st *containerScan) applyVisibility(ctx *Ctx, s *Scan, b int, firstPos, nRows int64, sel []int) ([]int, error) {
	// Deleted positions within this block.
	var delSet map[int]bool
	lo := sort.Search(len(st.deleted), func(i int) bool { return st.deleted[i] >= firstPos })
	hi := sort.Search(len(st.deleted), func(i int) bool { return st.deleted[i] >= firstPos+nRows })
	if lo < hi {
		delSet = make(map[int]bool, hi-lo)
		for _, p := range st.deleted[lo:hi] {
			delSet[int(p-firstPos)] = true
		}
	}
	var epochs *vector.Vector
	if st.epochIdx >= 0 {
		it := st.r.NewColumnIter(st.epochIdx, nil)
		if err := it.SkipTo(firstPos); err != nil {
			return nil, err
		}
		v, _, err := it.Next()
		if err != nil {
			return nil, err
		}
		epochs = v.Expand()
	}
	if delSet == nil && epochs == nil {
		return sel, nil
	}
	visible := func(i int) bool {
		if delSet != nil && delSet[i] {
			return false
		}
		if epochs != nil && types.Epoch(epochs.Ints[i]) > ctx.Epoch {
			return false
		}
		return true
	}
	var out []int
	if sel == nil {
		for i := 0; i < int(nRows); i++ {
			if visible(i) {
				out = append(out, i)
			}
		}
	} else {
		for _, i := range sel {
			if visible(i) {
				out = append(out, i)
			}
		}
	}
	if out == nil {
		out = []int{}
	}
	return out, nil
}
