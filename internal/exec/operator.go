// Package exec implements the Vertica Execution Engine (paper §6.1): a
// multi-threaded, pipelined, vectorized pull-model engine. A query plan is a
// tree of operators; each operator's Next returns a batch of rows pulled
// from its upstream. Operators are optimized for sorted data and can work
// directly on run-length-encoded columns.
//
// # Invariants
//
// The operator contract is strict pull-model: Open, then Next until it
// returns (nil, nil), then Close — in that order, from a single goroutine
// per pipeline (parallelism comes from running whole pipelines
// concurrently, each with its own Ctx). Operators poll Ctx.Canceled at
// batch boundaries, so a cancelled query stops within one batch and never
// leaks spill files (Close removes them).
//
// Every stateful operator (sort, hash join, hash group-by) is bounded by a
// memory budget and can handle arbitrary sized inputs regardless of the
// memory allocated, by externalizing its buffers to disk. The budget is not
// fixed: at the spill threshold an operator first renegotiates the query's
// memory grant with the resource governor (Ctx.extendBudget →
// resmgr.Grant.Request) and grows in place when the pool has headroom; it
// spills only when the extension is denied. Ungoverned queries (nil Grant)
// keep the static budget and spill exactly at it.
package exec

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/dc"
	"repro/internal/metrics"
	"repro/internal/resmgr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Ctx carries per-query execution state shared by the operators of a plan.
type Ctx struct {
	// Epoch is the snapshot epoch the query reads (paper §5: READ COMMITTED
	// targets the latest epoch with no locks).
	Epoch types.Epoch
	// MemBudget is the per-operator memory budget in bytes (paper §6.1:
	// "each operator is given a memory budget ... all operators are capable
	// of handling arbitrary sized inputs ... by externalizing").
	MemBudget int64
	// TempDir hosts externalized spill files.
	TempDir string
	// Parallelism bounds intra-node worker threads (StorageUnion fan-out).
	Parallelism int
	// Context cancels the query: operators poll Canceled at batch
	// boundaries and abandon the plan when it fires. Nil means
	// non-cancellable (embedded/test use).
	Context context.Context
	// Grant is the query's admission grant from the resource governor;
	// operators report spills and memory high-water into it. Nil-safe: an
	// ungoverned query simply reports into the void.
	Grant *resmgr.Grant
	// ProfTimes enables wall-clock profiling in the per-operator collectors
	// (see profile.go). Batch/row counters are always on; only time.Now
	// calls are gated here, keeping the disabled-mode overhead to two
	// atomic adds per batch.
	ProfTimes bool
	// Trace is the statement's Data Collector trace; operators emit
	// notable events (spills, denied extensions) into it. Nil-safe: a nil
	// trace drops events.
	Trace *dc.Trace

	// Stats counters (atomic; shared across worker pipelines).
	RowsScanned     atomic.Int64
	BlocksPruned    atomic.Int64
	BlocksRead      atomic.Int64
	SIPFiltered     atomic.Int64
	Spills          atomic.Int64
	SpilledBytes    atomic.Int64
	PrepassBypassed atomic.Bool
}

// NewCtx returns a context with sensible defaults.
func NewCtx(epoch types.Epoch) *Ctx {
	return &Ctx{Epoch: epoch, MemBudget: 64 << 20, Parallelism: 4}
}

// Canceled returns the cancellation cause when the query's Context has
// ended, nil otherwise. Cheap enough to call per batch.
func (c *Ctx) Canceled() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// noteSpill records one externalization of n bytes in the query counters,
// the operator's collector (nil-safe), the process metrics, the resource
// grant, and the Data Collector event stream. event names the operator
// class that externalized (GROUP_BY_SPILLED, SORT_SPILLED, ...).
func (c *Ctx) noteSpill(p *OpProf, n int64, event string) {
	c.Spills.Add(1)
	c.SpilledBytes.Add(n)
	if p != nil {
		p.Spills.Add(1)
		p.SpilledBytes.Add(n)
	}
	metrics.Spills.Inc()
	metrics.SpilledBytes.Add(n)
	c.Grant.ReportSpill(n)
	c.Trace.Event(event, fmt.Sprintf("spilled_bytes=%d", n))
}

// noteAlloc reports an operator's memory high-water to its collector
// (nil-safe) and the grant.
func (c *Ctx) noteAlloc(p *OpProf, n int64) {
	if p != nil {
		p.notePeak(n)
	}
	c.Grant.ReportAlloc(n)
}

// extendBudget renegotiates the query's memory grant at an operator's spill
// threshold: it asks the governor for the operator's current budget again
// (doubling it, so repeated growth stays amortized) and returns the extra
// bytes granted, 0 when the query runs ungoverned or the pool says no — the
// caller spills then. When the doubling is denied but the actual shortfall
// (used − budget, plus one minimum grant of slack) is smaller, a right-sized
// request is tried before giving up: near pool saturation that lets an
// operator finish in memory instead of externalizing its whole buffer over
// a few missing kilobytes. The granted bytes belong wholly to the
// requesting operator: the governor accounted them on this query's grant,
// and no other operator's budget changes.
func (c *Ctx) extendBudget(budget, used int64) int64 {
	if c.Grant == nil || budget <= 0 {
		return 0
	}
	if c.Grant.Request(budget) == nil {
		return budget
	}
	short := used - budget + resmgr.MinGrantBytes
	if short <= 0 || short >= budget {
		c.Trace.Event("GRANT_EXTENSION_DENIED",
			fmt.Sprintf("budget=%d used=%d", budget, used))
		return 0 // the shortfall is no smaller than the denied request
	}
	if c.Grant.Request(short) == nil {
		return short
	}
	// Both the doubling and the right-sized fallback were denied: the
	// operator will externalize. Record why, so post-hoc diagnosis can
	// tell "pool saturated" from "operator simply large".
	c.Trace.Event("GRANT_EXTENSION_DENIED",
		fmt.Sprintf("budget=%d used=%d denied=%d", budget, used, short))
	return 0
}

// Operator is one node of an executing plan. The contract is strict
// pull-model: Open, then Next until it returns (nil, nil), then Close.
type Operator interface {
	// Schema describes the batches this operator produces.
	Schema() *types.Schema
	// Open prepares the operator (and its children) for execution.
	Open(ctx *Ctx) error
	// Next returns the next batch, or (nil, nil) at end of stream.
	Next(ctx *Ctx) (*vector.Batch, error)
	// Close releases resources (children included).
	Close(ctx *Ctx) error
	// Describe renders one line for plan display.
	Describe() string
}

// Drain pulls every batch from op (Open/Next/Close) and returns all rows;
// a convenience for tests, examples and plan roots.
func Drain(ctx *Ctx, op Operator) ([]types.Row, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	var out []types.Row
	for {
		if err := ctx.Canceled(); err != nil {
			op.Close(ctx)
			return nil, err
		}
		b, err := op.Next(ctx)
		if err != nil {
			op.Close(ctx)
			return nil, err
		}
		if b == nil {
			break
		}
		out = append(out, b.Rows()...)
	}
	if err := op.Close(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// Describe renders the whole plan tree, one operator per line.
func Describe(op Operator) string {
	var sb strings.Builder
	describeInto(&sb, op, 0)
	return sb.String()
}

func describeInto(sb *strings.Builder, op Operator, depth int) {
	fmt.Fprintf(sb, "%s%s\n", strings.Repeat("  ", depth), op.Describe())
	if hc, ok := op.(hasChildren); ok {
		for _, c := range hc.Children() {
			describeInto(sb, c, depth+1)
		}
	}
}

// single wraps one child; embedded by most unary operators.
type single struct {
	child Operator
}

func (s *single) Children() []Operator { return []Operator{s.child} }

func (s *single) openChild(ctx *Ctx) error  { return s.child.Open(ctx) }
func (s *single) closeChild(ctx *Ctx) error { return s.child.Close(ctx) }
