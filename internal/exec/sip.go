package exec

import (
	"fmt"
	"sync"

	"repro/internal/types"
	"repro/internal/vector"
)

// SIPFilter implements Sideways Information Passing (paper §6.1): "special
// SIP filters are built during optimizer planning and placed in the Scan
// operator. At run time, the Scan has access to the Join's hash table and
// the SIP filters are used to evaluate whether the outer key values exist in
// the hash table" — an advanced form of predicate pushdown that stops rows
// that a downstream join would discard from ever flowing up the plan.
//
// The hash join publishes its build-side key set here once the build phase
// finishes; until then the filter passes everything through (the scan may
// start before the build completes in a parallel plan).
type SIPFilter struct {
	// KeyCols are scan-output column indexes forming the probe key, aligned
	// with the join's build key order.
	KeyCols []int
	// JoinDesc labels the owning join for plan display.
	JoinDesc string

	mu    sync.RWMutex
	ready bool
	keys  map[uint64]bool
}

// NewSIPFilter creates a filter for the given scan-output key columns.
func NewSIPFilter(keyCols []int, joinDesc string) *SIPFilter {
	return &SIPFilter{KeyCols: keyCols, JoinDesc: joinDesc}
}

// Publish installs the build side's key-hash set, arming the filter.
func (f *SIPFilter) Publish(keys map[uint64]bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.keys = keys
	f.ready = true
}

// Ready reports whether the join build has been published.
func (f *SIPFilter) Ready() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ready
}

// Describe renders the filter for plan display.
func (f *SIPFilter) Describe() string {
	return fmt.Sprintf("SIP(%s cols=%v)", f.JoinDesc, f.KeyCols)
}

// Apply narrows the batch's selection to rows whose key hash appears in the
// build-side set. It is a pure filter: false positives are possible (hash
// collisions), false negatives are not, so the join above stays correct.
func (f *SIPFilter) Apply(b *vector.Batch) error {
	f.mu.RLock()
	keys := f.keys
	ready := f.ready
	f.mu.RUnlock()
	if !ready {
		return nil
	}
	b.ExpandRLE()
	for _, kc := range f.KeyCols {
		if kc >= len(b.Cols) {
			return fmt.Errorf("exec: SIP key column %d out of range", kc)
		}
	}
	var out []int
	check := func(i int) bool {
		h := uint64(14695981039346656037)
		for _, kc := range f.KeyCols {
			h = types.HashCombine(h, types.HashValue(b.Cols[kc].ValueAt(i)))
		}
		return keys[h]
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			if check(i) {
				out = append(out, i)
			}
		}
	} else {
		n := b.FullLen()
		for i := 0; i < n; i++ {
			if check(i) {
				out = append(out, i)
			}
		}
	}
	if out == nil {
		out = []int{}
	}
	b.Sel = out
	return nil
}

// HashKeyOfRow computes the SIP/join hash of the key columns of a row.
func HashKeyOfRow(r types.Row, keyCols []int) uint64 {
	h := uint64(14695981039346656037)
	for _, kc := range keyCols {
		h = types.HashCombine(h, types.HashValue(r[kc]))
	}
	return h
}
