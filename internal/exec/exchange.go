package exec

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/types"
	"repro/internal/vector"
)

// Exchange implements the Send/Recv operator pair (paper §6.1 operator 7):
// it moves data from a set of input pipelines to a set of output ports. The
// data path is batch-native end to end — ports carry *vector.Batch over
// channels, and routing uses the vector layer's hash-partition kernel
// (Batch.Partition) with per-port batch accumulators, so a parallel plan
// never degrades to row-at-a-time traffic.
//
// Routing modes:
//
//   - segment (Keys set): rows hash-partition on the key columns, so all
//     alike values reach the same port and each port can compute complete
//     results independently (the Figure 3 "locally resegments" step, and
//     both sides of a partitioned parallel join);
//   - broadcast (Broadcast set): every port sees every batch (shallow
//     copies — column vectors are shared read-only);
//   - round-robin (neither): whole batches deal out to ports in turn, the
//     cheapest way to split one stream across parallel workers (parallel
//     sort's split step).
//
// With SortKey set the exchange retains the sortedness of its input
// streams: every port heap-merges its per-input substreams on batch
// cursors, pulling lazily — nothing is materialized beyond one batch per
// input lane (parallel sort's order-preserving merge step).
//
// Error and cancel propagation: a worker (input pump) error records the
// first error and closes the exchange-wide quit channel, which unblocks
// every other pump and surfaces the error at every port — a dying worker
// can never deadlock a port reader. A consumer abandoning a port (its
// pipeline failed) marks the port via abandon(), so pumps drop batches for
// it instead of blocking.
type Exchange struct {
	inputs []Operator
	ways   int
	// Keys are the routing columns: rows hash-partition on them so alike
	// values reach the same port. Nil means broadcast or round-robin.
	Keys []int
	// Broadcast sends every batch to every port.
	Broadcast bool
	// SortKey, when non-nil, asserts inputs are sorted by these columns and
	// makes every port merge-preserve that order.
	SortKey []SortSpec

	mu          sync.Mutex
	started     bool
	inputsOpen  bool
	closedPorts int
	abandoned   int                    // ports whose readers are gone; == ways stops the pumps
	ports       []chan *vector.Batch   // flat path: one channel per port
	lanes       [][]chan *vector.Batch // sorted path: [port][input]
	portQuit    []chan struct{}
	portOnce    []sync.Once
	quit        chan struct{}
	quitOnce    sync.Once
	errMu       sync.Mutex
	firstError  error
	wg          sync.WaitGroup
}

// exchangePortDepth is the channel buffer per port (per lane in sorted
// mode): enough to decouple pump and reader without hoarding batches.
const exchangePortDepth = 4

// NewExchange creates a segment-routing exchange: rows hash-partition on
// the key columns across `ways` ports.
func NewExchange(inputs []Operator, ways int, keys []int) *Exchange {
	return &Exchange{inputs: inputs, ways: ways, Keys: keys}
}

// NewBroadcastExchange creates an exchange delivering every batch to every
// port.
func NewBroadcastExchange(inputs []Operator, ways int) *Exchange {
	return &Exchange{inputs: inputs, ways: ways, Broadcast: true}
}

// NewSplitExchange deals one input stream out to `ways` ports batch by
// batch (round-robin) — the split step of a parallel sort.
func NewSplitExchange(input Operator, ways int) *Exchange {
	return &Exchange{inputs: []Operator{input}, ways: ways}
}

// NewMergeExchange merges sorted input streams into one port, preserving
// the order given by sortKey — the merge step of a parallel sort.
func NewMergeExchange(inputs []Operator, sortKey []SortSpec) *Exchange {
	return &Exchange{inputs: inputs, ways: 1, SortKey: sortKey}
}

// Ports returns the `ways` receive operators. Each must be consumed by
// exactly one reader (they share the exchange pump).
func (e *Exchange) Ports() []Operator {
	out := make([]Operator, e.ways)
	for i := range out {
		out[i] = &recvPort{ex: e, port: i}
	}
	return out
}

// mode renders the routing mode for plan display.
func (e *Exchange) mode() string {
	var m string
	switch {
	case e.Broadcast:
		m = "broadcast"
	case e.Keys != nil:
		m = fmt.Sprintf("segment keys=%v", e.Keys)
	default:
		m = "round-robin"
	}
	if e.SortKey != nil {
		m += "+merge"
	}
	return m
}

// fail records the first pump error and releases everything blocked on the
// exchange (other pumps, port readers).
func (e *Exchange) fail(err error) {
	e.errMu.Lock()
	if e.firstError == nil {
		e.firstError = err
	}
	e.errMu.Unlock()
	e.quitOnce.Do(func() { close(e.quit) })
}

func (e *Exchange) firstErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstError
}

// start launches the pumps on first Open: one goroutine per input drains it
// and routes batches to ports.
func (e *Exchange) start(ctx *Ctx) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return nil
	}
	e.started = true
	e.quit = make(chan struct{})
	e.portQuit = make([]chan struct{}, e.ways)
	e.portOnce = make([]sync.Once, e.ways)
	for i := range e.portQuit {
		e.portQuit[i] = make(chan struct{})
	}
	if e.SortKey != nil {
		e.lanes = make([][]chan *vector.Batch, e.ways)
		for p := range e.lanes {
			e.lanes[p] = make([]chan *vector.Batch, len(e.inputs))
			for i := range e.lanes[p] {
				e.lanes[p][i] = make(chan *vector.Batch, exchangePortDepth)
			}
		}
	} else {
		e.ports = make([]chan *vector.Batch, e.ways)
		for i := range e.ports {
			e.ports[i] = make(chan *vector.Batch, exchangePortDepth)
		}
	}
	for i, in := range e.inputs {
		if err := in.Open(ctx); err != nil {
			// Close the inputs already opened: the failed start means no
			// port Close will ever reach them (inputsOpen stays false).
			for j := 0; j < i; j++ {
				e.inputs[j].Close(ctx)
			}
			return err
		}
	}
	e.inputsOpen = true
	for i, in := range e.inputs {
		e.wg.Add(1)
		go e.pump(ctx, i, in)
	}
	go func() {
		e.wg.Wait()
		if e.SortKey != nil {
			for _, row := range e.lanes {
				for _, ch := range row {
					close(ch)
				}
			}
			return
		}
		for _, ch := range e.ports {
			close(ch)
		}
	}()
	return nil
}

// send delivers a batch to port p's channel, giving up when the port was
// abandoned by its reader (batch dropped) or the exchange failed (pump
// should exit). Reports whether pumping should continue.
func (e *Exchange) send(ch chan *vector.Batch, p int, b *vector.Batch) bool {
	select {
	case ch <- b:
		return true
	default:
	}
	select {
	case ch <- b:
		return true
	case <-e.portQuit[p]:
		return true // reader gone: drop, keep serving other ports
	case <-e.quit:
		return false
	}
}

// pump drains one input and routes its batches.
func (e *Exchange) pump(ctx *Ctx, idx int, in Operator) {
	defer e.wg.Done()
	chanFor := func(p int) chan *vector.Batch {
		if e.SortKey != nil {
			return e.lanes[p][idx]
		}
		return e.ports[p]
	}
	// Per-port accumulators (segment mode): partition slivers coalesce into
	// full batches before crossing the channel.
	var acc []*vector.Batch
	if e.Keys != nil && e.ways > 1 {
		acc = make([]*vector.Batch, e.ways)
	}
	rr := idx // stagger round-robin start across inputs
	for {
		select {
		case <-e.quit:
			return // failed, or every port reader is gone
		default:
		}
		if err := ctx.Canceled(); err != nil {
			e.fail(err)
			return
		}
		b, err := in.Next(ctx)
		if err != nil {
			e.fail(err)
			return
		}
		if b == nil {
			break
		}
		if b.Len() == 0 {
			continue
		}
		metrics.ExchangeBatches.Inc()
		metrics.ExchangeRows.Add(int64(b.Len()))
		// Approximate wire volume: fixed-width value slots. Vectors are
		// shared in-process, so this sizes what a networked exchange would
		// serialize rather than actual allocation.
		metrics.ExchangeBytes.Add(int64(b.Len()) * int64(len(b.Cols)) * 16)
		switch {
		case e.Broadcast:
			for p := 0; p < e.ways; p++ {
				if !e.send(chanFor(p), p, b.ShallowCopy()) {
					return
				}
			}
		case e.Keys == nil || e.ways == 1:
			p := rr % e.ways
			rr++
			if !e.send(chanFor(p), p, b) {
				return
			}
		default:
			parts := b.Partition(e.Keys, e.ways)
			for p, part := range parts {
				if part == nil {
					continue
				}
				if acc[p] == nil {
					acc[p] = vector.NewBatchForSchema(in.Schema(), vector.DefaultBatchSize)
				}
				acc[p].Append(part)
				if acc[p].Len() >= vector.DefaultBatchSize {
					if !e.send(chanFor(p), p, acc[p]) {
						return
					}
					acc[p] = nil
				}
			}
		}
	}
	for p, a := range acc {
		if a != nil && a.Len() > 0 {
			if !e.send(chanFor(p), p, a) {
				return
			}
		}
	}
}

// abandonPort marks one port's reader as gone so pumps stop blocking on
// it. When every port is abandoned the whole exchange shuts down: there is
// nobody left to deliver to, so pumps must not drain the rest of the input
// (an early-terminated LIMIT query would otherwise pay a full residual
// scan in Close).
func (e *Exchange) abandonPort(p int) {
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	if !started {
		return
	}
	e.portOnce[p].Do(func() {
		close(e.portQuit[p])
		e.mu.Lock()
		e.abandoned++
		all := e.abandoned >= e.ways
		e.mu.Unlock()
		if all {
			e.quitOnce.Do(func() { close(e.quit) })
		}
	})
}

// recvPort is the Recv operator for one exchange port.
type recvPort struct {
	ex   *Exchange
	port int

	// sorted-merge state (SortKey exchanges only)
	mergeInit bool
	heap      *cursorHeap
	selOne    [1]int // scratch selection for single-row output copies
	prof      OpProf
}

// Schema implements Operator.
func (r *recvPort) Schema() *types.Schema { return r.ex.inputs[0].Schema() }

// Describe implements Operator.
func (r *recvPort) Describe() string {
	return fmt.Sprintf("Recv port=%d/%d (%s)", r.port, r.ex.ways, r.ex.mode())
}

// Children implements the plan walker: show inputs under port 0 only.
func (r *recvPort) Children() []Operator {
	if r.port == 0 {
		return r.ex.inputs
	}
	return nil
}

// Open implements Operator.
func (r *recvPort) Open(ctx *Ctx) error { return r.ex.start(ctx) }

// abandon implements the consumer-failure protocol: a parent whose pipeline
// died calls it so the exchange pumps stop blocking on this port.
func (r *recvPort) abandon() { r.ex.abandonPort(r.port) }

// next is the operator body behind the profiled Next (profile.go).
func (r *recvPort) next(ctx *Ctx) (*vector.Batch, error) {
	if r.ex.SortKey != nil {
		return r.nextMerged(ctx)
	}
	var done <-chan struct{}
	if ctx.Context != nil {
		done = ctx.Context.Done()
	}
	if ctx.ProfTimes {
		// The select below is where a port waits on its producers; its
		// duration is the operator's blocked time.
		start := time.Now()
		defer func() { r.prof.BlockedNs.Add(int64(time.Since(start))) }()
	}
	select {
	case b, ok := <-r.ex.ports[r.port]:
		if !ok {
			return nil, r.ex.firstErr()
		}
		return b, nil
	case <-r.ex.quit:
		return nil, r.ex.firstErr()
	case <-done:
		return nil, ctx.Canceled()
	}
}

// Close implements Operator. Every port gets closed by its consumer; the
// last one waits for the pumps and closes the inputs (closing them earlier
// would race pumps still calling Next).
func (r *recvPort) Close(ctx *Ctx) error {
	r.abandon()
	r.ex.mu.Lock()
	r.ex.closedPorts++
	last := r.ex.closedPorts >= r.ex.ways
	open := r.ex.inputsOpen
	if last {
		r.ex.inputsOpen = false
	}
	r.ex.mu.Unlock()
	if !last || !open {
		return nil
	}
	r.ex.wg.Wait()
	var firstErr error
	for _, in := range r.ex.inputs {
		if err := in.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- sorted merge on batch cursors ---------------------------------------

// mergeCursor walks one input lane's batch stream without materializing
// rows: comparisons and output copies read vectors in place.
type mergeCursor struct {
	ch    <-chan *vector.Batch
	batch *vector.Batch
	pos   int
}

// ready ensures the cursor points at a live row, pulling the next lane
// batch as needed. Returns false at end of lane (err reports a pump
// failure).
func (r *recvPort) ready(ctx *Ctx, c *mergeCursor) (bool, error) {
	if ctx.ProfTimes {
		// Lane pulls are where a merging port waits on its producers.
		start := time.Now()
		defer func() { r.prof.BlockedNs.Add(int64(time.Since(start))) }()
	}
	for c.batch == nil || c.pos >= c.batch.Len() {
		select {
		case b, ok := <-c.ch:
			if !ok {
				return false, r.ex.firstErr()
			}
			if b.Len() == 0 {
				continue
			}
			c.batch = normalizeBatch(b)
			c.pos = 0
		case <-r.ex.quit:
			return false, r.ex.firstErr()
		}
	}
	return true, nil
}

// normalizeBatch flattens selection vectors and RLE columns so cursor
// positions index vectors directly.
func normalizeBatch(b *vector.Batch) *vector.Batch {
	if b.Sel != nil {
		return b.Flatten()
	}
	for _, c := range b.Cols {
		if c.IsRLE() {
			return b.Flatten()
		}
	}
	return b
}

type cursorHeap struct {
	cursors []*mergeCursor
	specs   []SortSpec
}

func (h *cursorHeap) Len() int { return len(h.cursors) }
func (h *cursorHeap) Less(i, j int) bool {
	a, b := h.cursors[i], h.cursors[j]
	for _, s := range h.specs {
		c := a.batch.Cols[s.Col].ValueAt(a.pos).Compare(b.batch.Cols[s.Col].ValueAt(b.pos))
		if c != 0 {
			if s.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}
func (h *cursorHeap) Swap(i, j int) { h.cursors[i], h.cursors[j] = h.cursors[j], h.cursors[i] }
func (h *cursorHeap) Push(x interface{}) {
	h.cursors = append(h.cursors, x.(*mergeCursor))
}
func (h *cursorHeap) Pop() interface{} {
	old := h.cursors
	n := len(old)
	x := old[n-1]
	h.cursors = old[:n-1]
	return x
}

// nextMerged produces the port's next batch by heap-merging its input
// lanes' sorted substreams.
func (r *recvPort) nextMerged(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Canceled(); err != nil {
		return nil, err
	}
	if !r.mergeInit {
		r.mergeInit = true
		r.heap = &cursorHeap{specs: r.ex.SortKey}
		for _, ch := range r.ex.lanes[r.port] {
			c := &mergeCursor{ch: ch}
			ok, err := r.ready(ctx, c)
			if err != nil {
				return nil, err
			}
			if ok {
				r.heap.cursors = append(r.heap.cursors, c)
			}
		}
		heap.Init(r.heap)
	}
	if r.heap.Len() == 0 {
		if err := r.ex.firstErr(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := vector.NewBatchForSchema(r.Schema(), vector.DefaultBatchSize)
	for out.Len() < vector.DefaultBatchSize && r.heap.Len() > 0 {
		c := r.heap.cursors[0]
		r.selOne[0] = c.pos
		for i, col := range out.Cols {
			col.AppendFrom(c.batch.Cols[i], r.selOne[:])
		}
		c.pos++
		if c.pos >= c.batch.Len() {
			ok, err := r.ready(ctx, c)
			if err != nil {
				return nil, err
			}
			if !ok {
				heap.Pop(r.heap)
				continue
			}
		}
		heap.Fix(r.heap, 0)
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}
