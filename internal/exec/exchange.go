package exec

import (
	"container/heap"
	"fmt"
	"sync"

	"repro/internal/types"
	"repro/internal/vector"
)

// Exchange implements the Send/Recv operator pair (paper §6.1 operator 7):
// it moves rows from a set of input pipelines to a set of output ports,
// either by segmentation-expression routing (all alike values reach the same
// port, so each port can compute complete results independently) or by
// broadcast. The same machinery serves intra-node resegmentation (the
// StorageUnion "locally resegments the data for the above GroupBys",
// Figure 3) and inter-node shipping in the simulated cluster.
//
// Each Send/Recv pair can retain the sortedness of its input stream: with
// SortKey set, every port heap-merges the per-input sorted substreams.
type Exchange struct {
	inputs []Operator
	ways   int
	// Route maps a row to a port; nil means broadcast to every port.
	Route func(types.Row) int
	// SortKey, when non-nil, asserts inputs are sorted by these columns and
	// makes every port merge-preserve that order.
	SortKey []SortSpec

	mu      sync.Mutex
	started bool
	closed  bool
	// buffered rows per port per input (for sorted merge), or flat per port.
	ports []chan types.Row
	errCh chan error
	wg    sync.WaitGroup
}

// NewExchange creates an exchange from the inputs to `ways` ports.
func NewExchange(inputs []Operator, ways int, route func(types.Row) int) *Exchange {
	return &Exchange{inputs: inputs, ways: ways, Route: route}
}

// Ports returns the `ways` receive operators. Each must be consumed by
// exactly one reader (they share the exchange pump).
func (e *Exchange) Ports() []Operator {
	out := make([]Operator, e.ways)
	for i := range out {
		out[i] = &recvPort{ex: e, port: i}
	}
	return out
}

// start launches the pump on first Open: one goroutine per input drains it
// and routes rows to ports.
func (e *Exchange) start(ctx *Ctx) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return nil
	}
	e.started = true
	e.ports = make([]chan types.Row, e.ways)
	for i := range e.ports {
		e.ports[i] = make(chan types.Row, vector.DefaultBatchSize)
	}
	e.errCh = make(chan error, len(e.inputs))
	if e.SortKey != nil {
		return e.startSorted(ctx)
	}
	for _, in := range e.inputs {
		if err := in.Open(ctx); err != nil {
			return err
		}
	}
	for _, in := range e.inputs {
		e.wg.Add(1)
		go func(in Operator) {
			defer e.wg.Done()
			for {
				b, err := in.Next(ctx)
				if err != nil {
					e.errCh <- err
					return
				}
				if b == nil {
					return
				}
				for _, r := range b.Rows() {
					if e.Route == nil {
						for _, p := range e.ports {
							p <- r.Clone()
						}
					} else {
						e.ports[e.Route(r)%e.ways] <- r
					}
				}
			}
		}(in)
	}
	go func() {
		e.wg.Wait()
		for _, p := range e.ports {
			close(p)
		}
		close(e.errCh)
	}()
	return nil
}

// startSorted drains inputs sequentially, routes rows into per-port per-input
// buckets, then merge-sorts each port's buckets to preserve order.
func (e *Exchange) startSorted(ctx *Ctx) error {
	buckets := make([][][]types.Row, e.ways)
	for i := range buckets {
		buckets[i] = make([][]types.Row, len(e.inputs))
	}
	for ii, in := range e.inputs {
		if err := in.Open(ctx); err != nil {
			return err
		}
		for {
			b, err := in.Next(ctx)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			for _, r := range b.Rows() {
				if e.Route == nil {
					for p := range buckets {
						buckets[p][ii] = append(buckets[p][ii], r.Clone())
					}
				} else {
					p := e.Route(r) % e.ways
					buckets[p][ii] = append(buckets[p][ii], r)
				}
			}
		}
		if err := in.Close(ctx); err != nil {
			return err
		}
	}
	for p := range buckets {
		port := e.ports[p]
		var runs []*sortedRun
		for _, rows := range buckets[p] {
			if len(rows) > 0 {
				sr := &sortedRun{mem: rows}
				sr.advance()
				runs = append(runs, sr)
			}
		}
		go func(runs []*sortedRun, port chan types.Row) {
			h := &sortRunHeap{runs: runs, specs: e.SortKey}
			heap.Init(h)
			for h.Len() > 0 {
				run := h.runs[0]
				port <- run.cur
				run.advance()
				if run.cur == nil {
					heap.Pop(h)
				} else {
					heap.Fix(h, 0)
				}
			}
			close(port)
		}(runs, port)
	}
	close(e.errCh)
	return nil
}

// recvPort is the Recv operator for one exchange port.
type recvPort struct {
	ex   *Exchange
	port int
}

// Schema implements Operator.
func (r *recvPort) Schema() *types.Schema { return r.ex.inputs[0].Schema() }

// Describe implements Operator.
func (r *recvPort) Describe() string {
	mode := "segment"
	if r.ex.Route == nil {
		mode = "broadcast"
	}
	if r.ex.SortKey != nil {
		mode += "+sorted"
	}
	return fmt.Sprintf("Recv port=%d/%d (%s)", r.port, r.ex.ways, mode)
}

// Children implements the plan walker: show inputs under port 0 only.
func (r *recvPort) Children() []Operator {
	if r.port == 0 {
		return r.ex.inputs
	}
	return nil
}

// Open implements Operator.
func (r *recvPort) Open(ctx *Ctx) error { return r.ex.start(ctx) }

// Next implements Operator.
func (r *recvPort) Next(*Ctx) (*vector.Batch, error) {
	ch := r.ex.ports[r.port]
	batch := vector.NewBatchForSchema(r.Schema(), vector.DefaultBatchSize)
	for row := range ch {
		batch.AppendRow(row)
		if batch.Len() >= vector.DefaultBatchSize {
			return batch, nil
		}
	}
	// Channel closed: surface any pump error once.
	select {
	case err, ok := <-r.ex.errCh:
		if ok && err != nil {
			return nil, err
		}
	default:
	}
	if batch.Len() == 0 {
		return nil, nil
	}
	return batch, nil
}

// Close implements Operator.
func (r *recvPort) Close(ctx *Ctx) error {
	r.ex.mu.Lock()
	defer r.ex.mu.Unlock()
	if r.ex.closed || r.ex.SortKey != nil {
		return nil
	}
	r.ex.closed = true
	var firstErr error
	for _, in := range r.ex.inputs {
		if err := in.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
