package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Prepass computes partial aggregates close to the scan with a small,
// cache-sized hash table (paper §6.1): "it attempts to aggregate immediately
// after fetching columns off the disk using an L1 cache sized hash table.
// When the hash table fills up, the operator outputs its current contents,
// clears the hash table, and starts aggregating afresh ... Since there is
// still a small, but non-zero cost to run the prepass operator, the EE will
// decide at runtime to stop if it is not actually reducing the number of
// rows which pass."
//
// Output rows are key columns followed by each aggregate's partial columns;
// a final GroupBy in MergePartials mode combines them.
type Prepass struct {
	single
	Keys     []expr.Expr
	KeyNames []string
	Aggs     []AggSpec
	// MaxGroups bounds the hash table (the "L1 cache sized" table).
	MaxGroups int

	schema   *types.Schema
	groups   map[uint64][]*groupEntry
	nGroups  int
	inRows   int64
	outRows  int64
	bypassed bool
	pending  []types.Row
	done     bool
	prof     OpProf
}

// DefaultPrepassGroups approximates a cache-sized table. The paper says
// "L1 cache sized"; Go's map entries are several times larger than a tuned
// C++ open-addressing slot, so the equivalent entry count targets L2.
const DefaultPrepassGroups = 4096

// NewPrepass builds a prepass partial-aggregation node.
func NewPrepass(child Operator, keys []expr.Expr, keyNames []string, aggs []AggSpec) (*Prepass, error) {
	for i := range aggs {
		if !aggs[i].SupportsPartial() {
			return nil, fmt.Errorf("exec: %s cannot be computed by a prepass", aggs[i].String())
		}
	}
	p := &Prepass{
		single: single{child: child}, Keys: keys, KeyNames: keyNames,
		Aggs: aggs, MaxGroups: DefaultPrepassGroups,
	}
	cols := make([]types.Column, 0, len(keys)+len(aggs)*2)
	for i, k := range keys {
		name := ""
		if keyNames != nil {
			name = keyNames[i]
		}
		if name == "" {
			name = k.String()
		}
		cols = append(cols, types.Column{Name: name, Typ: k.Type(), Nullable: true})
	}
	for i := range aggs {
		cols = append(cols, aggs[i].PartialCols()...)
	}
	p.schema = types.NewSchema(cols...)
	return p, nil
}

// Schema implements Operator.
func (p *Prepass) Schema() *types.Schema { return p.schema }

// Describe implements Operator.
func (p *Prepass) Describe() string {
	return fmt.Sprintf("GroupByPrepass keys=%d aggs=[%s] maxGroups=%d", len(p.Keys), describeAggs(p.Aggs), p.MaxGroups)
}

// Open implements Operator.
func (p *Prepass) Open(ctx *Ctx) error {
	p.groups = map[uint64][]*groupEntry{}
	p.nGroups, p.inRows, p.outRows = 0, 0, 0
	p.bypassed, p.done = false, false
	p.pending = nil
	return p.openChild(ctx)
}

// Close implements Operator.
func (p *Prepass) Close(ctx *Ctx) error { return p.closeChild(ctx) }

// next is the operator body behind the profiled Next (profile.go).
func (p *Prepass) next(ctx *Ctx) (*vector.Batch, error) {
	for {
		if len(p.pending) > 0 {
			return p.drainPending(), nil
		}
		if p.done {
			return nil, nil
		}
		in, err := p.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if in == nil {
			p.done = true
			p.flushTable()
			continue
		}
		if err := p.consume(ctx, in); err != nil {
			return nil, err
		}
	}
}

func (p *Prepass) consume(ctx *Ctx, in *vector.Batch) error {
	if in.Sel != nil {
		in = in.Flatten()
	} else {
		in.ExpandRLE()
	}
	n := in.Len()
	p.inRows += int64(n)
	if p.bypassed {
		// Not reducing rows: convert each row to a trivial partial.
		return p.bypassBatch(in)
	}
	keyVecs := make([]*vector.Vector, len(p.Keys))
	for i, k := range p.Keys {
		v, err := k.Eval(in)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	argVecs := make([]*vector.Vector, len(p.Aggs))
	for i := range p.Aggs {
		if p.Aggs[i].Arg == nil {
			continue
		}
		v, err := p.Aggs[i].Arg.Eval(in)
		if err != nil {
			return err
		}
		argVecs[i] = v
	}
	keyIdx := seqIdx(len(p.Keys))
	for i := 0; i < n; i++ {
		key := make(types.Row, len(keyVecs))
		for k, kv := range keyVecs {
			key[k] = kv.ValueAt(i)
		}
		h := types.HashRow(key, keyIdx)
		var e *groupEntry
		for _, c := range p.groups[h] {
			if c.key.Compare(key, keyIdx) == 0 {
				e = c
				break
			}
		}
		if e == nil {
			if p.nGroups >= p.MaxGroups {
				p.flushTable()
			}
			e = &groupEntry{key: key, accs: make([]*aggAcc, len(p.Aggs))}
			for a := range p.Aggs {
				e.accs[a] = newAggAcc(&p.Aggs[a])
			}
			p.groups[h] = append(p.groups[h], e)
			p.nGroups++
		}
		for a := range p.Aggs {
			if p.Aggs[a].Kind == AggCountStar {
				e.accs[a].update(types.Value{})
			} else {
				e.accs[a].update(argVecs[a].ValueAt(i))
			}
		}
	}
	// Adaptivity: if after a meaningful sample the prepass is reducing rows
	// by less than ~1.5x, its per-row cost is not paying off — stop
	// aggregating and pass rows through as trivial partials ("the EE will
	// decide at runtime to stop if it is not actually reducing the number
	// of rows which pass", §6.1).
	if p.inRows >= int64(p.MaxGroups)*4 && p.outRows*3 > p.inRows*2 {
		p.bypassed = true
		ctx.PrepassBypassed.Store(true)
		p.flushTable()
	}
	return nil
}

// bypassBatch emits one trivial partial row per input row.
func (p *Prepass) bypassBatch(in *vector.Batch) error {
	keyVecs := make([]*vector.Vector, len(p.Keys))
	for i, k := range p.Keys {
		v, err := k.Eval(in)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	argVecs := make([]*vector.Vector, len(p.Aggs))
	for i := range p.Aggs {
		if p.Aggs[i].Arg == nil {
			continue
		}
		v, err := p.Aggs[i].Arg.Eval(in)
		if err != nil {
			return err
		}
		argVecs[i] = v
	}
	n := in.Len()
	for i := 0; i < n; i++ {
		row := make(types.Row, 0, p.schema.Len())
		for _, kv := range keyVecs {
			row = append(row, kv.ValueAt(i))
		}
		for a := range p.Aggs {
			acc := newAggAcc(&p.Aggs[a])
			if p.Aggs[a].Kind == AggCountStar {
				acc.update(types.Value{})
			} else {
				acc.update(argVecs[a].ValueAt(i))
			}
			row = append(row, acc.partial()...)
		}
		p.pending = append(p.pending, row)
		p.outRows++
	}
	return nil
}

func (p *Prepass) flushTable() {
	for _, chain := range p.groups {
		for _, e := range chain {
			row := make(types.Row, 0, p.schema.Len())
			row = append(row, e.key...)
			for _, acc := range e.accs {
				row = append(row, acc.partial()...)
			}
			p.pending = append(p.pending, row)
			p.outRows++
		}
	}
	p.groups = map[uint64][]*groupEntry{}
	p.nGroups = 0
}

func (p *Prepass) drainPending() *vector.Batch {
	batch := vector.NewBatchForSchema(p.schema, len(p.pending))
	n := len(p.pending)
	if n > vector.DefaultBatchSize {
		n = vector.DefaultBatchSize
	}
	for i := 0; i < n; i++ {
		batch.AppendRow(p.pending[i])
	}
	p.pending = p.pending[n:]
	return batch
}
