package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// MergeJoin joins two inputs already sorted by their join keys (paper §6.1:
// Vertica chooses merge join when projections' sort orders line up with the
// join keys; the Send/Recv operators even retain sortedness to keep this
// possible after an exchange). Supports INNER, LEFT OUTER, SEMI and ANTI;
// the optimizer plans the other flavors as hash joins.
type MergeJoin struct {
	Type      JoinType
	outer     Operator
	inner     Operator
	OuterKeys []int
	InnerKeys []int
	Residual  expr.Expr

	schema    *types.Schema
	resSchema *types.Schema // outer+inner, for vectorized residual eval

	outerRows []types.Row
	outerPos  int
	innerRows []types.Row
	innerPos  int
	outerDone bool
	innerDone bool
	pending   []types.Row
	innerBuf  []types.Row
	prof      OpProf
}

// NewMergeJoin builds a merge join over key-sorted inputs.
func NewMergeJoin(t JoinType, outer, inner Operator, outerKeys, innerKeys []int) (*MergeJoin, error) {
	switch t {
	case InnerJoin, LeftOuterJoin, SemiJoin, AntiJoin:
	default:
		return nil, fmt.Errorf("exec: merge join does not support %s", t)
	}
	if len(outerKeys) != len(innerKeys) || len(outerKeys) == 0 {
		return nil, fmt.Errorf("exec: join requires aligned, non-empty key lists")
	}
	return &MergeJoin{
		Type: t, outer: outer, inner: inner,
		OuterKeys: outerKeys, InnerKeys: innerKeys,
		schema:    joinSchema(t, outer.Schema(), inner.Schema()),
		resSchema: combinedSchema(outer.Schema(), inner.Schema()),
	}, nil
}

// Schema implements Operator.
func (j *MergeJoin) Schema() *types.Schema { return j.schema }

// Children implements the plan walker.
func (j *MergeJoin) Children() []Operator { return []Operator{j.outer, j.inner} }

// Describe implements Operator.
func (j *MergeJoin) Describe() string {
	return fmt.Sprintf("MergeJoin %s outerKeys=%v innerKeys=%v", j.Type, j.OuterKeys, j.InnerKeys)
}

// Open implements Operator.
func (j *MergeJoin) Open(ctx *Ctx) error {
	j.outerRows, j.innerRows = nil, nil
	j.outerPos, j.innerPos = 0, 0
	j.outerDone, j.innerDone = false, false
	j.pending, j.innerBuf = nil, nil
	if err := j.outer.Open(ctx); err != nil {
		return err
	}
	return j.inner.Open(ctx)
}

// Close implements Operator.
func (j *MergeJoin) Close(ctx *Ctx) error {
	if err := j.outer.Close(ctx); err != nil {
		j.inner.Close(ctx)
		return err
	}
	return j.inner.Close(ctx)
}

func (j *MergeJoin) nextOuterRow(ctx *Ctx) (types.Row, error) {
	for j.outerPos >= len(j.outerRows) && !j.outerDone {
		b, err := j.outer.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.outerDone = true
			break
		}
		j.outerRows = b.Rows()
		j.outerPos = 0
	}
	if j.outerPos < len(j.outerRows) {
		r := j.outerRows[j.outerPos]
		j.outerPos++
		return r, nil
	}
	return nil, nil
}

func (j *MergeJoin) peekInnerRow(ctx *Ctx) (types.Row, error) {
	for j.innerPos >= len(j.innerRows) && !j.innerDone {
		b, err := j.inner.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.innerDone = true
			break
		}
		j.innerRows = b.Rows()
		j.innerPos = 0
	}
	if j.innerPos < len(j.innerRows) {
		return j.innerRows[j.innerPos], nil
	}
	return nil, nil
}

// next is the operator body behind the profiled Next (profile.go).
func (j *MergeJoin) next(ctx *Ctx) (*vector.Batch, error) {
	for len(j.pending) == 0 {
		or, err := j.nextOuterRow(ctx)
		if err != nil {
			return nil, err
		}
		if or == nil {
			return nil, nil
		}
		if err := j.joinOne(ctx, or); err != nil {
			return nil, err
		}
	}
	batch := vector.NewBatchForSchema(j.schema, len(j.pending))
	n := len(j.pending)
	if n > vector.DefaultBatchSize {
		n = vector.DefaultBatchSize
	}
	for i := 0; i < n; i++ {
		batch.AppendRow(j.pending[i])
	}
	j.pending = j.pending[n:]
	return batch, nil
}

func (j *MergeJoin) joinOne(ctx *Ctx, or types.Row) error {
	cmpKey := func(inner types.Row) int {
		for i := range j.OuterKeys {
			c := inner[j.InnerKeys[i]].Compare(or[j.OuterKeys[i]])
			if c != 0 {
				return c
			}
		}
		return 0
	}
	nullKey := false
	for _, k := range j.OuterKeys {
		if or[k].Null {
			nullKey = true
			break
		}
	}
	if !nullKey {
		// Refresh the buffered inner group if it no longer matches.
		if len(j.innerBuf) == 0 || cmpKey(j.innerBuf[0]) != 0 {
			j.innerBuf = j.innerBuf[:0]
			for {
				ir, err := j.peekInnerRow(ctx)
				if err != nil {
					return err
				}
				if ir == nil || cmpKey(ir) > 0 {
					break
				}
				if cmpKey(ir) == 0 {
					j.innerBuf = append(j.innerBuf, ir)
				}
				j.innerPos++
			}
		}
	}
	matched := false
	if !nullKey && len(j.innerBuf) > 0 &&
		j.Residual == nil && (j.Type == SemiJoin || j.Type == AntiJoin) {
		// Residual-free semi/anti: any row in the key-equal group decides
		// the outer row — no combined rows to materialize.
		matched = true
		if j.Type == SemiJoin {
			j.pending = append(j.pending, or.Clone())
		}
	} else if !nullKey && len(j.innerBuf) > 0 {
		// Vectorized residual: one Eval over the group's combined batch.
		cands := make([]types.Row, len(j.innerBuf))
		for c, ir := range j.innerBuf {
			cands[c] = append(append(types.Row{}, or...), ir...)
		}
		var mask []bool
		if j.Residual != nil {
			var err error
			if mask, err = residualMask(j.Residual, j.resSchema, cands); err != nil {
				return err
			}
		}
		for c := range cands {
			if mask != nil && !mask[c] {
				continue
			}
			matched = true
			switch j.Type {
			case SemiJoin:
				j.pending = append(j.pending, or.Clone())
			case AntiJoin:
			default:
				j.pending = append(j.pending, cands[c])
			}
			if j.Type == SemiJoin {
				break
			}
		}
	}
	if !matched {
		switch j.Type {
		case LeftOuterJoin:
			j.pending = append(j.pending, padRight(or, j.inner.Schema()))
		case AntiJoin:
			j.pending = append(j.pending, or.Clone())
		}
	}
	return nil
}
