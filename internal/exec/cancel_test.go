package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/expr"
	"repro/internal/resmgr"
	"repro/internal/types"
	"repro/internal/vector"
)

// cancelSource produces synthetic batches and fires a context cancel after a
// set number of them, simulating a client abandoning a running query.
type cancelSource struct {
	schema      *types.Schema
	rowsPer     int
	cancelAfter int // batches before cancel fires; -1 never
	cancel      context.CancelFunc
	produced    int
}

func (c *cancelSource) Schema() *types.Schema { return c.schema }
func (c *cancelSource) Open(*Ctx) error       { c.produced = 0; return nil }
func (c *cancelSource) Close(*Ctx) error      { return nil }
func (c *cancelSource) Describe() string      { return "CancelSource" }

func (c *cancelSource) Next(*Ctx) (*vector.Batch, error) {
	if c.cancelAfter >= 0 && c.produced == c.cancelAfter {
		c.cancel()
	}
	b := vector.NewBatchForSchema(c.schema, c.rowsPer)
	for i := 0; i < c.rowsPer; i++ {
		n := int64(c.produced*c.rowsPer + i)
		b.AppendRow(types.Row{types.NewInt(n * 37 % 1009), types.NewString(fmt.Sprintf("payload-%d", n))})
	}
	c.produced++
	return b, nil
}

func cancelSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "k", Typ: types.Int64},
		types.Column{Name: "s", Typ: types.Varchar},
	)
}

// TestSortCancelWhileSpilling forces the sort to externalize on every batch
// and cancels mid-stream: the query must abort with the context error within
// one batch and leave no spill files behind.
func TestSortCancelWhileSpilling(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	src := &cancelSource{schema: cancelSchema(), rowsPer: 500, cancelAfter: 3, cancel: cancel}
	s := NewSort(src, []SortSpec{{Col: 0}})

	ctx := NewCtx(1)
	ctx.Context = cctx
	ctx.MemBudget = 4 << 10 // spill every batch
	ctx.TempDir = t.TempDir()

	_, err := Drain(ctx, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ctx.Spills.Load() == 0 {
		t.Fatal("expected at least one spill before cancellation")
	}
	if src.produced > src.cancelAfter+1 {
		t.Fatalf("source produced %d batches after cancel at %d: not aborted within one batch",
			src.produced, src.cancelAfter)
	}
	ents, err := os.ReadDir(ctx.TempDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill files leaked after cancel: %d entries", len(ents))
	}
}

// TestDrainPreCanceled verifies a query with an already-ended context never
// produces a batch.
func TestDrainPreCanceled(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &cancelSource{schema: cancelSchema(), rowsPer: 10, cancelAfter: -1, cancel: func() {}}
	ctx := NewCtx(1)
	ctx.Context = cctx
	_, err := Drain(ctx, NewSort(src, []SortSpec{{Col: 0}}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src.produced != 0 {
		t.Fatalf("source produced %d batches under a pre-canceled context", src.produced)
	}
}

// TestGroupByAndJoinCancel covers the other stateful consume loops.
func TestGroupByAndJoinCancel(t *testing.T) {
	t.Run("groupby", func(t *testing.T) {
		cctx, cancel := context.WithCancel(context.Background())
		src := &cancelSource{schema: cancelSchema(), rowsPer: 100, cancelAfter: 2, cancel: cancel}
		ctx := NewCtx(1)
		ctx.Context = cctx
		ctx.TempDir = t.TempDir()
		g := NewGroupBy(src, []expr.Expr{expr.NewColRef(0, types.Int64, "k")}, []string{"k"}, nil)
		_, err := Drain(ctx, g)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("groupby err = %v, want context.Canceled", err)
		}
	})
	t.Run("hashjoin-build", func(t *testing.T) {
		cctx, cancel := context.WithCancel(context.Background())
		inner := &cancelSource{schema: cancelSchema(), rowsPer: 100, cancelAfter: 2, cancel: cancel}
		outer := &cancelSource{schema: cancelSchema(), rowsPer: 1, cancelAfter: -1, cancel: func() {}}
		ctx := NewCtx(1)
		ctx.Context = cctx
		j, err := NewHashJoin(InnerJoin, outer, inner, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		_, err = Drain(ctx, j)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("join err = %v, want context.Canceled", err)
		}
	})
}

// TestSpillReportsToGrant runs a governed, spilling sort on a pool whose
// MAXMEMORYSIZE equals its grant — every renegotiation is denied, so the
// sort externalizes and the grant's counters reflect both the spills and
// the denied extensions.
func TestSpillReportsToGrant(t *testing.T) {
	gov := resmgr.NewGovernor(resmgr.Config{PoolBytes: 1 << 20, MaxConcurrency: 2})
	if err := gov.CreatePool(resmgr.PoolConfig{Name: "tight", GrantBytes: 4 << 10, MaxMemBytes: 4 << 10}); err != nil {
		t.Fatal(err)
	}
	grant, err := gov.Admit(resmgr.WithPool(context.Background(), "tight"))
	if err != nil {
		t.Fatal(err)
	}
	defer grant.Release()

	src := &cancelSource{schema: cancelSchema(), rowsPer: 500, cancelAfter: -1, cancel: func() {}}
	// Bound the stream: stop after 4 batches by wrapping with Limit.
	lim := NewLimit(src, 0, 2000)
	s := NewSort(lim, []SortSpec{{Col: 0}})

	ctx := NewCtx(1)
	ctx.Grant = grant
	ctx.MemBudget = 4 << 10
	ctx.TempDir = t.TempDir()
	rows, err := Drain(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2000 {
		t.Fatalf("got %d rows, want 2000", len(rows))
	}
	qs := grant.Stats()
	if qs.Spills == 0 || qs.SpilledBytes == 0 {
		t.Fatalf("grant did not record spills: %+v", qs)
	}
	if qs.DeniedExtensions == 0 {
		t.Fatalf("spilling sort did not try to renegotiate first: %+v", qs)
	}
	if qs.GrantExtensions != 0 {
		t.Fatalf("capped pool granted an extension: %+v", qs)
	}
	if qs.AllocPeak == 0 {
		t.Fatalf("grant did not record alloc high-water: %+v", qs)
	}
	if ctx.SpilledBytes.Load() != qs.SpilledBytes {
		t.Fatalf("ctx spilled %d bytes, grant %d", ctx.SpilledBytes.Load(), qs.SpilledBytes)
	}
}

// TestExtendBudgetShortfallFallback: when doubling the budget is denied but
// the actual shortfall still fits the pool, extendBudget grants the smaller
// right-sized extension instead of forcing a spill.
func TestExtendBudgetShortfallFallback(t *testing.T) {
	const kib = int64(1 << 10)
	gov := resmgr.NewGovernor(resmgr.Config{PoolBytes: 384 * kib, MaxConcurrency: 1, GrantBytes: 256 * kib})
	grant, err := gov.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer grant.Release()
	ctx := NewCtx(1)
	ctx.Grant = grant

	// Doubling 256K would need 512K total (> 384K pool); the 4K shortfall
	// plus one minimum grant of slack fits.
	got := ctx.extendBudget(256*kib, 260*kib)
	want := (260-256)*kib + resmgr.MinGrantBytes
	if got != want {
		t.Fatalf("shortfall extension = %d, want %d", got, want)
	}
	if grant.Bytes() != 256*kib+want {
		t.Fatalf("grant bytes = %d, want %d", grant.Bytes(), 256*kib+want)
	}
	qs := grant.Stats()
	if qs.DeniedExtensions != 1 || qs.GrantExtensions != 1 {
		t.Fatalf("counters = %+v, want 1 denied (doubling) + 1 granted (shortfall)", qs)
	}
}
