package exec

import (
	"container/heap"
	"fmt"
	"io"
	"sort"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// GroupBy groups and aggregates (paper §6.1 operator 2). Vertica has
// "several different hash based algorithms depending on what is needed for
// maximal performance, how much memory is allotted" plus "classic pipelined
// (one-pass) aggregates"; this operator implements:
//
//   - hash aggregation with externalization: when the hash table exceeds
//     the memory budget, groups spill to sorted partial runs that are
//     k-way merged at the end (requires partial-able aggregates);
//   - one-pass (pipelined) aggregation for inputs sorted by the group key,
//     with an RLE-direct fast path for COUNT(*) over run-length keys;
//   - a merge mode consuming partial rows produced by Prepass operators.
type GroupBy struct {
	single
	Keys     []expr.Expr
	KeyNames []string
	Aggs     []AggSpec

	// InputSorted selects one-pass aggregation (input sorted by Keys).
	InputSorted bool
	// MergePartials marks the input as prepass partial rows: the first
	// len(Keys) columns are keys, followed by each aggregate's partial
	// columns.
	MergePartials bool

	schema *types.Schema

	// hash state
	groups   map[uint64][]*groupEntry
	memUsed  int64
	budget   int64 // starts at Ctx.MemBudget, grows by grant renegotiation
	extDone  bool  // denied with no spill fallback: stop renegotiating
	spills   []*spillReader
	rowArity int

	// one-pass state
	curKey  types.Row
	curAccs []*aggAcc

	// output
	out    []types.Row
	outPos int
	opened bool
	prof   OpProf
}

type groupEntry struct {
	key  types.Row
	accs []*aggAcc
}

// NewGroupBy builds a grouping node.
func NewGroupBy(child Operator, keys []expr.Expr, keyNames []string, aggs []AggSpec) *GroupBy {
	g := &GroupBy{single: single{child: child}, Keys: keys, KeyNames: keyNames, Aggs: aggs}
	cols := make([]types.Column, 0, len(keys)+len(aggs))
	for i, k := range keys {
		name := ""
		if keyNames != nil {
			name = keyNames[i]
		}
		if name == "" {
			name = k.String()
		}
		cols = append(cols, types.Column{Name: name, Typ: k.Type(), Nullable: true})
	}
	for i := range aggs {
		name := aggs[i].Name
		if name == "" {
			name = aggs[i].String()
		}
		cols = append(cols, types.Column{Name: name, Typ: aggs[i].ResultType(), Nullable: true})
	}
	g.schema = types.NewSchema(cols...)
	return g
}

// Schema implements Operator.
func (g *GroupBy) Schema() *types.Schema { return g.schema }

// Describe implements Operator.
func (g *GroupBy) Describe() string {
	mode := "hash"
	if g.InputSorted {
		mode = "one-pass"
	}
	if g.MergePartials {
		mode += "+merge-partials"
	}
	keys := make([]string, len(g.Keys))
	for i, k := range g.Keys {
		keys[i] = k.String()
	}
	return fmt.Sprintf("GroupBy(%s) keys=%v aggs=[%s]", mode, keys, describeAggs(g.Aggs))
}

// Open implements Operator.
func (g *GroupBy) Open(ctx *Ctx) error {
	g.groups = map[uint64][]*groupEntry{}
	g.memUsed = 0
	g.budget = ctx.MemBudget
	g.extDone = false
	g.spills = nil
	g.out = nil
	g.outPos = 0
	g.curKey = nil
	g.curAccs = nil
	g.opened = false
	g.rowArity = len(g.Keys)
	for i := range g.Aggs {
		g.rowArity += g.Aggs[i].PartialWidth()
	}
	return g.openChild(ctx)
}

// Close implements Operator.
func (g *GroupBy) Close(ctx *Ctx) error {
	for _, s := range g.spills {
		s.close()
	}
	g.spills = nil
	g.groups = nil
	return g.closeChild(ctx)
}

// next is the operator body behind the profiled Next (profile.go).
func (g *GroupBy) next(ctx *Ctx) (*vector.Batch, error) {
	if !g.opened {
		if err := g.consumeAll(ctx); err != nil {
			return nil, err
		}
		g.opened = true
	}
	if g.outPos >= len(g.out) {
		return nil, nil
	}
	batch := vector.NewBatchForSchema(g.schema, vector.DefaultBatchSize)
	for g.outPos < len(g.out) && batch.Len() < vector.DefaultBatchSize {
		batch.AppendRow(g.out[g.outPos])
		g.outPos++
	}
	return batch, nil
}

func (g *GroupBy) consumeAll(ctx *Ctx) error {
	for {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		in, err := g.child.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			break
		}
		if g.InputSorted {
			if err := g.consumeSorted(ctx, in); err != nil {
				return err
			}
		} else {
			if err := g.consumeHash(ctx, in); err != nil {
				return err
			}
		}
	}
	if g.InputSorted {
		g.flushCurrentGroup()
		return nil
	}
	return g.finishHash(ctx)
}

// --- hash aggregation ---------------------------------------------------

func (g *GroupBy) consumeHash(ctx *Ctx, in *vector.Batch) error {
	if in.Sel != nil {
		in = in.Flatten()
	} else {
		in.ExpandRLE()
	}
	n := in.Len()
	keyVecs, err := g.evalKeys(in)
	if err != nil {
		return err
	}
	argVecs, err := g.evalArgs(in)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		key := make(types.Row, len(keyVecs))
		for k, kv := range keyVecs {
			key[k] = kv.ValueAt(i)
		}
		e := g.findOrCreate(key)
		g.updateEntry(e, argVecs, in, i)
	}
	ctx.noteAlloc(&g.prof, g.memUsed)
	for g.memUsed > g.budget && !g.extDone {
		// Renegotiate the grant at the spill threshold; externalize only on
		// denial. Holistic aggregates (no partial form) cannot spill at all,
		// so for them a granted extension also keeps the accounting honest.
		if ext := ctx.extendBudget(g.budget, g.memUsed); ext > 0 {
			g.budget += ext
			continue
		}
		if !g.canSpill() {
			// No spill fallback and the pool said no: memUsed stays above
			// budget for the rest of the query, so remember the denial
			// instead of re-asking (and re-counting) on every batch.
			g.extDone = true
			break
		}
		if err := g.spillGroups(ctx); err != nil {
			return err
		}
		break
	}
	return nil
}

func (g *GroupBy) evalKeys(in *vector.Batch) ([]*vector.Vector, error) {
	out := make([]*vector.Vector, len(g.Keys))
	for i, k := range g.Keys {
		v, err := k.Eval(in)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (g *GroupBy) evalArgs(in *vector.Batch) ([]*vector.Vector, error) {
	out := make([]*vector.Vector, len(g.Aggs))
	for i := range g.Aggs {
		if g.Aggs[i].Arg == nil || g.MergePartials {
			continue
		}
		v, err := g.Aggs[i].Arg.Eval(in)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (g *GroupBy) findOrCreate(key types.Row) *groupEntry {
	h := types.HashRow(key, seqIdx(len(key)))
	for _, e := range g.groups[h] {
		if e.key.Compare(key, seqIdx(len(key))) == 0 {
			return e
		}
	}
	e := &groupEntry{key: key, accs: make([]*aggAcc, len(g.Aggs))}
	for i := range g.Aggs {
		e.accs[i] = newAggAcc(&g.Aggs[i])
	}
	g.groups[h] = append(g.groups[h], e)
	g.memUsed += int64(len(key))*24 + int64(len(e.accs))*96 + 64
	return e
}

// updateEntry folds input row i into the group's accumulators; in merge
// mode it consumes partial columns instead.
func (g *GroupBy) updateEntry(e *groupEntry, argVecs []*vector.Vector, in *vector.Batch, i int) {
	if g.MergePartials {
		col := len(g.Keys)
		for a := range g.Aggs {
			w := g.Aggs[a].PartialWidth()
			vals := make([]types.Value, w)
			for j := 0; j < w; j++ {
				vals[j] = in.Cols[col+j].ValueAt(i)
			}
			e.accs[a].mergePartial(vals)
			col += w
		}
		return
	}
	for a := range g.Aggs {
		if g.Aggs[a].Kind == AggCountStar {
			e.accs[a].update(types.Value{})
			continue
		}
		before := int64(0)
		if e.accs[a].distinct != nil {
			before = int64(len(e.accs[a].distinct))
		}
		e.accs[a].update(argVecs[a].ValueAt(i))
		if e.accs[a].distinct != nil {
			g.memUsed += (int64(len(e.accs[a].distinct)) - before) * 32
		}
	}
}

func (g *GroupBy) canSpill() bool {
	if g.MergePartials {
		return true
	}
	for i := range g.Aggs {
		if !g.Aggs[i].SupportsPartial() {
			return false
		}
	}
	return true
}

// spillGroups writes the hash table as a key-sorted partial run and resets.
func (g *GroupBy) spillGroups(ctx *Ctx) error {
	entries := g.sortedEntries()
	w, err := newSpillWriter(spillDir(ctx))
	if err != nil {
		return err
	}
	for _, e := range entries {
		row := append(types.Row{}, e.key...)
		for _, acc := range e.accs {
			row = append(row, acc.partial()...)
		}
		if err := w.writeRow(row); err != nil {
			w.abort()
			return err
		}
	}
	r, err := w.finish()
	if err != nil {
		w.abort()
		return err
	}
	g.spills = append(g.spills, r)
	g.groups = map[uint64][]*groupEntry{}
	g.memUsed = 0
	ctx.noteSpill(&g.prof, r.bytes, "GROUP_BY_SPILLED")
	return nil
}

func (g *GroupBy) sortedEntries() []*groupEntry {
	var entries []*groupEntry
	for _, chain := range g.groups {
		entries = append(entries, chain...)
	}
	keyIdx := seqIdx(len(g.Keys))
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].key.Compare(entries[j].key, keyIdx) < 0
	})
	return entries
}

// finishHash merges in-memory groups with any spilled runs and produces the
// final output rows.
func (g *GroupBy) finishHash(ctx *Ctx) error {
	entries := g.sortedEntries()
	// SQL semantics: a global aggregate (no GROUP BY) over an empty input
	// still yields one row (COUNT(*) = 0, SUM = NULL, ...).
	if len(g.Keys) == 0 && len(entries) == 0 && len(g.spills) == 0 && len(g.Aggs) > 0 {
		e := &groupEntry{accs: make([]*aggAcc, len(g.Aggs))}
		for i := range g.Aggs {
			e.accs[i] = newAggAcc(&g.Aggs[i])
		}
		g.out = []types.Row{g.finalRow(e)}
		return nil
	}
	if len(g.spills) == 0 {
		g.out = make([]types.Row, 0, len(entries))
		for _, e := range entries {
			g.out = append(g.out, g.finalRow(e))
		}
		return nil
	}
	// K-way merge: in-memory entries become one more sorted partial run.
	keyIdx := seqIdx(len(g.Keys))
	var runs []*partialRun
	for _, s := range g.spills {
		r := &partialRun{src: s, arity: g.rowArity}
		if err := r.advance(); err != nil {
			return err
		}
		if r.cur != nil {
			runs = append(runs, r)
		}
	}
	memRun := &partialRun{mem: entriesToPartialRows(entries, g.Aggs), arity: g.rowArity}
	if err := memRun.advance(); err != nil {
		return err
	}
	if memRun.cur != nil {
		runs = append(runs, memRun)
	}
	h := &partialHeap{runs: runs, keyIdx: keyIdx}
	heap.Init(h)
	var curKey types.Row
	var accs []*aggAcc
	flush := func() {
		if curKey == nil {
			return
		}
		e := &groupEntry{key: curKey, accs: accs}
		g.out = append(g.out, g.finalRow(e))
	}
	for h.Len() > 0 {
		run := h.runs[0]
		row := run.cur
		if err := run.advance(); err != nil {
			return err
		}
		if run.cur == nil {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
		key := row[:len(g.Keys)]
		if curKey == nil || curKey.Compare(key, keyIdx) != 0 {
			flush()
			curKey = key.Clone()
			accs = make([]*aggAcc, len(g.Aggs))
			for i := range g.Aggs {
				accs[i] = newAggAcc(&g.Aggs[i])
			}
		}
		col := len(g.Keys)
		for a := range g.Aggs {
			w := g.Aggs[a].PartialWidth()
			accs[a].mergePartial(row[col : col+w])
			col += w
		}
	}
	flush()
	return nil
}

func entriesToPartialRows(entries []*groupEntry, aggs []AggSpec) []types.Row {
	out := make([]types.Row, 0, len(entries))
	for _, e := range entries {
		row := append(types.Row{}, e.key...)
		for _, acc := range e.accs {
			row = append(row, acc.partial()...)
		}
		out = append(out, row)
	}
	return out
}

func (g *GroupBy) finalRow(e *groupEntry) types.Row {
	row := make(types.Row, 0, len(e.key)+len(e.accs))
	row = append(row, e.key...)
	for _, acc := range e.accs {
		row = append(row, acc.final())
	}
	return row
}

// partialRun iterates one sorted partial run (spilled or in-memory).
type partialRun struct {
	src   *spillReader
	mem   []types.Row
	pos   int
	arity int
	cur   types.Row
}

func (r *partialRun) advance() error {
	if r.src != nil {
		row, err := r.src.readRow(r.arity)
		if err == io.EOF {
			r.cur = nil
			return nil
		}
		if err != nil {
			return err
		}
		r.cur = row
		return nil
	}
	if r.pos >= len(r.mem) {
		r.cur = nil
		return nil
	}
	r.cur = r.mem[r.pos]
	r.pos++
	return nil
}

type partialHeap struct {
	runs   []*partialRun
	keyIdx []int
}

func (h *partialHeap) Len() int { return len(h.runs) }
func (h *partialHeap) Less(i, j int) bool {
	return h.runs[i].cur.Compare(h.runs[j].cur, h.keyIdx) < 0
}
func (h *partialHeap) Swap(i, j int)      { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *partialHeap) Push(x interface{}) { h.runs = append(h.runs, x.(*partialRun)) }
func (h *partialHeap) Pop() interface{} {
	old := h.runs
	n := len(old)
	x := old[n-1]
	h.runs = old[:n-1]
	return x
}

// --- one-pass (pipelined) aggregation ------------------------------------

func (g *GroupBy) consumeSorted(ctx *Ctx, in *vector.Batch) error {
	// RLE-direct fast path: COUNT(*)-only aggregates over run-length keys
	// never touch individual rows.
	if g.tryRLEDirect(in) {
		return nil
	}
	if in.Sel != nil {
		in = in.Flatten()
	} else {
		in.ExpandRLE()
	}
	keyVecs, err := g.evalKeys(in)
	if err != nil {
		return err
	}
	argVecs, err := g.evalArgs(in)
	if err != nil {
		return err
	}
	n := in.Len()
	keyIdx := seqIdx(len(g.Keys))
	for i := 0; i < n; i++ {
		key := make(types.Row, len(keyVecs))
		for k, kv := range keyVecs {
			key[k] = kv.ValueAt(i)
		}
		if g.curKey == nil || g.curKey.Compare(key, keyIdx) != 0 {
			g.flushCurrentGroup()
			g.curKey = key
			g.curAccs = make([]*aggAcc, len(g.Aggs))
			for a := range g.Aggs {
				g.curAccs[a] = newAggAcc(&g.Aggs[a])
			}
		}
		g.updateEntry(&groupEntry{key: g.curKey, accs: g.curAccs}, argVecs, in, i)
	}
	return nil
}

// tryRLEDirect consumes the batch via run-length counts when every key is a
// direct column reference in RLE form with aligned runs and every aggregate
// is COUNT(*). Returns false (leaving the batch unconsumed) otherwise.
func (g *GroupBy) tryRLEDirect(in *vector.Batch) bool {
	if in.Sel != nil || g.MergePartials {
		return false
	}
	for i := range g.Aggs {
		if g.Aggs[i].Kind != AggCountStar {
			return false
		}
	}
	keyCols := make([]*vector.Vector, len(g.Keys))
	var runs []int
	for i, k := range g.Keys {
		cr, ok := k.(*expr.ColRef)
		if !ok || cr.Idx >= len(in.Cols) {
			return false
		}
		v := in.Cols[cr.Idx]
		if !v.IsRLE() {
			return false
		}
		if runs == nil {
			runs = v.RunLens
		} else if !sameRuns(runs, v.RunLens) {
			return false
		}
		keyCols[i] = v
	}
	if runs == nil {
		return false
	}
	keyIdx := seqIdx(len(g.Keys))
	for r, n := range runs {
		key := make(types.Row, len(keyCols))
		for k, kv := range keyCols {
			key[k] = kv.ValueAt(r)
		}
		if g.curKey == nil || g.curKey.Compare(key, keyIdx) != 0 {
			g.flushCurrentGroup()
			g.curKey = key
			g.curAccs = make([]*aggAcc, len(g.Aggs))
			for a := range g.Aggs {
				g.curAccs[a] = newAggAcc(&g.Aggs[a])
			}
		}
		for a := range g.Aggs {
			g.curAccs[a].updateRun(types.Value{}, int64(n))
		}
	}
	return true
}

func sameRuns(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (g *GroupBy) flushCurrentGroup() {
	if g.curKey == nil {
		return
	}
	g.out = append(g.out, g.finalRow(&groupEntry{key: g.curKey, accs: g.curAccs}))
	g.curKey, g.curAccs = nil, nil
}

// seqIdx returns [0, 1, ..., n-1].
func seqIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
