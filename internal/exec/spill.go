package exec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/types"
)

// Row spill files: operators externalize arbitrary-size state to disk
// (paper §6.1: "all operators are capable of handling arbitrary sized
// inputs, regardless of the memory allocated, by externalizing their buffers
// to disk"). The format is a stream of length-free self-describing rows:
// per value, a tag byte (type | null bit) and a type-dependent payload.

type spillWriter struct {
	f  *os.File
	cw *countingWriter
	w  *bufio.Writer
	n  int64 // rows written
}

// countingWriter tracks bytes externalized so spills can be charged to the
// query's resource grant.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func newSpillWriter(dir string) (*spillWriter, error) {
	f, err := os.CreateTemp(dir, "spill-*.run")
	if err != nil {
		return nil, err
	}
	cw := &countingWriter{w: f}
	return &spillWriter{f: f, cw: cw, w: bufio.NewWriterSize(cw, 1<<16)}, nil
}

func (s *spillWriter) writeRow(r types.Row) error {
	var buf [10]byte
	for _, v := range r {
		tag := byte(v.Typ)
		if v.Null {
			tag |= 0x80
		}
		if err := s.w.WriteByte(tag); err != nil {
			return err
		}
		if v.Null {
			continue
		}
		switch v.Typ {
		case types.Float64:
			binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(v.F))
			if _, err := s.w.Write(buf[:8]); err != nil {
				return err
			}
		case types.Varchar:
			n := binary.PutUvarint(buf[:], uint64(len(v.S)))
			if _, err := s.w.Write(buf[:n]); err != nil {
				return err
			}
			if _, err := s.w.WriteString(v.S); err != nil {
				return err
			}
		default:
			n := binary.PutVarint(buf[:], v.I)
			if _, err := s.w.Write(buf[:n]); err != nil {
				return err
			}
		}
	}
	s.n++
	return nil
}

// abort discards a partially written run (cancellation mid-spill).
func (s *spillWriter) abort() {
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
}

// finish flushes and reopens the run for reading.
func (s *spillWriter) finish() (*spillReader, error) {
	if err := s.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return &spillReader{f: s.f, r: bufio.NewReaderSize(s.f, 1<<16), rows: s.n, bytes: s.cw.n}, nil
}

type spillReader struct {
	f     *os.File
	r     *bufio.Reader
	rows  int64
	read  int64
	bytes int64 // bytes written to the run (grant accounting)
}

// readRow reads the next row of the given arity; io.EOF at end.
func (s *spillReader) readRow(arity int) (types.Row, error) {
	if s.read >= s.rows {
		return nil, io.EOF
	}
	row := make(types.Row, arity)
	for i := 0; i < arity; i++ {
		tag, err := s.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("exec: corrupt spill run: %w", err)
		}
		typ := types.Type(tag & 0x7f)
		if tag&0x80 != 0 {
			row[i] = types.NewNull(typ)
			continue
		}
		switch typ {
		case types.Float64:
			var b [8]byte
			if _, err := io.ReadFull(s.r, b[:]); err != nil {
				return nil, fmt.Errorf("exec: corrupt spill run: %w", err)
			}
			row[i] = types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
		case types.Varchar:
			l, err := binary.ReadUvarint(s.r)
			if err != nil {
				return nil, fmt.Errorf("exec: corrupt spill run: %w", err)
			}
			b := make([]byte, l)
			if _, err := io.ReadFull(s.r, b); err != nil {
				return nil, fmt.Errorf("exec: corrupt spill run: %w", err)
			}
			row[i] = types.NewString(string(b))
		default:
			v, err := binary.ReadVarint(s.r)
			if err != nil {
				return nil, fmt.Errorf("exec: corrupt spill run: %w", err)
			}
			row[i] = types.Value{Typ: typ, I: v}
		}
	}
	s.read++
	return row, nil
}

func (s *spillReader) close() {
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
}

// spillDir resolves the context's temp directory.
func spillDir(ctx *Ctx) string {
	if ctx.TempDir != "" {
		return ctx.TempDir
	}
	return os.TempDir()
}
