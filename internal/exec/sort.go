package exec

import (
	"container/heap"
	"fmt"
	"io"
	"sort"

	"repro/internal/types"
	"repro/internal/vector"
)

// SortSpec orders one column.
type SortSpec struct {
	Col  int
	Desc bool
}

// compareRows orders rows by a sort spec (NULLS FIRST ascending).
func compareRows(a, b types.Row, specs []SortSpec) int {
	for _, s := range specs {
		c := a[s.Col].Compare(b[s.Col])
		if c != 0 {
			if s.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// Sort sorts its input (paper §6.1 operator 5: "sorts incoming data,
// externalizing if needed"). Input batches accumulate in memory until the
// budget is exceeded, at which point sorted runs spill to disk and the final
// pass is a k-way merge of the runs.
type Sort struct {
	single
	Specs []SortSpec

	rows    []types.Row
	memUsed int64
	budget  int64 // starts at Ctx.MemBudget, grows by grant renegotiation
	runs    []*spillReader
	merge   *sortMerge
	arity   int
	sorted  bool
	pos     int
	prof    OpProf
}

// NewSort builds a sort node.
func NewSort(child Operator, specs []SortSpec) *Sort {
	return &Sort{single: single{child: child}, Specs: specs}
}

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.child.Schema() }

// Describe implements Operator.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Specs))
	for i, sp := range s.Specs {
		dir := "asc"
		if sp.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("$%d %s", sp.Col, dir)
	}
	return fmt.Sprintf("Sort %v", parts)
}

// Open implements Operator.
func (s *Sort) Open(ctx *Ctx) error {
	s.rows = nil
	s.memUsed = 0
	s.budget = ctx.MemBudget
	s.runs = nil
	s.merge = nil
	s.sorted = false
	s.pos = 0
	s.arity = s.child.Schema().Len()
	return s.openChild(ctx)
}

// Close implements Operator.
func (s *Sort) Close(ctx *Ctx) error {
	for _, r := range s.runs {
		r.close()
	}
	s.runs = nil
	return s.closeChild(ctx)
}

// next is the operator body behind the profiled Next (profile.go).
func (s *Sort) next(ctx *Ctx) (*vector.Batch, error) {
	if !s.sorted {
		if err := s.consume(ctx); err != nil {
			return nil, err
		}
		s.sorted = true
	}
	if s.merge != nil {
		return s.merge.next(s.child.Schema())
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	batch := vector.NewBatchForSchema(s.child.Schema(), vector.DefaultBatchSize)
	for s.pos < len(s.rows) && batch.Len() < vector.DefaultBatchSize {
		batch.AppendRow(s.rows[s.pos])
		s.pos++
	}
	return batch, nil
}

func (s *Sort) consume(ctx *Ctx) error {
	for {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		in, err := s.child.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			break
		}
		for _, r := range in.Rows() {
			s.rows = append(s.rows, r)
			s.memUsed += rowMemBytes(r)
		}
		ctx.noteAlloc(&s.prof, s.memUsed)
		for s.memUsed > s.budget {
			// At the spill threshold, renegotiate the grant first: grow in
			// place while the pool has headroom, externalize only on denial.
			if ext := ctx.extendBudget(s.budget, s.memUsed); ext > 0 {
				s.budget += ext
				continue
			}
			if err := s.spillRun(ctx); err != nil {
				return err
			}
			break
		}
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		return compareRows(s.rows[i], s.rows[j], s.Specs) < 0
	})
	if len(s.runs) == 0 {
		return nil
	}
	// Final pass: merge spilled runs with the in-memory tail.
	var srcs []*sortedRun
	for _, r := range s.runs {
		sr := &sortedRun{src: r, arity: s.arity}
		if err := sr.advance(); err != nil {
			return err
		}
		if sr.cur != nil {
			srcs = append(srcs, sr)
		}
	}
	memRun := &sortedRun{mem: s.rows, arity: s.arity}
	if err := memRun.advance(); err != nil {
		return err
	}
	if memRun.cur != nil {
		srcs = append(srcs, memRun)
	}
	h := &sortRunHeap{runs: srcs, specs: s.Specs}
	heap.Init(h)
	s.merge = &sortMerge{h: h}
	s.rows = nil
	return nil
}

func (s *Sort) spillRun(ctx *Ctx) error {
	sort.SliceStable(s.rows, func(i, j int) bool {
		return compareRows(s.rows[i], s.rows[j], s.Specs) < 0
	})
	w, err := newSpillWriter(spillDir(ctx))
	if err != nil {
		return err
	}
	for i, r := range s.rows {
		// Poll cancellation mid-spill: a run can be long and the whole
		// point of cancel is to stop burning disk and CPU promptly.
		if i%1024 == 0 {
			if err := ctx.Canceled(); err != nil {
				w.abort()
				return err
			}
		}
		if err := w.writeRow(r); err != nil {
			w.abort()
			return err
		}
	}
	rd, err := w.finish()
	if err != nil {
		w.abort()
		return err
	}
	s.runs = append(s.runs, rd)
	s.rows = nil
	s.memUsed = 0
	ctx.noteSpill(&s.prof, rd.bytes, "SORT_SPILLED")
	return nil
}

func rowMemBytes(r types.Row) int64 {
	b := int64(24 * len(r))
	for _, v := range r {
		if v.Typ == types.Varchar {
			b += int64(len(v.S))
		}
	}
	return b
}

// sortedRun iterates one sorted run (spilled or in-memory).
type sortedRun struct {
	src   *spillReader
	mem   []types.Row
	pos   int
	arity int
	cur   types.Row
}

func (r *sortedRun) advance() error {
	if r.src != nil {
		row, err := r.src.readRow(r.arity)
		if err == io.EOF {
			r.cur = nil
			return nil
		}
		if err != nil {
			return err
		}
		r.cur = row
		return nil
	}
	if r.pos >= len(r.mem) {
		r.cur = nil
		return nil
	}
	r.cur = r.mem[r.pos]
	r.pos++
	return nil
}

type sortRunHeap struct {
	runs  []*sortedRun
	specs []SortSpec
}

func (h *sortRunHeap) Len() int { return len(h.runs) }
func (h *sortRunHeap) Less(i, j int) bool {
	return compareRows(h.runs[i].cur, h.runs[j].cur, h.specs) < 0
}
func (h *sortRunHeap) Swap(i, j int)      { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *sortRunHeap) Push(x interface{}) { h.runs = append(h.runs, x.(*sortedRun)) }
func (h *sortRunHeap) Pop() interface{} {
	old := h.runs
	n := len(old)
	x := old[n-1]
	h.runs = old[:n-1]
	return x
}

type sortMerge struct {
	h *sortRunHeap
}

func (m *sortMerge) next(schema *types.Schema) (*vector.Batch, error) {
	if m.h.Len() == 0 {
		return nil, nil
	}
	batch := vector.NewBatchForSchema(schema, vector.DefaultBatchSize)
	for batch.Len() < vector.DefaultBatchSize && m.h.Len() > 0 {
		run := m.h.runs[0]
		batch.AppendRow(run.cur)
		if err := run.advance(); err != nil {
			return nil, err
		}
		if run.cur == nil {
			heap.Pop(m.h)
		} else {
			heap.Fix(m.h, 0)
		}
	}
	if batch.Len() == 0 {
		return nil, nil
	}
	return batch, nil
}

// externalSortRows sorts an arbitrary row stream with bounded memory,
// returning an iterator; used by the hash join's runtime switch to
// sort-merge (paper §6.1: "if Vertica determines at runtime the hash table
// for a hash join will not fit into memory, we will perform a sort-merge
// join instead").
type rowIter interface {
	next() (types.Row, error) // nil row at end
}

type sliceRowIter struct {
	rows []types.Row
	pos  int
}

func (s *sliceRowIter) next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

type mergeRowIter struct{ h *sortRunHeap }

func (m *mergeRowIter) next() (types.Row, error) {
	if m.h.Len() == 0 {
		return nil, nil
	}
	run := m.h.runs[0]
	row := run.cur
	if err := run.advance(); err != nil {
		return nil, err
	}
	if run.cur == nil {
		heap.Pop(m.h)
	} else {
		heap.Fix(m.h, 0)
	}
	return row, nil
}

// externalSorter accumulates rows and produces a sorted iterator.
type externalSorter struct {
	ctx     *Ctx
	specs   []SortSpec
	arity   int
	rows    []types.Row
	memUsed int64
	budget  int64 // starts at Ctx.MemBudget, grows by grant renegotiation
	runs    []*spillReader
	// prof is the owning operator's collector (the sorter is internal to a
	// join's sort-merge switch); nil attributes nothing.
	prof *OpProf
}

func newExternalSorter(ctx *Ctx, specs []SortSpec, arity int) *externalSorter {
	return &externalSorter{ctx: ctx, specs: specs, arity: arity, budget: ctx.MemBudget}
}

func (e *externalSorter) add(r types.Row) error {
	e.rows = append(e.rows, r)
	e.memUsed += rowMemBytes(r)
	e.ctx.noteAlloc(e.prof, e.memUsed)
	for e.memUsed > e.budget {
		// Renegotiate the grant before externalizing; spill on denial.
		if ext := e.ctx.extendBudget(e.budget, e.memUsed); ext > 0 {
			e.budget += ext
			continue
		}
		return e.spill()
	}
	return nil
}

func (e *externalSorter) spill() error {
	if err := e.ctx.Canceled(); err != nil {
		return err
	}
	sort.SliceStable(e.rows, func(i, j int) bool {
		return compareRows(e.rows[i], e.rows[j], e.specs) < 0
	})
	w, err := newSpillWriter(spillDir(e.ctx))
	if err != nil {
		return err
	}
	for _, r := range e.rows {
		if err := w.writeRow(r); err != nil {
			w.abort()
			return err
		}
	}
	rd, err := w.finish()
	if err != nil {
		w.abort()
		return err
	}
	e.runs = append(e.runs, rd)
	e.rows = nil
	e.memUsed = 0
	e.ctx.noteSpill(e.prof, rd.bytes, "SORT_SPILLED")
	return nil
}

func (e *externalSorter) finish() (rowIter, error) {
	sort.SliceStable(e.rows, func(i, j int) bool {
		return compareRows(e.rows[i], e.rows[j], e.specs) < 0
	})
	if len(e.runs) == 0 {
		return &sliceRowIter{rows: e.rows}, nil
	}
	var srcs []*sortedRun
	for _, r := range e.runs {
		sr := &sortedRun{src: r, arity: e.arity}
		if err := sr.advance(); err != nil {
			return nil, err
		}
		if sr.cur != nil {
			srcs = append(srcs, sr)
		}
	}
	memRun := &sortedRun{mem: e.rows, arity: e.arity}
	if err := memRun.advance(); err != nil {
		return nil, err
	}
	if memRun.cur != nil {
		srcs = append(srcs, memRun)
	}
	h := &sortRunHeap{runs: srcs, specs: e.specs}
	heap.Init(h)
	return &mergeRowIter{h: h}, nil
}

func (e *externalSorter) closeRuns() {
	for _, r := range e.runs {
		r.close()
	}
}
