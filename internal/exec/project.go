package exec

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Project is the ExprEval operator (paper §6.1 operator 4): it computes one
// output column per expression over its input batches.
type Project struct {
	single
	Exprs []expr.Expr
	Names []string

	schema *types.Schema
	prof   OpProf
}

// NewProject builds an ExprEval node. names may be nil (auto-named).
func NewProject(child Operator, exprs []expr.Expr, names []string) *Project {
	cols := make([]types.Column, len(exprs))
	for i, e := range exprs {
		name := ""
		if names != nil {
			name = names[i]
		}
		if name == "" {
			name = e.String()
		}
		cols[i] = types.Column{Name: name, Typ: e.Type(), Nullable: true}
	}
	return &Project{
		single: single{child: child},
		Exprs:  exprs,
		Names:  names,
		schema: types.NewSchema(cols...),
	}
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema { return p.schema }

// Describe implements Operator.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "ExprEval [" + strings.Join(parts, ", ") + "]"
}

// Open implements Operator.
func (p *Project) Open(ctx *Ctx) error { return p.openChild(ctx) }

// Close implements Operator.
func (p *Project) Close(ctx *Ctx) error { return p.closeChild(ctx) }

// next is the operator body behind the profiled Next (profile.go).
func (p *Project) next(ctx *Ctx) (*vector.Batch, error) {
	in, err := p.child.Next(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	if in.Sel != nil {
		in = in.Flatten()
	}
	out := &vector.Batch{Cols: make([]*vector.Vector, len(p.Exprs))}
	for i, e := range p.Exprs {
		v, err := e.Eval(in)
		if err != nil {
			return nil, fmt.Errorf("exec: evaluating %s: %w", e, err)
		}
		out.Cols[i] = v
	}
	return out, nil
}

// Filter drops rows not satisfying the predicate (used where a predicate
// cannot be pushed into a scan, e.g. post-join or post-aggregate HAVING).
type Filter struct {
	single
	Pred expr.Expr
	prof OpProf
}

// NewFilter builds a filter node.
func NewFilter(child Operator, pred expr.Expr) *Filter {
	return &Filter{single: single{child: child}, Pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.child.Schema() }

// Describe implements Operator.
func (f *Filter) Describe() string { return "Filter " + f.Pred.String() }

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx) error { return f.openChild(ctx) }

// Close implements Operator.
func (f *Filter) Close(ctx *Ctx) error { return f.closeChild(ctx) }

// next is the operator body behind the profiled Next (profile.go).
func (f *Filter) next(ctx *Ctx) (*vector.Batch, error) {
	for {
		in, err := f.child.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		sel, err := expr.SelectWhere(in, f.Pred)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			continue
		}
		in.Sel = sel
		return in.Flatten(), nil
	}
}

// Limit caps the number of rows produced (with optional offset).
type Limit struct {
	single
	Offset int64
	Count  int64

	skipped int64
	emitted int64
	prof    OpProf
}

// NewLimit builds a LIMIT/OFFSET node; count < 0 means no limit.
func NewLimit(child Operator, offset, count int64) *Limit {
	return &Limit{single: single{child: child}, Offset: offset, Count: count}
}

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.child.Schema() }

// Describe implements Operator.
func (l *Limit) Describe() string {
	return fmt.Sprintf("Limit offset=%d count=%d", l.Offset, l.Count)
}

// Open implements Operator.
func (l *Limit) Open(ctx *Ctx) error {
	l.skipped, l.emitted = 0, 0
	return l.openChild(ctx)
}

// Close implements Operator.
func (l *Limit) Close(ctx *Ctx) error { return l.closeChild(ctx) }

// next is the operator body behind the profiled Next (profile.go).
func (l *Limit) next(ctx *Ctx) (*vector.Batch, error) {
	for {
		if l.Count >= 0 && l.emitted >= l.Count {
			return nil, nil
		}
		in, err := l.child.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		if in.Sel != nil {
			in = in.Flatten()
		} else {
			in.ExpandRLE()
		}
		n := int64(in.Len())
		if l.skipped < l.Offset {
			drop := l.Offset - l.skipped
			if drop >= n {
				l.skipped += n
				continue
			}
			l.skipped = l.Offset
			// The batch is flat here: truncation is a zero-copy slice view.
			in = in.SliceRows(int(drop), int(n))
			n = int64(in.Len())
		}
		if l.Count >= 0 && l.emitted+n > l.Count {
			keep := l.Count - l.emitted
			in = in.SliceRows(0, int(keep))
			n = keep
		}
		l.emitted += n
		return in, nil
	}
}
