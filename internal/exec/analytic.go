package exec

import (
	"fmt"
	"sort"

	"repro/internal/types"
	"repro/internal/vector"
)

// AnalyticKind identifies a windowed (SQL-99 analytic) function
// (paper §6.1 operator 6).
type AnalyticKind uint8

// Analytic functions.
const (
	AnRowNumber AnalyticKind = iota
	AnRank
	AnDenseRank
	AnSum
	AnAvg
	AnCount
	AnMin
	AnMax
	AnLag
	AnLead
)

func (k AnalyticKind) String() string {
	switch k {
	case AnRowNumber:
		return "ROW_NUMBER"
	case AnRank:
		return "RANK"
	case AnDenseRank:
		return "DENSE_RANK"
	case AnSum:
		return "SUM"
	case AnAvg:
		return "AVG"
	case AnCount:
		return "COUNT"
	case AnMin:
		return "MIN"
	case AnMax:
		return "MAX"
	case AnLag:
		return "LAG"
	case AnLead:
		return "LEAD"
	default:
		return fmt.Sprintf("ANALYTIC(%d)", k)
	}
}

// AnalyticSpec is one windowed computation: fn(ArgCol) OVER (PARTITION BY
// PartitionCols ORDER BY OrderBy). With an ORDER BY, aggregates are running
// (rows unbounded preceding .. current row); without, they span the whole
// partition.
type AnalyticSpec struct {
	Kind          AnalyticKind
	ArgCol        int // -1 when no argument (ROW_NUMBER, RANK, COUNT(*))
	PartitionCols []int
	OrderBy       []SortSpec
	Name          string
	Offset        int // LAG/LEAD distance (default 1)
}

// ResultType returns the analytic output type given the input schema.
func (a *AnalyticSpec) ResultType(in *types.Schema) types.Type {
	switch a.Kind {
	case AnRowNumber, AnRank, AnDenseRank, AnCount:
		return types.Int64
	case AnAvg:
		return types.Float64
	default:
		return in.Col(a.ArgCol).Typ
	}
}

// Analytic computes windowed aggregates. It materializes its input, sorts by
// (partition, order) and appends one column per spec.
type Analytic struct {
	single
	Specs []AnalyticSpec

	schema *types.Schema
	out    []types.Row
	pos    int
	done   bool
	prof   OpProf
}

// NewAnalytic builds an analytic node. All specs must share PartitionCols
// and OrderBy (the planner splits differing windows into separate nodes).
func NewAnalytic(child Operator, specs []AnalyticSpec) (*Analytic, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("exec: analytic requires at least one spec")
	}
	in := child.Schema()
	cols := append([]types.Column{}, in.Cols...)
	for i := range specs {
		name := specs[i].Name
		if name == "" {
			name = specs[i].Kind.String()
		}
		cols = append(cols, types.Column{Name: name, Typ: specs[i].ResultType(in), Nullable: true})
	}
	return &Analytic{single: single{child: child}, Specs: specs, schema: types.NewSchema(cols...)}, nil
}

// Schema implements Operator.
func (a *Analytic) Schema() *types.Schema { return a.schema }

// Describe implements Operator.
func (a *Analytic) Describe() string {
	parts := make([]string, len(a.Specs))
	for i := range a.Specs {
		parts[i] = a.Specs[i].Kind.String()
	}
	return fmt.Sprintf("Analytic %v partition=%v", parts, a.Specs[0].PartitionCols)
}

// Open implements Operator.
func (a *Analytic) Open(ctx *Ctx) error {
	a.out, a.pos, a.done = nil, 0, false
	return a.openChild(ctx)
}

// Close implements Operator.
func (a *Analytic) Close(ctx *Ctx) error { return a.closeChild(ctx) }

// next is the operator body behind the profiled Next (profile.go).
func (a *Analytic) next(ctx *Ctx) (*vector.Batch, error) {
	if !a.done {
		if err := a.compute(ctx); err != nil {
			return nil, err
		}
		a.done = true
	}
	if a.pos >= len(a.out) {
		return nil, nil
	}
	batch := vector.NewBatchForSchema(a.schema, vector.DefaultBatchSize)
	for a.pos < len(a.out) && batch.Len() < vector.DefaultBatchSize {
		batch.AppendRow(a.out[a.pos])
		a.pos++
	}
	return batch, nil
}

func (a *Analytic) compute(ctx *Ctx) error {
	var rows []types.Row
	for {
		b, err := a.child.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		rows = append(rows, b.Rows()...)
	}
	spec0 := a.Specs[0]
	// Sort by partition columns then window order.
	sortSpecs := make([]SortSpec, 0, len(spec0.PartitionCols)+len(spec0.OrderBy))
	for _, p := range spec0.PartitionCols {
		sortSpecs = append(sortSpecs, SortSpec{Col: p})
	}
	sortSpecs = append(sortSpecs, spec0.OrderBy...)
	sort.SliceStable(rows, func(i, j int) bool {
		return compareRows(rows[i], rows[j], sortSpecs) < 0
	})
	// Process per partition.
	start := 0
	for start < len(rows) {
		end := start + 1
		for end < len(rows) && samePartition(rows[start], rows[end], spec0.PartitionCols) {
			end++
		}
		if err := a.computePartition(rows[start:end]); err != nil {
			return err
		}
		start = end
	}
	a.out = rows
	return nil
}

func samePartition(a, b types.Row, cols []int) bool {
	for _, c := range cols {
		if a[c].Compare(b[c]) != 0 {
			return false
		}
	}
	return true
}

// computePartition appends analytic values to each row of one partition
// (rows are already window-ordered).
func (a *Analytic) computePartition(part []types.Row) error {
	for si := range a.Specs {
		spec := &a.Specs[si]
		switch spec.Kind {
		case AnRowNumber:
			for i := range part {
				part[i] = append(part[i], types.NewInt(int64(i+1)))
			}
		case AnRank, AnDenseRank:
			rank, dense := int64(1), int64(1)
			for i := range part {
				if i > 0 && compareRows(part[i-1], part[i], spec.OrderBy) != 0 {
					rank = int64(i + 1)
					dense++
				}
				if spec.Kind == AnRank {
					part[i] = append(part[i], types.NewInt(rank))
				} else {
					part[i] = append(part[i], types.NewInt(dense))
				}
			}
		case AnLag, AnLead:
			off := spec.Offset
			if off == 0 {
				off = 1
			}
			typ := a.schema.Col(len(part[0])).Typ
			for i := range part {
				src := i - off
				if spec.Kind == AnLead {
					src = i + off
				}
				if src < 0 || src >= len(part) {
					part[i] = append(part[i], types.NewNull(typ))
				} else {
					part[i] = append(part[i], part[src][spec.ArgCol])
				}
			}
		default:
			if err := a.runningAgg(part, spec); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *Analytic) runningAgg(part []types.Row, spec *AnalyticSpec) error {
	kindMap := map[AnalyticKind]AggKind{
		AnSum: AggSum, AnAvg: AggAvg, AnCount: AggCount, AnMin: AggMin, AnMax: AggMax,
	}
	aggKind, ok := kindMap[spec.Kind]
	if !ok {
		return fmt.Errorf("exec: unsupported analytic %s", spec.Kind)
	}
	argType := types.Int64
	if spec.ArgCol >= 0 {
		argType = part[0][spec.ArgCol].Typ
		if argType == types.Invalid {
			argType = a.child.Schema().Col(spec.ArgCol).Typ
		}
	}
	if len(spec.OrderBy) == 0 {
		// Whole-partition aggregate: one value for every row.
		acc := &aggAcc{kind: aggKind, typ: argType}
		for i := range part {
			if spec.ArgCol >= 0 {
				acc.update(part[i][spec.ArgCol])
			} else {
				acc.update(types.Value{})
			}
		}
		v := acc.final()
		for i := range part {
			part[i] = append(part[i], v)
		}
		return nil
	}
	// Running aggregate with peer-row semantics: rows tied in the window
	// order share the frame end (RANGE UNBOUNDED PRECEDING .. CURRENT ROW).
	acc := &aggAcc{kind: aggKind, typ: argType}
	i := 0
	for i < len(part) {
		j := i
		for j < len(part) && compareRows(part[i], part[j], spec.OrderBy) == 0 {
			if spec.ArgCol >= 0 {
				acc.update(part[j][spec.ArgCol])
			} else {
				acc.update(types.Value{})
			}
			j++
		}
		v := acc.final()
		for k := i; k < j; k++ {
			part[k] = append(part[k], v)
		}
		i = j
	}
	return nil
}
