package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/resmgr"
	"repro/internal/vector"
)

// Per-operator execution profiling. Every operator embeds an OpProf and
// keeps its logic in an unexported next method; the exported Next methods
// below funnel through Ctx.observe, so batch/row counts are always on
// (two atomic adds per batch) and wall-clock time is recorded only when
// Ctx.ProfTimes is set (PROFILE statements, the Profile database option,
// and slow-query capture candidates). Wall time is inclusive of children:
// a parent's Next pulls from its child inside the timed window, exactly as
// the EXPLAIN tree nests. Exchange receive ports additionally record
// blocked time (waiting on upstream pumps), which separates "this operator
// was slow" from "this operator was starved".

// OpProf is one operator's execution collector. NodeID and EstRows are
// written by the planner before execution and read afterwards; the atomic
// counters are touched by the operator's pipeline goroutine during the run.
type OpProf struct {
	// NodeID is the operator's pre-order position in the plan tree.
	NodeID int
	// EstRows is the optimizer's cardinality estimate for this node.
	EstRows int64

	Batches      atomic.Int64
	Rows         atomic.Int64
	WallNs       atomic.Int64
	BlockedNs    atomic.Int64
	Spills       atomic.Int64
	SpilledBytes atomic.Int64
	AllocPeak    atomic.Int64
}

// notePeak raises AllocPeak to n if higher (operators report running
// high-water marks, not deltas).
func (p *OpProf) notePeak(n int64) {
	for {
		cur := p.AllocPeak.Load()
		if n <= cur || p.AllocPeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Profiled is implemented by every engine operator; test doubles that
// implement Operator without a collector are tolerated everywhere profiles
// are gathered.
type Profiled interface{ Prof() *OpProf }

// hasChildren is the plan-walk interface (also used by Describe).
type hasChildren interface{ Children() []Operator }

// observe wraps one operator Next call: it always counts batches and rows,
// and in timed mode accumulates wall-clock time spent inside the call.
func (c *Ctx) observe(p *OpProf, next func(*Ctx) (*vector.Batch, error)) (*vector.Batch, error) {
	if c.ProfTimes {
		start := time.Now()
		b, err := next(c)
		p.WallNs.Add(int64(time.Since(start)))
		if b != nil {
			p.Batches.Add(1)
			p.Rows.Add(int64(b.Len()))
		}
		return b, err
	}
	b, err := next(c)
	if b != nil {
		p.Batches.Add(1)
		p.Rows.Add(int64(b.Len()))
	}
	return b, err
}

// --- exported Next wrappers ------------------------------------------------
// One wrapper per operator; the logic lives in each operator's next method.

// Next implements Operator.
func (s *Scan) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&s.prof, s.next) }

// Prof implements Profiled.
func (s *Scan) Prof() *OpProf { return &s.prof }

// Next implements Operator.
func (v *VirtualScan) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&v.prof, v.next) }

// Prof implements Profiled.
func (v *VirtualScan) Prof() *OpProf { return &v.prof }

// Next implements Operator.
func (p *Project) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&p.prof, p.next) }

// Prof implements Profiled.
func (p *Project) Prof() *OpProf { return &p.prof }

// Next implements Operator.
func (f *Filter) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&f.prof, f.next) }

// Prof implements Profiled.
func (f *Filter) Prof() *OpProf { return &f.prof }

// Next implements Operator.
func (l *Limit) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&l.prof, l.next) }

// Prof implements Profiled.
func (l *Limit) Prof() *OpProf { return &l.prof }

// Next implements Operator.
func (s *Sort) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&s.prof, s.next) }

// Prof implements Profiled.
func (s *Sort) Prof() *OpProf { return &s.prof }

// Next implements Operator.
func (g *GroupBy) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&g.prof, g.next) }

// Prof implements Profiled.
func (g *GroupBy) Prof() *OpProf { return &g.prof }

// Next implements Operator.
func (p *Prepass) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&p.prof, p.next) }

// Prof implements Profiled.
func (p *Prepass) Prof() *OpProf { return &p.prof }

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&j.prof, j.next) }

// Prof implements Profiled.
func (j *HashJoin) Prof() *OpProf { return &j.prof }

// Next implements Operator.
func (j *MergeJoin) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&j.prof, j.next) }

// Prof implements Profiled.
func (j *MergeJoin) Prof() *OpProf { return &j.prof }

// Next implements Operator.
func (a *Analytic) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&a.prof, a.next) }

// Prof implements Profiled.
func (a *Analytic) Prof() *OpProf { return &a.prof }

// Next implements Operator.
func (u *ParallelUnion) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&u.prof, u.next) }

// Prof implements Profiled.
func (u *ParallelUnion) Prof() *OpProf { return &u.prof }

// Next implements Operator.
func (u *SerialUnion) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&u.prof, u.next) }

// Prof implements Profiled.
func (u *SerialUnion) Prof() *OpProf { return &u.prof }

// Next implements Operator.
func (v *Values) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&v.prof, v.next) }

// Prof implements Profiled.
func (v *Values) Prof() *OpProf { return &v.prof }

// Next implements Operator.
func (r *recvPort) Next(ctx *Ctx) (*vector.Batch, error) { return ctx.observe(&r.prof, r.next) }

// Prof implements Profiled.
func (r *recvPort) Prof() *OpProf { return &r.prof }

// --- plan-node ids and estimate propagation --------------------------------

// AssignNodeIDs numbers the plan pre-order (the order Describe renders),
// so profile records line up with EXPLAIN lines. Returns the node count.
func AssignNodeIDs(root Operator) int {
	next := 0
	var walk func(op Operator)
	walk = func(op Operator) {
		if p, ok := op.(Profiled); ok {
			p.Prof().NodeID = next
		}
		next++
		if hc, ok := op.(hasChildren); ok {
			for _, c := range hc.Children() {
				walk(c)
			}
		}
	}
	walk(root)
	return next
}

// SetEstRows tags op with the optimizer's cardinality estimate; a no-op for
// operators without a collector.
func SetEstRows(op Operator, n int64) {
	if p, ok := op.(Profiled); ok {
		p.Prof().EstRows = n
	}
}

// EstRowsOf reads op's estimate (0 when untagged).
func EstRowsOf(op Operator) int64 {
	if p, ok := op.(Profiled); ok {
		return p.Prof().EstRows
	}
	return 0
}

// FinalizeEstimates fills estimate gaps after the planner tagged its anchor
// nodes (scans, joins, aggregates, the root): untagged single-child nodes
// inherit their child's estimate, untagged multi-child nodes take the sum,
// and exchange receive ports take their exchange's total input estimate
// divided across ways (broadcast ports see the whole input). The walk is
// bottom-up so estimates flow from the planner's anchors toward the root.
func FinalizeEstimates(root Operator) {
	var walk func(op Operator) int64
	walk = func(op Operator) int64 {
		var kids []Operator
		if hc, ok := op.(hasChildren); ok {
			kids = hc.Children()
		}
		var sum int64
		for _, c := range kids {
			sum += walk(c)
		}
		p, ok := op.(Profiled)
		if !ok {
			return sum
		}
		pr := p.Prof()
		if pr.EstRows != 0 {
			return pr.EstRows
		}
		if r, isPort := op.(*recvPort); isPort {
			var total int64
			for _, in := range r.ex.inputs {
				total += EstRowsOf(in)
			}
			if r.ex.Broadcast || r.ex.ways <= 1 {
				pr.EstRows = total
			} else {
				pr.EstRows = total / int64(r.ex.ways)
			}
			return pr.EstRows
		}
		pr.EstRows = sum
		return pr.EstRows
	}
	walk(root)
}

// --- collection and rendering ---------------------------------------------

// CollectProfiles flattens a plan's collectors into per-operator records
// (pre-order, matching EXPLAIN). Always cheap: one walk, a handful of
// atomic loads per node.
func CollectProfiles(root Operator, node string) []resmgr.OpProfile {
	var out []resmgr.OpProfile
	var walk func(op Operator, depth int)
	walk = func(op Operator, depth int) {
		rec := resmgr.OpProfile{Node: node, NodeID: -1, Depth: depth, Op: op.Describe()}
		if p, ok := op.(Profiled); ok {
			pr := p.Prof()
			rec.NodeID = pr.NodeID
			rec.EstRows = pr.EstRows
			rec.Batches = pr.Batches.Load()
			rec.Rows = pr.Rows.Load()
			rec.WallUs = pr.WallNs.Load() / 1000
			rec.BlockedUs = pr.BlockedNs.Load() / 1000
			rec.Spills = pr.Spills.Load()
			rec.SpilledBytes = pr.SpilledBytes.Load()
			rec.AllocPeak = pr.AllocPeak.Load()
		}
		out = append(out, rec)
		if hc, ok := op.(hasChildren); ok {
			for _, c := range hc.Children() {
				walk(c, depth+1)
			}
		}
	}
	walk(root, 0)
	return out
}

// FormatProfiles renders per-operator records as the PROFILE statement's
// annotated EXPLAIN tree: one line per operator with actual vs estimated
// rows, and times/spills/memory when recorded.
func FormatProfiles(recs []resmgr.OpProfile) string {
	var sb strings.Builder
	for _, r := range recs {
		sb.WriteString(strings.Repeat("  ", r.Depth))
		sb.WriteString(r.Op)
		fmt.Fprintf(&sb, " (actual rows=%d est rows=%d batches=%d", r.Rows, r.EstRows, r.Batches)
		if r.Spills > 0 {
			fmt.Fprintf(&sb, " spills=%d spilled=%d", r.Spills, r.SpilledBytes)
		}
		if r.AllocPeak > 0 {
			fmt.Fprintf(&sb, " mem=%d", r.AllocPeak)
		}
		if r.WallUs > 0 {
			fmt.Fprintf(&sb, " time=%s", us(r.WallUs))
		}
		if r.BlockedUs > 0 {
			fmt.Fprintf(&sb, " blocked=%s", us(r.BlockedUs))
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}

func us(v int64) string { return fmt.Sprintf("%.3fms", float64(v)/1000) }
